// Package repro's root benchmark harness regenerates every table and
// figure of the paper (one benchmark per experiment) plus the ablation
// studies DESIGN.md calls out. Custom b.ReportMetric values surface the
// headline numbers (TP/FP rates, rule counts, coverage shares) next to
// the timing, so `go test -bench=. -benchmem` doubles as the
// reproduction run.
//
// The dataset scale is controlled by LONGTAIL_BENCH_SCALE (default
// 0.01); the pipeline is built once and shared across benchmarks.
package repro

import (
	"context"
	"fmt"
	"io"
	"net/http/httptest"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/analysis"
	"repro/internal/classify"
	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/features"
	"repro/internal/journal"
	"repro/internal/lifecycle"
	"repro/internal/part"
	"repro/internal/serve"
	"repro/internal/synth"
)

var (
	pipelineOnce sync.Once
	pipeline     *experiments.Pipeline
	pipelineErr  error
)

func benchScale() float64 {
	if v := os.Getenv("LONGTAIL_BENCH_SCALE"); v != "" {
		if f, err := strconv.ParseFloat(v, 64); err == nil && f > 0 {
			return f
		}
	}
	return 0.01
}

func sharedPipeline(b *testing.B) *experiments.Pipeline {
	b.Helper()
	pipelineOnce.Do(func() {
		pipeline, pipelineErr = experiments.Run(synth.DefaultConfig(42, benchScale()))
	})
	if pipelineErr != nil {
		b.Fatal(pipelineErr)
	}
	return pipeline
}

// benchExperiment runs one registered experiment per iteration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	p := sharedPipeline(b)
	exp, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := exp.Run(p, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableI(b *testing.B)    { benchExperiment(b, "table1") }
func BenchmarkFigure1(b *testing.B)   { benchExperiment(b, "fig1") }
func BenchmarkTableII(b *testing.B)   { benchExperiment(b, "table2") }
func BenchmarkFigure2(b *testing.B)   { benchExperiment(b, "fig2") }
func BenchmarkTableIII(b *testing.B)  { benchExperiment(b, "table3") }
func BenchmarkTableIV(b *testing.B)   { benchExperiment(b, "table4") }
func BenchmarkTableV(b *testing.B)    { benchExperiment(b, "table5") }
func BenchmarkFigure3(b *testing.B)   { benchExperiment(b, "fig3") }
func BenchmarkPackers(b *testing.B)   { benchExperiment(b, "packers") }
func BenchmarkTableVI(b *testing.B)   { benchExperiment(b, "table6") }
func BenchmarkTableVII(b *testing.B)  { benchExperiment(b, "table7") }
func BenchmarkTableVIII(b *testing.B) { benchExperiment(b, "table8") }
func BenchmarkTableIX(b *testing.B)   { benchExperiment(b, "table9") }
func BenchmarkFigure4(b *testing.B)   { benchExperiment(b, "fig4") }
func BenchmarkTableX(b *testing.B)    { benchExperiment(b, "table10") }
func BenchmarkTableXI(b *testing.B)   { benchExperiment(b, "table11") }
func BenchmarkTableXII(b *testing.B)  { benchExperiment(b, "table12") }
func BenchmarkFigure5(b *testing.B)   { benchExperiment(b, "fig5") }
func BenchmarkFigure6(b *testing.B)   { benchExperiment(b, "fig6") }
func BenchmarkTableXIII(b *testing.B) { benchExperiment(b, "table13") }
func BenchmarkTableXIV(b *testing.B)  { benchExperiment(b, "table14") }

// BenchmarkTableXVI runs the full monthly rule-learning sweep and
// reports the selected-rule count of the first window.
func BenchmarkTableXVI(b *testing.B) { benchExperiment(b, "table16") }

// BenchmarkTableXVII runs the classifier evaluation and reports
// aggregate TP/FP across windows as custom metrics.
func BenchmarkTableXVII(b *testing.B) {
	p := sharedPipeline(b)
	var tp, fp float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		windows, err := classify.RunMonthlyWindows(p.Store, p.Result.Oracle, []float64{0.001}, classify.Reject)
		if err != nil {
			b.Fatal(err)
		}
		var tpN, tpD, fpN, fpD int
		for _, w := range windows {
			tpN += w.Eval.TruePositives
			tpD += w.Eval.MatchedMalicious
			fpN += w.Eval.FalsePositives
			fpD += w.Eval.MatchedBenign
		}
		if tpD > 0 {
			tp = float64(tpN) / float64(tpD)
		}
		if fpD > 0 {
			fp = float64(fpN) / float64(fpD)
		}
	}
	b.ReportMetric(100*tp, "TP%")
	b.ReportMetric(100*fp, "FP%")
}

// BenchmarkRuleStats reproduces the Section VII rule introspection.
func BenchmarkRuleStats(b *testing.B) { benchExperiment(b, "rulestats") }

// BenchmarkBaselines compares the rule classifier with the
// Polonium-style and URL-reputation baselines.
func BenchmarkBaselines(b *testing.B) { benchExperiment(b, "baselines") }

// BenchmarkEvasion runs the signer-rotation evasion study.
func BenchmarkEvasion(b *testing.B) { benchExperiment(b, "evasion") }

// BenchmarkChains computes malicious download-chain depths.
func BenchmarkChains(b *testing.B) { benchExperiment(b, "chains") }

// BenchmarkGenerate measures end-to-end dataset generation + labeling.
func BenchmarkGenerate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Run(synth.DefaultConfig(int64(i), 0.002)); err != nil {
			b.Fatal(err)
		}
	}
}

// trainFirstWindow trains one classifier on the first month with the
// given options, for the ablation benches.
func trainFirstWindow(b *testing.B, p *experiments.Pipeline, tau float64, policy classify.ConflictPolicy, maskSigner bool) (*classify.Classifier, []features.Instance, []features.Instance) {
	b.Helper()
	months := p.Store.Months()
	ex, err := features.NewExtractor(p.Store, p.Result.Oracle)
	if err != nil {
		b.Fatal(err)
	}
	train, err := ex.Instances(p.Store.EventIndexesInMonth(months[0]))
	if err != nil {
		b.Fatal(err)
	}
	test, err := ex.Instances(p.Store.EventIndexesInMonth(months[1]))
	if err != nil {
		b.Fatal(err)
	}
	if maskSigner {
		train = maskSignerFeature(train)
		test = maskSignerFeature(test)
	}
	clf, err := classify.Train(train, tau, policy)
	if err != nil {
		b.Fatal(err)
	}
	return clf, train, test
}

func maskSignerFeature(in []features.Instance) []features.Instance {
	out := make([]features.Instance, len(in))
	copy(out, in)
	for i := range out {
		out[i].FileSigner = features.None
		out[i].FileCA = features.None
	}
	return out
}

// BenchmarkAblationConflict compares the paper's conflict-rejection
// policy against majority voting.
func BenchmarkAblationConflict(b *testing.B) {
	p := sharedPipeline(b)
	for _, tc := range []struct {
		name   string
		policy classify.ConflictPolicy
	}{
		{"reject", classify.Reject},
		{"majority", classify.MajorityVote},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var fp, tp float64
			for i := 0; i < b.N; i++ {
				clf, _, test := trainFirstWindow(b, p, 0.001, tc.policy, false)
				res := clf.Evaluate(test)
				tp = 100 * res.TPRate()
				fp = 100 * res.FPRate()
			}
			b.ReportMetric(tp, "TP%")
			b.ReportMetric(fp, "FP%")
		})
	}
}

// BenchmarkAblationTau sweeps the rule-selection error threshold.
func BenchmarkAblationTau(b *testing.B) {
	p := sharedPipeline(b)
	for _, tau := range []float64{0.0, 0.001, 0.01, 0.05} {
		b.Run(strconv.FormatFloat(tau, 'f', -1, 64), func(b *testing.B) {
			var rules, fp float64
			for i := 0; i < b.N; i++ {
				clf, _, test := trainFirstWindow(b, p, tau, classify.Reject, false)
				res := clf.Evaluate(test)
				rules = float64(len(clf.Rules))
				fp = 100 * res.FPRate()
			}
			b.ReportMetric(rules, "rules")
			b.ReportMetric(fp, "FP%")
		})
	}
}

// BenchmarkAblationFeatures removes the dominant file-signer feature
// (plus its CA shadow) and measures the decay in unknown-file coverage.
func BenchmarkAblationFeatures(b *testing.B) {
	p := sharedPipeline(b)
	months := p.Store.Months()
	ex, err := features.NewExtractor(p.Store, p.Result.Oracle)
	if err != nil {
		b.Fatal(err)
	}
	unknowns, err := ex.UnknownInstances(p.Store.EventIndexesInMonth(months[1]))
	if err != nil {
		b.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		mask bool
	}{
		{"full", false},
		{"nosigner", true},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var matched float64
			for i := 0; i < b.N; i++ {
				clf, _, _ := trainFirstWindow(b, p, 0.001, classify.Reject, tc.mask)
				u := unknowns
				if tc.mask {
					u = maskSignerFeature(unknowns)
				}
				res := clf.ClassifyUnknowns(u, p.Store)
				matched = 100 * res.MatchRate()
			}
			b.ReportMetric(matched, "unknownMatched%")
		})
	}
}

// BenchmarkAblationTreeVsRules compares the paper's tau-filtered rule
// set (with conflict rejection) against a single pruned C4.5 decision
// tree trained on the same window — the "regular decision tree" the
// paper argues against. The tree must classify every matched test file;
// the rule set may abstain or reject, which is where its FP advantage
// comes from.
func BenchmarkAblationTreeVsRules(b *testing.B) {
	p := sharedPipeline(b)
	months := p.Store.Months()
	ex, err := features.NewExtractor(p.Store, p.Result.Oracle)
	if err != nil {
		b.Fatal(err)
	}
	train, err := ex.Instances(p.Store.EventIndexesInMonth(months[0]))
	if err != nil {
		b.Fatal(err)
	}
	test, err := ex.Instances(p.Store.EventIndexesInMonth(months[1]))
	if err != nil {
		b.Fatal(err)
	}
	b.Run("rules", func(b *testing.B) {
		var tp, fp float64
		for i := 0; i < b.N; i++ {
			clf, err := classify.Train(train, 0.001, classify.Reject)
			if err != nil {
				b.Fatal(err)
			}
			res := clf.Evaluate(test)
			tp, fp = 100*res.TPRate(), 100*res.FPRate()
		}
		b.ReportMetric(tp, "TP%")
		b.ReportMetric(fp, "FP%")
	})
	b.Run("tree", func(b *testing.B) {
		var tp, fp float64
		for i := 0; i < b.N; i++ {
			attrs, classes := classify.Schema()
			ds, err := part.NewDataset(attrs, classes)
			if err != nil {
				b.Fatal(err)
			}
			for j := range train {
				if err := ds.Add(toTreeInstance(&train[j])); err != nil {
					b.Fatal(err)
				}
			}
			tree, err := part.LearnTree(ds)
			if err != nil {
				b.Fatal(err)
			}
			var tpN, tpD, fpN, fpD int
			for j := range test {
				inst := toTreeInstance(&test[j])
				class, ok := tree.Classify(&inst)
				if !ok {
					continue
				}
				if test[j].Malicious {
					tpD++
					if class == classify.ClassMalicious {
						tpN++
					}
				} else {
					fpD++
					if class == classify.ClassMalicious {
						fpN++
					}
				}
			}
			if tpD > 0 {
				tp = 100 * float64(tpN) / float64(tpD)
			}
			if fpD > 0 {
				fp = 100 * float64(fpN) / float64(fpD)
			}
		}
		b.ReportMetric(tp, "TP%")
		b.ReportMetric(fp, "FP%")
	})
}

// toTreeInstance converts a feature instance for the tree baseline.
func toTreeInstance(in *features.Instance) part.Instance {
	vals := make([]part.Value, 0, len(features.AttributeNames))
	for i := 0; i < features.NumNominal; i++ {
		vals = append(vals, part.Value{S: in.Nominal(i)})
	}
	vals = append(vals, part.Value{F: float64(in.AlexaRank)})
	class := classify.ClassBenign
	if in.Malicious {
		class = classify.ClassMalicious
	}
	return part.Instance{Values: vals, Class: class, Ref: string(in.File)}
}

// BenchmarkAblationSigma regenerates a small trace under different
// collection-server prevalence caps and reports the share of files whose
// observed prevalence reaches the cap.
func BenchmarkAblationSigma(b *testing.B) {
	for _, sigma := range []int{5, 20, 1000} {
		b.Run(strconv.Itoa(sigma), func(b *testing.B) {
			var atCap float64
			for i := 0; i < b.N; i++ {
				cfg := synth.DefaultConfig(42, 0.002)
				cfg.Sigma = sigma
				res, err := synth.Generate(cfg)
				if err != nil {
					b.Fatal(err)
				}
				res.Store.Freeze()
				files := res.Store.DownloadedFiles()
				n := 0
				for _, f := range files {
					if res.Store.Prevalence(f) >= sigma {
						n++
					}
				}
				atCap = 100 * float64(n) / float64(len(files))
			}
			b.ReportMetric(atCap, "filesAtCap%")
		})
	}
}

// BenchmarkAblationCoInstall regenerates the trace with bundle
// co-installs disabled and reports how the adware same-day transition
// share (Figure 5's headline dynamic) collapses without them.
func BenchmarkAblationCoInstall(b *testing.B) {
	for _, tc := range []struct {
		name    string
		disable bool
	}{
		{"with", false},
		{"without", true},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var sameDay float64
			for i := 0; i < b.N; i++ {
				cfg := synth.DefaultConfig(42, 0.005)
				cfg.Tuning.DisableCoInstall = tc.disable
				p, err := experiments.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				adw := p.Analyzer.Transitions(analysis.SourceAdware)
				if adw.DeltaDays.Len() > 0 {
					sameDay = 100 * adw.DeltaDays.At(1)
				}
			}
			b.ReportMetric(sameDay, "adwareSameDay%")
		})
	}
}

// BenchmarkPARTTraining isolates the PART learner on one month of
// instances.
func BenchmarkPARTTraining(b *testing.B) {
	p := sharedPipeline(b)
	months := p.Store.Months()
	ex, err := features.NewExtractor(p.Store, p.Result.Oracle)
	if err != nil {
		b.Fatal(err)
	}
	train, err := ex.Instances(p.Store.EventIndexesInMonth(months[0]))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := classify.Train(train, 0.001, classify.Reject); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(train)), "instances")
}

// BenchmarkRuleMatch isolates rule matching: the compiled pivot index
// (hash-map equality buckets + sorted-threshold binary search) against
// the linear reference scan, on the trained month-1 rule set over
// month-2 instances. allocs/op is the headline — the indexed path must
// not allocate per miss beyond the matched-rule slice.
func BenchmarkRuleMatch(b *testing.B) {
	p := sharedPipeline(b)
	months := p.Store.Months()
	ex, err := features.NewExtractor(p.Store, p.Result.Oracle)
	if err != nil {
		b.Fatal(err)
	}
	train, err := ex.Instances(p.Store.EventIndexesInMonth(months[0]))
	if err != nil {
		b.Fatal(err)
	}
	test, err := ex.Instances(p.Store.EventIndexesInMonth(months[1]))
	if err != nil {
		b.Fatal(err)
	}
	clf, err := classify.Train(train, 0.001, classify.Reject)
	if err != nil {
		b.Fatal(err)
	}
	linear := &classify.Classifier{Rules: clf.Rules, Policy: classify.Reject}
	for _, tc := range []struct {
		name string
		clf  *classify.Classifier
	}{{"indexed", clf}, {"linear", linear}} {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			matched := 0
			for i := 0; i < b.N; i++ {
				v, _ := tc.clf.ClassifyOne(&test[i%len(test)])
				if v != classify.VerdictNone {
					matched++
				}
			}
			b.ReportMetric(float64(len(clf.Rules)), "rules")
		})
	}
}

// serveBenchStreams is the client concurrency both serve benchmarks
// drive: throughput is a capacity metric, and a daemon serves multiple
// uplinks (loadgen's worker pool is the reference client). For the
// journaled variant the concurrency is load-bearing: one synchronous
// stream serializes every group-committed fsync behind its own batch's
// classification, measuring commit latency instead of throughput,
// while concurrent streams overlap one stream's fsync wait with
// another's classification and share fsyncs through the journal's
// group commit.
const serveBenchStreams = 4

// driveServeBench replays month-2 batches through serveBenchStreams
// concurrent clients against the given server URL, returning total
// verdicts received.
func driveServeBench(b *testing.B, url string, replay []dataset.DownloadEvent, batch int) int {
	ctx := context.Background()
	var sent atomic.Int64
	var next atomic.Int64
	var wg sync.WaitGroup
	for s := 0; s < serveBenchStreams; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			client := &serve.Client{BaseURL: url, RequestIDPrefix: fmt.Sprintf("w%d", s)}
			for {
				i := int(next.Add(1)) - 1
				if i >= b.N {
					return
				}
				lo := (i * batch) % (len(replay) - batch + 1)
				verdicts, err := client.Classify(ctx, replay[lo:lo+batch])
				if err != nil {
					b.Error(err)
					return
				}
				sent.Add(int64(len(verdicts)))
			}
		}(s)
	}
	wg.Wait()
	return int(sent.Load())
}

// BenchmarkServeThroughput measures the online serving subsystem end to
// end: an in-process longtaild (HTTP server over the sharded engine)
// driven by loadgen-style clients replaying month-2 events in batches.
// The custom metric is sustained verdicts per second through the full
// wire path (line-JSON encode, HTTP, queue, extract, classify, line-JSON
// decode).
func BenchmarkServeThroughput(b *testing.B) {
	p := sharedPipeline(b)
	months := p.Store.Months()
	ex, err := features.NewExtractor(p.Store, p.Result.Oracle)
	if err != nil {
		b.Fatal(err)
	}
	train, err := ex.Instances(p.Store.EventIndexesInMonth(months[0]))
	if err != nil {
		b.Fatal(err)
	}
	clf, err := classify.Train(train, 0.001, classify.Reject)
	if err != nil {
		b.Fatal(err)
	}
	engine, err := serve.NewEngine(ex, clf, serve.EngineConfig{
		Shards: runtime.GOMAXPROCS(0), QueueSize: 8192,
	}, &serve.Metrics{})
	if err != nil {
		b.Fatal(err)
	}
	defer engine.Close()
	srv, err := serve.NewServer(engine, classify.Reject)
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	events := p.Store.Events()
	var replay []dataset.DownloadEvent
	for _, idx := range p.Store.EventIndexesInMonth(months[1]) {
		replay = append(replay, events[idx])
	}
	const batch = 256
	if len(replay) < batch {
		b.Fatalf("only %d replay events; need %d", len(replay), batch)
	}
	b.ReportAllocs()
	b.ResetTimer()
	sent := driveServeBench(b, ts.URL, replay, batch)
	b.StopTimer()
	b.ReportMetric(float64(sent)/b.Elapsed().Seconds(), "events/sec")
}

// BenchmarkServeThroughputJournaled is BenchmarkServeThroughput with
// the write-ahead journal enabled, striped over one shard per core:
// every batch pays a group-committed fsync for its accept record
// (overlapped with classification and with the other shards' fsyncs)
// plus an async result record. The events/sec metric against the
// unjournaled benchmark is the durability tax; the acceptance bar is
// >= 80% of it on a multi-core runner (CI gates the ratio at 0.65 via
// benchjson; a single-core host serializes the shards and measures the
// overlap as overhead).
func BenchmarkServeThroughputJournaled(b *testing.B) {
	p := sharedPipeline(b)
	months := p.Store.Months()
	ex, err := features.NewExtractor(p.Store, p.Result.Oracle)
	if err != nil {
		b.Fatal(err)
	}
	train, err := ex.Instances(p.Store.EventIndexesInMonth(months[0]))
	if err != nil {
		b.Fatal(err)
	}
	clf, err := classify.Train(train, 0.001, classify.Reject)
	if err != nil {
		b.Fatal(err)
	}
	engine, err := serve.NewEngine(ex, clf, serve.EngineConfig{
		Shards: runtime.GOMAXPROCS(0), QueueSize: 8192,
	}, &serve.Metrics{})
	if err != nil {
		b.Fatal(err)
	}
	defer engine.Close()
	ledger, _, err := serve.OpenLedger(serve.LedgerOptions{
		Journal: journal.Options{Dir: b.TempDir()},
		Shards:  runtime.GOMAXPROCS(0),
	})
	if err != nil {
		b.Fatal(err)
	}
	defer ledger.Close()
	srv, err := serve.NewServer(engine, classify.Reject, serve.WithLedger(ledger))
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	events := p.Store.Events()
	var replay []dataset.DownloadEvent
	for _, idx := range p.Store.EventIndexesInMonth(months[1]) {
		replay = append(replay, events[idx])
	}
	const batch = 256
	if len(replay) < batch {
		b.Fatalf("only %d replay events; need %d", len(replay), batch)
	}
	b.ReportAllocs()
	b.ResetTimer()
	sent := driveServeBench(b, ts.URL, replay, batch)
	b.StopTimer()
	b.ReportMetric(float64(sent)/b.Elapsed().Seconds(), "events/sec")
	js := ledger.Stats()
	b.ReportMetric(float64(js.Syncs), "fsyncs")
	b.ReportMetric(float64(js.Compactions), "compactions")
}

// BenchmarkServeThroughputShadow is BenchmarkServeThroughput with the
// lifecycle shadow evaluator tapped into the engine and a challenger
// shadowing every batch: each verdict batch is copied onto the
// evaluator's bounded queue and re-classified by the challenger off
// the hot path. The events/sec metric against the unshadowed benchmark
// is the shadowing tax; the acceptance bar is a regression <= 5%.
func BenchmarkServeThroughputShadow(b *testing.B) {
	p := sharedPipeline(b)
	months := p.Store.Months()
	ex, err := features.NewExtractor(p.Store, p.Result.Oracle)
	if err != nil {
		b.Fatal(err)
	}
	train, err := ex.Instances(p.Store.EventIndexesInMonth(months[0]))
	if err != nil {
		b.Fatal(err)
	}
	clf, err := classify.Train(train, 0.001, classify.Reject)
	if err != nil {
		b.Fatal(err)
	}
	challenger, err := classify.Train(train, 0.005, classify.Reject)
	if err != nil {
		b.Fatal(err)
	}
	engine, err := serve.NewEngine(ex, clf, serve.EngineConfig{
		Shards: runtime.GOMAXPROCS(0), QueueSize: 8192,
	}, &serve.Metrics{})
	if err != nil {
		b.Fatal(err)
	}
	defer engine.Close()
	truth := func(file dataset.FileHash) (bool, bool) {
		switch p.Store.Label(file) {
		case dataset.LabelMalicious:
			return true, true
		case dataset.LabelBenign:
			return false, true
		}
		return false, false
	}
	eval, err := lifecycle.NewEvaluator(ex, truth, lifecycle.EvaluatorConfig{})
	if err != nil {
		b.Fatal(err)
	}
	defer eval.Close()
	eval.SetChallenger(challenger, "bench-challenger")
	engine.SetBatchTap(eval.Tap())
	srv, err := serve.NewServer(engine, classify.Reject)
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	events := p.Store.Events()
	var replay []dataset.DownloadEvent
	for _, idx := range p.Store.EventIndexesInMonth(months[1]) {
		replay = append(replay, events[idx])
	}
	const batch = 256
	if len(replay) < batch {
		b.Fatalf("only %d replay events; need %d", len(replay), batch)
	}
	b.ReportAllocs()
	b.ResetTimer()
	sent := driveServeBench(b, ts.URL, replay, batch)
	b.StopTimer()
	b.ReportMetric(float64(sent)/b.Elapsed().Seconds(), "events/sec")
	eval.Flush()
	st := eval.Snapshot()
	b.ReportMetric(float64(st.Samples), "shadow-samples")
	b.ReportMetric(float64(st.Dropped), "shadow-dropped")
}

// BenchmarkPrevalenceIndex measures the store freeze/indexing cost.
func BenchmarkPrevalenceIndex(b *testing.B) {
	p := sharedPipeline(b)
	events := p.Store.Events()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := dataset.NewStore()
		for j := range events {
			if err := s.AddEvent(events[j]); err != nil {
				b.Fatal(err)
			}
		}
		s.Freeze()
	}
}
