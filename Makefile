# Tier-1 verification (ROADMAP.md): build + vet + race-enabled tests,
# plus a gofmt cleanliness gate. `make verify` is the one command CI and
# pre-commit hooks run.

GO ?= go

.PHONY: verify build vet test fmtcheck bench

verify: build vet test fmtcheck

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test -race ./...

fmtcheck:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt -l reports unformatted files:"; echo "$$out"; exit 1; \
	fi

# Full benchmark harness (one benchmark per paper table/figure plus the
# ablations and the serving-throughput bench).
bench:
	$(GO) test -run '^$$' -bench . -benchmem .
