# Tier-1 verification (ROADMAP.md): build + vet + race-enabled tests,
# plus a gofmt cleanliness gate, the project lint suite (longtailvet)
# and a short fuzz smoke over the wire codec and the journal recovery
# path. `make verify` is the one command CI and pre-commit hooks run;
# `make verify-fast` is the same gate minus the fuzz smoke, for tight
# edit-compile loops.

GO ?= go
LONGTAILVET ?= bin/longtailvet

.PHONY: verify verify-fast build vet test fmtcheck lint lint-report \
	longtailvet staticcheck govulncheck bench bench-json bench-gate \
	chaos-serve chaos-cluster chaos-lifecycle chaos-churn fuzz-smoke

verify: verify-fast fuzz-smoke chaos-cluster chaos-lifecycle chaos-churn

verify-fast: build vet test fmtcheck lint

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test -race ./...

fmtcheck:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt -l reports unformatted files:"; echo "$$out"; exit 1; \
	fi

# The project's own static-analysis suite (internal/lint, DESIGN.md
# §10): ten analyzers enforcing the determinism, locking, lock-order,
# goroutine-lifecycle, context-flow, metric-naming, journal-ordering,
# retry-policy, error-wrapping and atomic-swap invariants — the last
# four interprocedural, fed by per-package facts riding vet's vetx
# files. Run through `go vet -vettool` so findings cover _test.go
# files and participate in vet's result cache.
longtailvet:
	@mkdir -p $(dir $(LONGTAILVET))
	$(GO) build -o $(LONGTAILVET) ./cmd/longtailvet

lint: longtailvet
	$(GO) vet -vettool=$(LONGTAILVET) ./...

# Machine-readable findings for CI: the same tree-wide sweep rendered
# as JSON — active findings plus every //lint:allow-suppressed site
# with its documented reason, the audit trail DESIGN.md §10 tabulates.
# The report file is written even when findings exist; the exit status
# still fails the target so CI cannot archive a red report silently.
lint-report: longtailvet
	$(LONGTAILVET) -json ./... > LINT_report.json

# Optional third-party gates: run only when the tool is installed, so
# `make verify` stays dependency-free (ROADMAP.md: stdlib only).
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping"; \
	fi

govulncheck:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping"; \
	fi

# Native-fuzzing smoke: the single-event codec the /classify endpoint
# parses on every request, the journal recovery path that must survive
# arbitrary torn/corrupt segment tails, the //lint:allow directive
# parser, and the facts (de)serializer whose fixed-point round trip
# the vetx transport depends on (30s each).
fuzz-smoke:
	$(GO) test -fuzz=FuzzUnmarshalEventLine -fuzztime=30s -run '^$$' ./internal/export/
	$(GO) test -fuzz=FuzzJournalRecovery -fuzztime=30s -run '^$$' ./internal/journal/
	$(GO) test -fuzz=FuzzShardedRecovery -fuzztime=30s -run '^$$' ./internal/journal/
	$(GO) test -fuzz=FuzzParseAllowDirective -fuzztime=30s -run '^$$' ./internal/lint/lintkit/
	$(GO) test -fuzz=FuzzFactsRoundTrip -fuzztime=30s -run '^$$' ./internal/lint/lintkit/
	$(GO) test -fuzz=FuzzBinaryEvents -fuzztime=30s -run '^$$' ./internal/serve/
	$(GO) test -fuzz=FuzzBinaryVerdicts -fuzztime=30s -run '^$$' ./internal/serve/

# Serving-layer chaos harness under the race detector: kill -9
# mid-replay with injected transport faults and a torn journal tail,
# then restart + recovery with exactly-once verdict accounting.
chaos-serve:
	$(GO) test -race -run TestChaosServe -count=1 -v ./internal/experiments/

# Cluster-wide chaos harness under the race detector: a 3-replica
# consistent-hash cluster behind the health-aware router, driven
# through link faults, a mid-replay replica kill -9 + journal
# recovery, a router-side partition, and a generation-consistent
# reload with one replica unreachable — holding the cluster to zero
# lost batches, zero duplicated work, byte-identical verdicts.
chaos-cluster:
	$(GO) test -race -run TestChaosCluster -count=1 -v ./internal/experiments/

# Lifecycle chaos harness under the race detector: champion/challenger
# shadow evaluation against a live 3-replica cluster — an over-broad
# challenger the FP gate must reject without serving, a garbage reload
# degrading one replica, and a retrained challenger whose promotion
# must converge the fleet through the router's generation-consistent
# fan-out with zero lost batches, zero wrong-generation verdicts and
# zero dropped shadow batches. The shadow-evaluation disagreement
# report lands in LIFECYCLE_shadow.json for CI to archive.
chaos-lifecycle:
	LIFECYCLE_REPORT=$(CURDIR)/LIFECYCLE_shadow.json \
		$(GO) test -race -run TestChaosLifecycle -count=1 -v ./internal/experiments/

# Membership-churn chaos harness under the race detector: a 3-replica
# journaled cluster under >= 10% link faults driven through the ledger
# handoff lifecycle — a planned leave draining its dedup history to the
# new ring owners, a kill -9 mid-handoff (import target partitioned,
# torn journal tail at the crash), and a restart whose probation
# readmit reconciles the trapped ranges — closed by a retransmit storm
# of every served ID asserting zero re-classifications, zero lost
# batches, byte-identical bodies. The churn report lands in
# CHURN_report.json for CI to archive.
chaos-churn:
	CHURN_REPORT=$(CURDIR)/CHURN_report.json \
		$(GO) test -race -run TestChaosChurn -count=1 -v ./internal/experiments/

# Full benchmark harness (one benchmark per paper table/figure plus the
# ablations and the serving-throughput benches).
bench:
	$(GO) test -run '^$$' -bench . -benchmem .

# Serving hot-path benchmarks (rule-index match + the three end-to-end
# throughput benches, including the shadow-evaluation variant) rendered
# to a machine-readable artifact. The text output lands in
# BENCH_serve.txt first so a bench failure fails the target before
# benchjson runs; benchjson itself refuses to emit an empty document.
# Each run is also appended to BENCH_history.json keyed by the current
# commit and UTC timestamp (benchjson never reads the clock itself).
bench-json:
	$(GO) test -run '^$$' \
		-bench '^Benchmark(RuleMatch|ServeThroughput|ServeThroughputJournaled|ServeThroughputShadow)$$' \
		-benchmem . > BENCH_serve.txt
	cat BENCH_serve.txt
	$(GO) run ./cmd/benchjson -o BENCH_serve.json \
		-history BENCH_history.json \
		-sha "$$(git -C $(CURDIR) rev-parse HEAD)" \
		-stamp "$$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
		BENCH_serve.txt
	@echo "wrote BENCH_serve.json and appended BENCH_history.json"

# Multi-core regression fence over the bench-json artifact: the
# journaled serve path (per-core sharded WAL, group-commit ack queue)
# must keep at least 65% of the unjournaled path's events/sec. On
# runners below 4 CPUs benchjson skips the check — with no parallelism
# the overlapping fsyncs measure as pure overhead — so the gate only
# binds where the sharded design can actually show up. Run after
# bench-json (it re-parses BENCH_serve.txt).
bench-gate:
	$(GO) run ./cmd/benchjson -o /dev/null \
		-gate-num BenchmarkServeThroughputJournaled \
		-gate-den BenchmarkServeThroughput \
		-gate-metric events/sec -gate-ratio 0.65 -gate-min-cores 4 \
		BENCH_serve.txt
