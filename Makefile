# Tier-1 verification (ROADMAP.md): build + vet + race-enabled tests,
# plus a gofmt cleanliness gate and a short fuzz smoke over the wire
# codec. `make verify` is the one command CI and pre-commit hooks run.

GO ?= go

.PHONY: verify build vet test fmtcheck bench chaos-serve fuzz-smoke

verify: build vet test fmtcheck fuzz-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test -race ./...

fmtcheck:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt -l reports unformatted files:"; echo "$$out"; exit 1; \
	fi

# 30-second native-fuzzing smoke over the single-event codec the
# /classify endpoint and the write-ahead journal parse on every request.
fuzz-smoke:
	$(GO) test -fuzz=FuzzUnmarshalEventLine -fuzztime=30s -run '^$$' ./internal/export/

# Serving-layer chaos harness under the race detector: kill -9
# mid-replay with injected transport faults and a torn journal tail,
# then restart + recovery with exactly-once verdict accounting.
chaos-serve:
	$(GO) test -race -run TestChaosServe -count=1 -v ./internal/experiments/

# Full benchmark harness (one benchmark per paper table/figure plus the
# ablations and the serving-throughput benches).
bench:
	$(GO) test -run '^$$' -bench . -benchmem .
