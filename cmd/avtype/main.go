// Command avtype is the standalone behaviour-type extractor the paper
// released as an open-source tool (Section II-C). It reads one JSON
// object per line from stdin, each mapping leading-engine names to their
// AV labels, and prints the derived behaviour type plus the rule that
// resolved it.
//
// Example input line:
//
//	{"Symantec":"Trojan.Zbot","McAfee":"Downloader-FYH!6C7411D1C043","Kaspersky":"Trojan-Spy.Win32.Zbot.ruxa","Microsoft":"PWS:Win32/Zbot"}
//
// Output:
//
//	banker	voting
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/avtype"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "avtype:", err)
		os.Exit(1)
	}
}

func run() error {
	ex := avtype.NewExtractor(nil)
	var stats avtype.Stats
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var labels map[string]string
		if err := json.Unmarshal(line, &labels); err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
		typ, res := ex.Extract(labels)
		stats.Observe(res)
		fmt.Printf("%s\t%s\n", typ, res)
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if stats.Total > 1 {
		fmt.Fprintf(os.Stderr, "resolved: unanimous %.0f%%, voting %.0f%%, specificity %.0f%%, manual %.0f%% (paper: 44/28/23/5)\n",
			100*stats.Share(avtype.ResolvedUnanimous), 100*stats.Share(avtype.ResolvedVoting),
			100*stats.Share(avtype.ResolvedSpecificity), 100*stats.Share(avtype.ResolvedManual))
	}
	return nil
}
