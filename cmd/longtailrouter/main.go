// Command longtailrouter is the cluster front tier: it owns a
// consistent-hash ring over longtaild replicas and forwards /classify
// batches to the replica owning each request ID, with per-node circuit
// breakers, hedged failover to ring successors, active health probing,
// and generation-consistent rule distribution.
//
// The router speaks the same wire protocol as a single replica —
// POST /classify, GET /result, POST /admin/reload, GET /healthz,
// GET /metrics — so clients built against longtaild (cmd/loadgen,
// serve.Client) point at a router unchanged. Router-only endpoints:
// POST /admin/join?addr=H:P and POST /admin/leave?addr=H:P for
// membership changes (a leaving replica drains in-flight batches before
// it is forgotten).
//
// Usage:
//
//	longtailrouter -replicas 127.0.0.1:8787,127.0.0.1:8788,127.0.0.1:8789
//	               [-addr :8780] [-probe-interval 2s] [-probe-timeout 1s]
//	               [-eject-after 3] [-breaker-threshold 3] [-breaker-reset 2s]
//	               [-hedge-delay 0] [-vnodes 64] [-drain 10s]
//
// Exactly-once across failover rides on the replicas' verdict ledgers:
// the router forwards each batch's X-Request-Id unchanged and pins
// served IDs to the replica that answered, so a retransmit — client
// retry, failover retry, or crash-restart replay — is answered
// byte-identically from that replica's journal, never re-classified.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "longtailrouter:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", ":8780", "listen address")
	replicas := flag.String("replicas", "", "comma-separated replica addresses (host:port), e.g. 127.0.0.1:8787,127.0.0.1:8788")
	probeInterval := flag.Duration("probe-interval", 2*time.Second, "active health-probe period (0: probing off)")
	probeTimeout := flag.Duration("probe-timeout", time.Second, "per-probe timeout")
	ejectAfter := flag.Int("eject-after", 3, "consecutive failed probes before a replica is ejected from the ring")
	breakerThreshold := flag.Int("breaker-threshold", 3, "consecutive forward failures tripping a replica's circuit breaker")
	breakerReset := flag.Duration("breaker-reset", 2*time.Second, "breaker open period before a half-open probe")
	hedgeDelay := flag.Duration("hedge-delay", 0, "launch a hedged attempt on the next ring successor after this stall (0: off)")
	vnodes := flag.Int("vnodes", cluster.DefaultVirtualNodes, "virtual nodes per replica on the hash ring")
	drain := flag.Duration("drain", 10*time.Second, "graceful shutdown budget")
	flag.Parse()

	if *replicas == "" {
		return fmt.Errorf("-replicas is required")
	}
	addrs := strings.Split(*replicas, ",")
	for i := range addrs {
		addrs[i] = strings.TrimSpace(addrs[i])
	}

	rt, err := cluster.NewRouter(cluster.Options{
		Replicas:         addrs,
		ProbeInterval:    *probeInterval,
		ProbeTimeout:     *probeTimeout,
		EjectAfter:       *ejectAfter,
		BreakerThreshold: *breakerThreshold,
		BreakerReset:     *breakerReset,
		HedgeDelay:       *hedgeDelay,
		VirtualNodes:     *vnodes,
	})
	if err != nil {
		return err
	}
	defer rt.Close()

	httpSrv := &http.Server{Addr: *addr, Handler: rt.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() {
		st := rt.Status()
		log.Printf("longtailrouter: serving on %s (%d replicas, generation %d, status %s)",
			*addr, len(st.Nodes), st.Generation, st.Status)
		errCh <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	log.Printf("longtailrouter: draining (budget %s)", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	log.Printf("longtailrouter: drained, bye")
	return nil
}
