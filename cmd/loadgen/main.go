// Command loadgen replays a synthetic month of download telemetry
// against a running longtaild at a configurable rate and cross-checks
// every streamed verdict against offline classification, making the
// serving subsystem's determinism testable end-to-end: the daemon and
// the load generator derive the same deterministic corpus and rule set
// from (seed, scale, tau), so each streamed verdict must be
// byte-identical to classify.ClassifyFile run locally.
//
// Mid-replay it can hot-reload the daemon's rule set (-reload-at) to
// prove the swap drops no responses and changes no verdicts when the
// rule set is unchanged — only the reported generation moves.
//
// With -router the same replay is aimed at a longtailrouter front
// instead of a single daemon: the router speaks the identical wire
// protocol, so the byte-identical offline cross-check holds unchanged
// across consistent-hash routing, failover and retransmit dedup.
// Around the run loadgen reports the cluster's node states from
// /healthz and the deltas of the router's forwarding counters
// (requests, forwards, failovers, hedges, no-replica rejections), so a
// replay doubles as a cluster health report.
//
// Usage:
//
//	loadgen [-addr http://127.0.0.1:8787] [-seed N] [-scale F] [-tau F]
//	        [-month YYYY-MM] [-batch N] [-rate F] [-reload-at F]
//	        [-rules rules.json] [-noverify] [-router]
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/classify"
	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/features"
	"repro/internal/retry"
	"repro/internal/serve"
	"repro/internal/synth"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", "http://127.0.0.1:8787", "longtaild base URL")
	seed := flag.Int64("seed", 42, "generation seed (must match the daemon's)")
	scale := flag.Float64("scale", 0.02, "generation scale (must match the daemon's)")
	tau := flag.Float64("tau", 0.001, "rule-selection threshold (must match the daemon's)")
	monthFlag := flag.String("month", "", "month to replay (YYYY-MM; default: second month)")
	batch := flag.Int("batch", 64, "events per request")
	rate := flag.Float64("rate", 0, "events per second (0 = unthrottled)")
	reloadAt := flag.Float64("reload-at", 0.5, "hot-reload the rule set after this fraction of the replay (<0 disables)")
	rulesPath := flag.String("rules", "", "rule set JSON to verify against and reload (default: train locally)")
	noVerify := flag.Bool("noverify", false, "skip the offline cross-check")
	router := flag.Bool("router", false, "-addr is a longtailrouter front: report node states and failover/hedge counter deltas around the run")
	flag.Parse()
	ctx := context.Background()

	// Rebuild the daemon's deterministic world: same corpus, same rules.
	p, err := experiments.Run(synth.DefaultConfig(*seed, *scale))
	if err != nil {
		return err
	}
	ex, err := features.NewExtractor(p.Store, p.Result.Oracle)
	if err != nil {
		return err
	}
	months := p.Store.Months()
	if len(months) == 0 {
		return fmt.Errorf("no data generated")
	}
	var clf *classify.Classifier
	if *rulesPath != "" {
		clf, err = serve.LoadRulesFile(*rulesPath, classify.Reject)
	} else {
		var train []features.Instance
		train, err = ex.Instances(p.Store.EventIndexesInMonth(months[0]))
		if err != nil {
			return err
		}
		clf, err = classify.Train(train, *tau, classify.Reject)
	}
	if err != nil {
		return err
	}
	var rulesJSON bytes.Buffer
	if err := serve.ExportRules(&rulesJSON, clf); err != nil {
		return err
	}

	month := months[0]
	if len(months) > 1 {
		month = months[1]
	}
	if *monthFlag != "" {
		found := false
		for _, m := range months {
			if m.String() == *monthFlag {
				month, found = m, true
				break
			}
		}
		if !found {
			return fmt.Errorf("month %q not in dataset (have %v)", *monthFlag, months)
		}
	}
	allEvents := p.Store.Events()
	var replay []dataset.DownloadEvent
	for _, idx := range p.Store.EventIndexesInMonth(month) {
		replay = append(replay, allEvents[idx])
	}
	if len(replay) == 0 {
		return fmt.Errorf("month %s has no events", month)
	}

	var retries atomic.Uint64
	client := &serve.Client{
		BaseURL: *addr,
		// A stable request ID rides every batch, so a response lost on
		// the wire is retransmitted under the same ID and a journaling
		// daemon answers from its ledger instead of reclassifying.
		RequestIDPrefix: fmt.Sprintf("loadgen-%d", os.Getpid()),
	}
	client.Retry.OnRetry = func(int, error) { retries.Add(1) }

	var backoffs atomic.Uint64
	nBatches := (len(replay) + *batch - 1) / *batch
	reloadBatch := -1
	if *reloadAt >= 0 {
		reloadBatch = int(float64(nBatches) * *reloadAt)
	}
	var interval time.Duration
	if *rate > 0 {
		interval = time.Duration(float64(*batch) / *rate * float64(time.Second))
	}

	fmt.Printf("replaying %s: %d events in %d batches of %d against %s\n",
		month, len(replay), nBatches, *batch, *addr)
	var routerBefore map[string]float64
	if *router {
		if err := printRouterHealth(ctx, client, "before replay"); err != nil {
			return fmt.Errorf("router healthz: %w", err)
		}
		text, err := client.Metrics(ctx)
		if err != nil {
			return fmt.Errorf("router metrics: %w", err)
		}
		routerBefore = counterSamples(text)
	}
	verdictCounts := map[string]int{}
	gens := map[uint64]int{}
	mismatches := 0
	var reloadGen uint64
	start := time.Now()
	next := start
	for b := 0; b < nBatches; b++ {
		if b == reloadBatch {
			gen, err := client.Reload(ctx, rulesJSON.Bytes())
			if err != nil {
				return fmt.Errorf("mid-replay reload: %w", err)
			}
			reloadGen = gen
			fmt.Printf("  hot reload at batch %d/%d: now serving generation %d\n", b, nBatches, gen)
		}
		if interval > 0 {
			//lint:allow retrypolicy open-loop pacing to the next send slot, not a retry; retry.Do would distort the offered load
			time.Sleep(time.Until(next))
			next = next.Add(interval)
		}
		lo, hi := b**batch, (b+1)**batch
		if hi > len(replay) {
			hi = len(replay)
		}
		// The client already retries transient failures per attempt; this
		// outer loop backs off harder (jittered exponential, longer cap)
		// when the daemon sheds load persistently — 429s under a burst
		// are backpressure to honor, not errors to abort on.
		var verdicts []serve.VerdictRecord
		err := retry.Do(ctx, retry.Policy{
			MaxAttempts:    8,
			InitialBackoff: 100 * time.Millisecond,
			MaxBackoff:     5 * time.Second,
			OnRetry:        func(int, error) { backoffs.Add(1) },
		}, func(ctx context.Context) error {
			var cerr error
			verdicts, cerr = client.Classify(ctx, replay[lo:hi])
			return cerr
		})
		if err != nil {
			return fmt.Errorf("batch %d: %w", b, err)
		}
		for i, v := range verdicts {
			verdictCounts[v.Verdict]++
			gens[v.Generation]++
			if *noVerify {
				continue
			}
			ev := &replay[lo+i]
			vec, err := ex.Vector(ev)
			if err != nil {
				return err
			}
			inst := features.Instance{Vector: vec, File: ev.File}
			offline, matched := clf.ClassifyFile([]features.Instance{inst})
			want := fmt.Sprintf("%s %s %v", ev.File, offline, matched)
			if got := v.Key(); got != want {
				mismatches++
				if mismatches <= 5 {
					fmt.Printf("  MISMATCH: streamed %q, offline %q\n", got, want)
				}
			}
		}
	}
	elapsed := time.Since(start)

	fmt.Printf("replayed %d events in %s (%.0f events/sec, %d uplink retries, %d overload backoffs, %d deferred batches)\n",
		len(replay), elapsed.Round(time.Millisecond),
		float64(len(replay))/elapsed.Seconds(), retries.Load(), backoffs.Load(), client.Deferred.Load())
	keys := make([]string, 0, len(verdictCounts))
	for k := range verdictCounts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("  verdict %-10s %d\n", k, verdictCounts[k])
	}
	genKeys := make([]uint64, 0, len(gens))
	for g := range gens {
		genKeys = append(genKeys, g)
	}
	sort.Slice(genKeys, func(i, j int) bool { return genKeys[i] < genKeys[j] })
	for _, g := range genKeys {
		fmt.Printf("  generation %d served %d verdicts\n", g, gens[g])
	}
	if reloadGen > 0 {
		fmt.Printf("  mid-replay hot reload succeeded (generation %d)\n", reloadGen)
	}
	if !*noVerify {
		if mismatches > 0 {
			return fmt.Errorf("%d/%d streamed verdicts differ from offline classification", mismatches, len(replay))
		}
		fmt.Printf("  all %d streamed verdicts identical to offline classification\n", len(replay))
	}

	if *router {
		return reportRouter(ctx, client, routerBefore)
	}

	// Surface the daemon's own counters for the run.
	metrics, err := client.Metrics(ctx)
	if err != nil {
		return err
	}
	for _, line := range strings.Split(metrics, "\n") {
		if strings.HasPrefix(line, "longtail_") && !strings.Contains(line, "_bucket") &&
			!strings.Contains(line, "_sum") && !strings.Contains(line, "_count") {
			fmt.Printf("  %s\n", line)
		}
	}
	return nil
}

// printRouterHealth renders the router's /healthz view of the cluster:
// overall status and generation plus the state machine position and
// rule generation of every member replica.
func printRouterHealth(ctx context.Context, client *serve.Client, label string) error {
	h, err := client.Health(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("router %s: status %v, generation %v", label, h["status"], h["generation"])
	if t, ok := h["target_generation"]; ok {
		fmt.Printf(" (target %v)", t)
	}
	fmt.Println()
	if reason, ok := h["degraded_reason"].(string); ok && reason != "" {
		fmt.Printf("  degraded: %s\n", reason)
	}
	nodes, _ := h["nodes"].([]any)
	for _, n := range nodes {
		m, ok := n.(map[string]any)
		if !ok {
			continue
		}
		fmt.Printf("  node %-22v %-9v generation %v\n", m["addr"], m["state"], m["generation"])
	}
	return nil
}

// counterSamples parses the single-valued samples out of a /metrics
// exposition body, keyed by the full sample name including labels.
func counterSamples(text string) map[string]float64 {
	out := map[string]float64{}
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, "longtail_") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			continue
		}
		out[line[:i]] = v
	}
	return out
}

// reportRouter prints the cluster state after the replay and the
// forwarding-counter deltas attributable to this run.
func reportRouter(ctx context.Context, client *serve.Client, before map[string]float64) error {
	if err := printRouterHealth(ctx, client, "after replay"); err != nil {
		return fmt.Errorf("router healthz: %w", err)
	}
	text, err := client.Metrics(ctx)
	if err != nil {
		return fmt.Errorf("router metrics: %w", err)
	}
	after := counterSamples(text)
	fmt.Println("router counters for this run:")
	for _, name := range []string{
		"longtail_router_requests_total",
		"longtail_router_forwarded_total",
		"longtail_failover_total",
		"longtail_hedged_total",
		"longtail_router_no_replica_total",
		"longtail_router_reloads_total",
		"longtail_router_reload_failures_total",
	} {
		fmt.Printf("  %-40s +%g\n", name, after[name]-before[name])
	}
	// Per-node served/failed deltas show how the ring spread the load.
	names := make([]string, 0, len(after))
	for name := range after {
		if strings.HasPrefix(name, "longtail_node_served_total") ||
			strings.HasPrefix(name, "longtail_node_failed_total") ||
			strings.HasPrefix(name, "longtail_breaker_trips_total") {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		if d := after[name] - before[name]; d != 0 {
			fmt.Printf("  %-40s +%g\n", name, d)
		}
	}
	return nil
}
