// Command avclass is the standalone family labeler, mirroring the
// AVclass tool the paper uses for Figure 1. It reads one JSON object per
// line from stdin (engine name → AV label) and prints the derived family
// (or "SINGLETON" when no token reaches support, following the original
// tool's convention).
//
// With -aliases, it first runs the alias-detection pass over the whole
// input, prints the detected alias map to stderr, and uses it for
// labeling — AVclass's two-phase workflow.
//
// Example:
//
//	echo '{"Symantec":"Trojan.Zbot","Kaspersky":"Trojan-Spy.Win32.Zbot.ruxa","Microsoft":"PWS:Win32/Zbot"}' | avclass
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/avclass"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "avclass:", err)
		os.Exit(1)
	}
}

func run() error {
	detectAliases := flag.Bool("aliases", false, "run alias detection over the input first")
	minSupport := flag.Int("support", 2, "minimum engines that must agree on a family token")
	flag.Parse()

	var corpus []map[string]string
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var labels map[string]string
		if err := json.Unmarshal(sc.Bytes(), &labels); err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
		corpus = append(corpus, labels)
	}
	if err := sc.Err(); err != nil {
		return err
	}

	opts := []avclass.Option{avclass.WithMinSupport(*minSupport)}
	if *detectAliases {
		detector := avclass.NewLabeler()
		cands := detector.DetectAliases(corpus, 20, 0.94)
		aliases := avclass.AliasMap(cands)
		for alias, canonical := range aliases {
			fmt.Fprintf(os.Stderr, "alias: %s -> %s\n", alias, canonical)
		}
		opts = append(opts, avclass.WithAliases(aliases))
	}
	labeler := avclass.NewLabeler(opts...)
	for _, labels := range corpus {
		res := labeler.Label(labels)
		if res.HasFamily() {
			fmt.Printf("%s\t%d\n", res.Family, res.Support)
		} else {
			fmt.Println("SINGLETON")
		}
	}
	return nil
}
