// Command benchjson converts `go test -bench` text output into a small
// machine-readable JSON document, so the serving-layer benchmark run
// (`make bench-json`) leaves an artifact CI can archive and a later
// session can diff against without re-parsing bench text.
//
// Usage:
//
//	benchjson [-o out.json] [-history hist.json -sha SHA -stamp STAMP] [bench-output.txt]
//
// With no file argument it reads stdin. The input is the standard
// testing-package benchmark format:
//
//	goos: linux
//	cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
//	BenchmarkServeThroughput  1200  808565 ns/op  316610 events/sec  ...
//
// Every `value unit` pair after the iteration count is kept, including
// custom b.ReportMetric units like events/sec and fsyncs. The output is
// deterministic for a given input (no timestamps — stamp the file
// externally if a run date matters), and the tool exits nonzero when no
// benchmark lines parse, so a silently-empty bench run fails the make
// target instead of archiving an empty artifact.
//
// With -history the run is additionally appended to a cumulative JSON
// array, each entry keyed by the git SHA and timestamp the CALLER
// passes in via -sha and -stamp — the tool itself never consults the
// clock or the repository, so the same input always produces the same
// entry and the history stays trustworthy across environments.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	// Name is the full benchmark name as printed, including any
	// sub-benchmark path and the -GOMAXPROCS suffix.
	Name string `json:"name"`
	// Iterations is b.N for the reported run.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit → value for every pair on the line
	// (ns/op, B/op, allocs/op, and custom ReportMetric units).
	Metrics map[string]float64 `json:"metrics"`
}

// Report is the whole document.
type Report struct {
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	Pkg        string   `json:"pkg,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

func parse(r io.Reader) (*Report, error) {
	rep := &Report{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
			continue
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
			continue
		case strings.HasPrefix(line, "pkg: "):
			rep.Pkg = strings.TrimPrefix(line, "pkg: ")
			continue
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // PASS/FAIL lines, -v chatter, etc.
		}
		res := Result{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchjson: bad value %q on line %q", fields[i], line)
			}
			res.Metrics[fields[i+1]] = v
		}
		rep.Benchmarks = append(rep.Benchmarks, res)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("benchjson: read: %w", err)
	}
	return rep, nil
}

// HistoryEntry is one archived bench run in the -history file.
type HistoryEntry struct {
	// SHA is the git commit the run measured, passed in by the caller.
	SHA string `json:"sha"`
	// Stamp is the run time, passed in by the caller (the tool never
	// reads the clock, keeping its output deterministic per input).
	Stamp  string  `json:"stamp"`
	Report *Report `json:"report"`
}

func run(in io.Reader, out io.Writer) (*Report, error) {
	rep, err := parse(in)
	if err != nil {
		return nil, err
	}
	if len(rep.Benchmarks) == 0 {
		return nil, fmt.Errorf("benchjson: no benchmark result lines in input")
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return rep, enc.Encode(rep)
}

// appendHistory appends one keyed run to the cumulative history array
// at path, creating the file on first use. A malformed existing file is
// an error, not something to silently overwrite — the history is an
// append-only record.
func appendHistory(path, sha, stamp string, rep *Report) error {
	if sha == "" || stamp == "" {
		return fmt.Errorf("benchjson: -history requires both -sha and -stamp")
	}
	var hist []HistoryEntry
	data, err := os.ReadFile(path)
	switch {
	case err == nil:
		if err := json.Unmarshal(data, &hist); err != nil {
			return fmt.Errorf("benchjson: existing history %s is not a JSON array of runs: %w", path, err)
		}
	case os.IsNotExist(err):
		// First run: start the array.
	default:
		return err
	}
	hist = append(hist, HistoryEntry{SHA: sha, Stamp: stamp, Report: rep})
	out, err := json.MarshalIndent(hist, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

func main() {
	outPath := flag.String("o", "", "write JSON here instead of stdout")
	historyPath := flag.String("history", "", "append this run to a cumulative history JSON array at this path")
	sha := flag.String("sha", "", "git commit SHA keying the -history entry (required with -history)")
	stamp := flag.String("stamp", "", "timestamp keying the -history entry, e.g. date -u +%Y-%m-%dT%H:%M:%SZ (required with -history)")
	flag.Parse()

	in := io.Reader(os.Stdin)
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	out := io.Writer(os.Stdout)
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		out = f
	}
	rep, err := run(in, out)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *historyPath != "" {
		if err := appendHistory(*historyPath, *sha, *stamp, rep); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
