// Command benchjson converts `go test -bench` text output into a small
// machine-readable JSON document, so the serving-layer benchmark run
// (`make bench-json`) leaves an artifact CI can archive and a later
// session can diff against without re-parsing bench text.
//
// Usage:
//
//	benchjson [-o out.json] [-history hist.json -sha SHA -stamp STAMP]
//	          [-gate-num NAME -gate-den NAME [-gate-metric UNIT]
//	           [-gate-ratio F] [-gate-min-cores N]] [bench-output.txt]
//
// With no file argument it reads stdin. The input is the standard
// testing-package benchmark format:
//
//	goos: linux
//	cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
//	BenchmarkServeThroughput  1200  808565 ns/op  316610 events/sec  ...
//
// Every `value unit` pair after the iteration count is kept, including
// custom b.ReportMetric units like events/sec and fsyncs. The output is
// deterministic for a given input (no timestamps — stamp the file
// externally if a run date matters), and the tool exits nonzero when no
// benchmark lines parse, so a silently-empty bench run fails the make
// target instead of archiving an empty artifact.
//
// The report also records the runner's GOMAXPROCS and CPU count —
// throughput from a 1-core and a 16-core machine must never be diffed
// as if comparable. With -gate-num/-gate-den the tool doubles as the
// CI regression fence: after writing the report it checks that the
// numerator benchmark kept at least -gate-ratio of the denominator's
// -gate-metric (default events/sec) and exits nonzero otherwise; on
// runners below -gate-min-cores CPUs the gate is skipped, because with
// no parallelism the sharded journal's overlapping fsyncs measure as
// pure overhead.
//
// With -history the run is additionally appended to a cumulative JSON
// array, each entry keyed by the git SHA and timestamp the CALLER
// passes in via -sha and -stamp — the tool itself never consults the
// clock or the repository, so the same input always produces the same
// entry and the history stays trustworthy across environments.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	// Name is the full benchmark name as printed, including any
	// sub-benchmark path and the -GOMAXPROCS suffix.
	Name string `json:"name"`
	// Iterations is b.N for the reported run.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit → value for every pair on the line
	// (ns/op, B/op, allocs/op, and custom ReportMetric units).
	Metrics map[string]float64 `json:"metrics"`
}

// Report is the whole document.
type Report struct {
	Goos   string `json:"goos,omitempty"`
	Goarch string `json:"goarch,omitempty"`
	Pkg    string `json:"pkg,omitempty"`
	CPU    string `json:"cpu,omitempty"`
	// GOMAXPROCS and NumCPU record the parallelism of the machine that
	// ran the benchmarks (injected by main, not parsed from the input):
	// throughput numbers from a 1-core runner and a 16-core runner are
	// not comparable, and the archived artifact must say which it was.
	GOMAXPROCS int      `json:"gomaxprocs,omitempty"`
	NumCPU     int      `json:"numcpu,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

func parse(r io.Reader) (*Report, error) {
	rep := &Report{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
			continue
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
			continue
		case strings.HasPrefix(line, "pkg: "):
			rep.Pkg = strings.TrimPrefix(line, "pkg: ")
			continue
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // PASS/FAIL lines, -v chatter, etc.
		}
		res := Result{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchjson: bad value %q on line %q", fields[i], line)
			}
			res.Metrics[fields[i+1]] = v
		}
		rep.Benchmarks = append(rep.Benchmarks, res)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("benchjson: read: %w", err)
	}
	return rep, nil
}

// HistoryEntry is one archived bench run in the -history file.
type HistoryEntry struct {
	// SHA is the git commit the run measured, passed in by the caller.
	SHA string `json:"sha"`
	// Stamp is the run time, passed in by the caller (the tool never
	// reads the clock, keeping its output deterministic per input).
	Stamp  string  `json:"stamp"`
	Report *Report `json:"report"`
}

func run(in io.Reader, out io.Writer, gomaxprocs, numcpu int) (*Report, error) {
	rep, err := parse(in)
	if err != nil {
		return nil, err
	}
	if len(rep.Benchmarks) == 0 {
		return nil, fmt.Errorf("benchjson: no benchmark result lines in input")
	}
	rep.GOMAXPROCS, rep.NumCPU = gomaxprocs, numcpu
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return rep, enc.Encode(rep)
}

// stripProcSuffix removes the -GOMAXPROCS suffix the testing package
// appends to parallel benchmark names (BenchmarkServeThroughput-8),
// so gate names match regardless of the runner's core count.
func stripProcSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 || i == len(name)-1 {
		return name
	}
	for _, c := range name[i+1:] {
		if c < '0' || c > '9' {
			return name
		}
	}
	return name[:i]
}

// findBench returns the first benchmark whose proc-suffix-stripped name
// equals name.
func findBench(rep *Report, name string) *Result {
	for i := range rep.Benchmarks {
		if stripProcSuffix(rep.Benchmarks[i].Name) == name {
			return &rep.Benchmarks[i]
		}
	}
	return nil
}

// gate enforces a minimum ratio between two benchmarks' values of one
// metric — the CI regression fence: the journaled serve path must keep
// at least minRatio of the unjournaled path's events/sec, or the run
// fails. A missing benchmark or metric is a failure too: a gate that
// silently skips because the bench didn't run protects nothing.
func gate(rep *Report, num, den, metric string, minRatio float64) error {
	nb, db := findBench(rep, num), findBench(rep, den)
	if nb == nil {
		return fmt.Errorf("benchjson: gate numerator %q not in the report", num)
	}
	if db == nil {
		return fmt.Errorf("benchjson: gate denominator %q not in the report", den)
	}
	nv, ok := nb.Metrics[metric]
	if !ok {
		return fmt.Errorf("benchjson: %q has no %q metric", num, metric)
	}
	dv, ok := db.Metrics[metric]
	if !ok {
		return fmt.Errorf("benchjson: %q has no %q metric", den, metric)
	}
	if dv <= 0 {
		return fmt.Errorf("benchjson: %q %s = %g, cannot form a ratio", den, metric, dv)
	}
	if ratio := nv / dv; ratio < minRatio {
		return fmt.Errorf("benchjson: gate failed: %s/%s %s ratio %.3f < %.3f (%g vs %g)",
			num, den, metric, ratio, minRatio, nv, dv)
	}
	return nil
}

// appendHistory appends one keyed run to the cumulative history array
// at path, creating the file on first use. A malformed existing file is
// an error, not something to silently overwrite — the history is an
// append-only record.
func appendHistory(path, sha, stamp string, rep *Report) error {
	if sha == "" || stamp == "" {
		return fmt.Errorf("benchjson: -history requires both -sha and -stamp")
	}
	var hist []HistoryEntry
	data, err := os.ReadFile(path)
	switch {
	case err == nil:
		if err := json.Unmarshal(data, &hist); err != nil {
			return fmt.Errorf("benchjson: existing history %s is not a JSON array of runs: %w", path, err)
		}
	case os.IsNotExist(err):
		// First run: start the array.
	default:
		return err
	}
	hist = append(hist, HistoryEntry{SHA: sha, Stamp: stamp, Report: rep})
	out, err := json.MarshalIndent(hist, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

func main() {
	outPath := flag.String("o", "", "write JSON here instead of stdout")
	historyPath := flag.String("history", "", "append this run to a cumulative history JSON array at this path")
	sha := flag.String("sha", "", "git commit SHA keying the -history entry (required with -history)")
	stamp := flag.String("stamp", "", "timestamp keying the -history entry, e.g. date -u +%Y-%m-%dT%H:%M:%SZ (required with -history)")
	gateNum := flag.String("gate-num", "", "gate: benchmark name (proc suffix stripped) whose metric forms the ratio numerator")
	gateDen := flag.String("gate-den", "", "gate: benchmark name forming the ratio denominator")
	gateMetric := flag.String("gate-metric", "events/sec", "gate: metric to compare")
	gateRatio := flag.Float64("gate-ratio", 0.65, "gate: minimum numerator/denominator ratio")
	gateMinCores := flag.Int("gate-min-cores", 4, "gate: skip the check below this many CPUs (single-core runners measure fsync overlap as pure overhead)")
	flag.Parse()

	in := io.Reader(os.Stdin)
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	out := io.Writer(os.Stdout)
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		out = f
	}
	rep, err := run(in, out, runtime.GOMAXPROCS(0), runtime.NumCPU())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *historyPath != "" {
		if err := appendHistory(*historyPath, *sha, *stamp, rep); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *gateNum != "" || *gateDen != "" {
		if rep.NumCPU < *gateMinCores {
			fmt.Fprintf(os.Stderr, "benchjson: gate skipped: %d CPUs < %d (ratio is meaningless without parallel fsync pipelines)\n",
				rep.NumCPU, *gateMinCores)
			return
		}
		if err := gate(rep, *gateNum, *gateDen, *gateMetric, *gateRatio); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchjson: gate passed: %s/%s %s >= %.2f\n", *gateNum, *gateDen, *gateMetric, *gateRatio)
	}
}
