package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkRuleMatch/indexed 	 4105786	       292.7 ns/op	       0 B/op	       0 allocs/op
BenchmarkServeThroughput          	    1200	    808565 ns/op	    316610 events/sec	  462176 B/op	     195 allocs/op
BenchmarkServeThroughputJournaled 	    1200	   1653540 ns/op	         2.000 compactions	    154819 events/sec	       915.0 fsyncs	  516720 B/op	     198 allocs/op
PASS
ok  	repro	4.198s
`

func TestParse(t *testing.T) {
	rep, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.CPU != "Intel(R) Xeon(R) Processor @ 2.10GHz" || rep.Goos != "linux" || rep.Pkg != "repro" {
		t.Fatalf("header mismatch: %+v", rep)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("got %d benchmarks, want 3", len(rep.Benchmarks))
	}
	rm := rep.Benchmarks[0]
	if rm.Name != "BenchmarkRuleMatch/indexed" || rm.Iterations != 4105786 {
		t.Fatalf("rule match line: %+v", rm)
	}
	if rm.Metrics["ns/op"] != 292.7 || rm.Metrics["allocs/op"] != 0 {
		t.Fatalf("rule match metrics: %+v", rm.Metrics)
	}
	j := rep.Benchmarks[2]
	if j.Metrics["events/sec"] != 154819 || j.Metrics["fsyncs"] != 915 || j.Metrics["compactions"] != 2 {
		t.Fatalf("journaled metrics: %+v", j.Metrics)
	}
}

func TestRunRoundTrips(t *testing.T) {
	var out bytes.Buffer
	if err := run(strings.NewReader(sample), &out); err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out.String())
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("round trip lost benchmarks: %+v", rep)
	}
}

func TestRunRejectsEmpty(t *testing.T) {
	var out bytes.Buffer
	if err := run(strings.NewReader("PASS\nok x 1s\n"), &out); err == nil {
		t.Fatal("want error on input with no benchmark lines")
	}
}
