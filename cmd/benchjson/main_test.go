package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkRuleMatch/indexed 	 4105786	       292.7 ns/op	       0 B/op	       0 allocs/op
BenchmarkServeThroughput          	    1200	    808565 ns/op	    316610 events/sec	  462176 B/op	     195 allocs/op
BenchmarkServeThroughputJournaled 	    1200	   1653540 ns/op	         2.000 compactions	    154819 events/sec	       915.0 fsyncs	  516720 B/op	     198 allocs/op
PASS
ok  	repro	4.198s
`

func TestParse(t *testing.T) {
	rep, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.CPU != "Intel(R) Xeon(R) Processor @ 2.10GHz" || rep.Goos != "linux" || rep.Pkg != "repro" {
		t.Fatalf("header mismatch: %+v", rep)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("got %d benchmarks, want 3", len(rep.Benchmarks))
	}
	rm := rep.Benchmarks[0]
	if rm.Name != "BenchmarkRuleMatch/indexed" || rm.Iterations != 4105786 {
		t.Fatalf("rule match line: %+v", rm)
	}
	if rm.Metrics["ns/op"] != 292.7 || rm.Metrics["allocs/op"] != 0 {
		t.Fatalf("rule match metrics: %+v", rm.Metrics)
	}
	j := rep.Benchmarks[2]
	if j.Metrics["events/sec"] != 154819 || j.Metrics["fsyncs"] != 915 || j.Metrics["compactions"] != 2 {
		t.Fatalf("journaled metrics: %+v", j.Metrics)
	}
}

func TestRunRoundTrips(t *testing.T) {
	var out bytes.Buffer
	if _, err := run(strings.NewReader(sample), &out, 8, 16); err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out.String())
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("round trip lost benchmarks: %+v", rep)
	}
	if rep.GOMAXPROCS != 8 || rep.NumCPU != 16 {
		t.Fatalf("parallelism not recorded: gomaxprocs=%d numcpu=%d", rep.GOMAXPROCS, rep.NumCPU)
	}
}

func TestRunRejectsEmpty(t *testing.T) {
	var out bytes.Buffer
	if _, err := run(strings.NewReader("PASS\nok x 1s\n"), &out, 1, 1); err == nil {
		t.Fatal("want error on input with no benchmark lines")
	}
}

func TestGate(t *testing.T) {
	rep := &Report{Benchmarks: []Result{
		{Name: "BenchmarkServeThroughput-8", Metrics: map[string]float64{"events/sec": 300000}},
		{Name: "BenchmarkServeThroughputJournaled-8", Metrics: map[string]float64{"events/sec": 250000}},
		{Name: "BenchmarkRuleMatch/indexed", Metrics: map[string]float64{"ns/op": 290}},
	}}
	// 250k/300k ~ 0.83: passes at 0.65, fails at 0.9.
	if err := gate(rep, "BenchmarkServeThroughputJournaled", "BenchmarkServeThroughput", "events/sec", 0.65); err != nil {
		t.Fatalf("gate at 0.65 failed: %v", err)
	}
	if err := gate(rep, "BenchmarkServeThroughputJournaled", "BenchmarkServeThroughput", "events/sec", 0.9); err == nil {
		t.Fatal("gate at 0.9 passed a 0.83 ratio")
	}
	// A missing benchmark or metric must fail loudly, never skip.
	if err := gate(rep, "BenchmarkMissing", "BenchmarkServeThroughput", "events/sec", 0.65); err == nil {
		t.Fatal("gate with missing numerator passed")
	}
	if err := gate(rep, "BenchmarkServeThroughputJournaled", "BenchmarkServeThroughput", "fsyncs", 0.65); err == nil {
		t.Fatal("gate with missing metric passed")
	}
	// Sub-benchmark names with digits after a dash that is not a proc
	// suffix must not be mangled.
	if got := stripProcSuffix("BenchmarkServeThroughput-8"); got != "BenchmarkServeThroughput" {
		t.Fatalf("stripProcSuffix = %q", got)
	}
	if got := stripProcSuffix("BenchmarkRuleMatch/indexed"); got != "BenchmarkRuleMatch/indexed" {
		t.Fatalf("stripProcSuffix mangled %q", got)
	}
	if got := stripProcSuffix("BenchmarkX-8a"); got != "BenchmarkX-8a" {
		t.Fatalf("stripProcSuffix mangled %q", got)
	}
}

func TestAppendHistory(t *testing.T) {
	rep, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "hist.json")

	// First append creates the file; subsequent appends grow the array
	// in order, keyed by the caller-supplied SHA and stamp.
	if err := appendHistory(path, "sha-1", "2026-08-07T00:00:00Z", rep); err != nil {
		t.Fatal(err)
	}
	if err := appendHistory(path, "sha-2", "2026-08-07T01:00:00Z", rep); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var hist []HistoryEntry
	if err := json.Unmarshal(data, &hist); err != nil {
		t.Fatalf("history is not a JSON array: %v\n%s", err, data)
	}
	if len(hist) != 2 {
		t.Fatalf("history has %d entries, want 2", len(hist))
	}
	if hist[0].SHA != "sha-1" || hist[1].SHA != "sha-2" {
		t.Fatalf("history order/keys wrong: %+v", hist)
	}
	if hist[1].Stamp != "2026-08-07T01:00:00Z" {
		t.Fatalf("stamp not preserved: %+v", hist[1])
	}
	if len(hist[0].Report.Benchmarks) != 3 {
		t.Fatalf("embedded report lost benchmarks: %+v", hist[0].Report)
	}
}

func TestAppendHistoryRequiresKeys(t *testing.T) {
	rep := &Report{Benchmarks: []Result{{Name: "BenchmarkX", Iterations: 1}}}
	path := filepath.Join(t.TempDir(), "hist.json")
	if err := appendHistory(path, "", "2026-08-07T00:00:00Z", rep); err == nil {
		t.Fatal("missing -sha accepted")
	}
	if err := appendHistory(path, "sha", "", rep); err == nil {
		t.Fatal("missing -stamp accepted")
	}
}

func TestAppendHistoryRefusesMalformed(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hist.json")
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	rep := &Report{Benchmarks: []Result{{Name: "BenchmarkX", Iterations: 1}}}
	if err := appendHistory(path, "sha", "stamp", rep); err == nil {
		t.Fatal("malformed history silently overwritten")
	}
}
