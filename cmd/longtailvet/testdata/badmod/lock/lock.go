// Package lock is the dependency side of the interprocedural seeds:
// its lock facts and context rooting reach the serve package only
// through the vetx facts files cmd/go threads between vet invocations.
// Analyzed on its own it is clean — every finding it enables is
// reported at the serve call sites.
package lock

import (
	"context"
	"sync"
	"time"
)

var mu sync.Mutex

// Grab acquires the package lock briefly.
func Grab() {
	mu.Lock()
	mu.Unlock()
}

// Nested runs f while holding the package lock.
func Nested(f func()) {
	mu.Lock()
	f()
	mu.Unlock()
}

// Refresh roots its own context and accepts none — calling it from a
// request path drops the caller's deadline.
func Refresh() error {
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	<-ctx.Done()
	return ctx.Err()
}
