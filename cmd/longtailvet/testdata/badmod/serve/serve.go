// Package serve seeds one bug per interprocedural analyzer class: a
// cross-package lock-order cycle (both directions visible only through
// the lock package's facts), a leaked goroutine, a dropped request
// context, and a misspelled metric. The longtailvet integration test
// asserts each is caught through the real `go vet` facts pipeline.
package serve

import (
	"context"
	"fmt"
	"net/http"
	"sync"

	"badmod/lock"
)

var mu sync.Mutex

// Flow1 acquires mu, then calls into lock: mu -> lock.mu.
func Flow1() {
	mu.Lock()
	lock.Grab()
	mu.Unlock()
}

// Flow2 hands lock a closure acquiring mu under lock.mu: the reverse
// order, closing the cycle.
func Flow2() {
	lock.Nested(func() {
		mu.Lock()
		mu.Unlock()
	})
}

// Spawn leaks a goroutine: an unexitable loop with no signal.
func Spawn() {
	go func() {
		n := 0
		for {
			n++
		}
	}()
}

// Handler severs and then drops the request's context, and emits a
// camel-case metric.
func Handler(w http.ResponseWriter, r *http.Request) {
	ctx := context.Background()
	_ = ctx
	if err := lock.Refresh(); err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	fmt.Fprintf(w, "longtail_Served_Total %d\n", 1)
	//lint:allow metricdrift legacy dashboard still scrapes the old name
	fmt.Fprintf(w, "longtail_Legacy_Rows %d\n", 1)
}
