// Package synth violates the determinism invariant: its base name puts
// it in the deterministic core, and it reads the wall clock and the
// global PRNG.
package synth

import (
	"math/rand"
	"time"
)

// Stamp reads the wall clock inside the deterministic core.
func Stamp() int64 { return time.Now().UnixNano() }

// Jitter uses the global PRNG.
func Jitter() int { return rand.Intn(100) }
