// Package app violates the errwrap, retrypolicy and atomicswap
// invariants in one compact file; the longtailvet integration test
// asserts this module's exact diagnostic set.
package app

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"
)

// ErrBusy is a sentinel.
var ErrBusy = errors.New("busy")

type state struct {
	gen atomic.Uint64
}

// Wrap flattens an error with %v.
func Wrap(err error) error {
	return fmt.Errorf("ingest: %v", err)
}

// IsBusy compares a sentinel with ==.
func IsBusy(err error) bool {
	return err == ErrBusy
}

// WaitBusy hand-rolls a sleep-retry loop.
func WaitBusy(do func() error) {
	for IsBusy(do()) {
		time.Sleep(50 * time.Millisecond)
	}
}

// Fork copies an atomic field.
func (s *state) Fork() uint64 {
	snapshot := s.gen
	return snapshot.Load()
}
