// Command longtailvet runs the repo's project-specific static-analysis
// suite (internal/lint): six analyzers that mechanically enforce the
// determinism, locking, journal-ordering, retry-policy, error-wrapping
// and atomic-swap invariants the reproduction's correctness rests on.
//
// Two ways to run it:
//
//	longtailvet ./...                         # standalone, vet-style output
//	go vet -vettool=$(which longtailvet) ./... # as a vet tool (covers _test.go files)
//
// The vettool form speaks cmd/go's unitchecker protocol, so findings
// come back in standard file:line:col form, participate in go vet's
// result caching, and include test files. Exit status 2 means findings,
// 1 means an internal error. Intentional exceptions in the tree carry
// `//lint:allow <analyzer> <reason>` annotations; see internal/lint.
package main

import (
	"repro/internal/lint"
	"repro/internal/lint/lintkit"
)

func main() {
	lintkit.Main(lint.Suite()...)
}
