package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// buildVettool compiles the longtailvet binary once into a temp dir.
func buildVettool(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "longtailvet")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("building longtailvet: %v\n%s", err, out)
	}
	return bin
}

// expectedFindings is the exact diagnostic set the badmod fixture
// module must produce, as (file-position regexp, message regexp)
// pairs. The serve findings are the interprocedural seeds: the
// lock-order cycle and the dropped context only surface when the lock
// package's facts reach serve's analysis through the vetx pipeline.
// (Facts-positioned findings carry no column, so those regexps only
// pin file and line.)
var expectedFindings = []struct{ pos, msg string }{
	{`app/app\.go:\d+:\d+`, `error formatted with %v loses the error chain`},
	{`app/app\.go:\d+:\d+`, `comparing an error to sentinel ErrBusy with ==`},
	{`app/app\.go:\d+:\d+`, `time\.Sleep inside a loop is a hand-rolled retry/poll loop`},
	{`app/app\.go:\d+:\d+`, `atomic\.Uint64 field gen may only be the receiver of its own methods`},
	{`synth/gen\.go:\d+:\d+`, `time\.Now breaks seed-determinism`},
	{`synth/gen\.go:\d+:\d+`, `global math/rand\.Intn uses shared process state`},
	{`serve/serve\.go:\d+`, `lock order cycle: serve\.mu -> lock\.mu -> serve\.mu`},
	{`serve/serve\.go:\d+`, `lock order cycle: lock\.mu -> serve\.mu -> lock\.mu`},
	{`serve/serve\.go:\d+:\d+`, `goroutine runs a for \{\} loop with no exit`},
	{`serve/serve\.go:\d+:\d+`, `context\.Background\(\) in Handler severs the caller's deadline`},
	{`serve/serve\.go:\d+:\d+`, `call drops the request context: lock\.Refresh roots a fresh context`},
	{`serve/serve\.go:\d+`, `metric longtail_Served_Total is not snake_case`},
}

// checkFindings asserts output contains exactly the expected set.
func checkFindings(t *testing.T, output string) {
	t.Helper()
	var lines []string
	for _, line := range strings.Split(output, "\n") {
		if strings.Contains(line, ".go:") {
			lines = append(lines, line)
		}
	}
	for _, want := range expectedFindings {
		re := regexp.MustCompile(want.pos + `: .*` + want.msg)
		found := false
		for _, line := range lines {
			if re.MatchString(line) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("missing expected finding %q %q", want.pos, want.msg)
		}
	}
	if len(lines) != len(expectedFindings) {
		t.Errorf("got %d findings, want exactly %d:\n%s", len(lines), len(expectedFindings), output)
	}
}

// TestVettoolProtocol drives the binary exactly as cmd/go does:
// `go vet -vettool=longtailvet ./...` over the known-bad fixture
// module, asserting the exact diagnostic set and a failing exit.
func TestVettoolProtocol(t *testing.T) {
	bin := buildVettool(t)
	badmod, err := filepath.Abs(filepath.Join("testdata", "badmod"))
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = badmod
	cmd.Env = append(os.Environ(), "GOWORK=off", "GOFLAGS=")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Run(); err == nil {
		t.Fatalf("go vet -vettool succeeded on the bad fixture; want findings\nstderr:\n%s", stderr.String())
	}
	checkFindings(t, stderr.String())
}

// TestStandaloneMode runs the same fixture through the binary's own
// loader; the diagnostic set must match the vettool path exactly.
func TestStandaloneMode(t *testing.T) {
	bin := buildVettool(t)
	badmod, err := filepath.Abs(filepath.Join("testdata", "badmod"))
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(bin, "./...")
	cmd.Dir = badmod
	cmd.Env = append(os.Environ(), "GOWORK=off", "GOFLAGS=")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	err = cmd.Run()
	var exit *exec.ExitError
	if !errors.As(err, &exit) || exit.ExitCode() != 2 {
		t.Fatalf("standalone run: err = %v (stderr %q), want exit status 2", err, stderr.String())
	}
	checkFindings(t, stderr.String())
}

// TestJSONReport runs the standalone loader with -json and checks the
// machine-readable report: every finding carries file/line/analyzer/
// message, and the fixture's //lint:allow site appears in the
// suppressed list with its documented reason — the audit trail CI
// archives as LINT_report.json.
func TestJSONReport(t *testing.T) {
	bin := buildVettool(t)
	badmod, err := filepath.Abs(filepath.Join("testdata", "badmod"))
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(bin, "-json", "./...")
	cmd.Dir = badmod
	cmd.Env = append(os.Environ(), "GOWORK=off", "GOFLAGS=")
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	err = cmd.Run()
	var exit *exec.ExitError
	if !errors.As(err, &exit) || exit.ExitCode() != 2 {
		t.Fatalf("-json run: err = %v (stderr %q), want exit status 2", err, stderr.String())
	}
	var report struct {
		Findings []struct {
			File, Analyzer, Message, SuppressedBy string
			Line                                  int
		}
		Suppressed []struct {
			File, Analyzer, Message, SuppressedBy string
			Line                                  int
		}
	}
	if err := json.Unmarshal(stdout.Bytes(), &report); err != nil {
		t.Fatalf("-json output is not a report document: %v\n%s", err, stdout.String())
	}
	if len(report.Findings) != len(expectedFindings) {
		t.Errorf("-json reported %d findings, want %d", len(report.Findings), len(expectedFindings))
	}
	for _, f := range report.Findings {
		if f.File == "" || f.Line == 0 || f.Analyzer == "" || f.Message == "" {
			t.Errorf("finding missing a required field: %+v", f)
		}
		if f.SuppressedBy != "" {
			t.Errorf("active finding carries a suppression reason: %+v", f)
		}
	}
	found := false
	for _, s := range report.Suppressed {
		if s.Analyzer == "metricdrift" && strings.Contains(s.SuppressedBy, "legacy dashboard") {
			found = true
		}
	}
	if !found {
		t.Errorf("suppressed list missing the fixture's //lint:allow metricdrift site: %+v", report.Suppressed)
	}
}

// TestAnalyzerFlagsReachVettool verifies config-driven scoping flows
// through cmd/go's flag relay: widening -determinism.pkgs has no
// effect on the fixture's "clean"-named package unless it is added.
func TestAnalyzerFlagsReachVettool(t *testing.T) {
	bin := buildVettool(t)
	badmod, err := filepath.Abs(filepath.Join("testdata", "badmod"))
	if err != nil {
		t.Fatal(err)
	}
	// Narrow the determinism scope to nothing: the synth findings must
	// disappear while the rest stay.
	cmd := exec.Command("go", "vet", "-vettool="+bin, "-determinism.pkgs=none", "./...")
	cmd.Dir = badmod
	cmd.Env = append(os.Environ(), "GOWORK=off", "GOFLAGS=")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Run(); err == nil {
		t.Fatal("expected remaining findings to fail the run")
	}
	out := stderr.String()
	if strings.Contains(out, "seed-determinism") {
		t.Errorf("determinism findings survived -determinism.pkgs=none:\n%s", out)
	}
	if !strings.Contains(out, "error formatted with %v") {
		t.Errorf("errwrap findings missing under -determinism.pkgs=none:\n%s", out)
	}
}

// TestVersionProtocol checks the -V=full line cmd/go parses for its
// action cache: "<name> version devel ... buildID=<hash>".
func TestVersionProtocol(t *testing.T) {
	bin := buildVettool(t)
	out, err := exec.Command(bin, "-V=full").Output()
	if err != nil {
		t.Fatal(err)
	}
	fields := strings.Fields(strings.TrimSpace(string(out)))
	if len(fields) < 3 || fields[1] != "version" || !strings.HasPrefix(fields[len(fields)-1], "buildID=") {
		t.Errorf("-V=full output %q does not match cmd/go's expected shape", out)
	}
}

// TestFlagsProtocol checks the -flags JSON cmd/go requests before
// relaying user flags.
func TestFlagsProtocol(t *testing.T) {
	bin := buildVettool(t)
	out, err := exec.Command(bin, "-flags").Output()
	if err != nil {
		t.Fatal(err)
	}
	var flags []struct {
		Name  string
		Bool  bool
		Usage string
	}
	if err := json.Unmarshal(out, &flags); err != nil {
		t.Fatalf("-flags output is not the JSON cmd/go expects: %v\n%s", err, out)
	}
	names := make(map[string]bool)
	for _, f := range flags {
		names[f.Name] = true
	}
	for _, want := range []string{"determinism.pkgs", "determinism.allow", "retrypolicy.exempt", "journalorder.pkgs"} {
		if !names[want] {
			t.Errorf("-flags output missing %q", want)
		}
	}
}
