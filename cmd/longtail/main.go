// Command longtail runs the full reproduction: it generates the
// synthetic telemetry, labels it with the ground-truth pipeline, and
// regenerates every table and figure from the paper's evaluation,
// printing measured values next to the paper's reported ones.
//
// Usage:
//
//	longtail [-seed N] [-scale F] [-only id1,id2] [-outdir dir] [-list]
//
// Experiment IDs follow the paper (table1..table17, fig1..fig6) plus
// the auxiliary studies (packers, rulestats, avtypestats, baselines,
// evasion, chains); -list enumerates them.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/experiments"
	"repro/internal/synth"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "longtail:", err)
		os.Exit(1)
	}
}

func run() error {
	seed := flag.Int64("seed", 42, "generation seed")
	scale := flag.Float64("scale", 0.02, "fraction of the paper's data volume (1.0 = 3M events)")
	only := flag.String("only", "", "comma-separated experiment IDs to run (default: all)")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	outdir := flag.String("outdir", "", "also write each experiment's output to <outdir>/<id>.txt")
	flag.Parse()

	if *list {
		for _, e := range experiments.All {
			fmt.Printf("%-10s %s\n", e.ID, e.Name)
		}
		return nil
	}

	var selected []experiments.Experiment
	if *only == "" {
		selected = experiments.All
	} else {
		for _, id := range strings.Split(*only, ",") {
			e, err := experiments.ByID(strings.TrimSpace(id))
			if err != nil {
				return err
			}
			selected = append(selected, e)
		}
	}

	fmt.Printf("generating synthetic telemetry (seed=%d scale=%v)...\n", *seed, *scale)
	p, err := experiments.Run(synth.DefaultConfig(*seed, *scale))
	if err != nil {
		return err
	}
	fmt.Printf("events=%s files=%s machines=%s (agent suppressed: %d not-executed, %d whitelisted-URL, %d prevalence-cap)\n\n",
		count(p.Store.NumEvents()), count(len(p.Store.DownloadedFiles())), count(len(p.Store.Machines())),
		p.Result.AgentStats.DroppedNotExecuted, p.Result.AgentStats.DroppedWhitelistedURL,
		p.Result.AgentStats.DroppedPrevalenceCap)

	if *outdir != "" {
		if err := os.MkdirAll(*outdir, 0o755); err != nil {
			return err
		}
	}
	for _, e := range selected {
		fmt.Printf("=== %s ===\n", e.Name)
		var out io.Writer = os.Stdout
		var f *os.File
		if *outdir != "" {
			var err error
			f, err = os.Create(filepath.Join(*outdir, e.ID+".txt"))
			if err != nil {
				return err
			}
			out = io.MultiWriter(os.Stdout, f)
		}
		err := e.Run(p, out)
		if f != nil {
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
	}
	return nil
}

func count(n int) string {
	s := fmt.Sprint(n)
	if len(s) <= 3 {
		return s
	}
	var out []byte
	for i, c := range []byte(s) {
		if i > 0 && (len(s)-i)%3 == 0 {
			out = append(out, ',')
		}
		out = append(out, c)
	}
	return string(out)
}
