// Command analyze loads a dataset in the gendata/export line-JSON
// format and runs the measurement analytics over it: the long-tail
// summary, prevalence distribution, domain studies, signer studies,
// process behaviour and infection transitions. It demonstrates that the
// analysis library is decoupled from the synthetic generator — any
// telemetry shaped like the paper's 5-tuples works.
//
// Usage:
//
//	gendata -scale 0.01 -o ds.jsonl
//	analyze ds.jsonl
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
	"repro/internal/dataset"
	"repro/internal/export"
	"repro/internal/report"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "analyze:", err)
		os.Exit(1)
	}
}

func run() error {
	flag.Parse()
	if flag.NArg() != 1 {
		return fmt.Errorf("usage: analyze <dataset.jsonl>")
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()
	store, oracle, err := export.ReadStoreWithOracle(f)
	if err != nil {
		return err
	}
	store.Freeze()
	an, err := analysis.New(store, oracle)
	if err != nil {
		return err
	}

	fmt.Printf("loaded %d events, %d files, %d machines across %d months\n\n",
		store.NumEvents(), len(store.DownloadedFiles()), len(store.Machines()),
		len(store.Months()))

	// Label mix.
	var counts [5]int
	files := store.DownloadedFiles()
	for _, fh := range files {
		counts[store.Label(fh)]++
	}
	tbl := report.NewTable("label mix", "label", "files", "share")
	for _, l := range []dataset.Label{
		dataset.LabelBenign, dataset.LabelLikelyBenign, dataset.LabelMalicious,
		dataset.LabelLikelyMalicious, dataset.LabelUnknown,
	} {
		tbl.AddRow(l.String(), report.Count(counts[l]),
			report.Pct(float64(counts[l])/float64(len(files))))
	}
	if err := tbl.Render(os.Stdout); err != nil {
		return err
	}

	// Prevalence.
	ps := an.Prevalence()
	fmt.Printf("\nprevalence-1 share: %s; machines touching unknowns: %s\n",
		report.Pct(ps.All.Fraction(1)), report.Pct(an.MachinesTouchingUnknown()))

	// Top domains.
	overall, _, malicious := an.DomainPopularity(5)
	fmt.Println("\ntop domains by machines (overall):")
	for _, kv := range overall {
		fmt.Printf("  %-28s %s\n", kv.Key, report.Count(kv.Count))
	}
	fmt.Println("top domains by machines (malicious downloads):")
	for _, kv := range malicious {
		fmt.Printf("  %-28s %s\n", kv.Key, report.Count(kv.Count))
	}

	// Transitions.
	fmt.Println("\ninfection transitions:")
	for _, c := range an.AllTransitions() {
		if c.Anchored == 0 {
			continue
		}
		sameDay := 0.0
		if c.DeltaDays.Len() > 0 {
			sameDay = c.DeltaDays.At(1)
		}
		fmt.Printf("  %-8s anchored %s, transitioned %s (same-day %s)\n",
			c.Source, report.Count(c.Anchored), report.Count(c.Transitioned),
			report.Pct(sameDay))
	}
	return nil
}
