// Command gendata generates a synthetic download-telemetry dataset,
// runs the full ground-truth labeling pipeline over it, and writes the
// result to stdout (or a file) in the line-JSON format understood by
// internal/export — one header line followed by meta/event/truth/url
// records.
//
// Usage:
//
//	gendata [-seed N] [-scale F] [-o dataset.jsonl] [-unlabeled]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/avsim"
	"repro/internal/export"
	"repro/internal/labeling"
	"repro/internal/synth"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "gendata:", err)
		os.Exit(1)
	}
}

func run() error {
	seed := flag.Int64("seed", 42, "generation seed")
	scale := flag.Float64("scale", 0.01, "fraction of the paper's data volume")
	out := flag.String("o", "-", "output path ('-' for stdout)")
	unlabeled := flag.Bool("unlabeled", false, "skip the ground-truth labeling pass")
	flag.Parse()

	res, err := synth.Generate(synth.DefaultConfig(*seed, *scale))
	if err != nil {
		return err
	}
	if !*unlabeled {
		lab, err := labeling.New(avsim.NewDefaultService(), res.Oracle, nil, nil, 0)
		if err != nil {
			return err
		}
		if err := lab.LabelStore(res.Store, res.Samples); err != nil {
			return err
		}
	}
	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer func() {
			if cerr := f.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}()
		w = f
	}
	if err := export.WriteStoreWithOracle(w, res.Store, res.Oracle); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "gendata: wrote %d events, %d files\n",
		res.Store.NumEvents(), len(res.Store.Files()))
	return nil
}
