// Command longtaild is the online verdict-serving daemon: it loads a
// labeled dataset as classification context (file/process metadata and
// Alexa ranks), loads or trains a tau-filtered rule set, and serves
// per-event verdicts over HTTP — the paper's Section VI-D operational
// mode as a long-running service.
//
// Endpoints: POST /classify (line-JSON events in, line-JSON verdicts
// out), GET /result (verdicts of a deferred batch), POST /admin/reload
// (hot-swap the rule set with zero downtime), GET /healthz,
// GET /metrics.
//
// Usage:
//
//	longtaild [-addr :8787] [-dataset dataset.jsonl] [-rules rules.json]
//	          [-journal-dir DIR] [-journal-shards N] [-seed N] [-scale F]
//	          [-tau F] [-shards N] [-queue N] [-pprof localhost:6060]
//
// With -journal-dir the daemon keeps a write-ahead journal of accepted
// /classify batches: every batch is fsynced before it is acknowledged,
// retransmits (same X-Request-Id) are answered from the journal without
// reclassification, and on restart after a crash any
// accepted-but-unanswered batches are replayed through the engine —
// kill -9 mid-batch loses nothing and double-counts nothing.
//
// With no -dataset the daemon generates and labels the synthetic corpus
// in-process (same seed/scale as the rest of the harness); with no
// -rules it trains on the first month, so a bare `longtaild` is a fully
// working deployment. A rules.json written by `rulemine -json -o` loads
// directly via -rules.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // -pprof side listener (DefaultServeMux only)
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/classify"
	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/export"
	"repro/internal/features"
	"repro/internal/journal"
	"repro/internal/lifecycle"
	"repro/internal/reputation"
	"repro/internal/serve"
	"repro/internal/synth"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "longtaild:", err)
		os.Exit(1)
	}
}

// loadContext builds the store and oracle the feature extractor serves
// against: from a dataset file when given, otherwise generated.
func loadContext(path string, seed int64, scale float64) (*dataset.Store, *reputation.Oracle, error) {
	if path == "" {
		p, err := experiments.Run(synth.DefaultConfig(seed, scale))
		if err != nil {
			return nil, nil, err
		}
		return p.Store, p.Result.Oracle, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	store, oracle, err := export.ReadStoreWithOracle(f)
	if err != nil {
		return nil, nil, err
	}
	store.Freeze()
	return store, oracle, nil
}

// loadOrTrainRules loads the rule set from disk when -rules is given,
// otherwise trains on the first month of the context dataset.
func loadOrTrainRules(path string, store *dataset.Store, ex *features.Extractor, tau float64) (*classify.Classifier, error) {
	if path != "" {
		return serve.LoadRulesFile(path, classify.Reject)
	}
	months := store.Months()
	if len(months) == 0 {
		return nil, fmt.Errorf("dataset has no events to train on")
	}
	train, err := ex.Instances(store.EventIndexesInMonth(months[0]))
	if err != nil {
		return nil, err
	}
	return classify.Train(train, tau, classify.Reject)
}

func run() error {
	addr := flag.String("addr", ":8787", "listen address")
	datasetPath := flag.String("dataset", "", "labeled dataset (gendata line-JSON; default: generate in-process)")
	rulesPath := flag.String("rules", "", "rule set JSON (rulemine -json -o; default: train on first month)")
	seed := flag.Int64("seed", 42, "generation seed when no -dataset")
	scale := flag.Float64("scale", 0.02, "generation scale when no -dataset")
	tau := flag.Float64("tau", 0.001, "rule-selection error threshold when no -rules")
	shards := flag.Int("shards", 4, "worker shards")
	queue := flag.Int("queue", 1024, "bounded ingest queue size (events)")
	journalDir := flag.String("journal-dir", "", "write-ahead journal directory (empty: serve stateless)")
	journalShards := flag.Int("journal-shards", 1, "journal WAL shards; >1 stripes accepts over per-shard group-commit fsync loops (1 keeps the flat single-WAL format)")
	lifecycleOn := flag.Bool("lifecycle", false, "enable champion/challenger lifecycle (/admin/lifecycle, shadow evaluation, gated self-promotion)")
	fpBudget := flag.Float64("lifecycle-fp-budget", 0.001, "max challenger FP rate over known-benign shadow traffic (paper's 0.1%)")
	minShadow := flag.Int("lifecycle-min-samples", 200, "shadow-classified events required before the promotion gate decides")
	lifecycleInterval := flag.Duration("lifecycle-interval", 250*time.Millisecond, "promotion-gate evaluation period")
	retention := flag.Int("result-retention", 0, "completed batches kept for retransmit dedup (0: default 65536, negative: unbounded)")
	drain := flag.Duration("drain", 10*time.Second, "graceful shutdown budget")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this side address (e.g. localhost:6060; empty: off)")
	flag.Parse()

	// Profiling stays off the serving listener: the debug endpoints are
	// unauthenticated and hold goroutines for seconds, so they get their
	// own (typically loopback-only) listener, opted in per run.
	if *pprofAddr != "" {
		//lint:allow goroutinelife the pprof listener is daemon-lifetime by design: it serves debug endpoints until the process exits and needs no shutdown handshake
		go func() {
			// net/http/pprof registers on http.DefaultServeMux.
			log.Printf("longtaild: pprof on http://%s/debug/pprof/", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("longtaild: pprof listener: %v", err)
			}
		}()
	}

	store, oracle, err := loadContext(*datasetPath, *seed, *scale)
	if err != nil {
		return err
	}
	ex, err := features.NewExtractor(store, oracle)
	if err != nil {
		return err
	}
	clf, err := loadOrTrainRules(*rulesPath, store, ex, *tau)
	if err != nil {
		return err
	}
	engine, err := serve.NewEngine(ex, clf, serve.EngineConfig{Shards: *shards, QueueSize: *queue}, &serve.Metrics{})
	if err != nil {
		return err
	}

	// Lifecycle sidecar: shadow evaluation taps every successfully served
	// batch off the hot path; the evaluator's scoreboard joins /metrics
	// and the manager gates self-promotion through the node's own
	// zero-downtime reload endpoint.
	var srvOpts []serve.ServerOption
	var eval *lifecycle.Evaluator
	if *lifecycleOn {
		eval, err = lifecycle.NewEvaluator(ex, storeTruth(store), lifecycle.EvaluatorConfig{})
		if err != nil {
			return err
		}
		defer eval.Close()
		engine.SetBatchTap(eval.Tap())
		srvOpts = append(srvOpts, serve.WithMetricsAppender(eval.WriteMetrics))
	}

	// Crash recovery: reopen the journal, replay any batches the previous
	// process accepted but never answered, and only then start listening —
	// a client retransmitting into the new process hits the recovered
	// ledger, never a second classification.
	var ledger *serve.Ledger
	if *journalDir != "" {
		var rec *serve.LedgerRecovery
		ledger, rec, err = serve.OpenLedger(serve.LedgerOptions{
			Journal:    journal.Options{Dir: *journalDir},
			Shards:     *journalShards,
			MaxResults: *retention,
		})
		if err != nil {
			return err
		}
		defer ledger.Close()
		if rec.TornTail > 0 {
			log.Printf("longtaild: journal recovery discarded %d bytes of torn tail (unacknowledged writes from a crash)", rec.TornTail)
		}
		replayed, err := serve.RecoverLedger(engine, ledger, rec)
		if err != nil {
			return err
		}
		log.Printf("longtaild: journal recovered: %d completed batches, %d pending replayed", rec.Results, replayed)
		srvOpts = append(srvOpts, serve.WithLedger(ledger))
	}
	srv, err := serve.NewServer(engine, classify.Reject, srvOpts...)
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	handler := srv.Handler()
	if *lifecycleOn {
		mgr, err := lifecycle.NewManager(lifecycle.Config{
			FPBudget:         *fpBudget,
			MinShadowSamples: *minShadow,
			Interval:         *lifecycleInterval,
		}, lifecycle.ReloadPromoter{
			Client: &serve.Client{BaseURL: loopbackURL(*addr)},
		}, eval)
		if err != nil {
			return err
		}
		mux := http.NewServeMux()
		mux.HandleFunc("/admin/lifecycle", lifecycleHandler(ctx, mgr, classify.Reject))
		mux.Handle("/", handler)
		handler = mux
		log.Printf("longtaild: lifecycle enabled (FP budget %.4f, min shadow samples %d)", *fpBudget, *minShadow)
	}
	httpSrv := &http.Server{Addr: *addr, Handler: handler}
	errCh := make(chan error, 1)
	go func() {
		log.Printf("longtaild: serving on %s (%d rules, generation %d, %d shards, queue %d)",
			*addr, engine.RuleCount(), engine.Generation(), *shards, *queue)
		errCh <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	log.Printf("longtaild: draining (budget %s)", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	// Order matters: stop the deferred-batch worker, then drain the
	// engine, then (deferred above) close the journal. Batches still
	// pending in the journal at exit are intact on disk; the next boot's
	// recovery replays them.
	srv.Close()
	engine.Close()
	if ledger != nil {
		if pending, _ := ledger.Counts(); pending > 0 {
			log.Printf("longtaild: exiting with %d journaled batches pending; next boot will replay them", pending)
		}
	}
	log.Printf("longtaild: drained, bye")
	return nil
}
