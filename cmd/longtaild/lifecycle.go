package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log"
	"net"
	"net/http"

	"repro/internal/classify"
	"repro/internal/dataset"
	"repro/internal/lifecycle"
	"repro/internal/serve"
)

// storeTruth adapts the labeled context dataset into the evaluator's
// ground-truth reference: the daemon's FP budget is measured against the
// same labels the rules were trained on. A harness that harvests fresher
// truth (delayed re-scans) drives internal/lifecycle directly instead.
func storeTruth(store *dataset.Store) lifecycle.TruthFunc {
	return func(file dataset.FileHash) (bool, bool) {
		switch store.Label(file) {
		case dataset.LabelMalicious:
			return true, true
		case dataset.LabelBenign:
			return false, true
		default:
			return false, false
		}
	}
}

// loopbackURL turns the daemon's listen address into the base URL the
// lifecycle promoter reloads through — promotion rides the same
// /admin/reload path an operator would use, not a private fast path.
func loopbackURL(addr string) string {
	host, port, err := net.SplitHostPort(addr)
	if err != nil {
		return "http://" + addr
	}
	if host == "" || host == "::" || host == "0.0.0.0" {
		host = "127.0.0.1"
	}
	return "http://" + net.JoinHostPort(host, port)
}

// lifecycleHandler serves /admin/lifecycle:
//
//	GET  — the manager's status document (state machine position, gate
//	       configuration, aggregated shadow scoreboard);
//	POST — a rule-set JSON body becomes the next challenger: it starts
//	       shadowing immediately and a background Run drives it to
//	       promotion (through the zero-downtime reload) or rejection.
func lifecycleHandler(ctx context.Context, m *lifecycle.Manager, policy classify.ConflictPolicy) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodGet:
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(m.Status())
		case http.MethodPost:
			body, err := io.ReadAll(r.Body)
			if err != nil {
				http.Error(w, "read body: "+err.Error(), http.StatusBadRequest)
				return
			}
			clf, err := serve.LoadRules(bytes.NewReader(body), policy)
			if err != nil {
				http.Error(w, "bad challenger rules: "+err.Error(), http.StatusBadRequest)
				return
			}
			label, err := m.BeginShadow(clf)
			if err != nil {
				// A challenger is already shadowing: one at a time keeps the
				// scoreboard attributable.
				http.Error(w, err.Error(), http.StatusConflict)
				return
			}
			go func() {
				st, err := m.Run(ctx)
				if err != nil {
					log.Printf("longtaild: lifecycle %s: %v", label, err)
					return
				}
				log.Printf("longtaild: lifecycle %s resolved: %s", label, st)
			}()
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(map[string]any{
				"challenger": label,
				"state":      lifecycle.StateShadowing.String(),
			})
		default:
			http.Error(w, "GET or POST only", http.StatusMethodNotAllowed)
		}
	}
}
