// Command rulemine trains the PART rule learner on one month of the
// synthetic telemetry and dumps the resulting human-readable rule set,
// the way a threat analyst would review the paper's classifier.
//
// Usage:
//
//	rulemine [-seed N] [-scale F] [-month 2014-01] [-tau 0.001] [-all]
//	         [-json [-o rules.json]]
//
// A rule set written with `-json -o rules.json` loads directly into the
// serving daemon via `longtaild -rules rules.json` (and into
// /admin/reload for zero-downtime hot swaps).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/classify"
	"repro/internal/experiments"
	"repro/internal/features"
	"repro/internal/serve"
	"repro/internal/synth"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "rulemine:", err)
		os.Exit(1)
	}
}

func run() error {
	seed := flag.Int64("seed", 42, "generation seed")
	scale := flag.Float64("scale", 0.02, "fraction of the paper's data volume")
	monthFlag := flag.String("month", "", "training month (YYYY-MM; default: first month)")
	tau := flag.Float64("tau", 0.001, "maximum training error rate for selected rules")
	showAll := flag.Bool("all", false, "also dump rules that failed selection")
	asJSON := flag.Bool("json", false, "emit the selected rules as JSON (reload with longtaild -rules)")
	out := flag.String("o", "-", "output path for -json ('-' for stdout)")
	flag.Parse()

	p, err := experiments.Run(synth.DefaultConfig(*seed, *scale))
	if err != nil {
		return err
	}
	months := p.Store.Months()
	if len(months) == 0 {
		return fmt.Errorf("no data generated")
	}
	month := months[0]
	if *monthFlag != "" {
		found := false
		for _, m := range months {
			if m.String() == *monthFlag {
				month, found = m, true
				break
			}
		}
		if !found {
			return fmt.Errorf("month %q not in dataset (have %v)", *monthFlag, months)
		}
	}

	ex, err := features.NewExtractor(p.Store, p.Result.Oracle)
	if err != nil {
		return err
	}
	insts, err := ex.Instances(p.Store.EventIndexesInMonth(month))
	if err != nil {
		return err
	}
	clf, err := classify.Train(insts, *tau, classify.Reject)
	if err != nil {
		return err
	}
	benign, malicious := 0, 0
	for _, in := range insts {
		if in.Malicious {
			malicious++
		} else {
			benign++
		}
	}
	if *asJSON {
		if *out == "-" {
			return serve.ExportRules(os.Stdout, clf)
		}
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		if err := serve.ExportRules(f, clf); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	fmt.Printf("trained on %s: %d labeled instances (%d malicious, %d benign)\n",
		month, len(insts), malicious, benign)
	fmt.Printf("PART produced %d rules; %d selected at tau=%.2f%%\n\n",
		len(clf.AllRules), len(clf.Rules), 100**tau)
	for _, r := range clf.Rules {
		fmt.Printf("[cov=%4d err=%2d] %s\n", r.Covered, r.Errors, r.String())
	}
	if *showAll {
		fmt.Printf("\nrules failing selection:\n")
		selected := make(map[string]bool, len(clf.Rules))
		for _, r := range clf.Rules {
			selected[r.String()] = true
		}
		for _, r := range clf.AllRules {
			if !selected[r.String()] {
				fmt.Printf("[cov=%4d err=%2d] %s\n", r.Covered, r.Errors, r.String())
			}
		}
	}
	return nil
}
