package report

import (
	"strings"
	"testing"

	"repro/internal/stats"
)

func TestTableRender(t *testing.T) {
	tbl := NewTable("Table I: demo", "name", "count")
	tbl.AddRow("alpha", "1")
	tbl.AddRow("beta-longer", "22")
	var sb strings.Builder
	if err := tbl.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Table I: demo", "name", "alpha", "beta-longer", "22"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if tbl.NumRows() != 2 {
		t.Errorf("NumRows = %d", tbl.NumRows())
	}
}

func TestTableRaggedRows(t *testing.T) {
	tbl := NewTable("", "a", "b")
	tbl.AddRow("only-one")
	tbl.AddRow("x", "y", "extra")
	var sb strings.Builder
	if err := tbl.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "extra") {
		t.Error("extra cell dropped")
	}
}

func TestPctAndCount(t *testing.T) {
	if got := Pct(0.123); got != "12.3%" {
		t.Errorf("Pct = %q", got)
	}
	if got := Pct2(0.00321); got != "0.32%" {
		t.Errorf("Pct2 = %q", got)
	}
	cases := map[int]string{
		5: "5", 999: "999", 1000: "1,000", 1234567: "1,234,567",
		3073863: "3,073,863",
	}
	for n, want := range cases {
		if got := Count(n); got != want {
			t.Errorf("Count(%d) = %q, want %q", n, got, want)
		}
	}
}

func TestRenderCDF(t *testing.T) {
	cdf := stats.NewCDF([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	var sb strings.Builder
	if err := RenderCDF(&sb, "deltas", cdf, 5, nil); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "deltas (n=10)") {
		t.Errorf("missing title: %s", out)
	}
	if !strings.Contains(out, "100.0%") {
		t.Errorf("missing terminal fraction: %s", out)
	}
}

func TestRenderCSV(t *testing.T) {
	tbl := NewTable("ignored title", "a", "b")
	tbl.AddRow("x", "y,z")
	tbl.AddRow("short")
	var sb strings.Builder
	if err := tbl.RenderCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "a,b\n") {
		t.Errorf("missing header row: %q", out)
	}
	if !strings.Contains(out, `"y,z"`) {
		t.Errorf("comma cell not quoted: %q", out)
	}
	if !strings.Contains(out, "short,\n") {
		t.Errorf("short row not padded: %q", out)
	}
}
