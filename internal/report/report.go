// Package report renders fixed-width text tables and CDF sketches for
// the experiment harness output.
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"

	"repro/internal/stats"
)

// Table is a simple fixed-width text table.
type Table struct {
	Title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// AddRow appends a row; missing cells render empty, extra cells are
// kept and widen the table.
func (t *Table) AddRow(cells ...string) {
	t.rows = append(t.rows, cells)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Render writes the table to w.
func (t *Table) Render(w io.Writer) error {
	cols := len(t.headers)
	for _, r := range t.rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	cell := func(row []string, i int) string {
		if i < len(row) {
			return row[i]
		}
		return ""
	}
	for i := 0; i < cols; i++ {
		if i < len(t.headers) && len(t.headers[i]) > widths[i] {
			widths[i] = len(t.headers[i])
		}
		for _, r := range t.rows {
			if n := len(cell(r, i)); n > widths[i] {
				widths[i] = n
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(row []string) {
		for i := 0; i < cols; i++ {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell(row, i))
		}
		b.WriteString("\n")
	}
	writeRow(t.headers)
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteString("\n")
	for _, r := range t.rows {
		writeRow(r)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// RenderCSV writes the table as RFC-4180-ish CSV (header row first).
func (t *Table) RenderCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.headers); err != nil {
		return err
	}
	for _, r := range t.rows {
		row := make([]string, len(t.headers))
		copy(row, r)
		if len(r) > len(t.headers) {
			row = r
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Pct formats a ratio as a percentage.
func Pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }

// Pct2 formats a ratio as a percentage with two decimals.
func Pct2(v float64) string { return fmt.Sprintf("%.2f%%", 100*v) }

// Count formats an integer with thousands separators.
func Count(n int) string {
	s := fmt.Sprint(n)
	if len(s) <= 3 {
		return s
	}
	var parts []string
	for len(s) > 3 {
		parts = append([]string{s[len(s)-3:]}, parts...)
		s = s[:len(s)-3]
	}
	return s + "," + strings.Join(parts, ",")
}

// RenderCDF writes an ASCII sketch of a CDF: one line per sample point
// with a bar proportional to the cumulative fraction.
func RenderCDF(w io.Writer, title string, cdf *stats.CDF, points int, format func(x float64) string) error {
	if format == nil {
		format = func(x float64) string { return fmt.Sprintf("%8.2f", x) }
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s (n=%d)\n", title, cdf.Len())
	for _, pt := range cdf.Points(points) {
		bar := strings.Repeat("#", int(pt[1]*40))
		fmt.Fprintf(&b, "  %s | %-40s %5.1f%%\n", format(pt[0]), bar, 100*pt[1])
	}
	_, err := io.WriteString(w, b.String())
	return err
}
