package classify

import (
	"fmt"

	"repro/internal/features"
	"repro/internal/part"
)

// Retrain learns a challenger classifier warm-started from the
// champion's rules — the classify-level face of part.LearnIncremental
// and the retraining step of the champion/challenger lifecycle. train
// is the combined evidence: the champion's original window plus the
// ground truth harvested since (ledger traffic labeled by delayed
// re-scans). Champion rules that survive on the combined set keep
// their identity and order; residual instances grow new rules; and the
// whole list then goes through exactly the selection pipeline Train
// uses — standalone re-scoring on the full set, the tau error filter,
// the per-class support floors, and simplification — so a challenger
// is held to the same bar as a from-scratch model.
//
// A nil champion retrains from scratch (identical to Train).
func Retrain(champion *Classifier, train []features.Instance, tau float64, policy ConflictPolicy) (*Classifier, error) {
	if len(train) == 0 {
		return nil, fmt.Errorf("classify: no training instances")
	}
	attrs, classes := Schema()
	ds, err := part.NewDataset(attrs, classes)
	if err != nil {
		return nil, err
	}
	for i := range train {
		if err := ds.Add(toPartInstance(&train[i])); err != nil {
			return nil, err
		}
	}
	var prior []part.Rule
	if champion != nil {
		prior = champion.AllRules
	}
	rules, err := (&part.Learner{}).LearnIncremental(prior, ds, tau)
	if err != nil {
		return nil, fmt.Errorf("classify: retrain: %w", err)
	}
	var conditioned []part.Rule
	for _, r := range rules {
		if len(r.Conditions) > 0 {
			conditioned = append(conditioned, r)
		}
	}
	if len(conditioned) == 0 {
		return nil, fmt.Errorf("classify: retrain produced no conditioned rules")
	}
	// Same standalone re-score as Train: residual-pass statistics are
	// honest only against the residual, and this classifier applies
	// rules as an unordered set.
	pinsts := make([]part.Instance, len(train))
	for i := range train {
		pinsts[i] = toPartInstance(&train[i])
	}
	for i := range conditioned {
		r := &conditioned[i]
		r.Covered, r.Errors = 0, 0
		for j := range pinsts {
			if r.Matches(&pinsts[j]) {
				r.Covered++
				if pinsts[j].Class != r.Class {
					r.Errors++
				}
			}
		}
	}
	selected := part.FilterByErrorRate(conditioned, tau)
	var supported []part.Rule
	for _, r := range selected {
		min := MinRuleCoverage
		if r.Class == ClassBenign {
			min = MinBenignRuleCoverage
		}
		if r.Covered >= min {
			supported = append(supported, r)
		}
	}
	if len(supported) == 0 {
		return nil, fmt.Errorf("classify: retrain selected no rules (tau %v, support floors %d/%d)", tau, MinRuleCoverage, MinBenignRuleCoverage)
	}
	selectedRules := part.SimplifyAll(supported)
	return &Classifier{
		AllRules: conditioned,
		Rules:    selectedRules,
		Tau:      tau,
		Policy:   policy,
		index:    buildIndex(selectedRules),
	}, nil
}
