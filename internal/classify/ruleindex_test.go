package classify

import (
	"fmt"
	"testing"

	"repro/internal/features"
	"repro/internal/part"
)

// The differential harness: every fuzz input decodes into a rule set
// and an instance group, and the compiled index must return exactly the
// matched-rule set — same indexes, same order — as the linear reference
// scan, for the group and for every instance individually.

// fuzzVocab is the nominal-value universe fuzz inputs index into. It
// includes the empty string (the numeric slot's string value) and the
// "(none)" marker so degenerate equality conditions get exercised.
var fuzzVocab = []string{"", "(none)", "AcmeCo", "EvilCorp", "VeriSign", "browser", "UPX", "Thawte"}

// fuzzThresholds covers negative, zero, interior, boundary and
// beyond-UnrankedValue cuts, including a duplicate-prone small set so
// sorted threshold arrays see ties.
var fuzzThresholds = []float64{-1, 0, 1, 5.5, 100, 99999.5, 100000, 2_000_000, 3_000_000}

var fuzzRanks = []int{0, 1, 50, 100000, 1_999_999, 2_000_000, -3}

type fuzzReader struct {
	data []byte
	pos  int
}

func (r *fuzzReader) next() byte {
	if r.pos >= len(r.data) {
		return 0
	}
	b := r.data[r.pos]
	r.pos++
	return b
}

// decodeRules builds 1..24 rules of 1..4 conditions each. Attribute
// indexes span the full schema including the numeric slot, and the
// operator is unconstrained, so the fuzzer also produces the degenerate
// shapes DecodeRules would reject (equality on the numeric attribute,
// thresholds on nominal ones) — the index must agree with the linear
// scan on those too.
func decodeRules(r *fuzzReader) []part.Rule {
	n := 1 + int(r.next())%24
	rules := make([]part.Rule, 0, n)
	for i := 0; i < n; i++ {
		nc := 1 + int(r.next())%4
		rule := part.Rule{Class: int(r.next()) % 2}
		rule.ClassName = []string{"benign", "malicious"}[rule.Class]
		for c := 0; c < nc; c++ {
			attr := int(r.next()) % len(features.AttributeNames)
			cond := part.Condition{
				AttrIndex: attr,
				AttrName:  features.AttributeNames[attr],
				Op:        part.Op(1 + int(r.next())%3),
			}
			if cond.Op == part.OpEquals {
				cond.Value = fuzzVocab[int(r.next())%len(fuzzVocab)]
			} else {
				cond.Threshold = fuzzThresholds[int(r.next())%len(fuzzThresholds)]
			}
			rule.Conditions = append(rule.Conditions, cond)
		}
		rules = append(rules, rule)
	}
	return rules
}

func decodeInstances(r *fuzzReader) []features.Instance {
	n := int(r.next()) % 5
	insts := make([]features.Instance, 0, n)
	for i := 0; i < n; i++ {
		v := features.Vector{
			FileSigner:    fuzzVocab[int(r.next())%len(fuzzVocab)],
			FileCA:        fuzzVocab[int(r.next())%len(fuzzVocab)],
			FilePacker:    fuzzVocab[int(r.next())%len(fuzzVocab)],
			ProcessSigner: fuzzVocab[int(r.next())%len(fuzzVocab)],
			ProcessCA:     fuzzVocab[int(r.next())%len(fuzzVocab)],
			ProcessPacker: fuzzVocab[int(r.next())%len(fuzzVocab)],
			ProcessType:   fuzzVocab[int(r.next())%len(fuzzVocab)],
			AlexaRank:     fuzzRanks[int(r.next())%len(fuzzRanks)],
		}
		insts = append(insts, features.Instance{
			Vector: v,
			File:   "f1",
		})
	}
	return insts
}

func sameInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// FuzzRuleIndexEquivalence is the tentpole contract: the compiled index
// and the linear reference scan agree on the matched-rule set (same
// indexes, same order) and hence on verdict and attribution, for every
// decodable rule set and instance group.
func FuzzRuleIndexEquivalence(f *testing.F) {
	f.Add([]byte{3, 1, 0, 1, 2, 0, 2, 1, 3, 4, 5, 6, 7, 8, 2, 1, 0, 3})
	f.Add([]byte("signer rules dominate the paper's selected sets"))
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{24, 3, 1, 7, 2, 8, 7, 3, 8, 1, 0, 0, 4, 2, 2, 2, 6, 1, 1, 5, 9, 9, 9})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := &fuzzReader{data: data}
		rules := decodeRules(r)
		insts := decodeInstances(r)

		indexed := &Classifier{Rules: rules, Policy: Reject, index: buildIndex(rules)}
		linear := &Classifier{Rules: rules, Policy: Reject}

		gotV, gotM := indexed.ClassifyFile(insts)
		wantV, wantM := linear.ClassifyFile(insts)
		if gotV != wantV || !sameInts(gotM, wantM) {
			t.Fatalf("group mismatch: index (%v, %v) vs linear (%v, %v)\nrules: %+v\ninsts: %+v",
				gotV, gotM, wantV, wantM, rules, insts)
		}
		for i := range insts {
			gotV, gotM := indexed.ClassifyOne(&insts[i])
			wantV, wantM := linear.ClassifyFile(insts[i : i+1])
			if gotV != wantV || !sameInts(gotM, wantM) {
				t.Fatalf("instance %d mismatch: index (%v, %v) vs linear (%v, %v)\nrules: %+v\ninst: %+v",
					i, gotV, gotM, wantV, wantM, rules, insts[i])
			}
		}
	})
}

// TestRuleIndexPivotShapes pins the equivalence on handcrafted rule
// sets covering every pivot shape: single-condition equality, shared
// equality buckets, multi-condition rules with residual verification,
// all-numeric rules on both threshold sides, duplicate thresholds,
// equality on the numeric slot, thresholds on nominal slots, an
// unknown-operator rule (never matches) and a condition-free rule
// (always matches).
func TestRuleIndexPivotShapes(t *testing.T) {
	eq := func(attr int, v string) part.Condition {
		return part.Condition{AttrIndex: attr, AttrName: features.AttributeNames[attr], Op: part.OpEquals, Value: v}
	}
	le := func(attr int, th float64) part.Condition {
		return part.Condition{AttrIndex: attr, AttrName: features.AttributeNames[attr], Op: part.OpLE, Threshold: th}
	}
	gt := func(attr int, th float64) part.Condition {
		return part.Condition{AttrIndex: attr, AttrName: features.AttributeNames[attr], Op: part.OpGT, Threshold: th}
	}
	rules := []part.Rule{
		{Conditions: []part.Condition{eq(0, "EvilCorp")}, Class: ClassMalicious, ClassName: "malicious"},
		{Conditions: []part.Condition{eq(0, "EvilCorp"), le(7, 100)}, Class: ClassMalicious, ClassName: "malicious"},
		{Conditions: []part.Condition{eq(0, "AcmeCo")}, Class: ClassBenign, ClassName: "benign"},
		{Conditions: []part.Condition{le(7, 100000)}, Class: ClassBenign, ClassName: "benign"},
		{Conditions: []part.Condition{gt(7, 100000)}, Class: ClassMalicious, ClassName: "malicious"},
		{Conditions: []part.Condition{gt(7, 100000), eq(2, "UPX")}, Class: ClassMalicious, ClassName: "malicious"},
		{Conditions: []part.Condition{le(7, 100000), gt(7, 50)}, Class: ClassBenign, ClassName: "benign"},
		{Conditions: []part.Condition{le(7, 100000)}, Class: ClassMalicious, ClassName: "malicious"},
		{Conditions: []part.Condition{eq(7, "")}, Class: ClassBenign, ClassName: "benign"},
		{Conditions: []part.Condition{le(0, 1)}, Class: ClassBenign, ClassName: "benign"},
		{Conditions: []part.Condition{{AttrIndex: 0, Op: part.Op(99)}}, Class: ClassBenign, ClassName: "benign"},
		{Class: ClassBenign, ClassName: "benign"},
	}
	indexed := &Classifier{Rules: rules, Policy: Reject, index: buildIndex(rules)}
	linear := &Classifier{Rules: rules, Policy: Reject}

	var insts []features.Instance
	for _, signer := range []string{"EvilCorp", "AcmeCo", "(none)", ""} {
		for _, packer := range []string{"UPX", "(none)"} {
			for _, rank := range fuzzRanks {
				insts = append(insts, features.Instance{
					Vector: features.Vector{FileSigner: signer, FilePacker: packer, AlexaRank: rank},
					File:   "f1",
				})
			}
		}
	}
	for i := range insts {
		got := indexed.matchedRules(insts[i : i+1])
		want := linear.matchedRulesLinear(insts[i : i+1])
		if !sameInts(got, want) {
			t.Fatalf("inst %d (%+v): index matched %v, linear %v", i, insts[i].Vector, got, want)
		}
	}
	// The whole group at once, and the empty group.
	if got, want := indexed.matchedRules(insts), linear.matchedRulesLinear(insts); !sameInts(got, want) {
		t.Fatalf("group: index matched %v, linear %v", got, want)
	}
	if got := indexed.matchedRules(nil); got != nil {
		t.Fatalf("empty group matched %v, want nil", got)
	}
}

// TestRuleIndexConcurrentMatch exercises the pooled bitset under
// concurrent matching: one shared classifier, many goroutines, results
// always equal to the linear scan (go test -race covers the data-race
// side).
func TestRuleIndexConcurrentMatch(t *testing.T) {
	var rules []part.Rule
	for i := 0; i < 70; i++ { // >64 rules so the bitset spans two words
		rules = append(rules, part.Rule{
			Conditions: []part.Condition{{
				AttrIndex: 0, AttrName: features.AttributeNames[0],
				Op: part.OpEquals, Value: fmt.Sprintf("signer-%d", i%7),
			}},
			Class: i % 2, ClassName: "x",
		})
	}
	clf, err := NewFromRules(rules, Reject)
	if err != nil {
		t.Fatal(err)
	}
	linear := &Classifier{Rules: rules, Policy: Reject}
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			for k := 0; k < 200; k++ {
				in := features.Instance{Vector: features.Vector{
					FileSigner: fmt.Sprintf("signer-%d", (g+k)%9),
				}, File: "f"}
				_, got := clf.ClassifyOne(&in)
				_, want := linear.ClassifyFile([]features.Instance{in})
				if !sameInts(got, want) {
					done <- fmt.Errorf("goroutine %d: index %v, linear %v", g, got, want)
					return
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
