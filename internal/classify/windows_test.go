package classify

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/reputation"
)

// buildWindowStore hand-crafts a two-month store: January provides
// training ground truth (EvilCo malicious, GoodCo benign), February
// provides labeled test files plus unknowns with the same signers.
func buildWindowStore(t *testing.T) (*dataset.Store, *reputation.Oracle) {
	t.Helper()
	store := dataset.NewStore()
	put := func(hash, signer string) {
		t.Helper()
		if err := store.PutFile(&dataset.FileMeta{
			Hash: dataset.FileHash(hash), Signer: signer, CA: "ca-" + signer,
		}); err != nil {
			t.Fatal(err)
		}
	}
	put("proc", "Google Inc")
	add := func(hash string, day int, month time.Month) {
		t.Helper()
		if err := store.AddEvent(dataset.DownloadEvent{
			File: dataset.FileHash(hash), Machine: dataset.MachineID("m-" + hash),
			Process: "proc", URL: "http://host.com/" + hash, Domain: "host.com",
			Time:     time.Date(2014, month, day, 0, 0, 0, 0, time.UTC),
			Executed: true,
		}); err != nil {
			t.Fatal(err)
		}
	}
	truth := func(hash string, label dataset.Label) {
		t.Helper()
		if err := store.SetTruth(dataset.FileHash(hash), dataset.GroundTruth{Label: label}); err != nil {
			t.Fatal(err)
		}
	}
	// January training: staggered coverage as in the classify tests.
	for i := 0; i < 40; i++ {
		h := fmt.Sprintf("jan-ben-%02d", i)
		put(h, "GoodCo")
		add(h, i%27+1, time.January)
		truth(h, dataset.LabelBenign)
	}
	for i := 0; i < 35; i++ {
		h := fmt.Sprintf("jan-mal-%02d", i)
		put(h, "EvilCo")
		add(h, i%27+1, time.January)
		truth(h, dataset.LabelMalicious)
	}
	for i := 0; i < 30; i++ {
		h := fmt.Sprintf("jan-oth-%02d", i)
		put(h, "GoodSoft")
		add(h, i%27+1, time.January)
		truth(h, dataset.LabelBenign)
	}
	// February test files and unknowns.
	for i := 0; i < 10; i++ {
		h := fmt.Sprintf("feb-mal-%02d", i)
		put(h, "EvilCo")
		add(h, i+1, time.February)
		truth(h, dataset.LabelMalicious)
		h = fmt.Sprintf("feb-ben-%02d", i)
		put(h, "GoodCo")
		add(h, i+1, time.February)
		truth(h, dataset.LabelBenign)
		h = fmt.Sprintf("feb-unk-%02d", i)
		put(h, "EvilCo")
		add(h, i+1, time.February)
	}
	store.Freeze()
	return store, reputation.NewOracle(nil, nil, nil, nil, nil, nil)
}

func TestRunMonthlyWindows(t *testing.T) {
	store, oracle := buildWindowStore(t)
	windows, err := RunMonthlyWindows(store, oracle, []float64{0.001}, Reject)
	if err != nil {
		t.Fatal(err)
	}
	if len(windows) != 1 {
		t.Fatalf("windows = %d, want 1 (Jan->Feb)", len(windows))
	}
	w := windows[0]
	if w.TrainMonth.String() != "2014-01" || w.TestMonth.String() != "2014-02" {
		t.Errorf("window months = %v -> %v", w.TrainMonth, w.TestMonth)
	}
	if w.RulesSelected == 0 {
		t.Fatal("no rules selected")
	}
	if w.Eval.MatchedMalicious != 10 || w.Eval.TruePositives != 10 {
		t.Errorf("eval = %+v", w.Eval)
	}
	if w.Eval.FalsePositives != 0 {
		t.Errorf("FP = %d on separable data", w.Eval.FalsePositives)
	}
	// All 10 unknowns carry EvilCo's signature and must be labeled
	// malicious.
	if w.Unknowns.Total != 10 || w.Unknowns.Malicious != 10 {
		t.Errorf("unknowns = %+v", w.Unknowns)
	}
	if w.Unknowns.Machines != 10 {
		t.Errorf("unknown machines = %d, want 10", w.Unknowns.Machines)
	}
}

func TestRunMonthlyWindowsDefaultTaus(t *testing.T) {
	store, oracle := buildWindowStore(t)
	windows, err := RunMonthlyWindows(store, oracle, nil, Reject)
	if err != nil {
		t.Fatal(err)
	}
	if len(windows) != 2 {
		t.Errorf("default taus should yield 2 windows (0.0 and 0.1%%), got %d", len(windows))
	}
}

func TestRunMonthlyWindowsValidation(t *testing.T) {
	_, oracle := buildWindowStore(t)
	if _, err := RunMonthlyWindows(nil, oracle, nil, Reject); err == nil {
		t.Error("nil store accepted")
	}
	if _, err := RunMonthlyWindows(dataset.NewStore(), oracle, nil, Reject); err == nil {
		t.Error("unfrozen store accepted")
	}
}

func TestRunMonthlyWindowsTrainTestDisjoint(t *testing.T) {
	// A file seen in both months must be excluded from the test set:
	// matched counts must not include it.
	store := dataset.NewStore()
	if err := store.PutFile(&dataset.FileMeta{Hash: "proc", Signer: "P"}); err != nil {
		t.Fatal(err)
	}
	add := func(hash, signer string, day int, month time.Month, label dataset.Label) {
		t.Helper()
		if err := store.PutFile(&dataset.FileMeta{Hash: dataset.FileHash(hash), Signer: signer}); err != nil {
			t.Fatal(err)
		}
		if err := store.AddEvent(dataset.DownloadEvent{
			File: dataset.FileHash(hash), Machine: "m1", Process: "proc",
			URL: "http://x.com/" + hash, Domain: "x.com",
			Time:     time.Date(2014, month, day, 0, 0, 0, 0, time.UTC),
			Executed: true,
		}); err != nil {
			t.Fatal(err)
		}
		if label != dataset.LabelUnknown {
			if err := store.SetTruth(dataset.FileHash(hash), dataset.GroundTruth{Label: label}); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := 0; i < 10; i++ {
		add(fmt.Sprintf("mal%d", i), "Evil", i+1, time.January, dataset.LabelMalicious)
		add(fmt.Sprintf("ben%d", i), "Good", i+1, time.January, dataset.LabelBenign)
	}
	// The crossover file appears in January AND February.
	add("crossover", "Evil", 28, time.January, dataset.LabelMalicious)
	if err := store.AddEvent(dataset.DownloadEvent{
		File: "crossover", Machine: "m2", Process: "proc",
		URL: "http://x.com/crossover", Domain: "x.com",
		Time:     time.Date(2014, time.February, 2, 0, 0, 0, 0, time.UTC),
		Executed: true,
	}); err != nil {
		t.Fatal(err)
	}
	store.Freeze()
	oracle := reputation.NewOracle(nil, nil, nil, nil, nil, nil)
	windows, err := RunMonthlyWindows(store, oracle, []float64{0.001}, Reject)
	if err != nil {
		t.Fatal(err)
	}
	if got := windows[0].Eval.MatchedMalicious; got != 0 {
		t.Errorf("crossover file leaked into test set: matched malicious = %d", got)
	}
}
