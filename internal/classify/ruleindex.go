package classify

import (
	"math/bits"
	"sort"
	"sync"

	"repro/internal/features"
	"repro/internal/part"
)

// ruleIndex is the compiled form of a tau-filtered rule list: instead of
// scanning every rule against every instance, matching starts from one
// "pivot" condition per rule and only verifies the residual conditions
// of rules whose pivot fired. Three pivot shapes cover the whole rule
// grammar:
//
//   - OpEquals pivots live in a hash map keyed by (attribute, value);
//     single-condition equality rules — the dominant shape the paper's
//     learner produces, signer rules above all — become a single map
//     lookup with an empty residual.
//   - OpLE pivots per attribute form an array sorted by ascending
//     threshold; the suffix starting at the first threshold >= v is
//     exactly the set of satisfied pivots, found by one binary search.
//   - OpGT pivots per attribute form the mirror image: the prefix of
//     thresholds strictly below v.
//
// For multi-condition rules the pivot is the equality condition with the
// globally rarest (attribute, value) pair — the most selective probe —
// falling back to the first numeric condition for all-numeric rules.
//
// Matches are collected into a pooled bitset and emitted in ascending
// rule order, so the result is the same index set in the same order as
// the reference linear scan (matchedRulesLinear); the differential fuzz
// test in ruleindex_test.go holds the two paths equal.
type ruleIndex struct {
	eq  map[eqKey][]pivotRule
	num []numPivots // one entry per attribute that has numeric pivots

	// always holds rules with no conditions: the linear scan's empty
	// conjunction matches every instance. Train and NewFromRules never
	// produce these, but a hand-built Classifier stays equivalent.
	always []int

	words int // bitset size in uint64 words
	pool  sync.Pool
}

// eqKey identifies one equality-pivot bucket.
type eqKey struct {
	attr int
	val  string
}

// pivotRule is one rule reachable through a pivot: the rule's index in
// Classifier.Rules plus the conditions left to verify once the pivot
// fired (every condition except the pivot itself).
type pivotRule struct {
	rule  int
	resid []part.Condition
}

// numEntry is one numeric pivot threshold.
type numEntry struct {
	threshold float64
	pivotRule
}

// numPivots holds the sorted threshold arrays of one attribute.
type numPivots struct {
	attr int
	// le is sorted by ascending threshold: v <= t holds for the suffix
	// starting at the first t >= v.
	le []numEntry
	// gt is sorted by ascending threshold: t < v holds for the prefix
	// ending before the first t >= v.
	gt []numEntry
}

// nominalAt mirrors the string slot toPartInstance fills for attr:
// the instance's nominal value for the seven nominal attributes and ""
// for the numeric Alexa-rank slot.
func nominalAt(in *features.Instance, attr int) string {
	if attr < features.NumNominal {
		return in.Nominal(attr)
	}
	return ""
}

// numericAt mirrors the float slot toPartInstance fills for attr:
// the Alexa rank for the numeric slot and 0 for nominal attributes.
func numericAt(in *features.Instance, attr int) float64 {
	if attr == features.NumNominal {
		return float64(in.AlexaRank)
	}
	return 0
}

// condHolds evaluates one condition directly against a feature
// instance, equivalent to part.Condition.Matches on the toPartInstance
// conversion (including an unknown operator matching nothing).
func condHolds(c *part.Condition, in *features.Instance) bool {
	switch c.Op {
	case part.OpEquals:
		return nominalAt(in, c.AttrIndex) == c.Value
	case part.OpLE:
		return numericAt(in, c.AttrIndex) <= c.Threshold
	case part.OpGT:
		return numericAt(in, c.AttrIndex) > c.Threshold
	default:
		return false
	}
}

func residHolds(resid []part.Condition, in *features.Instance) bool {
	for i := range resid {
		if !condHolds(&resid[i], in) {
			return false
		}
	}
	return true
}

// buildIndex compiles rules. The rule slice must not be mutated
// afterwards (Classifier treats rule sets as immutable once built).
func buildIndex(rules []part.Rule) *ruleIndex {
	ix := &ruleIndex{
		eq:    make(map[eqKey][]pivotRule),
		words: (len(rules) + 63) / 64,
	}
	ix.pool.New = func() any {
		s := make([]uint64, ix.words)
		return &s
	}
	// Global (attribute, value) frequencies decide pivot selectivity:
	// the rarer the pair across the whole rule set, the fewer residual
	// verifications a probe of its bucket costs.
	freq := make(map[eqKey]int)
	for ri := range rules {
		for _, c := range rules[ri].Conditions {
			if c.Op == part.OpEquals {
				freq[eqKey{c.AttrIndex, c.Value}]++
			}
		}
	}
	numByAttr := make(map[int]*numPivots)
	for ri := range rules {
		conds := rules[ri].Conditions
		if len(conds) == 0 {
			ix.always = append(ix.always, ri)
			continue
		}
		pivot, bestFreq, firstNum := -1, 0, -1
		for ci := range conds {
			switch conds[ci].Op {
			case part.OpEquals:
				if f := freq[eqKey{conds[ci].AttrIndex, conds[ci].Value}]; pivot < 0 || f < bestFreq {
					pivot, bestFreq = ci, f
				}
			case part.OpLE, part.OpGT:
				if firstNum < 0 {
					firstNum = ci
				}
			}
		}
		if pivot < 0 {
			pivot = firstNum
		}
		if pivot < 0 {
			// Only unknown operators: the linear scan can never match
			// this rule, so the index simply omits it.
			continue
		}
		var resid []part.Condition
		if len(conds) > 1 {
			resid = make([]part.Condition, 0, len(conds)-1)
			resid = append(resid, conds[:pivot]...)
			resid = append(resid, conds[pivot+1:]...)
		}
		pr := pivotRule{rule: ri, resid: resid}
		switch pc := conds[pivot]; pc.Op {
		case part.OpEquals:
			k := eqKey{pc.AttrIndex, pc.Value}
			ix.eq[k] = append(ix.eq[k], pr)
		default:
			np := numByAttr[pc.AttrIndex]
			if np == nil {
				np = &numPivots{attr: pc.AttrIndex}
				numByAttr[pc.AttrIndex] = np
			}
			if pc.Op == part.OpLE {
				np.le = append(np.le, numEntry{pc.Threshold, pr})
			} else {
				np.gt = append(np.gt, numEntry{pc.Threshold, pr})
			}
		}
	}
	attrs := make([]int, 0, len(numByAttr))
	for a := range numByAttr {
		attrs = append(attrs, a)
	}
	sort.Ints(attrs)
	for _, a := range attrs {
		np := numByAttr[a]
		sort.SliceStable(np.le, func(i, j int) bool { return np.le[i].threshold < np.le[j].threshold })
		sort.SliceStable(np.gt, func(i, j int) bool { return np.gt[i].threshold < np.gt[j].threshold })
		ix.num = append(ix.num, *np)
	}
	return ix
}

// probe sets the bit of every rule matching in.
func (ix *ruleIndex) probe(in *features.Instance, bitset []uint64) {
	// Equality pivots: one bucket lookup per attribute slot. The numeric
	// slot's string value is always "", so a single extra key covers
	// (degenerate) equality conditions on it.
	for attr := 0; attr <= features.NumNominal; attr++ {
		prs, ok := ix.eq[eqKey{attr, nominalAt(in, attr)}]
		if !ok {
			continue
		}
		for i := range prs {
			if residHolds(prs[i].resid, in) {
				bitset[prs[i].rule>>6] |= 1 << (prs[i].rule & 63)
			}
		}
	}
	for ni := range ix.num {
		np := &ix.num[ni]
		v := numericAt(in, np.attr)
		// First index with threshold >= v, hand-rolled to keep the
		// search closure-free on the hot path.
		if len(np.le) > 0 {
			lo, hi := 0, len(np.le)
			for lo < hi {
				mid := int(uint(lo+hi) >> 1)
				if np.le[mid].threshold >= v {
					hi = mid
				} else {
					lo = mid + 1
				}
			}
			for _, e := range np.le[lo:] {
				if residHolds(e.resid, in) {
					bitset[e.rule>>6] |= 1 << (e.rule & 63)
				}
			}
		}
		if len(np.gt) > 0 {
			lo, hi := 0, len(np.gt)
			for lo < hi {
				mid := int(uint(lo+hi) >> 1)
				if np.gt[mid].threshold >= v {
					hi = mid
				} else {
					lo = mid + 1
				}
			}
			for _, e := range np.gt[:lo] {
				if residHolds(e.resid, in) {
					bitset[e.rule>>6] |= 1 << (e.rule & 63)
				}
			}
		}
	}
}

// collect drains the bitset into ascending rule indexes appended to
// dst, clearing it for reuse.
func collect(dst []int, bitset []uint64) []int {
	for w, word := range bitset {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			dst = append(dst, w<<6+b)
			word &^= 1 << b
		}
		bitset[w] = 0
	}
	return dst
}

// match returns the indexes of rules matching any of insts, in
// ascending order — the same set, in the same order, as the linear
// reference scan. A nil result means no rule matched.
func (ix *ruleIndex) match(insts []features.Instance) []int {
	if len(insts) == 0 {
		return nil
	}
	bp := ix.pool.Get().(*[]uint64)
	bitset := *bp
	for i := range insts {
		ix.probe(&insts[i], bitset)
	}
	for _, ri := range ix.always {
		bitset[ri>>6] |= 1 << (ri & 63)
	}
	out := collect(nil, bitset)
	ix.pool.Put(bp)
	return out
}

// matchOne is match for the single-instance serving hot path.
func (ix *ruleIndex) matchOne(in *features.Instance) []int {
	bp := ix.pool.Get().(*[]uint64)
	bitset := *bp
	ix.probe(in, bitset)
	for _, ri := range ix.always {
		bitset[ri>>6] |= 1 << (ri & 63)
	}
	out := collect(nil, bitset)
	ix.pool.Put(bp)
	return out
}
