package classify

import (
	"fmt"
	"sort"

	"repro/internal/dataset"
	"repro/internal/features"
	"repro/internal/reputation"
)

// EvalResult summarizes one Table XVII test-window evaluation.
type EvalResult struct {
	// MatchedMalicious / MatchedBenign are the test files (by ground
	// truth) that matched at least one rule and were not rejected for
	// conflicts; TP and FP rates are computed over these, as in the
	// paper ("rejecting a file in case of conflicting rules helps in
	// reducing the errors").
	MatchedMalicious int
	MatchedBenign    int
	// TruePositives: malicious test files classified malicious.
	TruePositives int
	// FalsePositives: benign test files classified malicious.
	FalsePositives int
	// FalseNegatives: malicious test files classified benign.
	FalseNegatives int
	// Rejected: matched test files with conflicting rules.
	Rejected int
	// FPRules: distinct rules involved in false positives.
	FPRules int
}

// TPRate returns TruePositives / MatchedMalicious.
func (e *EvalResult) TPRate() float64 {
	if e.MatchedMalicious == 0 {
		return 0
	}
	return float64(e.TruePositives) / float64(e.MatchedMalicious)
}

// FPRate returns FalsePositives / MatchedBenign.
func (e *EvalResult) FPRate() float64 {
	if e.MatchedBenign == 0 {
		return 0
	}
	return float64(e.FalsePositives) / float64(e.MatchedBenign)
}

// Evaluate runs the classifier over labeled test instances, grouped per
// file.
func (c *Classifier) Evaluate(test []features.Instance) EvalResult {
	var res EvalResult
	fpRules := make(map[int]struct{})
	for _, group := range GroupByFile(test) {
		truthMalicious := group[0].Malicious
		verdict, matched := c.ClassifyFile(group)
		if verdict == VerdictNone {
			continue
		}
		if verdict == VerdictRejected {
			res.Rejected++
			continue
		}
		if truthMalicious {
			res.MatchedMalicious++
		} else {
			res.MatchedBenign++
		}
		switch verdict {
		case VerdictMalicious:
			if truthMalicious {
				res.TruePositives++
			} else {
				res.FalsePositives++
				for _, ri := range matched {
					if c.Rules[ri].Class == ClassMalicious {
						fpRules[ri] = struct{}{}
					}
				}
			}
		case VerdictBenign:
			if truthMalicious {
				res.FalseNegatives++
			}
		}
	}
	res.FPRules = len(fpRules)
	return res
}

// UnknownResult summarizes the classification of unknown files
// (Table XVII's "unknowns dataset" columns).
type UnknownResult struct {
	// Total is the number of distinct unknown files in the window.
	Total int
	// Matched is how many matched at least one rule (including rejects).
	Matched int
	// Malicious / Benign are the newly labeled files.
	Malicious int
	Benign    int
	// Rejected matched conflicting rules.
	Rejected int
	// Machines is the number of distinct machines that downloaded a
	// newly labeled unknown file.
	Machines int
}

// MatchRate returns Matched / Total.
func (u *UnknownResult) MatchRate() float64 {
	if u.Total == 0 {
		return 0
	}
	return float64(u.Matched) / float64(u.Total)
}

// ClassifyUnknowns labels unknown files and reports coverage. The store
// is used to count affected machines.
func (c *Classifier) ClassifyUnknowns(unknowns []features.Instance, store *dataset.Store) UnknownResult {
	var res UnknownResult
	labeledFiles := make(map[dataset.FileHash]struct{})
	for _, group := range GroupByFile(unknowns) {
		res.Total++
		verdict, _ := c.ClassifyFile(group)
		switch verdict {
		case VerdictNone:
			continue
		case VerdictRejected:
			res.Matched++
			res.Rejected++
		case VerdictMalicious:
			res.Matched++
			res.Malicious++
			labeledFiles[group[0].File] = struct{}{}
		case VerdictBenign:
			res.Matched++
			res.Benign++
			labeledFiles[group[0].File] = struct{}{}
		}
	}
	if store != nil && store.Frozen() {
		machines := make(map[dataset.MachineID]struct{})
		events := store.Events()
		for f := range labeledFiles {
			for _, idx := range store.EventsForFile(f) {
				machines[events[idx].Machine] = struct{}{}
			}
		}
		res.Machines = len(machines)
	}
	return res
}

// WindowResult is one train/test window of the monthly evaluation.
type WindowResult struct {
	TrainMonth dataset.Month
	TestMonth  dataset.Month
	Tau        float64

	// RulesTotal is the full PART output size; RulesSelected the
	// tau-filtered count, split into benign/malicious conclusions
	// (Table XVI).
	RulesTotal     int
	RulesSelected  int
	RulesBenign    int
	RulesMalicious int

	Eval     EvalResult
	Unknowns UnknownResult

	Classifier *Classifier
}

// RunMonthlyWindows trains on each month and tests on the next
// (Jan→Feb, ..., Jun→Jul), at each tau, mirroring Tables XVI and XVII.
// The store must be frozen and fully labeled.
func RunMonthlyWindows(store *dataset.Store, oracle *reputation.Oracle, taus []float64, policy ConflictPolicy) ([]WindowResult, error) {
	if store == nil || !store.Frozen() {
		return nil, fmt.Errorf("classify: store must be frozen")
	}
	if len(taus) == 0 {
		taus = []float64{0.0, 0.001}
	}
	ex, err := features.NewExtractor(store, oracle)
	if err != nil {
		return nil, err
	}
	months := store.Months()
	var out []WindowResult
	for i := 0; i+1 < len(months); i++ {
		trainIdx := store.EventIndexesInMonth(months[i])
		testIdx := store.EventIndexesInMonth(months[i+1])
		trainInsts, err := ex.Instances(trainIdx)
		if err != nil {
			return nil, err
		}
		testInsts, err := ex.Instances(testIdx)
		if err != nil {
			return nil, err
		}
		unknownInsts, err := ex.UnknownInstances(testIdx)
		if err != nil {
			return nil, err
		}
		// The paper guarantees the train/test intersection is empty:
		// drop test files already seen in training.
		trainFiles := make(map[dataset.FileHash]struct{}, len(trainInsts))
		for _, in := range trainInsts {
			trainFiles[in.File] = struct{}{}
		}
		var cleanTest []features.Instance
		for _, in := range testInsts {
			if _, seen := trainFiles[in.File]; !seen {
				cleanTest = append(cleanTest, in)
			}
		}
		for _, tau := range taus {
			clf, err := Train(trainInsts, tau, policy)
			if err != nil {
				return nil, fmt.Errorf("classify: window %v tau %v: %w", months[i], tau, err)
			}
			wb, wm := clf.RuleComposition()
			wr := WindowResult{
				TrainMonth:     months[i],
				TestMonth:      months[i+1],
				Tau:            tau,
				RulesTotal:     len(clf.AllRules),
				RulesSelected:  len(clf.Rules),
				RulesBenign:    wb,
				RulesMalicious: wm,
				Eval:           clf.Evaluate(cleanTest),
				Unknowns:       clf.ClassifyUnknowns(unknownInsts, store),
				Classifier:     clf,
			}
			out = append(out, wr)
		}
	}
	return out, nil
}

// RuleHit reports how often one rule correctly fired on malicious test
// files (the paper's Section VII lists the rules "responsible for
// correctly labeling many malicious downloads").
type RuleHit struct {
	RuleIndex int
	Rule      string
	// TruePositives counts malicious files this rule helped classify
	// correctly.
	TruePositives int
}

// TopRules returns the selected rules ranked by the number of malicious
// test files they correctly fired on.
func (c *Classifier) TopRules(test []features.Instance, k int) []RuleHit {
	hits := make(map[int]int)
	for _, group := range GroupByFile(test) {
		if !group[0].Malicious {
			continue
		}
		verdict, matched := c.ClassifyFile(group)
		if verdict != VerdictMalicious {
			continue
		}
		for _, ri := range matched {
			if c.Rules[ri].Class == ClassMalicious {
				hits[ri]++
			}
		}
	}
	out := make([]RuleHit, 0, len(hits))
	for ri, n := range hits {
		out = append(out, RuleHit{RuleIndex: ri, Rule: c.Rules[ri].String(), TruePositives: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].TruePositives != out[j].TruePositives {
			return out[i].TruePositives > out[j].TruePositives
		}
		return out[i].RuleIndex < out[j].RuleIndex
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}
