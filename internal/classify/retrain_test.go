package classify

import (
	"fmt"
	"testing"

	"repro/internal/features"
)

func TestRetrainFromScratchMatchesTrain(t *testing.T) {
	train := trainingSet()
	fresh, err := Train(train, 0.001, Reject)
	if err != nil {
		t.Fatal(err)
	}
	retrained, err := Retrain(nil, train, 0.001, Reject)
	if err != nil {
		t.Fatal(err)
	}
	if len(fresh.Rules) != len(retrained.Rules) {
		t.Fatalf("nil-champion Retrain selected %d rules, Train selected %d", len(retrained.Rules), len(fresh.Rules))
	}
	for i := range fresh.Rules {
		if fresh.Rules[i].String() != retrained.Rules[i].String() {
			t.Fatalf("rule %d diverged:\n  train:   %s\n  retrain: %s", i, fresh.Rules[i].String(), retrained.Rules[i].String())
		}
	}
}

func TestRetrainLearnsEmergedPattern(t *testing.T) {
	base := trainingSet()
	champion, err := Train(base, 0.001, Reject)
	if err != nil {
		t.Fatal(err)
	}
	// The champion has never seen NewThreat and abstains on it.
	probe := mkInst("probe", "NewThreat Ltd", false)
	if v, _ := champion.ClassifyOne(&probe); v != VerdictNone {
		t.Fatalf("champion verdict on unseen signer = %v, want none", v)
	}

	// Harvested ground truth: a new malicious signer emerged in live
	// traffic and the delayed re-scans labeled it.
	harvested := append([]features.Instance(nil), base...)
	for i := 0; i < 12; i++ {
		harvested = append(harvested, mkInst(fmt.Sprintf("n%d", i), "NewThreat Ltd", true))
	}
	challenger, err := Retrain(champion, harvested, 0.001, Reject)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := challenger.ClassifyOne(&probe); v != VerdictMalicious {
		t.Fatalf("challenger verdict on NewThreat = %v, want malicious", v)
	}
	// The champion's old knowledge survives.
	old := mkInst("old", "EvilCo", false)
	if v, _ := challenger.ClassifyOne(&old); v != VerdictMalicious {
		t.Fatalf("challenger verdict on EvilCo = %v, want malicious (veteran rule lost)", v)
	}
	good := mkInst("good", "GoodCo", false)
	if v, _ := challenger.ClassifyOne(&good); v != VerdictBenign {
		t.Fatalf("challenger verdict on GoodCo = %v, want benign", v)
	}
}

func TestRetrainDropsDecayedRule(t *testing.T) {
	base := trainingSet()
	champion, err := Train(base, 0.001, Reject)
	if err != nil {
		t.Fatal(err)
	}
	// EvilCo rehabilitated: the combined evidence now shows its files
	// overwhelmingly benign, so the champion's EvilCo=malicious rule
	// must not survive retraining.
	harvested := append([]features.Instance(nil), base...)
	for i := 0; i < 200; i++ {
		harvested = append(harvested, mkInst(fmt.Sprintf("r%d", i), "EvilCo", false))
	}
	challenger, err := Retrain(champion, harvested, 0.001, Reject)
	if err != nil {
		t.Fatal(err)
	}
	probe := mkInst("probe2", "EvilCo", false)
	if v, _ := challenger.ClassifyOne(&probe); v == VerdictMalicious {
		t.Fatalf("challenger still calls rehabilitated EvilCo malicious; decayed rule retained")
	}
}

func TestRetrainValidation(t *testing.T) {
	if _, err := Retrain(nil, nil, 0.001, Reject); err == nil {
		t.Error("empty training set accepted")
	}
}
