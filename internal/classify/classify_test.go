package classify

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/dataset"
	"repro/internal/features"
	"repro/internal/part"
)

// mkInst builds a feature instance with the given file signer and class;
// other features held constant.
func mkInst(file, signer string, malicious bool) features.Instance {
	return features.Instance{
		Vector: features.Vector{
			FileSigner:    signer,
			FileCA:        "ca-of-" + signer,
			FilePacker:    features.None,
			ProcessSigner: "Google Inc",
			ProcessCA:     "digicert",
			ProcessPacker: features.None,
			ProcessType:   "browser",
			AlexaRank:     5000,
		},
		File:      dataset.FileHash("file-" + file),
		Malicious: malicious,
	}
}

// trainingSet builds a cleanly separable training set. Coverage is
// staggered (GoodCo 40 > EvilCo 35 > GoodSoft 30) so PART extracts
// conditioned rules for GoodCo and EvilCo before the residual
// (GoodSoft) becomes pure and falls to the dropped default rule.
func trainingSet() []features.Instance {
	var out []features.Instance
	for i := 0; i < 40; i++ {
		out = append(out, mkInst(fmt.Sprintf("b%d", i), "GoodCo", false))
	}
	for i := 0; i < 35; i++ {
		out = append(out, mkInst(fmt.Sprintf("m%d", i), "EvilCo", true))
	}
	for i := 0; i < 30; i++ {
		out = append(out, mkInst(fmt.Sprintf("g%d", i), "GoodSoft", false))
	}
	return out
}

func TestTrainValidation(t *testing.T) {
	if _, err := Train(nil, 0, Reject); err == nil {
		t.Error("empty training set accepted")
	}
}

func TestTrainAndClassify(t *testing.T) {
	clf, err := Train(trainingSet(), 0.001, Reject)
	if err != nil {
		t.Fatal(err)
	}
	if len(clf.Rules) == 0 {
		t.Fatal("no rules selected")
	}
	benign, malicious := clf.RuleComposition()
	if benign == 0 || malicious == 0 {
		t.Errorf("rule composition benign=%d malicious=%d, want both > 0", benign, malicious)
	}
	v, matched := clf.ClassifyFile([]features.Instance{mkInst("new1", "EvilCo", false)})
	if v != VerdictMalicious {
		t.Errorf("EvilCo file = %v, want malicious", v)
	}
	if len(matched) == 0 {
		t.Error("no attribution returned")
	}
	if v, _ := clf.ClassifyFile([]features.Instance{mkInst("new2", "GoodCo", false)}); v != VerdictBenign {
		t.Errorf("GoodCo file = %v, want benign", v)
	}
	if v, _ := clf.ClassifyFile([]features.Instance{mkInst("new3", "NeverSeen Corp", false)}); v != VerdictNone {
		t.Errorf("unseen signer = %v, want none", v)
	}
}

func TestClassifyFileConflictRejection(t *testing.T) {
	clf, err := Train(trainingSet(), 0.001, Reject)
	if err != nil {
		t.Fatal(err)
	}
	// A file downloaded twice: one event looks malicious, one benign.
	group := []features.Instance{
		mkInst("dual", "EvilCo", false),
		mkInst("dual", "GoodCo", false),
	}
	if v, _ := clf.ClassifyFile(group); v != VerdictRejected {
		t.Errorf("conflicting file = %v, want rejected", v)
	}
}

func TestMajorityVotePolicy(t *testing.T) {
	clf, err := Train(trainingSet(), 0.001, MajorityVote)
	if err != nil {
		t.Fatal(err)
	}
	group := []features.Instance{
		mkInst("dual", "EvilCo", false),
		mkInst("dual", "GoodCo", false),
	}
	v, matched := clf.ClassifyFile(group)
	// With exactly one rule per side this ties and is rejected; with
	// more rules one side may win. Either way it must not abstain.
	if v == VerdictNone {
		t.Error("majority vote abstained on matched file")
	}
	if len(matched) < 2 {
		t.Errorf("expected both rules to match, got %d", len(matched))
	}
}

func TestMinRuleCoverageFilter(t *testing.T) {
	// Two malicious instances with a unique signer: too little support
	// for a malicious rule.
	insts := trainingSet()
	insts = append(insts,
		mkInst("rare1", "RareEvil", true),
		mkInst("rare2", "RareEvil", true),
	)
	clf, err := Train(insts, 0.001, Reject)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := clf.ClassifyFile([]features.Instance{mkInst("probe", "RareEvil", false)}); v == VerdictMalicious {
		t.Error("low-support malicious rule survived selection")
	}
}

func TestRescoringKillsContradictedRules(t *testing.T) {
	// Signer "Mixed" appears on both classes; any rule on it must carry
	// error and fail tau.
	var insts []features.Instance
	insts = append(insts, trainingSet()...)
	for i := 0; i < 10; i++ {
		insts = append(insts, mkInst(fmt.Sprintf("mm%d", i), "Mixed", true))
		insts = append(insts, mkInst(fmt.Sprintf("mb%d", i), "Mixed", false))
	}
	clf, err := Train(insts, 0.001, Reject)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := clf.ClassifyFile([]features.Instance{mkInst("probe", "Mixed", false)}); v == VerdictMalicious || v == VerdictBenign {
		t.Errorf("rule over contradicted signer survived: %v", v)
	}
}

func TestEvaluate(t *testing.T) {
	clf, err := Train(trainingSet(), 0.001, Reject)
	if err != nil {
		t.Fatal(err)
	}
	test := []features.Instance{
		mkInst("t1", "EvilCo", true),    // TP
		mkInst("t2", "EvilCo", false),   // FP
		mkInst("t3", "GoodCo", false),   // matched benign, correct
		mkInst("t4", "GoodCo", true),    // FN
		mkInst("t5", "Unmatched", true), // abstain
	}
	res := clf.Evaluate(test)
	if res.MatchedMalicious != 2 {
		t.Errorf("MatchedMalicious = %d, want 2", res.MatchedMalicious)
	}
	if res.MatchedBenign != 2 {
		t.Errorf("MatchedBenign = %d, want 2", res.MatchedBenign)
	}
	if res.TruePositives != 1 || res.FalsePositives != 1 || res.FalseNegatives != 1 {
		t.Errorf("TP=%d FP=%d FN=%d, want 1/1/1", res.TruePositives, res.FalsePositives, res.FalseNegatives)
	}
	if res.TPRate() != 0.5 || res.FPRate() != 0.5 {
		t.Errorf("TPRate=%v FPRate=%v", res.TPRate(), res.FPRate())
	}
	if res.FPRules != 1 {
		t.Errorf("FPRules = %d, want 1", res.FPRules)
	}
}

func TestEvaluateEmptyRates(t *testing.T) {
	var res EvalResult
	if res.TPRate() != 0 || res.FPRate() != 0 {
		t.Error("empty eval rates should be 0")
	}
}

func TestClassifyUnknowns(t *testing.T) {
	clf, err := Train(trainingSet(), 0.001, Reject)
	if err != nil {
		t.Fatal(err)
	}
	unknowns := []features.Instance{
		mkInst("u1", "EvilCo", false),
		mkInst("u2", "GoodCo", false),
		mkInst("u3", "Nobody", false),
	}
	res := clf.ClassifyUnknowns(unknowns, nil)
	if res.Total != 3 {
		t.Errorf("Total = %d", res.Total)
	}
	if res.Matched != 2 {
		t.Errorf("Matched = %d, want 2", res.Matched)
	}
	if res.Malicious != 1 || res.Benign != 1 {
		t.Errorf("Malicious=%d Benign=%d, want 1/1", res.Malicious, res.Benign)
	}
	if got := res.MatchRate(); got < 0.66 || got > 0.67 {
		t.Errorf("MatchRate = %v", got)
	}
}

func TestGroupByFileDeterministic(t *testing.T) {
	insts := []features.Instance{
		mkInst("b", "X", false),
		mkInst("a", "X", false),
		mkInst("b", "Y", false),
	}
	groups := GroupByFile(insts)
	if len(groups) != 2 {
		t.Fatalf("groups = %d", len(groups))
	}
	if groups[0][0].File != "file-a" {
		t.Error("groups not sorted by file")
	}
	if len(groups[1]) != 2 {
		t.Error("file-b group should have 2 instances")
	}
}

func TestVerdictString(t *testing.T) {
	for v, want := range map[Verdict]string{
		VerdictNone: "none", VerdictBenign: "benign",
		VerdictMalicious: "malicious", VerdictRejected: "rejected",
	} {
		if v.String() != want {
			t.Errorf("%d.String() = %q", int(v), v.String())
		}
	}
}

func TestSchema(t *testing.T) {
	attrs, classes := Schema()
	if len(attrs) != 8 {
		t.Errorf("schema has %d attributes, want 8 (Table XV)", len(attrs))
	}
	numeric := 0
	for _, a := range attrs {
		if a.Numeric {
			numeric++
		}
	}
	if numeric != 1 {
		t.Errorf("schema has %d numeric attributes, want 1 (Alexa rank)", numeric)
	}
	if len(classes) != 2 {
		t.Errorf("classes = %v", classes)
	}
}

func TestNewFromRules(t *testing.T) {
	clf, err := Train(trainingSet(), 0.001, Reject)
	if err != nil {
		t.Fatal(err)
	}
	reloaded, err := NewFromRules(clf.Rules, Reject)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := reloaded.ClassifyFile([]features.Instance{mkInst("x", "EvilCo", false)}); v != VerdictMalicious {
		t.Errorf("reloaded classifier verdict = %v", v)
	}
	if _, err := NewFromRules(nil, Reject); err == nil {
		t.Error("empty rule set accepted")
	}
	bad := clf.Rules[0]
	bad.Conditions = nil
	if _, err := NewFromRules([]part.Rule{bad}, Reject); err == nil {
		t.Error("unconditioned rule accepted")
	}
	bad2 := clf.Rules[0]
	bad2.Class = 7
	if _, err := NewFromRules([]part.Rule{bad2}, Reject); err == nil {
		t.Error("bad class accepted")
	}
}

func TestRuleSetSerializationWorkflow(t *testing.T) {
	// Full analyst loop: train -> export JSON -> reload -> classify.
	clf, err := Train(trainingSet(), 0.001, Reject)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := part.EncodeRules(&buf, clf.Rules); err != nil {
		t.Fatal(err)
	}
	attrs, _ := Schema()
	rules, err := part.DecodeRules(&buf, attrs)
	if err != nil {
		t.Fatal(err)
	}
	reloaded, err := NewFromRules(rules, Reject)
	if err != nil {
		t.Fatal(err)
	}
	for _, signer := range []string{"EvilCo", "GoodCo"} {
		orig, _ := clf.ClassifyFile([]features.Instance{mkInst("p", signer, false)})
		got, _ := reloaded.ClassifyFile([]features.Instance{mkInst("p", signer, false)})
		if orig != got {
			t.Errorf("signer %s: reloaded verdict %v != original %v", signer, got, orig)
		}
	}
}

func TestTopRules(t *testing.T) {
	clf, err := Train(trainingSet(), 0.001, Reject)
	if err != nil {
		t.Fatal(err)
	}
	test := []features.Instance{
		mkInst("t1", "EvilCo", true),
		mkInst("t2", "EvilCo", true),
		mkInst("t3", "GoodCo", false),
	}
	hits := clf.TopRules(test, 5)
	if len(hits) == 0 {
		t.Fatal("no rule hits")
	}
	if hits[0].TruePositives != 2 {
		t.Errorf("top rule TPs = %d, want 2", hits[0].TruePositives)
	}
	if hits[0].Rule == "" {
		t.Error("rule text empty")
	}
	if got := clf.TopRules(test, 0); len(got) != len(hits) {
		t.Error("k=0 should return all")
	}
}
