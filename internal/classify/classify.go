// Package classify implements the paper's rule-based classification
// system (Section VI): it trains the PART learner on a month of labeled
// download events, keeps only rules whose training error rate is at most
// tau, and uses the surviving rules to classify the next month's test
// files and — most importantly — the files for which no ground truth
// exists. When a file matches rules with conflicting classes, the
// classifier rejects it rather than guess, which is the design choice
// the paper credits for its low false-positive rate.
package classify

import (
	"fmt"
	"sort"

	"repro/internal/features"
	"repro/internal/part"
)

// Class indexes into the dataset schema.
const (
	ClassBenign    = 0
	ClassMalicious = 1
)

// ConflictPolicy decides what happens when matched rules disagree.
type ConflictPolicy int

// Policies.
const (
	// Reject refuses to classify files matching conflicting rules (the
	// paper's choice).
	Reject ConflictPolicy = iota
	// MajorityVote picks the class backed by more matching rules,
	// rejecting only exact ties (ablation baseline).
	MajorityVote
)

// Verdict is the classifier's output for one file.
type Verdict int

// Verdicts.
const (
	// VerdictNone: no rule matched; the classifier abstains.
	VerdictNone Verdict = iota
	// VerdictBenign / VerdictMalicious: a consistent classification.
	VerdictBenign
	VerdictMalicious
	// VerdictRejected: conflicting rules matched.
	VerdictRejected
)

// String names the verdict.
func (v Verdict) String() string {
	switch v {
	case VerdictNone:
		return "none"
	case VerdictBenign:
		return "benign"
	case VerdictMalicious:
		return "malicious"
	case VerdictRejected:
		return "rejected"
	default:
		return fmt.Sprintf("verdict(%d)", int(v))
	}
}

// Schema returns the part dataset schema for the eight features.
func Schema() ([]part.Attribute, []string) {
	attrs := make([]part.Attribute, 0, len(features.AttributeNames))
	for i, name := range features.AttributeNames {
		attrs = append(attrs, part.Attribute{
			Name:    name,
			Numeric: i >= features.NumNominal,
		})
	}
	return attrs, []string{"benign", "malicious"}
}

// toPartInstance converts a feature instance.
func toPartInstance(in *features.Instance) part.Instance {
	vals := make([]part.Value, 0, len(features.AttributeNames))
	for i := 0; i < features.NumNominal; i++ {
		vals = append(vals, part.Value{S: in.Nominal(i)})
	}
	vals = append(vals, part.Value{F: float64(in.AlexaRank)})
	class := ClassBenign
	if in.Malicious {
		class = ClassMalicious
	}
	return part.Instance{Values: vals, Class: class, Ref: string(in.File)}
}

// MinRuleCoverage is the minimum number of training instances a
// malicious-concluding rule must have covered to be eligible for
// selection. Rules built on a handful of instances have training error
// zero by construction, so the tau filter alone cannot screen them;
// requiring real support keeps the selected set high-confidence.
const MinRuleCoverage = 5

// MinBenignRuleCoverage is the (lower) support requirement for
// benign-concluding rules: a spurious benign rule costs an abstention or
// a rejection, not a false positive, so the asymmetry matches the
// asymmetric cost the paper's 0.1% FP target encodes.
const MinBenignRuleCoverage = 3

// Classifier is a trained, tau-filtered rule set.
type Classifier struct {
	// AllRules is the full decision list PART produced.
	AllRules []part.Rule
	// Rules is the tau-filtered subset actually used for classification.
	// Treated as immutable once the classifier is built: the compiled
	// index below is derived from it.
	Rules  []part.Rule
	Tau    float64
	Policy ConflictPolicy

	// index is the compiled pivot index Train/NewFromRules build over
	// Rules (see ruleindex.go). A zero-value Classifier without one
	// falls back to the linear reference scan, so hand-built classifiers
	// in tests keep working.
	index *ruleIndex
}

// Train learns a classifier from labeled training instances.
func Train(train []features.Instance, tau float64, policy ConflictPolicy) (*Classifier, error) {
	if len(train) == 0 {
		return nil, fmt.Errorf("classify: no training instances")
	}
	attrs, classes := Schema()
	ds, err := part.NewDataset(attrs, classes)
	if err != nil {
		return nil, err
	}
	for i := range train {
		if err := ds.Add(toPartInstance(&train[i])); err != nil {
			return nil, err
		}
	}
	rules, err := (&part.Learner{}).Learn(ds)
	if err != nil {
		return nil, fmt.Errorf("classify: learn: %w", err)
	}
	// Drop the unconditioned default rule PART appends: it would match
	// everything and defeat the high-confidence design.
	var conditioned []part.Rule
	for _, r := range rules {
		if len(r.Conditions) > 0 {
			conditioned = append(conditioned, r)
		}
	}
	// PART's per-rule statistics are computed on the residual instances
	// each rule was grown from; a rule can look error-free there while
	// contradicting training instances an earlier rule removed. Since
	// this classifier applies rules as an unordered set, re-score every
	// rule standalone against the full training set before selecting.
	pinsts := make([]part.Instance, len(train))
	for i := range train {
		pinsts[i] = toPartInstance(&train[i])
	}
	for i := range conditioned {
		r := &conditioned[i]
		r.Covered, r.Errors = 0, 0
		for j := range pinsts {
			if r.Matches(&pinsts[j]) {
				r.Covered++
				if pinsts[j].Class != r.Class {
					r.Errors++
				}
			}
		}
	}
	selected := part.FilterByErrorRate(conditioned, tau)
	var supported []part.Rule
	for _, r := range selected {
		min := MinRuleCoverage
		if r.Class == ClassBenign {
			min = MinBenignRuleCoverage
		}
		if r.Covered >= min {
			supported = append(supported, r)
		}
	}
	selectedRules := part.SimplifyAll(supported)
	return &Classifier{
		AllRules: conditioned,
		// Selected rules are simplified for the analyst: redundant
		// numeric bounds collapse, matching behaviour is unchanged.
		Rules:  selectedRules,
		Tau:    tau,
		Policy: policy,
		index:  buildIndex(selectedRules),
	}, nil
}

// NewFromRules builds a classifier from an externally supplied
// (reviewed or analyst-edited) rule set, skipping learning entirely.
func NewFromRules(rules []part.Rule, policy ConflictPolicy) (*Classifier, error) {
	if len(rules) == 0 {
		return nil, fmt.Errorf("classify: empty rule set")
	}
	for i, r := range rules {
		if len(r.Conditions) == 0 {
			return nil, fmt.Errorf("classify: rule %d has no conditions", i)
		}
		if r.Class != ClassBenign && r.Class != ClassMalicious {
			return nil, fmt.Errorf("classify: rule %d has class %d", i, r.Class)
		}
	}
	return &Classifier{
		AllRules: rules,
		Rules:    rules,
		Policy:   policy,
		index:    buildIndex(rules),
	}, nil
}

// RuleComposition returns how many selected rules conclude benign and
// malicious (Table XVI's "rules composition").
func (c *Classifier) RuleComposition() (benign, malicious int) {
	for _, r := range c.Rules {
		if r.Class == ClassMalicious {
			malicious++
		} else {
			benign++
		}
	}
	return benign, malicious
}

// matchedRules returns indexes of selected rules matching any of the
// file's instances, through the compiled index when one was built.
func (c *Classifier) matchedRules(insts []features.Instance) []int {
	if c.index != nil {
		return c.index.match(insts)
	}
	return c.matchedRulesLinear(insts)
}

// matchedRulesLinear is the reference matcher: a linear scan of every
// rule against every instance via the part.Instance conversion. It
// defines the semantics the compiled index must reproduce exactly (the
// differential fuzz test holds the two equal) and stays the fallback
// for classifiers built without an index. Each instance is converted
// once per call, not once per (rule, instance) pair.
func (c *Classifier) matchedRulesLinear(insts []features.Instance) []int {
	pis := make([]part.Instance, len(insts))
	for i := range insts {
		pis[i] = toPartInstance(&insts[i])
	}
	var out []int
	for ri := range c.Rules {
		for ii := range pis {
			if c.Rules[ri].Matches(&pis[ii]) {
				out = append(out, ri)
				break
			}
		}
	}
	return out
}

// ClassifyFile classifies one file given all its event instances.
// It also returns the matching rule indexes for attribution — every
// label traces back to human-readable rules.
func (c *Classifier) ClassifyFile(insts []features.Instance) (Verdict, []int) {
	return c.verdictOf(c.matchedRules(insts))
}

// ClassifyOne classifies a file represented by a single event instance
// — the serving layer's per-event hot path. Equivalent to ClassifyFile
// on a one-element slice, without materializing the slice.
func (c *Classifier) ClassifyOne(in *features.Instance) (Verdict, []int) {
	var matched []int
	if c.index != nil {
		matched = c.index.matchOne(in)
	} else {
		matched = c.matchedRulesLinear([]features.Instance{*in})
	}
	return c.verdictOf(matched)
}

// verdictOf applies the conflict policy to a matched-rule set.
func (c *Classifier) verdictOf(matched []int) (Verdict, []int) {
	if len(matched) == 0 {
		return VerdictNone, nil
	}
	benign, malicious := 0, 0
	for _, ri := range matched {
		if c.Rules[ri].Class == ClassMalicious {
			malicious++
		} else {
			benign++
		}
	}
	switch c.Policy {
	case MajorityVote:
		switch {
		case malicious > benign:
			return VerdictMalicious, matched
		case benign > malicious:
			return VerdictBenign, matched
		default:
			return VerdictRejected, matched
		}
	default: // Reject
		switch {
		case malicious > 0 && benign > 0:
			return VerdictRejected, matched
		case malicious > 0:
			return VerdictMalicious, matched
		default:
			return VerdictBenign, matched
		}
	}
}

// GroupByFile groups instances by file hash, deterministically ordered.
func GroupByFile(insts []features.Instance) [][]features.Instance {
	byFile := make(map[string][]features.Instance)
	for _, in := range insts {
		byFile[string(in.File)] = append(byFile[string(in.File)], in)
	}
	keys := make([]string, 0, len(byFile))
	for k := range byFile {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([][]features.Instance, 0, len(keys))
	for _, k := range keys {
		out = append(out, byFile[k])
	}
	return out
}
