package experiments

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/classify"
	"repro/internal/dataset"
)

// TestHeadlineResults pins the paper's headline claims end to end on the
// shared pipeline; a regression in any substrate (generator, labeling,
// learner) that breaks a headline shape fails here.
func TestHeadlineResults(t *testing.T) {
	p := sharedTestPipeline(t)

	// 1. The long tail: unknown files dominate.
	_, overall := p.Analyzer.MonthlySummaries()
	if got := overall.Files.Share(dataset.LabelUnknown); got < 0.72 || got > 0.90 {
		t.Errorf("unknown file share = %.3f, want ~0.83", got)
	}

	// 2. Prevalence-1 files dominate and unknowns drive the tail.
	ps := p.Analyzer.Prevalence()
	if got := ps.All.Fraction(1); got < 0.80 {
		t.Errorf("prevalence-1 share = %.3f, want ~0.90", got)
	}

	// 3. Malicious files sign more than benign (Table VI inversion).
	var mal, ben *analysis.SigningRow
	rows := p.Analyzer.SigningByPopulation()
	for i := range rows {
		switch rows[i].Name {
		case "malicious":
			mal = &rows[i]
		case "benign":
			ben = &rows[i]
		}
	}
	if mal == nil || ben == nil {
		t.Fatal("signing rows missing")
	}
	if mal.SignedShare() <= ben.SignedShare() {
		t.Errorf("malicious signed %.2f <= benign %.2f", mal.SignedShare(), ben.SignedShare())
	}

	// 4. The classifier: high TP, few absolute FPs, meaningful unknown
	// coverage (aggregated across all windows).
	windows, err := runWindows(p)
	if err != nil {
		t.Fatal(err)
	}
	var tpN, tpD, fpN, unkTotal, unkMatched int
	for _, w := range windows {
		if w.Tau != 0.001 {
			continue
		}
		tpN += w.Eval.TruePositives
		tpD += w.Eval.MatchedMalicious
		fpN += w.Eval.FalsePositives
		unkTotal += w.Unknowns.Total
		unkMatched += w.Unknowns.Matched
	}
	if tpD == 0 {
		t.Fatal("no matched malicious test files")
	}
	if tp := float64(tpN) / float64(tpD); tp < 0.95 {
		t.Errorf("aggregate TP = %.3f, want >= 0.95 (paper > 0.95)", tp)
	}
	if fpN > tpD/10 {
		t.Errorf("aggregate FP files = %d vs %d matched malicious; FPs should stay a small handful", fpN, tpD)
	}
	if unkTotal == 0 {
		t.Fatal("no unknowns in test windows")
	}
	if share := float64(unkMatched) / float64(unkTotal); share < 0.15 || share > 0.65 {
		t.Errorf("unknown match share = %.3f, want ~0.28-0.38", share)
	}

	// 5. Conflict rejection stays rare but available.
	clf, err := classify.Train(nil, 0, classify.Reject)
	if err == nil {
		t.Error("empty training accepted")
	}
	_ = clf
}
