package experiments

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"repro/internal/dataset"
	"repro/internal/synth"
)

var (
	testPipelineOnce sync.Once
	testPipeline     *Pipeline
	testPipelineErr  error
)

// sharedTestPipeline builds one tiny pipeline for all experiment tests.
func sharedTestPipeline(t *testing.T) *Pipeline {
	t.Helper()
	testPipelineOnce.Do(func() {
		testPipeline, testPipelineErr = Run(synth.DefaultConfig(99, 0.003))
	})
	if testPipelineErr != nil {
		t.Fatal(testPipelineErr)
	}
	return testPipeline
}

func TestRunPipeline(t *testing.T) {
	p := sharedTestPipeline(t)
	if !p.Store.Frozen() {
		t.Error("pipeline store not frozen")
	}
	if p.Store.NumEvents() == 0 {
		t.Error("no events generated")
	}
	// Ground truth must exist for a substantial share of files.
	labeled := 0
	files := p.Store.DownloadedFiles()
	for _, f := range files {
		if p.Store.Label(f) != dataset.LabelUnknown {
			labeled++
		}
	}
	if labeled == 0 {
		t.Error("labeling pipeline produced no ground truth")
	}
}

func TestAllExperimentsRun(t *testing.T) {
	p := sharedTestPipeline(t)
	for _, e := range All {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Run(p, &buf); err != nil {
				t.Fatalf("experiment %s failed: %v", e.ID, err)
			}
			if buf.Len() == 0 {
				t.Fatalf("experiment %s produced no output", e.ID)
			}
		})
	}
}

func TestByID(t *testing.T) {
	if _, err := ByID("table1"); err != nil {
		t.Error("table1 should exist")
	}
	if _, err := ByID("nope"); err == nil {
		t.Error("unknown ID accepted")
	}
}

func TestRegistryCoversEveryPaperArtifact(t *testing.T) {
	// One experiment per table (I-XVII, minus the descriptive XV) and
	// per figure (1-6), plus packers and rule stats.
	want := []string{
		"table1", "table2", "table3", "table4", "table5", "table6",
		"table7", "table8", "table9", "table10", "table11", "table12",
		"table13", "table14", "table16", "table17",
		"fig1", "fig2", "fig3", "fig4", "fig5", "fig6",
		"packers", "rulestats", "baselines", "evasion", "avtypestats", "chains",
		"chaos", "chaos-serve", "chaos-cluster", "chaos-lifecycle", "chaos-churn",
	}
	have := map[string]bool{}
	for _, e := range All {
		have[e.ID] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("missing experiment %s", id)
		}
	}
	if len(All) != len(want) {
		t.Errorf("registry has %d experiments, want %d", len(All), len(want))
	}
}

func TestTableIShape(t *testing.T) {
	p := sharedTestPipeline(t)
	var buf bytes.Buffer
	if err := TableI(p, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "overall") {
		t.Error("Table I missing overall row")
	}
	if !strings.Contains(out, "paper overall") {
		t.Error("Table I missing paper reference")
	}
}

func TestTableXVIIShape(t *testing.T) {
	p := sharedTestPipeline(t)
	var buf bytes.Buffer
	if err := TableXVII(p, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "TP") || !strings.Contains(out, "FP") {
		t.Error("Table XVII missing TP/FP columns")
	}
	// Windows must cover the months (6 windows x 2 taus).
	if got := strings.Count(out, "->"); got < 6 {
		t.Errorf("Table XVII has %d window rows, want >= 6", got)
	}
}

func TestWindowsMemoized(t *testing.T) {
	p := sharedTestPipeline(t)
	if _, err := runWindows(p); err != nil {
		t.Fatal(err)
	}
	first := p.windows
	if _, err := runWindows(p); err != nil {
		t.Fatal(err)
	}
	if len(first) == 0 || len(p.windows) != len(first) {
		t.Error("windows not memoized")
	}
}
