package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/avsim"
	"repro/internal/classify"
	"repro/internal/cluster"
	"repro/internal/dataset"
	"repro/internal/features"
	"repro/internal/labeling"
	"repro/internal/lifecycle"
	"repro/internal/part"
	"repro/internal/serve"
	"repro/internal/synth"
)

// ChaosLifecycleConfig parameterizes the lifecycle chaos harness: a
// 3-replica cluster behind the router serving a month of traffic while
// the champion/challenger machinery shadows it — first with a
// deliberately over-broad challenger that must be rejected at the FP
// gate, then with a properly retrained one that must promote
// cluster-wide through the router's generation-consistent reload.
type ChaosLifecycleConfig struct {
	// Synth generates the dataset every replica serves.
	Synth synth.Config
	// Dir is the root directory; each replica journals into a subdir.
	Dir string
	// Replicas is the cluster size.
	Replicas int
	// Batch is events per /classify request.
	Batch int
	// Tau is the rule-selection threshold for champion and retrain.
	Tau float64
	// FPBudget is the promotion gate: max challenger FP rate over
	// known-benign shadow traffic (the paper's 0.1% operating point).
	FPBudget float64
	// MinShadowSamples gates the promotion decision on evidence volume.
	MinShadowSamples int
	// ReportPath, when non-empty, receives the shadow-evaluation
	// disagreement report as JSON (the CI artifact).
	ReportPath string
}

// DefaultChaosLifecycleConfig returns the standard scenario: three
// replicas, the paper's 0.1% FP budget, and a bad challenger crafted to
// blow through it.
func DefaultChaosLifecycleConfig(seed int64, dir string) ChaosLifecycleConfig {
	return ChaosLifecycleConfig{
		Synth:            synth.DefaultConfig(seed, 0.004),
		Dir:              dir,
		Replicas:         3,
		Batch:            32,
		Tau:              0.001,
		FPBudget:         0.001,
		MinShadowSamples: 200,
	}
}

// ChaosLifecycleReport is the outcome of one lifecycle chaos run.
type ChaosLifecycleReport struct {
	Replicas int
	Batches  int
	Events   int

	// Ground-truth harvest (delayed t₀+2y re-scans over served files).
	Harvested      int
	DiscardedWeak  int
	ServedFiles    int
	KnownBenign    uint64
	KnownMalicious uint64

	// Bad-challenger phase: must be rejected, never served.
	BadFPRate        float64
	BadRejected      bool
	BadReason        string
	BadDisagreements int

	// Degraded fold-in: a garbage reload against replica 0 raises
	// longtail_degraded; the later promotion must clear it.
	DegradedAfterBadReload bool
	DegradedCleared        bool

	// Good-challenger phase: retrained on harvested truth, must promote.
	GoodFPRate         float64
	GoodPromoted       bool
	PromotedGeneration uint64
	RouterConverged    bool

	// Shadow accounting and the serving invariants.
	ShadowSamples    uint64
	ShadowDropped    uint64
	RuleMetricsSeen  bool
	DecayMetricsSeen bool

	WrongGenVerdicts   int
	LostBatches        int
	MismatchedVerdicts int
}

// lifecycleShadowReport is the JSON artifact written to ReportPath: the
// full scoreboard and retained disagreement examples for both shadow
// runs.
type lifecycleShadowReport struct {
	Bad  lifecycleShadowRun `json:"badChallenger"`
	Good lifecycleShadowRun `json:"goodChallenger"`
}

type lifecycleShadowRun struct {
	State         string                   `json:"state"`
	Reason        string                   `json:"reason,omitempty"`
	Generation    uint64                   `json:"generation,omitempty"`
	Stats         lifecycle.Stats          `json:"stats"`
	Disagreements []lifecycle.Disagreement `json:"disagreements"`
}

// overbroadChallenger builds the champion's malicious rules plus one
// crafted rule matching the most common (attribute, value) among
// known-benign replay traffic — guaranteed FP bleed over any reasonable
// budget, and deterministic for a given corpus.
func overbroadChallenger(ex *features.Extractor, champion *classify.Classifier, replay []dataset.DownloadEvent, truth lifecycle.TruthFunc) (*classify.Classifier, error) {
	type av struct {
		attr int
		val  string
	}
	counts := make(map[av]int)
	for i := range replay {
		mal, known := truth(replay[i].File)
		if !known || mal {
			continue
		}
		vec, err := ex.Vector(&replay[i])
		if err != nil {
			continue
		}
		for a := 0; a < features.NumNominal; a++ {
			if v := vec.Nominal(a); v != features.None {
				counts[av{a, v}]++
			}
		}
	}
	var best av
	bestN := 0
	for k, n := range counts {
		if n > bestN || (n == bestN && (k.attr < best.attr || (k.attr == best.attr && k.val < best.val))) {
			best, bestN = k, n
		}
	}
	if bestN == 0 {
		return nil, fmt.Errorf("experiments: chaos-lifecycle: no common benign nominal value to craft the bad challenger from")
	}
	var rules []part.Rule
	for _, r := range champion.Rules {
		if r.Class == classify.ClassMalicious {
			rules = append(rules, r)
		}
	}
	rules = append(rules, part.Rule{
		Conditions: []part.Condition{{
			AttrIndex: best.attr,
			AttrName:  features.AttributeNames[best.attr],
			Op:        part.OpEquals,
			Value:     best.val,
		}},
		Class: classify.ClassMalicious, ClassName: "malicious",
		Covered: bestN,
	})
	return classify.NewFromRules(rules, classify.Reject)
}

// RunChaosLifecycle drives the champion/challenger lifecycle against a
// live 3-replica cluster:
//
//  1. harvest ground truth for the replay window the paper's way —
//     schedule every served file's AV re-scan at t₀+2y (virtual clock)
//     and keep only confident labels;
//  2. shadow an over-broad challenger on live router traffic; the FP
//     gate must reject it, the cluster must keep serving generation 1,
//     and the challenger's verdicts must never surface;
//  3. break replica 0 with a garbage /admin/reload (longtail_degraded
//     raised, node demoted);
//  4. shadow a challenger retrained (warm-start) on the champion's
//     window plus the harvest; the gate must promote it through the
//     router's generation-consistent fan-out — converging every
//     replica to generation 2, clearing the degraded node — with zero
//     lost batches, zero wrong-generation verdicts, and zero dropped
//     shadow batches.
func RunChaosLifecycle(cfg ChaosLifecycleConfig) (*ChaosLifecycleReport, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("experiments: chaos-lifecycle: empty dir")
	}
	if cfg.Replicas < 3 {
		return nil, fmt.Errorf("experiments: chaos-lifecycle: need >= 3 replicas, have %d", cfg.Replicas)
	}
	if cfg.Batch <= 0 {
		cfg.Batch = 32
	}

	// The deterministic world: a labeled corpus, a champion trained on
	// month 0, and month 1 as the live traffic the lifecycle rides.
	p, err := Run(cfg.Synth)
	if err != nil {
		return nil, fmt.Errorf("experiments: chaos-lifecycle: pipeline: %w", err)
	}
	ex, err := features.NewExtractor(p.Store, p.Result.Oracle)
	if err != nil {
		return nil, err
	}
	months := p.Store.Months()
	if len(months) < 2 {
		return nil, fmt.Errorf("experiments: chaos-lifecycle: need >= 2 months")
	}
	train, err := ex.Instances(p.Store.EventIndexesInMonth(months[0]))
	if err != nil {
		return nil, err
	}
	champion, err := classify.Train(train, cfg.Tau, classify.Reject)
	if err != nil {
		return nil, err
	}
	all := p.Store.Events()
	var replay []dataset.DownloadEvent
	for _, idx := range p.Store.EventIndexesInMonth(months[1]) {
		replay = append(replay, all[idx])
	}
	nBatches := (len(replay) + cfg.Batch - 1) / cfg.Batch
	if nBatches < 8 {
		return nil, fmt.Errorf("experiments: chaos-lifecycle: %d batches too few to stage the scenario (need >= 8)", nBatches)
	}
	batchOf := func(b int) []dataset.DownloadEvent {
		lo, hi := b*cfg.Batch, (b+1)*cfg.Batch
		if hi > len(replay) {
			hi = len(replay)
		}
		return replay[lo:hi]
	}
	rep := &ChaosLifecycleReport{Replicas: cfg.Replicas, Batches: nBatches, Events: len(replay)}
	ctx := context.Background()

	// ---- Harvest ground truth up front, the paper's protocol: every
	// file in the window gets its re-scan at download time + 2 years;
	// the virtual clock jumps past the last due date. A daemon would do
	// this continuously on wall clock; the harness owns the clock.
	harv, err := lifecycle.NewHarvester(avsim.NewDefaultService(), ex, p.Result.Samples, 0)
	if err != nil {
		return nil, err
	}
	harv.Observe(replay)
	var lastSeen time.Time
	for i := range replay {
		if replay[i].Time.After(lastSeen) {
			lastSeen = replay[i].Time
		}
	}
	harv.Advance(lastSeen.Add(labeling.DefaultRescanDelay).AddDate(0, 1, 0))
	truth := harv.Truth()
	hstats := harv.Stats()
	rep.Harvested = hstats.Harvested
	rep.DiscardedWeak = hstats.Discarded
	if rep.Harvested == 0 {
		return nil, fmt.Errorf("experiments: chaos-lifecycle: harvest produced no labeled instances")
	}

	// ---- Boot the cluster: every replica journals, taps its engine
	// into a shadow evaluator, and exposes the evaluator on /metrics.
	evals := make([]*lifecycle.Evaluator, cfg.Replicas)
	nodes := make([]*chaosNode, cfg.Replicas)
	for i := range nodes {
		e, err := lifecycle.NewEvaluator(ex, truth, lifecycle.EvaluatorConfig{})
		if err != nil {
			return nil, err
		}
		defer e.Close()
		evals[i] = e
		n, _, _, err := startChaosNode("", filepath.Join(cfg.Dir, fmt.Sprintf("replica-%d", i)), ex, champion, nil,
			serve.WithMetricsAppender(e.WriteMetrics))
		if err != nil {
			return nil, fmt.Errorf("experiments: chaos-lifecycle: replica %d: %w", i, err)
		}
		defer n.stop()
		n.engine.SetBatchTap(e.Tap())
		nodes[i] = n
	}
	addrs := make([]string, len(nodes))
	for i, n := range nodes {
		addrs[i] = n.addr
	}
	rt, err := cluster.NewRouter(cluster.Options{
		Replicas:      addrs,
		ProbeInterval: 0, // probes driven manually for determinism
		ProbeTimeout:  time.Second,
	})
	if err != nil {
		return nil, err
	}
	defer rt.Close()
	front := httptest.NewServer(rt.Handler())
	defer front.Close()
	client := &serve.Client{BaseURL: front.URL}
	probeRounds := func(k int) {
		for i := 0; i < k; i++ {
			rt.ProbeAll(ctx)
		}
	}

	offline := func(ev *dataset.DownloadEvent, clf *classify.Classifier) (string, error) {
		vec, err := ex.Vector(ev)
		if err != nil {
			return "", err
		}
		v, matched := clf.ClassifyFile([]features.Instance{{Vector: vec, File: ev.File}})
		return fmt.Sprintf("%s %s %v", ev.File, v, matched), nil
	}
	flushAll := func() {
		for _, e := range evals {
			e.Flush()
		}
	}
	// sendBatch replays one batch through the router and holds every
	// verdict to the serving contract: present, generation wantGen, and
	// byte-identical to offline classification with clf (the champion
	// before promotion, the promoted challenger after).
	sendBatch := func(b int, clf *classify.Classifier, wantGen uint64) error {
		events := batchOf(b)
		verdicts, err := client.ClassifyWithID(ctx, fmt.Sprintf("lc-%04d", b), events)
		if err != nil || len(verdicts) != len(events) {
			rep.LostBatches++
			return nil
		}
		for i := range events {
			want, err := offline(&events[i], clf)
			if err != nil {
				return err
			}
			if verdicts[i].Key() != want {
				rep.MismatchedVerdicts++
			}
			if verdicts[i].Generation != wantGen {
				rep.WrongGenVerdicts++
			}
		}
		if b%4 == 3 {
			flushAll() // keep the bounded shadow queues from overflowing
		}
		return nil
	}

	badEnd := nBatches / 2
	goodEnd := 3 * nBatches / 4

	// ---- Phase A: the over-broad challenger shadows live traffic. The
	// gate must reject it; generation 1 keeps serving throughout.
	mgr, err := lifecycle.NewManager(lifecycle.Config{
		FPBudget:         cfg.FPBudget,
		MinShadowSamples: cfg.MinShadowSamples,
	}, lifecycle.ReloadPromoter{Client: client}, evals...)
	if err != nil {
		return nil, err
	}
	bad, err := overbroadChallenger(ex, champion, replay, truth)
	if err != nil {
		return nil, err
	}
	if _, err := mgr.BeginShadow(bad); err != nil {
		return nil, err
	}
	for b := 0; b < badEnd; b++ {
		if err := sendBatch(b, champion, 1); err != nil {
			return nil, err
		}
	}
	flushAll()

	// Mid-shadow, /metrics on the replicas must expose per-rule hit/FP
	// counters for BOTH generations — the rule-efficacy surface.
	var combined strings.Builder
	for _, n := range nodes {
		m, err := (&serve.Client{BaseURL: "http://" + n.addr}).Metrics(ctx)
		if err != nil {
			return nil, err
		}
		combined.WriteString(m)
	}
	rep.RuleMetricsSeen = strings.Contains(combined.String(), `longtail_rule_hits_total{role="champion",gen="1"`) &&
		strings.Contains(combined.String(), `longtail_rule_hits_total{role="challenger"`)

	badAgg := mgr.Aggregate()
	badDisagreements := mgr.Disagreements()
	rep.BadFPRate = badAgg.ChallengerFPRate()
	rep.BadDisagreements = len(badDisagreements)
	st, err := mgr.Tick(ctx)
	if err != nil {
		return nil, err
	}
	rep.BadRejected = st == lifecycle.StateRejected
	badStatus := mgr.Status()
	rep.BadReason, _ = badStatus["reason"].(string)
	if !rep.BadRejected {
		return nil, fmt.Errorf("experiments: chaos-lifecycle: bad challenger resolved %s, want rejected (FP rate %.4f, stats %+v)", st, rep.BadFPRate, badAgg)
	}
	if rtStatus := rt.Status(); rtStatus.Generation != 1 {
		return nil, fmt.Errorf("experiments: chaos-lifecycle: cluster generation moved to %d during a rejected shadow run", rtStatus.Generation)
	}

	// ---- Degraded fold-in: a garbage reload breaks replica 0. The
	// node serves its old generation in degraded mode until the
	// lifecycle promotion — riding the same reload path — heals it.
	resp, err := http.Post("http://"+nodes[0].addr+"/admin/reload", "application/json", strings.NewReader("not rules"))
	if err != nil {
		return nil, err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		return nil, fmt.Errorf("experiments: chaos-lifecycle: garbage reload = %d, want 400", resp.StatusCode)
	}
	m0, err := (&serve.Client{BaseURL: "http://" + nodes[0].addr}).Metrics(ctx)
	if err != nil {
		return nil, err
	}
	rep.DegradedAfterBadReload = strings.Contains(m0, "longtail_degraded 1")
	if !rep.DegradedAfterBadReload {
		return nil, fmt.Errorf("experiments: chaos-lifecycle: longtail_degraded not raised after failed reload")
	}
	probeRounds(1) // the router demotes the degraded replica out of the healthy tier

	// ---- Phase B: the real challenger — warm-started from the
	// champion's rules over its window plus the harvest — shadows the
	// next traffic slice and must promote within the FP budget.
	good, err := classify.Retrain(champion, harv.Training(train), cfg.Tau, classify.Reject)
	if err != nil {
		return nil, err
	}
	if _, err := mgr.BeginShadow(good); err != nil {
		return nil, err
	}
	for b := badEnd; b < goodEnd; b++ {
		if err := sendBatch(b, champion, 1); err != nil {
			return nil, err
		}
	}
	flushAll()
	for _, n := range nodes {
		harv.DrainLedger(n.ledger)
	}
	rep.ServedFiles = harv.Stats().ServedFiles

	goodAgg := mgr.Aggregate()
	goodDisagreements := mgr.Disagreements()
	rep.GoodFPRate = goodAgg.ChallengerFPRate()
	rep.ShadowSamples = badAgg.Samples + goodAgg.Samples
	rep.KnownBenign = badAgg.KnownBenign + goodAgg.KnownBenign
	rep.KnownMalicious = badAgg.KnownMalicious + goodAgg.KnownMalicious
	st, err = mgr.Tick(ctx)
	if err != nil {
		return nil, fmt.Errorf("experiments: chaos-lifecycle: promotion tick: %w", err)
	}
	rep.GoodPromoted = st == lifecycle.StatePromoted
	rep.PromotedGeneration = mgr.PromotedGeneration()
	if !rep.GoodPromoted {
		return nil, fmt.Errorf("experiments: chaos-lifecycle: good challenger resolved %s, want promoted (FP rate %.4f over %d known benign)", st, rep.GoodFPRate, goodAgg.KnownBenign)
	}

	// Promotion converged the fleet: advertised == target == 2, the
	// degraded replica healed (same reload path), probes restore it to
	// the healthy tier.
	probeRounds(2)
	rtStatus := rt.Status()
	rep.RouterConverged = rtStatus.Status == "ok" && rtStatus.Generation == rtStatus.TargetGeneration && rtStatus.Generation == rep.PromotedGeneration
	if !rep.RouterConverged {
		return nil, fmt.Errorf("experiments: chaos-lifecycle: router did not converge after promotion (status %+v)", rtStatus)
	}
	m0, err = (&serve.Client{BaseURL: "http://" + nodes[0].addr}).Metrics(ctx)
	if err != nil {
		return nil, err
	}
	rep.DegradedCleared = strings.Contains(m0, "longtail_degraded 0")

	// ---- Phase C: the promoted generation serves the rest of the
	// window; every verdict must carry generation 2 and match the
	// challenger's offline classification.
	for b := goodEnd; b < nBatches; b++ {
		if err := sendBatch(b, good, rep.PromotedGeneration); err != nil {
			return nil, err
		}
	}
	flushAll()

	// Post-promotion, the champion counters accumulate under gen="2" —
	// the per-rule decay trend across generations on one surface.
	combined.Reset()
	for _, n := range nodes {
		m, err := (&serve.Client{BaseURL: "http://" + n.addr}).Metrics(ctx)
		if err != nil {
			return nil, err
		}
		combined.WriteString(m)
	}
	rep.DecayMetricsSeen = strings.Contains(combined.String(), fmt.Sprintf(`longtail_rule_hits_total{role="champion",gen="%d"`, rep.PromotedGeneration))

	var dropped uint64
	for _, e := range evals {
		dropped += e.Snapshot().Dropped
	}
	rep.ShadowDropped = dropped

	if cfg.ReportPath != "" {
		doc := lifecycleShadowReport{
			Bad: lifecycleShadowRun{
				State: lifecycle.StateRejected.String(), Reason: rep.BadReason,
				Stats: badAgg, Disagreements: badDisagreements,
			},
			Good: lifecycleShadowRun{
				State: lifecycle.StatePromoted.String(), Generation: rep.PromotedGeneration,
				Stats: goodAgg, Disagreements: goodDisagreements,
			},
		}
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(cfg.ReportPath, append(data, '\n'), 0o644); err != nil {
			return nil, fmt.Errorf("experiments: chaos-lifecycle: write report: %w", err)
		}
	}
	return rep, nil
}

// ChaosLifecycle is the registry adapter: run the default scenario in a
// temporary directory (report path from LIFECYCLE_REPORT when set) and
// render the outcome.
func ChaosLifecycle(p *Pipeline, w io.Writer) error {
	dir, err := os.MkdirTemp("", "chaos-lifecycle-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	cfg := DefaultChaosLifecycleConfig(p.Config.Seed, dir)
	cfg.ReportPath = os.Getenv("LIFECYCLE_REPORT")
	rep, err := RunChaosLifecycle(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Chaos-lifecycle run: %d replicas, champion/challenger over live router traffic\n\n", rep.Replicas)
	fmt.Fprintf(w, "workload                  %6d batches, %d events\n", rep.Batches, rep.Events)
	fmt.Fprintf(w, "harvested ground truth    %6d instances (%d weak labels discarded, %d served files drained)\n",
		rep.Harvested, rep.DiscardedWeak, rep.ServedFiles)
	fmt.Fprintf(w, "shadow samples            %6d (known benign %d, known malicious %d, dropped %d)\n",
		rep.ShadowSamples, rep.KnownBenign, rep.KnownMalicious, rep.ShadowDropped)
	fmt.Fprintf(w, "bad challenger            FP rate %.4f -> %s (%d disagreements retained)\n",
		rep.BadFPRate, map[bool]string{true: "rejected", false: "NOT REJECTED"}[rep.BadRejected], rep.BadDisagreements)
	fmt.Fprintf(w, "good challenger           FP rate %.4f -> promoted generation %d (router converged: %v)\n",
		rep.GoodFPRate, rep.PromotedGeneration, rep.RouterConverged)
	fmt.Fprintf(w, "degraded recovery         raised: %v, cleared by promotion: %v\n",
		rep.DegradedAfterBadReload, rep.DegradedCleared)
	fmt.Fprintf(w, "per-rule metrics          shadowing: %v, post-promotion decay: %v\n", rep.RuleMetricsSeen, rep.DecayMetricsSeen)
	fmt.Fprintf(w, "\nwrong-generation verdicts %6d\nlost batches              %6d\nmismatched verdicts       %6d\n",
		rep.WrongGenVerdicts, rep.LostBatches, rep.MismatchedVerdicts)
	if rep.LostBatches > 0 || rep.MismatchedVerdicts > 0 || rep.WrongGenVerdicts > 0 ||
		rep.ShadowDropped > 0 || !rep.DegradedCleared || !rep.RuleMetricsSeen {
		return fmt.Errorf("experiments: chaos-lifecycle: %d lost, %d mismatched, %d wrong-gen, %d shadow-dropped, degraded cleared %v, rule metrics %v",
			rep.LostBatches, rep.MismatchedVerdicts, rep.WrongGenVerdicts, rep.ShadowDropped, rep.DegradedCleared, rep.RuleMetricsSeen)
	}
	return nil
}
