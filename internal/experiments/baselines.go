package experiments

import (
	"fmt"
	"io"

	"repro/internal/classify"
	"repro/internal/features"
	"repro/internal/polonium"
	"repro/internal/report"
	"repro/internal/urlrep"
)

// Baselines compares the paper's rule-based classifier against the two
// system families its related-work section positions it against:
// Polonium-style machine-file graph propagation (which "does not work on
// files seen on single machines") and CAMP/Amico-style download-source
// reputation (which the mixed-reputation hosting domains of Section IV-B
// confuse). All three run on the same first train/test window.
func Baselines(p *Pipeline, w io.Writer) error {
	months := p.Store.Months()
	if len(months) < 2 {
		return fmt.Errorf("experiments: need two months for baselines")
	}
	trainIdx := p.Store.EventIndexesInMonth(months[0])
	testIdx := p.Store.EventIndexesInMonth(months[1])

	// Rule-based classifier (this paper).
	ex, err := features.NewExtractor(p.Store, p.Result.Oracle)
	if err != nil {
		return err
	}
	trainInsts, err := ex.Instances(trainIdx)
	if err != nil {
		return err
	}
	testInsts, err := ex.Instances(testIdx)
	if err != nil {
		return err
	}
	clf, err := classify.Train(trainInsts, 0.001, classify.Reject)
	if err != nil {
		return err
	}
	ruleEval := clf.Evaluate(testInsts)

	// Polonium-style graph propagation.
	graph, err := polonium.Run(p.Store, trainIdx, polonium.DefaultConfig())
	if err != nil {
		return err
	}
	buckets := polonium.Evaluate(p.Store, graph, testIdx, 0.62)

	// URL-reputation baseline.
	urlModel, err := urlrep.Train(p.Store, trainIdx, 3)
	if err != nil {
		return err
	}
	urlEval := urlrep.Evaluate(p.Store, urlModel, testIdx, 0.5)

	tbl := report.NewTable("Baseline comparison (first train/test window)",
		"system", "scope", "TP", "FP", "notes")
	tbl.AddRow("rule-based (this paper)",
		fmt.Sprintf("%s matched files", report.Count(ruleEval.MatchedMalicious+ruleEval.MatchedBenign)),
		report.Pct2(ruleEval.TPRate()), report.Pct2(ruleEval.FPRate()),
		fmt.Sprintf("%d rejected for conflicts", ruleEval.Rejected))
	for _, b := range buckets {
		tbl.AddRow("polonium-style graph", b.Bucket+
			fmt.Sprintf(" (%s mal files)", report.Count(b.Malicious)),
			report.Pct2(b.DetectionRate()), report.Pct2(b.FPRate()), "belief propagation, threshold 0.62")
	}
	tbl.AddRow("URL reputation (CAMP/Amico-like)",
		fmt.Sprintf("%s judged files", report.Count(urlEval.Judged)),
		report.Pct2(urlEval.TPRate()), report.Pct2(urlEval.FPRate()),
		fmt.Sprintf("%d errors on mixed-reputation domains", urlEval.MixedDomainErrors))
	if err := tbl.Render(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "paper's positioning: Polonium reports 48%% detection at prevalence 2-3 and none at prevalence 1 (94%% of its dataset); URL-reputation systems suffer from domains serving both benign and malicious files; the rule classifier handles low-prevalence files because its features are intrinsic to the file and its delivery context\n\n")
	return nil
}
