// Package experiments wires the full reproduction pipeline together and
// provides one runner per table and figure in the paper's evaluation.
// Each runner prints the measured result next to the paper's reported
// values so the shape comparison is immediate.
package experiments

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/avsim"
	"repro/internal/classify"
	"repro/internal/dataset"
	"repro/internal/labeling"
	"repro/internal/synth"
)

// Pipeline is a fully generated, labeled and indexed dataset ready for
// analysis.
type Pipeline struct {
	Config   synth.Config
	Result   *synth.Result
	Store    *dataset.Store
	Labeler  *labeling.Labeler
	Analyzer *analysis.Analyzer

	// windows memoizes the monthly rule-learning evaluation shared by
	// the Table XVI/XVII/rule-stats experiments.
	windows []classify.WindowResult
}

// Run generates the synthetic telemetry, labels it with the full
// ground-truth pipeline (scan service + reputation sources + AVclass +
// AVType), freezes the store and prepares the analyzer.
func Run(cfg synth.Config) (*Pipeline, error) {
	res, err := synth.Generate(cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: generate: %w", err)
	}
	svc := avsim.NewDefaultService()
	lab, err := labeling.New(svc, res.Oracle, nil, nil, 0)
	if err != nil {
		return nil, fmt.Errorf("experiments: labeler: %w", err)
	}
	if err := lab.LabelStore(res.Store, res.Samples); err != nil {
		return nil, fmt.Errorf("experiments: label: %w", err)
	}
	res.Store.Freeze()
	an, err := analysis.New(res.Store, res.Oracle)
	if err != nil {
		return nil, fmt.Errorf("experiments: analyzer: %w", err)
	}
	return &Pipeline{
		Config:   cfg,
		Result:   res,
		Store:    res.Store,
		Labeler:  lab,
		Analyzer: an,
	}, nil
}
