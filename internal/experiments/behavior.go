package experiments

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/analysis"
	"repro/internal/dataset"
	"repro/internal/report"
)

// typeMixString renders a behaviour-type share map like the paper's
// "dropper=28.05%, pup=18.55%, ..." strings.
func typeMixString(mix map[dataset.MalwareType]float64) string {
	type kv struct {
		t dataset.MalwareType
		v float64
	}
	var kvs []kv
	for t, v := range mix {
		if v > 0 {
			kvs = append(kvs, kv{t, v})
		}
	}
	sort.Slice(kvs, func(i, j int) bool {
		if kvs[i].v != kvs[j].v {
			return kvs[i].v > kvs[j].v
		}
		return kvs[i].t < kvs[j].t
	})
	s := ""
	for i, e := range kvs {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%s=%.1f%%", e.t, 100*e.v)
	}
	if s == "" {
		s = "-"
	}
	return s
}

// renderBehaviorRows renders ProcessBehaviorRows as a table.
func renderBehaviorRows(w io.Writer, title string, rows []analysis.ProcessBehaviorRow) error {
	tbl := report.NewTable(title,
		"population", "procs", "machines", "unknown", "benign", "malicious", "infected")
	for _, r := range rows {
		tbl.AddRow(r.Name, report.Count(r.Processes), report.Count(r.Machines),
			report.Count(r.Unknown), report.Count(r.Benign), report.Count(r.Malicious),
			report.Pct(r.InfectedShare()))
	}
	if err := tbl.Render(w); err != nil {
		return err
	}
	for _, r := range rows {
		if r.Malicious > 0 {
			fmt.Fprintf(w, "  %s types: %s\n", r.Name, typeMixString(r.TypeShare))
		}
	}
	return nil
}

// TableX renders the benign-process behaviour table.
func TableX(p *Pipeline, w io.Writer) error {
	rows := p.Analyzer.BenignProcessBehavior()
	if err := renderBehaviorRows(w, "Table X: download behavior of benign processes", rows); err != nil {
		return err
	}
	fmt.Fprintf(w, "paper: browsers 1,342 procs / 799,342 machines / 24.44%% infected; windows 27.71%% infected; java 33.36%%; acrobat reader 78.52%% infected with zero benign downloads; other 31.24%%\n")
	fmt.Fprintf(w, "paper shape: Java/Acrobat downloads are overwhelmingly malicious; droppers dominate browser-borne malware\n\n")
	return nil
}

// TableXI renders the per-browser behaviour table.
func TableXI(p *Pipeline, w io.Writer) error {
	rows := p.Analyzer.BrowserBehavior()
	if err := renderBehaviorRows(w, "Table XI: download behavior of benign browser processes", rows); err != nil {
		return err
	}
	fmt.Fprintf(w, "paper infected machines: Firefox 26.00%%, Chrome 31.92%% (highest), Opera 27.83%%, Safari 18.56%%, IE 18.09%% (lowest)\n\n")
	return nil
}

// TableXII renders the malicious-process behaviour table.
func TableXII(p *Pipeline, w io.Writer) error {
	rows, overall := p.Analyzer.MaliciousProcessBehavior()
	var nonEmpty []analysis.ProcessBehaviorRow
	for _, r := range rows {
		if r.Processes > 0 {
			nonEmpty = append(nonEmpty, r)
		}
	}
	nonEmpty = append(nonEmpty, overall)
	if err := renderBehaviorRows(w, "Table XII: download behavior of malicious processes (by process type)", nonEmpty); err != nil {
		return err
	}
	fmt.Fprintf(w, "paper shape: each malware type mostly downloads its own type (ransomware->ransomware 80.95%%, bot->bot 64.72%%, banker->banker 76.00%%); adware/PUP processes also pull trojans (>6%%) and droppers (3-4.6%%)\n\n")
	return nil
}

// Figure5 renders the infection-transition CDFs.
func Figure5(p *Pipeline, w io.Writer) error {
	curves := p.Analyzer.AllTransitions()
	tbl := report.NewTable("Figure 5: time from anchor download to next other-malware download",
		"anchor", "anchored", "transitioned", "same day", "<= 5 days", "<= 30 days")
	for _, c := range curves {
		sameDay, five, thirty := "-", "-", "-"
		if c.DeltaDays.Len() > 0 {
			sameDay = report.Pct(c.DeltaDays.At(1.0))
			five = report.Pct(c.DeltaDays.At(5.0))
			thirty = report.Pct(c.DeltaDays.At(30.0))
		}
		tbl.AddRow(c.Source.String(), report.Count(c.Anchored), report.Count(c.Transitioned),
			sameDay, five, thirty)
	}
	if err := tbl.Render(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "paper: adware/PUP machines: >40%% transition same day, >55%% within 5 days; benign: only ~20%% within 5 days; droppers transition fastest of all\n\n")
	return nil
}

// Chains renders the malicious download-chain depth analysis, extending
// Section V toward the downloader-graph perspective of Kwon et al. that
// the paper builds on.
func Chains(p *Pipeline, w io.Writer) error {
	cs := p.Analyzer.DownloadChains()
	tbl := report.NewTable("Malicious download chains (depth = infection stages)",
		"depth", "#files", "share")
	for _, d := range cs.DepthHistogram.Buckets() {
		tbl.AddRow(fmt.Sprint(d), report.Count(cs.DepthHistogram.Count(d)),
			report.Pct(cs.DepthHistogram.Fraction(d)))
	}
	if err := tbl.Render(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "max depth %d", cs.MaxDepth)
	if len(cs.DeepestChain) > 1 {
		fmt.Fprintf(w, "; one deepest chain: ")
		for i, h := range cs.DeepestChain {
			if i > 0 {
				fmt.Fprintf(w, " -> ")
			}
			gt := p.Store.Truth(h)
			fmt.Fprintf(w, "%s (%s)", h, gt.Type)
		}
	}
	fmt.Fprintf(w, "\npaper context: droppers are first-stage malware fetching second stages (Section V); Kwon et al. analyze these chains as downloader graphs\n\n")
	return nil
}
