package experiments

import "testing"

// TestChaosCluster drives the full cluster-wide chaos scenario — a
// 3-replica consistent-hash cluster behind the health-aware router,
// >= 10% injected link faults, a mid-replay replica kill -9 with
// journal recovery, a router-side partition, and a generation-
// consistent reload with a replica partitioned — and holds the
// cluster to the single-node bar: zero lost batches, zero duplicated
// work on retransmit, byte-identical verdicts vs offline
// classification.
func TestChaosCluster(t *testing.T) {
	cfg := DefaultChaosClusterConfig(42, t.TempDir())
	rep, err := RunChaosCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}

	if rep.LostBatches != 0 {
		t.Errorf("lost batches = %d, want 0", rep.LostBatches)
	}
	if rep.MismatchedVerdicts != 0 {
		t.Errorf("mismatched verdicts = %d, want 0 (byte-identical to offline)", rep.MismatchedVerdicts)
	}
	if rep.StormDiverged != 0 {
		t.Errorf("storm-diverged verdicts = %d, want 0 (retransmits byte-identical)", rep.StormDiverged)
	}
	if rep.StormReclassified != 0 {
		t.Errorf("storm reclassified %d events, want 0 (every retransmit answered from a replica ledger)", rep.StormReclassified)
	}

	// The fault schedule must actually bite: >= 10% of link request keys
	// hit at least one injected fault.
	if rep.LinkKeys == 0 {
		t.Fatal("no link traffic recorded")
	}
	if frac := float64(rep.FaultedKeys) / float64(rep.LinkKeys); frac < 0.10 {
		t.Errorf("faulted link keys = %.1f%%, want >= 10%%", 100*frac)
	}
	if rep.Failovers == 0 {
		t.Error("no failovers recorded; the ring never rerouted")
	}

	// The kill -9 must have left real work to recover.
	if rep.CrashAccepted == 0 || rep.VictimReplayed < rep.CrashAccepted {
		t.Errorf("victim replayed %d pending batches, want >= %d accepted in the kill window",
			rep.VictimReplayed, rep.CrashAccepted)
	}
	if rep.TornTailBytes == 0 {
		t.Error("no torn tail discarded; the crash did not tear the journal")
	}

	// Generation consistency: degraded while partitioned, no stale-
	// generation verdicts, converged after heal.
	if !rep.DegradedDuringPartition {
		t.Error("router did not degrade during the partitioned reload")
	}
	if rep.WrongGenVerdicts != 0 {
		t.Errorf("wrong-generation verdicts = %d, want 0", rep.WrongGenVerdicts)
	}
	if rep.DegradedWindowLeaks != 0 {
		t.Errorf("stale replica classified %d events while degraded, want 0", rep.DegradedWindowLeaks)
	}
	if rep.ReloadGeneration < 2 {
		t.Errorf("reload generation = %d, want >= 2 after convergence", rep.ReloadGeneration)
	}
}
