package experiments

import (
	"fmt"
	"io"

	"repro/internal/avtype"
	"repro/internal/classify"
	"repro/internal/dataset"
	"repro/internal/features"
	"repro/internal/report"
)

// evalTaus are the rule-selection thresholds Tables XVI/XVII compare.
var evalTaus = []float64{0.0, 0.001}

// runWindows memoizes the monthly-window evaluation on the pipeline.
func runWindows(p *Pipeline) ([]classify.WindowResult, error) {
	if p.windows == nil {
		ws, err := classify.RunMonthlyWindows(p.Store, p.Result.Oracle, evalTaus, classify.Reject)
		if err != nil {
			return nil, err
		}
		p.windows = ws
	}
	return p.windows, nil
}

// TableXVI renders per-window rule extraction statistics.
func TableXVI(p *Pipeline, w io.Writer) error {
	windows, err := runWindows(p)
	if err != nil {
		return err
	}
	tbl := report.NewTable("Table XVI: extracted rules per training window",
		"T_tr", "tau", "overall rules", "selected", "benign", "malicious")
	for _, win := range windows {
		tbl.AddRow(win.TrainMonth.String(), report.Pct2(win.Tau),
			report.Count(win.RulesTotal), report.Count(win.RulesSelected),
			report.Count(win.RulesBenign), report.Count(win.RulesMalicious))
	}
	if err := tbl.Render(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "paper (at scale 1.0): e.g. Feb: 1,766 rules overall, 1,020 selected at tau=0.0%% (889 benign / 131 malicious), 1,031 at tau=0.1%%; rule counts scale with training volume\n")
	fmt.Fprintf(w, "note: at reduced scale, rules rarely sit between the two tau thresholds, so the selected counts often coincide\n\n")
	return nil
}

// TableXVII renders the classifier evaluation and unknown-file labeling.
func TableXVII(p *Pipeline, w io.Writer) error {
	windows, err := runWindows(p)
	if err != nil {
		return err
	}
	tbl := report.NewTable("Table XVII: test evaluation and unknown classification",
		"T_tr->T_ts", "tau", "#mal", "TP", "#ben", "FP", "#FP rules", "rejected",
		"#unk", "matched", "unk->mal", "unk->ben")
	for _, win := range windows {
		tbl.AddRow(
			fmt.Sprintf("%s->%s", win.TrainMonth, win.TestMonth),
			report.Pct2(win.Tau),
			report.Count(win.Eval.MatchedMalicious), report.Pct2(win.Eval.TPRate()),
			report.Count(win.Eval.MatchedBenign), report.Pct2(win.Eval.FPRate()),
			report.Count(win.Eval.FPRules), report.Count(win.Eval.Rejected),
			report.Count(win.Unknowns.Total), report.Pct(win.Unknowns.MatchRate()),
			report.Count(win.Unknowns.Malicious), report.Count(win.Unknowns.Benign),
		)
	}
	if err := tbl.Render(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "paper: TP > 95%% and FP < 0.32%% at tau=0.1%% across all windows (FP counts of 0-8 rules); 22-38%% of each window's unknowns match rules, most labeled malicious\n")
	fmt.Fprintf(w, "note: measured FP rates carry small-denominator noise at reduced scale; compare absolute FP file counts instead (paper: a handful per window)\n\n")
	return nil
}

// RuleStats renders Section VII's rule introspection and the
// ground-truth expansion result.
func RuleStats(p *Pipeline, w io.Writer) error {
	windows, err := runWindows(p)
	if err != nil {
		return err
	}
	usage := map[string]int{}
	base, single, total := 0, 0, 0
	totUnknown, totMatched, totMal, totBen := 0, 0, 0, 0
	labeledMachines := map[dataset.MachineID]struct{}{}
	for _, win := range windows {
		if win.Tau != 0.001 {
			continue
		}
		for _, r := range win.Classifier.Rules {
			total++
			if len(r.Conditions) == 1 {
				single++
			}
			base++
			seen := map[string]bool{}
			for _, c := range r.Conditions {
				if !seen[c.AttrName] {
					usage[c.AttrName]++
					seen[c.AttrName] = true
				}
			}
		}
		totUnknown += win.Unknowns.Total
		totMatched += win.Unknowns.Matched
		totMal += win.Unknowns.Malicious
		totBen += win.Unknowns.Benign
	}
	tbl := report.NewTable("Section VII: feature usage across selected rules (tau=0.1%)",
		"feature", "share of rules", "paper")
	paperUsage := map[string]string{
		"file's signer":                "75%",
		"file's packer":                "8%",
		"process's type":               "5%",
		"process's signer":             "4%",
		"download domain's Alexa rank": "1.4%",
	}
	for _, name := range []string{
		"file's signer", "file's CA", "file's packer", "process's signer",
		"process's CA", "process's packer", "process's type",
		"download domain's Alexa rank",
	} {
		paper := paperUsage[name]
		if paper == "" {
			paper = "-"
		}
		share := 0.0
		if base > 0 {
			share = float64(usage[name]) / float64(base)
		}
		tbl.AddRow(name, report.Pct(share), paper)
	}
	if err := tbl.Render(w); err != nil {
		return err
	}
	if total > 0 {
		fmt.Fprintf(w, "measured: %d selected rules, %s single-condition (paper: 89%% single-condition)\n",
			total, report.Pct(float64(single)/float64(total)))
	}
	// Ground-truth expansion (Section VII).
	strictLabeled := 0
	for _, f := range p.Store.DownloadedFiles() {
		switch p.Store.Label(f) {
		case dataset.LabelBenign, dataset.LabelMalicious:
			strictLabeled++
		}
	}
	newly := totMal + totBen
	fmt.Fprintf(w, "measured expansion: %s newly labeled unknown files (%s of %s unknowns seen in test windows); prior strict ground truth %s files -> %s increase\n",
		report.Count(newly),
		report.Pct(float64(totMatched)/float64(max(1, totUnknown))),
		report.Count(totUnknown), report.Count(strictLabeled),
		report.Pct(float64(newly)/float64(max(1, strictLabeled))))
	_ = labeledMachines
	fmt.Fprintf(w, "paper: 406,688 unknowns labeled Feb-Aug = 28.30%% of unknowns = a 233%% (2.3x) increase over available ground truth, touching 31%% of all machines\n")

	// The paper lists the rules responsible for the most true positives;
	// reproduce that view on the first window.
	if len(windows) > 0 {
		first := windows[0]
		ex, err := features.NewExtractor(p.Store, p.Result.Oracle)
		if err != nil {
			return err
		}
		testInsts, err := ex.Instances(p.Store.EventIndexesInMonth(first.TestMonth))
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "\nrules with the most true positives in %s (paper gives e.g. 'file's signer is Somoto ltd. -> malicious' for droppers):\n", first.TestMonth)
		for _, hit := range first.Classifier.TopRules(testInsts, 3) {
			fmt.Fprintf(w, "  [%d TPs] %s\n", hit.TruePositives, hit.Rule)
		}
	}
	fmt.Fprintln(w)
	return nil
}

// AVTypeStats reports the shares of the AVType conflict-resolution rules
// observed while labeling this dataset's malicious files, next to the
// paper's Section II-C breakdown (no conflict 44%, Voting 28%,
// Specificity 23%, manual 5%).
func AVTypeStats(p *Pipeline, w io.Writer) error {
	st := p.Labeler.TypeStats
	tbl := report.NewTable("Section II-C: AVType resolution rules",
		"rule", "measured", "paper")
	rows := []struct {
		name  string
		res   avtype.Resolution
		paper string
	}{
		{"no conflict (unanimous)", avtype.ResolvedUnanimous, "44%"},
		{"voting", avtype.ResolvedVoting, "28%"},
		{"specificity", avtype.ResolvedSpecificity, "23%"},
		{"manual analysis", avtype.ResolvedManual, "5%"},
	}
	for _, r := range rows {
		tbl.AddRow(r.name, report.Pct(st.Share(r.res)), r.paper)
	}
	if err := tbl.Render(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "measured over %d type derivations\n\n", st.Total)
	return nil
}
