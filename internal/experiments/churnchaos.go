package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"time"

	"repro/internal/classify"
	"repro/internal/cluster"
	"repro/internal/dataset"
	"repro/internal/export"
	"repro/internal/faults"
	"repro/internal/features"
	"repro/internal/journal"
	"repro/internal/retry"
	"repro/internal/serve"
	"repro/internal/synth"
)

// ChaosChurnConfig parameterizes the membership-churn chaos harness: a
// 3-replica journaled cluster under injected link faults driven through
// the full ledger-handoff lifecycle — a planned leave with drain, a
// kill -9 mid-handoff (import target partitioned, then the leaver's
// filesystem crashes), restart-and-reconcile — closed by a retransmit
// storm of every ID ever served that must answer byte-identical with
// zero re-classification.
type ChaosChurnConfig struct {
	// Synth generates the dataset every replica serves.
	Synth synth.Config
	// Faults drives the per-link fault schedule and the victim journal's
	// torn-write behavior at the crash.
	Faults faults.Config
	// Dir is the root directory; each replica journals into a subdir.
	Dir string
	// Batch is events per /classify request.
	Batch int
	// CrashWindow is how many batches the dying victim journal-accepts
	// without answering before the kill -9.
	CrashWindow int
	// Tau is the rule-selection threshold.
	Tau float64
	// ReportPath, when non-empty, receives the JSON churn report.
	ReportPath string
}

// DefaultChaosChurnConfig returns the standard scenario: >= 10% of
// router->replica classify deliveries hit an injected link fault, the
// handoff import target is partitioned to force the partial transfer,
// and the mid-handoff victim's journal tears at the crash.
func DefaultChaosChurnConfig(seed int64, dir string) ChaosChurnConfig {
	return ChaosChurnConfig{
		Synth: synth.DefaultConfig(seed, 0.004),
		Faults: faults.Config{
			Seed:                   seed,
			ErrorRate:              0.15,
			MaxConsecutiveFailures: 2,
			AckLossRate:            0.5, // half the faults lose the response, not the request
			TornWriteRate:          1,
		},
		Dir:         dir,
		Batch:       32,
		CrashWindow: 4,
		Tau:         0.001,
	}
}

// ChaosChurnReport is the outcome of one churn chaos run.
type ChaosChurnReport struct {
	Replicas int
	Batches  int
	Events   int

	// Link-fault accounting across all router->replica links.
	LinkKeys          int
	FaultedKeys       int
	RequestsDropped   int64
	ResponsesLost     int64
	PartitionRefusals int64
	Failovers         uint64

	// The planned leave: history drained to the new ring owners before
	// the node is forgotten.
	LeaveChunks  uint64
	LeaveEntries uint64

	// The partial handoff: with the import target partitioned, Leave
	// must fail, keep the source authoritative, and surface the debt.
	PartialLeaveFailed bool
	PartialPending     int64
	HandoffFails       uint64

	// The kill -9 and journal recovery of the mid-handoff victim.
	CrashAccepted    int
	RecoveredResults int
	RecoveredPending int
	TornTailBytes    int64
	VictimReplayed   int

	// Reconciliation when the crashed node returns on probation.
	ReconcileReplayed     uint64
	PendingAfterReconcile int64

	// Retransmit storm over every ID ever served. StormReclassified is
	// the cluster-wide EventsIn delta during the storm — zero means
	// every retransmit was answered from a replica ledger.
	StormRetransmits  int
	StormReclassified uint64

	// Divergence counters — all must be zero.
	LostBatches   int
	StormDiverged int
}

// churnID is the stable request ID of batch b — identical across
// retransmits, handoffs, and replica incarnations.
func churnID(b int) string { return fmt.Sprintf("churn-%04d", b) }

// churnBody marshals a batch exactly like serve.Client does, so the
// raw /classify payload is byte-stable across retransmits.
func churnBody(events []dataset.DownloadEvent) ([]byte, error) {
	var body []byte
	for i := range events {
		line, err := export.AppendEventLine(body, &events[i])
		if err != nil {
			return nil, err
		}
		body = append(line, '\n')
	}
	return body, nil
}

// RunChaosChurn replays a synth trace through a 3-replica journaled
// cluster under link faults while the membership churns underneath it:
// replica 0 leaves cleanly (its dedup history drains to the new ring
// owners before it is forgotten), replica 1 dies mid-handoff (its
// planned leave fails against a partitioned import target, then kill
// -9 with a torn journal tail), and later restarts into probation,
// where readmission reconciles its trapped history to the current
// owners. A final retransmit storm re-sends every ID ever served and
// holds the cluster to the exactly-once bar: zero lost, zero
// re-classified, byte-identical response bodies.
func RunChaosChurn(cfg ChaosChurnConfig) (*ChaosChurnReport, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("experiments: chaos-churn: empty dir")
	}
	if cfg.Batch <= 0 {
		cfg.Batch = 32
	}
	if err := cfg.Faults.Validate(); err != nil {
		return nil, fmt.Errorf("experiments: chaos-churn: %w", err)
	}
	inj, err := faults.NewInjector(cfg.Faults)
	if err != nil {
		return nil, err
	}

	// The deterministic world every replica incarnation shares.
	p, err := Run(cfg.Synth)
	if err != nil {
		return nil, fmt.Errorf("experiments: chaos-churn: pipeline: %w", err)
	}
	ex, err := features.NewExtractor(p.Store, p.Result.Oracle)
	if err != nil {
		return nil, err
	}
	months := p.Store.Months()
	if len(months) < 2 {
		return nil, fmt.Errorf("experiments: chaos-churn: need >= 2 months")
	}
	train, err := ex.Instances(p.Store.EventIndexesInMonth(months[0]))
	if err != nil {
		return nil, err
	}
	clf, err := classify.Train(train, cfg.Tau, classify.Reject)
	if err != nil {
		return nil, err
	}
	all := p.Store.Events()
	var replay []dataset.DownloadEvent
	for _, idx := range p.Store.EventIndexesInMonth(months[1]) {
		replay = append(replay, all[idx])
	}
	nBatches := (len(replay) + cfg.Batch - 1) / cfg.Batch
	if nBatches < 12 {
		return nil, fmt.Errorf("experiments: chaos-churn: %d batches too few to stage the scenario (need >= 12)", nBatches)
	}
	batchOf := func(b int) []dataset.DownloadEvent {
		lo, hi := b*cfg.Batch, (b+1)*cfg.Batch
		if hi > len(replay) {
			hi = len(replay)
		}
		return replay[lo:hi]
	}

	rep := &ChaosChurnReport{Replicas: 3, Batches: nBatches, Events: len(replay)}
	ctx := context.Background()

	// ---- Boot the cluster: replica 0 leaves cleanly mid-run, replica 1
	// is the mid-handoff kill -9 victim (journaling through a crashable
	// filesystem), replica 2 survives and absorbs the handoffs.
	fs, err := faults.NewCrashFS(inj)
	if err != nil {
		return nil, err
	}
	nodes := make([]*chaosNode, 3)
	for i := range nodes {
		var open func(string) (journal.File, error)
		if i == 1 {
			open = func(path string) (journal.File, error) { return fs.Open(path) }
		}
		n, _, _, err := startChaosNode("", filepath.Join(cfg.Dir, fmt.Sprintf("replica-%d", i)), ex, clf, open)
		if err != nil {
			return nil, fmt.Errorf("experiments: chaos-churn: replica %d: %w", i, err)
		}
		defer n.stop()
		nodes[i] = n
	}
	leaver, victim, survivor := nodes[0], nodes[1], nodes[2]
	addrs := []string{leaver.addr, victim.addr, survivor.addr}

	linkT, err := faults.NewTransport(inj, http.DefaultTransport)
	if err != nil {
		return nil, err
	}
	rt, err := cluster.NewRouter(cluster.Options{
		Replicas: addrs,
		//lint:allow retrypolicy the chaos harness wires the fault-injecting link transport directly; the router supplies the breaker/failover layer above it
		HTTPClient:       &http.Client{Transport: linkT},
		BreakerThreshold: 3,
		BreakerReset:     50 * time.Millisecond,
		ProbeInterval:    0, // probes are driven manually for determinism
		ProbeTimeout:     time.Second,
		EjectAfter:       3,
		// HedgeDelay stays 0: timer-raced duplicate classification would
		// make the storm's zero-reclassification accounting timing-
		// dependent.
	})
	if err != nil {
		return nil, err
	}
	defer rt.Close()
	front := httptest.NewServer(rt.Handler())
	defer front.Close()
	client := &serve.Client{BaseURL: front.URL}
	probeRounds := func(k int) {
		for i := 0; i < k; i++ {
			rt.ProbeAll(ctx)
		}
	}

	// Raw-body bookkeeping: the storm's byte-identity check compares
	// against the first response the client ever saw for each ID, so
	// serving goes through ClassifyRaw (one attempt per call) wrapped in
	// the harness's own retry.
	pol := retry.Policy{MaxAttempts: 6, InitialBackoff: 10 * time.Millisecond}
	served := make(map[string][]byte, nBatches)   // id -> first response bytes
	payloads := make(map[string][]byte, nBatches) // id -> request body
	sendThroughRouter := func(b int) error {
		id := churnID(b)
		body, err := churnBody(batchOf(b))
		if err != nil {
			return err
		}
		var data []byte
		err = retry.Do(ctx, pol, func(ctx context.Context) error {
			d, derr := client.ClassifyRaw(ctx, id, body, 0)
			if derr != nil {
				return derr
			}
			data = d
			return nil
		})
		if err != nil {
			rep.LostBatches++
			return nil
		}
		if _, ok := served[id]; !ok {
			served[id] = data
			payloads[id] = body
		}
		return nil
	}

	// Scenario timeline over the batch sequence.
	leaveAt := nBatches / 3
	partialAt := nBatches / 2
	restartAt := 3 * nBatches / 4

	// ---- Phase 1: three healthy replicas under link faults.
	for b := 0; b < leaveAt; b++ {
		if err := sendThroughRouter(b); err != nil {
			return nil, err
		}
	}

	// ---- The planned leave. Replica 0 drains its dedup history to the
	// two-node ring's owners before the router forgets it; everything it
	// served must keep answering from the survivors' ledgers.
	chunksBefore := rt.Metrics().HandoffChunks.Load()
	entriesBefore := rt.Metrics().HandoffEntries.Load()
	if err := rt.Leave(ctx, leaver.addr); err != nil {
		return nil, fmt.Errorf("experiments: chaos-churn: planned leave: %w", err)
	}
	rep.LeaveChunks = rt.Metrics().HandoffChunks.Load() - chunksBefore
	rep.LeaveEntries = rt.Metrics().HandoffEntries.Load() - entriesBefore
	for _, n := range rt.Status().Nodes {
		if n.Addr == leaver.addr {
			return nil, fmt.Errorf("experiments: chaos-churn: leaver still in membership after Leave")
		}
		if n.HandoffPending != 0 {
			return nil, fmt.Errorf("experiments: chaos-churn: %s owes %d entries after clean leave", n.Addr, n.HandoffPending)
		}
	}
	leaver.stop()

	// ---- Phase 2: the two-node ring carries the load.
	for b := leaveAt; b < partialAt; b++ {
		if err := sendThroughRouter(b); err != nil {
			return nil, err
		}
	}

	// ---- Kill -9 mid-handoff. The victim's planned leave runs against
	// a partitioned import target: the transfer cannot complete, so
	// Leave must fail without splitting authority — the victim returns
	// to rotation (degraded) still answering for its history, the debt
	// visible on the pending gauge. Then the "kill": engine down (the
	// next batches are journal-accepted but never answered), filesystem
	// crash with a torn tail, listener gone.
	linkT.Partition(survivor.addr)
	if err := rt.Leave(ctx, victim.addr); err == nil {
		return nil, fmt.Errorf("experiments: chaos-churn: leave succeeded with the import target partitioned")
	}
	rep.PartialLeaveFailed = true
	rep.HandoffFails = rt.Metrics().HandoffFails.Load()
	for _, n := range rt.Status().Nodes {
		if n.Addr != victim.addr {
			continue
		}
		if n.State != "degraded" {
			return nil, fmt.Errorf("experiments: chaos-churn: mid-handoff victim state = %s, want degraded", n.State)
		}
		rep.PartialPending = n.HandoffPending
	}
	if rep.PartialPending == 0 {
		return nil, fmt.Errorf("experiments: chaos-churn: partial handoff left no visible pending debt")
	}

	victim.engine.Close()
	killClient := &serve.Client{BaseURL: "http://" + victim.addr, Retry: retry.Policy{MaxAttempts: 1}}
	for b := partialAt; b < partialAt+cfg.CrashWindow; b++ {
		if _, err := killClient.ClassifyWithID(ctx, churnID(b), batchOf(b)); err == nil {
			return nil, fmt.Errorf("experiments: chaos-churn: batch %d answered by a dead engine", b)
		}
	}
	rep.CrashAccepted = cfg.CrashWindow
	if err := fs.Crash(); err != nil {
		return nil, err
	}
	tornBatch := batchOf(partialAt)
	tornVerdicts := make([]serve.VerdictRecord, 0, len(tornBatch))
	for i := range tornBatch {
		ev := &tornBatch[i]
		vec, verr := ex.Vector(ev)
		if verr != nil {
			return nil, verr
		}
		v, matched := clf.ClassifyFile([]features.Instance{{Vector: vec, File: ev.File}})
		tornVerdicts = append(tornVerdicts, serve.VerdictRecord{
			Type: "verdict", File: string(ev.File), Verdict: v.String(), Generation: 1, Rules: matched,
		})
	}
	if _, err := appendTornResult(victim.dir, chaosNodeShards, churnID(partialAt), tornVerdicts); err != nil {
		return nil, err
	}
	victim.ln.Close()
	victim.hsrv.Close()
	victim.srv.Close()
	// No ledger.Close(): kill -9 leaves no chance to flush.
	victim.stopped = true

	// Heal the partition; probes eject the corpse, flipping its sticky
	// pins into the reconciliation window.
	linkT.Heal(survivor.addr)
	probeRounds(3)
	if st := nodeState(rt, victim.addr); st != "ejected" {
		return nil, fmt.Errorf("experiments: chaos-churn: victim state after probes = %s, want ejected", st)
	}

	// ---- Phase 3: the survivor carries the ring alone; the crash-window
	// batches are retransmitted through the router (the client never
	// heard verdicts for them).
	for b := partialAt; b < restartAt; b++ {
		if err := sendThroughRouter(b); err != nil {
			return nil, err
		}
	}

	// ---- Restart and reconcile. The victim returns on its original
	// address, recovering its journal — completed results, the imports it
	// acked before the crash, the accepted-but-unanswered crash window,
	// and the torn tail to discard. The readmitting probe round must pull
	// its export and re-home the entries the current ring no longer
	// assigns to it.
	restarted, rec, replayed, err := startChaosNode(victim.addr, victim.dir, ex, clf, nil)
	if err != nil {
		return nil, fmt.Errorf("experiments: chaos-churn: victim restart: %w", err)
	}
	defer restarted.stop()
	rep.RecoveredResults = rec.Results
	rep.RecoveredPending = len(rec.Pending)
	rep.TornTailBytes = rec.TornTail
	rep.VictimReplayed = replayed
	replayedBefore := rt.Metrics().HandoffReplayed.Load()
	probeRounds(1)
	if st := nodeState(rt, victim.addr); st == "ejected" {
		return nil, fmt.Errorf("experiments: chaos-churn: victim not readmitted after restart")
	}
	rep.ReconcileReplayed = rt.Metrics().HandoffReplayed.Load() - replayedBefore
	for _, n := range rt.Status().Nodes {
		if n.Addr == victim.addr {
			rep.PendingAfterReconcile = n.HandoffPending
		}
	}
	if rep.PendingAfterReconcile != 0 {
		return nil, fmt.Errorf("experiments: chaos-churn: victim still owes %d entries after reconcile", rep.PendingAfterReconcile)
	}
	live := []*chaosNode{restarted, survivor}
	probeRounds(2)
	for _, n := range live {
		if st := nodeState(rt, n.addr); st != "healthy" {
			return nil, fmt.Errorf("experiments: chaos-churn: %s state after reconcile = %s, want healthy", n.addr, st)
		}
	}

	// ---- Phase 4: steady state on the reconciled two-node ring.
	for b := restartAt; b < nBatches; b++ {
		if err := sendThroughRouter(b); err != nil {
			return nil, err
		}
	}

	// ---- The retransmit storm: every ID ever served is re-sent under
	// its original ID. Whatever node answers — the survivor, the
	// restarted victim, or an importer that absorbed a handoff — must
	// return the exact bytes of the first response, and cluster-wide
	// EventsIn may not move. One probe round first so a breaker left
	// open by transient faults cannot steer a pinned ID to a fresh
	// classification.
	probeRounds(1)
	stormBase := clusterEventsIn(live)
	for id, want := range served {
		var data []byte
		err := retry.Do(ctx, pol, func(ctx context.Context) error {
			d, derr := client.ClassifyRaw(ctx, id, payloads[id], 0)
			if derr != nil {
				return derr
			}
			data = d
			return nil
		})
		if err != nil {
			rep.LostBatches++
			continue
		}
		if !bytes.Equal(data, want) {
			rep.StormDiverged++
		}
	}
	rep.StormRetransmits = len(served)
	rep.StormReclassified = clusterEventsIn(live) - stormBase

	rep.LinkKeys, rep.FaultedKeys = linkT.Counts()
	ts := linkT.Stats()
	rep.RequestsDropped = ts.Dropped
	rep.ResponsesLost = ts.ResponsesLost
	rep.PartitionRefusals = ts.PartitionRefusals
	rep.Failovers = rt.Metrics().Failover.Load()

	if cfg.ReportPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(cfg.ReportPath, append(data, '\n'), 0o644); err != nil {
			return nil, fmt.Errorf("experiments: chaos-churn: write report: %w", err)
		}
	}
	return rep, nil
}

// ChaosChurn is the registry adapter: run the default scenario in a
// temporary directory (report path from CHURN_REPORT when set) and
// render the report.
func ChaosChurn(p *Pipeline, w io.Writer) error {
	dir, err := os.MkdirTemp("", "chaos-churn-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	cfg := DefaultChaosChurnConfig(p.Config.Seed, dir)
	cfg.ReportPath = os.Getenv("CHURN_REPORT")
	rep, err := RunChaosChurn(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Chaos-churn run: %d replicas, planned leave + kill -9 mid-handoff + restart-and-reconcile\n\n", rep.Replicas)
	fmt.Fprintf(w, "workload                  %6d batches, %d events\n", rep.Batches, rep.Events)
	fmt.Fprintf(w, "link faults               %6d/%d request keys (%d dropped, %d responses lost, %d partition refusals)\n",
		rep.FaultedKeys, rep.LinkKeys, rep.RequestsDropped, rep.ResponsesLost, rep.PartitionRefusals)
	fmt.Fprintf(w, "router failovers          %6d\n", rep.Failovers)
	fmt.Fprintf(w, "planned leave             %6d chunks, %d entries drained\n", rep.LeaveChunks, rep.LeaveEntries)
	fmt.Fprintf(w, "partial handoff           failed=%v, %d entries pinned to source, %d push failures\n",
		rep.PartialLeaveFailed, rep.PartialPending, rep.HandoffFails)
	fmt.Fprintf(w, "victim kill window        %6d batches (accepted, never answered)\n", rep.CrashAccepted)
	fmt.Fprintf(w, "victim recovery           %6d results, %d pending replayed, %d torn bytes discarded\n",
		rep.RecoveredResults, rep.VictimReplayed, rep.TornTailBytes)
	fmt.Fprintf(w, "reconciliation            %6d entries re-homed, %d pending after\n", rep.ReconcileReplayed, rep.PendingAfterReconcile)
	fmt.Fprintf(w, "\nretransmit storm over %d served IDs:\n", rep.StormRetransmits)
	fmt.Fprintf(w, "  events reclassified     %6d (must be 0: all answered from ledgers)\n", rep.StormReclassified)
	fmt.Fprintf(w, "  diverged bodies         %6d (must be 0: byte-identical)\n", rep.StormDiverged)
	fmt.Fprintf(w, "\nlost batches              %6d\n", rep.LostBatches)
	if rep.LostBatches > 0 || rep.StormDiverged > 0 || rep.StormReclassified > 0 {
		return fmt.Errorf("experiments: chaos-churn: %d lost, %d diverged, %d reclassified",
			rep.LostBatches, rep.StormDiverged, rep.StormReclassified)
	}
	return nil
}
