package experiments

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"time"

	"repro/internal/classify"
	"repro/internal/cluster"
	"repro/internal/dataset"
	"repro/internal/faults"
	"repro/internal/features"
	"repro/internal/journal"
	"repro/internal/retry"
	"repro/internal/serve"
	"repro/internal/synth"
)

// ChaosClusterConfig parameterizes the cluster-wide chaos harness: a
// 3-replica consistent-hash cluster behind a health-aware router,
// replaying a synth trace under injected link faults, one mid-replay
// replica kill -9 (journal recovery on restart), one router-side
// partition, and a generation-consistent reload with a replica
// partitioned.
type ChaosClusterConfig struct {
	// Synth generates the dataset every replica serves.
	Synth synth.Config
	// Faults drives the per-link fault schedule and the victim journal's
	// torn-write behavior at the crash.
	Faults faults.Config
	// Dir is the root directory; each replica journals into a subdir.
	Dir string
	// Replicas is the cluster size (>= 3: the scenario needs a victim, a
	// partitioned node, and a survivor).
	Replicas int
	// Batch is events per /classify request.
	Batch int
	// CrashWindow is how many batches the dying victim journal-accepts
	// without answering before the kill -9.
	CrashWindow int
	// Tau is the rule-selection threshold.
	Tau float64
}

// DefaultChaosClusterConfig returns the standard scenario: ~25% of
// router->replica classify deliveries hit an injected link fault
// (request dropped or response lost after replica-side processing),
// four batches are caught in the victim's kill window, and the victim's
// journal tears at the crash.
func DefaultChaosClusterConfig(seed int64, dir string) ChaosClusterConfig {
	return ChaosClusterConfig{
		Synth: synth.DefaultConfig(seed, 0.004),
		Faults: faults.Config{
			Seed:                   seed,
			ErrorRate:              0.25,
			MaxConsecutiveFailures: 2,
			AckLossRate:            0.5, // half the faults lose the response, not the request
			TornWriteRate:          1,
		},
		Dir:         dir,
		Replicas:    3,
		Batch:       32,
		CrashWindow: 4,
		Tau:         0.001,
	}
}

// ChaosClusterReport is the outcome of one cluster chaos run.
type ChaosClusterReport struct {
	Replicas int
	Batches  int
	Events   int

	// Link-fault accounting across all router->replica links.
	LinkKeys          int
	FaultedKeys       int
	RequestsDropped   int64
	ResponsesLost     int64
	PartitionRefusals int64
	// Router-side failover accounting.
	Failovers uint64

	// The victim's kill -9 and recovery.
	CrashAccepted    int
	RecoveredResults int
	RecoveredPending int
	TornTailBytes    int64
	VictimReplayed   int

	// Retransmit storm: every batch re-sent through the router after all
	// failures healed. StormReclassified is the cluster-wide EventsIn
	// delta during the storm — zero means every retransmit was answered
	// from a replica ledger via sticky routing, none re-classified.
	StormReclassified uint64

	// Generation-consistent reload with one replica partitioned.
	DegradedDuringPartition bool
	ReloadGeneration        uint64
	WrongGenVerdicts        int
	// DegradedWindowLeaks counts events the partitioned (stale-
	// generation) replica classified while the router was degraded —
	// zero means no verdict was attributed to a generation not present
	// on all healthy replicas.
	DegradedWindowLeaks uint64

	// Divergence counters — all must be zero.
	LostBatches        int
	MismatchedVerdicts int
	StormDiverged      int
}

// chaosClusterID is the stable request ID of batch b — identical across
// retransmits, failovers, and replica incarnations.
func chaosClusterID(b int) string { return fmt.Sprintf("cc-%04d", b) }

// chaosNode is one replica of the chaos cluster: a full longtaild
// equivalent (engine + journaled ledger + server) on a real listener,
// restartable on the same address after a simulated kill -9.
type chaosNode struct {
	addr   string
	dir    string
	engine *serve.Engine
	ledger *serve.Ledger
	srv    *serve.Server
	hsrv   *http.Server
	ln     net.Listener
	// stopped marks a replica already torn down (gracefully or by the
	// kill -9 path), making stop idempotent.
	stopped bool
}

// chaosNodeShards is the journal shard count every chaos replica opens
// with. Torn-tail writers (appendTornResult) must pass the same value
// so the fragment lands in the shard the restarted node will scan.
const chaosNodeShards = 2

// startChaosNode boots a replica. addr "" picks a fresh port; a
// concrete addr rebinds a restarted replica where the ring expects it.
// openFile, when non-nil, routes journal I/O through a CrashFS. The
// recovery report and replay count cover whatever the journal dir
// already holds. Extra srvOpts decorate the server (the lifecycle
// harness appends its shadow-metrics exposition here).
func startChaosNode(addr, dir string, ex *features.Extractor, clf *classify.Classifier, openFile func(string) (journal.File, error), srvOpts ...serve.ServerOption) (*chaosNode, *serve.LedgerRecovery, int, error) {
	engine, err := serve.NewEngine(ex, clf, serve.EngineConfig{}, &serve.Metrics{})
	if err != nil {
		return nil, nil, 0, err
	}
	// Every replica stripes its journal over chaosNodeShards shards, so
	// the cluster harnesses (chaos-cluster, chaos-churn, chaos-lifecycle)
	// all run their kill -9 / handoff / retransmit assertions over the
	// sharded commit path rather than the flat one.
	ledger, rec, err := serve.OpenLedger(serve.LedgerOptions{
		Journal:      journal.Options{Dir: dir, OpenFile: openFile},
		Shards:       chaosNodeShards,
		CompactBytes: 1 << 14,
	})
	if err != nil {
		engine.Close()
		return nil, nil, 0, err
	}
	replayed, err := serve.RecoverLedger(engine, ledger, rec)
	if err != nil {
		engine.Close()
		return nil, nil, 0, err
	}
	srv, err := serve.NewServer(engine, classify.Reject, append([]serve.ServerOption{serve.WithLedger(ledger)}, srvOpts...)...)
	if err != nil {
		engine.Close()
		return nil, nil, 0, err
	}
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		srv.Close()
		engine.Close()
		return nil, nil, 0, err
	}
	n := &chaosNode{
		addr:   ln.Addr().String(),
		dir:    dir,
		engine: engine,
		ledger: ledger,
		srv:    srv,
		hsrv:   &http.Server{Handler: srv.Handler()},
		ln:     ln,
	}
	go n.hsrv.Serve(ln)
	return n, rec, replayed, nil
}

// stop shuts a replica down gracefully (survivors at the end of a run).
// It is a no-op for a replica already torn down by the kill -9 path.
func (n *chaosNode) stop() {
	if n.stopped {
		return
	}
	n.stopped = true
	n.hsrv.Close()
	n.srv.Close()
	n.engine.Close()
	n.ledger.Close()
}

// RunChaosCluster replays a synth trace through a 3-replica cluster
// behind the consistent-hash router, under deterministic link faults on
// every router->replica link, then proves the cluster-wide exactly-once
// contract through three ordeals: a mid-replay kill -9 of one replica
// (accepted-but-unanswered batches in its journal, torn tail included),
// a router-side partition of a second replica, and a rule reload with a
// replica partitioned (advertisement must roll back). After everything
// heals, a full retransmit storm must be answered entirely from replica
// ledgers — zero lost, zero re-classified, byte-identical to offline
// classification.
func RunChaosCluster(cfg ChaosClusterConfig) (*ChaosClusterReport, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("experiments: chaos-cluster: empty dir")
	}
	if cfg.Replicas < 3 {
		return nil, fmt.Errorf("experiments: chaos-cluster: need >= 3 replicas, have %d", cfg.Replicas)
	}
	if cfg.Batch <= 0 {
		cfg.Batch = 32
	}
	if err := cfg.Faults.Validate(); err != nil {
		return nil, fmt.Errorf("experiments: chaos-cluster: %w", err)
	}
	inj, err := faults.NewInjector(cfg.Faults)
	if err != nil {
		return nil, err
	}

	// The deterministic world every replica incarnation and the offline
	// reference share.
	p, err := Run(cfg.Synth)
	if err != nil {
		return nil, fmt.Errorf("experiments: chaos-cluster: pipeline: %w", err)
	}
	ex, err := features.NewExtractor(p.Store, p.Result.Oracle)
	if err != nil {
		return nil, err
	}
	months := p.Store.Months()
	if len(months) < 2 {
		return nil, fmt.Errorf("experiments: chaos-cluster: need >= 2 months")
	}
	train, err := ex.Instances(p.Store.EventIndexesInMonth(months[0]))
	if err != nil {
		return nil, err
	}
	clf, err := classify.Train(train, cfg.Tau, classify.Reject)
	if err != nil {
		return nil, err
	}
	all := p.Store.Events()
	var replay []dataset.DownloadEvent
	for _, idx := range p.Store.EventIndexesInMonth(months[1]) {
		replay = append(replay, all[idx])
	}
	nBatches := (len(replay) + cfg.Batch - 1) / cfg.Batch
	if nBatches < 16 {
		return nil, fmt.Errorf("experiments: chaos-cluster: %d batches too few to stage the scenario (need >= 16)", nBatches)
	}
	batchOf := func(b int) []dataset.DownloadEvent {
		lo, hi := b*cfg.Batch, (b+1)*cfg.Batch
		if hi > len(replay) {
			hi = len(replay)
		}
		return replay[lo:hi]
	}
	offline := func(ev *dataset.DownloadEvent) (string, error) {
		vec, err := ex.Vector(ev)
		if err != nil {
			return "", err
		}
		v, matched := clf.ClassifyFile([]features.Instance{{Vector: vec, File: ev.File}})
		return fmt.Sprintf("%s %s %v", ev.File, v, matched), nil
	}

	rep := &ChaosClusterReport{Replicas: cfg.Replicas, Batches: nBatches, Events: len(replay)}
	ctx := context.Background()

	// ---- Boot the cluster: replica 0 is the kill -9 victim (journaling
	// through a crashable filesystem), replica 1 takes the router-side
	// partition, replica 2 survives untouched.
	fs, err := faults.NewCrashFS(inj)
	if err != nil {
		return nil, err
	}
	nodes := make([]*chaosNode, cfg.Replicas)
	for i := range nodes {
		var open func(string) (journal.File, error)
		if i == 0 {
			open = func(path string) (journal.File, error) { return fs.Open(path) }
		}
		n, _, _, err := startChaosNode("", filepath.Join(cfg.Dir, fmt.Sprintf("replica-%d", i)), ex, clf, open)
		if err != nil {
			return nil, fmt.Errorf("experiments: chaos-cluster: replica %d: %w", i, err)
		}
		defer n.stop()
		nodes[i] = n
	}
	victim, partitioned := nodes[0], nodes[1]
	addrs := make([]string, len(nodes))
	for i, n := range nodes {
		addrs[i] = n.addr
	}

	linkT, err := faults.NewTransport(inj, http.DefaultTransport)
	if err != nil {
		return nil, err
	}
	rt, err := cluster.NewRouter(cluster.Options{
		Replicas: addrs,
		//lint:allow retrypolicy the chaos harness wires the fault-injecting link transport directly; the router supplies the breaker/failover layer above it
		HTTPClient:       &http.Client{Transport: linkT},
		BreakerThreshold: 3,
		BreakerReset:     50 * time.Millisecond,
		ProbeInterval:    0, // probes are driven manually for determinism
		ProbeTimeout:     time.Second,
		EjectAfter:       3,
		// HedgeDelay stays 0: timer-raced duplicate classification would
		// make the storm's zero-reclassification accounting timing-
		// dependent. Failover-on-error is the path under test.
	})
	if err != nil {
		return nil, err
	}
	defer rt.Close()
	front := httptest.NewServer(rt.Handler())
	defer front.Close()
	client := &serve.Client{BaseURL: front.URL}
	probeRounds := func(k int) {
		for i := 0; i < k; i++ {
			rt.ProbeAll(ctx)
		}
	}

	// Scenario timeline over the batch sequence.
	killAt := nBatches / 4
	partitionAt := nBatches / 2
	healAt := 5 * nBatches / 8
	reloadAt := 3 * nBatches / 4
	reloadHealAt := 7 * nBatches / 8

	phaseKeys := make([][]string, nBatches)
	sendThroughRouter := func(b int, wantGen uint64) error {
		events := batchOf(b)
		verdicts, err := client.ClassifyWithID(ctx, chaosClusterID(b), events)
		if err != nil {
			rep.LostBatches++
			return nil
		}
		if len(verdicts) != len(events) {
			rep.LostBatches++
			return nil
		}
		keys := make([]string, len(verdicts))
		for i := range events {
			want, err := offline(&events[i])
			if err != nil {
				return err
			}
			keys[i] = verdicts[i].Key()
			if keys[i] != want {
				rep.MismatchedVerdicts++
			}
			if wantGen > 0 && verdicts[i].Generation != wantGen {
				rep.WrongGenVerdicts++
			}
		}
		phaseKeys[b] = keys
		return nil
	}

	// ---- Phase A1: healthy cluster under link faults.
	for b := 0; b < killAt; b++ {
		if err := sendThroughRouter(b, 0); err != nil {
			return nil, err
		}
	}

	// ---- The kill -9. The victim's engine stops first, so the next
	// batches are journal-accepted durably but never answered — then the
	// filesystem crashes (unsynced bytes vanish, one result record tears
	// mid-flush) and the listener dies. The client retransmits those
	// batches through the router below; survivors serve them.
	victim.engine.Close()
	killClient := &serve.Client{BaseURL: "http://" + victim.addr, Retry: retry.Policy{MaxAttempts: 1}}
	for b := killAt; b < killAt+cfg.CrashWindow; b++ {
		if _, err := killClient.ClassifyWithID(ctx, chaosClusterID(b), batchOf(b)); err == nil {
			return nil, fmt.Errorf("experiments: chaos-cluster: batch %d answered by a dead engine", b)
		}
	}
	rep.CrashAccepted = cfg.CrashWindow
	if err := fs.Crash(); err != nil {
		return nil, err
	}
	tornBatch := batchOf(killAt)
	tornVerdicts := make([]serve.VerdictRecord, 0, len(tornBatch))
	for i := range tornBatch {
		ev := &tornBatch[i]
		vec, verr := ex.Vector(ev)
		if verr != nil {
			return nil, verr
		}
		v, matched := clf.ClassifyFile([]features.Instance{{Vector: vec, File: ev.File}})
		tornVerdicts = append(tornVerdicts, serve.VerdictRecord{
			Type: "verdict", File: string(ev.File), Verdict: v.String(), Generation: 1, Rules: matched,
		})
	}
	if _, err := appendTornResult(victim.dir, chaosNodeShards, chaosClusterID(killAt), tornVerdicts); err != nil {
		return nil, err
	}
	victim.ln.Close()
	victim.hsrv.Close()
	victim.srv.Close()
	// No ledger.Close(): kill -9 leaves no chance to flush. The crashed
	// filesystem already discarded whatever was not fsynced.
	victim.stopped = true

	// Probes notice the dead replica and eject it from the ring.
	probeRounds(3)
	if st := nodeState(rt, victim.addr); st != "ejected" {
		return nil, fmt.Errorf("experiments: chaos-cluster: victim state after probes = %s, want ejected", st)
	}

	// ---- Phase A2: two survivors carry the ring; the crash-window
	// batches are retransmitted through the router (the client never
	// heard verdicts for them) and land on ring successors.
	for b := killAt; b < partitionAt; b++ {
		if err := sendThroughRouter(b, 0); err != nil {
			return nil, err
		}
	}

	// ---- Router-side partition: the link to replica 1 is cut. Health
	// probes fail through the same transport, so the router ejects it.
	linkT.Partition(partitioned.addr)
	probeRounds(3)
	if st := nodeState(rt, partitioned.addr); st != "ejected" {
		return nil, fmt.Errorf("experiments: chaos-cluster: partitioned node state = %s, want ejected", st)
	}
	for b := partitionAt; b < healAt; b++ {
		if err := sendThroughRouter(b, 0); err != nil {
			return nil, err
		}
	}

	// ---- Heal everything: the partition lifts and the victim restarts
	// on its original address, recovering its journal — completed
	// results, the accepted-but-unanswered crash window, and the torn
	// tail to discard.
	linkT.Heal(partitioned.addr)
	restarted, rec, replayed, err := startChaosNode(victim.addr, victim.dir, ex, clf, nil)
	if err != nil {
		return nil, fmt.Errorf("experiments: chaos-cluster: victim restart: %w", err)
	}
	defer restarted.stop()
	nodes[0] = restarted
	rep.RecoveredResults = rec.Results
	rep.RecoveredPending = len(rec.Pending)
	rep.TornTailBytes = rec.TornTail
	rep.VictimReplayed = replayed
	probeRounds(2)
	for _, n := range nodes {
		if st := nodeState(rt, n.addr); st != "healthy" {
			return nil, fmt.Errorf("experiments: chaos-cluster: %s state after heal = %s, want healthy", n.addr, st)
		}
	}
	for b := healAt; b < reloadAt; b++ {
		if err := sendThroughRouter(b, 0); err != nil {
			return nil, err
		}
	}

	// ---- Phase B: the retransmit storm. Every batch so far is re-sent
	// under its original ID. Sticky routing must answer each one from
	// the ledger of the replica that served it: cluster-wide EventsIn
	// may not move, and the bytes must match what the client saw first.
	// One probe round first: transient faults in the post-heal phase may
	// have left a breaker open, and an open breaker would skip a sticky
	// candidate — rerouting a pinned batch to a replica that would
	// classify it fresh. The probe's success resets every breaker
	// (out-of-band health evidence), making the storm's accounting
	// independent of how much wall clock the phases above consumed.
	probeRounds(1)
	stormBase := clusterEventsIn(nodes)
	for b := 0; b < reloadAt; b++ {
		events := batchOf(b)
		verdicts, err := client.ClassifyWithID(ctx, chaosClusterID(b), events)
		if err != nil || len(verdicts) != len(events) {
			rep.LostBatches++
			continue
		}
		if phaseKeys[b] == nil {
			continue // batch was lost in phase A and already counted
		}
		for i := range verdicts {
			if verdicts[i].Key() != phaseKeys[b][i] {
				rep.StormDiverged++
			}
		}
	}
	rep.StormReclassified = clusterEventsIn(nodes) - stormBase

	// ---- Phase C: generation-consistent reload. With replica 2
	// partitioned, one /admin/reload through the router must NOT
	// advertise the new generation: the router degrades, the laggard is
	// demoted, and every verdict served meanwhile carries the generation
	// the healthy replicas converged on.
	var rules bytes.Buffer
	if err := serve.ExportRules(&rules, clf); err != nil {
		return nil, err
	}
	reloadVictim := nodes[2]
	linkT.Partition(reloadVictim.addr)
	adminClient := &serve.Client{BaseURL: front.URL, Retry: retry.Policy{MaxAttempts: 1}}
	if _, err := adminClient.Reload(ctx, rules.Bytes()); err == nil {
		return nil, fmt.Errorf("experiments: chaos-cluster: partial reload reported success")
	}
	st := rt.Status()
	rep.DegradedDuringPartition = st.Status == "degraded" && st.Generation != st.TargetGeneration
	if !rep.DegradedDuringPartition {
		return nil, fmt.Errorf("experiments: chaos-cluster: router not degraded after partial reload (status %+v)", st)
	}
	staleBase := reloadVictim.engine.Metrics().EventsIn.Load()
	for b := reloadAt; b < reloadHealAt; b++ {
		if err := sendThroughRouter(b, st.TargetGeneration); err != nil {
			return nil, err
		}
	}
	rep.DegradedWindowLeaks = reloadVictim.engine.Metrics().EventsIn.Load() - staleBase

	// Heal: the prober reconciles the laggard to the target generation
	// (re-pushing the pending rules) and re-advertises.
	linkT.Heal(reloadVictim.addr)
	probeRounds(3)
	st = rt.Status()
	if st.Status != "ok" || st.Generation != st.TargetGeneration {
		return nil, fmt.Errorf("experiments: chaos-cluster: router did not re-advertise after heal (status %+v)", st)
	}
	rep.ReloadGeneration = st.Generation
	for b := reloadHealAt; b < nBatches; b++ {
		if err := sendThroughRouter(b, st.Generation); err != nil {
			return nil, err
		}
	}

	rep.LinkKeys, rep.FaultedKeys = linkT.Counts()
	ts := linkT.Stats()
	rep.RequestsDropped = ts.Dropped
	rep.ResponsesLost = ts.ResponsesLost
	rep.PartitionRefusals = ts.PartitionRefusals
	rep.Failovers = rt.Metrics().Failover.Load()
	return rep, nil
}

// nodeState reads one node's state from the router's health report.
func nodeState(rt *cluster.Router, addr string) string {
	for _, n := range rt.Status().Nodes {
		if n.Addr == addr {
			return n.State
		}
	}
	return "unknown"
}

// clusterEventsIn sums classified events across all live replica
// engines — the cluster-wide "work actually done" counter the storm
// phase asserts against.
func clusterEventsIn(nodes []*chaosNode) uint64 {
	var total uint64
	for _, n := range nodes {
		total += n.engine.Metrics().EventsIn.Load()
	}
	return total
}

// ChaosCluster is the registry adapter: run the default scenario in a
// temporary directory and render the report.
func ChaosCluster(p *Pipeline, w io.Writer) error {
	dir, err := os.MkdirTemp("", "chaos-cluster-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	rep, err := RunChaosCluster(DefaultChaosClusterConfig(p.Config.Seed, dir))
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Chaos-cluster run: %d replicas, link faults + kill -9 + partition + degraded reload\n\n", rep.Replicas)
	fmt.Fprintf(w, "workload                  %6d batches, %d events\n", rep.Batches, rep.Events)
	fmt.Fprintf(w, "link faults               %6d/%d request keys (%d dropped, %d responses lost, %d partition refusals)\n",
		rep.FaultedKeys, rep.LinkKeys, rep.RequestsDropped, rep.ResponsesLost, rep.PartitionRefusals)
	fmt.Fprintf(w, "router failovers          %6d\n", rep.Failovers)
	fmt.Fprintf(w, "victim kill window        %6d batches (accepted, never answered)\n", rep.CrashAccepted)
	fmt.Fprintf(w, "victim recovery           %6d results, %d pending replayed, %d torn bytes discarded\n",
		rep.RecoveredResults, rep.VictimReplayed, rep.TornTailBytes)
	fmt.Fprintf(w, "reload generation         %6d (degraded while partitioned: %v)\n", rep.ReloadGeneration, rep.DegradedDuringPartition)
	fmt.Fprintf(w, "degraded-window leaks     %6d events on the stale replica\n", rep.DegradedWindowLeaks)
	fmt.Fprintf(w, "wrong-generation verdicts %6d\n", rep.WrongGenVerdicts)
	fmt.Fprintf(w, "\nretransmit storm over the first %d batches:\n", rep.Batches*3/4)
	fmt.Fprintf(w, "  events reclassified     %6d (must be 0: all answered from ledgers)\n", rep.StormReclassified)
	fmt.Fprintf(w, "  diverged verdicts       %6d\n", rep.StormDiverged)
	fmt.Fprintf(w, "\nlost batches              %6d\nmismatched verdicts       %6d\n", rep.LostBatches, rep.MismatchedVerdicts)
	if rep.LostBatches > 0 || rep.MismatchedVerdicts > 0 || rep.StormDiverged > 0 ||
		rep.StormReclassified > 0 || rep.WrongGenVerdicts > 0 || rep.DegradedWindowLeaks > 0 {
		return fmt.Errorf("experiments: chaos-cluster: %d lost, %d mismatched, %d storm-diverged, %d storm-reclassified, %d wrong-gen, %d degraded leaks",
			rep.LostBatches, rep.MismatchedVerdicts, rep.StormDiverged, rep.StormReclassified, rep.WrongGenVerdicts, rep.DegradedWindowLeaks)
	}
	return nil
}
