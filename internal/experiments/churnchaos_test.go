package experiments

import (
	"os"
	"path/filepath"
	"testing"
)

// TestChaosChurn drives the membership-churn chaos scenario — a
// 3-replica journaled cluster under >= 10% injected link faults, a
// planned leave with ledger drain, a kill -9 mid-handoff against a
// partitioned import target, and a restart-and-reconcile — then holds
// the full retransmit storm to the exactly-once bar: zero lost
// batches, zero re-classifications, byte-identical response bodies.
func TestChaosChurn(t *testing.T) {
	cfg := DefaultChaosChurnConfig(42, t.TempDir())
	cfg.ReportPath = os.Getenv("CHURN_REPORT")
	if cfg.ReportPath == "" {
		cfg.ReportPath = filepath.Join(t.TempDir(), "churn-report.json")
	}
	rep, err := RunChaosChurn(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// The storm's exactly-once contract.
	if rep.LostBatches != 0 {
		t.Errorf("lost batches = %d, want 0", rep.LostBatches)
	}
	if rep.StormDiverged != 0 {
		t.Errorf("storm-diverged bodies = %d, want 0 (retransmits byte-identical)", rep.StormDiverged)
	}
	if rep.StormReclassified != 0 {
		t.Errorf("storm reclassified %d events, want 0 (every retransmit answered from a ledger)", rep.StormReclassified)
	}
	if rep.StormRetransmits == 0 {
		t.Fatal("storm retransmitted nothing; the scenario is vacuous")
	}

	// The fault schedule must actually bite: >= 10% of link request keys
	// hit at least one injected fault.
	if rep.LinkKeys == 0 {
		t.Fatal("no link traffic recorded")
	}
	if frac := float64(rep.FaultedKeys) / float64(rep.LinkKeys); frac < 0.10 {
		t.Errorf("faulted link keys = %.1f%%, want >= 10%%", 100*frac)
	}

	// The planned leave must have drained real history.
	if rep.LeaveChunks == 0 || rep.LeaveEntries == 0 {
		t.Errorf("planned leave drained %d chunks / %d entries, want > 0", rep.LeaveChunks, rep.LeaveEntries)
	}

	// The partial handoff must have failed visibly, keeping the source
	// authoritative.
	if !rep.PartialLeaveFailed {
		t.Error("leave against a partitioned import target did not fail")
	}
	if rep.PartialPending == 0 {
		t.Error("partial handoff left no pending debt on the gauge")
	}
	if rep.HandoffFails == 0 {
		t.Error("partial handoff counted no push failures")
	}
	if rep.PartitionRefusals == 0 {
		t.Error("the partition refused nothing; the mid-handoff failure was not exercised")
	}

	// The kill -9 must have left real work to recover, and the crash a
	// torn tail to discard.
	if rep.CrashAccepted == 0 || rep.VictimReplayed < rep.CrashAccepted {
		t.Errorf("victim replayed %d pending batches, want >= %d accepted in the kill window",
			rep.VictimReplayed, rep.CrashAccepted)
	}
	if rep.TornTailBytes == 0 {
		t.Error("no torn tail discarded; the crash did not tear the journal")
	}

	// Reconciliation must have re-homed the trapped ranges and cleared
	// the debt.
	if rep.ReconcileReplayed == 0 {
		t.Error("reconciliation replayed no entries after the victim's return")
	}
	if rep.PendingAfterReconcile != 0 {
		t.Errorf("handoffPending = %d after reconcile, want 0", rep.PendingAfterReconcile)
	}

	// The report artifact must exist and be non-empty for CI to archive.
	st, err := os.Stat(cfg.ReportPath)
	if err != nil {
		t.Fatalf("churn report artifact: %v", err)
	}
	if st.Size() == 0 {
		t.Fatal("churn report artifact is empty")
	}
}
