package experiments

import (
	"strings"
	"testing"
)

func TestRunChaosMatchesFaultFreeBaseline(t *testing.T) {
	cfg := DefaultChaosConfig(7)
	if cfg.Faults.ErrorRate < 0.10 {
		t.Fatalf("chaos scenario error rate %v below the 10%% floor", cfg.Faults.ErrorRate)
	}
	if cfg.Faults.DuplicateRate < 0.05 {
		t.Fatalf("chaos scenario duplicate rate %v below the 5%% floor", cfg.Faults.DuplicateRate)
	}
	rep, err := RunChaos(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// The headline guarantee: injected faults must not change the dataset.
	if !rep.StoreBytesEqual {
		t.Errorf("chaos store is not byte-identical to the fault-free baseline")
	}
	if !rep.LabelDistEqual {
		t.Errorf("label distribution diverged: baseline %v, chaos %v",
			rep.BaselineLabels, rep.ChaosLabels)
	}

	// The faults must actually have happened — a vacuous pass proves
	// nothing.
	if rep.Link.Drops == 0 {
		t.Error("no link drops at 12% error rate")
	}
	if rep.Link.Duplicates == 0 {
		t.Error("no duplicated deliveries at 6% duplicate rate")
	}
	if rep.Link.AckLosses == 0 {
		t.Error("no ack losses at 5% ack-loss rate")
	}
	if rep.Link.Reordered == 0 {
		t.Error("no reordered deliveries at 8% reorder rate")
	}
	if rep.Retransmissions == 0 {
		t.Error("sender never retransmitted despite drops and ack losses")
	}
	if rep.Transport.Duplicates == 0 {
		t.Error("CS never deduplicated despite duplicates and retransmissions")
	}
	if rep.Transport.OutOfOrder == 0 {
		t.Error("CS never resequenced despite reordering")
	}
	if rep.CheckpointBytes == 0 {
		t.Error("mid-stream crash checkpoint was empty")
	}
	if rep.ScanRetries == 0 {
		t.Error("labeler never retried a scan at 12% scan error rate")
	}
	if rep.Degraded == 0 {
		t.Error("no file degraded to unknown at 25% persistent-failure rate")
	}
	if rep.Collected == 0 || rep.Collected > rep.RawEvents {
		t.Errorf("collected %d events out of %d raw", rep.Collected, rep.RawEvents)
	}
}

func TestRunChaosDeterministicAcrossRuns(t *testing.T) {
	a, err := RunChaos(DefaultChaosConfig(11))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunChaos(DefaultChaosConfig(11))
	if err != nil {
		t.Fatal(err)
	}
	if a.Link != b.Link || a.Transport != b.Transport ||
		a.Retransmissions != b.Retransmissions || a.Degraded != b.Degraded {
		t.Errorf("same seed produced different fault schedules:\n%+v\n%+v", a, b)
	}
}

func TestChaosExperimentRegistered(t *testing.T) {
	e, err := ByID("chaos")
	if err != nil {
		t.Fatal(err)
	}
	p := sharedTestPipeline(t)
	var sb strings.Builder
	if err := e.Run(p, &sb); err != nil {
		t.Fatalf("chaos experiment failed: %v\noutput:\n%s", err, sb.String())
	}
	if !strings.Contains(sb.String(), "store bytes identical    true") {
		t.Errorf("chaos experiment output missing identity line:\n%s", sb.String())
	}
}
