package experiments

import (
	"fmt"
	"hash/fnv"
	"io"

	"repro/internal/classify"
	"repro/internal/features"
	"repro/internal/report"
)

// Evasion quantifies the paper's Section VII discussion: "malware
// developers could change signer information by acquiring new signing
// certificates... valid certificates are not cheap". We rotate the
// signer identity of a growing fraction of malicious test files to
// fresh, never-seen certificates and measure how the classifier's
// recall decays — and what residual coverage the non-signer features
// retain.
func Evasion(p *Pipeline, w io.Writer) error {
	months := p.Store.Months()
	if len(months) < 2 {
		return fmt.Errorf("experiments: need two months for evasion study")
	}
	ex, err := features.NewExtractor(p.Store, p.Result.Oracle)
	if err != nil {
		return err
	}
	train, err := ex.Instances(p.Store.EventIndexesInMonth(months[0]))
	if err != nil {
		return err
	}
	test, err := ex.Instances(p.Store.EventIndexesInMonth(months[1]))
	if err != nil {
		return err
	}
	clf, err := classify.Train(train, 0.001, classify.Reject)
	if err != nil {
		return err
	}

	tbl := report.NewTable("Section VII: signer-rotation evasion",
		"rotated share", "matched malicious", "TP", "abstained malicious")
	for _, q := range []float64{0, 0.25, 0.5, 0.75, 1.0} {
		rotated := rotateSigners(test, q)
		res := clf.Evaluate(rotated)
		// Count malicious test files that no rule matched.
		abstained := 0
		for _, group := range classify.GroupByFile(rotated) {
			if !group[0].Malicious {
				continue
			}
			if v, _ := clf.ClassifyFile(group); v == classify.VerdictNone {
				abstained++
			}
		}
		tbl.AddRow(report.Pct(q),
			report.Count(res.MatchedMalicious), report.Pct2(res.TPRate()),
			report.Count(abstained))
	}
	if err := tbl.Render(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "paper's argument: rotating to fresh certificates defeats signer rules but is expensive (certificates cost money and revocation burns them); note the classifier abstains rather than misclassifies, so evasion buys invisibility, not false negatives\n\n")
	return nil
}

// rotateSigners replaces the signer/CA of a deterministic fraction q of
// malicious files with fresh per-file identities.
func rotateSigners(in []features.Instance, q float64) []features.Instance {
	out := make([]features.Instance, len(in))
	copy(out, in)
	for i := range out {
		if !out[i].Malicious {
			continue
		}
		h := fnv.New32a()
		_, _ = h.Write([]byte(out[i].File))
		if float64(h.Sum32()%1000) < q*1000 {
			out[i].FileSigner = fmt.Sprintf("Fresh Cert Shell %s", out[i].File)
			out[i].FileCA = "certum code signing ca sha2"
		}
	}
	return out
}
