package experiments

import (
	"testing"
)

// TestChaosServe runs the full serving-layer chaos scenario and pins
// the exactly-once acceptance criteria: a kill -9 mid-replay with
// injected transport faults, then restart + recovery, must lose
// nothing, duplicate nothing, and serve byte-identical verdicts.
func TestChaosServe(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos-serve runs the full pipeline")
	}
	cfg := DefaultChaosServeConfig(11, t.TempDir())
	rep, err := RunChaosServe(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.LostBatches != 0 {
		t.Errorf("lost %d batches across the crash", rep.LostBatches)
	}
	if rep.MismatchedVerdicts != 0 {
		t.Errorf("%d verdicts diverged from offline classification", rep.MismatchedVerdicts)
	}
	// The fault schedule must actually bite: >= 10% of classify requests
	// hit an injected transport fault.
	if rep.TotalRequests == 0 || float64(rep.FaultedRequests) < 0.1*float64(rep.TotalRequests) {
		t.Errorf("transport faults hit %d/%d requests, want >= 10%%", rep.FaultedRequests, rep.TotalRequests)
	}
	if rep.ResponsesLost == 0 {
		t.Error("no response-loss faults injected; the dedup path went unexercised")
	}
	// The kill window must leave real work for recovery, and recovery
	// must resolve exactly that work.
	if rep.RecoveredPending != cfg.CrashWindow {
		t.Errorf("recovered %d pending batches, want the %d caught in the kill window", rep.RecoveredPending, cfg.CrashWindow)
	}
	if rep.Replayed != rep.RecoveredPending {
		t.Errorf("replayed %d of %d pending batches", rep.Replayed, rep.RecoveredPending)
	}
	if rep.RecoveredResults == 0 {
		t.Error("no completed batches recovered from the journal")
	}
	// Exactly-once: after restart, every batch answers from the ledger
	// (retransmit retries under phase-2 faults add extra dedup hits) and
	// only the recovery replay touched the classifier.
	if rep.Phase2Dedup < uint64(rep.Batches) {
		t.Errorf("%d/%d retransmits answered from the ledger", rep.Phase2Dedup, rep.Batches)
	}
	wantReclassified := 0
	for b := rep.Phase1Batches; b < rep.Batches; b++ {
		lo, hi := b*cfg.Batch, (b+1)*cfg.Batch
		if hi > rep.Events {
			hi = rep.Events
		}
		wantReclassified += hi - lo
	}
	if int(rep.ReclassifiedEvents) != wantReclassified {
		t.Errorf("reclassified %d events after restart, want exactly the %d pending ones", rep.ReclassifiedEvents, wantReclassified)
	}
	// The crash must tear the journal (the torn-result batch) and the
	// phase-1 load must trigger at least one compaction, so recovery
	// exercised both the torn-tail and snapshot paths.
	if rep.TornTailBytes == 0 {
		t.Error("crash left no torn tail; the torn-write path went unexercised")
	}
	if rep.Compactions == 0 {
		t.Error("phase 1 never compacted; the snapshot recovery path went unexercised")
	}
	if rep.Phase1Dedup == 0 && rep.ResponsesLost > 0 {
		t.Error("responses were lost but the first daemon never deduplicated a retransmit")
	}
}
