package experiments

import (
	"fmt"
	"io"
)

// Experiment is one reproducible table or figure.
type Experiment struct {
	// ID is a short stable identifier (e.g. "table1", "fig5").
	ID string
	// Name describes the experiment.
	Name string
	// Run renders the measured result (with paper reference values) to w.
	Run func(p *Pipeline, w io.Writer) error
}

// All lists every experiment in paper order.
var All = []Experiment{
	{ID: "table1", Name: "Table I: monthly summary of collected data", Run: TableI},
	{ID: "fig1", Name: "Figure 1: distribution of malware families (top 25)", Run: Figure1},
	{ID: "table2", Name: "Table II: breakdown of malicious files per type", Run: TableII},
	{ID: "fig2", Name: "Figure 2: prevalence of downloaded software files", Run: Figure2},
	{ID: "table3", Name: "Table III: domains with highest download popularity", Run: TableIII},
	{ID: "table4", Name: "Table IV: number of files served per domain", Run: TableIV},
	{ID: "table5", Name: "Table V: popular download domains per malicious type", Run: TableV},
	{ID: "fig3", Name: "Figure 3: Alexa ranks of domains hosting benign/malicious files", Run: Figure3},
	{ID: "packers", Name: "Section IV-C: packer usage", Run: PackerSection},
	{ID: "table6", Name: "Table VI: percentage of signed files", Run: TableVI},
	{ID: "table7", Name: "Table VII: common signers among malicious file types", Run: TableVII},
	{ID: "table8", Name: "Table VIII: top signers of different file types", Run: TableVIII},
	{ID: "table9", Name: "Table IX: top exclusive signers", Run: TableIX},
	{ID: "fig4", Name: "Figure 4: common signers between malicious and benign files", Run: Figure4},
	{ID: "table10", Name: "Table X: download behavior of benign processes", Run: TableX},
	{ID: "table11", Name: "Table XI: download behavior of benign browsers", Run: TableXI},
	{ID: "table12", Name: "Table XII: download behavior of malicious processes", Run: TableXII},
	{ID: "fig5", Name: "Figure 5: time delta to other-malware downloads", Run: Figure5},
	{ID: "fig6", Name: "Figure 6: Alexa ranks of domains hosting unknown files", Run: Figure6},
	{ID: "table13", Name: "Table XIII: top 10 download domains of unknown files", Run: TableXIII},
	{ID: "table14", Name: "Table XIV: unknown downloads per process category", Run: TableXIV},
	{ID: "table16", Name: "Table XVI: extracted rules per training window", Run: TableXVI},
	{ID: "table17", Name: "Table XVII: rule-based classifier evaluation", Run: TableXVII},
	{ID: "rulestats", Name: "Section VII: rule statistics and ground-truth expansion", Run: RuleStats},
	{ID: "baselines", Name: "Related work: rule classifier vs Polonium-style and URL-reputation baselines", Run: Baselines},
	{ID: "evasion", Name: "Section VII: signer-rotation evasion study", Run: Evasion},
	{ID: "avtypestats", Name: "Section II-C: AVType resolution-rule shares", Run: AVTypeStats},
	{ID: "chains", Name: "Extension: malicious download-chain depths", Run: Chains},
	{ID: "chaos", Name: "Robustness: fault-injected pipeline vs fault-free baseline", Run: Chaos},
	{ID: "chaos-serve", Name: "Robustness: serving-layer kill -9 + journal recovery under transport faults", Run: ChaosServe},
	{ID: "chaos-cluster", Name: "Robustness: 3-replica cluster under link faults, kill -9, partition, and degraded reload", Run: ChaosCluster},
	{ID: "chaos-lifecycle", Name: "Lifecycle: champion/challenger shadow evaluation, FP-gated promotion, cluster-wide reload convergence", Run: ChaosLifecycle},
	{ID: "chaos-churn", Name: "Churn: ledger handoff on membership change — planned leave, kill -9 mid-handoff, restart-and-reconcile", Run: ChaosChurn},
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, error) {
	for _, e := range All {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q", id)
}
