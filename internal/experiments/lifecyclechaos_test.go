package experiments

import (
	"os"
	"path/filepath"
	"testing"
)

// TestChaosLifecycle drives the champion/challenger lifecycle against a
// live 3-replica cluster: harvested t₀+2y ground truth, an over-broad
// challenger the FP gate must reject without ever serving, a garbage
// reload degrading one replica, and a retrained challenger whose
// promotion must converge the whole fleet to generation 2 through the
// router's generation-consistent fan-out — with zero lost batches,
// zero wrong-generation verdicts, and zero dropped shadow batches.
func TestChaosLifecycle(t *testing.T) {
	cfg := DefaultChaosLifecycleConfig(42, t.TempDir())
	cfg.ReportPath = os.Getenv("LIFECYCLE_REPORT")
	if cfg.ReportPath == "" {
		cfg.ReportPath = filepath.Join(t.TempDir(), "shadow-report.json")
	}
	rep, err := RunChaosLifecycle(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// The bad challenger must be rejected over the paper's FP budget —
	// and must never have reached serving.
	if !rep.BadRejected {
		t.Error("bad challenger was not rejected")
	}
	if rep.BadFPRate <= cfg.FPBudget {
		t.Errorf("bad challenger FP rate %.4f not over budget %.4f; the scenario is vacuous", rep.BadFPRate, cfg.FPBudget)
	}
	if rep.BadDisagreements == 0 {
		t.Error("no disagreement examples retained for the report")
	}

	// The good challenger must promote and converge the cluster.
	if !rep.GoodPromoted {
		t.Error("good challenger was not promoted")
	}
	if rep.GoodFPRate > cfg.FPBudget {
		t.Errorf("good challenger FP rate %.4f over budget %.4f yet promoted", rep.GoodFPRate, cfg.FPBudget)
	}
	if rep.PromotedGeneration != 2 {
		t.Errorf("promoted generation = %d, want 2", rep.PromotedGeneration)
	}
	if !rep.RouterConverged {
		t.Error("router advertised/target generations did not converge after promotion")
	}

	// Degraded recovery: raised by the garbage reload, cleared by the
	// promotion riding the same reload path.
	if !rep.DegradedAfterBadReload {
		t.Error("longtail_degraded not raised by the garbage reload")
	}
	if !rep.DegradedCleared {
		t.Error("longtail_degraded not cleared by the promotion")
	}

	// Serving invariants: nothing lost, nothing served from the wrong
	// generation, nothing dropped off the shadow path.
	if rep.LostBatches != 0 {
		t.Errorf("lost batches = %d, want 0", rep.LostBatches)
	}
	if rep.MismatchedVerdicts != 0 {
		t.Errorf("mismatched verdicts = %d, want 0 (byte-identical to offline)", rep.MismatchedVerdicts)
	}
	if rep.WrongGenVerdicts != 0 {
		t.Errorf("wrong-generation verdicts = %d, want 0", rep.WrongGenVerdicts)
	}
	if rep.ShadowDropped != 0 {
		t.Errorf("shadow batches dropped = %d, want 0", rep.ShadowDropped)
	}

	// The shadow surface: per-rule counters for both generations during
	// shadowing, champion decay series after promotion.
	if !rep.RuleMetricsSeen {
		t.Error("/metrics missing per-rule hit/FP counters for champion and challenger during shadowing")
	}
	if !rep.DecayMetricsSeen {
		t.Error("/metrics missing champion per-rule counters under the promoted generation")
	}

	// The harvest actually fed the retrain.
	if rep.Harvested == 0 {
		t.Error("no ground truth harvested")
	}
	if rep.ServedFiles == 0 {
		t.Error("ledger drain recorded no served files")
	}

	// The disagreement report artifact exists and is non-empty.
	if fi, err := os.Stat(cfg.ReportPath); err != nil || fi.Size() == 0 {
		t.Errorf("shadow report artifact missing or empty at %s (err %v)", cfg.ReportPath, err)
	}
}
