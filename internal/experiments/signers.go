package experiments

import (
	"fmt"
	"io"

	"repro/internal/report"
	"repro/internal/stats"
)

// paperSigningRates maps Table VI's overall/browser signing percentages.
var paperSigningRates = map[string][2]string{
	"trojan":     {"~67%", "~72%"},
	"dropper":    {"85.6%", "92%"},
	"ransomware": {"44.4%", "68.7%"},
	"bot":        {"1.5%", "2.2%"},
	"worm":       {"5.5%", "12.3%"},
	"spyware":    {"21.2%", "25.0%"},
	"banker":     {"1.2%", "1.8%"},
	"fakeav":     {"2.8%", "4.5%"},
	"adware":     {"~90%", "91.8%"},
	"pup":        {"76.0%", "79.6%"},
	"undefined":  {"65.1%", "71.3%"},
	"benign":     {"30.7%", "32.1%"},
	"unknown":    {"38.4%", "42.1%"},
	"malicious":  {"66%", "81%"},
}

// TableVI renders the signing-rate table.
func TableVI(p *Pipeline, w io.Writer) error {
	rows := p.Analyzer.SigningByPopulation()
	tbl := report.NewTable("Table VI: percentage of signed files",
		"population", "#files", "signed", "paper", "#browser", "signed", "paper")
	for _, r := range rows {
		paper := paperSigningRates[r.Name]
		tbl.AddRow(r.Name,
			report.Count(r.Files), report.Pct(r.SignedShare()), paper[0],
			report.Count(r.BrowserFiles), report.Pct(r.BrowserSignedShare()), paper[1])
	}
	if err := tbl.Render(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "paper shape: droppers/adware/PUPs sign heavily, bots/bankers almost never; browser-downloaded files sign more; malicious files sign more than benign (66%% vs 30.7%%)\n\n")
	return nil
}

// paperSignerOverlap is Table VII.
var paperSignerOverlap = map[string][2]int{
	"trojan": {426, 71}, "dropper": {248, 46}, "ransomware": {14, 4},
	"banker": {11, 2}, "bot": {15, 3}, "worm": {7, 1}, "spyware": {9, 4},
	"fakeav": {14, 4}, "adware": {532, 77}, "pup": {691, 108},
	"undefined": {1025, 339}, "malicious": {1870, 513},
}

// TableVII renders the signer-overlap table.
func TableVII(p *Pipeline, w io.Writer) error {
	rows := p.Analyzer.SignerOverlap()
	tbl := report.NewTable("Table VII: signers per malicious type",
		"type", "#signers", "common w/ benign", "paper #signers", "paper common")
	for _, r := range rows {
		paper := paperSignerOverlap[r.Name]
		tbl.AddRow(r.Name, report.Count(r.Signers), report.Count(r.CommonWithBenign),
			report.Count(paper[0]), report.Count(paper[1]))
	}
	if err := tbl.Render(w); err != nil {
		return err
	}
	fmt.Fprintln(w)
	return nil
}

// TableVIII renders top signers per population.
func TableVIII(p *Pipeline, w io.Writer) error {
	tbl := report.NewTable("Table VIII: top signers per file type",
		"type", "top signers", "top common w/ benign", "top exclusive")
	render := func(kvs []stats.KV) string {
		s := ""
		for i, kv := range kvs {
			if i > 0 {
				s += ", "
			}
			s += kv.Key
		}
		if s == "" {
			s = "-"
		}
		return s
	}
	for _, pop := range []string{"trojan", "dropper", "ransomware", "bot", "worm",
		"spyware", "banker", "fakeav", "adware", "pup", "undefined", "malicious", "benign"} {
		sets := p.Analyzer.TopSigners(pop, 3)
		tbl.AddRow(pop, render(sets.Top), render(sets.Common), render(sets.Exclusive))
	}
	if err := tbl.Render(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "paper examples: droppers' top signer is \"Softonic International\"; malware-exclusive signers include Somoto Ltd., ISBRInstaller, Somoto Israel; benign-exclusive include TeamViewer, Blizzard Entertainment\n\n")
	return nil
}

// TableIX renders top exclusive signers with file counts.
func TableIX(p *Pipeline, w io.Writer) error {
	ben := p.Analyzer.TopSigners("benign", 10)
	mal := p.Analyzer.TopSigners("malicious", 10)
	tbl := report.NewTable("Table IX: top exclusive signers",
		"benign-only signer", "#files", "malicious-only signer", "#files")
	for i := 0; i < 10; i++ {
		cells := make([]string, 4)
		if i < len(ben.Exclusive) {
			cells[0], cells[1] = ben.Exclusive[i].Key, report.Count(ben.Exclusive[i].Count)
		}
		if i < len(mal.Exclusive) {
			cells[2], cells[3] = mal.Exclusive[i].Key, report.Count(mal.Exclusive[i].Count)
		}
		tbl.AddRow(cells...)
	}
	if err := tbl.Render(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "paper: TeamViewer (209) tops benign-only; Somoto Ltd. (5,652) tops malicious-only\n\n")
	return nil
}

// Figure4 renders the common-signer comparison.
func Figure4(p *Pipeline, w io.Writer) error {
	pts := p.Analyzer.CommonSigners()
	tbl := report.NewTable("Figure 4: signers present on BOTH benign and malicious files",
		"signer", "#benign files", "#malicious files")
	limit := len(pts)
	if limit > 20 {
		limit = 20
	}
	for _, pt := range pts[:limit] {
		tbl.AddRow(pt.Signer, report.Count(pt.Benign), report.Count(pt.Malicious))
	}
	if err := tbl.Render(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "measured: %d signers sign both populations\n", len(pts))
	fmt.Fprintf(w, "paper: 513 signers in common; includes seemingly reputable signers (AVG Technologies, BitTorrent) whose flagged files are mostly PUPs\n\n")
	return nil
}
