package experiments

import (
	"fmt"
	"io"

	"repro/internal/dataset"
	"repro/internal/report"
)

// TableI renders the monthly dataset summary.
func TableI(p *Pipeline, w io.Writer) error {
	rows, overall := p.Analyzer.MonthlySummaries()
	tbl := report.NewTable(
		"Table I: monthly summary (measured)",
		"month", "machines", "events",
		"procs", "p.ben", "p.lben", "p.mal", "p.lmal",
		"files", "f.ben", "f.lben", "f.mal", "f.lmal",
		"urls", "u.ben", "u.mal",
	)
	for _, r := range rows {
		tbl.AddRow(
			r.Month.String(), report.Count(r.Machines), report.Count(r.Events),
			report.Count(r.Processes.Total),
			report.Pct(r.Processes.Share(dataset.LabelBenign)),
			report.Pct(r.Processes.Share(dataset.LabelLikelyBenign)),
			report.Pct(r.Processes.Share(dataset.LabelMalicious)),
			report.Pct(r.Processes.Share(dataset.LabelLikelyMalicious)),
			report.Count(r.Files.Total),
			report.Pct(r.Files.Share(dataset.LabelBenign)),
			report.Pct(r.Files.Share(dataset.LabelLikelyBenign)),
			report.Pct(r.Files.Share(dataset.LabelMalicious)),
			report.Pct(r.Files.Share(dataset.LabelLikelyMalicious)),
			report.Count(r.URLs.TotalURLs),
			report.Pct(float64(r.URLs.Benign)/float64(max(1, r.URLs.TotalURLs))),
			report.Pct(float64(r.URLs.Malicious)/float64(max(1, r.URLs.TotalURLs))),
		)
	}
	tbl.AddRow(
		"overall", report.Count(overall.Machines), report.Count(overall.Events),
		report.Count(overall.Processes.Total),
		report.Pct(overall.Processes.Share(dataset.LabelBenign)),
		report.Pct(overall.Processes.Share(dataset.LabelLikelyBenign)),
		report.Pct(overall.Processes.Share(dataset.LabelMalicious)),
		report.Pct(overall.Processes.Share(dataset.LabelLikelyMalicious)),
		report.Count(overall.Files.Total),
		report.Pct(overall.Files.Share(dataset.LabelBenign)),
		report.Pct(overall.Files.Share(dataset.LabelLikelyBenign)),
		report.Pct(overall.Files.Share(dataset.LabelMalicious)),
		report.Pct(overall.Files.Share(dataset.LabelLikelyMalicious)),
		report.Count(overall.URLs.TotalURLs),
		report.Pct(float64(overall.URLs.Benign)/float64(max(1, overall.URLs.TotalURLs))),
		report.Pct(float64(overall.URLs.Malicious)/float64(max(1, overall.URLs.TotalURLs))),
	)
	if err := tbl.Render(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "paper overall (at scale 1.0): machines 1,139,183; events 3,073,863; processes 141,229 (ben 7.6%%, lben 6.6%%, mal 18.5%%, lmal 3.1%%); files 1,791,803 (ben 2.3%%, lben 2.5%%, mal 9.9%%, lmal 2.3%%); URLs 1,629,336 (ben 29.8%%, mal 15.1%%)\n\n")
	return nil
}

// Figure1 renders the malware family distribution.
func Figure1(p *Pipeline, w io.Writer) error {
	fs := p.Analyzer.Families(25)
	tbl := report.NewTable("Figure 1: top malware families (measured)", "family", "samples")
	for _, kv := range fs.Top {
		tbl.AddRow(kv.Key, report.Count(kv.Count))
	}
	if err := tbl.Render(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "measured: %d distinct families; no family derivable for %s of %s malicious files\n",
		fs.DistinctFamilies, report.Pct(fs.NoFamilyShare), report.Count(fs.TotalMalicious))
	fmt.Fprintf(w, "paper: 363 distinct families; AVclass derived no family for 58%% of samples\n\n")
	return nil
}

// paperTypeShares is Table II.
var paperTypeShares = map[dataset.MalwareType]float64{
	dataset.TypeDropper: 0.227, dataset.TypePUP: 0.168, dataset.TypeAdware: 0.154,
	dataset.TypeTrojan: 0.113, dataset.TypeBanker: 0.009, dataset.TypeBot: 0.006,
	dataset.TypeFakeAV: 0.005, dataset.TypeRansomware: 0.003, dataset.TypeWorm: 0.001,
	dataset.TypeSpyware: 0.0004, dataset.TypeUndefined: 0.313,
}

// TableII renders the behaviour-type breakdown.
func TableII(p *Pipeline, w io.Writer) error {
	counts, total := p.Analyzer.TypeBreakdown()
	tbl := report.NewTable("Table II: malicious files per type", "type", "measured", "paper")
	for _, typ := range dataset.AllMalwareTypes {
		tbl.AddRow(typ.String(),
			report.Pct(float64(counts[typ])/float64(max(1, total))),
			report.Pct(paperTypeShares[typ]))
	}
	if err := tbl.Render(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "measured malicious files: %s\n\n", report.Count(total))
	return nil
}

// Figure2 renders the prevalence distribution.
func Figure2(p *Pipeline, w io.Writer) error {
	ps := p.Analyzer.Prevalence()
	tbl := report.NewTable("Figure 2: file prevalence (measured cumulative share)",
		"population", "files", "prev=1", "prev<=2", "prev<=5", "prev<=20")
	addRow := func(name string, h interface {
		Total() int
		Fraction(int) float64
		FractionAtMost(int) float64
	}) {
		if h == nil || h.Total() == 0 {
			return
		}
		tbl.AddRow(name, report.Count(h.Total()),
			report.Pct(h.Fraction(1)),
			report.Pct(h.FractionAtMost(2)),
			report.Pct(h.FractionAtMost(5)),
			report.Pct(h.FractionAtMost(20)))
	}
	addRow("all", ps.All)
	for _, l := range []dataset.Label{dataset.LabelUnknown, dataset.LabelBenign, dataset.LabelMalicious} {
		if h, ok := ps.ByLabel[l]; ok {
			addRow(l.String(), h)
		}
	}
	if err := tbl.Render(w); err != nil {
		return err
	}
	// Per-type prevalence: the paper notes the malicious types share very
	// similar distributions.
	perType := p.Analyzer.PrevalenceByType()
	lo, hi := 1.0, 0.0
	for _, h := range perType {
		if h.Total() < 20 {
			continue
		}
		f := h.Fraction(1)
		if f < lo {
			lo = f
		}
		if f > hi {
			hi = f
		}
	}
	if hi > 0 {
		fmt.Fprintf(w, "per-type prevalence-1 shares span %s..%s (paper: distributions of different malware types are very similar)\n",
			report.Pct(lo), report.Pct(hi))
	}
	fmt.Fprintf(w, "measured: %s of machines downloaded at least one unknown file\n",
		report.Pct(p.Analyzer.MachinesTouchingUnknown()))
	fmt.Fprintf(w, "paper: ~90%% of files have prevalence 1; unknown files drive the long tail; 69%% of machines downloaded an unknown file; prevalence capped at sigma=20 for 0.25%% of files\n\n")
	return nil
}

// TableIII renders domain popularity.
func TableIII(p *Pipeline, w io.Writer) error {
	overall, benign, malicious := p.Analyzer.DomainPopularity(10)
	tbl := report.NewTable("Table III: domains with highest download popularity (distinct machines)",
		"overall", "#m", "benign", "#m", "malicious", "#m")
	for i := 0; i < 10; i++ {
		cells := make([]string, 6)
		if i < len(overall) {
			cells[0], cells[1] = overall[i].Key, report.Count(overall[i].Count)
		}
		if i < len(benign) {
			cells[2], cells[3] = benign[i].Key, report.Count(benign[i].Count)
		}
		if i < len(malicious) {
			cells[4], cells[5] = malicious[i].Key, report.Count(malicious[i].Count)
		}
		tbl.AddRow(cells...)
	}
	if err := tbl.Render(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "paper: softonic.com tops all three columns (64,300 machines); file-hosting services dominate both benign and malicious columns (mixed reputation)\n\n")
	return nil
}

// TableIV renders per-domain distinct file counts.
func TableIV(p *Pipeline, w io.Writer) error {
	benign, malicious := p.Analyzer.DomainFileCounts(10)
	tbl := report.NewTable("Table IV: number of files served per domain",
		"benign domain", "#files", "malicious domain", "#files")
	for i := 0; i < 10; i++ {
		cells := make([]string, 4)
		if i < len(benign) {
			cells[0], cells[1] = benign[i].Key, report.Count(benign[i].Count)
		}
		if i < len(malicious) {
			cells[2], cells[3] = malicious[i].Key, report.Count(malicious[i].Count)
		}
		tbl.AddRow(cells...)
	}
	if err := tbl.Render(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "paper: softonic.com and mediafire.com serve the highest counts of BOTH benign and malicious files\n\n")
	return nil
}

// TableV renders per-type domain rankings.
func TableV(p *Pipeline, w io.Writer) error {
	per := p.Analyzer.DomainsPerType(5)
	tbl := report.NewTable("Table V: popular download domains per malicious type",
		"type", "top domains (#files)")
	for _, typ := range dataset.AllMalwareTypes {
		tops, ok := per[typ]
		if !ok {
			continue
		}
		line := ""
		for i, kv := range tops {
			if i > 0 {
				line += ", "
			}
			line += fmt.Sprintf("%s (%d)", kv.Key, kv.Count)
		}
		tbl.AddRow(typ.String(), line)
	}
	if err := tbl.Render(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "paper: droppers spread via file hosting; bots/bankers use other infrastructure; fakeav domains embed social engineering in names; adware rides free-streaming sites\n\n")
	return nil
}

// Figure3 renders the Alexa-rank CDFs of benign vs malicious hosting
// domains.
func Figure3(p *Pipeline, w io.Writer) error {
	fmtRank := func(x float64) string { return fmt.Sprintf("rank<=1e%4.1f", x) }
	benCDF, benShare := p.Analyzer.AlexaRankCDF(dataset.LabelBenign)
	malCDF, malShare := p.Analyzer.AlexaRankCDF(dataset.LabelMalicious)
	if err := report.RenderCDF(w, "Figure 3a: log10 Alexa rank, domains hosting benign files", benCDF, 8, fmtRank); err != nil {
		return err
	}
	if err := report.RenderCDF(w, "Figure 3b: log10 Alexa rank, domains hosting malicious files", malCDF, 8, fmtRank); err != nil {
		return err
	}
	fmt.Fprintf(w, "measured: %s of benign-hosting and %s of malicious-hosting domains are Alexa-ranked\n",
		report.Pct(benShare), report.Pct(malShare))
	fmt.Fprintf(w, "paper: malicious files aggressively use highly-ranked domains (file hosting services) for distribution\n\n")
	return nil
}

// Figure6 renders the Alexa-rank CDF of unknown-hosting domains.
func Figure6(p *Pipeline, w io.Writer) error {
	cdf, share := p.Analyzer.AlexaRankCDF(dataset.LabelUnknown)
	fmtRank := func(x float64) string { return fmt.Sprintf("rank<=1e%4.1f", x) }
	if err := report.RenderCDF(w, "Figure 6: log10 Alexa rank, domains hosting unknown files", cdf, 8, fmtRank); err != nil {
		return err
	}
	fmt.Fprintf(w, "measured: %s of unknown-hosting domains are ranked\n\n", report.Pct(share))
	return nil
}

// TableXIII renders the top unknown-file domains.
func TableXIII(p *Pipeline, w io.Writer) error {
	top := p.Analyzer.UnknownDomains(10)
	tbl := report.NewTable("Table XIII: top 10 download domains of unknown files", "domain", "#downloads")
	for _, kv := range top {
		tbl.AddRow(kv.Key, report.Count(kv.Count))
	}
	if err := tbl.Render(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "paper: inbox.com (75,946), humipapp.com (43,365), bestdownload-manager.com (37,398), freepdf-converter.com (32,276), ...\n\n")
	return nil
}

// TableXIV renders unknown downloads per process category.
func TableXIV(p *Pipeline, w io.Writer) error {
	per, total := p.Analyzer.UnknownByCategory()
	tbl := report.NewTable("Table XIV: unknown files per downloading process category",
		"category", "measured", "paper")
	paper := map[dataset.ProcessCategory]string{
		dataset.CategoryBrowser: "1,120,855",
		dataset.CategoryWindows: "368,925",
		dataset.CategoryJava:    "227",
		dataset.CategoryAcrobat: "264",
		dataset.CategoryOther:   "36,059",
	}
	for _, cat := range dataset.AllProcessCategories {
		tbl.AddRow(cat.String(), report.Count(per[cat]), paper[cat])
	}
	tbl.AddRow("total", report.Count(total), "1,486,961")
	if err := tbl.Render(w); err != nil {
		return err
	}
	fmt.Fprintln(w)
	return nil
}

// PackerSection renders the Section IV-C packer findings.
func PackerSection(p *Pipeline, w io.Writer) error {
	ps := p.Analyzer.Packers()
	tbl := report.NewTable("Section IV-C: packer usage", "metric", "measured", "paper")
	tbl.AddRow("benign files packed", report.Pct(ps.BenignPackedShare), "54%")
	tbl.AddRow("malicious files packed", report.Pct(ps.MaliciousPackedShare), "58%")
	tbl.AddRow("distinct packers (labeled files)", report.Count(ps.DistinctPackers), "69")
	tbl.AddRow("packers shared by both", report.Count(ps.SharedPackers), "35")
	tbl.AddRow("malicious-only packers", fmt.Sprint(len(ps.MaliciousOnly)), "e.g. Molebox, NSPack, Themida")
	if err := tbl.Render(w); err != nil {
		return err
	}
	if len(ps.MaliciousOnly) > 0 {
		n := len(ps.MaliciousOnly)
		if n > 6 {
			n = 6
		}
		fmt.Fprintf(w, "measured malicious-only packers (sample): %v\n", ps.MaliciousOnly[:n])
	}
	fmt.Fprintln(w)
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
