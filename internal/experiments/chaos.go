package experiments

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/agent"
	"repro/internal/avsim"
	"repro/internal/dataset"
	"repro/internal/export"
	"repro/internal/faults"
	"repro/internal/labeling"
	"repro/internal/retry"
	"repro/internal/synth"
)

// ChaosConfig parameterizes the chaos harness: a full pipeline run with
// faults injected into the agent->CS transport and the scan service,
// compared against a fault-free run of the same seed.
type ChaosConfig struct {
	// Synth generates the dataset; KeepRawTrace is forced on.
	Synth synth.Config
	// Faults drives both the link and the scan-service injectors (the
	// scanner uses Seed+1 so the two schedules are independent).
	Faults faults.Config
	// RedeliverTail is how many already-acknowledged envelopes the sender
	// retransmits after the simulated CS crash (its unacked window).
	RedeliverTail int
}

// DefaultChaosConfig returns the standard chaos scenario: a small-scale
// dataset pushed through a link dropping 12% of sends, duplicating 6%,
// losing 5% of acks and reordering 8%, with a scan service that fails
// transiently at the same rate and permanently for a quarter of the
// out-of-corpus files, plus one CS crash/restore mid-stream.
func DefaultChaosConfig(seed int64) ChaosConfig {
	sc := synth.DefaultConfig(seed, 0.003)
	sc.KeepRawTrace = true
	return ChaosConfig{
		Synth: sc,
		Faults: faults.Config{
			Seed:                   seed,
			ErrorRate:              0.12,
			MaxConsecutiveFailures: 3,
			TimeoutRate:            0.35,
			DuplicateRate:          0.06,
			AckLossRate:            0.05,
			ReorderRate:            0.08,
			ReorderWindow:          6,
			PersistentRate:         0.25,
		},
		RedeliverTail: 8,
	}
}

// ChaosReport is the outcome of one chaos run.
type ChaosReport struct {
	// RawEvents is the size of the replayed pre-collection trace;
	// Collected is how many events survived the collection rules.
	RawEvents int
	Collected int
	// Link counts what the faulty network did; Transport what the CS
	// observed; Retransmissions what the sender's retry loop did.
	Link            faults.LinkStats
	Transport       agent.TransportStats
	Retransmissions int64
	// CheckpointBytes is the size of the mid-stream crash snapshot.
	CheckpointBytes int
	// Scan-side fault and degradation counters.
	Scan        faults.ScannerStats
	ScanRetries int64
	Degraded    int64
	// StoreBytesEqual reports whether the frozen, labeled chaos store
	// serializes to exactly the bytes of the fault-free baseline;
	// LabelDistEqual whether the per-label file counts match.
	StoreBytesEqual bool
	LabelDistEqual  bool
	BaselineLabels  map[dataset.Label]int
	ChaosLabels     map[dataset.Label]int
}

// labelDist counts files per ground-truth label.
func labelDist(store *dataset.Store) map[dataset.Label]int {
	out := make(map[dataset.Label]int)
	for _, h := range store.Files() {
		out[store.Label(h)]++
	}
	return out
}

func equalDist(a, b map[dataset.Label]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// RunChaos generates one dataset, runs it through the fault-free
// pipeline and through a fault-injected pipeline — unreliable transport
// with a mid-stream CS crash/restore, flaky scan service with graceful
// degradation — and compares the two labeled stores byte for byte. With
// a fixed seed the comparison must come out identical: that is the
// system's headline fault-tolerance guarantee.
func RunChaos(cfg ChaosConfig) (*ChaosReport, error) {
	cfg.Synth.KeepRawTrace = true
	if err := cfg.Faults.Validate(); err != nil {
		return nil, fmt.Errorf("experiments: chaos: %w", err)
	}
	res, err := synth.Generate(cfg.Synth)
	if err != nil {
		return nil, fmt.Errorf("experiments: chaos: generate: %w", err)
	}
	rep := &ChaosReport{RawEvents: len(res.RawTrace)}

	// Fault-free baseline: the store Generate already collected, labeled
	// through the pristine scan service.
	baseLab, err := labeling.New(avsim.NewDefaultService(), res.Oracle, nil, nil, 0)
	if err != nil {
		return nil, err
	}
	if err := baseLab.LabelStore(res.Store, res.Samples); err != nil {
		return nil, fmt.Errorf("experiments: chaos: baseline label: %w", err)
	}

	// Chaos run: a fresh store with the same file metadata, fed the same
	// raw trace through the faulty link and the at-least-once transport.
	chaosStore := dataset.NewStore()
	for _, h := range res.Store.Files() {
		if err := chaosStore.PutFile(res.Store.File(h)); err != nil {
			return nil, err
		}
	}
	cur, err := agent.NewCollectionServer(chaosStore, cfg.Synth.Sigma, res.Oracle.AgentURLWhitelist)
	if err != nil {
		return nil, err
	}
	linkInj, err := faults.NewInjector(cfg.Faults)
	if err != nil {
		return nil, err
	}
	link, err := faults.NewLink(linkInj,
		func(env agent.Envelope) string { return fmt.Sprintf("env-%d", env.Seq) },
		func(env agent.Envelope) error { return cur.Deliver(env) })
	if err != nil {
		return nil, err
	}
	noSleep := func(ctx context.Context, _ time.Duration) error { return ctx.Err() }
	policy := retry.Policy{
		// The injector bounds consecutive failures, and an ack loss can
		// stack one more error on top of a full drop streak.
		MaxAttempts: cfg.Faults.MaxConsecutiveFailures + 2,
		Sleep:       noSleep,
		JitterSeed:  cfg.Faults.Seed,
	}
	uplink, err := agent.NewUplink(link.Send, policy)
	if err != nil {
		return nil, err
	}

	ctx := context.Background()
	crashAt := len(res.RawTrace) / 2
	for i, e := range res.RawTrace {
		if err := uplink.Send(ctx, agent.Envelope{Seq: uint64(i), Event: e}); err != nil {
			return nil, fmt.Errorf("experiments: chaos: send %d: %w", i, err)
		}
		if i == crashAt {
			// Simulated CS crash: drain the link, snapshot the server,
			// restore a fresh process over the same durable store, and
			// retransmit the sender's unacked tail (which the restored
			// server must deduplicate).
			if err := link.Flush(); err != nil {
				return nil, err
			}
			snap, err := cur.Checkpoint()
			if err != nil {
				return nil, err
			}
			rep.CheckpointBytes = len(snap)
			cur, err = agent.RestoreCollectionServer(chaosStore, res.Oracle.AgentURLWhitelist, snap)
			if err != nil {
				return nil, fmt.Errorf("experiments: chaos: restore: %w", err)
			}
			for j := i - cfg.RedeliverTail; j <= i; j++ {
				if j < 0 {
					continue
				}
				if err := uplink.Send(ctx, agent.Envelope{Seq: uint64(j), Event: res.RawTrace[j]}); err != nil {
					return nil, fmt.Errorf("experiments: chaos: redeliver %d: %w", j, err)
				}
			}
		}
	}
	if err := link.Flush(); err != nil {
		return nil, err
	}
	rep.Link = link.Stats()
	rep.Transport = cur.TransportStats()
	rep.Retransmissions = uplink.Retransmissions()
	rep.Collected = chaosStore.NumEvents()

	// Chaos labeling: the scan service fails transiently for any file and
	// permanently only for files outside the scan corpus — whose ground
	// truth is unknown either way, so degradation to unknown is exercised
	// without being able to change any label.
	scanCfg := cfg.Faults
	scanCfg.Seed++
	scanInj, err := faults.NewInjector(scanCfg)
	if err != nil {
		return nil, err
	}
	flaky, err := faults.NewFlakyScanner(
		labeling.ServiceScanner{Svc: avsim.NewDefaultService()}, scanInj,
		func(s *avsim.Sample) bool { return s == nil || !s.InCorpus })
	if err != nil {
		return nil, err
	}
	chaosLab, err := labeling.NewWithScanner(flaky, res.Oracle, nil, nil, 0)
	if err != nil {
		return nil, err
	}
	chaosLab.SetRetryPolicy(policy)
	if err := chaosLab.LabelStore(chaosStore, res.Samples); err != nil {
		return nil, fmt.Errorf("experiments: chaos: label: %w", err)
	}
	rep.Scan = flaky.Stats()
	rep.ScanRetries = chaosLab.ScanRetries()
	rep.Degraded = chaosLab.Degraded()

	res.Store.Freeze()
	chaosStore.Freeze()
	var baseBuf, chaosBuf bytes.Buffer
	if err := export.WriteStore(&baseBuf, res.Store); err != nil {
		return nil, err
	}
	if err := export.WriteStore(&chaosBuf, chaosStore); err != nil {
		return nil, err
	}
	rep.StoreBytesEqual = bytes.Equal(baseBuf.Bytes(), chaosBuf.Bytes())
	rep.BaselineLabels = labelDist(res.Store)
	rep.ChaosLabels = labelDist(chaosStore)
	rep.LabelDistEqual = equalDist(rep.BaselineLabels, rep.ChaosLabels)
	return rep, nil
}

// Chaos runs the default chaos scenario at the pipeline's seed and
// renders the outcome.
func Chaos(p *Pipeline, w io.Writer) error {
	rep, err := RunChaos(DefaultChaosConfig(p.Config.Seed))
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Chaos run: fault-injected pipeline vs fault-free baseline\n\n")
	fmt.Fprintf(w, "raw events replayed      %8d\n", rep.RawEvents)
	fmt.Fprintf(w, "events collected         %8d\n", rep.Collected)
	fmt.Fprintf(w, "link drops / timeouts    %8d / %d\n", rep.Link.Drops, rep.Link.DropTimeouts)
	fmt.Fprintf(w, "link duplicates          %8d\n", rep.Link.Duplicates)
	fmt.Fprintf(w, "link ack losses          %8d\n", rep.Link.AckLosses)
	fmt.Fprintf(w, "link reordered           %8d (max held %d)\n", rep.Link.Reordered, rep.Link.MaxHeld)
	fmt.Fprintf(w, "sender retransmissions   %8d\n", rep.Retransmissions)
	fmt.Fprintf(w, "CS duplicates dropped    %8d\n", rep.Transport.Duplicates)
	fmt.Fprintf(w, "CS out-of-order buffered %8d (max pending %d)\n", rep.Transport.OutOfOrder, rep.Transport.MaxPending)
	fmt.Fprintf(w, "CS crash checkpoint      %8d bytes\n", rep.CheckpointBytes)
	fmt.Fprintf(w, "scan transient faults    %8d errors, %d timeouts\n", rep.Scan.InjectedErrors, rep.Scan.InjectedTimeouts)
	fmt.Fprintf(w, "scan retries             %8d\n", rep.ScanRetries)
	fmt.Fprintf(w, "files degraded->unknown  %8d (%d dead scan keys)\n", rep.Degraded, rep.Scan.PersistentKeys)
	fmt.Fprintf(w, "\nstore bytes identical    %v\n", rep.StoreBytesEqual)
	fmt.Fprintf(w, "label dist identical     %v\n", rep.LabelDistEqual)
	for _, lbl := range []dataset.Label{dataset.LabelBenign, dataset.LabelLikelyBenign,
		dataset.LabelMalicious, dataset.LabelLikelyMalicious, dataset.LabelUnknown} {
		fmt.Fprintf(w, "  %-18s baseline %6d  chaos %6d\n", lbl, rep.BaselineLabels[lbl], rep.ChaosLabels[lbl])
	}
	if !rep.StoreBytesEqual || !rep.LabelDistEqual {
		return fmt.Errorf("experiments: chaos run diverged from fault-free baseline")
	}
	return nil
}
