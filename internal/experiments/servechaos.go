package experiments

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"repro/internal/classify"
	"repro/internal/dataset"
	"repro/internal/faults"
	"repro/internal/features"
	"repro/internal/journal"
	"repro/internal/serve"
	"repro/internal/synth"
)

// ChaosServeConfig parameterizes the serving-layer chaos harness: a
// journaled longtaild-equivalent killed -9 mid-replay behind a faulty
// transport, then restarted and required to account for every batch
// exactly once.
type ChaosServeConfig struct {
	// Synth generates the dataset both daemon incarnations serve.
	Synth synth.Config
	// Faults drives the transport fault schedule and the journal's
	// torn-write behavior at the crash.
	Faults faults.Config
	// JournalDir is the write-ahead journal directory shared by both
	// daemon incarnations (the crash handoff).
	JournalDir string
	// JournalShards stripes the first daemon's journal over this many
	// WAL shards (>1 exercises the merge-by-sequence recovery with torn
	// tails on multiple shards; the restart reopens with a different
	// count to prove dedup survives a -journal-shards change).
	JournalShards int
	// Batch is events per /classify request.
	Batch int
	// CrashWindow is how many batches arrive in the kill window: accepted
	// and journaled durably, but killed before their verdicts are served.
	CrashWindow int
	// CompactBytes forces journal compaction during phase 1 so recovery
	// exercises the snapshot path too (0 = ledger default).
	CompactBytes int64
	// Tau is the rule-selection threshold.
	Tau float64
}

// DefaultChaosServeConfig returns the standard scenario: ~35% of
// classify requests hit an injected transport fault (request dropped or
// response lost after server-side processing), four batches are caught
// in the kill window, and the journal tears at the crash.
func DefaultChaosServeConfig(seed int64, dir string) ChaosServeConfig {
	return ChaosServeConfig{
		Synth: synth.DefaultConfig(seed, 0.004),
		Faults: faults.Config{
			Seed:                   seed,
			ErrorRate:              0.35,
			MaxConsecutiveFailures: 2,
			AckLossRate:            0.5, // half the faults lose the response, not the request
			TornWriteRate:          1,
		},
		JournalDir:    dir,
		JournalShards: 3,
		Batch:         32,
		CrashWindow:   4,
		CompactBytes:  1 << 14,
		Tau:           0.001,
	}
}

// ChaosServeReport is the outcome of one serving-layer chaos run.
type ChaosServeReport struct {
	// Batches/Events is the replayed workload size.
	Batches int
	Events  int
	// Phase1Batches completed normally before the kill; CrashPending
	// were journaled in the kill window and never answered.
	Phase1Batches int
	CrashPending  int
	// Transport fault accounting: requests that hit >= 1 injected fault,
	// out of all /classify requests, plus the split of fault kinds.
	FaultedRequests int
	TotalRequests   int
	RequestsDropped int64
	ResponsesLost   int64
	// Phase1Dedup counts retransmits the first daemon answered from its
	// ledger (response-loss faults resolved without reclassification).
	Phase1Dedup uint64
	// What the second daemon recovered from the journal.
	RecoveredResults int
	RecoveredPending int
	TornTailBytes    int64
	Compactions      uint64
	Replayed         int
	// JournalShards is the stripe width of the first daemon's journal;
	// TornShards counts the distinct shards left with torn tails at the
	// kill (>= 2 when striped — the merge must discard independent
	// tears).
	JournalShards int
	TornShards    int
	// Exactly-once accounting after restart: every batch retransmitted,
	// all answered from the ledger (Phase2Dedup), only the recovered
	// pending events reclassified (ReclassifiedEvents).
	Phase2Dedup        uint64
	ReclassifiedEvents uint64
	// Divergence counters — both must be zero.
	LostBatches        int
	MismatchedVerdicts int
}

// flakyTransport injects deterministic faults into /classify requests:
// a faulted attempt either drops the request before delivery or
// delivers it and loses the response — the second kind is what forces
// the retransmit-dedup machinery to prove itself, because the server
// HAS classified and journaled the batch.
type flakyTransport struct {
	inj  *faults.Injector
	base http.RoundTripper

	mu       sync.Mutex
	attempts map[string]int
	faulted  map[string]bool

	dropped atomic.Int64
	lost    atomic.Int64
}

func newFlakyTransport(inj *faults.Injector, base http.RoundTripper) *flakyTransport {
	return &flakyTransport{
		inj: inj, base: base,
		attempts: make(map[string]int),
		faulted:  make(map[string]bool),
	}
}

func (t *flakyTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	id := req.Header.Get(serve.RequestIDHeader)
	if req.URL.Path != "/classify" || id == "" {
		return t.base.RoundTrip(req)
	}
	t.mu.Lock()
	attempt := t.attempts[id]
	t.attempts[id]++
	t.mu.Unlock()
	if attempt < t.inj.FailuresBefore(id) {
		t.mu.Lock()
		t.faulted[id] = true
		t.mu.Unlock()
		if t.inj.AckLost(fmt.Sprintf("%s|a%d", id, attempt)) {
			// Deliver the request, then lose the response: the server
			// classified and journaled, but the client never hears.
			resp, err := t.base.RoundTrip(req)
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			t.lost.Add(1)
			return nil, fmt.Errorf("faults: injected response loss for %s", id)
		}
		t.dropped.Add(1)
		return nil, fmt.Errorf("faults: injected request drop for %s", id)
	}
	return t.base.RoundTrip(req)
}

func (t *flakyTransport) counts() (requests, faulted int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.attempts), len(t.faulted)
}

// chaosServeID is the stable request ID of batch b — identical across
// retransmits, client restarts and daemon incarnations.
func chaosServeID(b int) string { return fmt.Sprintf("cs-%04d", b) }

// tornAppend writes a complete frame header (length and CRC of the
// full payload) followed by only the first half of the payload to the
// newest segment in segDir — exactly the on-disk state a kill -9
// leaves when it lands mid-write.
func tornAppend(segDir string, full []byte) error {
	entries, err := os.ReadDir(segDir)
	if err != nil {
		return err
	}
	var newest string
	var newestIdx uint64
	for _, e := range entries {
		var idx uint64
		if n, _ := fmt.Sscanf(e.Name(), "wal-%08d.seg", &idx); n == 1 && idx >= newestIdx {
			newest, newestIdx = e.Name(), idx
		}
	}
	if newest == "" {
		return fmt.Errorf("experiments: chaos-serve: no journal segment to tear in %s", segDir)
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(full)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(full, crc32.MakeTable(crc32.Castagnoli)))
	f, err := os.OpenFile(filepath.Join(segDir, newest), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := f.Write(hdr[:]); err != nil {
		return err
	}
	_, err = f.Write(full[:len(full)/2])
	return err
}

// chaosShardDir is the directory whose segments hold records keyed by
// shard index si (the root for a flat single-WAL journal).
func chaosShardDir(dir string, shards, si int) string {
	if shards <= 1 {
		return dir
	}
	return filepath.Join(dir, fmt.Sprintf("shard-%03d", si))
}

// appendTornResult appends a half-flushed result record for id to the
// journal — into the shard directory owning id (with the sequence
// prefix sharded records carry) when the journal is striped, the root
// segment otherwise. It bypasses the ledger API on purpose: any
// durable path (fsync or compaction snapshot) would defeat the tear.
// It returns the shard index torn.
func appendTornResult(dir string, shards int, id string, verdicts []serve.VerdictRecord) (int, error) {
	var payload bytes.Buffer
	payload.WriteByte(2) // journal record kind: ledger result
	if shards > 1 {
		// The sequence prefix every sharded record carries. The frame is
		// torn, so recovery never parses it — any value past the
		// already-recovered range is realistic.
		var seq [8]byte
		binary.LittleEndian.PutUint64(seq[:], 1<<62)
		payload.Write(seq[:])
	}
	payload.WriteString(id)
	payload.WriteByte('\n')
	for i := range verdicts {
		line, err := json.Marshal(&verdicts[i])
		if err != nil {
			return 0, err
		}
		payload.Write(line)
		payload.WriteByte('\n')
	}
	si := 0
	if shards > 1 {
		si = journal.ShardIndex(id, shards)
	}
	return si, tornAppend(chaosShardDir(dir, shards, si), payload.Bytes())
}

// tearAnotherShard lands a second torn fragment on a shard other than
// avoid, so the crash leaves torn tails on >= 2 shards and recovery
// must discard independent tears while merging. Returns the shard
// torn, or -1 when the journal has no second shard to tear.
func tearAnotherShard(dir string, shards, avoid int) (int, error) {
	for si := 0; si < shards; si++ {
		if si == avoid {
			continue
		}
		frag := append([]byte{2}, make([]byte, 8)...) // kind + sequence prefix
		frag = append(frag, []byte("mid-write result record lost to the kill")...)
		if err := tornAppend(chaosShardDir(dir, shards, si), frag); err != nil {
			return -1, err
		}
		return si, nil
	}
	return -1, nil
}

// RunChaosServe replays a month of events against a journaled serving
// daemon through a faulty transport, kills the daemon -9 with accepted
// batches unanswered (torn journal tail included), restarts it, and
// verifies the exactly-once contract: after recovery every batch is
// accounted for exactly once and every verdict is byte-identical to
// offline classification.
func RunChaosServe(cfg ChaosServeConfig) (*ChaosServeReport, error) {
	if cfg.JournalDir == "" {
		return nil, fmt.Errorf("experiments: chaos-serve: empty journal dir")
	}
	if cfg.Batch <= 0 {
		cfg.Batch = 32
	}
	if err := cfg.Faults.Validate(); err != nil {
		return nil, fmt.Errorf("experiments: chaos-serve: %w", err)
	}
	inj, err := faults.NewInjector(cfg.Faults)
	if err != nil {
		return nil, err
	}

	// The deterministic world both daemon incarnations and the offline
	// reference share.
	p, err := Run(cfg.Synth)
	if err != nil {
		return nil, fmt.Errorf("experiments: chaos-serve: pipeline: %w", err)
	}
	ex, err := features.NewExtractor(p.Store, p.Result.Oracle)
	if err != nil {
		return nil, err
	}
	months := p.Store.Months()
	if len(months) < 2 {
		return nil, fmt.Errorf("experiments: chaos-serve: need >= 2 months")
	}
	train, err := ex.Instances(p.Store.EventIndexesInMonth(months[0]))
	if err != nil {
		return nil, err
	}
	clf, err := classify.Train(train, cfg.Tau, classify.Reject)
	if err != nil {
		return nil, err
	}
	all := p.Store.Events()
	var replay []dataset.DownloadEvent
	for _, idx := range p.Store.EventIndexesInMonth(months[1]) {
		replay = append(replay, all[idx])
	}
	nBatches := (len(replay) + cfg.Batch - 1) / cfg.Batch
	if nBatches <= cfg.CrashWindow+1 {
		return nil, fmt.Errorf("experiments: chaos-serve: %d batches too few for a crash window of %d", nBatches, cfg.CrashWindow)
	}
	batchOf := func(b int) []dataset.DownloadEvent {
		lo, hi := b*cfg.Batch, (b+1)*cfg.Batch
		if hi > len(replay) {
			hi = len(replay)
		}
		return replay[lo:hi]
	}
	offline := func(ev *dataset.DownloadEvent) (string, error) {
		vec, err := ex.Vector(ev)
		if err != nil {
			return "", err
		}
		v, matched := clf.ClassifyFile([]features.Instance{{Vector: vec, File: ev.File}})
		return fmt.Sprintf("%s %s %v", ev.File, v, matched), nil
	}

	rep := &ChaosServeReport{Batches: nBatches, Events: len(replay)}
	ctx := context.Background()

	// ---- Phase 1: the first daemon incarnation, journaling to a
	// crashable filesystem, serving through the faulty transport.
	fs, err := faults.NewCrashFS(inj)
	if err != nil {
		return nil, err
	}
	engineA, err := serve.NewEngine(ex, clf, serve.EngineConfig{}, &serve.Metrics{})
	if err != nil {
		return nil, err
	}
	ledgerA, _, err := serve.OpenLedger(serve.LedgerOptions{
		Journal: journal.Options{
			Dir:      cfg.JournalDir,
			OpenFile: func(path string) (journal.File, error) { return fs.Open(path) },
		},
		Shards:       cfg.JournalShards,
		CompactBytes: cfg.CompactBytes,
	})
	if err != nil {
		return nil, err
	}
	srvA, err := serve.NewServer(engineA, classify.Reject, serve.WithLedger(ledgerA))
	if err != nil {
		return nil, err
	}
	tsA := httptest.NewServer(srvA.Handler())
	flaky := newFlakyTransport(inj, http.DefaultTransport)
	clientA := &serve.Client{
		BaseURL: tsA.URL,
		//lint:allow retrypolicy the chaos harness wires the fault-injecting transport directly; serve.Client supplies the retry layer above it
		HTTPClient: &http.Client{Transport: flaky},
	}

	phase1 := nBatches - cfg.CrashWindow
	for b := 0; b < phase1; b++ {
		verdicts, err := clientA.ClassifyWithID(ctx, chaosServeID(b), batchOf(b))
		if err != nil {
			return nil, fmt.Errorf("experiments: chaos-serve: phase 1 batch %d: %w", b, err)
		}
		if len(verdicts) != len(batchOf(b)) {
			return nil, fmt.Errorf("experiments: chaos-serve: phase 1 batch %d: %d/%d verdicts", b, len(verdicts), len(batchOf(b)))
		}
	}
	rep.Phase1Batches = phase1
	rep.Phase1Dedup = engineA.Metrics().DedupHits.Load()

	// ---- The kill window: the engine stops mid-work (queued jobs will
	// never finish) while the listener is still up. Late batches are
	// durably journaled by the accept path but the client only ever sees
	// errors — accepted, never answered.
	engineA.Close()
	killClient := &serve.Client{BaseURL: tsA.URL, Retry: clientA.Retry}
	killClient.Retry.MaxAttempts = 1
	for b := phase1; b < nBatches; b++ {
		if _, err := killClient.ClassifyWithID(ctx, chaosServeID(b), batchOf(b)); err == nil {
			return nil, fmt.Errorf("experiments: chaos-serve: batch %d answered by a dead engine", b)
		}
	}
	// kill -9: unsynced bytes vanish (modulo a torn fragment); no Close
	// runs on ledger, server or HTTP listener state.
	if err := fs.Crash(); err != nil {
		return nil, err
	}
	// One kill-window batch had finished classifying and its result
	// record was mid-flush when the process died: a valid frame header
	// followed by half the payload landed on disk. Recovery must discard
	// the torn frame and fall back to replaying the batch.
	tornBatch := phase1
	tornVerdicts := make([]serve.VerdictRecord, 0, cfg.Batch)
	for i := range batchOf(tornBatch) {
		ev := &batchOf(tornBatch)[i]
		vec, verr := ex.Vector(ev)
		if verr != nil {
			return nil, verr
		}
		v, matched := clf.ClassifyFile([]features.Instance{{Vector: vec, File: ev.File}})
		tornVerdicts = append(tornVerdicts, serve.VerdictRecord{
			Type: "verdict", File: string(ev.File), Verdict: v.String(), Generation: 1, Rules: matched,
		})
	}
	tornShard, err := appendTornResult(cfg.JournalDir, cfg.JournalShards, chaosServeID(tornBatch), tornVerdicts)
	if err != nil {
		return nil, err
	}
	rep.JournalShards = cfg.JournalShards
	rep.TornShards = 1
	if cfg.JournalShards > 1 {
		// A second shard tears too: the kill caught independent sync
		// loops mid-flush, and the merge must discard both tails.
		other, err := tearAnotherShard(cfg.JournalDir, cfg.JournalShards, tornShard)
		if err != nil {
			return nil, err
		}
		if other >= 0 {
			rep.TornShards++
		}
	}
	tsA.Close()
	srvA.Close()
	rep.TotalRequests, rep.FaultedRequests = flaky.counts()
	rep.RequestsDropped = flaky.dropped.Load()
	rep.ResponsesLost = flaky.lost.Load()
	rep.Compactions = ledgerA.Stats().Compactions

	// ---- Phase 2: restart. Recover the journal, replay the pending
	// batches through a fresh engine, then let the client retransmit
	// everything under the original IDs.
	engineB, err := serve.NewEngine(ex, clf, serve.EngineConfig{}, &serve.Metrics{})
	if err != nil {
		return nil, err
	}
	defer engineB.Close()
	// The restart asks for a narrower stripe on purpose: the on-disk
	// shard directories win (shard counts only grow), and dedup must be
	// indifferent to what -journal-shards says across a restart.
	phase2Shards := cfg.JournalShards
	if phase2Shards > 1 {
		phase2Shards--
	}
	ledgerB, rec, err := serve.OpenLedger(serve.LedgerOptions{
		Journal:      journal.Options{Dir: cfg.JournalDir},
		Shards:       phase2Shards,
		CompactBytes: cfg.CompactBytes,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: chaos-serve: recovery: %w", err)
	}
	defer ledgerB.Close()
	rep.RecoveredResults = rec.Results
	rep.RecoveredPending = len(rec.Pending)
	rep.TornTailBytes = rec.TornTail
	// ReclassifiedEvents counts everything the restarted engine actually
	// classified: the recovery replay plus anything the retransmit storm
	// fails to answer from the ledger (which must be nothing).
	eventsInBefore := engineB.Metrics().EventsIn.Load()
	replayed, err := serve.RecoverLedger(engineB, ledgerB, rec)
	if err != nil {
		return nil, fmt.Errorf("experiments: chaos-serve: replay: %w", err)
	}
	rep.Replayed = replayed
	rep.CrashPending = replayed

	srvB, err := serve.NewServer(engineB, classify.Reject, serve.WithLedger(ledgerB))
	if err != nil {
		return nil, err
	}
	defer srvB.Close()
	tsB := httptest.NewServer(srvB.Handler())
	defer tsB.Close()
	clientB := &serve.Client{
		BaseURL: tsB.URL,
		//lint:allow retrypolicy the chaos harness wires the fault-injecting transport directly; serve.Client supplies the retry layer above it
		HTTPClient: &http.Client{Transport: newFlakyTransport(inj, http.DefaultTransport)},
	}

	// Retransmit every batch — the client never heard a verdict for the
	// kill-window ones, and re-asks for the rest as a lost-state client
	// would. Exactly-once means: all answered, none reclassified.
	for b := 0; b < nBatches; b++ {
		events := batchOf(b)
		verdicts, err := clientB.ClassifyWithID(ctx, chaosServeID(b), events)
		if err != nil {
			rep.LostBatches++
			continue
		}
		if len(verdicts) != len(events) {
			rep.LostBatches++
			continue
		}
		for i := range events {
			want, err := offline(&events[i])
			if err != nil {
				return nil, err
			}
			if verdicts[i].Key() != want {
				rep.MismatchedVerdicts++
			}
		}
	}
	rep.Phase2Dedup = engineB.Metrics().DedupHits.Load()
	rep.ReclassifiedEvents = engineB.Metrics().EventsIn.Load() - eventsInBefore
	return rep, nil
}

// ChaosServe is the registry adapter: run the default scenario in a
// temporary journal directory and render the report.
func ChaosServe(p *Pipeline, w io.Writer) error {
	dir, err := os.MkdirTemp("", "chaos-serve-journal-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	rep, err := RunChaosServe(DefaultChaosServeConfig(p.Config.Seed, dir))
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Chaos-serve run: kill -9 + journal recovery under transport faults\n\n")
	fmt.Fprintf(w, "workload                  %6d batches, %d events\n", rep.Batches, rep.Events)
	fmt.Fprintf(w, "completed before kill     %6d batches\n", rep.Phase1Batches)
	fmt.Fprintf(w, "caught in kill window     %6d batches (accepted, never answered)\n", rep.CrashPending)
	fmt.Fprintf(w, "transport faults          %6d/%d classify requests (%d dropped, %d responses lost)\n",
		rep.FaultedRequests, rep.TotalRequests, rep.RequestsDropped, rep.ResponsesLost)
	fmt.Fprintf(w, "phase-1 ledger dedups     %6d\n", rep.Phase1Dedup)
	fmt.Fprintf(w, "recovery: results         %6d batches\n", rep.RecoveredResults)
	fmt.Fprintf(w, "recovery: pending         %6d batches replayed through the engine\n", rep.Replayed)
	fmt.Fprintf(w, "recovery: torn tail       %6d bytes discarded (torn tails on %d of %d journal shards)\n",
		rep.TornTailBytes, rep.TornShards, rep.JournalShards)
	fmt.Fprintf(w, "journal compactions       %6d\n", rep.Compactions)
	fmt.Fprintf(w, "\nretransmit of all %d batches after restart:\n", rep.Batches)
	fmt.Fprintf(w, "  answered from ledger    %6d\n", rep.Phase2Dedup)
	fmt.Fprintf(w, "  events reclassified     %6d (recovery replay only)\n", rep.ReclassifiedEvents)
	fmt.Fprintf(w, "  lost batches            %6d\n", rep.LostBatches)
	fmt.Fprintf(w, "  mismatched verdicts     %6d\n", rep.MismatchedVerdicts)
	if rep.LostBatches > 0 || rep.MismatchedVerdicts > 0 {
		return fmt.Errorf("experiments: chaos-serve: %d lost batches, %d mismatched verdicts", rep.LostBatches, rep.MismatchedVerdicts)
	}
	return nil
}
