package features

import (
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/reputation"
)

func testStore(t *testing.T) (*dataset.Store, *reputation.Oracle) {
	t.Helper()
	store := dataset.NewStore()
	mustPut := func(m *dataset.FileMeta) {
		t.Helper()
		if err := store.PutFile(m); err != nil {
			t.Fatal(err)
		}
	}
	mustPut(&dataset.FileMeta{
		Hash: "file1", Signer: "Somoto Ltd.", CA: "thawte", Packer: "NSIS",
	})
	mustPut(&dataset.FileMeta{Hash: "file2"}) // unsigned, unpacked
	mustPut(&dataset.FileMeta{Hash: "fileU"})
	mustPut(&dataset.FileMeta{
		Hash: "proc1", Signer: "Google Inc", CA: "digicert",
		Category: dataset.CategoryBrowser, Browser: dataset.BrowserChrome,
	})
	ev := func(file, proc, domain string, day int) dataset.DownloadEvent {
		return dataset.DownloadEvent{
			File: dataset.FileHash(file), Machine: "m1",
			Process: dataset.FileHash(proc),
			URL:     "http://" + domain + "/x.exe", Domain: domain,
			Time:     time.Date(2014, time.January, day, 0, 0, 0, 0, time.UTC),
			Executed: true,
		}
	}
	for _, e := range []dataset.DownloadEvent{
		ev("file1", "proc1", "ranked.com", 1),
		ev("file2", "proc1", "unranked.net", 2),
		ev("fileU", "ghostproc", "ranked.com", 3),
	} {
		if err := store.AddEvent(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := store.SetTruth("file1", dataset.GroundTruth{Label: dataset.LabelMalicious, Type: dataset.TypeDropper}); err != nil {
		t.Fatal(err)
	}
	if err := store.SetTruth("file2", dataset.GroundTruth{Label: dataset.LabelBenign}); err != nil {
		t.Fatal(err)
	}
	store.Freeze()
	alexa, err := reputation.NewAlexaList(map[string]int{"ranked.com": 1234})
	if err != nil {
		t.Fatal(err)
	}
	return store, reputation.NewOracle(alexa, nil, nil, nil, nil, nil)
}

func TestNewExtractorValidation(t *testing.T) {
	store, oracle := testStore(t)
	if _, err := NewExtractor(nil, oracle); err == nil {
		t.Error("nil store accepted")
	}
	if _, err := NewExtractor(store, nil); err == nil {
		t.Error("nil oracle accepted")
	}
}

func TestVector(t *testing.T) {
	store, oracle := testStore(t)
	ex, err := NewExtractor(store, oracle)
	if err != nil {
		t.Fatal(err)
	}
	evs := store.Events()
	v, err := ex.Vector(&evs[0])
	if err != nil {
		t.Fatal(err)
	}
	if v.FileSigner != "Somoto Ltd." || v.FileCA != "thawte" || v.FilePacker != "NSIS" {
		t.Errorf("file features = %+v", v)
	}
	if v.ProcessSigner != "Google Inc" || v.ProcessType != "browser" {
		t.Errorf("process features = %+v", v)
	}
	if v.AlexaRank != 1234 {
		t.Errorf("AlexaRank = %d", v.AlexaRank)
	}
}

func TestVectorNoneAndUnranked(t *testing.T) {
	store, oracle := testStore(t)
	ex, err := NewExtractor(store, oracle)
	if err != nil {
		t.Fatal(err)
	}
	evs := store.Events()
	v, err := ex.Vector(&evs[1]) // file2 from unranked.net
	if err != nil {
		t.Fatal(err)
	}
	if v.FileSigner != None || v.FileCA != None || v.FilePacker != None {
		t.Errorf("unsigned file features = %+v", v)
	}
	if v.AlexaRank != UnrankedValue {
		t.Errorf("unranked AlexaRank = %d, want %d", v.AlexaRank, UnrankedValue)
	}
}

func TestVectorUnknownProcess(t *testing.T) {
	store, oracle := testStore(t)
	ex, err := NewExtractor(store, oracle)
	if err != nil {
		t.Fatal(err)
	}
	evs := store.Events()
	v, err := ex.Vector(&evs[2]) // fileU via unregistered process
	if err != nil {
		t.Fatal(err)
	}
	if v.ProcessSigner != None || v.ProcessType != "unknown" {
		t.Errorf("unknown process features = %+v", v)
	}
}

func TestVectorErrors(t *testing.T) {
	store, oracle := testStore(t)
	ex, err := NewExtractor(store, oracle)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ex.Vector(nil); err == nil {
		t.Error("nil event accepted")
	}
	bad := dataset.DownloadEvent{File: "not-registered", Machine: "m", Process: "p", URL: "u", Time: time.Now()}
	if _, err := ex.Vector(&bad); err == nil {
		t.Error("unregistered file accepted")
	}
}

func TestInstancesFiltersStrictLabels(t *testing.T) {
	store, oracle := testStore(t)
	ex, err := NewExtractor(store, oracle)
	if err != nil {
		t.Fatal(err)
	}
	idx := []int{0, 1, 2}
	insts, err := ex.Instances(idx)
	if err != nil {
		t.Fatal(err)
	}
	if len(insts) != 2 {
		t.Fatalf("instances = %d, want 2 (unknown excluded)", len(insts))
	}
	for _, in := range insts {
		switch in.File {
		case "file1":
			if !in.Malicious {
				t.Error("file1 should be malicious")
			}
		case "file2":
			if in.Malicious {
				t.Error("file2 should be benign")
			}
		default:
			t.Errorf("unexpected instance %s", in.File)
		}
	}
	if _, err := ex.Instances([]int{99}); err == nil {
		t.Error("out-of-range index accepted")
	}
}

func TestUnknownInstances(t *testing.T) {
	store, oracle := testStore(t)
	ex, err := NewExtractor(store, oracle)
	if err != nil {
		t.Fatal(err)
	}
	insts, err := ex.UnknownInstances([]int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(insts) != 1 || insts[0].File != "fileU" {
		t.Fatalf("unknown instances = %+v", insts)
	}
	if _, err := ex.UnknownInstances([]int{-1}); err == nil {
		t.Error("negative index accepted")
	}
}

func TestNominalAccessor(t *testing.T) {
	v := Vector{
		FileSigner: "a", FileCA: "b", FilePacker: "c",
		ProcessSigner: "d", ProcessCA: "e", ProcessPacker: "f",
		ProcessType: "g",
	}
	want := []string{"a", "b", "c", "d", "e", "f", "g"}
	for i := 0; i < NumNominal; i++ {
		if v.Nominal(i) != want[i] {
			t.Errorf("Nominal(%d) = %q, want %q", i, v.Nominal(i), want[i])
		}
	}
	if v.Nominal(99) != "" {
		t.Error("out-of-range Nominal should be empty")
	}
}

func TestAttributeNamesMatchTableXV(t *testing.T) {
	if len(AttributeNames) != 8 {
		t.Errorf("Table XV has 8 features, got %d", len(AttributeNames))
	}
}
