// Package features extracts the eight easy-to-measure features of
// Table XV from download events: the downloaded file's signer, CA and
// packer; the downloading process's signer, CA and packer; the process
// type; and the Alexa rank of the download domain. These feature vectors
// feed the PART rule learner.
package features

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/reputation"
)

// None is the nominal value used when a file is unsigned or unpacked;
// rules like "IF (file is not signed) ..." from the paper are conditions
// on this value.
const None = "(none)"

// UnrankedValue is the Alexa-rank feature value for domains outside the
// top million: numerically beyond any real rank, so learned thresholds
// like "rank above 100K" treat unranked domains as maximally unpopular.
const UnrankedValue = 2_000_000

// Vector is the feature representation of one download event.
type Vector struct {
	FileSigner    string
	FileCA        string
	FilePacker    string
	ProcessSigner string
	ProcessCA     string
	ProcessPacker string
	ProcessType   string
	// AlexaRank is the rank of the download domain; 0 means unranked,
	// which the learner treats as "beyond the top million".
	AlexaRank int
}

// AttributeNames lists the features in canonical order. The first seven
// are nominal; the last is numeric.
var AttributeNames = []string{
	"file's signer",
	"file's CA",
	"file's packer",
	"process's signer",
	"process's CA",
	"process's packer",
	"process's type",
	"download domain's Alexa rank",
}

// NumNominal is the number of nominal attributes.
const NumNominal = 7

// Nominal returns the i-th nominal attribute value (i in [0,7)).
func (v *Vector) Nominal(i int) string {
	switch i {
	case 0:
		return v.FileSigner
	case 1:
		return v.FileCA
	case 2:
		return v.FilePacker
	case 3:
		return v.ProcessSigner
	case 4:
		return v.ProcessCA
	case 5:
		return v.ProcessPacker
	case 6:
		return v.ProcessType
	default:
		return ""
	}
}

// Extractor builds vectors from store events.
type Extractor struct {
	store  *dataset.Store
	oracle *reputation.Oracle
}

// NewExtractor builds an Extractor over a store and reputation oracle.
func NewExtractor(store *dataset.Store, oracle *reputation.Oracle) (*Extractor, error) {
	if store == nil {
		return nil, fmt.Errorf("features: nil store")
	}
	if oracle == nil {
		return nil, fmt.Errorf("features: nil oracle")
	}
	return &Extractor{store: store, oracle: oracle}, nil
}

// orNone maps empty metadata strings to the None marker.
func orNone(s string) string {
	if s == "" {
		return None
	}
	return s
}

// processTypeName renders the process-type feature: the category, with
// browsers kept as a single class (matching Table XV's "browser, windows
// process, etc.").
func processTypeName(meta *dataset.FileMeta) string {
	if meta == nil {
		return "unknown"
	}
	return meta.Category.String()
}

// Vector extracts the features of one event.
func (e *Extractor) Vector(ev *dataset.DownloadEvent) (Vector, error) {
	if ev == nil {
		return Vector{}, fmt.Errorf("features: nil event")
	}
	fileMeta := e.store.File(ev.File)
	if fileMeta == nil {
		return Vector{}, fmt.Errorf("features: no metadata for file %s", ev.File)
	}
	procMeta := e.store.File(ev.Process)
	rank := e.oracle.AlexaRank(ev.Domain)
	if rank == 0 {
		rank = UnrankedValue
	}
	v := Vector{
		FileSigner:  orNone(fileMeta.Signer),
		FileCA:      orNone(fileMeta.CA),
		FilePacker:  orNone(fileMeta.Packer),
		ProcessType: processTypeName(procMeta),
		AlexaRank:   rank,
	}
	if procMeta != nil {
		v.ProcessSigner = orNone(procMeta.Signer)
		v.ProcessCA = orNone(procMeta.CA)
		v.ProcessPacker = orNone(procMeta.Packer)
	} else {
		v.ProcessSigner, v.ProcessCA, v.ProcessPacker = None, None, None
	}
	return v, nil
}

// Instance is a labeled feature vector for one (file, event) pair.
type Instance struct {
	Vector
	File      dataset.FileHash
	Malicious bool
}

// Instances builds one labeled instance per event whose file has strict
// benign or malicious ground truth (likely-* and unknown files are
// excluded from training/testing, as in the paper). Event indexes refer
// to store.Events().
func (e *Extractor) Instances(eventIdx []int) ([]Instance, error) {
	events := e.store.Events()
	var out []Instance
	for _, i := range eventIdx {
		if i < 0 || i >= len(events) {
			return nil, fmt.Errorf("features: event index %d out of range", i)
		}
		ev := &events[i]
		label := e.store.Label(ev.File)
		if label != dataset.LabelBenign && label != dataset.LabelMalicious {
			continue
		}
		v, err := e.Vector(ev)
		if err != nil {
			return nil, err
		}
		out = append(out, Instance{
			Vector:    v,
			File:      ev.File,
			Malicious: label == dataset.LabelMalicious,
		})
	}
	return out, nil
}

// UnknownInstances builds one unlabeled instance per event whose file is
// unknown; Malicious is left false and meaningless.
func (e *Extractor) UnknownInstances(eventIdx []int) ([]Instance, error) {
	events := e.store.Events()
	var out []Instance
	for _, i := range eventIdx {
		if i < 0 || i >= len(events) {
			return nil, fmt.Errorf("features: event index %d out of range", i)
		}
		ev := &events[i]
		if e.store.Label(ev.File) != dataset.LabelUnknown {
			continue
		}
		v, err := e.Vector(ev)
		if err != nil {
			return nil, err
		}
		out = append(out, Instance{Vector: v, File: ev.File})
	}
	return out, nil
}
