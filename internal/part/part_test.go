package part

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"
)

// twoClassSchema builds a small schema: one nominal "signer", one
// nominal "packer", one numeric "rank".
func twoClassSchema(t *testing.T) *Dataset {
	t.Helper()
	d, err := NewDataset([]Attribute{
		{Name: "signer"},
		{Name: "packer"},
		{Name: "rank", Numeric: true},
	}, []string{"benign", "malicious"})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func addInst(t *testing.T, d *Dataset, signer, packer string, rank float64, class int) {
	t.Helper()
	if err := d.Add(Instance{
		Values: []Value{{S: signer}, {S: packer}, {F: rank}},
		Class:  class,
	}); err != nil {
		t.Fatal(err)
	}
}

func TestNewDatasetValidation(t *testing.T) {
	if _, err := NewDataset(nil, []string{"a", "b"}); err == nil {
		t.Error("empty attrs accepted")
	}
	if _, err := NewDataset([]Attribute{{Name: "x"}}, []string{"a"}); err == nil {
		t.Error("single class accepted")
	}
}

func TestAddValidation(t *testing.T) {
	d := twoClassSchema(t)
	if err := d.Add(Instance{Values: []Value{{S: "x"}}, Class: 0}); err == nil {
		t.Error("wrong arity accepted")
	}
	if err := d.Add(Instance{Values: []Value{{}, {}, {}}, Class: 9}); err == nil {
		t.Error("out-of-range class accepted")
	}
}

func TestPessimisticErrors(t *testing.T) {
	// Zero observed errors still yield a positive pessimistic estimate.
	if got := pessimisticErrors(0, 10); got <= 0 {
		t.Errorf("pessimisticErrors(0,10) = %v, want > 0", got)
	}
	// More observed errors, higher estimate.
	if pessimisticErrors(2, 10) <= pessimisticErrors(0, 10) {
		t.Error("estimate should grow with observed errors")
	}
	// Estimate bounded by n.
	if got := pessimisticErrors(10, 10); got > 10+1e-9 {
		t.Errorf("estimate %v exceeds n", got)
	}
	if got := pessimisticErrors(0, 0); got != 0 {
		t.Errorf("pessimisticErrors(0,0) = %v", got)
	}
}

func TestLearnSeparableNominal(t *testing.T) {
	d := twoClassSchema(t)
	for i := 0; i < 30; i++ {
		addInst(t, d, "EvilCorp", "NSIS", 1000, 1)
		addInst(t, d, "GoodSoft", "INNO", 50, 0)
	}
	rules, err := (&Learner{}).Learn(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) == 0 {
		t.Fatal("no rules learned")
	}
	// Every instance must be classified correctly by the decision list.
	for i := range d.Instances {
		class, ok := DecisionList(rules, &d.Instances[i])
		if !ok {
			t.Fatalf("instance %d unmatched", i)
		}
		if class != d.Instances[i].Class {
			t.Fatalf("instance %d misclassified", i)
		}
	}
}

func TestLearnCoversAllTrainingInstances(t *testing.T) {
	d := twoClassSchema(t)
	rng := rand.New(rand.NewSource(5))
	signers := []string{"A", "B", "C", "D", "(none)"}
	packers := []string{"UPX", "INNO", "(none)"}
	for i := 0; i < 400; i++ {
		s := signers[rng.Intn(len(signers))]
		p := packers[rng.Intn(len(packers))]
		rank := float64(rng.Intn(100000))
		class := 0
		// Noisy concept: signer A or B mostly malicious.
		if (s == "A" || s == "B") && rng.Float64() < 0.9 {
			class = 1
		} else if rng.Float64() < 0.05 {
			class = 1
		}
		addInst(t, d, s, p, rank, class)
	}
	rules, err := (&Learner{}).Learn(d)
	if err != nil {
		t.Fatal(err)
	}
	for i := range d.Instances {
		if _, ok := DecisionList(rules, &d.Instances[i]); !ok {
			t.Fatalf("training instance %d not covered by decision list", i)
		}
	}
}

func TestLearnNumericSplit(t *testing.T) {
	d := twoClassSchema(t)
	// Malicious iff rank > 500; signers uninformative.
	for i := 0; i < 40; i++ {
		addInst(t, d, "S", "P", float64(i*10), 0)
		addInst(t, d, "S", "P", float64(600+i*10), 1)
	}
	rules, err := (&Learner{}).Learn(d)
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i := range d.Instances {
		if class, ok := DecisionList(rules, &d.Instances[i]); ok && class == d.Instances[i].Class {
			correct++
		}
	}
	if acc := float64(correct) / float64(d.Len()); acc < 0.95 {
		t.Errorf("numeric-concept training accuracy = %.2f, want >= 0.95", acc)
	}
	// At least one rule must use a threshold condition.
	hasNumeric := false
	for _, r := range rules {
		for _, c := range r.Conditions {
			if c.Op == OpLE || c.Op == OpGT {
				hasNumeric = true
			}
		}
	}
	if !hasNumeric {
		t.Error("no numeric condition learned for a numeric concept")
	}
}

func TestLearnEmptyDataset(t *testing.T) {
	d := twoClassSchema(t)
	if _, err := (&Learner{}).Learn(d); err == nil {
		t.Error("empty dataset accepted")
	}
	if _, err := (&Learner{}).Learn(nil); err == nil {
		t.Error("nil dataset accepted")
	}
}

func TestLearnMaxRules(t *testing.T) {
	d := twoClassSchema(t)
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 200; i++ {
		addInst(t, d, fmt.Sprintf("S%d", rng.Intn(20)), "P", float64(i), rng.Intn(2))
	}
	rules, err := (&Learner{MaxRules: 3}).Learn(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) > 3 {
		t.Errorf("MaxRules ignored: %d rules", len(rules))
	}
}

func TestRuleErrorRateAndFilter(t *testing.T) {
	rules := []Rule{
		{Covered: 100, Errors: 0},
		{Covered: 1000, Errors: 1},
		{Covered: 100, Errors: 10},
	}
	if got := rules[2].ErrorRate(); got != 0.1 {
		t.Errorf("ErrorRate = %v", got)
	}
	if got := (&Rule{}).ErrorRate(); got != 0 {
		t.Errorf("empty rule ErrorRate = %v", got)
	}
	if got := len(FilterByErrorRate(rules, 0.0)); got != 1 {
		t.Errorf("tau=0 kept %d rules, want 1", got)
	}
	if got := len(FilterByErrorRate(rules, 0.001)); got != 2 {
		t.Errorf("tau=0.1%% kept %d rules, want 2", got)
	}
	if got := len(FilterByErrorRate(rules, 0.2)); got != 3 {
		t.Errorf("tau=20%% kept %d rules, want 3", got)
	}
}

func TestRuleString(t *testing.T) {
	r := Rule{
		Conditions: []Condition{
			{AttrName: "file's signer", Op: OpEquals, Value: "SecureInstall"},
			{AttrName: "download domain's Alexa rank", Op: OpGT, Threshold: 100000},
		},
		ClassName: "malicious",
	}
	got := r.String()
	if !strings.Contains(got, `file's signer is "SecureInstall"`) {
		t.Errorf("rule string = %q", got)
	}
	if !strings.Contains(got, "-> file is malicious") {
		t.Errorf("rule string = %q", got)
	}
	unsigned := Rule{
		Conditions: []Condition{{AttrName: "file's signer", Op: OpEquals, Value: "(none)"}},
		ClassName:  "malicious",
	}
	if !strings.Contains(unsigned.String(), "file's signer is absent") {
		t.Errorf("unsigned rule string = %q", unsigned.String())
	}
	empty := Rule{ClassName: "benign"}
	if !strings.Contains(empty.String(), "IF (true)") {
		t.Errorf("default rule string = %q", empty.String())
	}
}

func TestSummarize(t *testing.T) {
	rules := []Rule{
		{Conditions: []Condition{{AttrName: "file's signer", Op: OpEquals, Value: "X"}}, ClassName: "malicious"},
		{Conditions: []Condition{
			{AttrName: "file's signer", Op: OpEquals, Value: "Y"},
			{AttrName: "file's packer", Op: OpEquals, Value: "NSIS"},
		}, ClassName: "malicious"},
		{Conditions: []Condition{{AttrName: "file's packer", Op: OpEquals, Value: "INNO"}}, ClassName: "benign"},
		{ClassName: "benign"}, // default rule
	}
	s := Summarize(rules)
	if s.Total != 4 {
		t.Errorf("Total = %d", s.Total)
	}
	if s.PerClass["malicious"] != 2 || s.PerClass["benign"] != 2 {
		t.Errorf("PerClass = %v", s.PerClass)
	}
	if s.SingleCond != 2 {
		t.Errorf("SingleCond = %d", s.SingleCond)
	}
	if s.AttrUsage["file's signer"] != 2 || s.AttrUsage["file's packer"] != 2 {
		t.Errorf("AttrUsage = %v", s.AttrUsage)
	}
	if s.AttrUsageBase != 3 {
		t.Errorf("AttrUsageBase = %d", s.AttrUsageBase)
	}
	top := s.TopAttributes()
	if len(top) != 2 {
		t.Errorf("TopAttributes = %v", top)
	}
}

func TestLearnDeterministic(t *testing.T) {
	build := func() []Rule {
		d := twoClassSchema(t)
		rng := rand.New(rand.NewSource(9))
		for i := 0; i < 300; i++ {
			s := fmt.Sprintf("S%d", rng.Intn(10))
			class := 0
			if s == "S1" || s == "S2" || rng.Float64() < 0.08 {
				class = 1
			}
			addInst(t, d, s, fmt.Sprintf("P%d", rng.Intn(4)), float64(rng.Intn(1000)), class)
		}
		rules, err := (&Learner{}).Learn(d)
		if err != nil {
			t.Fatal(err)
		}
		return rules
	}
	a, b := build(), build()
	if len(a) != len(b) {
		t.Fatalf("rule counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].String() != b[i].String() {
			t.Errorf("rule %d differs:\n%s\n%s", i, a[i].String(), b[i].String())
		}
	}
}

// Property: rules learned at tau=0 have zero training error on the
// instances they covered during learning.
func TestFilterZeroTauProperty(t *testing.T) {
	d := twoClassSchema(t)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 500; i++ {
		s := fmt.Sprintf("S%d", rng.Intn(15))
		class := rng.Intn(2)
		addInst(t, d, s, fmt.Sprintf("P%d", rng.Intn(5)), float64(rng.Intn(100)), class)
	}
	rules, err := (&Learner{}).Learn(d)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range FilterByErrorRate(rules, 0) {
		if r.Errors != 0 {
			t.Errorf("tau=0 rule has %d errors: %s", r.Errors, r.String())
		}
	}
}

func TestEntropyHelpers(t *testing.T) {
	d := twoClassSchema(t)
	addInst(t, d, "a", "p", 0, 0)
	addInst(t, d, "b", "p", 0, 0)
	addInst(t, d, "c", "p", 0, 1)
	addInst(t, d, "d", "p", 0, 1)
	if got := d.entropy([]int{0, 1, 2, 3}); math.Abs(got-1) > 1e-12 {
		t.Errorf("entropy = %v, want 1", got)
	}
	if got := d.entropy([]int{0, 1}); got != 0 {
		t.Errorf("pure entropy = %v", got)
	}
	class, count := d.majorityClass([]int{0, 1, 2})
	if class != 0 || count != 2 {
		t.Errorf("majorityClass = (%d, %d)", class, count)
	}
}

func TestRuleSimplify(t *testing.T) {
	r := Rule{
		Conditions: []Condition{
			{AttrIndex: 2, AttrName: "rank", Op: OpLE, Threshold: 108138},
			{AttrIndex: 2, AttrName: "rank", Op: OpLE, Threshold: 30148},
			{AttrIndex: 2, AttrName: "rank", Op: OpLE, Threshold: 21856},
			{AttrIndex: 2, AttrName: "rank", Op: OpGT, Threshold: 2858},
			{AttrIndex: 0, AttrName: "signer", Op: OpEquals, Value: "X"},
			{AttrIndex: 0, AttrName: "signer", Op: OpEquals, Value: "X"},
		},
		Class: 1, ClassName: "malicious", Covered: 7,
	}
	s := r.Simplify()
	if len(s.Conditions) != 3 {
		t.Fatalf("simplified to %d conditions, want 3: %s", len(s.Conditions), s.String())
	}
	var le, gt float64
	for _, c := range s.Conditions {
		switch c.Op {
		case OpLE:
			le = c.Threshold
		case OpGT:
			gt = c.Threshold
		}
	}
	if le != 21856 || gt != 2858 {
		t.Errorf("bounds = (gt %v, le %v), want (2858, 21856)", gt, le)
	}
	if s.Covered != 7 || s.ClassName != "malicious" {
		t.Error("metadata lost in simplification")
	}
}

// Property: a simplified rule matches exactly the same instances.
func TestSimplifyEquivalenceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	signers := []string{"A", "B", "C"}
	mkRule := func() Rule {
		var conds []Condition
		n := rng.Intn(5) + 1
		for i := 0; i < n; i++ {
			switch rng.Intn(3) {
			case 0:
				conds = append(conds, Condition{AttrIndex: 0, AttrName: "signer", Op: OpEquals, Value: signers[rng.Intn(3)]})
			case 1:
				conds = append(conds, Condition{AttrIndex: 2, AttrName: "rank", Op: OpLE, Threshold: float64(rng.Intn(1000))})
			default:
				conds = append(conds, Condition{AttrIndex: 2, AttrName: "rank", Op: OpGT, Threshold: float64(rng.Intn(1000))})
			}
		}
		return Rule{Conditions: conds, Class: 1, ClassName: "malicious"}
	}
	for trial := 0; trial < 300; trial++ {
		r := mkRule()
		s := r.Simplify()
		for probe := 0; probe < 50; probe++ {
			inst := Instance{Values: []Value{
				{S: signers[rng.Intn(3)]}, {S: "P"}, {F: float64(rng.Intn(1100) - 50)},
			}}
			if r.Matches(&inst) != s.Matches(&inst) {
				t.Fatalf("rule %s and simplified %s disagree on %+v", r.String(), s.String(), inst)
			}
		}
	}
}

func TestSimplifyAll(t *testing.T) {
	rules := []Rule{
		{Conditions: []Condition{
			{AttrIndex: 2, AttrName: "rank", Op: OpLE, Threshold: 100},
			{AttrIndex: 2, AttrName: "rank", Op: OpLE, Threshold: 50},
		}, Class: 1, ClassName: "malicious"},
		{Conditions: []Condition{
			{AttrIndex: 0, AttrName: "signer", Op: OpEquals, Value: "X"},
		}, Class: 0, ClassName: "benign"},
	}
	out := SimplifyAll(rules)
	if len(out) != 2 {
		t.Fatalf("SimplifyAll returned %d rules", len(out))
	}
	if len(out[0].Conditions) != 1 || out[0].Conditions[0].Threshold != 50 {
		t.Errorf("first rule not simplified: %s", out[0].String())
	}
	if len(out[1].Conditions) != 1 {
		t.Errorf("second rule altered: %s", out[1].String())
	}
}

func TestDecisionListNoMatch(t *testing.T) {
	rules := []Rule{
		{Conditions: []Condition{{AttrIndex: 0, AttrName: "signer", Op: OpEquals, Value: "X"}}, Class: 1},
	}
	inst := Instance{Values: []Value{{S: "Y"}, {S: "P"}, {F: 0}}}
	if _, ok := DecisionList(rules, &inst); ok {
		t.Error("non-matching instance matched")
	}
	if _, ok := DecisionList(nil, &inst); ok {
		t.Error("empty list matched")
	}
}

func TestEncodeRulesUnknownOp(t *testing.T) {
	bad := []Rule{{Conditions: []Condition{{AttrName: "x", Op: Op(99)}}, Class: 1}}
	var sb strings.Builder
	if err := EncodeRules(&sb, bad); err == nil {
		t.Error("unknown op encoded without error")
	}
}

func TestSubtreeErrorEstimateOnDeepTree(t *testing.T) {
	// Build a dataset where pruning must weigh a multi-level subtree:
	// two informative attributes, noisy labels.
	d := twoClassSchema(t)
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 300; i++ {
		s := fmt.Sprintf("S%d", rng.Intn(4))
		p := fmt.Sprintf("P%d", rng.Intn(3))
		class := 0
		if s == "S1" && p == "P1" {
			class = 1
		}
		if rng.Float64() < 0.05 {
			class = 1 - class
		}
		addInst(t, d, s, p, float64(rng.Intn(100)), class)
	}
	tree, err := LearnTree(d)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Size() < 3 {
		t.Errorf("tree collapsed entirely: size %d", tree.Size())
	}
	correct := 0
	for i := range d.Instances {
		if class, ok := tree.Classify(&d.Instances[i]); ok && class == d.Instances[i].Class {
			correct++
		}
	}
	if acc := float64(correct) / float64(d.Len()); acc < 0.85 {
		t.Errorf("pruned-tree accuracy = %.2f", acc)
	}
}
