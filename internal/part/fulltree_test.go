package part

import (
	"math/rand"
	"testing"
)

func TestLearnTreeSeparable(t *testing.T) {
	d := twoClassSchema(t)
	for i := 0; i < 30; i++ {
		addInst(t, d, "EvilCorp", "NSIS", 1000, 1)
		addInst(t, d, "GoodSoft", "INNO", 50, 0)
	}
	tree, err := LearnTree(d)
	if err != nil {
		t.Fatal(err)
	}
	for i := range d.Instances {
		class, ok := tree.Classify(&d.Instances[i])
		if !ok {
			t.Fatalf("instance %d fell off the tree", i)
		}
		if class != d.Instances[i].Class {
			t.Fatalf("instance %d misclassified", i)
		}
	}
	if tree.Size() < 3 {
		t.Errorf("tree size = %d, want at least a split", tree.Size())
	}
	if tree.Leaves() < 2 {
		t.Errorf("leaves = %d", tree.Leaves())
	}
}

func TestLearnTreeEmpty(t *testing.T) {
	d := twoClassSchema(t)
	if _, err := LearnTree(d); err == nil {
		t.Error("empty dataset accepted")
	}
	if _, err := LearnTree(nil); err == nil {
		t.Error("nil dataset accepted")
	}
}

func TestTreeClassifyUnseenNominal(t *testing.T) {
	d := twoClassSchema(t)
	for i := 0; i < 20; i++ {
		addInst(t, d, "A", "P", 10, 0)
		addInst(t, d, "B", "P", 10, 1)
	}
	tree, err := LearnTree(d)
	if err != nil {
		t.Fatal(err)
	}
	unseen := Instance{Values: []Value{{S: "NeverSeen"}, {S: "P"}, {F: 10}}}
	if _, ok := tree.Classify(&unseen); ok {
		t.Error("unseen nominal value should fall off the tree")
	}
}

func TestTreePruningCollapsesNoise(t *testing.T) {
	// Pure-noise labels: the pruned tree should stay very small rather
	// than memorize the noise.
	d := twoClassSchema(t)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 400; i++ {
		addInst(t, d, "S", "P", float64(rng.Intn(1000)), rng.Intn(2))
	}
	tree, err := LearnTree(d)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Size() > 60 {
		t.Errorf("noise tree size = %d, pruning ineffective", tree.Size())
	}
}

func TestTreeVsRulesOnDrift(t *testing.T) {
	// Train both on month-1-like data, test on data where one signer's
	// meaning is unseen. The decision list (with no matching rule)
	// abstains; the tree is forced to guess through its fallback
	// branches. This mirrors the paper's argument for rejection.
	d := twoClassSchema(t)
	for i := 0; i < 40; i++ {
		addInst(t, d, "Evil1", "NSIS", 900000, 1)
		addInst(t, d, "Good1", "INNO", 500, 0)
	}
	rules, err := (&Learner{}).Learn(d)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := LearnTree(d)
	if err != nil {
		t.Fatal(err)
	}
	novel := Instance{Values: []Value{{S: "Brand New"}, {S: "UPX"}, {F: 123456}}}
	if _, matched := DecisionList(FilterByErrorRate(rules, 0)[:minInt(len(rules), 3)], &novel); matched {
		// The conditioned rules should not match a wholly novel vector;
		// if they do, they must at least be conditioned on something the
		// vector satisfies legitimately.
		t.Log("decision list matched novel instance; acceptable only via numeric conditions")
	}
	if _, ok := tree.Classify(&novel); ok {
		t.Log("tree classified novel instance (forced guess)")
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
