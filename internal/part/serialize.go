package part

import (
	"encoding/json"
	"fmt"
	"io"
)

// The JSON rule format lets threat analysts review, edit and reload rule
// sets, the workflow the paper highlights as the advantage of
// human-readable rules over opaque models.

// conditionJSON is the serialized form of a Condition.
type conditionJSON struct {
	Attr      string  `json:"attr"`
	AttrIndex int     `json:"attrIndex"`
	Op        string  `json:"op"` // "eq", "le", "gt"
	Value     string  `json:"value,omitempty"`
	Threshold float64 `json:"threshold,omitempty"`
}

// ruleJSON is the serialized form of a Rule.
type ruleJSON struct {
	Conditions []conditionJSON `json:"conditions"`
	Class      int             `json:"class"`
	ClassName  string          `json:"className"`
	Covered    int             `json:"covered,omitempty"`
	Errors     int             `json:"errors,omitempty"`
	// Text is the human-readable rendering, informational only.
	Text string `json:"text,omitempty"`
}

func opName(op Op) (string, error) {
	switch op {
	case OpEquals:
		return "eq", nil
	case OpLE:
		return "le", nil
	case OpGT:
		return "gt", nil
	default:
		return "", fmt.Errorf("part: unknown op %d", int(op))
	}
}

func opFromName(s string) (Op, error) {
	switch s {
	case "eq":
		return OpEquals, nil
	case "le":
		return OpLE, nil
	case "gt":
		return OpGT, nil
	default:
		return 0, fmt.Errorf("part: unknown op %q", s)
	}
}

// EncodeRules writes the rule list as indented JSON.
func EncodeRules(w io.Writer, rules []Rule) error {
	out := make([]ruleJSON, 0, len(rules))
	for _, r := range rules {
		rj := ruleJSON{
			Class:     r.Class,
			ClassName: r.ClassName,
			Covered:   r.Covered,
			Errors:    r.Errors,
			Text:      r.String(),
		}
		for _, c := range r.Conditions {
			name, err := opName(c.Op)
			if err != nil {
				return err
			}
			rj.Conditions = append(rj.Conditions, conditionJSON{
				Attr: c.AttrName, AttrIndex: c.AttrIndex, Op: name,
				Value: c.Value, Threshold: c.Threshold,
			})
		}
		out = append(out, rj)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// DecodeRules parses a rule list previously written by EncodeRules
// (possibly edited by an analyst). Attribute indexes are validated
// against the given schema; attribute names in the JSON win over stale
// indexes when they match a schema entry.
func DecodeRules(r io.Reader, attrs []Attribute) ([]Rule, error) {
	var in []ruleJSON
	dec := json.NewDecoder(r)
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("part: decode rules: %w", err)
	}
	byName := make(map[string]int, len(attrs))
	for i, a := range attrs {
		byName[a.Name] = i
	}
	var out []Rule
	for ri, rj := range in {
		rule := Rule{
			Class:     rj.Class,
			ClassName: rj.ClassName,
			Covered:   rj.Covered,
			Errors:    rj.Errors,
		}
		for ci, cj := range rj.Conditions {
			op, err := opFromName(cj.Op)
			if err != nil {
				return nil, fmt.Errorf("part: rule %d condition %d: %w", ri, ci, err)
			}
			idx := cj.AttrIndex
			if i, ok := byName[cj.Attr]; ok {
				idx = i
			}
			if idx < 0 || idx >= len(attrs) {
				return nil, fmt.Errorf("part: rule %d condition %d: attribute %q not in schema", ri, ci, cj.Attr)
			}
			if attrs[idx].Numeric && op == OpEquals {
				return nil, fmt.Errorf("part: rule %d condition %d: equality on numeric attribute %q", ri, ci, cj.Attr)
			}
			if !attrs[idx].Numeric && op != OpEquals {
				return nil, fmt.Errorf("part: rule %d condition %d: threshold on nominal attribute %q", ri, ci, cj.Attr)
			}
			rule.Conditions = append(rule.Conditions, Condition{
				AttrIndex: idx, AttrName: attrs[idx].Name, Op: op,
				Value: cj.Value, Threshold: cj.Threshold,
			})
		}
		out = append(out, rule)
	}
	return out, nil
}
