package part

import "fmt"

// LearnIncremental warm-starts rule induction from a prior generation's
// rule list instead of learning from scratch — the retraining entry
// point of the champion/challenger lifecycle. The combined dataset
// (original training window plus newly harvested ground truth) is
// usually dominated by instances the prior rules already explain, so a
// full PART pass would re-derive most of the champion at full cost
// while renumbering every rule; the warm start instead:
//
//  1. re-scores every prior rule standalone against d (fresh
//     Covered/Errors — a rule's support and error rate under the NEW
//     evidence, which is exactly the efficacy-decay signal the
//     lifecycle surfaces per rule);
//  2. retains the prior rules still accurate on d (error rate <= tau
//     with nonzero coverage), preserving their relative order so
//     analysts track a rule across generations;
//  3. runs the PART loop only on the residual — instances no retained
//     rule covers — and appends whatever new rules it grows.
//
// The result is a full decision list over d: retained veterans first,
// new rules after. Callers apply their own selection filters on top
// (tau re-filtering is already done for veterans; new rules carry
// honest Covered/Errors from the residual pass and are re-scored by
// classify.Retrain the same way Train re-scores).
func (l *Learner) LearnIncremental(prior []Rule, d *Dataset, tau float64) ([]Rule, error) {
	if d == nil || d.Len() == 0 {
		return nil, fmt.Errorf("part: empty dataset")
	}
	if tau < 0 {
		return nil, fmt.Errorf("part: negative tau %v", tau)
	}
	if len(prior) == 0 {
		// No prior generation: incremental learning degenerates to a
		// fresh PART pass, bit-identical to Learn.
		return l.Learn(d)
	}
	// Re-score the prior generation against the new evidence.
	retained := make([]Rule, 0, len(prior))
	for _, r := range prior {
		if len(r.Conditions) == 0 {
			continue // the unconditioned default rule never carries over
		}
		r.Covered, r.Errors = 0, 0
		for i := range d.Instances {
			if r.Matches(&d.Instances[i]) {
				r.Covered++
				if d.Instances[i].Class != r.Class {
					r.Errors++
				}
			}
		}
		if r.Covered > 0 && r.ErrorRate() <= tau+1e-12 {
			retained = append(retained, r)
		}
	}

	// Collect the residual: instances no retained rule explains.
	var residual Dataset
	residual.Attrs, residual.ClassNames = d.Attrs, d.ClassNames
	for i := range d.Instances {
		matched := false
		for ri := range retained {
			if retained[ri].Matches(&d.Instances[i]) {
				matched = true
				break
			}
		}
		if !matched {
			residual.Instances = append(residual.Instances, d.Instances[i])
		}
	}
	if residual.Len() == 0 {
		return retained, nil
	}
	if l.MaxRules > 0 && len(retained) >= l.MaxRules {
		return retained, nil
	}
	grower := &Learner{MaxRules: l.MaxRules}
	if grower.MaxRules > 0 {
		grower.MaxRules -= len(retained)
	}
	grown, err := grower.Learn(&residual)
	if err != nil {
		return nil, fmt.Errorf("part: incremental residual pass: %w", err)
	}
	// PART never conditions the LAST class standing: once the remaining
	// instances are pure, the tree is a bare leaf and everything left
	// falls to the unconditioned default rule, which downstream
	// selection drops. From scratch that tail is just low-support noise,
	// but in a warm start the veterans soak up the bulk of the data and
	// an EMERGED pattern (the very thing retraining exists to learn) can
	// be the pure tail. Describe such a tail with a characteristic rule
	// — the conjunction of nominal values all tail instances share that
	// at least one other instance in d does not — held to the same tau
	// bar as the veterans.
	if tail, class, pure := pureTail(&residual, grown); pure {
		if r, ok := characteristicRule(d, tail, class, tau); ok {
			grown = append(grown, r)
		}
	}
	// The residual pass can re-derive a veteran verbatim; keep the first
	// occurrence of each identical rule.
	seen := make(map[string]bool, len(retained)+len(grown))
	out := make([]Rule, 0, len(retained)+len(grown))
	for _, r := range append(retained, grown...) {
		key := r.String()
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, r)
	}
	return out, nil
}

// pureTail returns the residual instances not covered by any conditioned
// grown rule, if they are all of one class.
func pureTail(residual *Dataset, grown []Rule) ([]Instance, int, bool) {
	var tail []Instance
	for i := range residual.Instances {
		matched := false
		for ri := range grown {
			if len(grown[ri].Conditions) > 0 && grown[ri].Matches(&residual.Instances[i]) {
				matched = true
				break
			}
		}
		if !matched {
			tail = append(tail, residual.Instances[i])
		}
	}
	if len(tail) == 0 {
		return nil, 0, false
	}
	c := tail[0].Class
	for i := range tail {
		if tail[i].Class != c {
			return nil, 0, false
		}
	}
	return tail, c, true
}

// characteristicRule conjoins, over the nominal attributes, the values
// every tail instance shares and at least one other instance of d does
// not — the most specific equality description of the tail that still
// discriminates. The rule is re-scored against all of d and returned
// only if it clears the tau error bar with nonzero coverage.
func characteristicRule(d *Dataset, tail []Instance, class int, tau float64) (Rule, bool) {
	r := Rule{Class: class, ClassName: d.ClassNames[class]}
	for ai := range d.Attrs {
		if d.Attrs[ai].Numeric {
			continue
		}
		v := tail[0].Values[ai].S
		shared := true
		for i := 1; i < len(tail); i++ {
			if tail[i].Values[ai].S != v {
				shared = false
				break
			}
		}
		if !shared {
			continue
		}
		discriminates := false
		for i := range d.Instances {
			if d.Instances[i].Class != class && d.Instances[i].Values[ai].S != v {
				discriminates = true
				break
			}
		}
		if discriminates {
			r.Conditions = append(r.Conditions, Condition{
				AttrIndex: ai, AttrName: d.Attrs[ai].Name, Op: OpEquals, Value: v,
			})
		}
	}
	if len(r.Conditions) == 0 {
		return Rule{}, false
	}
	for i := range d.Instances {
		if r.Matches(&d.Instances[i]) {
			r.Covered++
			if d.Instances[i].Class != class {
				r.Errors++
			}
		}
	}
	if r.Covered == 0 || r.ErrorRate() > tau+1e-12 {
		return Rule{}, false
	}
	return r, true
}
