package part

import (
	"math"
	"sort"
)

// Op is a rule/split condition operator.
type Op int

// Operators.
const (
	// OpEquals tests a nominal attribute for equality.
	OpEquals Op = iota + 1
	// OpLE tests a numeric attribute for value <= threshold.
	OpLE
	// OpGT tests a numeric attribute for value > threshold.
	OpGT
)

// Condition is one test on an attribute.
type Condition struct {
	AttrIndex int
	AttrName  string
	Op        Op
	// Value is the nominal value for OpEquals.
	Value string
	// Threshold is the numeric cut for OpLE/OpGT.
	Threshold float64
}

// Matches reports whether the instance satisfies the condition.
func (c *Condition) Matches(inst *Instance) bool {
	v := inst.Values[c.AttrIndex]
	switch c.Op {
	case OpEquals:
		return v.S == c.Value
	case OpLE:
		return v.F <= c.Threshold
	case OpGT:
		return v.F > c.Threshold
	default:
		return false
	}
}

// split describes a chosen test at an internal node.
type split struct {
	attr      int
	numeric   bool
	threshold float64  // numeric split point
	values    []string // nominal branch values, aligned with subsets
	subsets   [][]int  // instance indexes per branch
	gain      float64
	gainRatio float64
}

// treeNode is a node of a (partial) decision tree.
type treeNode struct {
	leaf  bool
	class int
	count int // instances reaching the node
	errs  int // training misclassifications if used as leaf

	// Internal-node fields.
	conds    []Condition // condition per child branch
	children []*treeNode // nil entries are unexpanded subsets
	subsets  [][]int
}

// minLeaf is the C4.5 minimum number of instances per branch.
const minLeaf = 2

// builder carries the dataset during partial-tree construction.
type builder struct {
	d *Dataset
}

// leafFor builds a leaf node over idx.
func (b *builder) leafFor(idx []int) *treeNode {
	class, count := b.d.majorityClass(idx)
	return &treeNode{leaf: true, class: class, count: len(idx), errs: len(idx) - count}
}

// bestSplit evaluates all attributes and returns the best split, or nil
// when no useful split exists. Following C4.5, only candidate splits
// whose information gain is at least the average gain over all
// candidates compete on gain ratio; this stops low-split-info binary
// splits (numeric thresholds) from crowding out high-gain multiway
// splits such as the signer attribute.
func (b *builder) bestSplit(idx []int) *split {
	baseEntropy := b.d.entropy(idx)
	if baseEntropy == 0 {
		return nil
	}
	candidates := make([]*split, 0, len(b.d.Attrs))
	totalGain := 0.0
	for a := range b.d.Attrs {
		var s *split
		if b.d.Attrs[a].Numeric {
			s = b.numericSplit(idx, a, baseEntropy)
		} else {
			s = b.nominalSplit(idx, a, baseEntropy)
		}
		if s == nil {
			continue
		}
		candidates = append(candidates, s)
		totalGain += s.gain
	}
	if len(candidates) == 0 {
		return nil
	}
	avgGain := totalGain / float64(len(candidates))
	var best *split
	for _, s := range candidates {
		if s.gain+1e-12 < avgGain {
			continue
		}
		if best == nil || s.gainRatio > best.gainRatio ||
			(s.gainRatio == best.gainRatio && s.attr < best.attr) {
			best = s
		}
	}
	if best == nil {
		best = candidates[0]
	}
	return best
}

// nominalSplit builds a multiway split on attribute a.
func (b *builder) nominalSplit(idx []int, a int, baseEntropy float64) *split {
	groups := make(map[string][]int)
	for _, i := range idx {
		v := b.d.Instances[i].Values[a].S
		groups[v] = append(groups[v], i)
	}
	if len(groups) < 2 {
		return nil
	}
	// Deterministic branch order.
	values := make([]string, 0, len(groups))
	for v := range groups {
		values = append(values, v)
	}
	sort.Strings(values)
	total := float64(len(idx))
	cond, splitInfo := 0.0, 0.0
	okBranches := 0
	subsets := make([][]int, 0, len(values))
	for _, v := range values {
		sub := groups[v]
		p := float64(len(sub)) / total
		cond += p * b.d.entropy(sub)
		splitInfo -= p * math.Log2(p)
		if len(sub) >= minLeaf {
			okBranches++
		}
		subsets = append(subsets, sub)
	}
	if okBranches < 2 || splitInfo <= 0 {
		return nil
	}
	gain := baseEntropy - cond
	if gain <= 1e-9 {
		return nil
	}
	return &split{
		attr:      a,
		values:    values,
		subsets:   subsets,
		gain:      gain,
		gainRatio: gain / splitInfo,
	}
}

// numericSplit finds the best binary threshold split on attribute a.
func (b *builder) numericSplit(idx []int, a int, baseEntropy float64) *split {
	sorted := append([]int(nil), idx...)
	sort.Slice(sorted, func(x, y int) bool {
		return b.d.Instances[sorted[x]].Values[a].F < b.d.Instances[sorted[y]].Values[a].F
	})
	total := float64(len(sorted))
	nClasses := len(b.d.ClassNames)
	leftCounts := make([]int, nClasses)
	rightCounts := b.d.classCounts(sorted)

	entropyOf := func(counts []int, n int) float64 {
		if n == 0 {
			return 0
		}
		h := 0.0
		for _, c := range counts {
			if c == 0 {
				continue
			}
			p := float64(c) / float64(n)
			h -= p * math.Log2(p)
		}
		return h
	}

	bestGain := -1.0
	bestCut := 0.0
	bestLeft := -1
	for i := 0; i < len(sorted)-1; i++ {
		inst := &b.d.Instances[sorted[i]]
		leftCounts[inst.Class]++
		rightCounts[inst.Class]--
		cur := inst.Values[a].F
		next := b.d.Instances[sorted[i+1]].Values[a].F
		if cur == next {
			continue
		}
		nLeft := i + 1
		nRight := len(sorted) - nLeft
		if nLeft < minLeaf || nRight < minLeaf {
			continue
		}
		cond := (float64(nLeft)*entropyOf(leftCounts, nLeft) +
			float64(nRight)*entropyOf(rightCounts, nRight)) / total
		gain := baseEntropy - cond
		if gain > bestGain {
			bestGain = gain
			bestCut = (cur + next) / 2
			bestLeft = nLeft
		}
	}
	if bestGain <= 1e-9 || bestLeft < 0 {
		return nil
	}
	// C4.5 (release 8) MDL correction: charge the gain for the number of
	// candidate thresholds examined, so sparse data cannot buy spurious
	// threshold windows for free.
	distinct := 1
	for i := 1; i < len(sorted); i++ {
		if b.d.Instances[sorted[i]].Values[a].F != b.d.Instances[sorted[i-1]].Values[a].F {
			distinct++
		}
	}
	if distinct > 1 {
		bestGain -= math.Log2(float64(distinct-1)) / total
	}
	if bestGain <= 1e-9 {
		return nil
	}
	left := make([]int, 0, bestLeft)
	right := make([]int, 0, len(sorted)-bestLeft)
	for _, i := range sorted {
		if b.d.Instances[i].Values[a].F <= bestCut {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	p := float64(len(left)) / total
	splitInfo := -p*math.Log2(p) - (1-p)*math.Log2(1-p)
	if splitInfo <= 0 {
		return nil
	}
	return &split{
		attr:      a,
		numeric:   true,
		threshold: bestCut,
		subsets:   [][]int{left, right},
		gain:      bestGain,
		gainRatio: bestGain / splitInfo,
	}
}

// expand grows a partial tree over idx: the lowest-entropy subsets are
// expanded first, expansion stops as soon as a subtree cannot be
// collapsed into a leaf, and fully-expanded nodes are subject to C4.5
// subtree replacement.
func (b *builder) expand(idx []int) *treeNode {
	counts := b.d.classCounts(idx)
	pure := false
	for _, c := range counts {
		if c == len(idx) {
			pure = true
			break
		}
	}
	if pure || len(idx) < 2*minLeaf {
		return b.leafFor(idx)
	}
	s := b.bestSplit(idx)
	if s == nil {
		return b.leafFor(idx)
	}
	node := &treeNode{count: len(idx)}
	_, maj := b.d.majorityClass(idx)
	node.errs = len(idx) - maj
	node.subsets = s.subsets
	node.children = make([]*treeNode, len(s.subsets))
	node.conds = make([]Condition, len(s.subsets))
	for bi := range s.subsets {
		cond := Condition{AttrIndex: s.attr, AttrName: b.d.Attrs[s.attr].Name}
		if s.numeric {
			cond.Threshold = s.threshold
			if bi == 0 {
				cond.Op = OpLE
			} else {
				cond.Op = OpGT
			}
		} else {
			cond.Op = OpEquals
			cond.Value = s.values[bi]
		}
		node.conds[bi] = cond
	}
	// Expansion order: increasing subset entropy.
	order := make([]int, len(s.subsets))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(x, y int) bool {
		return b.d.entropy(s.subsets[order[x]]) < b.d.entropy(s.subsets[order[y]])
	})
	allLeaves := true
	for _, bi := range order {
		if !allLeaves {
			break // leave remaining subsets unexpanded
		}
		child := b.expand(s.subsets[bi])
		node.children[bi] = child
		if !child.leaf {
			allLeaves = false
		}
	}
	if allLeaves {
		// Subtree replacement: collapse when the node-as-leaf estimate
		// is no worse than the subtree estimate.
		subtreeErr := 0.0
		for bi, child := range node.children {
			if child != nil {
				subtreeErr += pessimisticErrors(child.errs, len(s.subsets[bi]))
			}
		}
		if pessimisticErrors(node.errs, len(idx)) <= subtreeErr+0.1 {
			return b.leafFor(idx)
		}
	}
	return node
}

// bestLeaf finds the expanded leaf covering the most instances and
// returns the conditions along its path. Returns nil when the partial
// tree has no expanded leaf below an internal root (cannot happen with
// expand's construction, but guarded anyway).
func bestLeaf(node *treeNode, path []Condition) (leaf *treeNode, conds []Condition) {
	if node == nil {
		return nil, nil
	}
	if node.leaf {
		return node, append([]Condition(nil), path...)
	}
	var best *treeNode
	var bestPath []Condition
	for bi, child := range node.children {
		if child == nil {
			continue
		}
		l, p := bestLeaf(child, append(path, node.conds[bi]))
		if l == nil {
			continue
		}
		if best == nil || l.count > best.count {
			best, bestPath = l, p
		}
	}
	return best, bestPath
}
