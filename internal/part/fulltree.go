package part

import "fmt"

// Tree is a fully grown, pessimistically pruned C4.5-style decision
// tree. The paper argues its rule-based classifier improves on "regular
// decision trees" because inaccurate branches can be dropped (tau
// filtering) and conflicting evidence rejected; this full tree is the
// baseline that argument compares against (see BenchmarkAblationTreeVsRules).
type Tree struct {
	root *treeNode
	d    *Dataset
}

// LearnTree builds a complete decision tree over the dataset (every
// subset expanded, unlike the partial trees PART grows).
func LearnTree(d *Dataset) (*Tree, error) {
	if d == nil || d.Len() == 0 {
		return nil, fmt.Errorf("part: empty dataset")
	}
	b := &builder{d: d}
	idx := make([]int, d.Len())
	for i := range idx {
		idx[i] = i
	}
	return &Tree{root: b.expandFull(idx), d: d}, nil
}

// expandFull grows the tree completely, applying subtree replacement on
// the way back up.
func (b *builder) expandFull(idx []int) *treeNode {
	counts := b.d.classCounts(idx)
	for _, c := range counts {
		if c == len(idx) {
			return b.leafFor(idx)
		}
	}
	if len(idx) < 2*minLeaf {
		return b.leafFor(idx)
	}
	s := b.bestSplit(idx)
	if s == nil {
		return b.leafFor(idx)
	}
	node := &treeNode{count: len(idx)}
	_, maj := b.d.majorityClass(idx)
	node.errs = len(idx) - maj
	node.subsets = s.subsets
	node.children = make([]*treeNode, len(s.subsets))
	node.conds = make([]Condition, len(s.subsets))
	subtreeErr := 0.0
	for bi := range s.subsets {
		cond := Condition{AttrIndex: s.attr, AttrName: b.d.Attrs[s.attr].Name}
		if s.numeric {
			cond.Threshold = s.threshold
			if bi == 0 {
				cond.Op = OpLE
			} else {
				cond.Op = OpGT
			}
		} else {
			cond.Op = OpEquals
			cond.Value = s.values[bi]
		}
		node.conds[bi] = cond
		child := b.expandFull(s.subsets[bi])
		node.children[bi] = child
		subtreeErr += subtreeErrorEstimate(child, len(s.subsets[bi]))
	}
	if pessimisticErrors(node.errs, len(idx)) <= subtreeErr+0.1 {
		return b.leafFor(idx)
	}
	return node
}

// subtreeErrorEstimate sums the pessimistic error estimates of a
// subtree's leaves.
func subtreeErrorEstimate(n *treeNode, count int) float64 {
	if n.leaf {
		return pessimisticErrors(n.errs, count)
	}
	total := 0.0
	for bi, child := range n.children {
		if child != nil {
			total += subtreeErrorEstimate(child, len(n.subsets[bi]))
		}
	}
	return total
}

// Classify walks the tree for one instance. It returns the predicted
// class and true, or (0, false) when the instance falls off the tree
// (a nominal value unseen at training time).
func (t *Tree) Classify(inst *Instance) (int, bool) {
	node := t.root
	for node != nil && !node.leaf {
		next := -1
		for bi := range node.conds {
			if node.conds[bi].Matches(inst) {
				next = bi
				break
			}
		}
		if next < 0 {
			return 0, false
		}
		node = node.children[next]
	}
	if node == nil {
		return 0, false
	}
	return node.class, true
}

// Size returns the number of nodes in the tree.
func (t *Tree) Size() int {
	var count func(n *treeNode) int
	count = func(n *treeNode) int {
		if n == nil {
			return 0
		}
		total := 1
		for _, c := range n.children {
			total += count(c)
		}
		return total
	}
	return count(t.root)
}

// Leaves returns the number of leaves.
func (t *Tree) Leaves() int {
	var count func(n *treeNode) int
	count = func(n *treeNode) int {
		if n == nil {
			return 0
		}
		if n.leaf {
			return 1
		}
		total := 0
		for _, c := range n.children {
			total += count(c)
		}
		return total
	}
	return count(t.root)
}
