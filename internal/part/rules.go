package part

import (
	"fmt"
	"sort"
	"strings"
)

// Rule is one human-readable classification rule: a conjunction of
// conditions implying a class.
type Rule struct {
	Conditions []Condition
	Class      int
	ClassName  string
	// Covered and Errors are training-set statistics: instances matched
	// and matched-but-misclassified.
	Covered int
	Errors  int
}

// Matches reports whether the rule's conditions all hold for inst.
func (r *Rule) Matches(inst *Instance) bool {
	for i := range r.Conditions {
		if !r.Conditions[i].Matches(inst) {
			return false
		}
	}
	return true
}

// ErrorRate returns Errors/Covered (0 when the rule covered nothing).
func (r *Rule) ErrorRate() float64 {
	if r.Covered == 0 {
		return 0
	}
	return float64(r.Errors) / float64(r.Covered)
}

// String renders the rule in the paper's style:
//
//	IF (file's signer is "SecureInstall") -> file is malicious
func (r *Rule) String() string {
	if len(r.Conditions) == 0 {
		return fmt.Sprintf("IF (true) -> file is %s", r.ClassName)
	}
	parts := make([]string, 0, len(r.Conditions))
	for _, c := range r.Conditions {
		switch c.Op {
		case OpEquals:
			if c.Value == "(none)" {
				parts = append(parts, fmt.Sprintf("(%s is absent)", c.AttrName))
			} else {
				parts = append(parts, fmt.Sprintf("(%s is %q)", c.AttrName, c.Value))
			}
		case OpLE:
			parts = append(parts, fmt.Sprintf("(%s <= %.0f)", c.AttrName, c.Threshold))
		case OpGT:
			parts = append(parts, fmt.Sprintf("(%s > %.0f)", c.AttrName, c.Threshold))
		}
	}
	return fmt.Sprintf("IF %s -> file is %s", strings.Join(parts, " AND "), r.ClassName)
}

// Learner runs the PART loop.
type Learner struct {
	// MaxRules bounds the decision list length (0 = unbounded).
	MaxRules int
}

// Learn derives an ordered rule list from the dataset. The final rule
// list covers every training instance; callers that want only
// high-precision rules filter by ErrorRate afterwards (as the paper does
// with its tau threshold).
func (l *Learner) Learn(d *Dataset) ([]Rule, error) {
	if d == nil || d.Len() == 0 {
		return nil, fmt.Errorf("part: empty dataset")
	}
	b := &builder{d: d}
	remaining := make([]int, d.Len())
	for i := range remaining {
		remaining[i] = i
	}
	var rules []Rule
	for len(remaining) > 0 {
		if l.MaxRules > 0 && len(rules) >= l.MaxRules {
			break
		}
		tree := b.expand(remaining)
		leaf, conds := bestLeaf(tree, nil)
		if leaf == nil {
			break
		}
		rule := Rule{
			Conditions: conds,
			Class:      leaf.class,
			ClassName:  d.ClassNames[leaf.class],
		}
		// Compute coverage over the remaining instances and drop them.
		var kept []int
		for _, i := range remaining {
			inst := &d.Instances[i]
			if rule.Matches(inst) {
				rule.Covered++
				if inst.Class != rule.Class {
					rule.Errors++
				}
			} else {
				kept = append(kept, i)
			}
		}
		if rule.Covered == 0 {
			// A root leaf with no conditions covers everything; a
			// conditioned rule covering nothing means the tree stalled.
			break
		}
		rules = append(rules, rule)
		remaining = kept
		if len(rule.Conditions) == 0 {
			break // default rule covers the rest
		}
	}
	return rules, nil
}

// FilterByErrorRate returns the rules with training error rate <= tau,
// preserving order. This is the paper's rule selection step (Table XVI):
// tau=0.0 keeps only rules with zero training error.
func FilterByErrorRate(rules []Rule, tau float64) []Rule {
	var out []Rule
	for _, r := range rules {
		if r.ErrorRate() <= tau+1e-12 {
			out = append(out, r)
		}
	}
	return out
}

// DecisionList classifies with ordered first-match semantics (PART's
// native mode). It returns the class of the first matching rule and
// true, or (0, false) when nothing matches.
func DecisionList(rules []Rule, inst *Instance) (int, bool) {
	for i := range rules {
		if rules[i].Matches(inst) {
			return rules[i].Class, true
		}
	}
	return 0, false
}

// Stats summarizes a rule list.
type Stats struct {
	Total         int
	PerClass      map[string]int
	SingleCond    int
	AttrUsage     map[string]int
	AttrUsageBase int // number of rules with >= 1 condition
}

// Summarize computes rule-list statistics (Section VII reports feature
// usage shares and the share of single-condition rules).
func Summarize(rules []Rule) Stats {
	s := Stats{
		PerClass:  make(map[string]int),
		AttrUsage: make(map[string]int),
	}
	for _, r := range rules {
		s.Total++
		s.PerClass[r.ClassName]++
		if len(r.Conditions) == 1 {
			s.SingleCond++
		}
		if len(r.Conditions) > 0 {
			s.AttrUsageBase++
			seen := map[string]bool{}
			for _, c := range r.Conditions {
				if !seen[c.AttrName] {
					s.AttrUsage[c.AttrName]++
					seen[c.AttrName] = true
				}
			}
		}
	}
	return s
}

// TopAttributes returns attribute names by descending usage share.
func (s Stats) TopAttributes() []string {
	names := make([]string, 0, len(s.AttrUsage))
	for n := range s.AttrUsage {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		if s.AttrUsage[names[i]] != s.AttrUsage[names[j]] {
			return s.AttrUsage[names[i]] > s.AttrUsage[names[j]]
		}
		return names[i] < names[j]
	})
	return names
}

// Simplify returns an equivalent rule with redundant conditions removed:
// multiple thresholds on the same numeric attribute collapse to the
// tightest bound on each side, and duplicate nominal equality tests
// dedupe. Partial-tree paths re-split numeric attributes freely, so raw
// PART rules often read like "rank <= 108138 AND rank <= 30148 AND
// rank <= 21856"; analysts should never have to see that.
func (r Rule) Simplify() Rule {
	type bounds struct {
		le    float64
		hasLE bool
		gt    float64
		hasGT bool
	}
	numeric := make(map[int]*bounds)
	seenEq := make(map[int]map[string]struct{})
	var order []Condition
	for _, c := range r.Conditions {
		switch c.Op {
		case OpLE:
			b, ok := numeric[c.AttrIndex]
			if !ok {
				b = &bounds{}
				numeric[c.AttrIndex] = b
				order = append(order, c)
			}
			if !b.hasLE || c.Threshold < b.le {
				b.le, b.hasLE = c.Threshold, true
			}
		case OpGT:
			b, ok := numeric[c.AttrIndex]
			if !ok {
				b = &bounds{}
				numeric[c.AttrIndex] = b
				order = append(order, c)
			}
			if !b.hasGT || c.Threshold > b.gt {
				b.gt, b.hasGT = c.Threshold, true
			}
		case OpEquals:
			set, ok := seenEq[c.AttrIndex]
			if !ok {
				set = make(map[string]struct{})
				seenEq[c.AttrIndex] = set
			}
			if _, dup := set[c.Value]; dup {
				continue
			}
			set[c.Value] = struct{}{}
			order = append(order, c)
		}
	}
	out := Rule{
		Class:     r.Class,
		ClassName: r.ClassName,
		Covered:   r.Covered,
		Errors:    r.Errors,
	}
	emitted := make(map[int]bool)
	for _, c := range order {
		if c.Op == OpEquals {
			out.Conditions = append(out.Conditions, c)
			continue
		}
		if emitted[c.AttrIndex] {
			continue
		}
		emitted[c.AttrIndex] = true
		b := numeric[c.AttrIndex]
		if b.hasGT {
			out.Conditions = append(out.Conditions, Condition{
				AttrIndex: c.AttrIndex, AttrName: c.AttrName,
				Op: OpGT, Threshold: b.gt,
			})
		}
		if b.hasLE {
			out.Conditions = append(out.Conditions, Condition{
				AttrIndex: c.AttrIndex, AttrName: c.AttrName,
				Op: OpLE, Threshold: b.le,
			})
		}
	}
	return out
}

// SimplifyAll applies Simplify to every rule.
func SimplifyAll(rules []Rule) []Rule {
	out := make([]Rule, len(rules))
	for i, r := range rules {
		out[i] = r.Simplify()
	}
	return out
}
