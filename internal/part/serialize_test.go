package part

import (
	"bytes"
	"strings"
	"testing"
)

func sampleRules(t *testing.T) []Rule {
	t.Helper()
	return []Rule{
		{
			Conditions: []Condition{
				{AttrIndex: 0, AttrName: "signer", Op: OpEquals, Value: "Somoto Ltd."},
			},
			Class: 1, ClassName: "malicious", Covered: 61, Errors: 0,
		},
		{
			Conditions: []Condition{
				{AttrIndex: 0, AttrName: "signer", Op: OpEquals, Value: "(none)"},
				{AttrIndex: 2, AttrName: "rank", Op: OpGT, Threshold: 100000},
			},
			Class: 1, ClassName: "malicious", Covered: 20, Errors: 1,
		},
		{
			Conditions: []Condition{
				{AttrIndex: 1, AttrName: "packer", Op: OpEquals, Value: "MSI-Wrapper"},
			},
			Class: 0, ClassName: "benign", Covered: 9,
		},
	}
}

func serializeSchema() []Attribute {
	return []Attribute{
		{Name: "signer"},
		{Name: "packer"},
		{Name: "rank", Numeric: true},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rules := sampleRules(t)
	var buf bytes.Buffer
	if err := EncodeRules(&buf, rules); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeRules(&buf, serializeSchema())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(rules) {
		t.Fatalf("rules = %d, want %d", len(got), len(rules))
	}
	for i := range rules {
		if got[i].String() != rules[i].String() {
			t.Errorf("rule %d: %q != %q", i, got[i].String(), rules[i].String())
		}
		if got[i].Covered != rules[i].Covered || got[i].Errors != rules[i].Errors {
			t.Errorf("rule %d stats lost", i)
		}
	}
}

func TestEncodeRulesIncludesText(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeRules(&buf, sampleRules(t)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Somoto Ltd.") {
		t.Error("encoded rules missing signer value")
	}
	if !strings.Contains(buf.String(), `"text"`) {
		t.Error("encoded rules missing human-readable text")
	}
}

func TestDecodeRulesValidation(t *testing.T) {
	schema := serializeSchema()
	cases := map[string]string{
		"bad json":      "{",
		"unknown op":    `[{"conditions":[{"attr":"signer","op":"xx","value":"v"}],"class":1}]`,
		"unknown attr":  `[{"conditions":[{"attr":"nope","attrIndex":9,"op":"eq","value":"v"}],"class":1}]`,
		"eq on numeric": `[{"conditions":[{"attr":"rank","op":"eq","value":"v"}],"class":1}]`,
		"gt on nominal": `[{"conditions":[{"attr":"signer","op":"gt","threshold":5}],"class":1}]`,
	}
	for name, in := range cases {
		if _, err := DecodeRules(strings.NewReader(in), schema); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestDecodeRulesAnalystEdit(t *testing.T) {
	// An analyst hand-writes a rule using names only; indexes resolve
	// from the schema.
	in := `[{"conditions":[{"attr":"packer","op":"eq","value":"Themida"}],"class":1,"className":"malicious"}]`
	rules, err := DecodeRules(strings.NewReader(in), serializeSchema())
	if err != nil {
		t.Fatal(err)
	}
	if rules[0].Conditions[0].AttrIndex != 1 {
		t.Errorf("attr index resolved to %d, want 1", rules[0].Conditions[0].AttrIndex)
	}
	inst := Instance{Values: []Value{{S: "X"}, {S: "Themida"}, {F: 0}}}
	if !rules[0].Matches(&inst) {
		t.Error("decoded rule does not match")
	}
}
