package part

import "testing"

// incrDataset builds a one-nominal-attribute dataset from (value, class)
// pairs.
func incrDataset(t *testing.T, pairs [][2]any) *Dataset {
	t.Helper()
	d, err := NewDataset([]Attribute{{Name: "color"}}, []string{"benign", "malicious"})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pairs {
		if err := d.Add(Instance{Values: []Value{{S: p[0].(string)}}, Class: p[1].(int)}); err != nil {
			t.Fatal(err)
		}
	}
	return d
}

func colorRule(value string, class int, className string) Rule {
	return Rule{
		Conditions: []Condition{{AttrIndex: 0, AttrName: "color", Op: OpEquals, Value: value}},
		Class:      class,
		ClassName:  className,
	}
}

func TestLearnIncrementalRetainsAndGrows(t *testing.T) {
	// Prior generation knows red=malicious. New evidence: red is still
	// malicious, and a new blue=malicious pattern emerged.
	var pairs [][2]any
	for i := 0; i < 10; i++ {
		pairs = append(pairs, [2]any{"red", 1}, [2]any{"green", 0})
	}
	for i := 0; i < 6; i++ {
		pairs = append(pairs, [2]any{"blue", 1})
	}
	d := incrDataset(t, pairs)
	prior := []Rule{colorRule("red", 1, "malicious")}

	rules, err := (&Learner{}).LearnIncremental(prior, d, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) < 2 {
		t.Fatalf("got %d rules, want the retained veteran plus grown rules: %v", len(rules), rules)
	}
	// The veteran survives in first position with re-scored stats.
	if rules[0].Conditions[0].Value != "red" || rules[0].Class != 1 {
		t.Fatalf("rule 0 = %s, want retained red=malicious", rules[0].String())
	}
	if rules[0].Covered != 10 || rules[0].Errors != 0 {
		t.Fatalf("veteran re-scored to covered=%d errors=%d, want 10/0", rules[0].Covered, rules[0].Errors)
	}
	// The residual pass must explain blue.
	blue := Instance{Values: []Value{{S: "blue"}}, Class: 1}
	if cls, ok := DecisionList(rules, &blue); !ok || cls != 1 {
		t.Fatalf("blue classified (%d, %v), want (1, true)", cls, ok)
	}
}

func TestLearnIncrementalDropsDecayedRule(t *testing.T) {
	// The prior red=malicious rule decayed: red is now mostly benign.
	var pairs [][2]any
	for i := 0; i < 10; i++ {
		pairs = append(pairs, [2]any{"red", 0})
	}
	pairs = append(pairs, [2]any{"red", 1}) // 1/11 error if kept as malicious
	for i := 0; i < 5; i++ {
		pairs = append(pairs, [2]any{"black", 1})
	}
	d := incrDataset(t, pairs)
	prior := []Rule{colorRule("red", 1, "malicious")}

	rules, err := (&Learner{}).LearnIncremental(prior, d, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rules {
		if r.Class == 1 && len(r.Conditions) == 1 && r.Conditions[0].Value == "red" {
			t.Fatalf("decayed red=malicious rule retained: %s (covered %d, errors %d)", r.String(), r.Covered, r.Errors)
		}
	}
}

func TestLearnIncrementalEmptyPriorEqualsLearn(t *testing.T) {
	var pairs [][2]any
	for i := 0; i < 8; i++ {
		pairs = append(pairs, [2]any{"red", 1}, [2]any{"green", 0})
	}
	d := incrDataset(t, pairs)
	fresh, err := (&Learner{}).Learn(d)
	if err != nil {
		t.Fatal(err)
	}
	incr, err := (&Learner{}).LearnIncremental(nil, d, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(fresh) != len(incr) {
		t.Fatalf("incremental with no prior produced %d rules, fresh Learn produced %d", len(incr), len(fresh))
	}
	for i := range fresh {
		if fresh[i].String() != incr[i].String() {
			t.Fatalf("rule %d diverged: %s vs %s", i, fresh[i].String(), incr[i].String())
		}
	}
}

func TestLearnIncrementalValidation(t *testing.T) {
	if _, err := (&Learner{}).LearnIncremental(nil, nil, 0); err == nil {
		t.Error("nil dataset accepted")
	}
	d := incrDataset(t, [][2]any{{"red", 1}})
	if _, err := (&Learner{}).LearnIncremental(nil, d, -1); err == nil {
		t.Error("negative tau accepted")
	}
}
