// Package part implements the PART rule-learning algorithm (Frank &
// Witten, "Generating Accurate Rule Sets Without Global Optimization",
// ICML 1998), which the paper uses to derive human-readable file
// classification rules (Section VI-C).
//
// PART repeatedly builds a *partial* C4.5 decision tree over the
// remaining training instances, turns the leaf covering the most
// instances into a rule, removes the instances the rule covers, and
// iterates until no instances remain. Partial trees are grown by always
// expanding the lowest-entropy subset first and applying C4.5's
// pessimistic-error subtree replacement on the explored spine, so only
// the path needed for one good rule is ever materialized.
package part

import (
	"fmt"
	"math"
)

// Attribute describes one feature column.
type Attribute struct {
	Name string
	// Numeric attributes split on thresholds; nominal ones on equality.
	Numeric bool
}

// Value is one attribute value: S for nominal attributes, F for numeric.
type Value struct {
	S string
	F float64
}

// Instance is one labeled feature vector.
type Instance struct {
	Values []Value
	Class  int
	// Ref is an opaque caller reference (e.g. the file hash).
	Ref string
}

// Dataset is a fixed-schema instance collection.
type Dataset struct {
	Attrs      []Attribute
	ClassNames []string
	Instances  []Instance
}

// NewDataset validates and builds a dataset.
func NewDataset(attrs []Attribute, classNames []string) (*Dataset, error) {
	if len(attrs) == 0 {
		return nil, fmt.Errorf("part: dataset needs at least one attribute")
	}
	if len(classNames) < 2 {
		return nil, fmt.Errorf("part: dataset needs at least two classes")
	}
	return &Dataset{Attrs: attrs, ClassNames: classNames}, nil
}

// Add appends an instance after validating its shape.
func (d *Dataset) Add(inst Instance) error {
	if len(inst.Values) != len(d.Attrs) {
		return fmt.Errorf("part: instance has %d values, schema has %d attributes",
			len(inst.Values), len(d.Attrs))
	}
	if inst.Class < 0 || inst.Class >= len(d.ClassNames) {
		return fmt.Errorf("part: class %d out of range", inst.Class)
	}
	d.Instances = append(d.Instances, inst)
	return nil
}

// Len returns the instance count.
func (d *Dataset) Len() int { return len(d.Instances) }

// classCounts tallies classes over the instance indexes in idx.
func (d *Dataset) classCounts(idx []int) []int {
	counts := make([]int, len(d.ClassNames))
	for _, i := range idx {
		counts[d.Instances[i].Class]++
	}
	return counts
}

// majorityClass returns the most frequent class among idx and its count;
// ties break toward the lower class index for determinism.
func (d *Dataset) majorityClass(idx []int) (class, count int) {
	counts := d.classCounts(idx)
	best, bestN := 0, -1
	for c, n := range counts {
		if n > bestN {
			best, bestN = c, n
		}
	}
	return best, bestN
}

// entropy computes the class entropy (bits) of the subset idx.
func (d *Dataset) entropy(idx []int) float64 {
	counts := d.classCounts(idx)
	total := len(idx)
	if total == 0 {
		return 0
	}
	h := 0.0
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := float64(c) / float64(total)
		h -= p * math.Log2(p)
	}
	return h
}

// pessimisticErrors returns the C4.5 upper-confidence-bound estimate of
// the number of errors among n instances of which e are misclassified,
// at the default confidence factor 0.25 (z = 0.6925).
func pessimisticErrors(e, n int) float64 {
	if n == 0 {
		return 0
	}
	const z = 0.6925
	f := float64(e) / float64(n)
	nn := float64(n)
	z2 := z * z
	num := f + z2/(2*nn) + z*math.Sqrt(f/nn-f*f/nn+z2/(4*nn*nn))
	den := 1 + z2/nn
	return (num / den) * nn
}
