package cluster

import (
	"context"
	"fmt"
	"testing"
)

// serveBatches forwards n distinct IDs through the router and returns
// the response body each one got — the byte-identity reference for
// retransmit checks.
func serveBatches(t *testing.T, rt *Router, n int) map[string][]byte {
	t.Helper()
	bodies := make(map[string][]byte, n)
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("req-%03d", i)
		data, err := rt.Forward(context.Background(), id, []byte("batch-"+id), 0)
		if err != nil {
			t.Fatalf("forward %s: %v", id, err)
		}
		bodies[id] = data
	}
	return bodies
}

// retransmitAll replays every served ID and asserts byte-identical
// answers with zero new classifications anywhere in the fleet.
func retransmitAll(t *testing.T, rt *Router, replicas []*fakeReplica, bodies map[string][]byte) {
	t.Helper()
	before := 0
	for _, f := range replicas {
		before += f.classifiedCount()
	}
	for id, want := range bodies {
		got, err := rt.Forward(context.Background(), id, []byte("batch-"+id), 0)
		if err != nil {
			t.Fatalf("retransmit %s: %v", id, err)
		}
		if string(got) != string(want) {
			t.Fatalf("retransmit %s diverged:\n got %q\nwant %q", id, got, want)
		}
	}
	after := 0
	for _, f := range replicas {
		after += f.classifiedCount()
	}
	if after != before {
		t.Fatalf("retransmit storm re-classified %d batches", after-before)
	}
}

// TestLeaveHandsOffLedger: a planned leave drains the leaver's dedup
// history to the new ring owners before the node is forgotten, so a
// full retransmit storm afterwards re-classifies nothing.
func TestLeaveHandsOffLedger(t *testing.T) {
	replicas := []*fakeReplica{newFakeReplica(t), newFakeReplica(t), newFakeReplica(t)}
	rt := newTestRouter(t, replicas, nil)
	bodies := serveBatches(t, rt, 30)

	leaver := replicas[0]
	if err := rt.Leave(context.Background(), leaver.addr()); err != nil {
		t.Fatal(err)
	}
	if got := rt.Metrics().HandoffChunks.Load(); got == 0 {
		t.Error("leave moved no handoff chunks")
	}
	if got := rt.Metrics().HandoffEntries.Load(); got == 0 {
		t.Error("leave moved no handoff entries")
	}
	// Everything the leaver served must now answer from a survivor's
	// ledger, byte-identical, without a single re-classification.
	retransmitAll(t, rt, replicas, bodies)
	// The leaver is gone and owes nothing.
	for _, n := range rt.Status().Nodes {
		if n.Addr == leaver.addr() {
			t.Fatal("leaver still in membership after Leave")
		}
		if n.HandoffPending != 0 {
			t.Fatalf("%s has handoffPending %d after clean leave", n.Addr, n.HandoffPending)
		}
	}
}

// TestLeavePartialHandoffKeepsSource: when the transfer cannot
// complete, authority must not split — the leaver returns to rotation
// still answering for its history, with the stall visible on the
// pending gauge.
func TestLeavePartialHandoffKeepsSource(t *testing.T) {
	replicas := []*fakeReplica{newFakeReplica(t), newFakeReplica(t), newFakeReplica(t)}
	rt := newTestRouter(t, replicas, nil)
	bodies := serveBatches(t, rt, 30)

	leaver := replicas[0]
	// Every import target refuses to journal: the push exhausts its
	// retries on the first chunk.
	for _, f := range replicas[1:] {
		f.set(func(f *fakeReplica) { f.failImport = 1 << 20 })
	}
	if err := rt.Leave(context.Background(), leaver.addr()); err == nil {
		t.Fatal("Leave succeeded with every import target failing")
	}
	if got := rt.Metrics().HandoffFails.Load(); got == 0 {
		t.Error("failed handoff did not count on HandoffFails")
	}

	// The leaver must be back in rotation (degraded, in the ring) and
	// its unacked entries visible on the gauge.
	st := rt.Status()
	found := false
	for _, n := range st.Nodes {
		if n.Addr != leaver.addr() {
			continue
		}
		found = true
		if n.State != "degraded" {
			t.Fatalf("leaver state after failed handoff = %s, want degraded", n.State)
		}
		if n.HandoffPending == 0 {
			t.Error("failed handoff left handoffPending at 0")
		}
	}
	if !found {
		t.Fatal("leaver forgotten despite failed handoff")
	}
	inRing := false
	for _, addr := range rt.ring.Load().Successors("req-000") {
		if addr == leaver.addr() {
			inRing = true
		}
	}
	if !inRing {
		t.Fatal("leaver not restored to the ring after failed handoff")
	}

	// Let imports succeed again and heal the targets' breakers (opened
	// by the forced failures) so the storm routes normally.
	for _, f := range replicas[1:] {
		f.set(func(f *fakeReplica) { f.failImport = 0 })
	}
	rt.ProbeAll(context.Background())
	// The source is still authoritative: every ID answers byte-identical.
	retransmitAll(t, rt, replicas, bodies)

	// A retried Leave now completes and clears the debt.
	if err := rt.Leave(context.Background(), leaver.addr()); err != nil {
		t.Fatalf("retried Leave: %v", err)
	}
	retransmitAll(t, rt, replicas, bodies)
}

// TestEjectFlipsStickyRoutes is the sticky-cache staleness regression:
// entries pinned to a node must enter the reconciliation state the
// moment it is ejected, not linger until capacity eviction steers
// retransmits at a corpse.
func TestEjectFlipsStickyRoutes(t *testing.T) {
	replicas := []*fakeReplica{newFakeReplica(t), newFakeReplica(t), newFakeReplica(t)}
	rt := newTestRouter(t, replicas, func(o *Options) { o.EjectAfter = 1 })
	bodies := serveBatches(t, rt, 30)

	victim := replicas[0]
	pinned := make([]string, 0)
	for id := range bodies {
		if r, ok := rt.lookupRoute(id); ok && r.addr == victim.addr() {
			pinned = append(pinned, id)
		}
	}
	if len(pinned) == 0 {
		t.Fatal("no IDs pinned to the victim; test is vacuous")
	}

	victim.set(func(f *fakeReplica) { f.down = true })
	rt.ProbeAll(context.Background())
	if st := nodeStateOf(t, rt, victim.addr()); st != "ejected" {
		t.Fatalf("victim state = %s, want ejected", st)
	}

	for _, id := range pinned {
		r, ok := rt.lookupRoute(id)
		if !ok {
			t.Fatalf("route for %s vanished on eject", id)
		}
		if !r.reconciling {
			t.Fatalf("route for %s still pinned to ejected node without reconciling flag", id)
		}
	}
	// candidatesFor must not lead with the corpse: the ring successor
	// answers first.
	for _, id := range pinned {
		cands := rt.candidatesFor(id)
		if len(cands) == 0 {
			t.Fatalf("no candidates for %s", id)
		}
		if cands[0].addr == victim.addr() {
			t.Fatalf("candidates for %s still lead with the ejected node", id)
		}
	}
	// A fresh answer by a live node resolves the window for that ID.
	id := pinned[0]
	if _, err := rt.Forward(context.Background(), id, []byte("batch-"+id), 0); err != nil {
		t.Fatal(err)
	}
	if r, _ := rt.lookupRoute(id); r.reconciling {
		t.Fatal("reconciling flag survived a successful re-answer")
	}
}

func nodeStateOf(t *testing.T, rt *Router, addr string) string {
	t.Helper()
	for _, n := range rt.Status().Nodes {
		if n.Addr == addr {
			return n.State
		}
	}
	t.Fatalf("%s not in status", addr)
	return ""
}

// TestCrashReturnReconciles: a node dies with undrained history, is
// ejected, and later returns on probation. Its readmit must trigger the
// background reconciler — the returned node's journal contents are
// pulled and re-homed to the current ring owners — after which a full
// retransmit storm re-classifies nothing.
func TestCrashReturnReconciles(t *testing.T) {
	replicas := []*fakeReplica{newFakeReplica(t), newFakeReplica(t), newFakeReplica(t)}
	rt := newTestRouter(t, replicas, func(o *Options) { o.EjectAfter = 1 })
	bodies := serveBatches(t, rt, 30)

	victim := replicas[0]
	victim.set(func(f *fakeReplica) { f.down = true })
	rt.ProbeAll(context.Background())
	if st := nodeStateOf(t, rt, victim.addr()); st != "ejected" {
		t.Fatalf("victim state = %s, want ejected", st)
	}
	if pending := nodePending(t, rt, victim.addr()); pending == 0 {
		t.Error("eject left handoffPending at 0; the debt is invisible")
	}

	// Membership changes while the victim is dead: a new replica joins
	// and takes over part of the key space — including ranges whose
	// history is trapped on the victim's disk. (Rebalance can only pull
	// from live members, so those stay missing until reconciliation.)
	joiner := newFakeReplica(t)
	if err := rt.Join(joiner.addr()); err != nil {
		t.Fatal(err)
	}
	if err := rt.Rebalance(context.Background(), joiner.addr()); err != nil {
		t.Fatal(err)
	}
	replicas = append(replicas, joiner)

	// The victim returns (its ledger intact — the fake's map stands in
	// for recovery replay from the journal). The readmitting probe round
	// must reconcile: pull its export and re-home the entries the
	// four-node ring no longer assigns to it.
	victim.set(func(f *fakeReplica) { f.down = false })
	rt.ProbeAll(context.Background())
	if st := nodeStateOf(t, rt, victim.addr()); st == "ejected" {
		t.Fatal("victim not readmitted")
	}
	ring := rt.ring.Load()
	lost := 0
	for id := range bodies {
		if owner := ring.Owner(id); owner != victim.addr() {
			lost++
		}
	}
	if lost > 0 && rt.Metrics().HandoffReplayed.Load() == 0 {
		t.Error("victim lost ranges but reconciliation replayed no entries")
	}
	if pending := nodePending(t, rt, victim.addr()); pending != 0 {
		t.Fatalf("handoffPending still %d after reconcile", pending)
	}
	// One more probe round heals breakers/promotions, then the storm.
	rt.ProbeAll(context.Background())
	retransmitAll(t, rt, replicas, bodies)
}

func nodePending(t *testing.T, rt *Router, addr string) int64 {
	t.Helper()
	for _, n := range rt.Status().Nodes {
		if n.Addr == addr {
			return n.HandoffPending
		}
	}
	t.Fatalf("%s not in status", addr)
	return 0
}

// TestJoinRebalances: a joiner takes over key ranges the moment the
// ring grows, so Rebalance must hand it the history for those ranges —
// otherwise a retransmit of a remapped ID reaches a joiner that never
// saw it.
func TestJoinRebalances(t *testing.T) {
	replicas := []*fakeReplica{newFakeReplica(t), newFakeReplica(t)}
	rt := newTestRouter(t, replicas, nil)
	bodies := serveBatches(t, rt, 30)

	joiner := newFakeReplica(t)
	if err := rt.Join(joiner.addr()); err != nil {
		t.Fatal(err)
	}
	if err := rt.Rebalance(context.Background(), joiner.addr()); err != nil {
		t.Fatal(err)
	}
	replicas = append(replicas, joiner)

	// The joiner owns some of the served keys now; it must hold their
	// verdicts without ever having classified them.
	ring := rt.ring.Load()
	owned := 0
	for id := range bodies {
		if ring.Owner(id) == joiner.addr() {
			owned++
		}
	}
	if owned == 0 {
		t.Skip("ring remapped nothing to the joiner; nothing to assert")
	}
	if joiner.classifiedCount() != 0 {
		t.Fatal("joiner classified during rebalance")
	}
	retransmitAll(t, rt, replicas, bodies)
}
