package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/retry"
	"repro/internal/serve"
)

// ErrNoReplica is returned by Forward when no replica is eligible for a
// request: every candidate is ejected, leaving, or breaker-open.
var ErrNoReplica = errors.New("cluster: no eligible replica")

// NodeState is the router's view of one replica's availability.
type NodeState int32

// Node states, in decreasing order of trust. Healthy nodes are the
// primary route tier; degraded nodes serve only when no healthy
// candidate remains; ejected and leaving nodes are out of the ring.
const (
	NodeHealthy NodeState = iota
	NodeDegraded
	NodeEjected
	NodeLeaving
)

// String returns the lowercase state name.
func (s NodeState) String() string {
	switch s {
	case NodeHealthy:
		return "healthy"
	case NodeDegraded:
		return "degraded"
	case NodeEjected:
		return "ejected"
	case NodeLeaving:
		return "leaving"
	default:
		return fmt.Sprintf("state(%d)", int32(s))
	}
}

// node is the router's per-replica record. All fields are either
// immutable after construction or atomic: the data path never takes the
// router mutex.
type node struct {
	addr    string
	client  *serve.Client
	breaker *retry.Breaker

	state      atomic.Int32  // NodeState
	gen        atomic.Uint64 // last generation the replica reported
	probeFails atomic.Int32  // consecutive failed health probes
	inflight   atomic.Int64  // forwards in flight (drained on Leave)

	served   atomic.Uint64 // successful forwards answered by this node
	failed   atomic.Uint64 // forward attempts that errored on this node
	probeOK  atomic.Uint64
	probeErr atomic.Uint64

	// handoffPending counts migrating ranges this node still owes (or is
	// owed): non-zero after a partial drain or while an ejected node's
	// on-disk ledger awaits reconciliation. Exposed as the
	// longtail_handoff_pending gauge.
	handoffPending atomic.Int64
	// needsReconcile marks a node that died (ejected) with undrained
	// ledger state; the first probation readmit triggers a reconcile pull
	// before the flag clears.
	needsReconcile atomic.Bool
}

func (n *node) State() NodeState { return NodeState(n.state.Load()) }

// Options configures a Router. The zero value of every optional field
// selects a sensible default; Replicas is required.
type Options struct {
	// Replicas lists the replica addresses (host:port) forming the
	// initial ring.
	Replicas []string
	// HTTPClient is the shared transport for all replica links — the
	// decoration point for internal/faults.Transport. nil selects
	// http.DefaultClient.
	HTTPClient *http.Client
	// Retry is the per-replica client policy (used for deferred-result
	// polling and reload fan-out, not for /classify attempts — cross-node
	// failover replaces in-place retries on the forward path).
	Retry retry.Policy
	// BreakerThreshold and BreakerReset configure each node's circuit
	// breaker (defaults 3 consecutive failures, 2s reset).
	BreakerThreshold int
	BreakerReset     time.Duration
	// ProbeInterval is the active health-probe period; 0 disables the
	// background prober (ProbeAll can still be driven manually).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one health probe (default 1s).
	ProbeTimeout time.Duration
	// EjectAfter is how many consecutive probe failures eject a replica
	// from the ring (default 3). Keep it above the fault injector's
	// MaxConsecutiveFailures or chaos runs eject nodes that were only
	// unlucky.
	EjectAfter int
	// HedgeDelay launches a hedged attempt on the next ring successor
	// when the owner has not answered within this delay; 0 disables
	// hedging (failover still happens on error).
	HedgeDelay time.Duration
	// VirtualNodes is the ring positions per replica (default
	// DefaultVirtualNodes).
	VirtualNodes int
	// MaxServedRoutes bounds the sticky request-ID route cache (default
	// 65536 entries, FIFO eviction).
	MaxServedRoutes int
	// RequestIDPrefix namespaces router-generated request IDs for
	// clients that did not send one (default "router").
	RequestIDPrefix string
	// Now replaces time.Now for breaker clocks in tests.
	Now func() time.Time
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.BreakerThreshold == 0 {
		out.BreakerThreshold = 3
	}
	if out.BreakerReset == 0 {
		out.BreakerReset = 2 * time.Second
	}
	if out.ProbeTimeout == 0 {
		out.ProbeTimeout = time.Second
	}
	if out.EjectAfter == 0 {
		out.EjectAfter = 3
	}
	if out.MaxServedRoutes == 0 {
		out.MaxServedRoutes = 65536
	}
	if out.RequestIDPrefix == "" {
		out.RequestIDPrefix = "router"
	}
	return out
}

// Metrics is the router's counter set, mirrored into /metrics.
type Metrics struct {
	Requests  atomic.Uint64 // forwards attempted
	Forwarded atomic.Uint64 // forwards answered successfully
	Failover  atomic.Uint64 // extra attempts launched because one failed
	Hedged    atomic.Uint64 // extra attempts launched by the hedge timer
	NoReplica atomic.Uint64 // forwards rejected: no eligible replica
	Reloads   atomic.Uint64
	ReloadErr atomic.Uint64

	// Handoff counters: chunks/entries durably acked by importers,
	// entries replayed out of a returned node's journal during
	// reconciliation, and handoff pushes that exhausted their retries.
	HandoffChunks   atomic.Uint64
	HandoffEntries  atomic.Uint64
	HandoffReplayed atomic.Uint64
	HandoffFails    atomic.Uint64
}

// Router fronts a replica set: consistent-hash ownership, per-node
// circuit breakers, hedged failover along ring successors, active
// health probing, and generation-consistent rule distribution. The
// exactly-once story rides on the replicas' ledgers: every forward
// carries the client's X-Request-Id unchanged, and sticky routing pins
// retransmits of an accepted batch to the replica whose ledger holds
// the verdict.
type Router struct {
	opts    Options
	metrics Metrics

	// ring is the current consistent-hash ring (copy-on-write; nil never
	// stored). Readers never lock.
	ring atomic.Pointer[Ring]

	mu    sync.Mutex
	nodes map[string]*node // guarded by mu
	// advertisedGen is the rule generation the router vouches for: every
	// in-ring replica has confirmed it. Guarded by mu.
	advertisedGen uint64
	// targetGen is the highest generation any reload achieved anywhere;
	// advertisement lags it until the fleet converges. Guarded by mu.
	targetGen uint64
	// degradedReason is non-empty while advertisement is rolled back
	// (partial reload, divergent generations). Guarded by mu.
	degradedReason string
	// pendingRules is the last rule set handed to Reload, kept for
	// reconciling lagging or restarted replicas. Guarded by mu.
	pendingRules []byte

	routeMu sync.Mutex
	// routes pins request IDs to the replica that served them, so a
	// failover retransmit reaches the ledger that already holds the
	// verdict. Guarded by routeMu.
	routes map[string]stickyRoute
	// routeOrder is the FIFO eviction queue for routes. Guarded by routeMu.
	routeOrder []string

	drainMu   sync.Mutex
	drainCond *sync.Cond

	seq       atomic.Uint64
	probeStop context.CancelFunc
	probeDone chan struct{}
}

// NewRouter builds a router over opts.Replicas and runs one synchronous
// probe round so the initial ring reflects reality; if every reachable
// replica agrees on a generation it is advertised immediately. When
// opts.ProbeInterval > 0 a background prober keeps membership current
// until Close.
func NewRouter(opts Options) (*Router, error) {
	o := opts.withDefaults()
	if len(o.Replicas) == 0 {
		return nil, fmt.Errorf("cluster: no replicas configured")
	}
	rt := &Router{
		opts:   o,
		nodes:  make(map[string]*node, len(o.Replicas)),
		routes: make(map[string]stickyRoute),
	}
	rt.drainCond = sync.NewCond(&rt.drainMu)
	for _, addr := range o.Replicas {
		n, err := rt.newNode(addr)
		if err != nil {
			return nil, err
		}
		if rt.nodes[addr] != nil {
			return nil, fmt.Errorf("cluster: duplicate replica %q", addr)
		}
		rt.nodes[addr] = n
	}
	ring, err := NewRing(o.Replicas, o.VirtualNodes)
	if err != nil {
		return nil, err
	}
	rt.ring.Store(ring)

	ctx, cancel := context.WithTimeout(context.Background(), o.ProbeTimeout*time.Duration(1+len(o.Replicas)))
	rt.ProbeAll(ctx)
	cancel()

	if o.ProbeInterval > 0 {
		probeCtx, stop := context.WithCancel(context.Background())
		rt.probeStop = stop
		rt.probeDone = make(chan struct{})
		go rt.probeLoop(probeCtx)
	}
	return rt, nil
}

func (rt *Router) newNode(addr string) (*node, error) {
	if addr == "" {
		return nil, fmt.Errorf("cluster: empty replica address")
	}
	br, err := retry.NewBreaker(rt.opts.BreakerThreshold, rt.opts.BreakerReset, rt.opts.Now)
	if err != nil {
		return nil, err
	}
	return &node{
		addr: addr,
		client: &serve.Client{
			BaseURL:         "http://" + addr,
			HTTPClient:      rt.opts.HTTPClient,
			Retry:           rt.opts.Retry,
			RequestIDPrefix: rt.opts.RequestIDPrefix + "-" + addr,
		},
		breaker: br,
	}, nil
}

// Close stops the background prober.
func (rt *Router) Close() {
	if rt.probeStop != nil {
		rt.probeStop()
		<-rt.probeDone
	}
}

// NextRequestID mints a router-local request ID for clients that sent
// none. Retransmit dedup only helps callers who hold an ID across
// retries, so clients that care supply their own.
func (rt *Router) NextRequestID() string {
	return fmt.Sprintf("%s-%06d", rt.opts.RequestIDPrefix, rt.seq.Add(1))
}

// Metrics exposes the router counter set.
func (rt *Router) Metrics() *Metrics { return &rt.metrics }

// attemptResult is one replica attempt's outcome on the forward path.
type attemptResult struct {
	addr string
	data []byte
	err  error
}

// Forward routes one pre-marshaled /classify body to the replica owning
// id, failing over along ring successors on error and hedging to the
// next successor when the owner stalls past HedgeDelay. Healthy nodes
// are tried first, degraded ones only when no healthy candidate
// remains; a node whose breaker refuses admission is skipped without an
// attempt. The first success wins; its replica is pinned in the sticky
// route cache so retransmits of id reach the same ledger.
func (rt *Router) Forward(ctx context.Context, id string, body []byte, timeout time.Duration) ([]byte, error) {
	rt.metrics.Requests.Add(1)
	candidates := rt.candidatesFor(id)
	if len(candidates) == 0 {
		rt.metrics.NoReplica.Add(1)
		return nil, ErrNoReplica
	}
	// A usable pin marks the one replica whose ledger holds id's
	// verdict. Its attempt retries transient failures in place (see
	// attempt) instead of failing over: rerouting a pinned ID forfeits
	// the ledger hit and has another replica classify the retransmit
	// fresh — duplicated work and a second authority for the same ID.
	stickyAddr := ""
	if r, ok := rt.lookupRoute(id); ok && !r.reconciling {
		stickyAddr = r.addr
	}

	// Buffered to the candidate count: attempt goroutines can always
	// deliver and exit, even after the caller has returned.
	resCh := make(chan attemptResult, len(candidates))
	next := 0
	outstanding := 0
	launchNext := func() bool {
		for next < len(candidates) {
			n := candidates[next]
			next++
			if err := n.breaker.Allow(); err != nil {
				continue // breaker-open: skip without an attempt
			}
			outstanding++
			n.inflight.Add(1)
			go rt.attempt(ctx, n, id, body, timeout, n.addr == stickyAddr, resCh)
			return true
		}
		return false
	}
	if !launchNext() {
		rt.metrics.NoReplica.Add(1)
		return nil, ErrNoReplica
	}

	var hedgeC <-chan time.Time
	if rt.opts.HedgeDelay > 0 && next < len(candidates) {
		t := time.NewTimer(rt.opts.HedgeDelay)
		defer t.Stop()
		hedgeC = t.C
	}
	var firstErr error
	for outstanding > 0 {
		select {
		case res := <-resCh:
			outstanding--
			if res.err == nil {
				rt.metrics.Forwarded.Add(1)
				rt.recordRoute(id, res.addr)
				return res.data, nil
			}
			if firstErr == nil {
				firstErr = res.err
			}
			if retry.IsPermanent(res.err) {
				// The replica answered and refused (4xx): another replica
				// would refuse the same bytes the same way.
				return nil, res.err
			}
			if launchNext() {
				rt.metrics.Failover.Add(1)
			}
		case <-hedgeC:
			hedgeC = nil
			if launchNext() {
				rt.metrics.Hedged.Add(1)
			}
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	if firstErr == nil {
		firstErr = ErrNoReplica
	}
	return nil, fmt.Errorf("cluster: all replicas failed: %w", firstErr)
}

// attempt runs one replica attempt. The breaker slot taken by Allow is
// always resolved here — a lost hedge still Records, or the single-probe
// half-open admission would wedge.
//
// A sticky attempt (the replica pinned as id's ledger authority)
// additionally retries transient failures in place, bounded by the
// router's retry policy and cut short the moment the breaker opens: a
// flaky link to the pin is worth a few backoffs, because the failover
// Forward would fall back to reaches a replica without the verdict and
// classifies the retransmit fresh. A genuinely dead pin still fails
// over — its failures trip the breaker, which ends the retry loop.
func (rt *Router) attempt(ctx context.Context, n *node, id string, body []byte, timeout time.Duration, sticky bool, resCh chan<- attemptResult) {
	data, err := n.client.ClassifyRaw(ctx, id, body, timeout)
	if sticky {
		pol := rt.opts.Retry
		maxAttempts := pol.MaxAttempts
		if maxAttempts <= 0 {
			maxAttempts = retry.DefaultMaxAttempts
		}
		backoff := pol.InitialBackoff
		if backoff <= 0 {
			backoff = retry.DefaultInitialBackoff
		}
		maxBackoff := pol.MaxBackoff
		if maxBackoff <= 0 {
			maxBackoff = retry.DefaultMaxBackoff
		}
		mult := pol.Multiplier
		if mult <= 0 {
			mult = 2
		}
	retryLoop:
		for tries := 1; err != nil && !retry.IsPermanent(err) && tries < maxAttempts; tries++ {
			// Resolve the current breaker slot with this failure, then ask
			// for a new one; refusal means the pin looks dead and the
			// remaining candidates should have their chance.
			n.failed.Add(1)
			n.breaker.Record(err)
			if n.breaker.Allow() != nil {
				n.inflight.Add(-1)
				rt.drainCond.Broadcast()
				resCh <- attemptResult{addr: n.addr, err: err}
				return
			}
			t := time.NewTimer(backoff)
			select {
			case <-t.C:
				data, err = n.client.ClassifyRaw(ctx, id, body, timeout)
			case <-ctx.Done():
				t.Stop()
				err = ctx.Err()
				break retryLoop
			}
			if backoff = time.Duration(float64(backoff) * mult); backoff > maxBackoff {
				backoff = maxBackoff
			}
		}
	}
	switch {
	case err == nil:
		n.served.Add(1)
		n.breaker.Record(nil)
	case retry.IsPermanent(err):
		// The replica is healthy enough to reject bad input; only count
		// availability failures against the breaker.
		n.breaker.Record(nil)
	default:
		n.failed.Add(1)
		n.breaker.Record(err)
	}
	n.inflight.Add(-1)
	rt.drainCond.Broadcast()
	resCh <- attemptResult{addr: n.addr, data: data, err: err}
}

// stickyRoute is one sticky-cache entry. A pinned entry (reconciling
// false) names the replica whose ledger holds the ID's verdict and is
// tried first. A reconciling entry is the per-ID half of the
// reconciliation window: the pinned replica died with the verdict
// possibly only on its disk, so the pin no longer confers authority —
// retransmits go to the current ring owner, which consults whatever
// history was imported ("replay") and classifies fresh only if the
// record truly never left the dead node ("reclassify"). The entry
// resolves back to pinned when any replica answers the ID or a
// reconcile/handoff re-pins it.
type stickyRoute struct {
	addr        string
	reconciling bool
}

// candidatesFor returns the attempt order for id: sticky replica first
// (if still usable and not in a reconciliation window), then healthy
// ring successors, then degraded ones as a last resort.
func (rt *Router) candidatesFor(id string) []*node {
	ring := rt.ring.Load()
	succ := ring.Successors(id)
	sticky, hasSticky := rt.lookupRoute(id)
	preferSticky := hasSticky && !sticky.reconciling

	rt.mu.Lock()
	defer rt.mu.Unlock()
	healthy := make([]*node, 0, len(succ))
	degraded := make([]*node, 0, 2)
	appendNode := func(addr string) {
		n := rt.nodes[addr]
		if n == nil {
			return
		}
		switch n.State() {
		case NodeHealthy:
			healthy = append(healthy, n)
		case NodeDegraded:
			degraded = append(degraded, n)
		}
	}
	if preferSticky {
		appendNode(sticky.addr)
	}
	for _, addr := range succ {
		if preferSticky && addr == sticky.addr {
			continue
		}
		appendNode(addr)
	}
	return append(healthy, degraded...)
}

// recordRoute pins id to the replica whose ledger now owns its verdict,
// resolving any reconciliation window for the ID. The cache is bounded:
// FIFO eviction at MaxServedRoutes.
func (rt *Router) recordRoute(id, addr string) {
	rt.routeMu.Lock()
	defer rt.routeMu.Unlock()
	if _, ok := rt.routes[id]; !ok {
		rt.routeOrder = append(rt.routeOrder, id)
		if len(rt.routeOrder) > rt.opts.MaxServedRoutes {
			delete(rt.routes, rt.routeOrder[0])
			rt.routeOrder = rt.routeOrder[1:]
		}
	}
	rt.routes[id] = stickyRoute{addr: addr}
}

func (rt *Router) lookupRoute(id string) (stickyRoute, bool) {
	rt.routeMu.Lock()
	defer rt.routeMu.Unlock()
	r, ok := rt.routes[id]
	return r, ok
}

// invalidateRoutes opens the reconciliation window for every sticky
// entry pinned to addr: the node left the ring (eject or leave) and a
// pin to it would steer retransmits at a corpse until capacity eviction
// aged it out. Entries flip in place rather than delete so the router
// remembers which IDs are in the window (reconcile re-pins them) and a
// later answer from any owner resolves them through recordRoute.
// Returns how many entries flipped.
func (rt *Router) invalidateRoutes(addr string) int {
	rt.routeMu.Lock()
	defer rt.routeMu.Unlock()
	flipped := 0
	for id, r := range rt.routes {
		if r.addr == addr && !r.reconciling {
			rt.routes[id] = stickyRoute{addr: r.addr, reconciling: true}
			flipped++
		}
	}
	return flipped
}

// repinRoute points an existing sticky entry at the replica that now
// durably holds the ID (handoff ack or reconcile import), closing its
// reconciliation window. IDs absent from the cache are not added: the
// ring already routes them to the importer, and growing the cache here
// would let a large handoff evict genuinely hot pins.
func (rt *Router) repinRoute(id, addr string) {
	rt.routeMu.Lock()
	defer rt.routeMu.Unlock()
	if _, ok := rt.routes[id]; ok {
		rt.routes[id] = stickyRoute{addr: addr}
	}
}

// FetchResult resolves GET /result for id across the cluster: the
// sticky replica first, then every ring successor, returning the first
// ledger hit. ErrResultPending propagates (the batch is accepted
// somewhere, still classifying); ErrUnknownRequest only when no replica
// has seen the ID.
func (rt *Router) FetchResult(ctx context.Context, id string) ([]byte, error) {
	var lastErr error = serve.ErrUnknownRequest
	for _, n := range rt.candidatesFor(id) {
		data, err := n.client.FetchResult(ctx, id)
		switch {
		case err == nil:
			return data, nil
		case errors.Is(err, serve.ErrResultPending):
			return nil, err
		case errors.Is(err, serve.ErrUnknownRequest):
			continue
		default:
			lastErr = err
		}
	}
	return nil, lastErr
}
