package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/journal"
	"repro/internal/retry"
	"repro/internal/serve"
)

// fakeReplica is a minimal stand-in for a longtaild: a dedup ledger
// keyed on X-Request-Id, a reloadable generation counter, and knobs to
// fail classification, reject reloads, hang, or go dark.
type fakeReplica struct {
	srv *httptest.Server

	mu           sync.Mutex
	gen          uint64
	healthy      bool
	down         bool
	failClassify int
	rejectReload bool
	// lifecycleState, when non-empty, answers /admin/lifecycle like a
	// replica running with -lifecycle; empty replies 404 like one without.
	lifecycleState string
	ledger         map[string]string
	classified     int
	hang           chan struct{}
	// failImport rejects that many handoff import chunks with a 500,
	// simulating an importer that cannot journal.
	failImport int
	imported   int
}

func newFakeReplica(t *testing.T) *fakeReplica {
	t.Helper()
	f := &fakeReplica{gen: 1, healthy: true, ledger: make(map[string]string)}
	f.srv = httptest.NewServer(http.HandlerFunc(f.handle))
	t.Cleanup(f.srv.Close)
	return f
}

func (f *fakeReplica) addr() string { return f.srv.Listener.Addr().String() }

func (f *fakeReplica) handle(w http.ResponseWriter, r *http.Request) {
	f.mu.Lock()
	if f.down {
		f.mu.Unlock()
		http.Error(w, "down", http.StatusServiceUnavailable)
		return
	}
	hang := f.hang
	f.mu.Unlock()
	switch r.URL.Path {
	case "/classify":
		if hang != nil {
			<-hang
		}
		f.mu.Lock()
		defer f.mu.Unlock()
		if f.failClassify > 0 {
			f.failClassify--
			http.Error(w, "induced failure", http.StatusInternalServerError)
			return
		}
		id := r.Header.Get(serve.RequestIDHeader)
		if resp, ok := f.ledger[id]; ok {
			fmt.Fprint(w, resp) // retransmit: answered from the ledger
			return
		}
		f.classified++
		resp := fmt.Sprintf("verdict:%s:%s", f.addr(), id)
		f.ledger[id] = resp
		fmt.Fprint(w, resp)
	case "/result":
		f.mu.Lock()
		defer f.mu.Unlock()
		if resp, ok := f.ledger[r.URL.Query().Get("id")]; ok {
			fmt.Fprint(w, resp)
			return
		}
		http.Error(w, "unknown request id", http.StatusNotFound)
	case "/admin/reload":
		f.mu.Lock()
		defer f.mu.Unlock()
		if f.rejectReload {
			http.Error(w, "induced reload refusal", http.StatusBadRequest)
			return
		}
		f.gen++
		json.NewEncoder(w).Encode(map[string]any{"generation": f.gen})
	case "/admin/lifecycle":
		f.mu.Lock()
		defer f.mu.Unlock()
		if f.lifecycleState == "" {
			http.NotFound(w, r)
			return
		}
		json.NewEncoder(w).Encode(map[string]any{"state": f.lifecycleState})
	case "/admin/handoff/export":
		// Same wire shape as a longtaild: the full ledger as CRC frames
		// of kind 2 (result), payload "id\n" + body.
		f.mu.Lock()
		defer f.mu.Unlock()
		ids := make([]string, 0, len(f.ledger))
		for id := range f.ledger {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		var out []byte
		for _, id := range ids {
			out = journal.AppendFrame(out, 2, append([]byte(id+"\n"), f.ledger[id]...))
		}
		w.Write(out)
	case "/admin/handoff/import":
		data, err := io.ReadAll(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		recs, tail := journal.DecodeFrames(data)
		if tail != 0 {
			http.Error(w, "damaged chunk", http.StatusInternalServerError)
			return
		}
		f.mu.Lock()
		defer f.mu.Unlock()
		if f.failImport > 0 {
			f.failImport--
			http.Error(w, "induced import failure", http.StatusInternalServerError)
			return
		}
		imported, dups := 0, 0
		for _, rec := range recs {
			idx := bytes.IndexByte(rec.Data, '\n')
			id, body := string(rec.Data[:idx]), string(rec.Data[idx+1:])
			if _, ok := f.ledger[id]; ok {
				dups++
				continue
			}
			f.ledger[id] = body
			imported++
		}
		f.imported += imported
		json.NewEncoder(w).Encode(map[string]any{"imported": imported, "duplicates": dups})
	case "/healthz":
		f.mu.Lock()
		defer f.mu.Unlock()
		status := "ok"
		if !f.healthy {
			status = "degraded"
		}
		json.NewEncoder(w).Encode(map[string]any{"status": status, "generation": f.gen})
	default:
		http.NotFound(w, r)
	}
}

func (f *fakeReplica) set(fn func(*fakeReplica)) {
	f.mu.Lock()
	defer f.mu.Unlock()
	fn(f)
}

func (f *fakeReplica) classifiedCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.classified
}

// fastPolicy never sleeps, so failure paths resolve instantly.
var fastPolicy = retry.Policy{
	MaxAttempts: 2,
	Sleep:       func(ctx context.Context, _ time.Duration) error { return ctx.Err() },
}

func newTestRouter(t *testing.T, replicas []*fakeReplica, mutate func(*Options)) *Router {
	t.Helper()
	addrs := make([]string, len(replicas))
	for i, f := range replicas {
		addrs[i] = f.addr()
	}
	opts := Options{
		Replicas:     addrs,
		Retry:        fastPolicy,
		ProbeTimeout: 2 * time.Second,
		BreakerReset: 50 * time.Millisecond,
	}
	if mutate != nil {
		mutate(&opts)
	}
	rt, err := NewRouter(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	return rt
}

func TestRouterForwardStickyDedup(t *testing.T) {
	replicas := []*fakeReplica{newFakeReplica(t), newFakeReplica(t), newFakeReplica(t)}
	rt := newTestRouter(t, replicas, nil)

	ctx := context.Background()
	first, err := rt.Forward(ctx, "req-000001", []byte("batch"), 0)
	if err != nil {
		t.Fatal(err)
	}
	// A retransmit under the same ID must be answered from the ledger of
	// the replica that served it: byte-identical, no re-classification.
	again, err := rt.Forward(ctx, "req-000001", []byte("batch"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if string(first) != string(again) {
		t.Fatalf("retransmit diverged: %q vs %q", first, again)
	}
	total := 0
	for _, f := range replicas {
		total += f.classifiedCount()
	}
	if total != 1 {
		t.Fatalf("cluster classified %d times, want 1 (dedup)", total)
	}

	// /result resolves through the cluster too.
	data, err := rt.FetchResult(ctx, "req-000001")
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(first) {
		t.Fatalf("FetchResult = %q, want %q", data, first)
	}
	if _, err := rt.FetchResult(ctx, "req-unseen"); !errors.Is(err, serve.ErrUnknownRequest) {
		t.Fatalf("FetchResult(unseen) = %v, want ErrUnknownRequest", err)
	}
}

func TestRouterFailoverOnError(t *testing.T) {
	replicas := []*fakeReplica{newFakeReplica(t), newFakeReplica(t), newFakeReplica(t)}
	rt := newTestRouter(t, replicas, nil)

	// Find the owner of this key and make it fail once.
	id := "req-failover"
	owner := rt.ring.Load().Owner(id)
	for _, f := range replicas {
		if f.addr() == owner {
			f.set(func(f *fakeReplica) { f.failClassify = 5 })
		}
	}
	data, err := rt.Forward(context.Background(), id, []byte("batch"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), owner) {
		t.Fatalf("verdict %q came from the failing owner", data)
	}
	if got := rt.Metrics().Failover.Load(); got == 0 {
		t.Error("failover counter did not move")
	}

	// The sticky route now pins the ID to the successor that answered:
	// even with the owner healthy again, a retransmit hits the ledger.
	before := 0
	for _, f := range replicas {
		before += f.classifiedCount()
	}
	again, err := rt.Forward(context.Background(), id, []byte("batch"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if string(again) != string(data) {
		t.Fatalf("post-failover retransmit diverged: %q vs %q", again, data)
	}
	after := 0
	for _, f := range replicas {
		after += f.classifiedCount()
	}
	if after != before {
		t.Fatalf("retransmit re-classified (%d -> %d)", before, after)
	}
}

func TestRouterBreakerSkipsOpenNode(t *testing.T) {
	replicas := []*fakeReplica{newFakeReplica(t), newFakeReplica(t)}
	rt := newTestRouter(t, replicas, func(o *Options) {
		o.BreakerThreshold = 2
		o.BreakerReset = time.Hour
	})
	id := "req-breaker"
	owner := rt.ring.Load().Owner(id)
	var bad *fakeReplica
	for _, f := range replicas {
		if f.addr() == owner {
			bad = f
		}
	}
	bad.set(func(f *fakeReplica) { f.failClassify = 1000 })

	// Each request ID has its own ring owner, so derive IDs the bad
	// replica actually owns — those forwards attempt it first.
	ownedID := func(tag string, k int) []string {
		ids := make([]string, 0, k)
		for i := 0; len(ids) < k; i++ {
			if cand := fmt.Sprintf("%s-%s-%d", id, tag, i); rt.ring.Load().Owner(cand) == owner {
				ids = append(ids, cand)
			}
		}
		return ids
	}

	// Enough traffic to trip the owner's breaker (2 consecutive failures).
	for _, tid := range ownedID("trip", 4) {
		if _, err := rt.Forward(context.Background(), tid, []byte("b"), 0); err != nil {
			t.Fatal(err)
		}
	}
	rt.mu.Lock()
	br := rt.nodes[owner].breaker.State()
	rt.mu.Unlock()
	if br != retry.BreakerOpen {
		t.Fatalf("owner breaker = %v, want open", br)
	}
	// With the breaker open the owner is skipped without an attempt.
	bad.set(func(f *fakeReplica) { f.failClassify = 0 })
	pre := bad.classifiedCount()
	if _, err := rt.Forward(context.Background(), ownedID("post", 1)[0], []byte("b"), 0); err != nil {
		t.Fatal(err)
	}
	if bad.classifiedCount() != pre {
		t.Error("breaker-open node still received an attempt")
	}

	// A successful health probe closes the breaker out of band — the
	// node must not stay unroutable for the rest of the 1h reset window
	// once the prober has seen it answer.
	rt.ProbeAll(context.Background())
	rt.mu.Lock()
	br = rt.nodes[owner].breaker.State()
	rt.mu.Unlock()
	if br != retry.BreakerClosed {
		t.Fatalf("owner breaker after successful probe = %v, want closed", br)
	}
	pre = bad.classifiedCount()
	if _, err := rt.Forward(context.Background(), ownedID("fresh", 1)[0], []byte("b"), 0); err != nil {
		t.Fatal(err)
	}
	if bad.classifiedCount() == pre {
		t.Error("recovered owner received no attempt after its breaker was probe-reset")
	}
}

func TestRouterHedgeOnStall(t *testing.T) {
	replicas := []*fakeReplica{newFakeReplica(t), newFakeReplica(t)}
	hang := make(chan struct{})
	defer close(hang)

	rt := newTestRouter(t, replicas, func(o *Options) {
		o.HedgeDelay = 10 * time.Millisecond
	})
	id := "req-hedge"
	owner := rt.ring.Load().Owner(id)
	for _, f := range replicas {
		if f.addr() == owner {
			f.set(func(f *fakeReplica) { f.hang = hang })
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	data, err := rt.Forward(ctx, id, []byte("batch"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), owner) {
		t.Fatalf("verdict %q came from the stalled owner", data)
	}
	if got := rt.Metrics().Hedged.Load(); got != 1 {
		t.Errorf("hedged counter = %d, want 1", got)
	}
}

func TestRouterNoReplica(t *testing.T) {
	replicas := []*fakeReplica{newFakeReplica(t)}
	rt := newTestRouter(t, replicas, nil)
	rt.mu.Lock()
	for _, n := range rt.nodes {
		n.state.Store(int32(NodeEjected))
	}
	rt.rebuildRingLocked()
	rt.mu.Unlock()
	if _, err := rt.Forward(context.Background(), "req-x", []byte("b"), 0); !errors.Is(err, ErrNoReplica) {
		t.Fatalf("Forward = %v, want ErrNoReplica", err)
	}
}

func TestRouterGenerationConsistentReload(t *testing.T) {
	replicas := []*fakeReplica{newFakeReplica(t), newFakeReplica(t), newFakeReplica(t)}
	rt := newTestRouter(t, replicas, nil)

	// Uniform reload advertises the new generation.
	gen, err := rt.Reload(context.Background(), []byte(`{"rules":[]}`))
	if err != nil {
		t.Fatal(err)
	}
	if gen != 2 {
		t.Fatalf("generation = %d, want 2", gen)
	}
	if st := rt.Status(); st.Status != "ok" || st.Generation != 2 {
		t.Fatalf("status after uniform reload = %+v", st)
	}

	// One replica refuses: the reload must NOT advance the advertised
	// generation, the router reports degraded, and the laggard is out of
	// the healthy tier.
	lag := replicas[1]
	lag.set(func(f *fakeReplica) { f.rejectReload = true })
	if _, err := rt.Reload(context.Background(), []byte(`{"rules":[]}`)); err == nil {
		t.Fatal("partial reload reported success")
	}
	st := rt.Status()
	if st.Status != "degraded" {
		t.Fatalf("status after partial reload = %q, want degraded", st.Status)
	}
	if st.Generation == st.TargetGeneration {
		t.Fatalf("advertisement %d not rolled back from target %d", st.Generation, st.TargetGeneration)
	}
	rt.mu.Lock()
	lagState := rt.nodes[lag.addr()].State()
	rt.mu.Unlock()
	if lagState != NodeDegraded {
		t.Fatalf("lagging node state = %v, want degraded", lagState)
	}

	// Recovery: the replica accepts reloads again; the probe round
	// reconciles it to the target generation and re-advertises.
	lag.set(func(f *fakeReplica) { f.rejectReload = false })
	rt.ProbeAll(context.Background())
	st = rt.Status()
	if st.Status != "ok" || st.Generation != st.TargetGeneration {
		t.Fatalf("status after reconciliation = %+v, want ok at target", st)
	}
}

func TestRouterProbeEjectsAndReadmits(t *testing.T) {
	replicas := []*fakeReplica{newFakeReplica(t), newFakeReplica(t)}
	rt := newTestRouter(t, replicas, func(o *Options) { o.EjectAfter = 2 })

	dead := replicas[0]
	dead.set(func(f *fakeReplica) { f.down = true })
	rt.ProbeAll(context.Background())
	rt.ProbeAll(context.Background())
	rt.mu.Lock()
	state := rt.nodes[dead.addr()].State()
	rt.mu.Unlock()
	if state != NodeEjected {
		t.Fatalf("dead node state = %v, want ejected", state)
	}
	if got := rt.ring.Load().Len(); got != 1 {
		t.Fatalf("ring has %d members after ejection, want 1", got)
	}

	// Recovery: one good probe re-admits on probation, the next promotes.
	dead.set(func(f *fakeReplica) { f.down = false })
	rt.ProbeAll(context.Background())
	rt.ProbeAll(context.Background())
	rt.mu.Lock()
	state = rt.nodes[dead.addr()].State()
	rt.mu.Unlock()
	if state != NodeHealthy {
		t.Fatalf("recovered node state = %v, want healthy", state)
	}
	if got := rt.ring.Load().Len(); got != 2 {
		t.Fatalf("ring has %d members after re-admission, want 2", got)
	}
}

func TestRouterJoinLeaveDrain(t *testing.T) {
	replicas := []*fakeReplica{newFakeReplica(t), newFakeReplica(t)}
	rt := newTestRouter(t, []*fakeReplica{replicas[0]}, nil)

	if err := rt.Join(replicas[1].addr()); err != nil {
		t.Fatal(err)
	}
	if err := rt.Join(replicas[1].addr()); err == nil {
		t.Fatal("double join accepted")
	}
	rt.ProbeAll(context.Background())
	if got := rt.ring.Load().Len(); got != 2 {
		t.Fatalf("ring has %d members after join, want 2", got)
	}

	// A leave with traffic in flight drains before forgetting the node.
	hang := make(chan struct{})
	replicas[0].set(func(f *fakeReplica) { f.hang = hang })
	id := ""
	for i := 0; ; i++ {
		id = fmt.Sprintf("req-drain-%d", i)
		if rt.ring.Load().Owner(id) == replicas[0].addr() {
			break
		}
	}
	fwdDone := make(chan error, 1)
	go func() {
		_, err := rt.Forward(context.Background(), id, []byte("b"), 0)
		fwdDone <- err
	}()
	// Wait for the forward to be in flight on the hanging replica.
	for {
		rt.mu.Lock()
		inflight := rt.nodes[replicas[0].addr()].inflight.Load()
		rt.mu.Unlock()
		if inflight > 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}

	leaveDone := make(chan error, 1)
	go func() { leaveDone <- rt.Leave(context.Background(), replicas[0].addr()) }()
	select {
	case err := <-leaveDone:
		t.Fatalf("Leave returned %v before the in-flight forward drained", err)
	case <-time.After(30 * time.Millisecond):
	}
	close(hang)
	if err := <-leaveDone; err != nil {
		t.Fatal(err)
	}
	if err := <-fwdDone; err != nil {
		t.Fatalf("in-flight forward failed during drain: %v", err)
	}
	if got := rt.ring.Load().Len(); got != 1 {
		t.Fatalf("ring has %d members after leave, want 1", got)
	}
	if err := rt.Leave(context.Background(), replicas[0].addr()); err == nil {
		t.Fatal("leave of a non-member accepted")
	}
}

func TestRouterHandlerWireProtocol(t *testing.T) {
	replicas := []*fakeReplica{newFakeReplica(t), newFakeReplica(t)}
	rt := newTestRouter(t, replicas, nil)
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	// A serve.Client pointed at the router speaks the same protocol it
	// speaks to a single replica.
	req, err := http.NewRequest(http.MethodPost, front.URL+"/classify", strings.NewReader("batch"))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(serve.RequestIDHeader, "req-wire-1")
	resp, err := front.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body := make([]byte, 256)
	n, _ := resp.Body.Read(body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /classify = %s", resp.Status)
	}
	if !strings.HasPrefix(string(body[:n]), "verdict:") {
		t.Fatalf("unexpected body %q", body[:n])
	}

	hresp, err := front.Client().Get(front.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var st Status
	if err := json.NewDecoder(hresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if len(st.Nodes) != 2 || st.Status != "ok" {
		t.Fatalf("healthz = %+v", st)
	}

	mresp, err := front.Client().Get(front.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	metrics := string(raw)
	for _, want := range []string{"longtail_node_state{", "longtail_failover_total", "longtail_hedged_total", "longtail_probe_total{", "longtail_breaker_state{"} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %s", want)
		}
	}
}

func TestRouterLifecycleAggregation(t *testing.T) {
	replicas := []*fakeReplica{newFakeReplica(t), newFakeReplica(t), newFakeReplica(t)}
	replicas[0].set(func(f *fakeReplica) { f.lifecycleState = "shadowing" })
	replicas[1].set(func(f *fakeReplica) { f.lifecycleState = "idle" })
	// replicas[2] runs without -lifecycle: its slot must carry the error
	// rather than vanish from the aggregate.
	rt := newTestRouter(t, replicas, nil)
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	resp, err := front.Client().Get(front.URL + "/admin/lifecycle")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /admin/lifecycle = %s", resp.Status)
	}
	var doc struct {
		Generation       uint64                    `json:"generation"`
		TargetGeneration uint64                    `json:"targetGeneration"`
		Status           string                    `json:"status"`
		Nodes            map[string]map[string]any `json:"nodes"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Nodes) != 3 {
		t.Fatalf("aggregate covers %d nodes, want 3", len(doc.Nodes))
	}
	if got := doc.Nodes[replicas[0].addr()]["state"]; got != "shadowing" {
		t.Fatalf("node 0 state = %v, want shadowing", got)
	}
	if got := doc.Nodes[replicas[1].addr()]["state"]; got != "idle" {
		t.Fatalf("node 1 state = %v, want idle", got)
	}
	if _, ok := doc.Nodes[replicas[2].addr()]["error"]; !ok {
		t.Fatalf("node 2 (no lifecycle) = %v, want error entry", doc.Nodes[replicas[2].addr()])
	}
	if doc.Generation != 1 || doc.Status != "ok" {
		t.Fatalf("aggregate generation/status = %d/%s, want 1/ok", doc.Generation, doc.Status)
	}

	if presp, err := http.Post(front.URL+"/admin/lifecycle", "application/json", strings.NewReader("{}")); err != nil {
		t.Fatal(err)
	} else {
		presp.Body.Close()
		if presp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("POST /admin/lifecycle = %s, want 405", presp.Status)
		}
	}
}
