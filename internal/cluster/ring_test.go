package cluster

import (
	"fmt"
	"testing"
)

func TestNewRingValidation(t *testing.T) {
	if _, err := NewRing([]string{"a", "a"}, 8); err == nil {
		t.Error("duplicate address accepted")
	}
	if _, err := NewRing([]string{""}, 8); err == nil {
		t.Error("empty address accepted")
	}
	if _, err := NewRing([]string{"a"}, -1); err == nil {
		t.Error("negative vnodes accepted")
	}
}

func TestRingEmpty(t *testing.T) {
	r, err := NewRing(nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Owner("k"); got != "" {
		t.Errorf("Owner on empty ring = %q, want empty", got)
	}
	if got := r.Successors("k"); got != nil {
		t.Errorf("Successors on empty ring = %v, want nil", got)
	}
}

func testAddrs(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("10.0.0.%d:8787", i+1)
	}
	return out
}

func TestRingOwnerDeterministicAndBalanced(t *testing.T) {
	addrs := testAddrs(3)
	r, err := NewRing(addrs, 0)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewRing([]string{addrs[2], addrs[0], addrs[1]}, 0)
	if err != nil {
		t.Fatal(err)
	}

	counts := make(map[string]int, len(addrs))
	const keys = 10000
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("req-%06d", i)
		owner := r.Owner(key)
		if owner == "" {
			t.Fatal("no owner")
		}
		if got := r2.Owner(key); got != owner {
			t.Fatalf("owner depends on input order: %q vs %q", owner, got)
		}
		counts[owner]++
	}
	// With 64 vnodes per member, no replica should stray too far from the
	// fair share keys/3 — the balance virtual nodes exist to provide.
	for addr, n := range counts {
		if n < keys/3/2 || n > keys/3*2 {
			t.Errorf("replica %s owns %d of %d keys; want within [%d, %d]", addr, n, keys, keys/6, keys/3*2)
		}
	}
}

func TestRingSuccessorsDistinctAndComplete(t *testing.T) {
	addrs := testAddrs(5)
	r, err := NewRing(addrs, 16)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("req-%04d", i)
		succ := r.Successors(key)
		if len(succ) != len(addrs) {
			t.Fatalf("Successors(%q) has %d entries, want %d", key, len(succ), len(addrs))
		}
		if succ[0] != r.Owner(key) {
			t.Fatalf("Successors(%q)[0] = %q, Owner = %q", key, succ[0], r.Owner(key))
		}
		seen := make(map[string]bool, len(succ))
		for _, a := range succ {
			if seen[a] {
				t.Fatalf("Successors(%q) repeats %q", key, a)
			}
			seen[a] = true
		}
	}
}

func TestRingMinimalRemapOnRemoval(t *testing.T) {
	addrs := testAddrs(4)
	full, err := NewRing(addrs, 0)
	if err != nil {
		t.Fatal(err)
	}
	removed := addrs[1]
	shrunk, err := NewRing(append(append([]string{}, addrs[:1]...), addrs[2:]...), 0)
	if err != nil {
		t.Fatal(err)
	}

	const keys = 10000
	moved := 0
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("req-%06d", i)
		before, after := full.Owner(key), shrunk.Owner(key)
		if before == removed {
			// Orphaned keys must land on the key's next distinct successor
			// — that is what makes blind failover hit the right ledger.
			want := full.Successors(key)[1]
			if after != want {
				t.Fatalf("orphaned key %q moved to %q, want successor %q", key, after, want)
			}
			continue
		}
		if before != after {
			moved++
		}
	}
	if moved != 0 {
		t.Errorf("%d keys not owned by the removed node changed owner; consistent hashing should move none", moved)
	}
}
