package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/retry"
	"repro/internal/serve"
)

// Handler returns the router's HTTP surface. It speaks the same wire
// protocol as a single replica — /classify, /result, /admin/reload,
// /healthz, /metrics — so serve.Client and cmd/loadgen point at a
// router unchanged; /admin/join and /admin/leave are router-only.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/classify", rt.handleClassify)
	mux.HandleFunc("/result", rt.handleResult)
	mux.HandleFunc("/admin/reload", rt.handleReload)
	mux.HandleFunc("/admin/join", rt.handleJoin)
	mux.HandleFunc("/admin/lifecycle", rt.handleLifecycle)
	mux.HandleFunc("/admin/leave", rt.handleLeave)
	mux.HandleFunc("/healthz", rt.handleHealthz)
	mux.HandleFunc("/metrics", rt.handleMetrics)
	return mux
}

func (rt *Router) handleClassify(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(r.Body)
	if err != nil {
		http.Error(w, "read body: "+err.Error(), http.StatusBadRequest)
		return
	}
	id := r.Header.Get(serve.RequestIDHeader)
	if id == "" {
		id = rt.NextRequestID()
	}
	ctx := r.Context()
	var timeout time.Duration
	if ms := r.Header.Get(serve.TimeoutHeader); ms != "" {
		v, err := strconv.ParseInt(ms, 10, 64)
		if err != nil || v <= 0 {
			http.Error(w, "bad timeout header", http.StatusBadRequest)
			return
		}
		// Propagate the client's deadline: the router gives up when the
		// client would, and forwards the same budget to the replica so it
		// can shed work nobody is waiting for.
		timeout = time.Duration(v) * time.Millisecond
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	data, err := rt.Forward(ctx, id, body, timeout)
	if err != nil {
		writeForwardError(w, err)
		return
	}
	w.Header().Set(serve.RequestIDHeader, id)
	w.Write(data)
}

// writeForwardError maps forward-path failures onto the wire contract
// clients already retry against: 503 (retryable) for availability
// problems, the replica's own refusal for permanent ones.
func writeForwardError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrNoReplica):
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	case retry.IsPermanent(err):
		http.Error(w, err.Error(), http.StatusBadRequest)
	default:
		http.Error(w, err.Error(), http.StatusBadGateway)
	}
}

func (rt *Router) handleResult(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("id")
	if id == "" {
		http.Error(w, "missing id", http.StatusBadRequest)
		return
	}
	data, err := rt.FetchResult(r.Context(), id)
	switch {
	case err == nil:
		w.Write(data)
	case errors.Is(err, serve.ErrResultPending):
		w.WriteHeader(http.StatusNoContent)
	case errors.Is(err, serve.ErrUnknownRequest):
		http.Error(w, "unknown request id", http.StatusNotFound)
	default:
		http.Error(w, err.Error(), http.StatusBadGateway)
	}
}

func (rt *Router) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	rules, err := io.ReadAll(r.Body)
	if err != nil {
		http.Error(w, "read body: "+err.Error(), http.StatusBadRequest)
		return
	}
	gen, err := rt.Reload(r.Context(), rules)
	if err != nil {
		// 409, not 5xx: a client retry would fan out again and bump every
		// reachable replica's generation without fixing the partition.
		// The prober owns convergence from here.
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	json.NewEncoder(w).Encode(map[string]any{"generation": gen})
}

func (rt *Router) handleJoin(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	addr := r.URL.Query().Get("addr")
	if addr == "" {
		http.Error(w, "missing addr", http.StatusBadRequest)
		return
	}
	if err := rt.Join(addr); err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	// The grown ring remaps key ranges to the joiner the moment Join
	// rebuilds it; pull their ledger history over before answering so a
	// retransmit of a remapped ID finds its verdict on the new owner.
	// Best-effort: a failed rebalance leaves incumbents authoritative
	// (sticky pins unchanged) and a non-zero pending gauge.
	rebalanced := true
	if err := rt.Rebalance(r.Context(), addr); err != nil {
		rebalanced = false
	}
	json.NewEncoder(w).Encode(map[string]any{"joined": addr, "rebalanced": rebalanced})
}

func (rt *Router) handleLeave(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	addr := r.URL.Query().Get("addr")
	if addr == "" {
		http.Error(w, "missing addr", http.StatusBadRequest)
		return
	}
	if err := rt.Leave(r.Context(), addr); err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	json.NewEncoder(w).Encode(map[string]any{"left": addr})
}

// handleLifecycle aggregates the replicas' /admin/lifecycle status
// documents into one cluster view, alongside the router's own
// generation convergence — the operator's single read on "where is the
// challenger, fleet-wide". Promotion itself does not route through
// here: a cluster-scoped lifecycle manager promotes via the router's
// /admin/reload, whose generation-consistent fan-out is the only write
// path into serving.
func (rt *Router) handleLifecycle(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	st := rt.Status()
	rt.mu.Lock()
	nodes := make([]*node, 0, len(rt.nodes))
	for _, n := range rt.nodes {
		nodes = append(nodes, n)
	}
	rt.mu.Unlock()
	perNode := make(map[string]any, len(nodes))
	for _, n := range nodes {
		status, err := n.client.Lifecycle(r.Context())
		if err != nil {
			// A replica without -lifecycle (404) or unreachable: report the
			// error in place so the aggregate stays total over membership.
			perNode[n.addr] = map[string]any{"error": err.Error()}
			continue
		}
		perNode[n.addr] = status
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"generation":       st.Generation,
		"targetGeneration": st.TargetGeneration,
		"status":           st.Status,
		"nodes":            perNode,
	})
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st := rt.Status()
	if st.Status != "ok" {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	json.NewEncoder(w).Encode(st)
}

// nodeStates is the full label domain of longtail_node_state: every
// state is exported as a 0/1 gauge per node so dashboards can plot
// transitions without discovering label values.
var nodeStates = []NodeState{NodeHealthy, NodeDegraded, NodeEjected, NodeLeaving}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	st := rt.Status()
	m := &rt.metrics
	fmt.Fprintf(w, "longtail_router_requests_total %d\n", m.Requests.Load())
	fmt.Fprintf(w, "longtail_router_forwarded_total %d\n", m.Forwarded.Load())
	fmt.Fprintf(w, "longtail_failover_total %d\n", m.Failover.Load())
	fmt.Fprintf(w, "longtail_hedged_total %d\n", m.Hedged.Load())
	fmt.Fprintf(w, "longtail_router_no_replica_total %d\n", m.NoReplica.Load())
	fmt.Fprintf(w, "longtail_router_reloads_total %d\n", m.Reloads.Load())
	fmt.Fprintf(w, "longtail_router_reload_failures_total %d\n", m.ReloadErr.Load())
	fmt.Fprintf(w, "longtail_router_generation %d\n", st.Generation)
	fmt.Fprintf(w, "longtail_router_target_generation %d\n", st.TargetGeneration)
	degraded := 0
	if st.Status != "ok" {
		degraded = 1
	}
	fmt.Fprintf(w, "longtail_router_degraded %d\n", degraded)
	fmt.Fprintf(w, "longtail_handoff_chunks_total %d\n", m.HandoffChunks.Load())
	fmt.Fprintf(w, "longtail_handoff_entries_total %d\n", m.HandoffEntries.Load())
	fmt.Fprintf(w, "longtail_handoff_replayed_total %d\n", m.HandoffReplayed.Load())
	fmt.Fprintf(w, "longtail_handoff_failures_total %d\n", m.HandoffFails.Load())
	for _, n := range st.Nodes {
		for _, s := range nodeStates {
			v := 0
			if n.State == s.String() {
				v = 1
			}
			fmt.Fprintf(w, "longtail_node_state{node=%q,state=%q} %d\n", n.Addr, s.String(), v)
		}
		fmt.Fprintf(w, "longtail_node_generation{node=%q} %d\n", n.Addr, n.Generation)
		fmt.Fprintf(w, "longtail_node_served_total{node=%q} %d\n", n.Addr, n.Served)
		fmt.Fprintf(w, "longtail_node_failed_total{node=%q} %d\n", n.Addr, n.Failed)
		fmt.Fprintf(w, "longtail_node_inflight{node=%q} %d\n", n.Addr, n.Inflight)
		fmt.Fprintf(w, "longtail_probe_total{node=%q,outcome=\"ok\"} %d\n", n.Addr, n.ProbeOK)
		fmt.Fprintf(w, "longtail_probe_total{node=%q,outcome=\"error\"} %d\n", n.Addr, n.ProbeErr)
		for _, s := range []string{"closed", "open", "half-open"} {
			v := 0
			if n.Breaker == s {
				v = 1
			}
			fmt.Fprintf(w, "longtail_breaker_state{node=%q,state=%q} %d\n", n.Addr, s, v)
		}
		fmt.Fprintf(w, "longtail_breaker_trips_total{node=%q} %d\n", n.Addr, n.BreakerTrips)
		fmt.Fprintf(w, "longtail_handoff_pending{node=%q} %d\n", n.Addr, n.HandoffPending)
	}
}
