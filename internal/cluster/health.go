package cluster

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"
)

// probeLoop drives ProbeAll on the configured interval until Close.
func (rt *Router) probeLoop(ctx context.Context) {
	defer close(rt.probeDone)
	t := time.NewTicker(rt.opts.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			rt.ProbeAll(ctx)
		}
	}
}

// ProbeAll runs one health-probe round over every replica and
// re-evaluates advertisement. Safe to call manually (tests, admin
// tooling) alongside the background loop.
func (rt *Router) ProbeAll(ctx context.Context) {
	for _, n := range rt.nodeList() {
		if ctx.Err() != nil {
			return
		}
		rt.probeNode(ctx, n)
	}
	rt.mu.Lock()
	rt.maybeAdvertiseLocked()
	rt.mu.Unlock()
}

// nodeList snapshots the node set in address order.
func (rt *Router) nodeList() []*node {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	out := make([]*node, 0, len(rt.nodes))
	for _, n := range rt.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].addr < out[j].addr })
	return out
}

// probeNode runs one active health probe against n and walks its state
// machine: failures degrade then eject (at EjectAfter consecutive), a
// success re-admits an ejected node on probation (degraded), and a
// degraded node is promoted back to healthy once it reports ok at the
// fleet's target generation. Lagging replicas — partition healed,
// crash-restarted back at generation 1 — are reconciled by re-pushing
// the pending rule set, so the cluster self-heals toward generation
// consistency without operator action.
func (rt *Router) probeNode(ctx context.Context, n *node) {
	pctx, cancel := context.WithTimeout(ctx, rt.opts.ProbeTimeout)
	health, err := n.client.Health(pctx)
	cancel()

	if err != nil {
		n.probeErr.Add(1)
		fails := n.probeFails.Add(1)
		rt.mu.Lock()
		defer rt.mu.Unlock()
		switch n.State() {
		case NodeEjected, NodeLeaving:
			// Already out of the ring; nothing to demote.
		default:
			if int(fails) >= rt.opts.EjectAfter {
				n.state.Store(int32(NodeEjected))
				rt.rebuildRingLocked()
				// The node died holding ledger history nobody drained:
				// open the reconciliation window. Sticky entries pinned to
				// it flip immediately — retransmits consult the new ring
				// owners instead of a corpse — and the reconcile flag makes
				// its first probation readmit export the ranges it lost.
				n.needsReconcile.Store(true)
				n.handoffPending.Store(1)
				rt.invalidateRoutes(n.addr)
			} else {
				n.state.Store(int32(NodeDegraded))
			}
		}
		return
	}

	n.probeOK.Add(1)
	n.probeFails.Store(0)
	// A successful probe is out-of-band evidence the replica answers
	// again; close its breaker now instead of waiting out the reset
	// timeout. Without this, a just-healed node is skipped at route
	// time for up to BreakerReset — and a batch whose served ID is
	// pinned to it would fail over and be re-classified elsewhere.
	n.breaker.Reset()
	gen, _ := health["generation"].(float64)
	status, _ := health["status"].(string)
	n.gen.Store(uint64(gen))

	rt.mu.Lock()
	target := rt.targetGen
	pending := rt.pendingRules
	rt.mu.Unlock()
	if target > 0 && n.gen.Load() < target && pending != nil {
		// The replica lags the fleet (healed partition, post-crash restart
		// at generation 1): push the pending rules before letting it back
		// into the healthy tier. One push closes a one-generation gap;
		// wider gaps converge over successive probe rounds.
		if g, err := n.client.Reload(ctx, pending); err == nil {
			n.gen.Store(g)
		}
	}

	rt.mu.Lock()
	atTarget := rt.targetGen == 0 || n.gen.Load() >= rt.targetGen
	readmitted := false
	switch n.State() {
	case NodeLeaving:
		rt.mu.Unlock()
		return
	case NodeEjected:
		// Probation: back into the ring, but behind the healthy tier
		// until the next probe confirms it again.
		n.state.Store(int32(NodeDegraded))
		rt.rebuildRingLocked()
		readmitted = true
	case NodeDegraded:
		if status == "ok" && atTarget {
			n.state.Store(int32(NodeHealthy))
		}
	case NodeHealthy:
		if status != "ok" || !atTarget {
			n.state.Store(int32(NodeDegraded))
		}
	}
	rt.maybeAdvertiseLocked()
	rt.mu.Unlock()

	// A crashed node returning with undrained ledger state reconciles
	// outside rt.mu (it is network I/O against several replicas): its
	// recovery replay already rebuilt the on-disk history, this pull
	// ships the ranges it no longer owns to their current owners. Kept
	// best-effort — a failed reconcile leaves needsReconcile set and the
	// next readmit or probe retries.
	if (readmitted || n.State() != NodeEjected) && n.needsReconcile.Load() {
		_ = rt.reconcileNode(ctx, n) // flag persists on failure; next round retries
	}
}

// rebuildRingLocked recomputes the ring from nodes whose state keeps
// them in rotation. Callers hold rt.mu.
func (rt *Router) rebuildRingLocked() {
	addrs := make([]string, 0, len(rt.nodes))
	for addr, n := range rt.nodes {
		if st := n.State(); st != NodeEjected && st != NodeLeaving {
			addrs = append(addrs, addr)
		}
	}
	ring, err := NewRing(addrs, rt.opts.VirtualNodes)
	if err != nil {
		return // addresses were validated at Join; keep the old ring
	}
	rt.ring.Store(ring)
}

// maybeAdvertiseLocked moves the advertised generation forward when the
// fleet has converged: every in-ring replica healthy at the target
// generation. Callers hold rt.mu.
func (rt *Router) maybeAdvertiseLocked() {
	if rt.targetGen == 0 {
		// No reload has gone through the router yet: advertise whatever
		// uniform generation the probes discovered.
		var g uint64
		any, uniform := false, true
		for _, n := range rt.nodes {
			if st := n.State(); st == NodeEjected || st == NodeLeaving {
				continue
			}
			if !any {
				g, any = n.gen.Load(), true
			} else if n.gen.Load() != g {
				uniform = false
			}
		}
		if any && uniform {
			rt.advertisedGen = g
		}
		return
	}
	for _, n := range rt.nodes {
		st := n.State()
		if st == NodeEjected || st == NodeLeaving {
			continue
		}
		if st != NodeHealthy || n.gen.Load() != rt.targetGen {
			return
		}
	}
	rt.advertisedGen = rt.targetGen
	rt.degradedReason = ""
}

// Reload distributes a rule set to every in-rotation replica and only
// advertises the new generation once ALL of them confirm it. On partial
// failure the advertisement stays rolled back: the router reports
// degraded, the failed replicas are demoted out of the healthy tier,
// and the prober reconciles them toward the target generation as they
// recover. The returned generation is the target the fleet is
// converging on; err non-nil means it is not yet advertised.
func (rt *Router) Reload(ctx context.Context, rulesJSON []byte) (uint64, error) {
	rt.metrics.Reloads.Add(1)
	rt.mu.Lock()
	rt.pendingRules = append([]byte(nil), rulesJSON...)
	targets := make([]*node, 0, len(rt.nodes))
	for _, n := range rt.nodes {
		if st := n.State(); st != NodeEjected && st != NodeLeaving {
			targets = append(targets, n)
		}
	}
	rt.mu.Unlock()
	sort.Slice(targets, func(i, j int) bool { return targets[i].addr < targets[j].addr })
	if len(targets) == 0 {
		rt.metrics.ReloadErr.Add(1)
		return 0, fmt.Errorf("cluster: reload: %w", ErrNoReplica)
	}

	gens := make([]uint64, len(targets))
	errs := make([]error, len(targets))
	for i, n := range targets {
		gens[i], errs[i] = n.client.Reload(ctx, rulesJSON)
		if errs[i] == nil {
			n.gen.Store(gens[i])
		}
	}

	var maxGen uint64
	var failed []string
	uniform := true
	for i := range targets {
		if errs[i] != nil {
			failed = append(failed, fmt.Sprintf("%s: %v", targets[i].addr, errs[i]))
			continue
		}
		if maxGen != 0 && gens[i] != maxGen {
			uniform = false
		}
		if gens[i] > maxGen {
			maxGen = gens[i]
		}
	}

	rt.mu.Lock()
	defer rt.mu.Unlock()
	if maxGen > rt.targetGen {
		rt.targetGen = maxGen
	}
	if len(failed) == 0 && uniform {
		rt.advertisedGen = rt.targetGen
		rt.degradedReason = ""
		return rt.targetGen, nil
	}
	rt.metrics.ReloadErr.Add(1)
	// Roll back advertisement and demote every replica not at target, so
	// no verdict is served from a generation the fleet has not converged
	// on via the healthy tier.
	for i, n := range targets {
		if (errs[i] != nil || gens[i] != rt.targetGen) && n.State() == NodeHealthy {
			n.state.Store(int32(NodeDegraded))
		}
	}
	reason := "divergent generations"
	if len(failed) > 0 {
		reason = "partial reload: " + strings.Join(failed, "; ")
	}
	rt.degradedReason = reason
	return rt.targetGen, fmt.Errorf("cluster: %s", reason)
}

// Join adds a replica to the cluster. It enters on probation
// (degraded): the next probe round confirms health, reconciles its rule
// generation, and promotes it into the healthy tier — at which point
// the ring hands it its share of the key space.
func (rt *Router) Join(addr string) error {
	rt.mu.Lock()
	if rt.nodes[addr] != nil {
		rt.mu.Unlock()
		return fmt.Errorf("cluster: %s is already a member", addr)
	}
	n, err := rt.newNode(addr)
	if err != nil {
		rt.mu.Unlock()
		return err
	}
	n.state.Store(int32(NodeDegraded))
	rt.nodes[addr] = n
	rt.rebuildRingLocked()
	rt.mu.Unlock()
	return nil
}

// Leave removes a replica gracefully: it is taken out of the ring
// immediately (new traffic reroutes to ring successors), its ledger is
// handed off to the new ring owners of its keys, in-flight forwards
// drain, and only then is the node forgotten. ctx bounds both the
// handoff and the drain.
//
// The handoff must complete before the node is forgotten or its dedup
// history dies with it — a client retransmit of an ID it served would
// be silently re-classified elsewhere. If the handoff fails partway
// (targets down, ctx expired), authority must not split: the node
// returns to rotation as degraded, still answering for everything not
// yet acked by an importer, with the remainder visible as its
// longtail_handoff_pending gauge. The operator retries Leave once the
// targets recover.
func (rt *Router) Leave(ctx context.Context, addr string) error {
	rt.mu.Lock()
	n := rt.nodes[addr]
	if n == nil {
		rt.mu.Unlock()
		return fmt.Errorf("cluster: %s is not a member", addr)
	}
	n.state.Store(int32(NodeLeaving))
	rt.rebuildRingLocked()
	rt.mu.Unlock()

	if err := rt.handoffFrom(ctx, n); err != nil {
		rt.mu.Lock()
		n.state.Store(int32(NodeDegraded))
		rt.rebuildRingLocked()
		rt.mu.Unlock()
		return fmt.Errorf("cluster: leave %s: %w", addr, err)
	}
	// Every exported ID was re-pinned to its importer as chunks acked;
	// flip whatever still points at the leaver (IDs its ledger had
	// already evicted) so no retransmit chases a forgotten node.
	rt.invalidateRoutes(addr)

	stop := context.AfterFunc(ctx, rt.drainCond.Broadcast)
	defer stop()
	rt.drainMu.Lock()
	for n.inflight.Load() > 0 && ctx.Err() == nil {
		rt.drainCond.Wait()
	}
	rt.drainMu.Unlock()
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("cluster: draining %s: %w", addr, err)
	}

	rt.mu.Lock()
	delete(rt.nodes, addr)
	rt.mu.Unlock()
	return nil
}

// NodeStatus is one replica's row in the router's health report.
type NodeStatus struct {
	Addr          string `json:"addr"`
	State         string `json:"state"`
	Breaker       string `json:"breaker"`
	Generation    uint64 `json:"generation"`
	ProbeFailures int32  `json:"probeFailures"`
	Inflight      int64  `json:"inflight"`
	Served        uint64 `json:"served"`
	Failed        uint64 `json:"failed"`
	ProbeOK       uint64 `json:"probeOk"`
	ProbeErr      uint64 `json:"probeErr"`
	BreakerTrips  int64  `json:"breakerTrips"`
	// HandoffPending counts ledger entries (or, after a crash, the
	// sentinel 1 for "unknown amount") this node still owes a handoff.
	HandoffPending int64 `json:"handoffPending"`
}

// Status is the router's /healthz payload.
type Status struct {
	Status           string       `json:"status"` // "ok" or "degraded"
	Generation       uint64       `json:"generation"`
	TargetGeneration uint64       `json:"targetGeneration"`
	DegradedReason   string       `json:"degradedReason,omitempty"`
	Nodes            []NodeStatus `json:"nodes"`
}

// Status snapshots cluster health: the advertised generation, the
// convergence target, and every replica's state. The router is
// "degraded" while advertisement lags the target or no healthy replica
// remains.
func (rt *Router) Status() Status {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	out := Status{
		Status:           "ok",
		Generation:       rt.advertisedGen,
		TargetGeneration: rt.targetGen,
		DegradedReason:   rt.degradedReason,
		Nodes:            make([]NodeStatus, 0, len(rt.nodes)),
	}
	healthy := 0
	for _, n := range rt.nodes {
		st := n.State()
		if st == NodeHealthy {
			healthy++
		}
		out.Nodes = append(out.Nodes, NodeStatus{
			Addr:           n.addr,
			State:          st.String(),
			Breaker:        n.breaker.State().String(),
			Generation:     n.gen.Load(),
			ProbeFailures:  n.probeFails.Load(),
			Inflight:       n.inflight.Load(),
			Served:         n.served.Load(),
			Failed:         n.failed.Load(),
			ProbeOK:        n.probeOK.Load(),
			ProbeErr:       n.probeErr.Load(),
			BreakerTrips:   n.breaker.Trips(),
			HandoffPending: n.handoffPending.Load(),
		})
	}
	sort.Slice(out.Nodes, func(i, j int) bool { return out.Nodes[i].Addr < out.Nodes[j].Addr })
	if rt.degradedReason != "" || healthy == 0 || (rt.targetGen > 0 && rt.advertisedGen != rt.targetGen) {
		out.Status = "degraded"
		if out.DegradedReason == "" {
			out.DegradedReason = "no healthy replica"
		}
	}
	return out
}
