// Package cluster scales the single-node serving layer horizontally: a
// consistent-hash ring assigns every request to an owning replica, and a
// health-aware router forwards batches with per-node circuit breakers
// and hedged failover to ring successors. The exactly-once guarantees of
// one longtaild (journaled accepts, retransmit dedup by X-Request-Id)
// compose across the cluster because failover retries carry the same
// request ID the original attempt did: whichever replica accepted the
// batch answers the retry byte-identically from its ledger.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultVirtualNodes is how many ring positions each replica occupies
// when Options.VirtualNodes is zero. The serving engine's shard affinity
// uses a plain FNV mod over a fixed shard count; the ring generalizes
// that to a dynamic member set, and virtual nodes keep the key space
// balanced when membership is small or changes.
const DefaultVirtualNodes = 64

// Ring is an immutable consistent-hash ring over replica addresses.
// Mutation is copy-on-write: membership changes build a new Ring and
// swap it in atomically, so readers never lock.
type Ring struct {
	points []ringPoint // sorted by hash
	nodes  []string    // distinct member addresses, sorted
	vnodes int
}

type ringPoint struct {
	hash uint64
	addr string
}

// NewRing builds a ring with vnodes virtual points per address (0
// selects DefaultVirtualNodes). An empty address set is valid and yields
// a ring that owns nothing.
func NewRing(addrs []string, vnodes int) (*Ring, error) {
	if vnodes == 0 {
		vnodes = DefaultVirtualNodes
	}
	if vnodes < 1 {
		return nil, fmt.Errorf("cluster: vnodes %d must be >= 1", vnodes)
	}
	seen := make(map[string]bool, len(addrs))
	nodes := make([]string, 0, len(addrs))
	for _, a := range addrs {
		if a == "" {
			return nil, fmt.Errorf("cluster: empty replica address")
		}
		if seen[a] {
			return nil, fmt.Errorf("cluster: duplicate replica address %q", a)
		}
		seen[a] = true
		nodes = append(nodes, a)
	}
	sort.Strings(nodes)
	r := &Ring{nodes: nodes, vnodes: vnodes}
	r.points = make([]ringPoint, 0, len(nodes)*vnodes)
	for _, a := range nodes {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{hash: hashKey(fmt.Sprintf("%s#%d", a, i)), addr: a})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].addr < r.points[j].addr
	})
	return r, nil
}

// hashKey is FNV-1a 64 — the same family the engine's shard affinity
// uses — finished with a 64-bit avalanche mix. The mix matters: ring
// point labels differ only in a short numeric suffix, and raw FNV-1a
// leaves enough correlation between such near-identical inputs to skew
// key ownership badly (one of three replicas owning <10% of the space).
func hashKey(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return mix64(h.Sum64())
}

// mix64 is the murmur3 fmix64 finalizer.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Members returns the distinct member addresses in sorted order.
func (r *Ring) Members() []string {
	out := make([]string, len(r.nodes))
	copy(out, r.nodes)
	return out
}

// Len returns the number of distinct members.
func (r *Ring) Len() int { return len(r.nodes) }

// Owner returns the replica owning key: the first ring point at or after
// the key's hash, wrapping around. Empty string on an empty ring.
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	return r.points[r.search(hashKey(key))].addr
}

// Successors returns every distinct member in ring order starting from
// the owner of key — the failover candidate sequence. All callers see
// the same order for the same key, so retries converge on the same
// fallback replica and its ledger.
func (r *Ring) Successors(key string) []string {
	if len(r.points) == 0 {
		return nil
	}
	start := r.search(hashKey(key))
	out := make([]string, 0, len(r.nodes))
	seen := make(map[string]bool, len(r.nodes))
	for i := 0; i < len(r.points) && len(out) < len(r.nodes); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.addr] {
			seen[p.addr] = true
			out = append(out, p.addr)
		}
	}
	return out
}

// search returns the index of the first point with hash >= h, wrapping
// to 0 past the end.
func (r *Ring) search(h uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		return 0
	}
	return i
}
