package cluster

import (
	"bytes"
	"context"
	"fmt"
	"sort"

	"repro/internal/journal"
	"repro/internal/retry"
	"repro/internal/serve"
)

// Handoff orchestration: moving ledger history to the replicas that the
// ring says now own it, so membership churn never turns a retransmit
// into a re-classification. Three flows share the machinery here:
//
//   - planned leave: Leave drains the leaver's ledger to the new ring
//     owners (handoffFrom) before the node is forgotten;
//   - crash return: a node ejected with undrained state is flagged
//     needsReconcile, and its first probation readmit triggers
//     reconcileNode — recovery replay on the node's side already
//     rebuilt its ledger from the journal, this side exports the ranges
//     it no longer owns to their current owners;
//   - join: Rebalance pulls, from every incumbent, the history for key
//     ranges the grown ring assigns to the joiner.
//
// Authority rule, same in all three: the SOURCE stays authoritative for
// an ID until an importer's durable ack (the importer fsyncs before
// answering), after which both hold byte-identical records, so there is
// never a moment where nobody can answer and never a moment where two
// owners would answer differently. A push that exhausts its retries
// leaves the range pinned to the source — visible as a non-zero
// longtail_handoff_pending gauge — rather than splitting authority.

// handoffEntry is one ledger record in flight between replicas: the
// request ID it concerns plus the record's full journal payload, ready
// to be re-framed for the importer.
type handoffEntry struct {
	kind byte
	id   string
	data []byte
}

// decodeHandoffEntries parses an export stream (concatenated CRC
// frames) into routable entries. Any framing damage rejects the whole
// stream: the source still holds everything, re-pulling is cheap, and
// importing a prefix of a damaged stream would hide the damage.
func decodeHandoffEntries(stream []byte) ([]handoffEntry, error) {
	recs, tail := journal.DecodeFrames(stream)
	if tail != 0 {
		return nil, fmt.Errorf("cluster: handoff stream: %d trailing bytes fail CRC framing", tail)
	}
	out := make([]handoffEntry, 0, len(recs))
	for _, r := range recs {
		idx := bytes.IndexByte(r.Data, '\n')
		if idx <= 0 {
			return nil, fmt.Errorf("cluster: handoff record without id line")
		}
		out = append(out, handoffEntry{kind: r.Kind, id: string(r.Data[:idx]), data: r.Data})
	}
	return out, nil
}

// chunkEntries re-frames entries into import-sized chunks, preserving
// order. Each chunk is independently importable and idempotent, so a
// retransmitted or reordered chunk converges on the importer.
func chunkEntries(entries []handoffEntry, maxBytes int) (chunks [][]byte, counts []int) {
	var cur []byte
	n := 0
	for _, e := range entries {
		if n > 0 && len(cur)+len(e.data) > maxBytes {
			chunks = append(chunks, cur)
			counts = append(counts, n)
			cur, n = nil, 0
		}
		cur = journal.AppendFrame(cur, e.kind, e.data)
		n++
	}
	if n > 0 {
		chunks = append(chunks, cur)
		counts = append(counts, n)
	}
	return chunks, counts
}

// pullExport fetches a replica's full ledger export, retrying per the
// router policy. No breaker gating: exports are pulled from nodes that
// are leaving or freshly returned, exactly the nodes whose breakers may
// still be settling.
func (rt *Router) pullExport(ctx context.Context, n *node) ([]byte, error) {
	var stream []byte
	err := retry.Do(ctx, rt.opts.Retry, func(ctx context.Context) error {
		var err error
		stream, err = n.client.HandoffExport(ctx)
		return err
	})
	return stream, err
}

// pushChunk ships one chunk to target with backoff and breaker gating:
// a breaker-open target fails the attempt without a network call, and
// availability errors feed the breaker exactly like forward attempts.
// nil error means the target journaled and fsynced the chunk — the
// durable ack that releases the source's authority for those IDs.
func (rt *Router) pushChunk(ctx context.Context, target *node, chunk []byte) error {
	return retry.Do(ctx, rt.opts.Retry, func(ctx context.Context) error {
		if err := target.breaker.Allow(); err != nil {
			return err
		}
		_, err := target.client.HandoffImport(ctx, chunk)
		if err == nil || retry.IsPermanent(err) {
			// A permanent refusal means the target answered; only
			// availability failures count against the breaker.
			target.breaker.Record(nil)
		} else {
			target.breaker.Record(err)
		}
		return err
	})
}

// routeEntries groups entries by their current ring owner. Entries the
// ring maps back to source (reconciliation of a node that still owns
// part of its old range) need no transfer — the caller just re-pins
// them.
func (rt *Router) routeEntries(entries []handoffEntry, source string) (groups map[string][]handoffEntry, keep []handoffEntry) {
	ring := rt.ring.Load()
	groups = make(map[string][]handoffEntry)
	for _, e := range entries {
		owner := ring.Owner(e.id)
		if owner == "" || owner == source {
			keep = append(keep, e)
			continue
		}
		groups[owner] = append(groups[owner], e)
	}
	return groups, keep
}

// pushGroups transfers each owner's group and re-pins sticky routes as
// chunks ack. source.handoffPending tracks the not-yet-acked entry
// count throughout, so a partial transfer is observable the moment it
// stalls. Returns the first push error; entries already acked stay
// transferred (idempotent on retry), entries not yet acked remain the
// source's.
func (rt *Router) pushGroups(ctx context.Context, source *node, groups map[string][]handoffEntry) error {
	owners := make([]string, 0, len(groups))
	total := 0
	for addr, g := range groups {
		owners = append(owners, addr)
		total += len(g)
	}
	sort.Strings(owners)
	source.handoffPending.Store(int64(total))
	for _, addr := range owners {
		rt.mu.Lock()
		target := rt.nodes[addr]
		rt.mu.Unlock()
		if target == nil {
			rt.metrics.HandoffFails.Add(1)
			return fmt.Errorf("cluster: handoff target %s is not a member", addr)
		}
		entries := groups[addr]
		chunks, counts := chunkEntries(entries, serve.DefaultHandoffChunkBytes)
		sent := 0
		for i, chunk := range chunks {
			if err := rt.pushChunk(ctx, target, chunk); err != nil {
				rt.metrics.HandoffFails.Add(1)
				return fmt.Errorf("cluster: handoff push to %s: %w", addr, err)
			}
			rt.metrics.HandoffChunks.Add(1)
			rt.metrics.HandoffEntries.Add(uint64(counts[i]))
			source.handoffPending.Add(-int64(counts[i]))
			for _, e := range entries[sent : sent+counts[i]] {
				rt.repinRoute(e.id, addr)
			}
			sent += counts[i]
		}
	}
	return nil
}

// handoffFrom drains source's entire ledger to the current ring owners
// of its keys. The caller has already taken source out of the ring (or
// left it in, for reconciliation — self-owned entries are kept, not
// shipped).
func (rt *Router) handoffFrom(ctx context.Context, source *node) error {
	stream, err := rt.pullExport(ctx, source)
	if err != nil {
		rt.metrics.HandoffFails.Add(1)
		return fmt.Errorf("cluster: handoff export from %s: %w", source.addr, err)
	}
	entries, err := decodeHandoffEntries(stream)
	if err != nil {
		rt.metrics.HandoffFails.Add(1)
		return err
	}
	groups, keep := rt.routeEntries(entries, source.addr)
	for _, e := range keep {
		rt.repinRoute(e.id, source.addr)
	}
	return rt.pushGroups(ctx, source, groups)
}

// reconcileNode runs the background half of the reconciliation window:
// a node that crashed out of the ring has returned on probation, its
// own recovery replay has rebuilt its ledger from whatever the journal
// preserved, and this pull exports the ranges it no longer owns to
// their current owners. Entries the shrunken-then-regrown ring still
// assigns to the node are simply re-pinned. On success the node's
// pending gauge and reconcile flag clear; on failure both persist and
// the next probe round retries — sticky entries for the node stay in
// the reconciling state, so retransmits keep consulting current owners
// rather than trusting a pin that predates the crash.
func (rt *Router) reconcileNode(ctx context.Context, n *node) error {
	stream, err := rt.pullExport(ctx, n)
	if err != nil {
		rt.metrics.HandoffFails.Add(1)
		return fmt.Errorf("cluster: reconcile export from %s: %w", n.addr, err)
	}
	entries, err := decodeHandoffEntries(stream)
	if err != nil {
		rt.metrics.HandoffFails.Add(1)
		return err
	}
	groups, keep := rt.routeEntries(entries, n.addr)
	for _, e := range keep {
		rt.repinRoute(e.id, n.addr)
	}
	shipped := 0
	for _, g := range groups {
		shipped += len(g)
	}
	if err := rt.pushGroups(ctx, n, groups); err != nil {
		return err
	}
	rt.metrics.HandoffReplayed.Add(uint64(shipped))
	n.handoffPending.Store(0)
	n.needsReconcile.Store(false)
	return nil
}

// Rebalance hands the replica at addr the ledger history for key ranges
// the current ring assigns to it, pulled from every other in-rotation
// member. Run it after Join: the ring remaps keys to the joiner
// immediately, and without the transfer a retransmit of a remapped ID
// would reach a joiner that never saw it. Incumbents stay authoritative
// for everything until the joiner's acks land, so a mid-rebalance
// failure leaves a working (if unevenly pinned) cluster.
func (rt *Router) Rebalance(ctx context.Context, addr string) error {
	rt.mu.Lock()
	target := rt.nodes[addr]
	sources := make([]*node, 0, len(rt.nodes))
	for a, n := range rt.nodes {
		if a == addr {
			continue
		}
		if st := n.State(); st != NodeEjected && st != NodeLeaving {
			sources = append(sources, n)
		}
	}
	rt.mu.Unlock()
	if target == nil {
		return fmt.Errorf("cluster: %s is not a member", addr)
	}
	sort.Slice(sources, func(i, j int) bool { return sources[i].addr < sources[j].addr })
	ring := rt.ring.Load()
	var firstErr error
	for _, src := range sources {
		stream, err := rt.pullExport(ctx, src)
		if err != nil {
			rt.metrics.HandoffFails.Add(1)
			if firstErr == nil {
				firstErr = fmt.Errorf("cluster: rebalance export from %s: %w", src.addr, err)
			}
			continue
		}
		entries, err := decodeHandoffEntries(stream)
		if err != nil {
			rt.metrics.HandoffFails.Add(1)
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		migrating := entries[:0]
		for _, e := range entries {
			if ring.Owner(e.id) == addr {
				migrating = append(migrating, e)
			}
		}
		if len(migrating) == 0 {
			continue
		}
		if err := rt.pushGroups(ctx, src, map[string][]handoffEntry{addr: migrating}); err != nil {
			if firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}
