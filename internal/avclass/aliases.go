package avclass

import (
	"sort"
)

// AliasCandidate is one detected alias pair: every sample carrying Alias
// (almost) always also carries Canonical, and Canonical is the more
// frequent token.
type AliasCandidate struct {
	Alias     string
	Canonical string
	// AliasCount is how many samples carried the alias token.
	AliasCount int
	// Overlap is |samples with both| / |samples with alias|.
	Overlap float64
}

// DetectAliases reimplements AVclass's alias-detection pass: it scans
// the family-candidate tokens of a corpus of samples (each given as its
// engine→label map) and reports token pairs whose co-occurrence is
// one-sided enough that the rarer token is evidently an alias of the
// more frequent one (e.g. "zeus" → "zbot"). minCount is the minimum
// number of samples the alias token must appear on (AVclass uses 20) and
// minOverlap the required co-occurrence ratio (AVclass uses 0.94).
//
// The returned candidates are sorted by descending alias count; feed
// them back into NewLabeler via WithAliases to improve family labeling
// on the next run, which is exactly AVclass's two-phase workflow.
func (l *Labeler) DetectAliases(corpus []map[string]string, minCount int, minOverlap float64) []AliasCandidate {
	if minCount < 1 {
		minCount = 1
	}
	if minOverlap <= 0 || minOverlap > 1 {
		minOverlap = 0.94
	}
	tokenCount := make(map[string]int)
	pairCount := make(map[[2]string]int)
	for _, labels := range corpus {
		// Distinct candidate tokens for this sample.
		seen := make(map[string]struct{})
		for _, label := range labels {
			for _, tok := range l.tokenize(label) {
				seen[tok] = struct{}{}
			}
		}
		toks := make([]string, 0, len(seen))
		for t := range seen {
			toks = append(toks, t)
		}
		sort.Strings(toks)
		for _, t := range toks {
			tokenCount[t]++
		}
		for i := 0; i < len(toks); i++ {
			for j := i + 1; j < len(toks); j++ {
				pairCount[[2]string{toks[i], toks[j]}]++
			}
		}
	}
	var out []AliasCandidate
	for pair, n := range pairCount {
		a, b := pair[0], pair[1]
		// Orient: alias is the rarer token.
		alias, canonical := a, b
		if tokenCount[a] > tokenCount[b] ||
			(tokenCount[a] == tokenCount[b] && a < b) {
			alias, canonical = b, a
		}
		if tokenCount[alias] < minCount {
			continue
		}
		overlap := float64(n) / float64(tokenCount[alias])
		if overlap < minOverlap {
			continue
		}
		out = append(out, AliasCandidate{
			Alias:      alias,
			Canonical:  canonical,
			AliasCount: tokenCount[alias],
			Overlap:    overlap,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].AliasCount != out[j].AliasCount {
			return out[i].AliasCount > out[j].AliasCount
		}
		if out[i].Alias != out[j].Alias {
			return out[i].Alias < out[j].Alias
		}
		return out[i].Canonical < out[j].Canonical
	})
	return out
}

// AliasMap converts candidates into the map WithAliases consumes,
// resolving chains (a→b, b→c becomes a→c) and dropping cycles.
func AliasMap(cands []AliasCandidate) map[string]string {
	direct := make(map[string]string, len(cands))
	for _, c := range cands {
		if direct[c.Canonical] == c.Alias {
			// Would form a two-cycle; the earlier (stronger) edge wins.
			continue
		}
		if _, dup := direct[c.Alias]; !dup {
			direct[c.Alias] = c.Canonical
		}
	}
	out := make(map[string]string, len(direct))
	for alias := range direct {
		target := direct[alias]
		seen := map[string]bool{alias: true}
		for {
			next, ok := direct[target]
			if !ok || seen[target] {
				break
			}
			seen[target] = true
			target = next
		}
		if target != alias {
			out[alias] = target
		}
	}
	return out
}
