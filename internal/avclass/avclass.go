// Package avclass reimplements the core of AVclass (Sebastián et al.,
// RAID 2016), the massive malware labeling tool the paper uses to derive
// malware family names from noisy multi-engine AV labels (Section II-C,
// Figure 1).
//
// The pipeline follows the published design: per-label normalization and
// tokenization, filtering of generic and structural tokens, alias
// resolution, and a plurality vote across engines with a minimum support
// of two distinct engines. Samples with no token reaching support get no
// family — the paper reports AVclass fails to derive a family for 58% of
// its malicious samples.
package avclass

import (
	"sort"
	"strings"
)

// Labeler derives family names from AV label sets.
type Labeler struct {
	generic    map[string]struct{}
	aliases    map[string]string
	minSupport int
	minLen     int
}

// Option configures a Labeler.
type Option func(*Labeler)

// WithMinSupport overrides the minimum number of distinct engines that
// must agree on a token (default 2).
func WithMinSupport(n int) Option {
	return func(l *Labeler) {
		if n > 0 {
			l.minSupport = n
		}
	}
}

// WithAliases merges extra alias mappings (from → canonical).
func WithAliases(aliases map[string]string) Option {
	return func(l *Labeler) {
		for from, to := range aliases {
			l.aliases[strings.ToLower(from)] = strings.ToLower(to)
		}
	}
}

// WithGenericTokens merges extra tokens to treat as generic.
func WithGenericTokens(tokens []string) Option {
	return func(l *Labeler) {
		for _, t := range tokens {
			l.generic[strings.ToLower(t)] = struct{}{}
		}
	}
}

// NewLabeler builds a Labeler with the default generic-token and alias
// lists.
func NewLabeler(opts ...Option) *Labeler {
	l := &Labeler{
		generic:    make(map[string]struct{}, len(defaultGeneric)),
		aliases:    make(map[string]string, len(defaultAliases)),
		minSupport: 2,
		minLen:     4,
	}
	for _, t := range defaultGeneric {
		l.generic[t] = struct{}{}
	}
	for from, to := range defaultAliases {
		l.aliases[from] = to
	}
	for _, opt := range opts {
		opt(l)
	}
	return l
}

// defaultGeneric lists tokens that never identify a family: behaviour
// classes, platforms, packer hints, heuristic markers and grammar
// scaffolding, mirroring AVclass's generic token list.
var defaultGeneric = []string{
	"trojan", "troj", "virus", "worm", "malware", "generic", "gen",
	"agent", "application", "program", "unwanted", "potentially",
	"win32", "win64", "w32", "w64", "msil", "android", "linux", "osx",
	"downloader", "dldr", "dropper", "dropped", "injector", "backdoor",
	"bkdr", "adware", "adw", "spyware", "tspy", "spy", "ransom",
	"ransomware", "fakeav", "fakealert", "rogue", "fraudtool", "pws",
	"infostealer", "banker", "banload", "suspicious", "heuristic", "heur",
	"artemis", "variant", "behaveslike", "lookslike", "packed", "packer",
	"crypt", "cryptor", "obfuscated", "suspect", "riskware", "risktool",
	"hacktool", "keygen", "grayware", "pup", "pua", "not", "virus",
	"dangerousobject", "uds", "malicious", "trojware", "undef",
	"small", "tiny", "startpage", "proxy", "clicker", "autorun",
	"onlinegames", "gamethief", "security", "disabler", "blocker",
	"bundler", "bundled", "installer", "install", "setup", "softomate",
	"toolbar", "optional", "somoto2", "multi", "family",
}

// defaultAliases maps well-known family synonyms onto a canonical name,
// following AVclass's alias detection output.
var defaultAliases = map[string]string{
	"zeus":            "zbot",
	"zeusbot":         "zbot",
	"wsgame":          "zbot",
	"kryptik":         "zbot", // common heur alias in ground truth sets
	"sality":          "sality",
	"vobfus":          "vobfus",
	"changeup":        "vobfus",
	"vundo":           "vundo",
	"virut":           "virut",
	"virtob":          "virut",
	"fesber":          "firseria",
	"firser":          "firseria",
	"solimba":         "firseria",
	"somotoltd":       "somoto",
	"betterinstaller": "somoto",
	"installcore2":    "installcore",
	"outbrowse2":      "outbrowse",
	"cryptolock":      "cryptolocker",
	"cryptowall2":     "cryptowall",
}

// Result is the outcome of family derivation for one sample.
type Result struct {
	// Family is the derived family in lowercase, or "" when no token
	// reached the support threshold.
	Family string
	// Support is the number of distinct engines voting for Family.
	Support int
	// Tokens holds the surviving family-candidate tokens and their
	// engine support, for diagnostics.
	Tokens map[string]int
}

// HasFamily reports whether a family was derived.
func (r Result) HasFamily() bool { return r.Family != "" }

// Label derives the family for one sample given its engine→label map.
func (l *Labeler) Label(labels map[string]string) Result {
	support := make(map[string]int)
	for _, label := range labels {
		seen := make(map[string]struct{})
		for _, tok := range l.tokenize(label) {
			if _, dup := seen[tok]; dup {
				continue // count each token once per engine
			}
			seen[tok] = struct{}{}
			support[tok]++
		}
	}
	best := ""
	bestN := 0
	// Deterministic scan order: sort candidate tokens.
	tokens := make([]string, 0, len(support))
	for tok := range support {
		tokens = append(tokens, tok)
	}
	sort.Strings(tokens)
	for _, tok := range tokens {
		n := support[tok]
		if n > bestN {
			best, bestN = tok, n
		}
	}
	if bestN < l.minSupport {
		return Result{Tokens: support}
	}
	return Result{Family: best, Support: bestN, Tokens: support}
}

// tokenize normalizes one AV label into candidate family tokens.
func (l *Labeler) tokenize(label string) []string {
	lower := strings.ToLower(label)
	fields := strings.FieldsFunc(lower, func(r rune) bool {
		return !(r >= 'a' && r <= 'z' || r >= '0' && r <= '9')
	})
	var out []string
	for _, f := range fields {
		f = strings.TrimFunc(f, func(r rune) bool { return r >= '0' && r <= '9' })
		if len(f) < l.minLen {
			continue
		}
		if canon, ok := l.aliases[f]; ok {
			f = canon
		}
		if _, g := l.generic[f]; g {
			continue
		}
		out = append(out, f)
	}
	return out
}
