package avclass

import (
	"fmt"
	"testing"
)

// aliasCorpus builds samples where "oldfam" always co-occurs with
// "newfam" (newfam more frequent), plus unrelated samples.
func aliasCorpus() []map[string]string {
	var corpus []map[string]string
	for i := 0; i < 30; i++ {
		corpus = append(corpus, map[string]string{
			"EngineA": "Trojan.Oldfam",
			"EngineB": "W32.Newfam",
		})
	}
	for i := 0; i < 20; i++ {
		corpus = append(corpus, map[string]string{
			"EngineA": "Trojan.Newfam",
			"EngineB": fmt.Sprintf("W32.Otherfam%d", i%3),
		})
	}
	return corpus
}

func TestDetectAliases(t *testing.T) {
	l := NewLabeler()
	cands := l.DetectAliases(aliasCorpus(), 20, 0.94)
	found := false
	for _, c := range cands {
		if c.Alias == "oldfam" && c.Canonical == "newfam" {
			found = true
			if c.AliasCount != 30 {
				t.Errorf("alias count = %d, want 30", c.AliasCount)
			}
			if c.Overlap < 0.99 {
				t.Errorf("overlap = %v, want ~1.0", c.Overlap)
			}
		}
		if c.Alias == "newfam" {
			t.Error("the more frequent token must be the canonical one")
		}
	}
	if !found {
		t.Fatalf("oldfam->newfam not detected: %+v", cands)
	}
}

func TestDetectAliasesMinCount(t *testing.T) {
	l := NewLabeler()
	// Only 30 oldfam samples: a 40-sample minimum filters them out.
	cands := l.DetectAliases(aliasCorpus(), 40, 0.94)
	for _, c := range cands {
		if c.Alias == "oldfam" {
			t.Errorf("alias below min count survived: %+v", c)
		}
	}
}

func TestDetectAliasesOverlapThreshold(t *testing.T) {
	l := NewLabeler()
	corpus := aliasCorpus()
	// Break the co-occurrence for half the oldfam samples.
	for i := 0; i < 15; i++ {
		corpus[i] = map[string]string{"EngineA": "Trojan.Oldfam"}
	}
	cands := l.DetectAliases(corpus, 20, 0.94)
	for _, c := range cands {
		if c.Alias == "oldfam" && c.Canonical == "newfam" {
			t.Errorf("weak co-occurrence (%.2f) passed 0.94 threshold", c.Overlap)
		}
	}
}

func TestDetectAliasesDefaults(t *testing.T) {
	l := NewLabeler()
	// Invalid parameters fall back to sane defaults without panicking.
	if cands := l.DetectAliases(aliasCorpus(), 0, -1); cands == nil {
		t.Log("no candidates at default thresholds; acceptable")
	}
}

func TestAliasMapChainsAndCycles(t *testing.T) {
	m := AliasMap([]AliasCandidate{
		{Alias: "a", Canonical: "b", AliasCount: 30},
		{Alias: "b", Canonical: "c", AliasCount: 40},
		{Alias: "x", Canonical: "y", AliasCount: 10},
		{Alias: "y", Canonical: "x", AliasCount: 9}, // cycle
	})
	if m["a"] != "c" {
		t.Errorf("chain not resolved: a -> %q, want c", m["a"])
	}
	if m["b"] != "c" {
		t.Errorf("b -> %q, want c", m["b"])
	}
	// The cycle must terminate and keep a usable direction.
	if m["x"] != "y" && m["y"] != "x" {
		t.Errorf("cycle lost both directions: %v", m)
	}
}

func TestAliasWorkflowEndToEnd(t *testing.T) {
	// Phase 1: detect aliases on a corpus; phase 2: label with them.
	l := NewLabeler()
	cands := l.DetectAliases(aliasCorpus(), 20, 0.94)
	l2 := NewLabeler(WithAliases(AliasMap(cands)))
	res := l2.Label(map[string]string{
		"EngineA": "Trojan.Oldfam",
		"EngineB": "W32.Newfam",
	})
	if res.Family != "newfam" {
		t.Errorf("family = %q, want newfam (via detected alias)", res.Family)
	}
	if res.Support != 2 {
		t.Errorf("support = %d, want 2 (votes merged through alias)", res.Support)
	}
}
