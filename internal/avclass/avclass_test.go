package avclass

import (
	"testing"
)

func TestLabelZbotExample(t *testing.T) {
	// The paper's own example: three engines carry the Zbot family, one
	// is generic.
	l := NewLabeler()
	labels := map[string]string{
		"Symantec":  "Trojan.Zbot",
		"McAfee":    "Downloader-FYH!6C7411D1C043",
		"Kaspersky": "Trojan-Spy.Win32.Zbot.ruxa",
		"Microsoft": "PWS:Win32/Zbot",
	}
	got := l.Label(labels)
	if got.Family != "zbot" {
		t.Errorf("family = %q, want zbot (tokens: %v)", got.Family, got.Tokens)
	}
	if got.Support != 3 {
		t.Errorf("support = %d, want 3", got.Support)
	}
}

func TestLabelNoFamilyFromGenerics(t *testing.T) {
	l := NewLabeler()
	labels := map[string]string{
		"McAfee":    "Artemis!DEC3771868CB",
		"Kaspersky": "Trojan-Downloader.Win32.Agent.heqj",
		"Microsoft": "Trojan:Win32/Agent",
	}
	got := l.Label(labels)
	if got.HasFamily() {
		t.Errorf("expected no family from generic labels, got %q", got.Family)
	}
}

func TestLabelMinSupport(t *testing.T) {
	l := NewLabeler()
	// Only one engine names the family: below default support of 2.
	got := l.Label(map[string]string{"Symantec": "Trojan.Cryptolocker"})
	if got.HasFamily() {
		t.Errorf("single-engine family should not reach support, got %q", got.Family)
	}
	l1 := NewLabeler(WithMinSupport(1))
	got = l1.Label(map[string]string{"Symantec": "Trojan.Cryptolocker"})
	if got.Family != "cryptolocker" {
		t.Errorf("min support 1 should accept, got %q", got.Family)
	}
}

func TestLabelAliasResolution(t *testing.T) {
	l := NewLabeler()
	labels := map[string]string{
		"A": "Trojan.Zeus",
		"B": "PWS:Win32/Zbot",
	}
	got := l.Label(labels)
	if got.Family != "zbot" {
		t.Errorf("zeus should alias to zbot, got %q", got.Family)
	}
	if got.Support != 2 {
		t.Errorf("alias votes should merge: support = %d", got.Support)
	}
}

func TestLabelCustomAliasAndGenerics(t *testing.T) {
	l := NewLabeler(
		WithAliases(map[string]string{"Foobaz": "barqux"}),
		WithGenericTokens([]string{"noise"}),
	)
	got := l.Label(map[string]string{
		"A": "Trojan.Foobaz.Noise",
		"B": "W32.Barqux",
	})
	if got.Family != "barqux" {
		t.Errorf("custom alias not applied, got %q (tokens %v)", got.Family, got.Tokens)
	}
}

func TestLabelEmptyInput(t *testing.T) {
	l := NewLabeler()
	if got := l.Label(nil); got.HasFamily() {
		t.Error("nil labels produced a family")
	}
	if got := l.Label(map[string]string{}); got.HasFamily() {
		t.Error("empty labels produced a family")
	}
}

func TestLabelDigitsAndShortTokensDropped(t *testing.T) {
	l := NewLabeler()
	got := l.Label(map[string]string{
		"A": "W32.Xy.12345",
		"B": "Trojan.Xy.99",
	})
	if got.HasFamily() {
		t.Errorf("short token survived: %q", got.Family)
	}
}

func TestLabelTrailingDigitsTrimmed(t *testing.T) {
	l := NewLabeler()
	got := l.Label(map[string]string{
		"A": "Adware.Firseria2014",
		"B": "PUP.Firseria",
	})
	if got.Family != "firseria" {
		t.Errorf("trailing digits should be trimmed, got %q (tokens %v)", got.Family, got.Tokens)
	}
}

func TestLabelPluralityVote(t *testing.T) {
	l := NewLabeler()
	got := l.Label(map[string]string{
		"A": "Trojan.Alphafam",
		"B": "W32.Alphafam",
		"C": "Trojan.Betafam",
		"D": "W32.Betafam",
		"E": "Backdoor.Alphafam",
	})
	if got.Family != "alphafam" {
		t.Errorf("plurality should pick alphafam, got %q", got.Family)
	}
	if got.Support != 3 {
		t.Errorf("support = %d, want 3", got.Support)
	}
}

func TestLabelTiesBreakDeterministically(t *testing.T) {
	l := NewLabeler()
	labels := map[string]string{
		"A": "Trojan.Zetafam",
		"B": "W32.Zetafam",
		"C": "Trojan.Alphafam",
		"D": "W32.Alphafam",
	}
	first := l.Label(labels).Family
	for i := 0; i < 20; i++ {
		if got := l.Label(labels).Family; got != first {
			t.Fatalf("tie broken non-deterministically: %q vs %q", got, first)
		}
	}
	if first != "alphafam" {
		t.Errorf("tie should break to lexicographically-first token, got %q", first)
	}
}

func TestTokenCountedOncePerEngine(t *testing.T) {
	l := NewLabeler()
	// One engine repeating the token must not fake support of 2.
	got := l.Label(map[string]string{
		"A": "Gammafam.Gammafam.Gammafam",
	})
	if got.HasFamily() {
		t.Errorf("single engine reached support via repetition: %q", got.Family)
	}
}

func TestNotAVirusKasperskyStyle(t *testing.T) {
	l := NewLabeler()
	got := l.Label(map[string]string{
		"Kaspersky": "not-a-virus:AdWare.Win32.Installcore.ab",
		"ESET":      "Adware.Installcore.31",
	})
	if got.Family != "installcore" {
		t.Errorf("family = %q, want installcore (tokens %v)", got.Family, got.Tokens)
	}
}
