package avclass_test

import (
	"fmt"

	"repro/internal/avclass"
)

// The paper's Zbot example: three engines carry the family token, one is
// generic, so the plurality vote lands on zbot with support 3.
func ExampleLabeler_Label() {
	labeler := avclass.NewLabeler()
	res := labeler.Label(map[string]string{
		"Symantec":  "Trojan.Zbot",
		"McAfee":    "Downloader-FYH!6C7411D1C043",
		"Kaspersky": "Trojan-Spy.Win32.Zbot.ruxa",
		"Microsoft": "PWS:Win32/Zbot",
	})
	fmt.Println(res.Family, res.Support)
	// Output: zbot 3
}

// Alias detection feeds the second labeling phase: "zeusbot" always
// co-occurs with the more common "zbot", so it resolves to it.
func ExampleLabeler_DetectAliases() {
	labeler := avclass.NewLabeler()
	var corpus []map[string]string
	for i := 0; i < 25; i++ {
		corpus = append(corpus, map[string]string{
			"A": "Trojan.Zeusbotnetx",
			"B": "W32.Mainfam",
		})
	}
	for i := 0; i < 10; i++ {
		corpus = append(corpus, map[string]string{"A": "Trojan.Mainfam"})
	}
	cands := labeler.DetectAliases(corpus, 20, 0.94)
	for _, c := range cands {
		fmt.Printf("%s -> %s\n", c.Alias, c.Canonical)
	}
	// Output: zeusbotnetx -> mainfam
}
