package analysis

import (
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/reputation"
)

// fixture builds a tiny hand-labeled store exercising every analytic.
//
// Timeline (all January 2014 except where noted):
//
//	day 1: m1 downloads benign.exe (benign, signed GoodCo) via chrome from good.com
//	day 2: m1 downloads adw.exe   (adware, signed DualCo)  via chrome from host.com
//	day 3: m1 downloads bank.exe  (banker, unsigned)       via adw.exe from evil.ru
//	day 1: m2 downloads drop.exe  (dropper, signed MalCo, Molebox) via svchost from host.com
//	day 2: m2 downloads bank.exe  (banker)                 via drop.exe from evil.ru
//	day 4: m2 downloads unk.exe   (unknown, INNO-packed)   via chrome from host.com
//	feb 1: m3 downloads unk.exe   (unknown)                via chrome from host.com
//	day 5: m3 downloads benign.exe (benign)                via chrome from good.com
type fixtureData struct {
	store  *dataset.Store
	oracle *reputation.Oracle
}

func buildFixture(t *testing.T) fixtureData {
	t.Helper()
	store := dataset.NewStore()
	put := func(m *dataset.FileMeta) {
		t.Helper()
		if err := store.PutFile(m); err != nil {
			t.Fatal(err)
		}
	}
	put(&dataset.FileMeta{Hash: "chrome", Signer: "Google Inc", CA: "digicert",
		Category: dataset.CategoryBrowser, Browser: dataset.BrowserChrome})
	put(&dataset.FileMeta{Hash: "svchost", Signer: "Microsoft Windows", CA: "verisign",
		Category: dataset.CategoryWindows})
	put(&dataset.FileMeta{Hash: "benign.exe", Signer: "GoodCo", CA: "verisign"})
	put(&dataset.FileMeta{Hash: "adw.exe", Signer: "DualCo", CA: "thawte"})
	put(&dataset.FileMeta{Hash: "bank.exe"})
	put(&dataset.FileMeta{Hash: "drop.exe", Signer: "MalCo", CA: "thawte", Packer: "Molebox"})
	put(&dataset.FileMeta{Hash: "unk.exe", Packer: "INNO"})

	truth := map[dataset.FileHash]dataset.GroundTruth{
		"chrome":     {Label: dataset.LabelBenign},
		"svchost":    {Label: dataset.LabelBenign},
		"benign.exe": {Label: dataset.LabelBenign},
		"adw.exe":    {Label: dataset.LabelMalicious, Type: dataset.TypeAdware, Family: "zango"},
		"bank.exe":   {Label: dataset.LabelMalicious, Type: dataset.TypeBanker, Family: "zbot"},
		"drop.exe":   {Label: dataset.LabelMalicious, Type: dataset.TypeDropper, Family: "somoto"},
	}
	for h, gt := range truth {
		if err := store.SetTruth(h, gt); err != nil {
			t.Fatal(err)
		}
	}
	if err := store.SetURLVerdict("good.com", dataset.URLBenign); err != nil {
		t.Fatal(err)
	}
	if err := store.SetURLVerdict("evil.ru", dataset.URLMalicious); err != nil {
		t.Fatal(err)
	}

	day := func(d int) time.Time {
		return time.Date(2014, time.January, d, 12, 0, 0, 0, time.UTC)
	}
	ev := func(file, machine, proc, domain string, at time.Time) dataset.DownloadEvent {
		return dataset.DownloadEvent{
			File: dataset.FileHash(file), Machine: dataset.MachineID(machine),
			Process: dataset.FileHash(proc),
			URL:     "http://" + domain + "/" + file, Domain: domain,
			Time: at, Executed: true,
		}
	}
	evs := []dataset.DownloadEvent{
		ev("benign.exe", "m1", "chrome", "good.com", day(1)),
		ev("adw.exe", "m1", "chrome", "host.com", day(2)),
		ev("bank.exe", "m1", "adw.exe", "evil.ru", day(3)),
		ev("drop.exe", "m2", "svchost", "host.com", day(1)),
		ev("bank.exe", "m2", "drop.exe", "evil.ru", day(2)),
		ev("unk.exe", "m2", "chrome", "host.com", day(4)),
		ev("unk.exe", "m3", "chrome", "host.com", time.Date(2014, time.February, 1, 0, 0, 0, 0, time.UTC)),
		ev("benign.exe", "m3", "chrome", "good.com", day(5)),
	}
	for _, e := range evs {
		if err := store.AddEvent(e); err != nil {
			t.Fatal(err)
		}
	}
	store.Freeze()
	alexa, err := reputation.NewAlexaList(map[string]int{
		"good.com": 100, "host.com": 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	return fixtureData{store: store, oracle: reputation.NewOracle(alexa, nil, nil, nil, nil, nil)}
}

func newAnalyzer(t *testing.T) *Analyzer {
	t.Helper()
	fx := buildFixture(t)
	a, err := New(fx.store, fx.oracle)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestNewValidation(t *testing.T) {
	fx := buildFixture(t)
	if _, err := New(nil, fx.oracle); err == nil {
		t.Error("nil store accepted")
	}
	if _, err := New(dataset.NewStore(), fx.oracle); err == nil {
		t.Error("unfrozen store accepted")
	}
	if _, err := New(fx.store, nil); err == nil {
		t.Error("nil oracle accepted")
	}
}

func TestMonthlySummaries(t *testing.T) {
	a := newAnalyzer(t)
	rows, overall := a.MonthlySummaries()
	if len(rows) != 2 {
		t.Fatalf("months = %d, want 2", len(rows))
	}
	jan := rows[0]
	if jan.Events != 7 {
		t.Errorf("january events = %d, want 7", jan.Events)
	}
	if jan.Machines != 3 {
		t.Errorf("january machines = %d, want 3", jan.Machines)
	}
	// January files: benign.exe, adw.exe, bank.exe, drop.exe, unk.exe.
	if jan.Files.Total != 5 || jan.Files.Malicious != 3 || jan.Files.Benign != 1 || jan.Files.Unknown != 1 {
		t.Errorf("january files = %+v", jan.Files)
	}
	if overall.Events != 8 || overall.Machines != 3 {
		t.Errorf("overall = %+v", overall)
	}
	if overall.Files.Total != 5 {
		t.Errorf("overall files = %+v", overall.Files)
	}
	// URL labels: benign.exe URL on good.com benign; bank.exe on evil.ru.
	if overall.URLs.Benign != 1 || overall.URLs.Malicious != 1 {
		t.Errorf("overall URLs = %+v", overall.URLs)
	}
}

func TestLabelBreakdownShare(t *testing.T) {
	var b LabelBreakdown
	if b.Share(dataset.LabelBenign) != 0 {
		t.Error("empty breakdown share should be 0")
	}
	b.add(dataset.LabelBenign)
	b.add(dataset.LabelMalicious)
	b.add(dataset.LabelMalicious)
	b.add(dataset.LabelUnknown)
	if got := b.Share(dataset.LabelMalicious); got != 0.5 {
		t.Errorf("malicious share = %v", got)
	}
	if got := b.Share(dataset.LabelUnknown); got != 0.25 {
		t.Errorf("unknown share = %v", got)
	}
}

func TestFamilies(t *testing.T) {
	a := newAnalyzer(t)
	fs := a.Families(10)
	if fs.TotalMalicious != 3 {
		t.Errorf("TotalMalicious = %d", fs.TotalMalicious)
	}
	if fs.DistinctFamilies != 3 {
		t.Errorf("DistinctFamilies = %d", fs.DistinctFamilies)
	}
	if fs.NoFamilyShare != 0 {
		t.Errorf("NoFamilyShare = %v", fs.NoFamilyShare)
	}
	if len(fs.Top) != 3 {
		t.Errorf("Top = %v", fs.Top)
	}
}

func TestTypeBreakdown(t *testing.T) {
	a := newAnalyzer(t)
	counts, total := a.TypeBreakdown()
	if total != 3 {
		t.Errorf("total = %d", total)
	}
	if counts[dataset.TypeAdware] != 1 || counts[dataset.TypeBanker] != 1 || counts[dataset.TypeDropper] != 1 {
		t.Errorf("counts = %v", counts)
	}
}

func TestPrevalence(t *testing.T) {
	a := newAnalyzer(t)
	ps := a.Prevalence()
	if ps.All.Total() != 5 {
		t.Errorf("All total = %d", ps.All.Total())
	}
	// bank.exe and unk.exe and benign.exe have prevalence 2.
	if got := ps.ByLabel[dataset.LabelUnknown].Count(2); got != 1 {
		t.Errorf("unknown prevalence-2 count = %d", got)
	}
	if got := ps.ByLabel[dataset.LabelMalicious].Count(1); got != 2 {
		t.Errorf("malicious prevalence-1 count = %d", got)
	}
}

func TestMachinesTouchingUnknown(t *testing.T) {
	a := newAnalyzer(t)
	// m2 and m3 downloaded unk.exe; m1 did not. 2/3.
	if got := a.MachinesTouchingUnknown(); got < 0.66 || got > 0.67 {
		t.Errorf("MachinesTouchingUnknown = %v", got)
	}
}

func TestPackers(t *testing.T) {
	a := newAnalyzer(t)
	ps := a.Packers()
	// Benign files: chrome? No - only downloaded files count. benign.exe
	// unpacked -> 0/1. Malicious: drop.exe packed of 3.
	if ps.BenignPackedShare != 0 {
		t.Errorf("benign packed = %v", ps.BenignPackedShare)
	}
	if ps.MaliciousPackedShare < 0.3 || ps.MaliciousPackedShare > 0.34 {
		t.Errorf("malicious packed = %v", ps.MaliciousPackedShare)
	}
	if len(ps.MaliciousOnly) != 1 || ps.MaliciousOnly[0] != "Molebox" {
		t.Errorf("malicious-only packers = %v", ps.MaliciousOnly)
	}
}

func TestDomainPopularity(t *testing.T) {
	a := newAnalyzer(t)
	overall, benign, malicious := a.DomainPopularity(5)
	if overall[0].Key != "host.com" || overall[0].Count != 3 {
		t.Errorf("overall top = %v", overall)
	}
	if benign[0].Key != "good.com" || benign[0].Count != 2 {
		t.Errorf("benign top = %v", benign)
	}
	// malicious domains: host.com (adw m1, drop m2) = 2 machines,
	// evil.ru (bank m1, m2) = 2 machines; tie broken by name.
	if len(malicious) != 2 || malicious[0].Count != 2 {
		t.Errorf("malicious top = %v", malicious)
	}
}

func TestDomainFileCounts(t *testing.T) {
	a := newAnalyzer(t)
	benign, malicious := a.DomainFileCounts(5)
	if benign[0].Key != "good.com" || benign[0].Count != 1 {
		t.Errorf("benign = %v", benign)
	}
	if malicious[0].Key != "host.com" || malicious[0].Count != 2 {
		t.Errorf("malicious = %v (want host.com serving adw+drop)", malicious)
	}
}

func TestDomainsPerType(t *testing.T) {
	a := newAnalyzer(t)
	per := a.DomainsPerType(3)
	if per[dataset.TypeBanker][0].Key != "evil.ru" {
		t.Errorf("banker domains = %v", per[dataset.TypeBanker])
	}
	if per[dataset.TypeDropper][0].Key != "host.com" {
		t.Errorf("dropper domains = %v", per[dataset.TypeDropper])
	}
}

func TestUnknownDomains(t *testing.T) {
	a := newAnalyzer(t)
	top := a.UnknownDomains(3)
	if len(top) != 1 || top[0].Key != "host.com" || top[0].Count != 2 {
		t.Errorf("unknown domains = %v", top)
	}
}

func TestAlexaRankCDF(t *testing.T) {
	a := newAnalyzer(t)
	cdf, rankedShare := a.AlexaRankCDF(dataset.LabelBenign)
	if cdf.Len() != 1 {
		t.Errorf("benign ranked domains = %d, want 1 (good.com)", cdf.Len())
	}
	if rankedShare != 1.0 {
		t.Errorf("benign ranked share = %v", rankedShare)
	}
	_, malShare := a.AlexaRankCDF(dataset.LabelMalicious)
	// Malicious domains: host.com (ranked), evil.ru (unranked) -> 0.5.
	if malShare != 0.5 {
		t.Errorf("malicious ranked share = %v", malShare)
	}
}

func TestSigningByPopulation(t *testing.T) {
	a := newAnalyzer(t)
	rows := a.SigningByPopulation()
	byName := map[string]SigningRow{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	if r := byName["dropper"]; r.Files != 1 || r.Signed != 1 {
		t.Errorf("dropper row = %+v", r)
	}
	if r := byName["banker"]; r.Files != 1 || r.Signed != 0 {
		t.Errorf("banker row = %+v", r)
	}
	if r := byName["benign"]; r.Files != 1 || r.Signed != 1 || r.BrowserFiles != 1 {
		t.Errorf("benign row = %+v", r)
	}
	if r := byName["malicious"]; r.Files != 3 || r.Signed != 2 {
		t.Errorf("malicious row = %+v", r)
	}
	// adw.exe was downloaded via chrome: browser column populated.
	if r := byName["adware"]; r.BrowserFiles != 1 || r.BrowserSigned != 1 {
		t.Errorf("adware row = %+v", r)
	}
}

func TestSignerOverlap(t *testing.T) {
	a := newAnalyzer(t)
	rows := a.SignerOverlap()
	byName := map[string]SignerOverlapRow{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	if r := byName["malicious"]; r.Signers != 2 {
		t.Errorf("malicious signers = %+v", r)
	}
	// No signer overlap in the fixture (GoodCo benign only).
	if r := byName["malicious"]; r.CommonWithBenign != 0 {
		t.Errorf("common with benign = %+v", r)
	}
}

func TestTopSigners(t *testing.T) {
	a := newAnalyzer(t)
	mal := a.TopSigners("malicious", 5)
	if len(mal.Top) != 2 {
		t.Errorf("malicious top signers = %v", mal.Top)
	}
	if len(mal.Exclusive) != 2 || len(mal.Common) != 0 {
		t.Errorf("malicious exclusive/common = %v / %v", mal.Exclusive, mal.Common)
	}
	ben := a.TopSigners("benign", 5)
	if len(ben.Top) != 2 { // GoodCo + Google Inc? chrome is a process, not downloaded: only GoodCo
		// benign downloaded files: benign.exe (GoodCo) — chrome never downloaded.
		if len(ben.Top) != 1 {
			t.Errorf("benign top signers = %v", ben.Top)
		}
	}
	drop := a.TopSigners("dropper", 5)
	if len(drop.Top) != 1 || drop.Top[0].Key != "MalCo" {
		t.Errorf("dropper signers = %v", drop.Top)
	}
}

func TestCommonSigners(t *testing.T) {
	a := newAnalyzer(t)
	if pts := a.CommonSigners(); len(pts) != 0 {
		t.Errorf("common signers = %v, want none in fixture", pts)
	}
}

func TestBenignProcessBehavior(t *testing.T) {
	a := newAnalyzer(t)
	rows := a.BenignProcessBehavior()
	byName := map[string]ProcessBehaviorRow{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	br := byName["browser"]
	// Chrome events: benign.exe (m1, m3), adw.exe (m1), unk.exe (m2, m3).
	if br.Machines != 3 {
		t.Errorf("browser machines = %d, want 3", br.Machines)
	}
	if br.Benign != 1 || br.Malicious != 1 || br.Unknown != 1 {
		t.Errorf("browser files = %+v", br)
	}
	// Only m1 downloaded malware via browser.
	if br.InfectedMachines != 1 {
		t.Errorf("browser infected = %d", br.InfectedMachines)
	}
	win := byName["windows"]
	if win.Malicious != 1 || win.InfectedMachines != 1 {
		t.Errorf("windows row = %+v", win)
	}
	if got := win.TypeShare[dataset.TypeDropper]; got != 1.0 {
		t.Errorf("windows dropper share = %v", got)
	}
}

func TestBrowserBehavior(t *testing.T) {
	a := newAnalyzer(t)
	rows := a.BrowserBehavior()
	byName := map[string]ProcessBehaviorRow{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	chrome := byName["Chrome"]
	if chrome.Machines != 3 || chrome.Processes != 1 {
		t.Errorf("chrome row = %+v", chrome)
	}
	if byName["IE"].Machines != 0 {
		t.Errorf("IE should be empty: %+v", byName["IE"])
	}
}

func TestMaliciousProcessBehavior(t *testing.T) {
	a := newAnalyzer(t)
	rows, overall := a.MaliciousProcessBehavior()
	byName := map[string]ProcessBehaviorRow{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	adw := byName["adware"]
	if adw.Processes != 1 || adw.Malicious != 1 {
		t.Errorf("adware process row = %+v", adw)
	}
	if got := adw.TypeShare[dataset.TypeBanker]; got != 1.0 {
		t.Errorf("adware->banker share = %v", got)
	}
	drop := byName["dropper"]
	if drop.Malicious != 1 {
		t.Errorf("dropper process row = %+v", drop)
	}
	if overall.Processes != 2 || overall.Malicious != 1 {
		// bank.exe downloaded by both adw.exe and drop.exe: distinct
		// files counted once in overall.
		t.Errorf("overall = %+v", overall)
	}
}

func TestUnknownByCategory(t *testing.T) {
	a := newAnalyzer(t)
	per, total := a.UnknownByCategory()
	if total != 1 {
		t.Errorf("total = %d", total)
	}
	if per[dataset.CategoryBrowser] != 1 {
		t.Errorf("browser unknowns = %d", per[dataset.CategoryBrowser])
	}
}

func TestTransitions(t *testing.T) {
	a := newAnalyzer(t)
	// Adware: m1 anchors at adw.exe day 2, transitions to bank.exe day 3
	// (delta 1 day).
	adw := a.Transitions(SourceAdware)
	if adw.Anchored != 1 || adw.Transitioned != 1 {
		t.Fatalf("adware transitions = %+v", adw)
	}
	if got := adw.DeltaDays.Quantile(0.5); got < 0.9 || got > 1.1 {
		t.Errorf("adware delta = %v days, want ~1", got)
	}
	// Dropper: m2 anchors day 1, transitions day 2.
	drop := a.Transitions(SourceDropper)
	if drop.Anchored != 1 || drop.Transitioned != 1 {
		t.Fatalf("dropper transitions = %+v", drop)
	}
	// Benign: m1 anchors at benign.exe day 1 (no malicious before),
	// transitions to bank.exe day 3 (delta 2). m3 anchors day 5, no
	// transition. m2's first event is malicious -> disqualified.
	ben := a.Transitions(SourceBenign)
	if ben.Anchored != 2 || ben.Transitioned != 1 {
		t.Fatalf("benign transitions = %+v", ben)
	}
	if got := ben.TransitionShare(); got != 0.5 {
		t.Errorf("benign transition share = %v", got)
	}
	// PUP: nobody.
	pup := a.Transitions(SourcePUP)
	if pup.Anchored != 0 {
		t.Errorf("pup transitions = %+v", pup)
	}
}

func TestAllTransitions(t *testing.T) {
	a := newAnalyzer(t)
	all := a.AllTransitions()
	if len(all) != 4 {
		t.Fatalf("curves = %d, want 4", len(all))
	}
	if all[0].Source != SourceBenign || all[3].Source != SourceDropper {
		t.Error("curve order wrong")
	}
}

func TestTransitionSourceString(t *testing.T) {
	if SourceBenign.String() != "benign" || SourceDropper.String() != "dropper" {
		t.Error("source names wrong")
	}
}

func TestPrevalenceByType(t *testing.T) {
	a := newAnalyzer(t)
	per := a.PrevalenceByType()
	if per[dataset.TypeBanker] == nil || per[dataset.TypeBanker].Total() != 1 {
		t.Errorf("banker prevalence histogram = %+v", per[dataset.TypeBanker])
	}
	// bank.exe was downloaded by two machines.
	if got := per[dataset.TypeBanker].Count(2); got != 1 {
		t.Errorf("banker prevalence-2 count = %d", got)
	}
	if per[dataset.TypeWorm] != nil {
		t.Error("absent type should have no histogram")
	}
}

func TestEventsPerMachine(t *testing.T) {
	a := newAnalyzer(t)
	h := a.EventsPerMachine()
	if h.Total() != 3 {
		t.Errorf("machines = %d", h.Total())
	}
	// m1 has 3 events, m2 has 3, m3 has 2.
	if h.Count(3) != 2 || h.Count(2) != 1 {
		t.Errorf("histogram = %v buckets", h.Buckets())
	}
}

func TestDownloadChains(t *testing.T) {
	a := newAnalyzer(t)
	cs := a.DownloadChains()
	// Fixture chains: adw.exe (depth 1, via chrome), drop.exe (depth 1,
	// via svchost), bank.exe fetched by adw.exe/drop.exe -> depth 2.
	if cs.DepthHistogram.Total() != 3 {
		t.Fatalf("chain histogram total = %d, want 3 malicious files", cs.DepthHistogram.Total())
	}
	if got := cs.DepthHistogram.Count(1); got != 2 {
		t.Errorf("depth-1 files = %d, want 2", got)
	}
	if got := cs.DepthHistogram.Count(2); got != 1 {
		t.Errorf("depth-2 files = %d, want 1", got)
	}
	if cs.MaxDepth != 2 {
		t.Errorf("MaxDepth = %d, want 2", cs.MaxDepth)
	}
	if len(cs.DeepestChain) != 2 || cs.DeepestChain[1] != "bank.exe" {
		t.Errorf("DeepestChain = %v", cs.DeepestChain)
	}
	// The chain's first element is the ancestor dropper/adware.
	if cs.DeepestChain[0] != "adw.exe" && cs.DeepestChain[0] != "drop.exe" {
		t.Errorf("chain root = %v", cs.DeepestChain[0])
	}
}

func TestDownloadChainsGenerated(t *testing.T) {
	a := generatedAnalyzer(t)
	cs := a.DownloadChains()
	if cs.DepthHistogram.Total() == 0 {
		t.Skip("no malicious files at this scale")
	}
	// Depth 1 dominates; deeper chains exist because of follow-up
	// cascades.
	if cs.DepthHistogram.Fraction(1) < 0.5 {
		t.Errorf("depth-1 share = %v, want majority", cs.DepthHistogram.Fraction(1))
	}
	if cs.MaxDepth < 2 {
		t.Errorf("MaxDepth = %d; follow-up cascades should produce depth >= 2", cs.MaxDepth)
	}
}
