package analysis

import (
	"sort"

	"repro/internal/dataset"
	"repro/internal/stats"
)

// SigningRow is one row of Table VI: how many files of a population are
// signed, overall and among browser-downloaded files.
type SigningRow struct {
	Name          string
	Files         int
	Signed        int
	BrowserFiles  int
	BrowserSigned int
}

// SignedShare returns Signed/Files.
func (r *SigningRow) SignedShare() float64 { return stats.Ratio(r.Signed, r.Files) }

// BrowserSignedShare returns BrowserSigned/BrowserFiles.
func (r *SigningRow) BrowserSignedShare() float64 {
	return stats.Ratio(r.BrowserSigned, r.BrowserFiles)
}

// browserDownloaded returns the set of files downloaded at least once by
// a known-benign browser process.
func (a *Analyzer) browserDownloaded() map[dataset.FileHash]struct{} {
	events := a.store.Events()
	out := make(map[dataset.FileHash]struct{})
	for i := range events {
		proc := a.store.File(events[i].Process)
		if proc != nil && proc.Category == dataset.CategoryBrowser &&
			a.store.Label(events[i].Process) == dataset.LabelBenign {
			out[events[i].File] = struct{}{}
		}
	}
	return out
}

// SigningByPopulation computes Table VI: per malicious behaviour type,
// plus benign, unknown and all-malicious rows.
func (a *Analyzer) SigningByPopulation() []SigningRow {
	viaBrowser := a.browserDownloaded()
	rows := make(map[string]*SigningRow)
	rowFor := func(name string) *SigningRow {
		r, ok := rows[name]
		if !ok {
			r = &SigningRow{Name: name}
			rows[name] = r
		}
		return r
	}
	observe := func(name string, f dataset.FileHash, signed bool) {
		r := rowFor(name)
		r.Files++
		_, br := viaBrowser[f]
		if br {
			r.BrowserFiles++
		}
		if signed {
			r.Signed++
			if br {
				r.BrowserSigned++
			}
		}
	}
	for _, f := range a.store.DownloadedFiles() {
		meta := a.store.File(f)
		if meta == nil {
			continue
		}
		gt := a.store.Truth(f)
		switch gt.Label {
		case dataset.LabelBenign:
			observe("benign", f, meta.Signed())
		case dataset.LabelUnknown:
			observe("unknown", f, meta.Signed())
		case dataset.LabelMalicious:
			observe(gt.Type.String(), f, meta.Signed())
			observe("malicious", f, meta.Signed())
		}
	}
	// Deterministic row order: Table VI order.
	order := []string{}
	for _, t := range dataset.AllMalwareTypes {
		order = append(order, t.String())
	}
	order = append(order, "benign", "unknown", "malicious")
	var out []SigningRow
	for _, name := range order {
		if r, ok := rows[name]; ok {
			out = append(out, *r)
		}
	}
	return out
}

// SignerOverlapRow is one row of Table VII: distinct signers per type and
// how many also sign benign files.
type SignerOverlapRow struct {
	Name             string
	Signers          int
	CommonWithBenign int
}

// signerSets returns the signer sets per population name, computed once.
func (a *Analyzer) signerSets() map[string]map[string]struct{} {
	a.signerSetsOnce.Do(func() {
		a.signerSetsCache = a.computeSignerSets()
	})
	return a.signerSetsCache
}

func (a *Analyzer) computeSignerSets() map[string]map[string]struct{} {
	sets := make(map[string]map[string]struct{})
	add := func(name, signer string) {
		set, ok := sets[name]
		if !ok {
			set = make(map[string]struct{})
			sets[name] = set
		}
		set[signer] = struct{}{}
	}
	for _, f := range a.store.DownloadedFiles() {
		meta := a.store.File(f)
		if meta == nil || !meta.Signed() {
			continue
		}
		gt := a.store.Truth(f)
		switch gt.Label {
		case dataset.LabelBenign:
			add("benign", meta.Signer)
		case dataset.LabelMalicious:
			add(gt.Type.String(), meta.Signer)
			add("malicious", meta.Signer)
		}
	}
	return sets
}

// SignerOverlap computes Table VII.
func (a *Analyzer) SignerOverlap() []SignerOverlapRow {
	sets := a.signerSets()
	benign := sets["benign"]
	var out []SignerOverlapRow
	names := []string{}
	for _, t := range dataset.AllMalwareTypes {
		names = append(names, t.String())
	}
	names = append(names, "malicious")
	for _, name := range names {
		set, ok := sets[name]
		if !ok {
			continue
		}
		row := SignerOverlapRow{Name: name, Signers: len(set)}
		for s := range set {
			if _, shared := benign[s]; shared {
				row.CommonWithBenign++
			}
		}
		out = append(out, row)
	}
	return out
}

// TopSignerSets computes Tables VIII/IX: for the given population (a
// behaviour type name, "benign" or "malicious"), the top signers
// overall, the top signers shared with the benign population, and the
// top signers exclusive to it. Counts are per distinct signed file.
type TopSignerSets struct {
	Top       []stats.KV
	Common    []stats.KV
	Exclusive []stats.KV
}

// TopSigners computes the Table VIII/IX view for one population.
func (a *Analyzer) TopSigners(population string, topK int) TopSignerSets {
	sets := a.signerSets()
	benignSigners := sets["benign"]
	malSigners := sets["malicious"]
	all := stats.NewCounter()
	common := stats.NewCounter()
	exclusive := stats.NewCounter()
	for _, f := range a.store.DownloadedFiles() {
		meta := a.store.File(f)
		if meta == nil || !meta.Signed() {
			continue
		}
		gt := a.store.Truth(f)
		match := false
		switch population {
		case "benign":
			match = gt.Label == dataset.LabelBenign
		case "malicious":
			match = gt.Label == dataset.LabelMalicious
		default:
			match = gt.Label == dataset.LabelMalicious && gt.Type.String() == population
		}
		if !match {
			continue
		}
		all.Add(meta.Signer)
		if population == "benign" {
			// For the benign row, "exclusive" means signers that signed
			// no malicious file.
			if _, sharedWithMal := malSigners[meta.Signer]; sharedWithMal {
				common.Add(meta.Signer)
			} else {
				exclusive.Add(meta.Signer)
			}
		} else if _, shared := benignSigners[meta.Signer]; shared {
			common.Add(meta.Signer)
		} else {
			exclusive.Add(meta.Signer)
		}
	}
	return TopSignerSets{
		Top:       all.Top(topK),
		Common:    common.Top(topK),
		Exclusive: exclusive.Top(topK),
	}
}

// CommonSignerPoint is one signer in Figure 4: how many benign and
// malicious files it signed.
type CommonSignerPoint struct {
	Signer    string
	Benign    int
	Malicious int
}

// CommonSigners computes Figure 4: signers appearing on both benign and
// malicious files, with per-class file counts, sorted by total count
// descending.
func (a *Analyzer) CommonSigners() []CommonSignerPoint {
	ben := stats.NewCounter()
	mal := stats.NewCounter()
	for _, f := range a.store.DownloadedFiles() {
		meta := a.store.File(f)
		if meta == nil || !meta.Signed() {
			continue
		}
		switch a.store.Label(f) {
		case dataset.LabelBenign:
			ben.Add(meta.Signer)
		case dataset.LabelMalicious:
			mal.Add(meta.Signer)
		}
	}
	var out []CommonSignerPoint
	for _, s := range ben.Keys() {
		if mal.Count(s) > 0 {
			out = append(out, CommonSignerPoint{
				Signer:    s,
				Benign:    ben.Count(s),
				Malicious: mal.Count(s),
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		ti := out[i].Benign + out[i].Malicious
		tj := out[j].Benign + out[j].Malicious
		if ti != tj {
			return ti > tj
		}
		return out[i].Signer < out[j].Signer
	})
	return out
}
