// Package analysis implements the paper's measurement analytics: the
// dataset summaries (Table I), malware family and type breakdowns
// (Figure 1, Table II), file prevalence distributions (Figure 2),
// download-domain studies (Tables III-V, XIII, Figures 3 and 6), signer
// and packer studies (Tables VI-IX, Figure 4), per-process download
// behaviour (Tables X-XII, XIV) and infection-transition timing
// (Figure 5).
package analysis

import (
	"fmt"
	"sync"

	"repro/internal/dataset"
	"repro/internal/reputation"
)

// Analyzer computes measurements over a frozen, labeled store.
type Analyzer struct {
	store  *dataset.Store
	oracle *reputation.Oracle

	// signerSetsOnce caches the per-population signer sets; the store is
	// immutable after Freeze, so one computation serves every signer
	// analytic (Tables VII-IX, Figure 4).
	signerSetsOnce  sync.Once
	signerSetsCache map[string]map[string]struct{}
}

// New builds an Analyzer. The store must be frozen.
func New(store *dataset.Store, oracle *reputation.Oracle) (*Analyzer, error) {
	if store == nil || !store.Frozen() {
		return nil, fmt.Errorf("analysis: store must be non-nil and frozen")
	}
	if oracle == nil {
		return nil, fmt.Errorf("analysis: nil oracle")
	}
	return &Analyzer{store: store, oracle: oracle}, nil
}

// Store exposes the underlying store (read-only use).
func (a *Analyzer) Store() *dataset.Store { return a.store }

// LabelBreakdown counts distinct items (files or processes) per label.
type LabelBreakdown struct {
	Total           int
	Benign          int
	LikelyBenign    int
	Malicious       int
	LikelyMalicious int
	Unknown         int
}

// add tallies one label.
func (b *LabelBreakdown) add(l dataset.Label) {
	b.Total++
	switch l {
	case dataset.LabelBenign:
		b.Benign++
	case dataset.LabelLikelyBenign:
		b.LikelyBenign++
	case dataset.LabelMalicious:
		b.Malicious++
	case dataset.LabelLikelyMalicious:
		b.LikelyMalicious++
	default:
		b.Unknown++
	}
}

// Share returns count/Total for the requested label.
func (b *LabelBreakdown) Share(l dataset.Label) float64 {
	if b.Total == 0 {
		return 0
	}
	var n int
	switch l {
	case dataset.LabelBenign:
		n = b.Benign
	case dataset.LabelLikelyBenign:
		n = b.LikelyBenign
	case dataset.LabelMalicious:
		n = b.Malicious
	case dataset.LabelLikelyMalicious:
		n = b.LikelyMalicious
	default:
		n = b.Unknown
	}
	return float64(n) / float64(b.Total)
}

// URLBreakdown counts distinct download domains per verdict.
type URLBreakdown struct {
	TotalURLs int // distinct URLs
	Benign    int // distinct URLs on domains labeled benign
	Malicious int
}

// MonthlySummary is one row of Table I.
type MonthlySummary struct {
	Month     dataset.Month
	Machines  int
	Events    int
	Processes LabelBreakdown
	Files     LabelBreakdown
	URLs      URLBreakdown
}

// summarize tallies one set of event indexes.
func (a *Analyzer) summarize(idx []int) MonthlySummary {
	events := a.store.Events()
	machines := make(map[dataset.MachineID]struct{})
	files := make(map[dataset.FileHash]struct{})
	procs := make(map[dataset.FileHash]struct{})
	urls := make(map[string]struct{})
	domainOf := make(map[string]string)
	var s MonthlySummary
	for _, i := range idx {
		e := &events[i]
		s.Events++
		machines[e.Machine] = struct{}{}
		if _, ok := files[e.File]; !ok {
			files[e.File] = struct{}{}
			s.Files.add(a.store.Label(e.File))
		}
		if _, ok := procs[e.Process]; !ok {
			procs[e.Process] = struct{}{}
			s.Processes.add(a.store.Label(e.Process))
		}
		if _, ok := urls[e.URL]; !ok {
			urls[e.URL] = struct{}{}
			domainOf[e.URL] = e.Domain
		}
	}
	s.Machines = len(machines)
	s.URLs.TotalURLs = len(urls)
	for url := range urls {
		switch a.store.URLVerdict(domainOf[url]) {
		case dataset.URLBenign:
			s.URLs.Benign++
		case dataset.URLMalicious:
			s.URLs.Malicious++
		}
	}
	return s
}

// MonthlySummaries returns one Table I row per month plus the overall
// row.
func (a *Analyzer) MonthlySummaries() (rows []MonthlySummary, overall MonthlySummary) {
	for _, m := range a.store.Months() {
		row := a.summarize(a.store.EventIndexesInMonth(m))
		row.Month = m
		rows = append(rows, row)
	}
	all := make([]int, a.store.NumEvents())
	for i := range all {
		all[i] = i
	}
	overall = a.summarize(all)
	return rows, overall
}
