package analysis

import (
	"sort"

	"repro/internal/dataset"
	"repro/internal/stats"
)

// FamilyStats summarizes the malware-family distribution (Figure 1).
type FamilyStats struct {
	// Top holds the most common families by sample count.
	Top []stats.KV
	// DistinctFamilies is the number of distinct derived families.
	DistinctFamilies int
	// NoFamilyShare is the fraction of malicious files for which no
	// family could be derived (58% in the paper).
	NoFamilyShare float64
	// TotalMalicious is the number of malicious files considered.
	TotalMalicious int
}

// Families computes Figure 1's family distribution over malicious
// downloaded files.
func (a *Analyzer) Families(topK int) FamilyStats {
	counter := stats.NewCounter()
	total, noFam := 0, 0
	for _, f := range a.store.DownloadedFiles() {
		gt := a.store.Truth(f)
		if gt.Label != dataset.LabelMalicious {
			continue
		}
		total++
		if gt.Family == "" {
			noFam++
			continue
		}
		counter.Add(gt.Family)
	}
	fs := FamilyStats{
		Top:              counter.Top(topK),
		DistinctFamilies: counter.Distinct(),
		TotalMalicious:   total,
	}
	if total > 0 {
		fs.NoFamilyShare = float64(noFam) / float64(total)
	}
	return fs
}

// TypeBreakdown computes Table II: the share of each behaviour type
// among malicious downloaded files.
func (a *Analyzer) TypeBreakdown() (counts map[dataset.MalwareType]int, total int) {
	counts = make(map[dataset.MalwareType]int)
	for _, f := range a.store.DownloadedFiles() {
		gt := a.store.Truth(f)
		if gt.Label != dataset.LabelMalicious {
			continue
		}
		counts[gt.Type]++
		total++
	}
	return counts, total
}

// PrevalenceStats captures Figure 2: per-class prevalence histograms.
type PrevalenceStats struct {
	// ByLabel histograms prevalence per ground-truth label.
	ByLabel map[dataset.Label]*stats.Histogram
	// All aggregates every downloaded file.
	All *stats.Histogram
}

// Prevalence computes Figure 2's distributions.
func (a *Analyzer) Prevalence() PrevalenceStats {
	ps := PrevalenceStats{
		ByLabel: make(map[dataset.Label]*stats.Histogram),
		All:     stats.NewHistogram(),
	}
	for _, f := range a.store.DownloadedFiles() {
		p := a.store.Prevalence(f)
		ps.All.Add(p)
		label := a.store.Label(f)
		h, ok := ps.ByLabel[label]
		if !ok {
			h = stats.NewHistogram()
			ps.ByLabel[label] = h
		}
		h.Add(p)
	}
	return ps
}

// MachinesTouchingUnknown returns the fraction of machines that
// downloaded at least one unknown file (69% in the paper).
func (a *Analyzer) MachinesTouchingUnknown() float64 {
	events := a.store.Events()
	machines := make(map[dataset.MachineID]struct{})
	touched := make(map[dataset.MachineID]struct{})
	for i := range events {
		machines[events[i].Machine] = struct{}{}
		if a.store.Label(events[i].File) == dataset.LabelUnknown {
			touched[events[i].Machine] = struct{}{}
		}
	}
	if len(machines) == 0 {
		return 0
	}
	return float64(len(touched)) / float64(len(machines))
}

// PackerStats summarizes Section IV-C's packer findings.
type PackerStats struct {
	BenignPackedShare    float64
	MaliciousPackedShare float64
	UnknownPackedShare   float64
	// DistinctPackers counts packers seen on benign or malicious files;
	// SharedPackers those seen on both; the remaining split exclusive.
	DistinctPackers   int
	SharedPackers     int
	BenignOnlyPackers []string
	MaliciousOnly     []string
}

// Packers computes packer usage over labeled files.
func (a *Analyzer) Packers() PackerStats {
	type counts struct{ total, packed int }
	var ben, mal, unk counts
	benignPackers := make(map[string]struct{})
	malPackers := make(map[string]struct{})
	for _, f := range a.store.DownloadedFiles() {
		meta := a.store.File(f)
		if meta == nil {
			continue
		}
		switch a.store.Label(f) {
		case dataset.LabelBenign:
			ben.total++
			if meta.Packed() {
				ben.packed++
				benignPackers[meta.Packer] = struct{}{}
			}
		case dataset.LabelMalicious:
			mal.total++
			if meta.Packed() {
				mal.packed++
				malPackers[meta.Packer] = struct{}{}
			}
		case dataset.LabelUnknown:
			unk.total++
			if meta.Packed() {
				unk.packed++
			}
		}
	}
	ps := PackerStats{
		BenignPackedShare:    stats.Ratio(ben.packed, ben.total),
		MaliciousPackedShare: stats.Ratio(mal.packed, mal.total),
		UnknownPackedShare:   stats.Ratio(unk.packed, unk.total),
	}
	all := make(map[string]struct{})
	for p := range benignPackers {
		all[p] = struct{}{}
		if _, shared := malPackers[p]; shared {
			ps.SharedPackers++
		} else {
			ps.BenignOnlyPackers = append(ps.BenignOnlyPackers, p)
		}
	}
	for p := range malPackers {
		all[p] = struct{}{}
		if _, shared := benignPackers[p]; !shared {
			ps.MaliciousOnly = append(ps.MaliciousOnly, p)
		}
	}
	ps.DistinctPackers = len(all)
	sort.Strings(ps.BenignOnlyPackers)
	sort.Strings(ps.MaliciousOnly)
	return ps
}

// PrevalenceByType histograms file prevalence per malicious behaviour
// type. The paper reports these distributions are "very similar to each
// other".
func (a *Analyzer) PrevalenceByType() map[dataset.MalwareType]*stats.Histogram {
	out := make(map[dataset.MalwareType]*stats.Histogram)
	for _, f := range a.store.DownloadedFiles() {
		gt := a.store.Truth(f)
		if gt.Label != dataset.LabelMalicious {
			continue
		}
		h, ok := out[gt.Type]
		if !ok {
			h = stats.NewHistogram()
			out[gt.Type] = h
		}
		h.Add(a.store.Prevalence(f))
	}
	return out
}

// EventsPerMachine histograms download events per machine, the activity
// skew behind the "69% of machines touched an unknown file" aggregate.
func (a *Analyzer) EventsPerMachine() *stats.Histogram {
	h := stats.NewHistogram()
	for _, m := range a.store.Machines() {
		h.Add(len(a.store.EventsForMachine(m)))
	}
	return h
}
