package analysis

import (
	"sync"
	"testing"

	"repro/internal/avsim"
	"repro/internal/dataset"
	"repro/internal/labeling"
	"repro/internal/synth"
)

var (
	genOnce sync.Once
	genAn   *Analyzer
	genErr  error
)

// generatedAnalyzer builds one shared analyzer over a generated,
// labeled dataset — the integration fixture for shape assertions.
func generatedAnalyzer(t *testing.T) *Analyzer {
	t.Helper()
	genOnce.Do(func() {
		res, err := synth.Generate(synth.DefaultConfig(321, 0.005))
		if err != nil {
			genErr = err
			return
		}
		lab, err := labeling.New(avsim.NewDefaultService(), res.Oracle, nil, nil, 0)
		if err != nil {
			genErr = err
			return
		}
		if err := lab.LabelStore(res.Store, res.Samples); err != nil {
			genErr = err
			return
		}
		res.Store.Freeze()
		genAn, genErr = New(res.Store, res.Oracle)
	})
	if genErr != nil {
		t.Fatal(genErr)
	}
	return genAn
}

func TestGeneratedDropperIsTopDefinedType(t *testing.T) {
	a := generatedAnalyzer(t)
	counts, total := a.TypeBreakdown()
	if total == 0 {
		t.Fatal("no malicious files")
	}
	for _, typ := range dataset.AllMalwareTypes {
		if typ == dataset.TypeDropper || typ == dataset.TypeUndefined {
			continue
		}
		if counts[typ] > counts[dataset.TypeDropper] {
			t.Errorf("%v (%d) outnumbers droppers (%d); paper has droppers on top",
				typ, counts[typ], counts[dataset.TypeDropper])
		}
	}
}

func TestGeneratedSigningShape(t *testing.T) {
	a := generatedAnalyzer(t)
	rows := a.SigningByPopulation()
	byName := map[string]SigningRow{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	// Table VI's strongest contrasts.
	if d, b := byName["dropper"], byName["bot"]; d.Files > 20 && b.Files > 5 {
		if d.SignedShare() <= b.SignedShare() {
			t.Errorf("droppers (%.2f) should sign more than bots (%.2f)",
				d.SignedShare(), b.SignedShare())
		}
	}
	mal, ben := byName["malicious"], byName["benign"]
	if mal.SignedShare() <= ben.SignedShare() {
		t.Errorf("malicious (%.2f) should sign more than benign (%.2f) — the paper's counterintuitive result",
			mal.SignedShare(), ben.SignedShare())
	}
}

func TestGeneratedTransitionsOrdering(t *testing.T) {
	a := generatedAnalyzer(t)
	curves := map[TransitionSource]TransitionStats{}
	for _, c := range a.AllTransitions() {
		curves[c.Source] = c
	}
	drop, adw, ben := curves[SourceDropper], curves[SourceAdware], curves[SourceBenign]
	if drop.DeltaDays.Len() == 0 || adw.DeltaDays.Len() == 0 || ben.DeltaDays.Len() == 0 {
		t.Skip("too few transitions at this scale")
	}
	day5 := func(c TransitionStats) float64 { return c.DeltaDays.At(5) }
	if day5(drop) <= day5(ben) {
		t.Errorf("dropper 5-day share (%.2f) should exceed benign (%.2f)", day5(drop), day5(ben))
	}
	if day5(adw) <= day5(ben) {
		t.Errorf("adware 5-day share (%.2f) should exceed benign (%.2f)", day5(adw), day5(ben))
	}
}

func TestGeneratedUnknownDominatesPrevalenceTail(t *testing.T) {
	a := generatedAnalyzer(t)
	ps := a.Prevalence()
	unk := ps.ByLabel[dataset.LabelUnknown]
	ben := ps.ByLabel[dataset.LabelBenign]
	if unk == nil || ben == nil {
		t.Fatal("missing prevalence histograms")
	}
	if unk.Fraction(1) <= ben.Fraction(1) {
		t.Errorf("unknown prevalence-1 share (%.2f) should exceed benign (%.2f)",
			unk.Fraction(1), ben.Fraction(1))
	}
}

func TestGeneratedHostingDomainsAreMixed(t *testing.T) {
	a := generatedAnalyzer(t)
	_, benign, malicious := a.DomainPopularity(10)
	benSet := map[string]bool{}
	for _, kv := range benign {
		benSet[kv.Key] = true
	}
	overlap := 0
	for _, kv := range malicious {
		if benSet[kv.Key] {
			overlap++
		}
	}
	if overlap == 0 {
		t.Error("no domain appears in both benign and malicious top-10: mixed-reputation phenomenon missing")
	}
}

func TestGeneratedAcrobatMostlyMalicious(t *testing.T) {
	a := generatedAnalyzer(t)
	rows := a.BenignProcessBehavior()
	for _, r := range rows {
		if r.Name != "acrobat reader" {
			continue
		}
		if r.Malicious+r.Unknown+r.Benign < 5 {
			t.Skip("too few acrobat downloads at this scale")
		}
		if r.Malicious <= r.Benign {
			t.Errorf("acrobat reader row %+v: malicious should dominate benign", r)
		}
	}
}

func TestGeneratedUnknownShare(t *testing.T) {
	a := generatedAnalyzer(t)
	_, overall := a.MonthlySummaries()
	share := overall.Files.Share(dataset.LabelUnknown)
	if share < 0.7 || share > 0.92 {
		t.Errorf("unknown file share = %.3f, want ~0.83", share)
	}
}
