package analysis

import (
	"math"

	"repro/internal/dataset"
	"repro/internal/stats"
)

// DomainPopularity computes Table III: the domains contacted by the most
// distinct machines, overall and restricted to benign / malicious file
// downloads.
func (a *Analyzer) DomainPopularity(topK int) (overall, benign, malicious []stats.KV) {
	events := a.store.Events()
	all := make(map[string]map[dataset.MachineID]struct{})
	ben := make(map[string]map[dataset.MachineID]struct{})
	mal := make(map[string]map[dataset.MachineID]struct{})
	addTo := func(m map[string]map[dataset.MachineID]struct{}, domain string, machine dataset.MachineID) {
		set, ok := m[domain]
		if !ok {
			set = make(map[dataset.MachineID]struct{})
			m[domain] = set
		}
		set[machine] = struct{}{}
	}
	for i := range events {
		e := &events[i]
		addTo(all, e.Domain, e.Machine)
		switch a.store.Label(e.File) {
		case dataset.LabelBenign:
			addTo(ben, e.Domain, e.Machine)
		case dataset.LabelMalicious:
			addTo(mal, e.Domain, e.Machine)
		}
	}
	top := func(m map[string]map[dataset.MachineID]struct{}) []stats.KV {
		c := stats.NewCounter()
		for d, set := range m {
			c.AddN(d, len(set))
		}
		return c.Top(topK)
	}
	return top(all), top(ben), top(mal)
}

// DomainFileCounts computes Table IV: domains serving the highest number
// of distinct benign / malicious files.
func (a *Analyzer) DomainFileCounts(topK int) (benign, malicious []stats.KV) {
	events := a.store.Events()
	benSets := make(map[string]map[dataset.FileHash]struct{})
	malSets := make(map[string]map[dataset.FileHash]struct{})
	for i := range events {
		e := &events[i]
		var m map[string]map[dataset.FileHash]struct{}
		switch a.store.Label(e.File) {
		case dataset.LabelBenign:
			m = benSets
		case dataset.LabelMalicious:
			m = malSets
		default:
			continue
		}
		set, ok := m[e.Domain]
		if !ok {
			set = make(map[dataset.FileHash]struct{})
			m[e.Domain] = set
		}
		set[e.File] = struct{}{}
	}
	top := func(m map[string]map[dataset.FileHash]struct{}) []stats.KV {
		c := stats.NewCounter()
		for d, set := range m {
			c.AddN(d, len(set))
		}
		return c.Top(topK)
	}
	return top(benSets), top(malSets)
}

// DomainsPerType computes Table V: for each malicious behaviour type,
// the domains serving the most distinct files of that type.
func (a *Analyzer) DomainsPerType(topK int) map[dataset.MalwareType][]stats.KV {
	events := a.store.Events()
	sets := make(map[dataset.MalwareType]map[string]map[dataset.FileHash]struct{})
	for i := range events {
		e := &events[i]
		gt := a.store.Truth(e.File)
		if gt.Label != dataset.LabelMalicious {
			continue
		}
		byDomain, ok := sets[gt.Type]
		if !ok {
			byDomain = make(map[string]map[dataset.FileHash]struct{})
			sets[gt.Type] = byDomain
		}
		set, ok := byDomain[e.Domain]
		if !ok {
			set = make(map[dataset.FileHash]struct{})
			byDomain[e.Domain] = set
		}
		set[e.File] = struct{}{}
	}
	out := make(map[dataset.MalwareType][]stats.KV, len(sets))
	for typ, byDomain := range sets {
		c := stats.NewCounter()
		for d, set := range byDomain {
			c.AddN(d, len(set))
		}
		out[typ] = c.Top(topK)
	}
	return out
}

// UnknownDomains computes Table XIII: the domains serving the most
// unknown-file downloads (by download events, as the paper counts
// "# downloads").
func (a *Analyzer) UnknownDomains(topK int) []stats.KV {
	events := a.store.Events()
	c := stats.NewCounter()
	for i := range events {
		if a.store.Label(events[i].File) == dataset.LabelUnknown {
			c.Add(events[i].Domain)
		}
	}
	return c.Top(topK)
}

// AlexaRankCDF computes Figures 3 and 6: the distribution of log10 Alexa
// ranks over the distinct domains hosting files of the given label.
// Unranked domains are excluded; the second return value is the share of
// hosting domains that are ranked at all.
func (a *Analyzer) AlexaRankCDF(label dataset.Label) (*stats.CDF, float64) {
	events := a.store.Events()
	domains := make(map[string]struct{})
	for i := range events {
		if a.store.Label(events[i].File) == label {
			domains[events[i].Domain] = struct{}{}
		}
	}
	cdf := &stats.CDF{}
	ranked := 0
	for d := range domains {
		if r := a.oracle.AlexaRank(d); r > 0 {
			cdf.Add(math.Log10(float64(r)))
			ranked++
		}
	}
	cdf.Finalize()
	share := 0.0
	if len(domains) > 0 {
		share = float64(ranked) / float64(len(domains))
	}
	return cdf, share
}
