package analysis

import (
	"repro/internal/dataset"
	"repro/internal/stats"
)

// Download chains extend the paper's Section V analysis in the direction
// of the downloader-graph work it builds on (Kwon et al., CCS 2015): a
// malicious file fetched by a malicious process that was itself fetched
// by another process forms a chain, and chain depth measures how far a
// dropper-driven infection cascades.

// ChainStats summarizes the malicious download chains in the dataset.
type ChainStats struct {
	// DepthHistogram counts malicious files by chain depth: depth 1 is a
	// first-stage infection (delivered by a benign or unknown process),
	// depth 2 was fetched by a depth-1 malicious file, and so on.
	DepthHistogram *stats.Histogram
	// MaxDepth is the deepest chain observed.
	MaxDepth int
	// DeepestChain lists the file hashes of one deepest chain, outermost
	// ancestor first.
	DeepestChain []dataset.FileHash
}

// DownloadChains computes chain depths for every malicious downloaded
// file. The store must be frozen. Depth is well-defined because a
// process must have been downloaded strictly before it downloads
// anything, so the ancestor relation cannot cycle.
func (a *Analyzer) DownloadChains() ChainStats {
	events := a.store.Events()
	// First event index that downloaded each file hash.
	firstEvent := make(map[dataset.FileHash]int)
	for i := range events {
		if _, seen := firstEvent[events[i].File]; !seen {
			firstEvent[events[i].File] = i
		}
	}
	depthMemo := make(map[dataset.FileHash]int)
	var depthOf func(h dataset.FileHash) int
	depthOf = func(h dataset.FileHash) int {
		if d, ok := depthMemo[h]; ok {
			return d
		}
		// Mark in-progress to guard against malformed (non-chronological)
		// stores; a self-referential lookup reads as depth 0.
		depthMemo[h] = 0
		d := 1
		if ei, ok := firstEvent[h]; ok {
			proc := events[ei].Process
			if a.store.Label(proc) == dataset.LabelMalicious {
				if _, downloaded := firstEvent[proc]; downloaded {
					d = 1 + depthOf(proc)
				} else {
					d = 2 // malicious process never seen as a download
				}
			}
		}
		depthMemo[h] = d
		return d
	}

	out := ChainStats{DepthHistogram: stats.NewHistogram()}
	var deepest dataset.FileHash
	for _, f := range a.store.DownloadedFiles() {
		if a.store.Label(f) != dataset.LabelMalicious {
			continue
		}
		d := depthOf(f)
		out.DepthHistogram.Add(d)
		if d > out.MaxDepth {
			out.MaxDepth = d
			deepest = f
		}
	}
	// Reconstruct one deepest chain by walking ancestors.
	if out.MaxDepth > 0 {
		var chain []dataset.FileHash
		cur := deepest
		for {
			chain = append([]dataset.FileHash{cur}, chain...)
			ei, ok := firstEvent[cur]
			if !ok {
				break
			}
			proc := events[ei].Process
			if a.store.Label(proc) != dataset.LabelMalicious {
				break
			}
			if _, downloaded := firstEvent[proc]; !downloaded {
				break
			}
			if proc == cur {
				break
			}
			cur = proc
		}
		out.DeepestChain = chain
	}
	return out
}
