package analysis

import (
	"repro/internal/dataset"
	"repro/internal/stats"
)

// ProcessBehaviorRow is one row of Tables X/XI/XII: the download
// behaviour of one process population.
type ProcessBehaviorRow struct {
	Name string
	// Processes is the number of distinct process hashes observed.
	Processes int
	// Machines is the number of distinct machines running them.
	Machines int
	// Unknown/Benign/Malicious count distinct downloaded files by label.
	Unknown   int
	Benign    int
	Malicious int
	// InfectedMachines is how many of Machines downloaded and executed
	// at least one known-malicious file via this population.
	InfectedMachines int
	// TypeShare is the behaviour-type mix of the malicious downloads.
	TypeShare map[dataset.MalwareType]float64
}

// InfectedShare returns InfectedMachines/Machines.
func (r *ProcessBehaviorRow) InfectedShare() float64 {
	return stats.Ratio(r.InfectedMachines, r.Machines)
}

// behaviorAccumulator builds ProcessBehaviorRows incrementally.
type behaviorAccumulator struct {
	name      string
	procs     map[dataset.FileHash]struct{}
	machines  map[dataset.MachineID]struct{}
	infected  map[dataset.MachineID]struct{}
	files     map[dataset.FileHash]struct{}
	unknown   int
	benign    int
	malicious int
	types     map[dataset.MalwareType]int
}

func newBehaviorAccumulator(name string) *behaviorAccumulator {
	return &behaviorAccumulator{
		name:     name,
		procs:    make(map[dataset.FileHash]struct{}),
		machines: make(map[dataset.MachineID]struct{}),
		infected: make(map[dataset.MachineID]struct{}),
		files:    make(map[dataset.FileHash]struct{}),
		types:    make(map[dataset.MalwareType]int),
	}
}

func (b *behaviorAccumulator) observe(e *dataset.DownloadEvent, gt dataset.GroundTruth) {
	b.procs[e.Process] = struct{}{}
	b.machines[e.Machine] = struct{}{}
	if gt.Label == dataset.LabelMalicious {
		b.infected[e.Machine] = struct{}{}
	}
	if _, seen := b.files[e.File]; seen {
		return
	}
	b.files[e.File] = struct{}{}
	switch gt.Label {
	case dataset.LabelUnknown:
		b.unknown++
	case dataset.LabelBenign:
		b.benign++
	case dataset.LabelMalicious:
		b.malicious++
		b.types[gt.Type]++
	}
}

func (b *behaviorAccumulator) row() ProcessBehaviorRow {
	row := ProcessBehaviorRow{
		Name:             b.name,
		Processes:        len(b.procs),
		Machines:         len(b.machines),
		Unknown:          b.unknown,
		Benign:           b.benign,
		Malicious:        b.malicious,
		InfectedMachines: len(b.infected),
		TypeShare:        make(map[dataset.MalwareType]float64, len(b.types)),
	}
	for typ, n := range b.types {
		row.TypeShare[typ] = stats.Ratio(n, b.malicious)
	}
	return row
}

// BenignProcessBehavior computes Table X: download behaviour of
// known-benign processes per category.
func (a *Analyzer) BenignProcessBehavior() []ProcessBehaviorRow {
	accs := map[dataset.ProcessCategory]*behaviorAccumulator{}
	for _, cat := range dataset.AllProcessCategories {
		accs[cat] = newBehaviorAccumulator(cat.String())
	}
	events := a.store.Events()
	for i := range events {
		e := &events[i]
		proc := a.store.File(e.Process)
		if proc == nil || a.store.Label(e.Process) != dataset.LabelBenign {
			continue
		}
		accs[proc.Category].observe(e, a.store.Truth(e.File))
	}
	var out []ProcessBehaviorRow
	for _, cat := range dataset.AllProcessCategories {
		out = append(out, accs[cat].row())
	}
	return out
}

// BrowserBehavior computes Table XI: the per-browser split of the
// browser row.
func (a *Analyzer) BrowserBehavior() []ProcessBehaviorRow {
	accs := map[dataset.Browser]*behaviorAccumulator{}
	for _, br := range dataset.AllBrowsers {
		accs[br] = newBehaviorAccumulator(br.String())
	}
	events := a.store.Events()
	for i := range events {
		e := &events[i]
		proc := a.store.File(e.Process)
		if proc == nil || proc.Category != dataset.CategoryBrowser ||
			a.store.Label(e.Process) != dataset.LabelBenign {
			continue
		}
		accs[proc.Browser].observe(e, a.store.Truth(e.File))
	}
	var out []ProcessBehaviorRow
	for _, br := range dataset.AllBrowsers {
		out = append(out, accs[br].row())
	}
	return out
}

// MaliciousProcessBehavior computes Table XII: download behaviour of
// malicious processes grouped by the process's behaviour type, plus an
// overall row.
func (a *Analyzer) MaliciousProcessBehavior() (rows []ProcessBehaviorRow, overall ProcessBehaviorRow) {
	accs := map[dataset.MalwareType]*behaviorAccumulator{}
	for _, typ := range dataset.AllMalwareTypes {
		accs[typ] = newBehaviorAccumulator(typ.String())
	}
	all := newBehaviorAccumulator("overall")
	events := a.store.Events()
	for i := range events {
		e := &events[i]
		procGT := a.store.Truth(e.Process)
		if procGT.Label != dataset.LabelMalicious {
			continue
		}
		fileGT := a.store.Truth(e.File)
		accs[procGT.Type].observe(e, fileGT)
		all.observe(e, fileGT)
	}
	for _, typ := range dataset.AllMalwareTypes {
		rows = append(rows, accs[typ].row())
	}
	return rows, all.row()
}

// UnknownByCategory computes Table XIV: unknown-file downloads initiated
// by known-benign processes, split by category. Counts are distinct
// unknown files per category, with the total across categories.
func (a *Analyzer) UnknownByCategory() (perCategory map[dataset.ProcessCategory]int, total int) {
	perCategory = make(map[dataset.ProcessCategory]int)
	seen := make(map[dataset.ProcessCategory]map[dataset.FileHash]struct{})
	for _, cat := range dataset.AllProcessCategories {
		seen[cat] = make(map[dataset.FileHash]struct{})
	}
	events := a.store.Events()
	for i := range events {
		e := &events[i]
		proc := a.store.File(e.Process)
		if proc == nil || a.store.Label(e.Process) != dataset.LabelBenign {
			continue
		}
		if a.store.Label(e.File) != dataset.LabelUnknown {
			continue
		}
		if _, dup := seen[proc.Category][e.File]; dup {
			continue
		}
		seen[proc.Category][e.File] = struct{}{}
		perCategory[proc.Category]++
		total++
	}
	return perCategory, total
}
