package analysis

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/stats"
)

// TransitionSource selects the Figure 5 curve being computed.
type TransitionSource int

// Sources.
const (
	// SourceBenign: machines whose anchor is a benign download with no
	// prior malicious download.
	SourceBenign TransitionSource = iota + 1
	// SourceAdware / SourcePUP / SourceDropper: machines whose anchor is
	// the first download+execution of that malicious type.
	SourceAdware
	SourcePUP
	SourceDropper
)

// String names the source.
func (s TransitionSource) String() string {
	switch s {
	case SourceBenign:
		return "benign"
	case SourceAdware:
		return "adware"
	case SourcePUP:
		return "pup"
	case SourceDropper:
		return "dropper"
	default:
		return fmt.Sprintf("source(%d)", int(s))
	}
}

// TransitionStats is one Figure 5 curve: the CDF (in days) of the time
// between the anchor download and the machine's next download of "other
// malware" (any malicious type except adware, PUP and undefined).
type TransitionStats struct {
	Source TransitionSource
	// Anchored is the number of machines with an anchor event.
	Anchored int
	// Transitioned is how many of them later downloaded other malware;
	// the CDF is computed over these.
	Transitioned int
	// DeltaDays is the CDF of transition deltas in days.
	DeltaDays *stats.CDF
}

// TransitionShare returns Transitioned/Anchored.
func (t *TransitionStats) TransitionShare() float64 {
	return stats.Ratio(t.Transitioned, t.Anchored)
}

// isOtherMalware reports whether gt is a malicious file outside the
// adware/PUP/undefined group (Figure 5's transition target).
func isOtherMalware(gt dataset.GroundTruth) bool {
	if gt.Label != dataset.LabelMalicious {
		return false
	}
	switch gt.Type {
	case dataset.TypeAdware, dataset.TypePUP, dataset.TypeUndefined:
		return false
	}
	return true
}

// Transitions computes one Figure 5 curve.
func (a *Analyzer) Transitions(source TransitionSource) TransitionStats {
	events := a.store.Events()
	out := TransitionStats{Source: source, DeltaDays: &stats.CDF{}}
	for _, m := range a.store.Machines() {
		idxs := a.store.EventsForMachine(m)
		anchorAt := -1
		disqualified := false
		for pos, i := range idxs {
			gt := a.store.Truth(events[i].File)
			switch source {
			case SourceBenign:
				// A malicious download before any benign anchor
				// disqualifies the machine ("have not been observed to
				// download malicious files in the past").
				if gt.Label == dataset.LabelMalicious {
					disqualified = true
				} else if gt.Label == dataset.LabelBenign {
					anchorAt = pos
				}
			case SourceAdware:
				if gt.Label == dataset.LabelMalicious && gt.Type == dataset.TypeAdware {
					anchorAt = pos
				}
			case SourcePUP:
				if gt.Label == dataset.LabelMalicious && gt.Type == dataset.TypePUP {
					anchorAt = pos
				}
			case SourceDropper:
				if gt.Label == dataset.LabelMalicious && gt.Type == dataset.TypeDropper {
					anchorAt = pos
				}
			}
			if anchorAt >= 0 || disqualified {
				break
			}
		}
		if anchorAt < 0 || disqualified {
			continue
		}
		out.Anchored++
		anchorTime := events[idxs[anchorAt]].Time
		for _, i := range idxs[anchorAt+1:] {
			if !isOtherMalware(a.store.Truth(events[i].File)) {
				continue
			}
			delta := events[i].Time.Sub(anchorTime).Hours() / 24
			out.Transitioned++
			out.DeltaDays.Add(delta)
			break
		}
	}
	out.DeltaDays.Finalize()
	return out
}

// AllTransitions computes all four Figure 5 curves.
func (a *Analyzer) AllTransitions() []TransitionStats {
	sources := []TransitionSource{SourceBenign, SourceAdware, SourcePUP, SourceDropper}
	out := make([]TransitionStats, 0, len(sources))
	for _, s := range sources {
		out = append(out, a.Transitions(s))
	}
	return out
}
