package lifecycle

import (
	"fmt"
	"time"

	"sync"

	"repro/internal/avsim"
	"repro/internal/dataset"
	"repro/internal/features"
	"repro/internal/labeling"
	"repro/internal/serve"
)

// Harvester turns served traffic into labeled training instances — the
// ground-truth supply line of the lifecycle. Two sources feed it:
//
//   - Observe (wired to the engine's batch tap, or called by a replay
//     harness) registers each newly seen file and schedules its delayed
//     AV re-scan at downloadTime + delay, the paper's t₀+2y protocol;
//   - DrainLedger walks the verdict ledger's completed batches and
//     records the verdict actually served per file, so harvested truth
//     also scores the champion's live answers.
//
// Advance(now) — the caller owns the clock — drains every re-scan that
// has come due, derives a label with the same thresholds the offline
// labeler uses (trusted detections ⇒ malicious; clean with ≥14 days of
// scan history ⇒ benign; anything weaker is discarded rather than
// trained on), and appends a training instance. Training() then returns
// the base window plus everything harvested — classify.Retrain's input.
type Harvester struct {
	sched   *avsim.Scheduler
	ex      *features.Extractor
	samples labeling.Samples
	delay   time.Duration

	mu   sync.Mutex
	rep  map[dataset.FileHash]dataset.DownloadEvent // guarded by mu: first event per file
	seen map[dataset.FileHash]bool                  // guarded by mu: scheduled (or profile-less)
	// served is the champion's live verdict per file, from the ledger.
	// Guarded by mu.
	served  map[dataset.FileHash]string
	drained map[string]bool // guarded by mu: ledger request IDs already drained
	// truth is the harvested label per file; harvested are the derived
	// training instances, in drain order. Both guarded by mu.
	truth     map[dataset.FileHash]bool
	harvested []features.Instance
	// discarded counts due re-scans that yielded no confident label
	// (unknown, likely benign, likely malicious); liveFP / liveDetected
	// score the champion's served verdicts against harvested truth.
	// All guarded by mu.
	discarded    int
	liveFP       int
	liveDetected int
}

// NewHarvester builds a harvester over the scan service the labels come
// from. samples maps file hashes to their scan-service profiles (the
// same map the offline labeler uses); delay defaults to the paper's
// two-year re-scan window.
func NewHarvester(svc *avsim.Service, ex *features.Extractor, samples labeling.Samples, delay time.Duration) (*Harvester, error) {
	if svc == nil {
		return nil, fmt.Errorf("lifecycle: nil scan service")
	}
	if ex == nil {
		return nil, fmt.Errorf("lifecycle: nil extractor")
	}
	if delay <= 0 {
		delay = labeling.DefaultRescanDelay
	}
	return &Harvester{
		sched:   avsim.NewScheduler(svc),
		ex:      ex,
		samples: samples,
		delay:   delay,
		rep:     make(map[dataset.FileHash]dataset.DownloadEvent),
		seen:    make(map[dataset.FileHash]bool),
		served:  make(map[dataset.FileHash]string),
		drained: make(map[string]bool),
		truth:   make(map[dataset.FileHash]bool),
	}, nil
}

// Observe registers a batch of served events: the first event of each
// file is kept as its feature-extraction representative and the file's
// re-scan is scheduled at event time + delay. Files without a scan
// profile can never produce ground truth and are skipped. Cheap enough
// to call from a batch tap (map inserts plus a heap push per new file).
func (h *Harvester) Observe(events []dataset.DownloadEvent) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for i := range events {
		ev := &events[i]
		if h.seen[ev.File] {
			continue
		}
		h.seen[ev.File] = true
		s := h.samples[ev.File]
		if s == nil {
			continue
		}
		h.rep[ev.File] = *ev
		h.sched.Schedule(s, ev.Time.Add(h.delay))
	}
}

// DrainLedger records the served verdict per file from every completed
// batch not yet drained, returning how many new batches it consumed.
// The first verdict served for a file wins (retransmits are
// byte-identical anyway).
func (h *Harvester) DrainLedger(l *serve.Ledger) int {
	if l == nil {
		return 0
	}
	ids := l.CompletedIDs()
	n := 0
	for _, id := range ids {
		h.mu.Lock()
		done := h.drained[id]
		h.mu.Unlock()
		if done {
			continue
		}
		verdicts, ok := l.LookupVerdicts(id)
		if !ok {
			continue
		}
		h.mu.Lock()
		h.drained[id] = true
		for i := range verdicts {
			f := dataset.FileHash(verdicts[i].File)
			if _, dup := h.served[f]; !dup {
				h.served[f] = verdicts[i].Verdict
			}
		}
		h.mu.Unlock()
		n++
	}
	return n
}

// Advance drains every re-scan due by now, derives labels, and returns
// how many new training instances were harvested. The caller supplies
// the clock: wall time in a daemon, virtual time in a replay harness.
func (h *Harvester) Advance(now time.Time) int {
	due := h.sched.Due(now)
	if len(due) == 0 {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	n := 0
	for _, r := range due {
		mal, ok := labelFromReport(r.Report)
		if !ok {
			h.discarded++
			continue
		}
		ev, okRep := h.rep[r.Sample.Hash]
		if !okRep {
			h.discarded++
			continue
		}
		vec, err := h.ex.Vector(&ev)
		if err != nil {
			h.discarded++
			continue
		}
		h.truth[r.Sample.Hash] = mal
		h.harvested = append(h.harvested, features.Instance{
			Vector:    vec,
			File:      r.Sample.Hash,
			Malicious: mal,
		})
		if h.served[r.Sample.Hash] == maliciousVerdict {
			if mal {
				h.liveDetected++
			} else {
				h.liveFP++
			}
		}
		n++
	}
	return n
}

// labelFromReport maps a due re-scan report to a confident training
// label, mirroring the offline labeler's thresholds. Weak labels
// (unknown, likely benign, likely malicious) return ok=false — the
// lifecycle trains only on ground truth it would also gate on.
func labelFromReport(rep *avsim.Report) (malicious, ok bool) {
	if rep == nil {
		return false, false
	}
	det := rep.Detections()
	if len(det) == 0 {
		if rep.LastScan.Sub(rep.FirstScan) < labeling.MinBenignScanSpread {
			return false, false // likely benign: spread too short
		}
		return false, true
	}
	if len(rep.TrustedDetections()) == 0 {
		return false, false // likely malicious: untrusted engines only
	}
	return true, true
}

// Truth returns the TruthFunc view of harvested labels, the evaluator's
// FP reference.
func (h *Harvester) Truth() TruthFunc {
	return func(file dataset.FileHash) (bool, bool) {
		h.mu.Lock()
		defer h.mu.Unlock()
		mal, ok := h.truth[file]
		return mal, ok
	}
}

// Training returns base plus every harvested instance — the combined
// evidence classify.Retrain consumes.
func (h *Harvester) Training(base []features.Instance) []features.Instance {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]features.Instance, 0, len(base)+len(h.harvested))
	out = append(out, base...)
	return append(out, h.harvested...)
}

// HarvestStats is the harvester's scoreboard for status endpoints.
type HarvestStats struct {
	Harvested    int `json:"harvested"`
	PendingScans int `json:"pendingScans"`
	Discarded    int `json:"discarded"`
	ServedFiles  int `json:"servedFiles"`
	LiveFP       int `json:"liveFP"`
	LiveDetected int `json:"liveDetected"`
}

// Stats snapshots the harvester's counters.
func (h *Harvester) Stats() HarvestStats {
	h.mu.Lock()
	defer h.mu.Unlock()
	return HarvestStats{
		Harvested:    len(h.harvested),
		PendingScans: h.sched.Len(),
		Discarded:    h.discarded,
		ServedFiles:  len(h.served),
		LiveFP:       h.liveFP,
		LiveDetected: h.liveDetected,
	}
}
