package lifecycle

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/classify"
	"repro/internal/retry"
	"repro/internal/serve"
)

// State is the challenger's position in the lifecycle state machine:
//
//	Idle ──BeginShadow──▶ Shadowing ──Tick──▶ Promoted
//	                          │
//	                          └────Tick────▶ Rejected
//
// Promoted and Rejected are terminal for that challenger; BeginShadow
// starts the next one.
type State int

const (
	StateIdle State = iota
	StateShadowing
	StatePromoted
	StateRejected
)

func (s State) String() string {
	switch s {
	case StateIdle:
		return "idle"
	case StateShadowing:
		return "shadowing"
	case StatePromoted:
		return "promoted"
	case StateRejected:
		return "rejected"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Promoter installs a gated rule set into serving. Implementations
// promote through the existing zero-downtime reload path: a serve.Client
// pointed at one daemon promotes that node; pointed at the cluster
// router it promotes every replica through the generation-consistent
// fan-out (advertised only when all replicas confirm).
type Promoter interface {
	Promote(ctx context.Context, rulesJSON []byte) (uint64, error)
}

// ReloadPromoter promotes via POST /admin/reload on Client's base URL.
type ReloadPromoter struct {
	Client *serve.Client
}

// Promote implements Promoter.
func (p ReloadPromoter) Promote(ctx context.Context, rulesJSON []byte) (uint64, error) {
	return p.Client.Reload(ctx, rulesJSON)
}

// Config tunes the promotion gate and Run pacing. The zero value
// selects the paper's defaults.
type Config struct {
	// FPBudget is the maximum tolerated challenger false-positive rate
	// over known-benign shadow traffic — the paper's 0.1% operating
	// point (Section VI-C). Default 0.001.
	FPBudget float64
	// MinShadowSamples is the minimum number of shadow-classified events
	// before the gate may decide either way. Default 200.
	MinShadowSamples int
	// Interval paces Run's gate evaluation. Default 250ms.
	Interval time.Duration
}

func (c Config) fpBudget() float64 {
	if c.FPBudget > 0 {
		return c.FPBudget
	}
	return 0.001
}

func (c Config) minSamples() int {
	if c.MinShadowSamples > 0 {
		return c.MinShadowSamples
	}
	return 200
}

func (c Config) interval() time.Duration {
	if c.Interval > 0 {
		return c.Interval
	}
	return 250 * time.Millisecond
}

// Manager drives one challenger at a time through the lifecycle: it
// installs the challenger into the evaluators for shadowing, reads the
// aggregated scoreboard, and either rejects (FP rate over budget) or
// promotes through the Promoter. The challenger's verdicts are never
// served before promotion — the only write path into serving is the
// promoted reload.
type Manager struct {
	cfg      Config
	promoter Promoter
	evals    []*Evaluator

	mu         sync.Mutex
	state      State                // guarded by mu
	challenger *classify.Classifier // guarded by mu
	label      string               // guarded by mu
	reason     string               // guarded by mu
	promoted   uint64               // guarded by mu
	runs       int                  // guarded by mu
}

// NewManager wires the gate over one or more evaluators (one per local
// engine; a multi-replica harness passes all of them).
func NewManager(cfg Config, promoter Promoter, evals ...*Evaluator) (*Manager, error) {
	if promoter == nil {
		return nil, fmt.Errorf("lifecycle: nil promoter")
	}
	if len(evals) == 0 {
		return nil, fmt.Errorf("lifecycle: no evaluators")
	}
	return &Manager{cfg: cfg, promoter: promoter, evals: evals}, nil
}

// BeginShadow starts shadow-evaluating clf as the next challenger and
// returns its generation label. Fails while another challenger is still
// shadowing.
func (m *Manager) BeginShadow(clf *classify.Classifier) (string, error) {
	if clf == nil {
		return "", fmt.Errorf("lifecycle: nil challenger")
	}
	m.mu.Lock()
	if m.state == StateShadowing {
		m.mu.Unlock()
		return "", fmt.Errorf("lifecycle: challenger %s still shadowing", m.label)
	}
	m.runs++
	m.state = StateShadowing
	m.challenger = clf
	m.label = fmt.Sprintf("challenger-%d", m.runs)
	m.reason = ""
	label := m.label
	m.mu.Unlock()
	for _, e := range m.evals {
		e.SetChallenger(clf, label)
	}
	return label, nil
}

// Aggregate sums the evaluators' scoreboards.
func (m *Manager) Aggregate() Stats {
	var s Stats
	for _, e := range m.evals {
		s.add(e.Snapshot())
	}
	return s
}

// Disagreements concatenates the evaluators' retained disagreement
// examples — the shadow-evaluation report body.
func (m *Manager) Disagreements() []Disagreement {
	var out []Disagreement
	for _, e := range m.evals {
		out = append(out, e.Disagreements()...)
	}
	return out
}

// Tick evaluates the promotion gate once. While shadowing it returns
// StateShadowing until the evidence suffices (MinShadowSamples shadowed
// AND some known-benign truth to measure FP against); then it either
// rejects the challenger — FP rate over budget, challenger uninstalled,
// nothing ever served — or exports its rules and promotes them through
// the Promoter. A failed promotion keeps the state Shadowing and
// returns the error, so a paced Run retries it.
func (m *Manager) Tick(ctx context.Context) (State, error) {
	m.mu.Lock()
	st, clf := m.state, m.challenger
	m.mu.Unlock()
	if st != StateShadowing {
		return st, nil
	}
	agg := m.Aggregate()
	if agg.Samples < uint64(m.cfg.minSamples()) || agg.KnownBenign == 0 {
		return StateShadowing, nil
	}
	if rate := agg.ChallengerFPRate(); rate > m.cfg.fpBudget() {
		for _, e := range m.evals {
			e.ClearChallenger()
		}
		m.mu.Lock()
		m.state = StateRejected
		m.challenger = nil
		m.reason = fmt.Sprintf("FP rate %.4f over budget %.4f (%d FP / %d known benign, %d shadowed)",
			rate, m.cfg.fpBudget(), agg.ChallengerFP, agg.KnownBenign, agg.Samples)
		m.mu.Unlock()
		return StateRejected, nil
	}
	var buf bytes.Buffer
	if err := serve.ExportRules(&buf, clf); err != nil {
		return StateShadowing, fmt.Errorf("lifecycle: export challenger: %w", err)
	}
	gen, err := m.promoter.Promote(ctx, buf.Bytes())
	if err != nil {
		return StateShadowing, fmt.Errorf("lifecycle: promote: %w", err)
	}
	for _, e := range m.evals {
		e.ClearChallenger()
	}
	m.mu.Lock()
	m.state = StatePromoted
	m.challenger = nil
	m.promoted = gen
	m.reason = fmt.Sprintf("promoted to generation %d (FP rate %.4f within budget %.4f, %d shadowed)",
		gen, agg.ChallengerFPRate(), m.cfg.fpBudget(), agg.Samples)
	m.mu.Unlock()
	return StatePromoted, nil
}

// errShadowing is Run's internal "not decided yet" signal: returning it
// from the retried op makes retry.Do sleep one interval and tick again
// — the sanctioned pacing mechanism, no bare sleep loops.
var errShadowing = errors.New("lifecycle: still shadowing")

// Run drives Tick until the current challenger resolves (Promoted or
// Rejected) or ctx is canceled. Pacing and transient-promotion retries
// both run through internal/retry with the configured interval.
func (m *Manager) Run(ctx context.Context) (State, error) {
	iv := m.cfg.interval()
	final := StateIdle
	err := retry.Do(ctx, retry.Policy{
		MaxAttempts:    -1,
		InitialBackoff: iv,
		MaxBackoff:     iv,
	}, func(ctx context.Context) error {
		st, err := m.Tick(ctx)
		if err != nil {
			return err // transient (e.g. promotion fan-out): back off, retry
		}
		switch st {
		case StatePromoted, StateRejected:
			final = st
			return nil
		default:
			return errShadowing
		}
	})
	if err != nil {
		return m.StateNow(), err
	}
	return final, nil
}

// StateNow returns the current state without ticking.
func (m *Manager) StateNow() State {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.state
}

// PromotedGeneration returns the generation the last promotion
// produced (0 if none yet).
func (m *Manager) PromotedGeneration() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.promoted
}

// Status renders the lifecycle state for /admin/lifecycle.
func (m *Manager) Status() map[string]any {
	agg := m.Aggregate()
	m.mu.Lock()
	out := map[string]any{
		"state":              m.state.String(),
		"challenger":         m.label,
		"reason":             m.reason,
		"promotedGeneration": m.promoted,
		"fpBudget":           m.cfg.fpBudget(),
		"minShadowSamples":   m.cfg.minSamples(),
	}
	m.mu.Unlock()
	out["shadowSamples"] = agg.Samples
	out["shadowAgree"] = agg.Agree
	out["shadowDisagree"] = agg.Disagree
	out["shadowDropped"] = agg.Dropped
	out["knownBenign"] = agg.KnownBenign
	out["knownMalicious"] = agg.KnownMalicious
	out["challengerFP"] = agg.ChallengerFP
	out["challengerFPRate"] = agg.ChallengerFPRate()
	out["championFP"] = agg.ChampionFP
	return out
}
