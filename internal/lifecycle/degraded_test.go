package lifecycle

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/classify"
	"repro/internal/serve"
)

// TestPromotionClearsDegraded is the satellite recovery contract: a
// failed /admin/reload leaves the node serving its old generation in
// degraded mode, and a subsequent lifecycle promotion — which rides the
// same reload path — both bumps the generation and clears
// longtail_degraded.
func TestPromotionClearsDegraded(t *testing.T) {
	f := sharedFixture(t)
	engine, err := serve.NewEngine(f.ex, f.champion, serve.EngineConfig{Shards: 2, QueueSize: 256}, &serve.Metrics{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(engine.Close)

	e := newEval(t, f, storeTruth(f))
	engine.SetBatchTap(e.Tap())

	srv, err := serve.NewServer(engine, classify.Reject, serve.WithMetricsAppender(e.WriteMetrics))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	client := &serve.Client{BaseURL: ts.URL}
	ctx := context.Background()

	// Break the node: a garbage rule set through /admin/reload.
	resp, err := http.Post(ts.URL+"/admin/reload", "application/json", strings.NewReader("not rules"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage reload = %s, want 400", resp.Status)
	}
	health, err := client.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if health["status"] != "degraded" {
		t.Fatalf("health after bad reload = %v, want degraded", health["status"])
	}
	metrics, err := client.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(metrics, "longtail_degraded 1") {
		t.Fatal("longtail_degraded not raised after failed reload")
	}

	// Serve live traffic through the engine so the evaluator shadows it.
	m, err := NewManager(Config{MinShadowSamples: 50, FPBudget: 0.05}, ReloadPromoter{Client: client}, e)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.BeginShadow(f.champion); err != nil {
		t.Fatal(err)
	}
	const batch = 64
	for lo := 0; lo < len(f.replay); lo += batch {
		hi := lo + batch
		if hi > len(f.replay) {
			hi = len(f.replay)
		}
		if _, err := engine.ClassifyBatch(ctx, f.replay[lo:hi]); err != nil {
			t.Fatal(err)
		}
		e.Flush()
	}

	st, err := m.Tick(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st != StatePromoted {
		t.Fatalf("state = %v, want promoted (stats %+v)", st, m.Aggregate())
	}

	// Promotion converged the node: new generation, degraded cleared,
	// shadow metrics exposed on the same /metrics surface.
	health, err = client.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if health["status"] != "ok" {
		t.Fatalf("health after promotion = %v, want ok", health["status"])
	}
	if gen := health["generation"].(float64); gen != 2 {
		t.Fatalf("generation after promotion = %v, want 2", gen)
	}
	metrics, err = client.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(metrics, "longtail_degraded 0") {
		t.Fatal("longtail_degraded still raised after promotion")
	}
	if !strings.Contains(metrics, "longtail_shadow_samples_total") {
		t.Fatal("lifecycle exposition block missing from /metrics")
	}

	// Verdicts served after promotion carry the new generation.
	verdicts, err := engine.ClassifyBatch(ctx, f.replay[:10])
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range verdicts {
		if v.Generation != 2 {
			t.Fatalf("post-promotion verdict generation = %d, want 2", v.Generation)
		}
	}
}
