// Package lifecycle closes the loop the paper leaves open: rules are
// mined once from a labeled window, but the download ecosystem drifts,
// so a production deployment must continuously re-learn. The package
// implements a champion/challenger protocol over the serving stack:
//
//   - a Harvester drains served ground truth — completed batches from
//     the verdict ledger plus delayed t₀+2y AV re-scans (the paper's
//     labeling protocol, Section II-B) — into training instances;
//   - classify.Retrain warm-starts a challenger from the champion's
//     rules over the combined evidence;
//   - an Evaluator shadow-classifies live traffic with the challenger,
//     off the hot path, recording agreement, per-rule efficacy and
//     false positives against harvested truth; the challenger's
//     verdicts are never served;
//   - a Manager gates promotion on the paper's 0.1% FP budget (Section
//     VI-C) plus a minimum shadow-sample count, and promotes through
//     the existing zero-downtime /admin/reload — single node or
//     cluster-wide through the router's generation-consistent fan-out.
//
// Everything here is deterministic given its inputs: clocks are passed
// in by callers, pacing runs through internal/retry, and the package is
// enforced clean of ambient time/rand by the longtailvet determinism
// analyzer.
package lifecycle

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/classify"
	"repro/internal/dataset"
	"repro/internal/features"
	"repro/internal/serve"
)

// TruthFunc reports harvested ground truth for a file: whether it is
// malicious, and whether any confident label exists yet. Implementations
// must be safe for concurrent use (the evaluator worker calls it).
type TruthFunc func(file dataset.FileHash) (malicious, known bool)

// Stats is one shadow run's aggregate scoreboard.
type Stats struct {
	// Samples is how many events were shadow-classified; Agree and
	// Disagree partition them by whether challenger and champion issued
	// the same verdict.
	Samples  uint64
	Agree    uint64
	Disagree uint64
	// ExtractErrors counts events whose features could not be extracted
	// for the shadow pass.
	ExtractErrors uint64
	// KnownBenign / KnownMalicious count shadowed events with harvested
	// ground truth.
	KnownBenign    uint64
	KnownMalicious uint64
	// ChampionFP / ChallengerFP count malicious verdicts on known-benign
	// files — the numerators of the paper's FP budget.
	ChampionFP   uint64
	ChallengerFP uint64
	// ChampionDetected / ChallengerDetected count malicious verdicts on
	// known-malicious files.
	ChampionDetected   uint64
	ChallengerDetected uint64
	// Dropped counts tapped batches shed because the shadow queue was
	// full — the price of staying off the hot path.
	Dropped uint64
}

// ChallengerFPRate returns ChallengerFP / KnownBenign (0 when no benign
// truth has been harvested yet — the promotion gate separately requires
// nonzero KnownBenign).
func (s Stats) ChallengerFPRate() float64 {
	if s.KnownBenign == 0 {
		return 0
	}
	return float64(s.ChallengerFP) / float64(s.KnownBenign)
}

// add folds o into s (Dropped included).
func (s *Stats) add(o Stats) {
	s.Samples += o.Samples
	s.Agree += o.Agree
	s.Disagree += o.Disagree
	s.ExtractErrors += o.ExtractErrors
	s.KnownBenign += o.KnownBenign
	s.KnownMalicious += o.KnownMalicious
	s.ChampionFP += o.ChampionFP
	s.ChallengerFP += o.ChallengerFP
	s.ChampionDetected += o.ChampionDetected
	s.ChallengerDetected += o.ChallengerDetected
	s.Dropped += o.Dropped
}

// Disagreement is one champion/challenger verdict split, kept in a
// bounded ring for the shadow-evaluation report.
type Disagreement struct {
	File            string `json:"file"`
	Champion        string `json:"champion"`
	Challenger      string `json:"challenger"`
	ChampionRules   []int  `json:"championRules,omitempty"`
	ChallengerRules []int  `json:"challengerRules,omitempty"`
	// Truth is "benign", "malicious" or "" (no harvested label).
	Truth string `json:"truth,omitempty"`
}

// ruleKey identifies one per-rule counter series: the serving role
// ("champion" or "challenger"), the generation label (the numeric
// rule-set generation for champions, the challenger label while
// shadowing), and the rule index within that rule set.
type ruleKey struct {
	role string
	gen  string
	rule int
}

// ruleCounts is one rule's efficacy tally: matches contributing to
// verdicts, and matches contributing to false-positive verdicts.
type ruleCounts struct {
	hits uint64
	fps  uint64
}

// challengerState pins one shadow run's classifier and label.
type challengerState struct {
	clf   *classify.Classifier
	label string
}

// evalBatch is one tapped batch copied off the serving path, or a flush
// sentinel (flush != nil).
type evalBatch struct {
	events   []dataset.DownloadEvent
	verdicts []serve.VerdictRecord
	flush    chan struct{}
}

// Evaluator shadow-classifies tapped traffic with a challenger rule set
// and scores both generations against harvested ground truth. The tap
// side only copies the batch into a bounded queue (dropping on
// overflow); a single worker goroutine does the feature extraction and
// classification, so the serving hot path never pays for shadowing.
type Evaluator struct {
	ex    *features.Extractor
	truth TruthFunc

	feed chan evalBatch
	quit chan struct{}
	done chan struct{}
	stop sync.Once

	challenger atomic.Pointer[challengerState]
	dropped    atomic.Uint64

	mu      sync.Mutex
	stats   Stats                   // guarded by mu
	rules   map[ruleKey]*ruleCounts // guarded by mu
	ring    []Disagreement          // guarded by mu
	ringCap int                     // guarded by mu
}

// EvaluatorConfig sizes the evaluator; the zero value selects defaults.
type EvaluatorConfig struct {
	// QueueSize bounds the shadow batch queue (default 256); a full
	// queue drops batches rather than blocking the serving path.
	QueueSize int
	// RingSize bounds the retained disagreement examples (default 128).
	RingSize int
}

// NewEvaluator starts an evaluator. truth supplies harvested ground
// truth and may be nil (no FP accounting until one is set via the
// constructor — the FP gate then never passes, which is the safe
// default).
func NewEvaluator(ex *features.Extractor, truth TruthFunc, cfg EvaluatorConfig) (*Evaluator, error) {
	if ex == nil {
		return nil, fmt.Errorf("lifecycle: nil extractor")
	}
	qs := cfg.QueueSize
	if qs <= 0 {
		qs = 256
	}
	rs := cfg.RingSize
	if rs <= 0 {
		rs = 128
	}
	e := &Evaluator{
		ex:      ex,
		truth:   truth,
		feed:    make(chan evalBatch, qs),
		quit:    make(chan struct{}),
		done:    make(chan struct{}),
		rules:   make(map[ruleKey]*ruleCounts),
		ringCap: rs,
	}
	go e.worker()
	return e, nil
}

// Close stops the worker. Remove the engine tap first; tapped batches
// arriving after Close are dropped (never a panic).
func (e *Evaluator) Close() {
	e.stop.Do(func() { close(e.quit) })
	<-e.done
}

// Tap returns the serve.BatchTap feeding this evaluator: it copies the
// batch (the engine's slices belong to the request) and never blocks —
// overflow is counted in Stats.Dropped.
func (e *Evaluator) Tap() serve.BatchTap {
	return func(events []dataset.DownloadEvent, verdicts []serve.VerdictRecord) {
		b := evalBatch{
			events:   append([]dataset.DownloadEvent(nil), events...),
			verdicts: append([]serve.VerdictRecord(nil), verdicts...),
		}
		select {
		case e.feed <- b:
		default:
			e.dropped.Add(1)
		}
	}
}

// SetChallenger installs the rule set to shadow under the given
// generation label and resets the current run's scoreboard (per-rule
// champion history persists across runs — that is the decay trend).
func (e *Evaluator) SetChallenger(clf *classify.Classifier, label string) {
	e.mu.Lock()
	e.stats = Stats{}
	e.ring = nil
	for k := range e.rules {
		if k.role == "challenger" {
			delete(e.rules, k)
		}
	}
	e.mu.Unlock()
	e.challenger.Store(&challengerState{clf: clf, label: label})
}

// ClearChallenger ends the shadow run; tapped batches still score the
// champion's per-rule counters.
func (e *Evaluator) ClearChallenger() { e.challenger.Store(nil) }

// Flush blocks until every batch tapped before the call has been
// processed — the synchronization point for gates and tests.
func (e *Evaluator) Flush() {
	fl := evalBatch{flush: make(chan struct{})}
	select {
	case e.feed <- fl:
		select {
		case <-fl.flush:
		case <-e.done:
		}
	case <-e.done:
	}
}

// Snapshot returns the current run's aggregate stats.
func (e *Evaluator) Snapshot() Stats {
	e.mu.Lock()
	s := e.stats
	e.mu.Unlock()
	s.Dropped = e.dropped.Load()
	return s
}

// Disagreements returns the retained disagreement examples.
func (e *Evaluator) Disagreements() []Disagreement {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]Disagreement(nil), e.ring...)
}

func (e *Evaluator) worker() {
	defer close(e.done)
	for {
		select {
		case <-e.quit:
			return
		case b := <-e.feed:
			if b.flush != nil {
				close(b.flush)
				continue
			}
			e.process(b)
		}
	}
}

var maliciousVerdict = classify.VerdictMalicious.String()

// process scores one batch: champion per-rule counters always (the
// serving verdicts are free); the full shadow pass only while a
// challenger is installed.
func (e *Evaluator) process(b evalBatch) {
	cs := e.challenger.Load()
	e.mu.Lock()
	defer e.mu.Unlock()
	for i := range b.events {
		ev := &b.events[i]
		vr := &b.verdicts[i]
		if vr.Error != "" {
			continue
		}
		var mal, known bool
		if e.truth != nil {
			mal, known = e.truth(ev.File)
		}
		champMal := vr.Verdict == maliciousVerdict
		champGen := strconv.FormatUint(vr.Generation, 10)
		for _, ri := range vr.Rules {
			c := e.ruleLocked(ruleKey{role: "champion", gen: champGen, rule: ri})
			c.hits++
			if champMal && known && !mal {
				c.fps++
			}
		}
		if cs == nil {
			continue
		}
		e.stats.Samples++
		vec, err := e.ex.Vector(ev)
		if err != nil {
			e.stats.ExtractErrors++
			continue
		}
		inst := features.Instance{Vector: vec, File: ev.File}
		cv, crules := cs.clf.ClassifyOne(&inst)
		chalMal := cv == classify.VerdictMalicious
		for _, ri := range crules {
			c := e.ruleLocked(ruleKey{role: "challenger", gen: cs.label, rule: ri})
			c.hits++
			if chalMal && known && !mal {
				c.fps++
			}
		}
		truthStr := ""
		if known {
			if mal {
				e.stats.KnownMalicious++
				truthStr = "malicious"
				if champMal {
					e.stats.ChampionDetected++
				}
				if chalMal {
					e.stats.ChallengerDetected++
				}
			} else {
				e.stats.KnownBenign++
				truthStr = "benign"
				if champMal {
					e.stats.ChampionFP++
				}
				if chalMal {
					e.stats.ChallengerFP++
				}
			}
		}
		if cv.String() == vr.Verdict {
			e.stats.Agree++
			continue
		}
		e.stats.Disagree++
		if len(e.ring) < e.ringCap {
			e.ring = append(e.ring, Disagreement{
				File:            string(ev.File),
				Champion:        vr.Verdict,
				Challenger:      cv.String(),
				ChampionRules:   vr.Rules,
				ChallengerRules: crules,
				Truth:           truthStr,
			})
		}
	}
}

func (e *Evaluator) ruleLocked(k ruleKey) *ruleCounts {
	c := e.rules[k]
	if c == nil {
		c = &ruleCounts{}
		e.rules[k] = c
	}
	return c
}

// WriteMetrics appends the lifecycle exposition block: shadow-run
// aggregates plus the per-rule hit/FP counters for every generation
// observed — the rule-level efficacy-decay surface. Registered on the
// serving mux via serve.WithMetricsAppender.
func (e *Evaluator) WriteMetrics(w io.Writer) {
	s := e.Snapshot()
	fmt.Fprintf(w, "longtail_shadow_samples_total %d\n", s.Samples)
	fmt.Fprintf(w, "longtail_shadow_agree_total %d\n", s.Agree)
	fmt.Fprintf(w, "longtail_shadow_disagree_total %d\n", s.Disagree)
	fmt.Fprintf(w, "longtail_shadow_dropped_total %d\n", s.Dropped)
	fmt.Fprintf(w, "longtail_shadow_extract_errors_total %d\n", s.ExtractErrors)
	fmt.Fprintf(w, "longtail_shadow_truth_total{label=\"benign\"} %d\n", s.KnownBenign)
	fmt.Fprintf(w, "longtail_shadow_truth_total{label=\"malicious\"} %d\n", s.KnownMalicious)
	fmt.Fprintf(w, "longtail_shadow_fp_total{role=\"champion\"} %d\n", s.ChampionFP)
	fmt.Fprintf(w, "longtail_shadow_fp_total{role=\"challenger\"} %d\n", s.ChallengerFP)
	fmt.Fprintf(w, "longtail_shadow_detected_total{role=\"champion\"} %d\n", s.ChampionDetected)
	fmt.Fprintf(w, "longtail_shadow_detected_total{role=\"challenger\"} %d\n", s.ChallengerDetected)

	e.mu.Lock()
	keys := make([]ruleKey, 0, len(e.rules))
	for k := range e.rules {
		keys = append(keys, k)
	}
	counts := make([]ruleCounts, len(keys))
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].role != keys[j].role {
			return keys[i].role < keys[j].role
		}
		if keys[i].gen != keys[j].gen {
			return keys[i].gen < keys[j].gen
		}
		return keys[i].rule < keys[j].rule
	})
	for i, k := range keys {
		counts[i] = *e.rules[k]
	}
	e.mu.Unlock()
	for i, k := range keys {
		fmt.Fprintf(w, "longtail_rule_hits_total{role=%q,gen=%q,rule=\"%d\"} %d\n", k.role, k.gen, k.rule, counts[i].hits)
		fmt.Fprintf(w, "longtail_rule_fp_total{role=%q,gen=%q,rule=\"%d\"} %d\n", k.role, k.gen, k.rule, counts[i].fps)
	}
}
