package lifecycle

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/avsim"
	"repro/internal/classify"
	"repro/internal/dataset"
	"repro/internal/features"
	"repro/internal/journal"
	"repro/internal/labeling"
	"repro/internal/part"
	"repro/internal/serve"
	"repro/internal/synth"
)

// The fixture is one deterministic world shared by every test: a
// labeled corpus, an extractor, a champion trained on month 0, and the
// month-1 events the lifecycle shadows.
type fixture struct {
	res      *synth.Result
	ex       *features.Extractor
	champion *classify.Classifier
	base     []features.Instance // champion's training window
	replay   []dataset.DownloadEvent
}

var (
	fixOnce sync.Once
	fix     *fixture
	fixErr  error
)

func sharedFixture(t *testing.T) *fixture {
	t.Helper()
	fixOnce.Do(func() {
		res, err := synth.Generate(synth.DefaultConfig(11, 0.004))
		if err != nil {
			fixErr = err
			return
		}
		lab, err := labeling.New(avsim.NewDefaultService(), res.Oracle, nil, nil, 0)
		if err != nil {
			fixErr = err
			return
		}
		if err := lab.LabelStore(res.Store, res.Samples); err != nil {
			fixErr = err
			return
		}
		res.Store.Freeze()
		ex, err := features.NewExtractor(res.Store, res.Oracle)
		if err != nil {
			fixErr = err
			return
		}
		months := res.Store.Months()
		if len(months) < 2 {
			fixErr = fmt.Errorf("fixture: need >= 2 months, got %d", len(months))
			return
		}
		base, err := ex.Instances(res.Store.EventIndexesInMonth(months[0]))
		if err != nil {
			fixErr = err
			return
		}
		champion, err := classify.Train(base, 0.001, classify.Reject)
		if err != nil {
			fixErr = err
			return
		}
		events := res.Store.Events()
		var replay []dataset.DownloadEvent
		for _, idx := range res.Store.EventIndexesInMonth(months[1]) {
			replay = append(replay, events[idx])
		}
		fix = &fixture{res: res, ex: ex, champion: champion, base: base, replay: replay}
	})
	if fixErr != nil {
		t.Fatal(fixErr)
	}
	return fix
}

// storeTruth is ground truth straight from the labeled store — what a
// fully caught-up harvester would know.
func storeTruth(f *fixture) TruthFunc {
	return func(h dataset.FileHash) (bool, bool) {
		switch f.res.Store.Label(h) {
		case dataset.LabelMalicious:
			return true, true
		case dataset.LabelBenign:
			return false, true
		default:
			return false, false
		}
	}
}

// champVerdicts classifies events offline with the champion, producing
// the records a serving engine would emit at generation 1.
func champVerdicts(t *testing.T, f *fixture, events []dataset.DownloadEvent) []serve.VerdictRecord {
	t.Helper()
	out := make([]serve.VerdictRecord, len(events))
	for i := range events {
		vec, err := f.ex.Vector(&events[i])
		if err != nil {
			t.Fatal(err)
		}
		inst := features.Instance{Vector: vec, File: events[i].File}
		v, rules := f.champion.ClassifyOne(&inst)
		out[i] = serve.VerdictRecord{
			Type: "verdict", File: string(events[i].File),
			Verdict: v.String(), Generation: 1, Rules: rules,
		}
	}
	return out
}

// badChallenger builds an over-broad challenger: the champion's
// malicious rules plus one crafted rule matching the most common
// (attribute, value) among known-benign replay traffic — guaranteed FP
// bleed over any reasonable budget.
func badChallenger(t *testing.T, f *fixture) *classify.Classifier {
	t.Helper()
	type av struct {
		attr int
		val  string
	}
	counts := make(map[av]int)
	truth := storeTruth(f)
	for i := range f.replay {
		mal, known := truth(f.replay[i].File)
		if !known || mal {
			continue
		}
		vec, err := f.ex.Vector(&f.replay[i])
		if err != nil {
			continue
		}
		for a := 0; a < features.NumNominal; a++ {
			if v := vec.Nominal(a); v != features.None {
				counts[av{a, v}]++
			}
		}
	}
	var best av
	bestN := 0
	for k, n := range counts {
		if n > bestN || (n == bestN && (k.attr < best.attr || (k.attr == best.attr && k.val < best.val))) {
			best, bestN = k, n
		}
	}
	if bestN == 0 {
		t.Fatal("no common benign nominal value found")
	}
	var rules []part.Rule
	for _, r := range f.champion.Rules {
		if r.Class == classify.ClassMalicious {
			rules = append(rules, r)
		}
	}
	rules = append(rules, part.Rule{
		Conditions: []part.Condition{{
			AttrIndex: best.attr,
			AttrName:  features.AttributeNames[best.attr],
			Op:        part.OpEquals,
			Value:     best.val,
		}},
		Class: classify.ClassMalicious, ClassName: "malicious",
		Covered: bestN,
	})
	clf, err := classify.NewFromRules(rules, classify.Reject)
	if err != nil {
		t.Fatal(err)
	}
	return clf
}

func newEval(t *testing.T, f *fixture, truth TruthFunc) *Evaluator {
	t.Helper()
	e, err := NewEvaluator(f.ex, truth, EvaluatorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	return e
}

func feedAll(t *testing.T, f *fixture, e *Evaluator) {
	t.Helper()
	tap := e.Tap()
	const batch = 64
	for lo := 0; lo < len(f.replay); lo += batch {
		hi := lo + batch
		if hi > len(f.replay) {
			hi = len(f.replay)
		}
		events := f.replay[lo:hi]
		tap(events, champVerdicts(t, f, events))
		if lo%(batch*4) == 0 {
			e.Flush() // keep the bounded queue from overflowing
		}
	}
	e.Flush()
}

func TestEvaluatorIdenticalChallengerAgrees(t *testing.T) {
	f := sharedFixture(t)
	e := newEval(t, f, storeTruth(f))
	e.SetChallenger(f.champion, "challenger-1")
	feedAll(t, f, e)

	s := e.Snapshot()
	if s.Samples == 0 || s.Samples != uint64(len(f.replay))-s.Dropped {
		t.Fatalf("samples = %d, dropped = %d, replay = %d", s.Samples, s.Dropped, len(f.replay))
	}
	if s.Disagree != 0 {
		t.Fatalf("identical challenger disagreed %d times: %+v", s.Disagree, e.Disagreements())
	}
	if s.Agree != s.Samples-s.ExtractErrors {
		t.Fatalf("agree = %d, want %d", s.Agree, s.Samples-s.ExtractErrors)
	}
	if s.ChallengerFP != s.ChampionFP {
		t.Fatalf("identical challenger FP %d != champion FP %d", s.ChallengerFP, s.ChampionFP)
	}
	if s.KnownBenign == 0 {
		t.Fatal("no known-benign truth harvested from the store")
	}

	var sb strings.Builder
	e.WriteMetrics(&sb)
	body := sb.String()
	for _, want := range []string{
		"longtail_shadow_samples_total",
		`longtail_rule_hits_total{role="champion",gen="1"`,
		`longtail_rule_hits_total{role="challenger",gen="challenger-1"`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}
}

func TestEvaluatorScoresBadChallenger(t *testing.T) {
	f := sharedFixture(t)
	e := newEval(t, f, storeTruth(f))
	e.SetChallenger(badChallenger(t, f), "challenger-1")
	feedAll(t, f, e)

	s := e.Snapshot()
	if s.Disagree == 0 {
		t.Fatal("over-broad challenger produced no disagreements")
	}
	if s.ChallengerFP == 0 {
		t.Fatal("over-broad challenger produced no false positives")
	}
	if rate := s.ChallengerFPRate(); rate <= 0.001 {
		t.Fatalf("bad challenger FP rate %.4f not over the 0.1%% budget", rate)
	}
	if len(e.Disagreements()) == 0 {
		t.Fatal("no disagreement examples retained")
	}
}

func TestHarvesterDelayedRescans(t *testing.T) {
	f := sharedFixture(t)
	h, err := NewHarvester(avsim.NewDefaultService(), f.ex, f.res.Samples, 0)
	if err != nil {
		t.Fatal(err)
	}
	h.Observe(f.replay)
	st := h.Stats()
	if st.PendingScans == 0 {
		t.Fatal("no re-scans scheduled")
	}

	first := f.replay[0].Time
	if n := h.Advance(first.Add(24 * time.Hour)); n != 0 {
		t.Fatalf("harvested %d instances before any re-scan was due", n)
	}
	due := first.Add(labeling.DefaultRescanDelay).AddDate(0, 2, 0)
	n := h.Advance(due)
	if n == 0 {
		t.Fatal("no instances harvested at t+2y")
	}
	if got := h.Stats().Harvested; got != n {
		t.Fatalf("Stats.Harvested = %d, want %d", got, n)
	}

	// Harvested truth must agree with the offline labeler on every
	// confidently labeled file.
	truth := h.Truth()
	checked := 0
	for i := range f.replay {
		mal, known := truth(f.replay[i].File)
		if !known {
			continue
		}
		checked++
		want := f.res.Store.Label(f.replay[i].File)
		if mal && want != dataset.LabelMalicious {
			t.Fatalf("file %s harvested malicious, store says %v", f.replay[i].File, want)
		}
		if !mal && want != dataset.LabelBenign {
			t.Fatalf("file %s harvested benign, store says %v", f.replay[i].File, want)
		}
	}
	if checked == 0 {
		t.Fatal("no harvested files to check")
	}

	// Training is base + harvested.
	if got, want := len(h.Training(f.base)), len(f.base)+n; got != want {
		t.Fatalf("Training returned %d instances, want %d", got, want)
	}
}

func TestHarvesterDrainsLedger(t *testing.T) {
	f := sharedFixture(t)
	h, err := NewHarvester(avsim.NewDefaultService(), f.ex, f.res.Samples, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate served traffic through a real ledger.
	l, _, err := serve.OpenLedger(serve.LedgerOptions{Journal: journalOpts(t)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	events := f.replay[:30]
	if err := l.Accept("batch-1", events); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Result("batch-1", champVerdicts(t, f, events)); err != nil {
		t.Fatal(err)
	}
	if n := h.DrainLedger(l); n != 1 {
		t.Fatalf("DrainLedger = %d, want 1", n)
	}
	if n := h.DrainLedger(l); n != 0 {
		t.Fatalf("second DrainLedger = %d, want 0 (already drained)", n)
	}
	if st := h.Stats(); st.ServedFiles == 0 {
		t.Fatal("no served verdicts recorded")
	}
}

func journalOpts(t *testing.T) journal.Options {
	t.Helper()
	return journal.Options{Dir: t.TempDir()}
}

// fakePromoter records what reaches the reload path.
type fakePromoter struct {
	mu    sync.Mutex
	calls int
	rules []byte
	err   error
}

func (p *fakePromoter) Promote(_ context.Context, rulesJSON []byte) (uint64, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.calls++
	p.rules = append([]byte(nil), rulesJSON...)
	if p.err != nil {
		return 0, p.err
	}
	return 2, nil
}

func TestManagerRejectsOverBudgetChallenger(t *testing.T) {
	f := sharedFixture(t)
	e := newEval(t, f, storeTruth(f))
	p := &fakePromoter{}
	m, err := NewManager(Config{MinShadowSamples: 50}, p, e)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.BeginShadow(badChallenger(t, f)); err != nil {
		t.Fatal(err)
	}
	// Not enough evidence yet: the gate must hold.
	if st, err := m.Tick(context.Background()); err != nil || st != StateShadowing {
		t.Fatalf("early Tick = %v, %v; want shadowing", st, err)
	}
	feedAll(t, f, e)
	st, err := m.Tick(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st != StateRejected {
		t.Fatalf("state = %v, want rejected (stats %+v)", st, m.Aggregate())
	}
	if p.calls != 0 {
		t.Fatal("rejected challenger reached the promoter")
	}
	status := m.Status()
	if status["state"] != "rejected" {
		t.Fatalf("status = %v", status)
	}
}

func TestManagerPromotesWithinBudget(t *testing.T) {
	f := sharedFixture(t)
	e := newEval(t, f, storeTruth(f))
	p := &fakePromoter{}
	m, err := NewManager(Config{MinShadowSamples: 50, FPBudget: 0.05}, p, e)
	if err != nil {
		t.Fatal(err)
	}
	// The champion (FP rate ~3% on this fixture's small known-benign
	// set) fits the configured 5% budget.
	if _, err := m.BeginShadow(f.champion); err != nil {
		t.Fatal(err)
	}
	feedAll(t, f, e)
	st, err := m.Tick(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st != StatePromoted {
		t.Fatalf("state = %v, want promoted (stats %+v)", st, m.Aggregate())
	}
	if p.calls != 1 {
		t.Fatalf("promoter called %d times, want 1", p.calls)
	}
	// The promoted payload must round-trip through the reload loader.
	clf, err := serve.LoadRules(strings.NewReader(string(p.rules)), classify.Reject)
	if err != nil {
		t.Fatalf("promoted rules failed reload validation: %v", err)
	}
	if len(clf.Rules) != len(f.champion.Rules) {
		t.Fatalf("promoted %d rules, champion has %d", len(clf.Rules), len(f.champion.Rules))
	}
	if m.PromotedGeneration() != 2 {
		t.Fatalf("promoted generation = %d, want 2", m.PromotedGeneration())
	}
	// A second challenger can start after resolution.
	if _, err := m.BeginShadow(f.champion); err != nil {
		t.Fatal(err)
	}
}

func TestManagerRunResolves(t *testing.T) {
	f := sharedFixture(t)
	e := newEval(t, f, storeTruth(f))
	p := &fakePromoter{}
	m, err := NewManager(Config{MinShadowSamples: 50, FPBudget: 0.05, Interval: 5 * time.Millisecond}, p, e)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.BeginShadow(f.champion); err != nil {
		t.Fatal(err)
	}
	resolved := make(chan State, 1)
	go func() {
		st, err := m.Run(context.Background())
		if err != nil {
			t.Error(err)
		}
		resolved <- st
	}()
	feedAll(t, f, e)
	select {
	case st := <-resolved:
		if st != StatePromoted {
			t.Fatalf("Run resolved %v, want promoted", st)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Run did not resolve")
	}
}

func TestManagerRunHonorsContext(t *testing.T) {
	f := sharedFixture(t)
	e := newEval(t, f, storeTruth(f))
	m, err := NewManager(Config{Interval: time.Millisecond}, &fakePromoter{}, e)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.BeginShadow(f.champion); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := m.Run(ctx); err == nil {
		t.Fatal("Run returned nil on canceled context")
	}
}
