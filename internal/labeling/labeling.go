// Package labeling implements the paper's ground-truth construction
// (Section II-B). For every software file it combines the file
// whitelists, a scan of the AV service close to the download time, and a
// rescan almost two years later, and assigns one of five labels:
//
//   - benign: whitelisted, or still clean on every engine at the rescan
//     with a scan history spanning at least 14 days;
//   - likely benign: clean, but first and last scans lie within 14 days;
//   - malicious: detected by at least one of the ten trusted engines;
//   - likely malicious: detected only by the less reliable engines;
//   - unknown: no ground truth exists at all (not whitelisted and never
//     seen by the scan service).
//
// For malicious files it additionally derives the behaviour type (via
// the AVType reimplementation) and the family (via the AVclass
// reimplementation).
package labeling

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/avclass"
	"repro/internal/avsim"
	"repro/internal/avtype"
	"repro/internal/dataset"
	"repro/internal/reputation"
)

// DefaultRescanDelay is how long after the download the second scan
// happens; the paper waited almost two years.
const DefaultRescanDelay = 2 * 365 * 24 * time.Hour

// MinBenignScanSpread is the minimum first-to-last scan spread for a
// clean file to be labeled benign rather than likely benign.
const MinBenignScanSpread = 14 * 24 * time.Hour

// Labeler assigns ground truth to files, processes and URLs.
type Labeler struct {
	svc         *avsim.Service
	oracle      *reputation.Oracle
	families    *avclass.Labeler
	types       *avtype.Extractor
	rescanDelay time.Duration

	// TypeStats accumulates which AVType rule resolved each malicious
	// file's behaviour type (Section II-C shares).
	TypeStats avtype.Stats
}

// New builds a Labeler. svc and oracle are required; familyLabeler and
// typeExtractor default to fresh instances when nil.
func New(svc *avsim.Service, oracle *reputation.Oracle, familyLabeler *avclass.Labeler, typeExtractor *avtype.Extractor, rescanDelay time.Duration) (*Labeler, error) {
	if svc == nil {
		return nil, fmt.Errorf("labeling: nil scan service")
	}
	if oracle == nil {
		return nil, fmt.Errorf("labeling: nil reputation oracle")
	}
	if familyLabeler == nil {
		familyLabeler = avclass.NewLabeler()
	}
	if typeExtractor == nil {
		typeExtractor = avtype.NewExtractor(nil)
	}
	if rescanDelay <= 0 {
		rescanDelay = DefaultRescanDelay
	}
	return &Labeler{
		svc:         svc,
		oracle:      oracle,
		families:    familyLabeler,
		types:       typeExtractor,
		rescanDelay: rescanDelay,
	}, nil
}

// LabelFile assigns ground truth to one file. sample is the scan-service
// profile of the file (nil when the service has never seen it) and
// downloadTime is when the file was first observed in the telemetry.
func (l *Labeler) LabelFile(hash dataset.FileHash, sample *avsim.Sample, downloadTime time.Time) dataset.GroundTruth {
	gt, res := l.labelFile(hash, sample, downloadTime)
	if res != avtype.ResolvedNone {
		l.TypeStats.Observe(res)
	}
	return gt
}

// labelFile is the side-effect-free core of LabelFile; it reports the
// AVType resolution used (ResolvedNone when no type was derived) so
// callers can accumulate statistics themselves — which is what makes the
// parallel LabelStore safe.
func (l *Labeler) labelFile(hash dataset.FileHash, sample *avsim.Sample, downloadTime time.Time) (dataset.GroundTruth, avtype.Resolution) {
	if l.oracle.FileWhitelist.Contains(hash) {
		return dataset.GroundTruth{Label: dataset.LabelBenign}, avtype.ResolvedNone
	}
	// First scan close to the download happens in the real pipeline too;
	// the final labels come from the rescan, which subsumes it.
	rescan := l.svc.Scan(sample, downloadTime.Add(l.rescanDelay))
	if rescan == nil {
		return dataset.GroundTruth{Label: dataset.LabelUnknown}, avtype.ResolvedNone
	}
	detections := rescan.Detections()
	if len(detections) == 0 {
		if rescan.LastScan.Sub(rescan.FirstScan) < MinBenignScanSpread {
			return dataset.GroundTruth{Label: dataset.LabelLikelyBenign}, avtype.ResolvedNone
		}
		return dataset.GroundTruth{Label: dataset.LabelBenign}, avtype.ResolvedNone
	}
	if len(rescan.TrustedDetections()) == 0 {
		return dataset.GroundTruth{Label: dataset.LabelLikelyMalicious}, avtype.ResolvedNone
	}
	typ, res := l.types.Extract(rescan.LeadingLabels())
	fam := l.families.Label(rescan.AllLabels())
	return dataset.GroundTruth{
		Label:  dataset.LabelMalicious,
		Type:   typ,
		Family: fam.Family,
	}, res
}

// LabelDomain assigns a URL verdict to an e2LD using the reputation
// oracle.
func (l *Labeler) LabelDomain(domain string) dataset.URLVerdict {
	return l.oracle.LabelDomain(domain)
}

// Samples maps file hashes to their scan-service profiles.
type Samples map[dataset.FileHash]*avsim.Sample

// LabelStore labels every downloaded file and downloading process in the
// store, plus every download domain, and writes the results back into
// the store. The store must not be frozen yet.
//
// File labeling fans out across all CPUs: each file's label depends only
// on its own scan profile, so the work is embarrassingly parallel and
// the result is identical to the sequential order.
func (l *Labeler) LabelStore(store *dataset.Store, samples Samples) error {
	if store == nil {
		return fmt.Errorf("labeling: nil store")
	}
	firstSeen := make(map[dataset.FileHash]time.Time)
	domains := make(map[string]struct{})
	for _, e := range store.Events() {
		for _, h := range []dataset.FileHash{e.File, e.Process} {
			if t, ok := firstSeen[h]; !ok || e.Time.Before(t) {
				firstSeen[h] = e.Time
			}
		}
		if e.Domain != "" {
			domains[e.Domain] = struct{}{}
		}
	}

	type job struct {
		hash dataset.FileHash
		at   time.Time
	}
	type outcome struct {
		hash dataset.FileHash
		gt   dataset.GroundTruth
		res  avtype.Resolution
	}
	jobs := make([]job, 0, len(firstSeen))
	for h, t := range firstSeen {
		jobs = append(jobs, job{hash: h, at: t})
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers < 1 {
		workers = 1
	}
	outcomes := make([]outcome, len(jobs))
	var wg sync.WaitGroup
	var next atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				j := jobs[i]
				gt, res := l.labelFile(j.hash, samples[j.hash], j.at)
				outcomes[i] = outcome{hash: j.hash, gt: gt, res: res}
			}
		}()
	}
	wg.Wait()
	for _, o := range outcomes {
		if o.res != avtype.ResolvedNone {
			l.TypeStats.Observe(o.res)
		}
		if err := store.SetTruth(o.hash, o.gt); err != nil {
			return fmt.Errorf("labeling: set truth for %s: %w", o.hash, err)
		}
	}
	for d := range domains {
		if v := l.LabelDomain(d); v != dataset.URLUnknown {
			if err := store.SetURLVerdict(d, v); err != nil {
				return fmt.Errorf("labeling: set verdict for %s: %w", d, err)
			}
		}
	}
	return nil
}
