// Package labeling implements the paper's ground-truth construction
// (Section II-B). For every software file it combines the file
// whitelists, a scan of the AV service close to the download time, and a
// rescan almost two years later, and assigns one of five labels:
//
//   - benign: whitelisted, or still clean on every engine at the rescan
//     with a scan history spanning at least 14 days;
//   - likely benign: clean, but first and last scans lie within 14 days;
//   - malicious: detected by at least one of the ten trusted engines;
//   - likely malicious: detected only by the less reliable engines;
//   - unknown: no ground truth exists at all (not whitelisted and never
//     seen by the scan service).
//
// For malicious files it additionally derives the behaviour type (via
// the AVType reimplementation) and the family (via the AVclass
// reimplementation).
package labeling

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/avclass"
	"repro/internal/avsim"
	"repro/internal/avtype"
	"repro/internal/dataset"
	"repro/internal/reputation"
	"repro/internal/retry"
)

// DefaultRescanDelay is how long after the download the second scan
// happens; the paper waited almost two years.
const DefaultRescanDelay = 2 * 365 * 24 * time.Hour

// MinBenignScanSpread is the minimum first-to-last scan spread for a
// clean file to be labeled benign rather than likely benign.
const MinBenignScanSpread = 14 * 24 * time.Hour

// Scanner is the labeler's view of the multi-engine scan service. The
// paper queried a remote crowdsourced service (VirusTotal) that fails,
// times out and rate-limits in practice, so the dependency carries an
// error return: a nil report with a nil error means the corpus has no
// record of the sample ("file not found"), while a non-nil error means
// the query itself failed and may be retried.
type Scanner interface {
	Scan(hash dataset.FileHash, sample *avsim.Sample, at time.Time) (*avsim.Report, error)
}

// ServiceScanner adapts the in-process *avsim.Service — which cannot
// fail — to the Scanner interface.
type ServiceScanner struct {
	Svc *avsim.Service
}

// Scan implements Scanner over the wrapped service.
func (s ServiceScanner) Scan(_ dataset.FileHash, sample *avsim.Sample, at time.Time) (*avsim.Report, error) {
	return s.Svc.Scan(sample, at), nil
}

// Labeler assigns ground truth to files, processes and URLs.
type Labeler struct {
	scanner     Scanner
	oracle      *reputation.Oracle
	families    *avclass.Labeler
	types       *avtype.Extractor
	rescanDelay time.Duration

	// retryPolicy governs scan retries; the zero value selects the
	// retry package defaults (5 attempts, exponential backoff with full
	// jitter). Set it before labeling starts via SetRetryPolicy.
	retryPolicy retry.Policy

	// scanRetries counts scan attempts that failed and were retried;
	// degraded counts files whose scans exhausted the retry budget and
	// fell back to the unknown label.
	scanRetries atomic.Int64
	degraded    atomic.Int64

	// statsMu guards TypeStats, making LabelFile safe to call from
	// multiple goroutines.
	statsMu sync.Mutex

	// TypeStats accumulates which AVType rule resolved each malicious
	// file's behaviour type (Section II-C shares). Writes are guarded by
	// statsMu; read it only after labeling completes.
	TypeStats avtype.Stats
}

// New builds a Labeler over an in-process scan service. svc and oracle
// are required; familyLabeler and typeExtractor default to fresh
// instances when nil.
func New(svc *avsim.Service, oracle *reputation.Oracle, familyLabeler *avclass.Labeler, typeExtractor *avtype.Extractor, rescanDelay time.Duration) (*Labeler, error) {
	if svc == nil {
		return nil, fmt.Errorf("labeling: nil scan service")
	}
	return NewWithScanner(ServiceScanner{Svc: svc}, oracle, familyLabeler, typeExtractor, rescanDelay)
}

// NewWithScanner builds a Labeler over an arbitrary Scanner — the
// injection point for fault-tolerance decorators such as
// faults.FlakyScanner. scanner and oracle are required; familyLabeler
// and typeExtractor default to fresh instances when nil.
func NewWithScanner(scanner Scanner, oracle *reputation.Oracle, familyLabeler *avclass.Labeler, typeExtractor *avtype.Extractor, rescanDelay time.Duration) (*Labeler, error) {
	if scanner == nil {
		return nil, fmt.Errorf("labeling: nil scanner")
	}
	if oracle == nil {
		return nil, fmt.Errorf("labeling: nil reputation oracle")
	}
	if familyLabeler == nil {
		familyLabeler = avclass.NewLabeler()
	}
	if typeExtractor == nil {
		typeExtractor = avtype.NewExtractor(nil)
	}
	if rescanDelay <= 0 {
		rescanDelay = DefaultRescanDelay
	}
	return &Labeler{
		scanner:     scanner,
		oracle:      oracle,
		families:    familyLabeler,
		types:       typeExtractor,
		rescanDelay: rescanDelay,
	}, nil
}

// SetRetryPolicy replaces the scan retry policy. Call it before
// labeling starts; it is not safe to call concurrently with labeling.
func (l *Labeler) SetRetryPolicy(p retry.Policy) { l.retryPolicy = p }

// Degraded returns how many files fell back to the unknown label
// because their scans kept failing after all retries. The paper's
// "unknown" label means no ground truth exists — which is exactly the
// information available for a file whose scan service never answered.
func (l *Labeler) Degraded() int64 { return l.degraded.Load() }

// ScanRetries returns how many failed scan attempts were retried.
func (l *Labeler) ScanRetries() int64 { return l.scanRetries.Load() }

// scan queries the scanner under the retry policy. A non-nil error
// means the budget is exhausted and the caller must degrade.
func (l *Labeler) scan(hash dataset.FileHash, sample *avsim.Sample, at time.Time) (*avsim.Report, error) {
	p := l.retryPolicy
	base := p.OnRetry
	p.OnRetry = func(attempt int, err error) {
		l.scanRetries.Add(1)
		if base != nil {
			base(attempt, err)
		}
	}
	var rep *avsim.Report
	err := retry.Do(context.Background(), p, func(context.Context) error {
		r, err := l.scanner.Scan(hash, sample, at)
		if err != nil {
			return err
		}
		rep = r
		return nil
	})
	return rep, err
}

// LabelFile assigns ground truth to one file. sample is the scan-service
// profile of the file (nil when the service has never seen it) and
// downloadTime is when the file was first observed in the telemetry.
func (l *Labeler) LabelFile(hash dataset.FileHash, sample *avsim.Sample, downloadTime time.Time) dataset.GroundTruth {
	gt, res := l.labelFile(hash, sample, downloadTime)
	if res != avtype.ResolvedNone {
		l.statsMu.Lock()
		l.TypeStats.Observe(res)
		l.statsMu.Unlock()
	}
	return gt
}

// labelFile is the side-effect-free core of LabelFile; it reports the
// AVType resolution used (ResolvedNone when no type was derived) so
// callers can accumulate statistics themselves — which is what makes the
// parallel LabelStore safe.
func (l *Labeler) labelFile(hash dataset.FileHash, sample *avsim.Sample, downloadTime time.Time) (dataset.GroundTruth, avtype.Resolution) {
	if l.oracle.FileWhitelist.Contains(hash) {
		return dataset.GroundTruth{Label: dataset.LabelBenign}, avtype.ResolvedNone
	}
	// First scan close to the download happens in the real pipeline too;
	// the final labels come from the rescan, which subsumes it.
	rescan, err := l.scan(hash, sample, downloadTime.Add(l.rescanDelay))
	if err != nil {
		// Graceful degradation: the scan service never answered for this
		// file despite retries. No ground truth can be derived, which is
		// precisely what the unknown label means; record the fallback so
		// operators can see how much of the dataset it affected.
		l.degraded.Add(1)
		return dataset.GroundTruth{Label: dataset.LabelUnknown}, avtype.ResolvedNone
	}
	if rescan == nil {
		return dataset.GroundTruth{Label: dataset.LabelUnknown}, avtype.ResolvedNone
	}
	detections := rescan.Detections()
	if len(detections) == 0 {
		if rescan.LastScan.Sub(rescan.FirstScan) < MinBenignScanSpread {
			return dataset.GroundTruth{Label: dataset.LabelLikelyBenign}, avtype.ResolvedNone
		}
		return dataset.GroundTruth{Label: dataset.LabelBenign}, avtype.ResolvedNone
	}
	if len(rescan.TrustedDetections()) == 0 {
		return dataset.GroundTruth{Label: dataset.LabelLikelyMalicious}, avtype.ResolvedNone
	}
	typ, res := l.types.Extract(rescan.LeadingLabels())
	fam := l.families.Label(rescan.AllLabels())
	return dataset.GroundTruth{
		Label:  dataset.LabelMalicious,
		Type:   typ,
		Family: fam.Family,
	}, res
}

// LabelDomain assigns a URL verdict to an e2LD using the reputation
// oracle.
func (l *Labeler) LabelDomain(domain string) dataset.URLVerdict {
	return l.oracle.LabelDomain(domain)
}

// Samples maps file hashes to their scan-service profiles.
type Samples map[dataset.FileHash]*avsim.Sample

// LabelStore labels every downloaded file and downloading process in the
// store, plus every download domain, and writes the results back into
// the store. The store must not be frozen yet.
//
// File labeling fans out across all CPUs: each file's label depends only
// on its own scan profile, so the work is embarrassingly parallel and
// the result is identical to the sequential order.
func (l *Labeler) LabelStore(store *dataset.Store, samples Samples) error {
	if store == nil {
		return fmt.Errorf("labeling: nil store")
	}
	firstSeen := make(map[dataset.FileHash]time.Time)
	domains := make(map[string]struct{})
	for _, e := range store.Events() {
		for _, h := range []dataset.FileHash{e.File, e.Process} {
			if t, ok := firstSeen[h]; !ok || e.Time.Before(t) {
				firstSeen[h] = e.Time
			}
		}
		if e.Domain != "" {
			domains[e.Domain] = struct{}{}
		}
	}

	type job struct {
		hash dataset.FileHash
		at   time.Time
	}
	type outcome struct {
		hash dataset.FileHash
		gt   dataset.GroundTruth
		res  avtype.Resolution
	}
	jobs := make([]job, 0, len(firstSeen))
	for h, t := range firstSeen {
		jobs = append(jobs, job{hash: h, at: t})
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers < 1 {
		workers = 1
	}
	outcomes := make([]outcome, len(jobs))
	var wg sync.WaitGroup
	var next atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				j := jobs[i]
				gt, res := l.labelFile(j.hash, samples[j.hash], j.at)
				outcomes[i] = outcome{hash: j.hash, gt: gt, res: res}
			}
		}()
	}
	wg.Wait()
	for _, o := range outcomes {
		if o.res != avtype.ResolvedNone {
			l.statsMu.Lock()
			l.TypeStats.Observe(o.res)
			l.statsMu.Unlock()
		}
		if err := store.SetTruth(o.hash, o.gt); err != nil {
			return fmt.Errorf("labeling: set truth for %s: %w", o.hash, err)
		}
	}
	for d := range domains {
		if v := l.LabelDomain(d); v != dataset.URLUnknown {
			if err := store.SetURLVerdict(d, v); err != nil {
				return fmt.Errorf("labeling: set verdict for %s: %w", d, err)
			}
		}
	}
	return nil
}
