package labeling

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/avsim"
	"repro/internal/avtype"
	"repro/internal/dataset"
	"repro/internal/reputation"
)

var dlTime = time.Date(2014, time.February, 10, 0, 0, 0, 0, time.UTC)

func newLabeler(t *testing.T, fileWL []dataset.FileHash) *Labeler {
	t.Helper()
	wl, err := reputation.NewFileList(fileWL)
	if err != nil {
		t.Fatal(err)
	}
	oracle := reputation.NewOracle(nil, nil, nil, nil, wl, nil)
	l, err := New(avsim.NewDefaultService(), oracle, nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestNewValidation(t *testing.T) {
	oracle := reputation.NewOracle(nil, nil, nil, nil, nil, nil)
	if _, err := New(nil, oracle, nil, nil, 0); err == nil {
		t.Error("nil service accepted")
	}
	if _, err := New(avsim.NewDefaultService(), nil, nil, nil, 0); err == nil {
		t.Error("nil oracle accepted")
	}
}

func TestLabelFileWhitelisted(t *testing.T) {
	l := newLabeler(t, []dataset.FileHash{"white1"})
	gt := l.LabelFile("white1", nil, dlTime)
	if gt.Label != dataset.LabelBenign {
		t.Errorf("whitelisted file = %v, want benign", gt.Label)
	}
}

func TestLabelFileUnknown(t *testing.T) {
	l := newLabeler(t, nil)
	// Not whitelisted, not in corpus: the 83% case.
	gt := l.LabelFile("ghost", nil, dlTime)
	if gt.Label != dataset.LabelUnknown {
		t.Errorf("out-of-corpus file = %v, want unknown", gt.Label)
	}
	s := &avsim.Sample{Hash: "ghost2", InCorpus: false}
	if gt := l.LabelFile("ghost2", s, dlTime); gt.Label != dataset.LabelUnknown {
		t.Errorf("InCorpus=false file = %v, want unknown", gt.Label)
	}
}

func TestLabelFileMalicious(t *testing.T) {
	l := newLabeler(t, nil)
	s := &avsim.Sample{
		Hash:          "mal1",
		InCorpus:      true,
		FirstScan:     dlTime,
		LastScan:      dlTime.AddDate(2, 0, 0),
		TrueMalicious: true,
		Type:          dataset.TypeBanker,
		Family:        "zbot",
		FamilyVisible: true,
	}
	gt := l.LabelFile("mal1", s, dlTime)
	if gt.Label != dataset.LabelMalicious {
		t.Fatalf("label = %v, want malicious", gt.Label)
	}
	if gt.Type != dataset.TypeBanker {
		t.Errorf("type = %v, want banker", gt.Type)
	}
	if gt.Family != "zbot" {
		t.Errorf("family = %q, want zbot", gt.Family)
	}
	if l.TypeStats.Total == 0 {
		t.Error("TypeStats not updated")
	}
}

func TestLabelFileLikelyMalicious(t *testing.T) {
	l := newLabeler(t, nil)
	s := &avsim.Sample{
		Hash:          "lm1",
		InCorpus:      true,
		FirstScan:     dlTime,
		LastScan:      dlTime.AddDate(2, 0, 0),
		TrueMalicious: true,
		TrustedBlind:  true,
		Type:          dataset.TypeTrojan,
	}
	// Trusted engines never detect; some minor engine should, making the
	// file likely malicious. Detection is hash-dependent, so probe a few.
	found := false
	for _, h := range []dataset.FileHash{"lm1", "lm2", "lm3", "lm4", "lm5", "lm6"} {
		s.Hash = h
		gt := l.LabelFile(h, s, dlTime)
		switch gt.Label {
		case dataset.LabelLikelyMalicious:
			found = true
		case dataset.LabelMalicious:
			t.Fatalf("trusted-blind file labeled malicious")
		}
	}
	if !found {
		t.Error("no trusted-blind sample became likely malicious")
	}
}

func TestLabelFileBenignVsLikelyBenign(t *testing.T) {
	l := newLabeler(t, nil)
	long := &avsim.Sample{
		Hash:      "clean-long",
		InCorpus:  true,
		FirstScan: dlTime,
		LastScan:  dlTime.AddDate(1, 0, 0),
	}
	if gt := l.LabelFile("clean-long", long, dlTime); gt.Label != dataset.LabelBenign {
		t.Errorf("long-history clean file = %v, want benign", gt.Label)
	}
	// First scan only days before the rescan: spread under 14 days.
	rescanAt := dlTime.Add(DefaultRescanDelay)
	short := &avsim.Sample{
		Hash:      "clean-short",
		InCorpus:  true,
		FirstScan: rescanAt.AddDate(0, 0, -5),
		LastScan:  rescanAt.AddDate(0, 0, 30),
	}
	if gt := l.LabelFile("clean-short", short, dlTime); gt.Label != dataset.LabelLikelyBenign {
		t.Errorf("short-history clean file = %v, want likely benign", gt.Label)
	}
}

func TestLabelStore(t *testing.T) {
	wl, err := reputation.NewFileList([]dataset.FileHash{"proc-benign"})
	if err != nil {
		t.Fatal(err)
	}
	alexa, err := reputation.NewAlexaList(map[string]int{"good.com": 10})
	if err != nil {
		t.Fatal(err)
	}
	urlWL, err := reputation.NewDomainList([]string{"good.com"})
	if err != nil {
		t.Fatal(err)
	}
	oracle := reputation.NewOracle(alexa, urlWL, nil, nil, wl, nil)
	l, err := New(avsim.NewDefaultService(), oracle, nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}

	store := dataset.NewStore()
	ev := dataset.DownloadEvent{
		File:     "mal-file",
		Machine:  "m1",
		Process:  "proc-benign",
		URL:      "http://good.com/x.exe",
		Domain:   "good.com",
		Time:     dlTime,
		Executed: true,
	}
	if err := store.AddEvent(ev); err != nil {
		t.Fatal(err)
	}
	samples := Samples{
		"mal-file": {
			Hash: "mal-file", InCorpus: true,
			FirstScan: dlTime, LastScan: dlTime.AddDate(2, 0, 0),
			TrueMalicious: true, Type: dataset.TypeDropper,
		},
	}
	if err := l.LabelStore(store, samples); err != nil {
		t.Fatal(err)
	}
	store.Freeze()
	if got := store.Label("mal-file"); got != dataset.LabelMalicious {
		t.Errorf("mal-file = %v, want malicious", got)
	}
	if got := store.Label("proc-benign"); got != dataset.LabelBenign {
		t.Errorf("proc-benign = %v, want benign (whitelisted)", got)
	}
	if got := store.URLVerdict("good.com"); got != dataset.URLBenign {
		t.Errorf("good.com = %v, want benign", got)
	}
}

func TestLabelStoreNil(t *testing.T) {
	l := newLabeler(t, nil)
	if err := l.LabelStore(nil, nil); err == nil {
		t.Error("nil store accepted")
	}
}

func TestTypeStatsSharesAccumulate(t *testing.T) {
	l := newLabeler(t, nil)
	for i := 0; i < 120; i++ {
		s := &avsim.Sample{
			Hash:          dataset.FileHash(fmt.Sprintf("stat-%03d", i)),
			InCorpus:      true,
			FirstScan:     dlTime,
			LastScan:      dlTime.AddDate(2, 0, 0),
			TrueMalicious: true,
			Type:          dataset.AllMalwareTypes[i%len(dataset.AllMalwareTypes)],
			Family:        "zbot",
			FamilyVisible: i%3 == 0,
		}
		l.LabelFile(s.Hash, s, dlTime)
	}
	st := l.TypeStats
	if st.Total < 100 {
		t.Fatalf("TypeStats.Total = %d", st.Total)
	}
	sum := st.Share(avtype.ResolvedUnanimous) + st.Share(avtype.ResolvedVoting) +
		st.Share(avtype.ResolvedSpecificity) + st.Share(avtype.ResolvedManual)
	if sum < 0.99 || sum > 1.01 {
		t.Errorf("resolution shares sum to %v", sum)
	}
}

func TestLikelyBenignBoundary(t *testing.T) {
	l := newLabeler(t, nil)
	rescanAt := dlTime.Add(DefaultRescanDelay)
	// Spread of exactly 14 days: benign (the rule is "< 14 days").
	s := &avsim.Sample{
		Hash:      "boundary-14d",
		InCorpus:  true,
		FirstScan: rescanAt.Add(-MinBenignScanSpread),
		LastScan:  rescanAt.AddDate(0, 0, 30),
	}
	if gt := l.LabelFile(s.Hash, s, dlTime); gt.Label != dataset.LabelBenign {
		t.Errorf("14-day spread = %v, want benign", gt.Label)
	}
	// Just under 14 days: likely benign.
	s2 := &avsim.Sample{
		Hash:      "boundary-13d",
		InCorpus:  true,
		FirstScan: rescanAt.Add(-MinBenignScanSpread + time.Hour),
		LastScan:  rescanAt.AddDate(0, 0, 30),
	}
	if gt := l.LabelFile(s2.Hash, s2, dlTime); gt.Label != dataset.LabelLikelyBenign {
		t.Errorf("13.96-day spread = %v, want likely benign", gt.Label)
	}
}

func TestLabelStoreParallelDeterministic(t *testing.T) {
	// The parallel LabelStore must produce the same truth assignments as
	// labeling each file individually.
	build := func() (*dataset.Store, Samples) {
		store := dataset.NewStore()
		samples := Samples{}
		for i := 0; i < 200; i++ {
			h := dataset.FileHash(fmt.Sprintf("par-%03d", i))
			ev := dataset.DownloadEvent{
				File: h, Machine: "m1", Process: "proc",
				URL: "http://x.com/f", Domain: "x.com",
				Time: dlTime.AddDate(0, 0, i%28), Executed: true,
			}
			if err := store.AddEvent(ev); err != nil {
				t.Fatal(err)
			}
			switch i % 3 {
			case 0: // malicious
				samples[h] = &avsim.Sample{
					Hash: h, InCorpus: true, FirstScan: dlTime,
					LastScan: dlTime.AddDate(2, 0, 0), TrueMalicious: true,
					Type: dataset.TypeDropper,
				}
			case 1: // benign
				samples[h] = &avsim.Sample{
					Hash: h, InCorpus: true,
					FirstScan: dlTime.AddDate(0, -6, 0),
					LastScan:  dlTime.AddDate(2, 1, 0),
				}
			}
		}
		return store, samples
	}
	storeA, samplesA := build()
	l1 := newLabeler(t, nil)
	if err := l1.LabelStore(storeA, samplesA); err != nil {
		t.Fatal(err)
	}
	storeB, samplesB := build()
	l2 := newLabeler(t, nil)
	for i := 0; i < 200; i++ {
		h := dataset.FileHash(fmt.Sprintf("par-%03d", i))
		gtSeq := l2.LabelFile(h, samplesB[h], dlTime.AddDate(0, 0, i%28))
		if got := storeA.Truth(h); got != gtSeq {
			t.Fatalf("file %s: parallel %+v != sequential %+v", h, got, gtSeq)
		}
	}
	_ = storeB
	if l1.TypeStats.Total != l2.TypeStats.Total {
		t.Errorf("TypeStats diverged: %d vs %d", l1.TypeStats.Total, l2.TypeStats.Total)
	}
}
