package labeling

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/avsim"
	"repro/internal/dataset"
	"repro/internal/faults"
	"repro/internal/reputation"
	"repro/internal/retry"
)

// noSleep makes retry backoff instantaneous in tests.
func noSleep(ctx context.Context, _ time.Duration) error { return ctx.Err() }

// countingScanner fails the first failures calls per hash, then defers
// to the wrapped service.
type countingScanner struct {
	svc      *avsim.Service
	failures int

	mu       sync.Mutex
	attempts map[dataset.FileHash]int
}

func (c *countingScanner) Scan(hash dataset.FileHash, sample *avsim.Sample, at time.Time) (*avsim.Report, error) {
	c.mu.Lock()
	if c.attempts == nil {
		c.attempts = make(map[dataset.FileHash]int)
	}
	c.attempts[hash]++
	n := c.attempts[hash]
	c.mu.Unlock()
	if n <= c.failures {
		return nil, errors.New("scan service unavailable")
	}
	return c.svc.Scan(sample, at), nil
}

func newScannerLabeler(t *testing.T, sc Scanner) *Labeler {
	t.Helper()
	oracle := reputation.NewOracle(nil, nil, nil, nil, nil, nil)
	l, err := NewWithScanner(sc, oracle, nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	l.SetRetryPolicy(retry.Policy{MaxAttempts: 4, Sleep: noSleep})
	return l
}

func TestNewWithScannerValidation(t *testing.T) {
	oracle := reputation.NewOracle(nil, nil, nil, nil, nil, nil)
	if _, err := NewWithScanner(nil, oracle, nil, nil, 0); err == nil {
		t.Error("nil scanner accepted")
	}
}

func TestLabelFileRecoversFromTransientScanFailures(t *testing.T) {
	sc := &countingScanner{svc: avsim.NewDefaultService(), failures: 2}
	l := newScannerLabeler(t, sc)
	s := &avsim.Sample{
		Hash: "flaky-mal", InCorpus: true,
		FirstScan: dlTime, LastScan: dlTime.AddDate(2, 0, 0),
		TrueMalicious: true, Type: dataset.TypeDropper,
	}
	gt := l.LabelFile("flaky-mal", s, dlTime)
	if gt.Label != dataset.LabelMalicious {
		t.Errorf("label after recovery = %v, want malicious", gt.Label)
	}
	if l.ScanRetries() != 2 {
		t.Errorf("ScanRetries = %d, want 2", l.ScanRetries())
	}
	if l.Degraded() != 0 {
		t.Errorf("Degraded = %d after successful recovery", l.Degraded())
	}
}

func TestLabelFileDegradesToUnknownWhenRetriesExhausted(t *testing.T) {
	sc := &countingScanner{svc: avsim.NewDefaultService(), failures: 1 << 20}
	l := newScannerLabeler(t, sc)
	s := &avsim.Sample{
		Hash: "dead-scan", InCorpus: true,
		FirstScan: dlTime, LastScan: dlTime.AddDate(2, 0, 0),
		TrueMalicious: true, Type: dataset.TypeDropper,
	}
	gt := l.LabelFile("dead-scan", s, dlTime)
	if gt.Label != dataset.LabelUnknown {
		t.Errorf("label after exhausted retries = %v, want unknown (degraded)", gt.Label)
	}
	if l.Degraded() != 1 {
		t.Errorf("Degraded = %d, want 1", l.Degraded())
	}
	if l.ScanRetries() != 3 {
		t.Errorf("ScanRetries = %d, want 3 (4 attempts)", l.ScanRetries())
	}
}

func TestLabelFileWhitelistShortCircuitsScan(t *testing.T) {
	// Whitelisted files never reach the scanner, so even a dead scan
	// service cannot degrade them.
	wl, err := reputation.NewFileList([]dataset.FileHash{"white1"})
	if err != nil {
		t.Fatal(err)
	}
	oracle := reputation.NewOracle(nil, nil, nil, nil, wl, nil)
	sc := &countingScanner{svc: avsim.NewDefaultService(), failures: 1 << 20}
	l, err := NewWithScanner(sc, oracle, nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	l.SetRetryPolicy(retry.Policy{MaxAttempts: 2, Sleep: noSleep})
	if gt := l.LabelFile("white1", nil, dlTime); gt.Label != dataset.LabelBenign {
		t.Errorf("whitelisted file = %v, want benign", gt.Label)
	}
	if len(sc.attempts) != 0 {
		t.Error("whitelisted file reached the scanner")
	}
}

func TestLabelStoreParallelUnderFaults(t *testing.T) {
	// The parallel LabelStore path, driven through a concurrency-safe
	// flaky scanner, must agree with a fault-free run. Run with -race:
	// this exercises the statsMu guard on TypeStats and the atomic
	// retry/degradation counters across worker goroutines.
	build := func() (*dataset.Store, Samples) {
		store := dataset.NewStore()
		samples := Samples{}
		for i := 0; i < 150; i++ {
			h := dataset.FileHash(fmt.Sprintf("chaos-%03d", i))
			ev := dataset.DownloadEvent{
				File: h, Machine: "m1", Process: "proc",
				URL: "http://x.com/f", Domain: "x.com",
				Time: dlTime.AddDate(0, 0, i%28), Executed: true,
			}
			if err := store.AddEvent(ev); err != nil {
				t.Fatal(err)
			}
			if i%3 == 0 {
				samples[h] = &avsim.Sample{
					Hash: h, InCorpus: true, FirstScan: dlTime,
					LastScan: dlTime.AddDate(2, 0, 0), TrueMalicious: true,
					Type: dataset.TypeDropper,
				}
			}
			// i%3 != 0 files stay out of corpus: unknown either way, and
			// eligible for persistent failure.
		}
		return store, samples
	}

	inj, err := faults.NewInjector(faults.Config{
		Seed: 41, ErrorRate: 0.3, MaxConsecutiveFailures: 2,
		TimeoutRate: 0.3, PersistentRate: 0.2,
	})
	if err != nil {
		t.Fatal(err)
	}
	eligible := func(s *avsim.Sample) bool { return s == nil || !s.InCorpus }
	flaky, err := faults.NewFlakyScanner(
		ServiceScanner{Svc: avsim.NewDefaultService()}, inj, eligible)
	if err != nil {
		t.Fatal(err)
	}
	faulty := newScannerLabeler(t, flaky)
	storeF, samplesF := build()
	if err := faulty.LabelStore(storeF, samplesF); err != nil {
		t.Fatal(err)
	}

	clean := newLabeler(t, nil)
	storeC, samplesC := build()
	if err := clean.LabelStore(storeC, samplesC); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 150; i++ {
		h := dataset.FileHash(fmt.Sprintf("chaos-%03d", i))
		if a, b := storeF.Truth(h), storeC.Truth(h); a != b {
			t.Fatalf("file %s: faulty run %+v != clean run %+v", h, a, b)
		}
	}
	if faulty.ScanRetries() == 0 {
		t.Error("no retries recorded at 30% error rate")
	}
	// Persistent failures hit only out-of-corpus files, whose fault-free
	// label is unknown anyway — so degradation happens without changing
	// any label.
	if flaky.Stats().PersistentKeys > 0 && faulty.Degraded() == 0 {
		t.Error("persistent scan failures did not register as degraded files")
	}
	if faulty.TypeStats.Total != clean.TypeStats.Total {
		t.Errorf("TypeStats diverged: %d vs %d", faulty.TypeStats.Total, clean.TypeStats.Total)
	}
}

func TestLabelFileConcurrentTypeStats(t *testing.T) {
	// Concurrent LabelFile callers share TypeStats; run with -race to
	// verify the statsMu guard.
	l := newLabeler(t, nil)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				h := dataset.FileHash(fmt.Sprintf("conc-%d-%d", w, i))
				s := &avsim.Sample{
					Hash: h, InCorpus: true, FirstScan: dlTime,
					LastScan: dlTime.AddDate(2, 0, 0), TrueMalicious: true,
					Type: dataset.TypeDropper,
				}
				l.LabelFile(h, s, dlTime)
			}
		}(w)
	}
	wg.Wait()
	if l.TypeStats.Total != 400 {
		t.Errorf("TypeStats.Total = %d, want 400 (lost updates?)", l.TypeStats.Total)
	}
}
