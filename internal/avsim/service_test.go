package avsim

import (
	"strings"
	"testing"
	"time"

	"repro/internal/dataset"
)

var (
	t0    = time.Date(2014, time.January, 15, 0, 0, 0, 0, time.UTC)
	t2y   = t0.AddDate(2, 0, 0)
	tweek = t0.AddDate(0, 0, 7)
)

func malSample(hash string, typ dataset.MalwareType, family string) *Sample {
	return &Sample{
		Hash:          dataset.FileHash(hash),
		InCorpus:      true,
		FirstScan:     t0,
		LastScan:      t2y,
		TrueMalicious: true,
		Type:          typ,
		Family:        family,
		FamilyVisible: family != "",
	}
}

func TestNewServiceValidation(t *testing.T) {
	if _, err := NewService(nil); err == nil {
		t.Error("empty roster accepted")
	}
	if _, err := NewService([]*Engine{{Name: ""}}); err == nil {
		t.Error("nameless engine accepted")
	}
	if _, err := NewService([]*Engine{{Name: "X"}}); err == nil {
		t.Error("grammarless engine accepted")
	}
	g := func(dataset.MalwareType, string, uint64) string { return "x" }
	if _, err := NewService([]*Engine{
		{Name: "X", Grammar: g}, {Name: "X", Grammar: g},
	}); err == nil {
		t.Error("duplicate engine accepted")
	}
}

func TestDefaultServiceRoster(t *testing.T) {
	svc := NewDefaultService()
	if svc.NumEngines() != 50 {
		t.Errorf("default roster = %d engines, want 50", svc.NumEngines())
	}
	trusted, leading := 0, 0
	for _, e := range svc.Engines() {
		if e.Trusted {
			trusted++
		}
		if e.Leading {
			leading++
		}
	}
	if trusted != 10 {
		t.Errorf("trusted engines = %d, want 10", trusted)
	}
	if leading != 5 {
		t.Errorf("leading engines = %d, want 5", leading)
	}
}

func TestScanNotInCorpus(t *testing.T) {
	svc := NewDefaultService()
	s := malSample("f1", dataset.TypeTrojan, "zbot")
	s.InCorpus = false
	if rep := svc.Scan(s, t2y); rep != nil {
		t.Error("scan of out-of-corpus sample should return nil")
	}
	if rep := svc.Scan(nil, t2y); rep != nil {
		t.Error("scan of nil sample should return nil")
	}
	s.InCorpus = true
	if rep := svc.Scan(s, t0.AddDate(0, 0, -1)); rep != nil {
		t.Error("scan before first submission should return nil")
	}
}

func TestScanBenignStaysClean(t *testing.T) {
	svc := NewDefaultService()
	s := &Sample{Hash: "clean1", InCorpus: true, FirstScan: t0, LastScan: t2y}
	rep := svc.Scan(s, t2y)
	if rep == nil {
		t.Fatal("expected report")
	}
	if n := len(rep.Detections()); n != 0 {
		t.Errorf("benign sample got %d detections", n)
	}
}

func TestScanMaliciousEventuallyDetected(t *testing.T) {
	svc := NewDefaultService()
	s := malSample("mal1", dataset.TypeDropper, "somoto")
	rep := svc.Scan(s, t2y)
	if rep == nil {
		t.Fatal("expected report")
	}
	if n := len(rep.TrustedDetections()); n == 0 {
		t.Error("easy malicious sample undetected by all trusted engines after 2y")
	}
}

func TestScanDetectionGrowsOverTime(t *testing.T) {
	svc := NewDefaultService()
	total0, total2y := 0, 0
	for i := 0; i < 50; i++ {
		s := malSample(strings.Repeat("x", i+1), dataset.TypeTrojan, "zbot")
		if rep := svc.Scan(s, tweek); rep != nil {
			total0 += len(rep.Detections())
		}
		if rep := svc.Scan(s, t2y); rep != nil {
			total2y += len(rep.Detections())
		}
	}
	if total2y <= total0 {
		t.Errorf("detections did not grow over time: week=%d 2y=%d", total0, total2y)
	}
}

func TestScanDeterministic(t *testing.T) {
	svc := NewDefaultService()
	s := malSample("det1", dataset.TypeBanker, "zbot")
	a := svc.Scan(s, t2y)
	b := svc.Scan(s, t2y)
	if len(a.Results) != len(b.Results) {
		t.Fatal("result count differs between scans")
	}
	for i := range a.Results {
		if a.Results[i] != b.Results[i] {
			t.Errorf("result %d differs: %+v vs %+v", i, a.Results[i], b.Results[i])
		}
	}
}

func TestTrustedBlind(t *testing.T) {
	svc := NewDefaultService()
	s := malSample("blind1", dataset.TypeTrojan, "")
	s.TrustedBlind = true
	rep := svc.Scan(s, t2y)
	if rep == nil {
		t.Fatal("expected report")
	}
	if n := len(rep.TrustedDetections()); n != 0 {
		t.Errorf("trusted-blind sample detected by %d trusted engines", n)
	}
	// It should still be detectable by minor engines for most hashes.
	anyMinor := false
	for i := 0; i < 20 && !anyMinor; i++ {
		s2 := malSample("blind-probe-"+strings.Repeat("y", i), dataset.TypeTrojan, "")
		s2.TrustedBlind = true
		if rep := svc.Scan(s2, t2y); rep != nil && len(rep.Detections()) > 0 {
			anyMinor = true
		}
	}
	if !anyMinor {
		t.Error("no trusted-blind sample detected by any minor engine")
	}
}

func TestDifficultyReducesDetections(t *testing.T) {
	svc := NewDefaultService()
	easy, hard := 0, 0
	for i := 0; i < 60; i++ {
		h := strings.Repeat("e", i+1)
		se := malSample("easy"+h, dataset.TypeTrojan, "")
		sh := malSample("hard"+h, dataset.TypeTrojan, "")
		sh.Difficulty = 0.9
		if rep := svc.Scan(se, t2y); rep != nil {
			easy += len(rep.Detections())
		}
		if rep := svc.Scan(sh, t2y); rep != nil {
			hard += len(rep.Detections())
		}
	}
	if hard >= easy {
		t.Errorf("difficulty did not reduce detections: easy=%d hard=%d", easy, hard)
	}
}

func TestLeadingLabelsAndAllLabels(t *testing.T) {
	svc := NewDefaultService()
	s := malSample("lab1", dataset.TypeRansomware, "cryptolocker")
	rep := svc.Scan(s, t2y)
	leading := rep.LeadingLabels()
	all := rep.AllLabels()
	if len(leading) > 5 {
		t.Errorf("leading labels = %d, max 5", len(leading))
	}
	if len(all) < len(leading) {
		t.Error("all labels smaller than leading labels")
	}
	for eng := range leading {
		found := false
		for _, n := range LeadingEngineNames {
			if n == eng {
				found = true
			}
		}
		if !found {
			t.Errorf("unexpected leading engine %q", eng)
		}
	}
}

func TestGrammarShapes(t *testing.T) {
	u := uint64(0x123456789abcdef)
	if got := kasperskyGrammar(dataset.TypeSpyware, "zbot", u); !strings.HasPrefix(got, "Trojan-Spy.Win32.Zbot.") {
		t.Errorf("kaspersky label = %q", got)
	}
	if got := microsoftGrammar(dataset.TypeBanker, "zbot", u); !strings.HasPrefix(got, "PWS:Win32/Zbot") {
		t.Errorf("microsoft label = %q", got)
	}
	if got := mcafeeGrammar(dataset.TypeUndefined, "", u); !strings.HasPrefix(got, "Artemis!") {
		t.Errorf("mcafee generic label = %q", got)
	}
	if got := mcafeeGrammar(dataset.TypeDropper, "", u); !strings.HasPrefix(got, "Downloader-") {
		t.Errorf("mcafee dropper label = %q", got)
	}
	if got := trendMicroGrammar(dataset.TypeFakeAV, "", u); !strings.HasPrefix(got, "TROJ_FAKEAV.") {
		t.Errorf("trend fakeav label = %q", got)
	}
	if got := symantecGrammar(dataset.TypeTrojan, "zbot", u); got != "Trojan.Zbot" {
		t.Errorf("symantec label = %q", got)
	}
}

func TestScanLastScanClamped(t *testing.T) {
	svc := NewDefaultService()
	s := malSample("clamp1", dataset.TypeTrojan, "")
	mid := t0.AddDate(0, 6, 0)
	rep := svc.Scan(s, mid)
	if rep == nil {
		t.Fatal("expected report")
	}
	if rep.LastScan.After(mid) {
		t.Error("LastScan extends past scan time")
	}
	// Querying before the sample's last corpus scan clamps the reported
	// history to the query time exactly...
	if !rep.LastScan.Equal(mid) {
		t.Errorf("LastScan = %v, want clamped to query time %v", rep.LastScan, mid)
	}
	// ...and querying after it must not: the corpus history simply ends.
	late := t2y.AddDate(1, 0, 0)
	if rep := svc.Scan(s, late); rep == nil || !rep.LastScan.Equal(t2y) {
		t.Errorf("LastScan after corpus end = %v, want %v unclamped", rep.LastScan, t2y)
	}
}

func TestScanAtExactFirstScan(t *testing.T) {
	// The corpus-entry boundary is inclusive: a query at precisely
	// FirstScan yields a report (with a single-instant scan history),
	// while one nanosecond earlier yields nil.
	svc := NewDefaultService()
	s := malSample("edge1", dataset.TypeTrojan, "")
	rep := svc.Scan(s, t0)
	if rep == nil {
		t.Fatal("scan at exactly FirstScan returned nil")
	}
	if !rep.FirstScan.Equal(t0) || !rep.LastScan.Equal(t0) {
		t.Errorf("history at boundary = [%v, %v], want [%v, %v]",
			rep.FirstScan, rep.LastScan, t0, t0)
	}
	if !rep.ScanTime.Equal(t0) {
		t.Errorf("ScanTime = %v, want %v", rep.ScanTime, t0)
	}
	if rep := svc.Scan(s, t0.Add(-time.Nanosecond)); rep != nil {
		t.Error("scan a nanosecond before FirstScan returned a report")
	}
}

func TestGenericTrustedGrammarShapes(t *testing.T) {
	u := uint64(0xfeedbeef)
	for _, tc := range []struct {
		typ    dataset.MalwareType
		family string
		want   string
	}{
		{dataset.TypeDropper, "somoto", "TR/Dldr.Somoto."},
		{dataset.TypeBanker, "zbot", "Spy.Banker.Zbot."},
		{dataset.TypeUndefined, "", "Gen:Variant.Generic."},
		{dataset.TypeRansomware, "", "Ransom.Generic."},
	} {
		got := genericTrustedGrammar(tc.typ, tc.family, u)
		if !strings.HasPrefix(got, tc.want) {
			t.Errorf("genericTrustedGrammar(%v, %q) = %q, want prefix %q",
				tc.typ, tc.family, got, tc.want)
		}
	}
}

func TestMinorEngineGrammarVariants(t *testing.T) {
	// All four label shapes must be reachable and non-empty.
	shapes := map[string]bool{}
	for u := uint64(0); u < 64; u++ {
		got := minorEngineGrammar(dataset.TypeTrojan, "zbot", u)
		if got == "" {
			t.Fatal("empty minor label")
		}
		switch {
		case strings.HasPrefix(got, "W32."):
			shapes["w32"] = true
		case strings.HasPrefix(got, "Malware.Generic."):
			shapes["generic"] = true
		case strings.HasPrefix(got, "Trojan/"):
			shapes["trojan"] = true
		case strings.HasPrefix(got, "Suspicious."):
			shapes["suspicious"] = true
		default:
			t.Fatalf("unexpected label shape %q", got)
		}
	}
	if len(shapes) != 4 {
		t.Errorf("only %d of 4 label shapes reachable: %v", len(shapes), shapes)
	}
}

func TestKasperskyGrammarPUPNotAVirus(t *testing.T) {
	got := kasperskyGrammar(dataset.TypePUP, "installcore", 42)
	if !strings.HasPrefix(got, "not-a-virus:Downloader.Win32.Installcore.") {
		t.Errorf("kaspersky pup label = %q", got)
	}
}

func TestSuffixHelpers(t *testing.T) {
	if got := suffix(0, 3); got != "aaa" {
		t.Errorf("suffix(0,3) = %q", got)
	}
	if got := len(hexSuffix(0xABCDEF, 6)); got != 6 {
		t.Errorf("hexSuffix length = %d", got)
	}
	if got := hexSuffix(1, 99); len(got) != 16 {
		t.Errorf("hexSuffix clamps to 16, got %d", len(got))
	}
	if got := upperFirst("zbot"); got != "Zbot" {
		t.Errorf("upperFirst = %q", got)
	}
	if got := upperFirst(""); got != "" {
		t.Errorf("upperFirst empty = %q", got)
	}
	if got := upperFirst("Zbot"); got != "Zbot" {
		t.Errorf("upperFirst idempotent = %q", got)
	}
}
