package avsim

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/dataset"
)

// Property: detections are monotone in scan time — once an engine
// detects a sample, later scans still detect it.
func TestDetectionMonotoneProperty(t *testing.T) {
	svc := NewDefaultService()
	f := func(hashSeed uint32, typIdx uint8, months uint8) bool {
		s := &Sample{
			Hash:          dataset.FileHash(fmt.Sprintf("mono-%08x", hashSeed)),
			InCorpus:      true,
			FirstScan:     t0,
			LastScan:      t0.AddDate(3, 0, 0),
			TrueMalicious: true,
			Type:          dataset.AllMalwareTypes[int(typIdx)%len(dataset.AllMalwareTypes)],
		}
		early := svc.Scan(s, t0.AddDate(0, int(months%24), 0))
		late := svc.Scan(s, t0.AddDate(0, int(months%24)+6, 0))
		if early == nil || late == nil {
			return false
		}
		detected := map[string]bool{}
		for _, r := range early.Detections() {
			detected[r.Engine] = true
		}
		for _, r := range early.Results {
			if detected[r.Engine] {
				// find same engine in late scan
				found := false
				for _, lr := range late.Results {
					if lr.Engine == r.Engine && lr.Label != "" {
						found = true
						break
					}
				}
				if !found {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: an engine that detects a sample keeps emitting the same
// label string (deterministic grammar).
func TestLabelStabilityProperty(t *testing.T) {
	svc := NewDefaultService()
	f := func(hashSeed uint32) bool {
		s := malSample(fmt.Sprintf("stab-%08x", hashSeed), dataset.TypeDropper, "somoto")
		a := svc.Scan(s, t2y)
		b := svc.Scan(s, t2y.AddDate(0, 3, 0))
		labelsA := a.AllLabels()
		for eng, label := range labelsA {
			if got := b.AllLabels()[eng]; got != label {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: benign samples never accumulate detections regardless of
// scan time.
func TestBenignNeverDetectedProperty(t *testing.T) {
	svc := NewDefaultService()
	f := func(hashSeed uint32, months uint8) bool {
		s := &Sample{
			Hash:      dataset.FileHash(fmt.Sprintf("ben-%08x", hashSeed)),
			InCorpus:  true,
			FirstScan: t0,
			LastScan:  t0.AddDate(3, 0, 0),
		}
		rep := svc.Scan(s, t0.Add(time.Duration(months)*24*time.Hour*30))
		return rep == nil || len(rep.Detections()) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// The aggregate trusted-engine detection rate for easy malicious
// samples at the two-year rescan must be high enough to sustain the
// labeling pipeline's malicious share.
func TestTrustedDetectionRateAggregate(t *testing.T) {
	svc := NewDefaultService()
	detected := 0
	const n = 300
	for i := 0; i < n; i++ {
		s := malSample(fmt.Sprintf("agg-%04d", i), dataset.TypeTrojan, "")
		s.Difficulty = 0.2
		if rep := svc.Scan(s, t2y); rep != nil && len(rep.TrustedDetections()) > 0 {
			detected++
		}
	}
	if rate := float64(detected) / n; rate < 0.95 {
		t.Errorf("trusted detection rate = %.3f, want >= 0.95", rate)
	}
}
