package avsim

import (
	"container/heap"
	"sync"
	"time"

	"repro/internal/dataset"
)

// Scheduler queues delayed re-scans — the paper's t₀+2y protocol, where
// every file seen in live traffic is re-submitted to the scan service
// long after its download so signature development has had time to
// catch up (see Engine.detectionDelayDays). The scheduler is
// deterministic and clock-free: callers decide when "now" is and drain
// whatever came due, so the same schedule replays identically in tests,
// chaos harnesses and the daemon alike.
type Scheduler struct {
	svc *Service

	mu sync.Mutex
	// q is a min-heap ordered by (due, hash); guarded by mu. The hash
	// tiebreak makes Due's pop order a pure function of the schedule.
	q rescanHeap
	// scheduled dedups by hash: one pending re-scan per sample; guarded
	// by mu.
	scheduled map[dataset.FileHash]bool
}

// NewScheduler builds a scheduler over the scan service.
func NewScheduler(svc *Service) *Scheduler {
	return &Scheduler{svc: svc, scheduled: make(map[dataset.FileHash]bool)}
}

// Schedule queues sample for a re-scan at due. A sample with a re-scan
// already pending is not queued again (the earlier due time wins);
// scheduling the same sample after its re-scan fired queues a fresh
// one. Nil samples are ignored.
func (s *Scheduler) Schedule(sample *Sample, due time.Time) {
	if sample == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.scheduled[sample.Hash] {
		return
	}
	s.scheduled[sample.Hash] = true
	heap.Push(&s.q, rescanEntry{sample: sample, due: due})
}

// Len returns the number of pending re-scans.
func (s *Scheduler) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.q.Len()
}

// Rescan is one completed re-scan: the sample, when it was due, and the
// scan report (nil when the corpus has no record of the sample — never
// submitted, the real-world "file not found").
type Rescan struct {
	Sample *Sample
	Due    time.Time
	Report *Report
}

// Due pops every re-scan whose due time is at or before now, scans each
// sample at its own due time (not at now: a re-scan drained late still
// sees the signature coverage of its scheduled date, keeping replays
// independent of drain cadence), and returns them in deterministic
// (due, hash) order.
func (s *Scheduler) Due(now time.Time) []*Rescan {
	s.mu.Lock()
	var popped []rescanEntry
	for s.q.Len() > 0 && !s.q[0].due.After(now) {
		e := heap.Pop(&s.q).(rescanEntry)
		delete(s.scheduled, e.sample.Hash)
		popped = append(popped, e)
	}
	s.mu.Unlock()
	if len(popped) == 0 {
		return nil
	}
	// Scanning outside the lock: Service.Scan is pure and Schedule may
	// be called concurrently from an observer.
	out := make([]*Rescan, 0, len(popped))
	for _, e := range popped {
		out = append(out, &Rescan{
			Sample: e.sample,
			Due:    e.due,
			Report: s.svc.Scan(e.sample, e.due),
		})
	}
	return out
}

// rescanEntry is one queued re-scan.
type rescanEntry struct {
	sample *Sample
	due    time.Time
}

// rescanHeap is a min-heap of entries by (due, hash).
type rescanHeap []rescanEntry

func (h rescanHeap) Len() int { return len(h) }
func (h rescanHeap) Less(i, j int) bool {
	if !h[i].due.Equal(h[j].due) {
		return h[i].due.Before(h[j].due)
	}
	return h[i].sample.Hash < h[j].sample.Hash
}
func (h rescanHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *rescanHeap) Push(x any)   { *h = append(*h, x.(rescanEntry)) }
func (h *rescanHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
