package avsim

import (
	"fmt"
	"time"

	"repro/internal/dataset"
)

// Sample is the scan-service-side profile of a file: whether the
// crowdsourced corpus ever received it, when, and — for truly malicious
// samples — how hard it is to detect. The synthetic world generator
// constructs one Sample per file.
type Sample struct {
	Hash dataset.FileHash
	// InCorpus reports whether the file was ever submitted to the scan
	// service. The paper's "unknown" files are precisely those absent
	// from every ground-truth source: low-prevalence files that
	// crowdsourcing never surfaced.
	InCorpus bool
	// FirstScan and LastScan bound the corpus's scan history for the
	// sample. The labeling pipeline uses the spread between them for its
	// likely-benign rule (clean but rescan window < 14 days).
	FirstScan time.Time
	LastScan  time.Time
	// TrueMalicious marks actually-malicious content. Benign samples are
	// never flagged by any engine in this simulator; ground-truth noise
	// is modeled upstream (whitelist noise), not here.
	TrueMalicious bool
	// TrustedBlind marks malicious samples that only the minor engines
	// ever detect; the labeling pipeline will call these likely
	// malicious.
	TrustedBlind bool
	// Type and Family describe the malicious behaviour; Family may be
	// empty. FamilyVisible gates whether any engine can name the family
	// (AVclass derives no family for 58% of samples in the paper).
	Type          dataset.MalwareType
	Family        string
	FamilyVisible bool
	// Difficulty in [0,1] scales down engine coverage.
	Difficulty float64
}

// EngineResult is one engine's verdict within a report.
type EngineResult struct {
	Engine  string
	Trusted bool
	Leading bool
	// Label is the vendor detection label; empty means the engine
	// considered the sample clean at scan time.
	Label string
}

// Report is the result of scanning one sample at one point in time.
type Report struct {
	Sample    dataset.FileHash
	ScanTime  time.Time
	FirstScan time.Time
	LastScan  time.Time
	Results   []EngineResult
}

// Detections returns the results with a non-empty label.
func (r *Report) Detections() []EngineResult {
	var out []EngineResult
	for _, res := range r.Results {
		if res.Label != "" {
			out = append(out, res)
		}
	}
	return out
}

// TrustedDetections returns detections by trusted engines only.
func (r *Report) TrustedDetections() []EngineResult {
	var out []EngineResult
	for _, res := range r.Results {
		if res.Label != "" && res.Trusted {
			out = append(out, res)
		}
	}
	return out
}

// LeadingLabels returns engine→label for the five leading engines that
// detected the sample, the input AVType consumes.
func (r *Report) LeadingLabels() map[string]string {
	out := make(map[string]string)
	for _, res := range r.Results {
		if res.Label != "" && res.Leading {
			out[res.Engine] = res.Label
		}
	}
	return out
}

// AllLabels returns engine→label for every detection, the input AVclass
// consumes.
func (r *Report) AllLabels() map[string]string {
	out := make(map[string]string)
	for _, res := range r.Results {
		if res.Label != "" {
			out[res.Engine] = res.Label
		}
	}
	return out
}

// Service is the multi-engine scan service.
type Service struct {
	engines []*Engine
}

// NewService builds a service over the given engine roster.
func NewService(engines []*Engine) (*Service, error) {
	if len(engines) == 0 {
		return nil, fmt.Errorf("avsim: service needs at least one engine")
	}
	seen := make(map[string]bool, len(engines))
	for _, e := range engines {
		if e == nil || e.Name == "" {
			return nil, fmt.Errorf("avsim: engine without a name")
		}
		if e.Grammar == nil {
			return nil, fmt.Errorf("avsim: engine %q has no label grammar", e.Name)
		}
		if seen[e.Name] {
			return nil, fmt.Errorf("avsim: duplicate engine %q", e.Name)
		}
		seen[e.Name] = true
	}
	return &Service{engines: engines}, nil
}

// NewDefaultService builds a service with the default 50-engine roster
// (10 trusted + 40 minor).
func NewDefaultService() *Service {
	s, err := NewService(DefaultEngines(40))
	if err != nil {
		// DefaultEngines is a static roster; failure is a programming
		// error, acceptable to surface at startup.
		panic(err)
	}
	return s
}

// NumEngines returns the roster size.
func (s *Service) NumEngines() int { return len(s.engines) }

// Engines returns the roster; callers must not modify it.
func (s *Service) Engines() []*Engine { return s.engines }

// Scan queries all engines for the sample at time at. It returns nil when
// the corpus has no record of the sample (never submitted, or the query
// predates its first submission) — the real-world "file not found on VT".
func (s *Service) Scan(sample *Sample, at time.Time) *Report {
	if sample == nil || !sample.InCorpus || at.Before(sample.FirstScan) {
		return nil
	}
	lastScan := sample.LastScan
	if at.Before(lastScan) {
		lastScan = at
	}
	rep := &Report{
		Sample:    sample.Hash,
		ScanTime:  at,
		FirstScan: sample.FirstScan,
		LastScan:  lastScan,
		Results:   make([]EngineResult, 0, len(s.engines)),
	}
	for _, e := range s.engines {
		res := EngineResult{Engine: e.Name, Trusted: e.Trusted, Leading: e.Leading}
		if delay := e.detectionDelayDays(sample); !isNaN(delay) {
			detectAt := sample.FirstScan.Add(time.Duration(delay * 24 * float64(time.Hour)))
			if !at.Before(detectAt) {
				family := ""
				if sample.FamilyVisible && sample.Family != "" &&
					stableUnit(e.Name, sample.Hash, "family") < e.FamilyAwareness {
					family = sample.Family
				}
				typ := sample.Type
				// Engines sometimes disagree on the behaviour type:
				// a slice of detections degrade to a generic label.
				if stableUnit(e.Name, sample.Hash, "generic") < 0.22 {
					typ = dataset.TypeUndefined
				}
				res.Label = e.Grammar(typ, family, stableU64(e.Name, sample.Hash, "label"))
			}
		}
		rep.Results = append(rep.Results, res)
	}
	return rep
}

func isNaN(f float64) bool { return f != f }
