package avsim

import (
	"fmt"
	"strings"

	"repro/internal/dataset"
)

// Vendor-specific type tokens. These are the "behavior type keywords"
// that the AVType interpretation map (Section II-C, provided to the
// authors by Trend Micro) decodes back into behaviour types.

var trendPrefix = map[dataset.MalwareType]string{
	dataset.TypeTrojan:     "TROJ",
	dataset.TypeDropper:    "TROJ_DLOADR",
	dataset.TypePUP:        "PUA",
	dataset.TypeAdware:     "ADW",
	dataset.TypeBanker:     "TSPY_BANKER",
	dataset.TypeBot:        "BKDR_BOT",
	dataset.TypeFakeAV:     "TROJ_FAKEAV",
	dataset.TypeRansomware: "RANSOM",
	dataset.TypeWorm:       "WORM",
	dataset.TypeSpyware:    "TSPY",
	dataset.TypeUndefined:  "TROJ_GEN",
}

var symantecToken = map[dataset.MalwareType]string{
	dataset.TypeTrojan:     "Trojan",
	dataset.TypeDropper:    "Downloader",
	dataset.TypePUP:        "PUA",
	dataset.TypeAdware:     "Adware",
	dataset.TypeBanker:     "Infostealer.Banker",
	dataset.TypeBot:        "Backdoor.Bot",
	dataset.TypeFakeAV:     "FakeAV",
	dataset.TypeRansomware: "Ransom",
	dataset.TypeWorm:       "Worm",
	dataset.TypeSpyware:    "Spyware",
	dataset.TypeUndefined:  "Trojan.Gen",
}

var kasperskyToken = map[dataset.MalwareType]string{
	dataset.TypeTrojan:     "Trojan",
	dataset.TypeDropper:    "Trojan-Downloader",
	dataset.TypePUP:        "not-a-virus:Downloader",
	dataset.TypeAdware:     "not-a-virus:AdWare",
	dataset.TypeBanker:     "Trojan-Banker",
	dataset.TypeBot:        "Backdoor",
	dataset.TypeFakeAV:     "Trojan-FakeAV",
	dataset.TypeRansomware: "Trojan-Ransom",
	dataset.TypeWorm:       "Worm",
	dataset.TypeSpyware:    "Trojan-Spy",
	dataset.TypeUndefined:  "UDS:DangerousObject",
}

var microsoftToken = map[dataset.MalwareType]string{
	dataset.TypeTrojan:     "Trojan",
	dataset.TypeDropper:    "TrojanDownloader",
	dataset.TypePUP:        "PUA",
	dataset.TypeAdware:     "Adware",
	dataset.TypeBanker:     "PWS",
	dataset.TypeBot:        "Backdoor",
	dataset.TypeFakeAV:     "Rogue",
	dataset.TypeRansomware: "Ransom",
	dataset.TypeWorm:       "Worm",
	dataset.TypeSpyware:    "SpyWare",
	dataset.TypeUndefined:  "Trojan",
}

var mcafeeToken = map[dataset.MalwareType]string{
	dataset.TypeTrojan:     "Trojan",
	dataset.TypeDropper:    "Downloader",
	dataset.TypePUP:        "PUP",
	dataset.TypeAdware:     "Adware",
	dataset.TypeBanker:     "PWS-Banker",
	dataset.TypeBot:        "BackDoor",
	dataset.TypeFakeAV:     "FakeAlert",
	dataset.TypeRansomware: "Ransom",
	dataset.TypeWorm:       "W32/Worm",
	dataset.TypeSpyware:    "Spyware",
	dataset.TypeUndefined:  "Artemis",
}

// trendMicroGrammar renders labels like "TROJ_FAKEAV.SMU1" or, with a
// family, "TSPY_ZBOT.ABC".
func trendMicroGrammar(typ dataset.MalwareType, family string, u uint64) string {
	if family != "" {
		return fmt.Sprintf("TROJ_%s.%s", strings.ToUpper(family), strings.ToUpper(suffix(u, 3)))
	}
	return fmt.Sprintf("%s.%s", trendPrefix[typ], strings.ToUpper(suffix(u, 3)))
}

// symantecGrammar renders labels like "Trojan.Zbot" or "Downloader".
func symantecGrammar(typ dataset.MalwareType, family string, u uint64) string {
	if family != "" {
		switch typ {
		case dataset.TypeBanker, dataset.TypeSpyware:
			return "Infostealer." + upperFirst(family)
		case dataset.TypeAdware, dataset.TypePUP:
			return "Adware." + upperFirst(family)
		default:
			return "Trojan." + upperFirst(family)
		}
	}
	if typ == dataset.TypeUndefined {
		return "Trojan.Gen." + fmt.Sprint(u%3+1)
	}
	return symantecToken[typ]
}

// kasperskyGrammar renders labels like "Trojan-Spy.Win32.Zbot.ruxa" and
// generic "Trojan-Downloader.Win32.Agent.heqj".
func kasperskyGrammar(typ dataset.MalwareType, family string, u uint64) string {
	fam := "Agent"
	if family != "" {
		fam = upperFirst(family)
	}
	if typ == dataset.TypeUndefined && family == "" {
		return kasperskyToken[typ]
	}
	return fmt.Sprintf("%s.Win32.%s.%s", kasperskyToken[typ], fam, suffix(u, 4))
}

// microsoftGrammar renders labels like "PWS:Win32/Zbot" and
// "TrojanDownloader:Win32/Agent".
func microsoftGrammar(typ dataset.MalwareType, family string, u uint64) string {
	fam := "Agent"
	if family != "" {
		fam = upperFirst(family)
	}
	label := fmt.Sprintf("%s:Win32/%s", microsoftToken[typ], fam)
	if u%2 == 0 {
		label += "." + strings.ToUpper(suffix(u>>8, 1))
	}
	return label
}

// mcafeeGrammar renders labels like "Downloader-FYH!6C7411D1C043" and the
// heuristic "Artemis!DEC3771868CB".
func mcafeeGrammar(typ dataset.MalwareType, family string, u uint64) string {
	if typ == dataset.TypeUndefined && family == "" {
		return "Artemis!" + hexSuffix(u, 12)
	}
	if family != "" {
		return fmt.Sprintf("%s-%s!%s", mcafeeToken[typ], strings.ToUpper(family), hexSuffix(u, 12))
	}
	return fmt.Sprintf("%s-%s!%s", mcafeeToken[typ], strings.ToUpper(suffix(u>>4, 3)), hexSuffix(u, 12))
}

// genericTrustedGrammar covers the remaining trusted vendors (Avira, AVG,
// Avast, ESET, Bitdefender): family-bearing dotted labels with a typed
// prefix, or "Gen:Variant" style generic names.
func genericTrustedGrammar(typ dataset.MalwareType, family string, u uint64) string {
	prefix := map[dataset.MalwareType]string{
		dataset.TypeTrojan:     "Trojan",
		dataset.TypeDropper:    "TR/Dldr",
		dataset.TypePUP:        "PUA",
		dataset.TypeAdware:     "Adware",
		dataset.TypeBanker:     "Spy.Banker",
		dataset.TypeBot:        "Backdoor",
		dataset.TypeFakeAV:     "FraudTool",
		dataset.TypeRansomware: "Ransom",
		dataset.TypeWorm:       "Worm",
		dataset.TypeSpyware:    "Spyware",
		dataset.TypeUndefined:  "Gen:Variant",
	}[typ]
	if family != "" {
		return fmt.Sprintf("%s.%s.%d", prefix, upperFirst(family), u%100)
	}
	return fmt.Sprintf("%s.Generic.%d", prefix, u%100000)
}

// minorEngineGrammar covers the long tail of less reliable engines: noisy
// labels, frequent generic names, occasional family tokens.
func minorEngineGrammar(typ dataset.MalwareType, family string, u uint64) string {
	switch u % 4 {
	case 0:
		if family != "" {
			return fmt.Sprintf("W32.%s.%s", upperFirst(family), suffix(u>>8, 2))
		}
		return fmt.Sprintf("W32.Malware.%s", suffix(u>>8, 4))
	case 1:
		return fmt.Sprintf("Malware.Generic.%d", u%1000000)
	case 2:
		if family != "" {
			return fmt.Sprintf("Trojan/%s.%s", upperFirst(family), suffix(u>>16, 3))
		}
		return fmt.Sprintf("Trojan/Agent.%s", suffix(u>>16, 3))
	default:
		return fmt.Sprintf("Suspicious.%s!%d", strings.ToUpper(suffix(u>>24, 2)), u%100)
	}
}

// LeadingEngineNames are the five vendors whose labels the AVType
// interpretation map covers (footnote 2 in the paper).
var LeadingEngineNames = []string{"Microsoft", "Symantec", "TrendMicro", "Kaspersky", "McAfee"}

// DefaultEngines builds the full engine roster: ten trusted vendors
// (including the five leading ones) plus totalMinor less reliable
// engines, for a VirusTotal-like service of 50+ engines.
func DefaultEngines(totalMinor int) []*Engine {
	engines := []*Engine{
		{Name: "Microsoft", Trusted: true, Leading: true, Coverage: 0.93, DifficultyPenalty: 0.55, MinDelayDays: 0, MaxDelayDays: 120, FamilyAwareness: 0.55, Grammar: microsoftGrammar},
		{Name: "Symantec", Trusted: true, Leading: true, Coverage: 0.92, DifficultyPenalty: 0.55, MinDelayDays: 0, MaxDelayDays: 140, FamilyAwareness: 0.55, Grammar: symantecGrammar},
		{Name: "TrendMicro", Trusted: true, Leading: true, Coverage: 0.91, DifficultyPenalty: 0.6, MinDelayDays: 0, MaxDelayDays: 150, FamilyAwareness: 0.5, Grammar: trendMicroGrammar},
		{Name: "Kaspersky", Trusted: true, Leading: true, Coverage: 0.94, DifficultyPenalty: 0.5, MinDelayDays: 0, MaxDelayDays: 110, FamilyAwareness: 0.6, Grammar: kasperskyGrammar},
		{Name: "McAfee", Trusted: true, Leading: true, Coverage: 0.92, DifficultyPenalty: 0.55, MinDelayDays: 0, MaxDelayDays: 130, FamilyAwareness: 0.45, Grammar: mcafeeGrammar},
		{Name: "Avira", Trusted: true, Coverage: 0.9, DifficultyPenalty: 0.6, MinDelayDays: 0, MaxDelayDays: 160, FamilyAwareness: 0.45, Grammar: genericTrustedGrammar},
		{Name: "AVG", Trusted: true, Coverage: 0.89, DifficultyPenalty: 0.6, MinDelayDays: 0, MaxDelayDays: 170, FamilyAwareness: 0.4, Grammar: genericTrustedGrammar},
		{Name: "Avast", Trusted: true, Coverage: 0.9, DifficultyPenalty: 0.6, MinDelayDays: 0, MaxDelayDays: 160, FamilyAwareness: 0.4, Grammar: genericTrustedGrammar},
		{Name: "ESET", Trusted: true, Coverage: 0.91, DifficultyPenalty: 0.55, MinDelayDays: 0, MaxDelayDays: 150, FamilyAwareness: 0.5, Grammar: genericTrustedGrammar},
		{Name: "Bitdefender", Trusted: true, Coverage: 0.92, DifficultyPenalty: 0.55, MinDelayDays: 0, MaxDelayDays: 140, FamilyAwareness: 0.5, Grammar: genericTrustedGrammar},
	}
	prefixes := []string{"Nano", "Secure", "Cyber", "Net", "Total", "Ultra", "Prime", "Guard", "Iron", "Swift"}
	suffixes := []string{"Shield", "Scan", "Defender", "Watch", "Armor", "Protect", "Lab", "Gate"}
	for i := 0; i < totalMinor; i++ {
		name := fmt.Sprintf("%s%s", prefixes[i%len(prefixes)], suffixes[(i/len(prefixes))%len(suffixes)])
		if i >= len(prefixes)*len(suffixes) {
			name = fmt.Sprintf("%s%d", name, i)
		}
		engines = append(engines, &Engine{
			Name:              name,
			Coverage:          0.55 + 0.3*float64(i%7)/7,
			DifficultyPenalty: 0.8,
			MinDelayDays:      5,
			MaxDelayDays:      400,
			FamilyAwareness:   0.25,
			Grammar:           minorEngineGrammar,
		})
	}
	return engines
}
