package avsim

import (
	"testing"

	"repro/internal/dataset"
)

func TestSchedulerDueOrderAndDedup(t *testing.T) {
	svc := NewDefaultService()
	sched := NewScheduler(svc)

	a := malSample("aaaa", dataset.TypeTrojan, "zeus")
	b := malSample("bbbb", dataset.TypeAdware, "dealply")
	c := malSample("cccc", dataset.TypeTrojan, "")

	sched.Schedule(b, t2y)
	sched.Schedule(a, t2y) // same due: hash tiebreak orders a first
	sched.Schedule(c, t2y.AddDate(0, 1, 0))
	sched.Schedule(a, t0)   // duplicate while pending: ignored
	sched.Schedule(nil, t0) // nil: ignored
	if got := sched.Len(); got != 3 {
		t.Fatalf("Len = %d, want 3", got)
	}

	// Nothing due before t2y.
	if due := sched.Due(t2y.AddDate(0, 0, -1)); due != nil {
		t.Fatalf("early drain returned %d rescans, want none", len(due))
	}

	due := sched.Due(t2y)
	if len(due) != 2 {
		t.Fatalf("drain at t2y returned %d rescans, want 2", len(due))
	}
	if due[0].Sample.Hash != a.Hash || due[1].Sample.Hash != b.Hash {
		t.Fatalf("drain order = %s, %s; want aaaa, bbbb", due[0].Sample.Hash, due[1].Sample.Hash)
	}
	for _, r := range due {
		if r.Report == nil {
			t.Fatalf("in-corpus sample %s drained with nil report", r.Sample.Hash)
		}
		if !r.Report.ScanTime.Equal(t2y) {
			t.Errorf("rescan of %s ran at %v, want scheduled due %v", r.Sample.Hash, r.Report.ScanTime, t2y)
		}
	}

	// a's rescan fired; it may be scheduled again.
	sched.Schedule(a, t2y.AddDate(1, 0, 0))
	if got := sched.Len(); got != 2 {
		t.Fatalf("Len after reschedule = %d, want 2", got)
	}

	// Draining far in the future empties the queue; a late drain still
	// scans each sample at its own due time.
	due = sched.Due(t2y.AddDate(10, 0, 0))
	if len(due) != 2 {
		t.Fatalf("final drain returned %d rescans, want 2", len(due))
	}
	if !due[0].Report.ScanTime.Equal(due[0].Due) {
		t.Errorf("late drain scanned at %v, want due time %v", due[0].Report.ScanTime, due[0].Due)
	}
	if sched.Len() != 0 {
		t.Fatalf("queue not empty after full drain")
	}
}

// TestSchedulerDelayedDetection pins the property the lifecycle loop
// depends on: a hard sample invisible at its first scan is detected by
// the t₀+2y re-scan, because engine signatures develop over time.
func TestSchedulerDelayedDetection(t *testing.T) {
	svc := NewDefaultService()
	sched := NewScheduler(svc)

	// Scan a batch of hard samples immediately and at t+2y; the rescan
	// must strictly grow total detections.
	early, late := 0, 0
	for i := 0; i < 32; i++ {
		s := malSample(string(rune('a'+i%26))+"hard", dataset.TypeTrojan, "zeus")
		s.Hash = dataset.FileHash(s.Hash) + dataset.FileHash(rune('0'+i%10))
		s.Difficulty = 0.85
		if rep := svc.Scan(s, t0); rep != nil {
			early += len(rep.Detections())
		}
		sched.Schedule(s, t2y)
	}
	for _, r := range sched.Due(t2y) {
		late += len(r.Report.Detections())
	}
	if late <= early {
		t.Fatalf("t+2y rescan detections = %d, not above first-scan %d; signature development broken", late, early)
	}
}

func TestSchedulerNotInCorpus(t *testing.T) {
	sched := NewScheduler(NewDefaultService())
	s := &Sample{Hash: "ghost", InCorpus: false}
	sched.Schedule(s, t2y)
	due := sched.Due(t2y)
	if len(due) != 1 {
		t.Fatalf("drain returned %d, want 1", len(due))
	}
	if due[0].Report != nil {
		t.Fatalf("out-of-corpus sample produced a report")
	}
}
