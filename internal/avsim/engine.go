// Package avsim simulates a VirusTotal-like multi-engine scanning
// service. The paper's labeling pipeline (Section II-B) queries
// VirusTotal for every downloaded file twice — close to the download and
// again ~two years later — and distinguishes a group of ten "trusted" AV
// engines from the remaining, less reliable ones.
//
// The simulator reproduces the pieces of that ecosystem the paper's
// pipeline depends on:
//
//   - per-engine detection with signature development over time
//     (a sample undetected at download time may be detected at the
//     two-year rescan);
//   - vendor-specific label grammars producing label strings with the
//     same structure real engines emit (e.g. Kaspersky's
//     "Trojan-Spy.Win32.Zbot.ruxa", McAfee's generic "Artemis!..."),
//     which the AVclass and AVType reimplementations then have to parse;
//   - realistic inter-engine disagreement on both detection and naming.
//
// All behaviour is deterministic: outcomes derive from FNV hashes of
// (engine, sample) so repeated scans agree and datasets are reproducible.
package avsim

import (
	"fmt"
	"hash/fnv"
	"math"

	"repro/internal/dataset"
)

// Engine models one anti-virus product participating in the scan
// service.
type Engine struct {
	// Name is the vendor name as it appears in scan reports.
	Name string
	// Trusted marks the engine as one of the ten most popular vendors
	// whose detections the labeling pipeline takes at face value.
	Trusted bool
	// Leading marks the five engines for which the AVType interpretation
	// map exists (Microsoft, Symantec, TrendMicro, Kaspersky, McAfee).
	Leading bool
	// Coverage is the asymptotic probability that the engine eventually
	// detects a detectable malicious sample.
	Coverage float64
	// DifficultyPenalty scales how much a sample's evasion difficulty
	// reduces this engine's effective coverage.
	DifficultyPenalty float64
	// MinDelayDays / MaxDelayDays bound the signature development delay:
	// the engine starts detecting a sample between these many days after
	// the sample first reaches the corpus.
	MinDelayDays float64
	MaxDelayDays float64
	// FamilyAwareness is the probability the engine's label carries the
	// sample's family token rather than a generic name.
	FamilyAwareness float64
	// Grammar renders a detection label for a sample.
	Grammar LabelGrammar
}

// LabelGrammar renders a vendor-style detection label. typ is the
// sample's behaviour type, family is the family token to embed ("" for a
// generic label), and u is a stable per-(engine,sample) 64-bit value used
// to derive suffixes deterministically.
type LabelGrammar func(typ dataset.MalwareType, family string, u uint64) string

// stableU64 derives a deterministic 64-bit value from the engine name, a
// sample hash and a purpose tag.
func stableU64(engine string, sample dataset.FileHash, purpose string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(engine))
	_, _ = h.Write([]byte{0})
	_, _ = h.Write([]byte(sample))
	_, _ = h.Write([]byte{0})
	_, _ = h.Write([]byte(purpose))
	return h.Sum64()
}

// stableUnit maps stableU64 output onto [0, 1).
func stableUnit(engine string, sample dataset.FileHash, purpose string) float64 {
	return float64(stableU64(engine, sample, purpose)>>11) / float64(1<<53)
}

// detectionDelayDays returns the signature development delay for this
// engine-sample pair, or NaN when the engine never detects the sample.
func (e *Engine) detectionDelayDays(s *Sample) float64 {
	if !s.TrueMalicious {
		return math.NaN()
	}
	if s.TrustedBlind && e.Trusted {
		return math.NaN()
	}
	p := e.Coverage * (1 - s.Difficulty*e.DifficultyPenalty)
	if p <= 0 {
		return math.NaN()
	}
	if stableUnit(e.Name, s.Hash, "detect") >= p {
		return math.NaN()
	}
	u := stableUnit(e.Name, s.Hash, "delay")
	// Square the unit draw so most signatures arrive early and a long
	// tail arrives late, matching how AV signature rollouts behave.
	return e.MinDelayDays + u*u*(e.MaxDelayDays-e.MinDelayDays)
}

// suffix renders a deterministic alphabetic suffix of length n from u.
func suffix(u uint64, n int) string {
	const letters = "abcdefghijklmnopqrstuvwxyz"
	b := make([]byte, n)
	for i := 0; i < n; i++ {
		b[i] = letters[u%26]
		u /= 26
	}
	return string(b)
}

// hexSuffix renders a deterministic uppercase hex suffix of length n.
func hexSuffix(u uint64, n int) string {
	s := fmt.Sprintf("%016X", u)
	if n > len(s) {
		n = len(s)
	}
	return s[:n]
}

// upperFirst capitalizes the first byte of s (families are stored
// lowercase; several vendors render them capitalized).
func upperFirst(s string) string {
	if s == "" {
		return s
	}
	b := []byte(s)
	if b[0] >= 'a' && b[0] <= 'z' {
		b[0] -= 'a' - 'A'
	}
	return string(b)
}
