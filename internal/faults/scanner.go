package faults

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/avsim"
	"repro/internal/dataset"
)

// Scanner is the scan-service dependency of the labeling pipeline: a
// remote multi-engine service that can fail. It is structurally
// identical to labeling.Scanner, so a FlakyScanner slots into the
// labeler without this package importing labeling.
type Scanner interface {
	Scan(hash dataset.FileHash, sample *avsim.Sample, at time.Time) (*avsim.Report, error)
}

// ScannerStats counts the faults a FlakyScanner injected. All fields are
// updated atomically; read them only after scanning completes.
type ScannerStats struct {
	// Scans counts Scan calls (attempts, including failed ones).
	Scans int64
	// InjectedErrors counts attempts failed with ErrInjected.
	InjectedErrors int64
	// InjectedTimeouts counts attempts failed with ErrTimeout.
	InjectedTimeouts int64
	// PersistentFailures counts attempts failed with ErrPersistent.
	PersistentFailures int64
	// PersistentKeys counts distinct hashes afflicted persistently.
	PersistentKeys int64
	// SimulatedLatency accumulates the injected latency the real
	// deployment would have waited out.
	SimulatedLatency time.Duration
}

// FlakyScanner decorates a Scanner with injected faults. It is safe for
// concurrent use — the parallel LabelStore path drives it from many
// goroutines — and its fault schedule is a pure function of the injector
// seed and the file hash, so concurrent and sequential labeling produce
// identical outcomes.
type FlakyScanner struct {
	inner Scanner
	inj   *Injector
	// persistentEligible gates which samples may fail persistently; nil
	// means all. The chaos harness restricts eligibility to samples with
	// no ground truth at stake (never submitted to the corpus), so
	// degradation to "unknown" reproduces the fault-free label and the
	// determinism guarantee holds.
	persistentEligible func(*avsim.Sample) bool

	mu       sync.Mutex
	attempts map[dataset.FileHash]int

	scans     atomic.Int64
	errs      atomic.Int64
	timeouts  atomic.Int64
	persist   atomic.Int64
	persisted sync.Map // hash -> struct{}, distinct persistent keys
	persistN  atomic.Int64
	latencyNS atomic.Int64
}

// NewFlakyScanner wraps inner with fault injection. persistentEligible
// may be nil (every sample eligible for persistent failure).
func NewFlakyScanner(inner Scanner, inj *Injector, persistentEligible func(*avsim.Sample) bool) (*FlakyScanner, error) {
	if inner == nil {
		return nil, fmt.Errorf("faults: nil inner scanner")
	}
	if inj == nil {
		return nil, fmt.Errorf("faults: nil injector")
	}
	return &FlakyScanner{
		inner:              inner,
		inj:                inj,
		persistentEligible: persistentEligible,
		attempts:           make(map[dataset.FileHash]int),
	}, nil
}

// Scan implements Scanner, injecting latency, transient failures,
// timeouts and (for eligible samples) persistent failures ahead of the
// wrapped scanner.
func (f *FlakyScanner) Scan(hash dataset.FileHash, sample *avsim.Sample, at time.Time) (*avsim.Report, error) {
	f.scans.Add(1)
	key := "scan|" + string(hash)
	f.latencyNS.Add(int64(f.inj.Latency(key)))
	if f.inj.Persistent(key) && (f.persistentEligible == nil || f.persistentEligible(sample)) {
		if _, loaded := f.persisted.LoadOrStore(hash, struct{}{}); !loaded {
			f.persistN.Add(1)
		}
		f.persist.Add(1)
		return nil, fmt.Errorf("scan %s: %w", hash, ErrPersistent)
	}
	f.mu.Lock()
	attempt := f.attempts[hash]
	f.attempts[hash] = attempt + 1
	f.mu.Unlock()
	if attempt < f.inj.FailuresBefore(key) {
		if f.inj.Timeout(key, attempt) {
			f.timeouts.Add(1)
			return nil, fmt.Errorf("scan %s attempt %d: %w", hash, attempt, ErrTimeout)
		}
		f.errs.Add(1)
		return nil, fmt.Errorf("scan %s attempt %d: %w", hash, attempt, ErrInjected)
	}
	return f.inner.Scan(hash, sample, at)
}

// Stats returns a snapshot of the injected-fault counters.
func (f *FlakyScanner) Stats() ScannerStats {
	return ScannerStats{
		Scans:              f.scans.Load(),
		InjectedErrors:     f.errs.Load(),
		InjectedTimeouts:   f.timeouts.Load(),
		PersistentFailures: f.persist.Load(),
		PersistentKeys:     f.persistN.Load(),
		SimulatedLatency:   time.Duration(f.latencyNS.Load()),
	}
}
