package faults

import (
	"fmt"
	"os"
	"sync"
)

// FileStats counts what a CrashFS did to the files written through it.
type FileStats struct {
	// Writes and Syncs count successful operations across all files.
	Writes int64
	Syncs  int64
	// SyncFailures counts injected fsync failures (partial fsyncs: the
	// call errors but a deterministic prefix of the unsynced tail still
	// reached durable storage).
	SyncFailures int64
	// PartialBytes is how many unsynced bytes those failures silently
	// persisted anyway.
	PartialBytes int64
	// TornBytes is how many bytes Crash discarded beyond the durable
	// prefix, and TornKept how many torn (written-but-unsynced) bytes it
	// left behind as a ragged tail.
	TornBytes int64
	TornKept  int64
}

// CrashFS hands out CrashableFiles and can "kill -9" all of them at
// once: every file is truncated to what an fsync actually made durable,
// plus — with probability TornWriteRate per file — a torn fragment of
// the unsynced tail, cut mid-record the way a real crash tears a
// half-flushed page. It plugs into journal.Options.OpenFile so journal
// crash-recovery tests exercise exactly the failure mode the WAL format
// is designed for.
type CrashFS struct {
	inj *Injector

	mu      sync.Mutex
	files   []*CrashableFile // guarded by mu
	opened  int              // guarded by mu
	crashed bool             // guarded by mu

	// statsMu guards stats alone and is always the innermost lock.
	// Stats updates happen under CrashableFile.mu (Write/Sync) while
	// Crash holds mu and takes each CrashableFile.mu — folding stats
	// under mu would close a mu -> CrashableFile.mu -> mu cycle.
	statsMu sync.Mutex
	stats   FileStats // guarded by statsMu
}

// NewCrashFS builds a crashable filesystem driven by inj (which may
// inject fsync failures via SyncFailRate and torn tails via
// TornWriteRate).
func NewCrashFS(inj *Injector) (*CrashFS, error) {
	if inj == nil {
		return nil, fmt.Errorf("faults: nil injector")
	}
	return &CrashFS{inj: inj}, nil
}

// Open creates path for writing. After Crash, every open fails the way
// a dead process's syscalls do.
func (fs *CrashFS) Open(path string) (*CrashableFile, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.crashed {
		return nil, fmt.Errorf("faults: crashed: %w", ErrInjected)
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	cf := &CrashableFile{
		fs:   fs,
		f:    f,
		path: path,
		key:  fmt.Sprintf("file-%d", fs.opened),
	}
	fs.opened++
	fs.files = append(fs.files, cf)
	return cf, nil
}

// Crash simulates kill -9: every file keeps its durable prefix (bytes
// covered by a successful or partial fsync) and, deterministically per
// file, possibly a torn fragment of its unsynced tail; everything else
// vanishes. All subsequent writes and syncs fail.
func (fs *CrashFS) Crash() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.crashed = true
	for _, cf := range fs.files {
		if err := cf.crash(); err != nil {
			return err
		}
	}
	return nil
}

// Stats returns a snapshot of the counters.
func (fs *CrashFS) Stats() FileStats {
	fs.statsMu.Lock()
	defer fs.statsMu.Unlock()
	return fs.stats
}

// CrashableFile is one file under CrashFS control. It tracks which
// byte ranges an fsync actually made durable so Crash can discard the
// rest — modelling the gap between write() returning and the data
// surviving a power cut.
type CrashableFile struct {
	fs   *CrashFS
	f    *os.File
	path string
	key  string

	mu      sync.Mutex
	size    int64 // guarded by mu: bytes written
	durable int64 // guarded by mu: bytes guaranteed on disk after the last fsync
	syncs   int   // guarded by mu: fsync attempts, for per-call fault keys
	crashed bool  // guarded by mu
}

// Write appends to the file. The bytes are not durable until a
// successful Sync covers them.
func (cf *CrashableFile) Write(p []byte) (int, error) {
	cf.mu.Lock()
	defer cf.mu.Unlock()
	if cf.crashed {
		return 0, fmt.Errorf("faults: write after crash: %w", ErrInjected)
	}
	n, err := cf.f.Write(p)
	cf.size += int64(n)
	if err != nil {
		return n, err
	}
	cf.fs.statsMu.Lock()
	cf.fs.stats.Writes++
	cf.fs.statsMu.Unlock()
	return n, nil
}

// Sync makes the written bytes durable — unless the injector fails this
// call, in which case the caller sees an error while a deterministic
// prefix of the unsynced tail persists anyway (a partial fsync, the
// worst case journal recovery must absorb).
func (cf *CrashableFile) Sync() error {
	cf.mu.Lock()
	defer cf.mu.Unlock()
	if cf.crashed {
		return fmt.Errorf("faults: sync after crash: %w", ErrInjected)
	}
	key := fmt.Sprintf("%s|sync-%d", cf.key, cf.syncs)
	cf.syncs++
	if cf.fs.inj.SyncFails(key) {
		kept := int64(cf.fs.inj.PartialFraction(key) * float64(cf.size-cf.durable))
		cf.durable += kept
		cf.fs.statsMu.Lock()
		cf.fs.stats.SyncFailures++
		cf.fs.stats.PartialBytes += kept
		cf.fs.statsMu.Unlock()
		return fmt.Errorf("faults: %s: partial fsync (%d bytes persisted): %w", cf.key, kept, ErrInjected)
	}
	if err := cf.f.Sync(); err != nil {
		return err
	}
	cf.durable = cf.size
	cf.fs.statsMu.Lock()
	cf.fs.stats.Syncs++
	cf.fs.statsMu.Unlock()
	return nil
}

// Close closes the underlying file without making it durable (a real
// close does not imply fsync). Idempotent; safe after Crash.
func (cf *CrashableFile) Close() error {
	cf.mu.Lock()
	defer cf.mu.Unlock()
	if cf.crashed {
		return nil
	}
	return cf.f.Close()
}

// crash truncates the file to its durable prefix plus an optional torn
// fragment of the unsynced tail. Callers hold fs.mu.
func (cf *CrashableFile) crash() error {
	cf.mu.Lock()
	defer cf.mu.Unlock()
	if cf.crashed {
		return nil
	}
	cf.crashed = true
	cf.f.Close()
	keep := cf.durable
	if tail := cf.size - cf.durable; tail > 0 && cf.fs.inj.TornWrite(cf.key) {
		// A torn write: part of the unsynced tail made it to disk,
		// cut at an arbitrary (deterministic) byte offset.
		keep += int64(cf.fs.inj.PartialFraction(cf.key+"|torn") * float64(tail))
	}
	err := os.Truncate(cf.path, keep)
	if os.IsNotExist(err) {
		// The file was deleted (or renamed away) after it was opened —
		// e.g. a journal segment removed by compaction. Nothing of it can
		// survive the crash, so there is nothing to truncate and nothing
		// of it shows up in the torn-byte accounting.
		return nil
	}
	cf.fs.statsMu.Lock()
	cf.fs.stats.TornKept += keep - cf.durable
	cf.fs.stats.TornBytes += cf.size - keep
	cf.fs.statsMu.Unlock()
	return err
}
