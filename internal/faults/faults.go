// Package faults provides a deterministic, seed-driven fault injector
// for the collection and labeling pipeline. The paper's deployment ran
// millions of endpoint agents reporting over real networks and built
// ground truth by querying a remote multi-engine scan service — all of
// which drop, time out, duplicate, reorder and rate-limit in practice.
// This package simulates exactly those failure modes so the rest of the
// system can prove it tolerates them.
//
// Every decision is a pure function of (seed, operation key), computed
// by stable hashing: the same seed and the same keys reproduce the same
// fault schedule regardless of goroutine interleaving or retry timing.
// That property is what lets the chaos harness assert that a pipeline
// run under faults produces byte-identical results to the fault-free
// run — the headline guarantee of the fault-tolerance layer.
package faults

import (
	"errors"
	"fmt"
	"hash/fnv"
	"time"
)

// Injected fault errors. Both are transient: a caller that retries long
// enough will get through (the injector bounds consecutive failures).
var (
	// ErrInjected is a generic injected delivery/scan failure.
	ErrInjected = errors.New("faults: injected transient error")
	// ErrTimeout is an injected timeout, reported separately because
	// real systems typically classify and count timeouts apart from
	// outright errors.
	ErrTimeout = errors.New("faults: injected timeout")
	// ErrPersistent is an injected permanent failure: retrying cannot
	// help. Wrappers surface it for every attempt on an afflicted key.
	ErrPersistent = errors.New("faults: injected persistent failure")
)

// Config parameterizes an Injector. All rates are probabilities in
// [0, 1]; the zero value injects nothing.
type Config struct {
	// Seed drives every decision; identical configs with identical seeds
	// produce identical fault schedules.
	Seed int64
	// ErrorRate is the probability that an operation suffers at least
	// one transient failure before succeeding.
	ErrorRate float64
	// MaxConsecutiveFailures caps how many consecutive transient
	// failures one operation key can suffer (default 3). Bounding the
	// streak is what makes recovery-within-retry-budget a guarantee by
	// construction rather than a probabilistic hope.
	MaxConsecutiveFailures int
	// TimeoutRate is the probability that an injected transient failure
	// manifests as a timeout rather than an error.
	TimeoutRate float64
	// MeanLatency adds simulated latency per operation, drawn
	// deterministically from [0, 2*MeanLatency). Wrappers account the
	// latency instead of sleeping, keeping chaos runs fast.
	MeanLatency time.Duration
	// DuplicateRate is the probability a delivery is duplicated outright
	// (the network delivers two copies).
	DuplicateRate float64
	// AckLossRate is the probability a successful delivery's
	// acknowledgment is lost: the payload arrives, the sender sees an
	// error and retransmits — the classic cause of at-least-once
	// duplication.
	AckLossRate float64
	// ReorderRate is the probability a delivery is held back and
	// released after up to ReorderWindow subsequent deliveries.
	ReorderRate float64
	// ReorderWindow bounds how many deliveries an event can be held back
	// (default 8).
	ReorderWindow int
	// PersistentRate is the probability that an eligible operation key
	// fails on every attempt. Wrappers restrict eligibility (e.g. the
	// flaky scanner only lets keys with no ground truth at stake fail
	// persistently, so degradation semantics stay deterministic).
	PersistentRate float64
	// SyncFailRate is the probability one fsync call fails partially: the
	// caller sees an error while a deterministic prefix of the unsynced
	// bytes persists anyway (CrashableFile.Sync).
	SyncFailRate float64
	// TornWriteRate is the probability a crashed file keeps a torn
	// fragment of its unsynced tail, cut mid-record (CrashFS.Crash).
	TornWriteRate float64
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	for _, r := range []struct {
		name string
		v    float64
	}{
		{"ErrorRate", c.ErrorRate}, {"TimeoutRate", c.TimeoutRate},
		{"DuplicateRate", c.DuplicateRate}, {"AckLossRate", c.AckLossRate},
		{"ReorderRate", c.ReorderRate}, {"PersistentRate", c.PersistentRate},
		{"SyncFailRate", c.SyncFailRate}, {"TornWriteRate", c.TornWriteRate},
	} {
		if r.v < 0 || r.v > 1 {
			return fmt.Errorf("faults: %s %v out of [0, 1]", r.name, r.v)
		}
	}
	if c.MaxConsecutiveFailures < 0 {
		return fmt.Errorf("faults: MaxConsecutiveFailures %d must be >= 0", c.MaxConsecutiveFailures)
	}
	if c.ReorderWindow < 0 {
		return fmt.Errorf("faults: ReorderWindow %d must be >= 0", c.ReorderWindow)
	}
	if c.MeanLatency < 0 {
		return fmt.Errorf("faults: MeanLatency %v must be >= 0", c.MeanLatency)
	}
	return nil
}

// maxConsecutiveOrDefault resolves the failure-streak cap.
func (c *Config) maxConsecutiveOrDefault() int {
	if c.MaxConsecutiveFailures > 0 {
		return c.MaxConsecutiveFailures
	}
	return 3
}

// reorderWindowOrDefault resolves the reorder window.
func (c *Config) reorderWindowOrDefault() int {
	if c.ReorderWindow > 0 {
		return c.ReorderWindow
	}
	return 8
}

// Injector makes deterministic per-operation fault decisions. It is
// stateless and safe for concurrent use; wrappers (FlakyScanner, Link)
// carry the mutable attempt tracking and statistics.
type Injector struct {
	cfg Config
}

// NewInjector builds an injector from cfg.
func NewInjector(cfg Config) (*Injector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Injector{cfg: cfg}, nil
}

// Config returns the injector's configuration.
func (i *Injector) Config() Config { return i.cfg }

// stableU64 derives a deterministic 64-bit value from the injector seed,
// an operation key and a purpose tag.
func (i *Injector) stableU64(key, purpose string) uint64 {
	h := fnv.New64a()
	var seed [8]byte
	s := uint64(i.cfg.Seed)
	for b := 0; b < 8; b++ {
		seed[b] = byte(s >> (8 * b))
	}
	_, _ = h.Write(seed[:])
	_, _ = h.Write([]byte(key))
	_, _ = h.Write([]byte{0})
	_, _ = h.Write([]byte(purpose))
	return h.Sum64()
}

// stableUnit maps stableU64 output onto [0, 1).
func (i *Injector) stableUnit(key, purpose string) float64 {
	return float64(i.stableU64(key, purpose)>>11) / float64(1<<53)
}

// FailuresBefore returns the number of injected transient failures the
// operation identified by key suffers before it is allowed to succeed:
// zero with probability 1-ErrorRate, otherwise a streak of at most
// MaxConsecutiveFailures.
func (i *Injector) FailuresBefore(key string) int {
	if i.stableUnit(key, "err") >= i.cfg.ErrorRate {
		return 0
	}
	return 1 + int(i.stableU64(key, "errn")%uint64(i.cfg.maxConsecutiveOrDefault()))
}

// Timeout reports whether the attempt-th injected failure for key
// manifests as a timeout rather than a plain error.
func (i *Injector) Timeout(key string, attempt int) bool {
	return i.stableUnit(fmt.Sprintf("%s|%d", key, attempt), "timeout") < i.cfg.TimeoutRate
}

// Persistent reports whether the operation identified by key fails on
// every attempt.
func (i *Injector) Persistent(key string) bool {
	return i.stableUnit(key, "persistent") < i.cfg.PersistentRate
}

// Duplicate reports whether the delivery identified by key is duplicated
// outright.
func (i *Injector) Duplicate(key string) bool {
	return i.stableUnit(key, "dup") < i.cfg.DuplicateRate
}

// AckLost reports whether the delivery identified by key loses its
// acknowledgment after arriving.
func (i *Injector) AckLost(key string) bool {
	return i.stableUnit(key, "ackloss") < i.cfg.AckLossRate
}

// SyncFails reports whether the fsync identified by key fails (a
// partial fsync; see Config.SyncFailRate).
func (i *Injector) SyncFails(key string) bool {
	return i.stableUnit(key, "syncfail") < i.cfg.SyncFailRate
}

// TornWrite reports whether the file identified by key keeps a torn
// fragment of its unsynced tail when its process crashes.
func (i *Injector) TornWrite(key string) bool {
	return i.stableUnit(key, "torn") < i.cfg.TornWriteRate
}

// PartialFraction returns a deterministic fraction in [0, 1) used to
// size partial-fsync and torn-write survivals for key.
func (i *Injector) PartialFraction(key string) float64 {
	return i.stableUnit(key, "partialfrac")
}

// Reorder reports whether the delivery identified by key is held back.
func (i *Injector) Reorder(key string) bool {
	return i.stableUnit(key, "reorder") < i.cfg.ReorderRate
}

// ReorderWindow returns the configured (or default) hold-back bound.
func (i *Injector) ReorderWindow() int { return i.cfg.reorderWindowOrDefault() }

// Latency returns the simulated added latency for key, deterministically
// drawn from [0, 2*MeanLatency).
func (i *Injector) Latency(key string) time.Duration {
	if i.cfg.MeanLatency <= 0 {
		return 0
	}
	return time.Duration(i.stableUnit(key, "latency") * 2 * float64(i.cfg.MeanLatency))
}
