package faults

import (
	"fmt"
	"sync"
	"time"
)

// LinkStats counts what a Link did to the traffic passing through it.
type LinkStats struct {
	// Sends counts Send calls (attempts, including dropped ones).
	Sends int64
	// Drops counts attempts lost in transit (sender sees ErrInjected).
	Drops int64
	// DropTimeouts counts the subset of drops surfaced as ErrTimeout.
	DropTimeouts int64
	// Duplicates counts extra copies delivered outright.
	Duplicates int64
	// AckLosses counts deliveries that arrived but whose acknowledgment
	// was lost, forcing the sender to retransmit an already-delivered
	// payload.
	AckLosses int64
	// Reordered counts payloads held back and released out of order.
	Reordered int64
	// MaxHeld is the high-water mark of the hold-back buffer.
	MaxHeld int
	// SimulatedLatency accumulates injected transit latency.
	SimulatedLatency time.Duration
}

// heldEntry is one payload held back for reordering.
type heldEntry[T any] struct {
	v    T
	tick int64
}

// Link wraps a delivery function with injected drops, duplication,
// acknowledgment loss and bounded reordering — an unreliable network
// path between a software agent and the collection server. Combined with
// a retrying sender it yields at-least-once delivery; the receiver is
// responsible for deduplication and re-sequencing.
//
// The fault schedule is a pure function of the injector seed and the
// per-payload key, so a fixed seed reproduces the same loss/duplication
// pattern run after run.
type Link[T any] struct {
	inj     *Injector
	keyFn   func(T) string
	deliver func(T) error

	mu       sync.Mutex
	attempts map[string]int
	held     []heldEntry[T]
	tick     int64

	stats LinkStats
}

// NewLink builds a faulty link in front of deliver. keyFn must return a
// stable unique key per logical payload (e.g. its sequence number):
// retransmissions of the same payload share the key, which is how the
// link bounds its consecutive drops.
func NewLink[T any](inj *Injector, keyFn func(T) string, deliver func(T) error) (*Link[T], error) {
	if inj == nil {
		return nil, fmt.Errorf("faults: nil injector")
	}
	if keyFn == nil {
		return nil, fmt.Errorf("faults: nil key function")
	}
	if deliver == nil {
		return nil, fmt.Errorf("faults: nil deliver function")
	}
	return &Link[T]{
		inj:      inj,
		keyFn:    keyFn,
		deliver:  deliver,
		attempts: make(map[string]int),
	}, nil
}

// Send pushes one payload (or retransmission) into the link. A nil
// return means the payload was accepted — though it may sit in the
// reorder buffer until later Sends or Flush release it. ErrInjected and
// ErrTimeout returns mean the sender must retransmit; the injector
// bounds consecutive failures, so a sender retrying at least
// MaxConsecutiveFailures+2 times is guaranteed to get through.
func (l *Link[T]) Send(v T) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	key := l.keyFn(v)
	attempt := l.attempts[key]
	l.attempts[key] = attempt + 1
	l.stats.Sends++
	l.stats.SimulatedLatency += l.inj.Latency(key)

	failsBefore := l.inj.FailuresBefore(key)
	if attempt < failsBefore {
		l.stats.Drops++
		if l.inj.Timeout(key, attempt) {
			l.stats.DropTimeouts++
			return fmt.Errorf("link %s attempt %d: %w", key, attempt, ErrTimeout)
		}
		return fmt.Errorf("link %s attempt %d: %w", key, attempt, ErrInjected)
	}

	l.tick++
	first := attempt == failsBefore
	if first && l.inj.Reorder(key) {
		// Hold the payload back; it will overtake later traffic when the
		// window forces its release.
		l.held = append(l.held, heldEntry[T]{v: v, tick: l.tick})
		l.stats.Reordered++
		if len(l.held) > l.stats.MaxHeld {
			l.stats.MaxHeld = len(l.held)
		}
		return l.releaseDueLocked()
	}
	if err := l.deliver(v); err != nil {
		return err
	}
	if first && l.inj.Duplicate(key) {
		l.stats.Duplicates++
		if err := l.deliver(v); err != nil {
			return err
		}
	}
	if err := l.releaseDueLocked(); err != nil {
		return err
	}
	if first && l.inj.AckLost(key) {
		// The payload arrived, but the sender never learns: it will
		// retransmit, and the receiver must deduplicate.
		l.stats.AckLosses++
		return fmt.Errorf("link %s: ack lost: %w", key, ErrInjected)
	}
	return nil
}

// releaseDueLocked delivers held payloads whose hold-back window has
// elapsed. Callers must hold l.mu.
func (l *Link[T]) releaseDueLocked() error {
	window := int64(l.inj.ReorderWindow())
	for len(l.held) > 0 && l.tick-l.held[0].tick >= window {
		e := l.held[0]
		l.held = l.held[1:]
		if err := l.deliver(e.v); err != nil {
			return err
		}
	}
	return nil
}

// Flush delivers every payload still held in the reorder buffer. Call it
// after the last Send.
func (l *Link[T]) Flush() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, e := range l.held {
		if err := l.deliver(e.v); err != nil {
			return err
		}
	}
	l.held = nil
	return nil
}

// Stats returns a snapshot of the link counters.
func (l *Link[T]) Stats() LinkStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}
