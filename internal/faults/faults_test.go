package faults

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/avsim"
	"repro/internal/dataset"
)

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{ErrorRate: -0.1},
		{ErrorRate: 1.1},
		{DuplicateRate: 2},
		{ReorderRate: -1},
		{PersistentRate: 1.5},
		{MaxConsecutiveFailures: -1},
		{ReorderWindow: -1},
		{MeanLatency: -time.Second},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d accepted: %+v", i, c)
		}
	}
	good := Config{Seed: 1, ErrorRate: 0.5, TimeoutRate: 0.3, DuplicateRate: 0.1}
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestInjectorDeterministic(t *testing.T) {
	cfg := Config{Seed: 7, ErrorRate: 0.5, TimeoutRate: 0.5, DuplicateRate: 0.3,
		AckLossRate: 0.2, ReorderRate: 0.3, PersistentRate: 0.1, MeanLatency: 10 * time.Millisecond}
	a, err := NewInjector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewInjector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("op-%d", i)
		if a.FailuresBefore(key) != b.FailuresBefore(key) ||
			a.Persistent(key) != b.Persistent(key) ||
			a.Duplicate(key) != b.Duplicate(key) ||
			a.AckLost(key) != b.AckLost(key) ||
			a.Reorder(key) != b.Reorder(key) ||
			a.Timeout(key, i%3) != b.Timeout(key, i%3) ||
			a.Latency(key) != b.Latency(key) {
			t.Fatalf("injector decisions diverge for key %s", key)
		}
	}
}

func TestInjectorSeedChangesSchedule(t *testing.T) {
	a, _ := NewInjector(Config{Seed: 1, ErrorRate: 0.5})
	b, _ := NewInjector(Config{Seed: 2, ErrorRate: 0.5})
	same := 0
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("op-%d", i)
		if (a.FailuresBefore(key) > 0) == (b.FailuresBefore(key) > 0) {
			same++
		}
	}
	if same == 200 {
		t.Error("different seeds produced identical error schedules")
	}
}

func TestInjectorRates(t *testing.T) {
	inj, _ := NewInjector(Config{Seed: 3, ErrorRate: 0.3, MaxConsecutiveFailures: 4})
	failing, maxStreak := 0, 0
	const n = 2000
	for i := 0; i < n; i++ {
		f := inj.FailuresBefore(fmt.Sprintf("op-%d", i))
		if f > 0 {
			failing++
		}
		if f > maxStreak {
			maxStreak = f
		}
	}
	rate := float64(failing) / n
	if rate < 0.25 || rate > 0.35 {
		t.Errorf("observed error rate %.3f far from configured 0.3", rate)
	}
	if maxStreak > 4 {
		t.Errorf("failure streak %d exceeds cap 4", maxStreak)
	}
	if maxStreak == 0 {
		t.Error("no failures injected at 30% error rate")
	}
}

func TestInjectorZeroConfigInjectsNothing(t *testing.T) {
	inj, _ := NewInjector(Config{Seed: 9})
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("op-%d", i)
		if inj.FailuresBefore(key) != 0 || inj.Persistent(key) ||
			inj.Duplicate(key) || inj.AckLost(key) || inj.Reorder(key) ||
			inj.Latency(key) != 0 {
			t.Fatalf("zero config injected a fault for %s", key)
		}
	}
}

// scriptScanner returns a fixed report and counts calls.
type scriptScanner struct {
	mu    sync.Mutex
	calls int
}

func (s *scriptScanner) Scan(hash dataset.FileHash, sample *avsim.Sample, at time.Time) (*avsim.Report, error) {
	s.mu.Lock()
	s.calls++
	s.mu.Unlock()
	if sample == nil {
		return nil, nil
	}
	return &avsim.Report{Sample: hash, ScanTime: at}, nil
}

func TestFlakyScannerRecoversWithinBudget(t *testing.T) {
	inj, _ := NewInjector(Config{Seed: 11, ErrorRate: 1, MaxConsecutiveFailures: 2, TimeoutRate: 0.5})
	inner := &scriptScanner{}
	fs, err := NewFlakyScanner(inner, inj, nil)
	if err != nil {
		t.Fatal(err)
	}
	sample := &avsim.Sample{Hash: "f1", InCorpus: true}
	var rep *avsim.Report
	var lastErr error
	for attempt := 0; attempt < 4; attempt++ {
		rep, lastErr = fs.Scan("f1", sample, time.Unix(0, 0))
		if lastErr == nil {
			break
		}
		if !errors.Is(lastErr, ErrInjected) && !errors.Is(lastErr, ErrTimeout) {
			t.Fatalf("unexpected error class: %v", lastErr)
		}
	}
	if lastErr != nil {
		t.Fatalf("scan did not recover within MaxConsecutiveFailures+1 attempts: %v", lastErr)
	}
	if rep == nil || rep.Sample != "f1" {
		t.Fatalf("recovered scan returned %+v", rep)
	}
	st := fs.Stats()
	if st.InjectedErrors+st.InjectedTimeouts == 0 {
		t.Error("no transient faults recorded at 100% error rate")
	}
	if st.PersistentFailures != 0 {
		t.Error("persistent failures recorded with PersistentRate 0")
	}
}

func TestFlakyScannerPersistentEligibility(t *testing.T) {
	inj, _ := NewInjector(Config{Seed: 13, PersistentRate: 1})
	inner := &scriptScanner{}
	eligible := func(s *avsim.Sample) bool { return s == nil || !s.InCorpus }
	fs, err := NewFlakyScanner(inner, inj, eligible)
	if err != nil {
		t.Fatal(err)
	}
	// In-corpus sample: not eligible, never fails persistently.
	if _, err := fs.Scan("in", &avsim.Sample{Hash: "in", InCorpus: true}, time.Unix(0, 0)); err != nil {
		t.Fatalf("ineligible sample failed persistently: %v", err)
	}
	// Out-of-corpus sample: always fails, on every attempt.
	for i := 0; i < 3; i++ {
		if _, err := fs.Scan("out", nil, time.Unix(0, 0)); !errors.Is(err, ErrPersistent) {
			t.Fatalf("attempt %d: err = %v, want ErrPersistent", i, err)
		}
	}
	st := fs.Stats()
	if st.PersistentFailures != 3 || st.PersistentKeys != 1 {
		t.Errorf("persistent stats = %+v, want 3 failures over 1 key", st)
	}
}

func TestFlakyScannerConcurrentDeterministic(t *testing.T) {
	run := func() map[dataset.FileHash]int {
		inj, _ := NewInjector(Config{Seed: 17, ErrorRate: 0.4, MaxConsecutiveFailures: 3})
		fs, _ := NewFlakyScanner(&scriptScanner{}, inj, nil)
		out := make(map[dataset.FileHash]int)
		var mu sync.Mutex
		var wg sync.WaitGroup
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < 200; i += 8 {
					hash := dataset.FileHash(fmt.Sprintf("f%d", i))
					tries := 0
					for {
						tries++
						if _, err := fs.Scan(hash, &avsim.Sample{Hash: hash, InCorpus: true}, time.Unix(0, 0)); err == nil {
							break
						}
					}
					mu.Lock()
					out[hash] = tries
					mu.Unlock()
				}
			}(w)
		}
		wg.Wait()
		return out
	}
	a, b := run(), run()
	for h, tries := range a {
		if b[h] != tries {
			t.Fatalf("attempt count for %s differs across runs: %d vs %d", h, tries, b[h])
		}
	}
}

func TestLinkDeliversEverythingExactlyOnceAfterDedup(t *testing.T) {
	inj, _ := NewInjector(Config{
		Seed: 19, ErrorRate: 0.2, MaxConsecutiveFailures: 3, TimeoutRate: 0.4,
		DuplicateRate: 0.1, AckLossRate: 0.1, ReorderRate: 0.15, ReorderWindow: 4,
	})
	delivered := make(map[int]int)
	var order []int
	link, err := NewLink(inj, func(v int) string { return fmt.Sprintf("%d", v) }, func(v int) error {
		delivered[v]++
		order = append(order, v)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	const n = 500
	for i := 0; i < n; i++ {
		for attempt := 0; ; attempt++ {
			if attempt > 6 {
				t.Fatalf("payload %d not accepted within bounded retries", i)
			}
			if err := link.Send(i); err == nil {
				break
			} else if !errors.Is(err, ErrInjected) && !errors.Is(err, ErrTimeout) {
				t.Fatal(err)
			}
		}
	}
	if err := link.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if delivered[i] == 0 {
			t.Fatalf("payload %d lost", i)
		}
	}
	st := link.Stats()
	if st.Drops == 0 || st.Duplicates == 0 || st.AckLosses == 0 || st.Reordered == 0 {
		t.Errorf("expected all fault classes at these rates: %+v", st)
	}
	// Reordering must actually displace some payloads...
	outOfOrder := 0
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			outOfOrder++
		}
	}
	if outOfOrder == 0 {
		t.Error("no out-of-order deliveries despite reordering")
	}
	// ...but only within the bounded window: consider each payload's
	// first arrival (duplicates aside) and check its displacement from
	// the original position.
	seen := make(map[int]bool, n)
	var firsts []int
	for _, v := range order {
		if !seen[v] {
			seen[v] = true
			firsts = append(firsts, v)
		}
	}
	for pos, v := range firsts {
		if d := pos - v; d > 16 || d < -16 {
			t.Fatalf("payload %d displaced by %d positions, window is 4", v, d)
		}
	}
}

func TestLinkNoFaultsIsTransparent(t *testing.T) {
	inj, _ := NewInjector(Config{Seed: 23})
	var order []int
	link, _ := NewLink(inj, func(v int) string { return fmt.Sprintf("%d", v) }, func(v int) error {
		order = append(order, v)
		return nil
	})
	for i := 0; i < 50; i++ {
		if err := link.Send(i); err != nil {
			t.Fatal(err)
		}
	}
	if err := link.Flush(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if i != v {
			t.Fatalf("order[%d] = %d under a fault-free link", i, v)
		}
	}
}

func TestLinkPropagatesInnerError(t *testing.T) {
	inj, _ := NewInjector(Config{Seed: 29})
	boom := errors.New("receiver down")
	link, _ := NewLink(inj, func(v int) string { return "k" }, func(int) error { return boom })
	if err := link.Send(1); !errors.Is(err, boom) {
		t.Fatalf("Send = %v, want inner error", err)
	}
}
