package faults

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
)

// DefaultIDHeader is the request header the Transport keys its
// per-request fault schedule on. It matches serve.RequestIDHeader
// (spelled out here so faults does not depend on the serving layer).
const DefaultIDHeader = "X-Request-Id"

// TransportStats counts what a Transport did to the traffic through it.
type TransportStats struct {
	// Requests counts RoundTrip calls (attempts, including faulted ones).
	Requests int64
	// Dropped counts requests lost before delivery (the sender sees an
	// error; the server never saw the request).
	Dropped int64
	// ResponsesLost counts requests that were delivered and processed but
	// whose response was discarded — the failure mode that forces the
	// receiver's retransmit-dedup machinery to prove itself.
	ResponsesLost int64
	// PartitionRefusals counts requests refused because their link was
	// partitioned at the time.
	PartitionRefusals int64
	// FaultedKeys is how many distinct (link, request) keys hit at least
	// one injected fault or partition refusal.
	FaultedKeys int
	// SimulatedLatency accumulates injected per-attempt latency, in
	// nanoseconds (accounted, not slept, so chaos runs stay fast).
	SimulatedLatencyNS int64
}

// Transport is an http.RoundTripper decorated with deterministic link
// faults: per-link request drops and response losses driven by an
// Injector, plus operator-controlled partitions that fail every request
// to a host until healed. It is the inter-node decoration point of the
// cluster layer — wrap the router's shared transport with it and the
// per-node retry/breaker/failover machinery absorbs the injected
// failures exactly as the serving client absorbs single-node faults.
//
// Fault decisions key on (host, request ID, attempt), so every
// router→replica link gets an independent, reproducible schedule, and
// retransmissions of one batch see a bounded failure streak
// (Injector.FailuresBefore). Requests without an ID header (health
// probes, reload fan-outs) pass through un-dropped — partitions still
// apply to them, which is what lets probes detect a cut link.
type Transport struct {
	inj  *Injector
	base http.RoundTripper
	// IDHeader names the request-ID header the fault schedule keys on;
	// empty selects DefaultIDHeader. Set before first use.
	IDHeader string

	mu       sync.Mutex
	attempts map[string]int  // guarded by mu
	faulted  map[string]bool // guarded by mu
	// partitioned marks hosts whose link is down; guarded by mu.
	partitioned map[string]bool
	stats       TransportStats // guarded by mu
}

// NewTransport wraps base (nil selects http.DefaultTransport) with the
// injector's deterministic link-fault schedule.
func NewTransport(inj *Injector, base http.RoundTripper) (*Transport, error) {
	if inj == nil {
		return nil, fmt.Errorf("faults: nil injector")
	}
	if base == nil {
		base = http.DefaultTransport
	}
	return &Transport{
		inj:         inj,
		base:        base,
		attempts:    make(map[string]int),
		faulted:     make(map[string]bool),
		partitioned: make(map[string]bool),
	}, nil
}

// Partition cuts the link to host (as it appears in request URLs, e.g.
// "127.0.0.1:8787"): every subsequent request to it fails until Heal.
func (t *Transport) Partition(host string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.partitioned[host] = true
}

// Heal restores the link to host.
func (t *Transport) Heal(host string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.partitioned, host)
}

// Partitioned reports whether the link to host is currently cut.
func (t *Transport) Partitioned(host string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.partitioned[host]
}

// RoundTrip applies the link's fault schedule to one attempt.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	host := req.URL.Host
	hdr := t.IDHeader
	if hdr == "" {
		hdr = DefaultIDHeader
	}
	id := req.Header.Get(hdr)
	key := host + "|" + id

	t.mu.Lock()
	t.stats.Requests++
	if t.partitioned[host] {
		t.stats.PartitionRefusals++
		t.markFaultedLocked(key)
		t.mu.Unlock()
		return nil, fmt.Errorf("%s: link to %s partitioned: %w", req.URL.Path, host, ErrInjected)
	}
	if id == "" || !strings.HasPrefix(req.URL.Path, "/classify") && !strings.HasPrefix(req.URL.Path, "/result") {
		// Control-plane traffic (probes, reloads) rides the link without
		// injected drops; partitions above are the only way it fails.
		t.mu.Unlock()
		return t.base.RoundTrip(req)
	}
	attempt := t.attempts[key]
	t.attempts[key] = attempt + 1
	t.stats.SimulatedLatencyNS += int64(t.inj.Latency(key))
	if attempt < t.inj.FailuresBefore(key) {
		t.markFaultedLocked(key)
		ackLost := t.inj.AckLost(fmt.Sprintf("%s|a%d", key, attempt))
		if ackLost {
			t.stats.ResponsesLost++
		} else {
			t.stats.Dropped++
		}
		t.mu.Unlock()
		if ackLost {
			// Deliver the request, then lose the response: the replica
			// classified and journaled, but the router never hears — the
			// retransmit must be answered from the replica's ledger.
			resp, err := t.base.RoundTrip(req)
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			return nil, fmt.Errorf("link %s attempt %d: response lost: %w", key, attempt, ErrInjected)
		}
		return nil, fmt.Errorf("link %s attempt %d: %w", key, attempt, ErrInjected)
	}
	t.mu.Unlock()
	return t.base.RoundTrip(req)
}

// markFaultedLocked records that key hit at least one fault. Callers
// hold t.mu.
func (t *Transport) markFaultedLocked(key string) {
	if !t.faulted[key] {
		t.faulted[key] = true
		t.stats.FaultedKeys++
	}
}

// Counts returns (distinct request keys seen, keys that hit >= 1
// injected fault), mirroring the accounting the chaos harnesses assert
// their >= 10%-faulted floor against.
func (t *Transport) Counts() (keys, faulted int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.attempts), len(t.faulted)
}

// Stats returns a snapshot of the transport counters.
func (t *Transport) Stats() TransportStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stats
}
