package faults

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
)

func newLinkTransport(t *testing.T, cfg Config, base http.RoundTripper) *Transport {
	t.Helper()
	inj, err := NewInjector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := NewTransport(inj, base)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestTransportValidation(t *testing.T) {
	if _, err := NewTransport(nil, nil); err == nil {
		t.Error("nil injector accepted")
	}
}

func TestTransportDeterministicDropsAndRecovery(t *testing.T) {
	var served atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served.Add(1)
		fmt.Fprint(w, "ok")
	}))
	defer srv.Close()

	cfg := Config{Seed: 11, ErrorRate: 1, MaxConsecutiveFailures: 2, AckLossRate: 0}
	tr := newLinkTransport(t, cfg, nil)
	client := &http.Client{Transport: tr} //lint:allow retrypolicy test harness drives the fault transport directly

	do := func(id string) error {
		req, err := http.NewRequest(http.MethodPost, srv.URL+"/classify", nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set(DefaultIDHeader, id)
		resp, err := client.Do(req)
		if err != nil {
			return err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return nil
	}

	// ErrorRate 1 with MaxConsecutiveFailures 2: every request key fails a
	// bounded streak, then the retransmit goes through.
	var failures int
	for attempt := 0; ; attempt++ {
		if attempt > 4 {
			t.Fatal("failure streak exceeded MaxConsecutiveFailures bound")
		}
		err := do("req-0001")
		if err == nil {
			break
		}
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("unexpected transport error: %v", err)
		}
		failures++
	}
	if failures == 0 || failures > 2 {
		t.Fatalf("failure streak = %d, want within [1, 2]", failures)
	}
	if served.Load() != 1 {
		t.Fatalf("server saw %d deliveries, want 1 (drops must not deliver)", served.Load())
	}

	// The same id on the same link replays the exact schedule: it is past
	// its streak now, so it succeeds first try.
	if err := do("req-0001"); err != nil {
		t.Fatalf("post-streak retransmit failed: %v", err)
	}

	keys, faulted := tr.Counts()
	if keys != 1 || faulted != 1 {
		t.Fatalf("Counts = (%d, %d), want (1, 1)", keys, faulted)
	}
}

func TestTransportAckLossDeliversThenLoses(t *testing.T) {
	var served atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served.Add(1)
		fmt.Fprint(w, "ok")
	}))
	defer srv.Close()

	cfg := Config{Seed: 3, ErrorRate: 1, MaxConsecutiveFailures: 1, AckLossRate: 1}
	tr := newLinkTransport(t, cfg, nil)

	req, err := http.NewRequest(http.MethodPost, srv.URL+"/classify", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(DefaultIDHeader, "req-ack")
	if _, err := tr.RoundTrip(req); !errors.Is(err, ErrInjected) {
		t.Fatalf("RoundTrip = %v, want injected ack loss", err)
	}
	// AckLossRate 1: the faulted attempt still delivered the request; only
	// the response was discarded.
	if served.Load() != 1 {
		t.Fatalf("server saw %d deliveries, want 1 (ack loss must deliver)", served.Load())
	}
	st := tr.Stats()
	if st.ResponsesLost != 1 || st.Dropped != 0 {
		t.Fatalf("stats = %+v, want 1 response lost, 0 dropped", st)
	}
}

func TestTransportPartitionCutsAllPaths(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "ok")
	}))
	defer srv.Close()

	tr := newLinkTransport(t, Config{Seed: 1}, nil)
	host := srv.Listener.Addr().String()

	do := func(path, id string) error {
		req, err := http.NewRequest(http.MethodGet, srv.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		if id != "" {
			req.Header.Set(DefaultIDHeader, id)
		}
		resp, err := tr.RoundTrip(req)
		if err != nil {
			return err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return nil
	}

	// Healthy link: data and control paths both pass (zero fault rates).
	if err := do("/classify", "req-1"); err != nil {
		t.Fatalf("pre-partition /classify: %v", err)
	}
	if err := do("/healthz", ""); err != nil {
		t.Fatalf("pre-partition /healthz: %v", err)
	}

	tr.Partition(host)
	if !tr.Partitioned(host) {
		t.Fatal("Partitioned = false after Partition")
	}
	// Partition refuses everything — including control-plane probes, which
	// is how the router's health machinery notices the cut.
	if err := do("/classify", "req-2"); !errors.Is(err, ErrInjected) {
		t.Fatalf("partitioned /classify = %v, want refusal", err)
	}
	if err := do("/healthz", ""); !errors.Is(err, ErrInjected) {
		t.Fatalf("partitioned /healthz = %v, want refusal", err)
	}

	tr.Heal(host)
	if err := do("/healthz", ""); err != nil {
		t.Fatalf("post-heal /healthz: %v", err)
	}
	if got := tr.Stats().PartitionRefusals; got != 2 {
		t.Fatalf("partition refusals = %d, want 2", got)
	}
}
