package export

import (
	"time"
	"unicode/utf8"

	"repro/internal/dataset"
)

// This file is the allocation-free fast path for the single-record wire
// format the serving layer speaks: AppendEventLine produces exactly the
// bytes MarshalEventLine produces, and ParseEventLine inverts them with
// substring slicing instead of per-field copies. MarshalEventLine /
// UnmarshalEventLine remain the reference implementations; the
// differential tests in fastline_test.go hold the two pairs equal, and
// any input outside the fast path's strict-canonical shape falls back
// to the encoding/json path, so the fast functions can never disagree
// with the oracle — only skip ahead of it.

const hexDigits = "0123456789abcdef"

// jsonSafe reports whether byte b passes through encoding/json's
// string encoder unescaped (the HTML-escaping mode json.Marshal uses).
func jsonSafe(b byte) bool {
	return b >= 0x20 && b < utf8.RuneSelf &&
		b != '"' && b != '\\' && b != '<' && b != '>' && b != '&'
}

// AppendJSONString appends s as a JSON string literal (quotes included),
// byte-identical to encoding/json's default (HTML-escaping) encoder:
// two-character escapes for \" \\ \b \f \n \r \t, \u00xx for other
// control bytes and for < > &, the six-byte escape sequence \ufffd for
// each invalid UTF-8 byte, and U+2028/U+2029 escaped.
func AppendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	start := 0
	for i := 0; i < len(s); {
		if b := s[i]; b < utf8.RuneSelf {
			if jsonSafe(b) {
				i++
				continue
			}
			dst = append(dst, s[start:i]...)
			switch b {
			case '\\', '"':
				dst = append(dst, '\\', b)
			case '\b':
				dst = append(dst, '\\', 'b')
			case '\f':
				dst = append(dst, '\\', 'f')
			case '\n':
				dst = append(dst, '\\', 'n')
			case '\r':
				dst = append(dst, '\\', 'r')
			case '\t':
				dst = append(dst, '\\', 't')
			default:
				dst = append(dst, '\\', 'u', '0', '0', hexDigits[b>>4], hexDigits[b&0xF])
			}
			i++
			start = i
			continue
		}
		c, size := utf8.DecodeRuneInString(s[i:])
		if c == utf8.RuneError && size == 1 {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', 'f', 'f', 'f', 'd')
			i += size
			start = i
			continue
		}
		if c == '\u2028' || c == '\u2029' {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', '2', '0', '2', hexDigits[c&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	dst = append(dst, s[start:]...)
	dst = append(dst, '"')
	return dst
}

// AppendJSONBytes is AppendJSONString for a byte slice, sparing callers
// that hold []byte (journal payloads, response bodies) the string
// conversion copy. Same byte-for-byte encoding contract.
func AppendJSONBytes(dst, s []byte) []byte {
	dst = append(dst, '"')
	start := 0
	for i := 0; i < len(s); {
		if b := s[i]; b < utf8.RuneSelf {
			if jsonSafe(b) {
				i++
				continue
			}
			dst = append(dst, s[start:i]...)
			switch b {
			case '\\', '"':
				dst = append(dst, '\\', b)
			case '\b':
				dst = append(dst, '\\', 'b')
			case '\f':
				dst = append(dst, '\\', 'f')
			case '\n':
				dst = append(dst, '\\', 'n')
			case '\r':
				dst = append(dst, '\\', 'r')
			case '\t':
				dst = append(dst, '\\', 't')
			default:
				dst = append(dst, '\\', 'u', '0', '0', hexDigits[b>>4], hexDigits[b&0xF])
			}
			i++
			start = i
			continue
		}
		c, size := utf8.DecodeRune(s[i:])
		if c == utf8.RuneError && size == 1 {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', 'f', 'f', 'f', 'd')
			i += size
			start = i
			continue
		}
		if c == '\u2028' || c == '\u2029' {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', '2', '0', '2', hexDigits[c&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	dst = append(dst, s[start:]...)
	dst = append(dst, '"')
	return dst
}

// timeStrict reports whether t round-trips through time.Time's strict
// RFC 3339 JSON marshaling (year within [0,9999], whole-minute zone
// offset) — the preconditions under which AppendFormat(RFC3339Nano)
// produces exactly time.Time.MarshalJSON's bytes.
func timeStrict(t time.Time) bool {
	if y := t.Year(); y < 0 || y > 9999 {
		return false
	}
	_, off := t.Zone()
	return off%60 == 0
}

// AppendEventLine appends one "event" record (no trailing newline),
// byte-identical to MarshalEventLine. Events whose timestamp falls
// outside strict RFC 3339 take the MarshalEventLine path so errors stay
// identical too.
func AppendEventLine(dst []byte, e *dataset.DownloadEvent) ([]byte, error) {
	if e == nil || !timeStrict(e.Time) {
		line, err := MarshalEventLine(e)
		if err != nil {
			return dst, err
		}
		return append(dst, line...), nil
	}
	if err := e.Validate(); err != nil {
		return dst, err
	}
	dst = append(dst, `{"type":"event","file":`...)
	dst = AppendJSONString(dst, string(e.File))
	dst = append(dst, `,"machine":`...)
	dst = AppendJSONString(dst, string(e.Machine))
	dst = append(dst, `,"process":`...)
	dst = AppendJSONString(dst, string(e.Process))
	dst = append(dst, `,"url":`...)
	dst = AppendJSONString(dst, e.URL)
	if e.Domain != "" {
		dst = append(dst, `,"domain":`...)
		dst = AppendJSONString(dst, e.Domain)
	}
	dst = append(dst, `,"time":"`...)
	dst = e.Time.AppendFormat(dst, time.RFC3339Nano)
	dst = append(dst, `","executed":`...)
	if e.Executed {
		dst = append(dst, "true}"...)
	} else {
		dst = append(dst, "false}"...)
	}
	return dst, nil
}

// scanPlainString scans a JSON string literal starting at s[i] (which
// must be the opening quote) containing only unescaped printable ASCII,
// returning the contents and the index past the closing quote. ok is
// false when the literal is absent, escaped, or non-ASCII — the caller
// falls back to the reference decoder.
func scanPlainString(s string, i int) (val string, next int, ok bool) {
	if i >= len(s) || s[i] != '"' {
		return "", i, false
	}
	i++
	start := i
	for i < len(s) {
		b := s[i]
		if b == '"' {
			return s[start:i], i + 1, true
		}
		if b == '\\' || b < 0x20 || b >= utf8.RuneSelf {
			return "", i, false
		}
		i++
	}
	return "", i, false
}

// literal matches lit at s[i], returning the index past it.
func literal(s string, i int, lit string) (int, bool) {
	if len(s)-i < len(lit) || s[i:i+len(lit)] != lit {
		return i, false
	}
	return i + len(lit), true
}

// ParseEventLine parses one "event" record line into a DownloadEvent.
// Canonical lines — the exact field order and plain-ASCII strings
// AppendEventLine emits — are decoded by slicing substrings out of
// line, so the per-event cost is zero heap allocations beyond what the
// event itself retains. Anything else (re-ordered fields, escapes,
// non-ASCII, unknown fields) is delegated to UnmarshalEventLine, which
// defines the semantics.
func ParseEventLine(line string) (dataset.DownloadEvent, error) {
	ev, ok := parseEventFast(line)
	if !ok {
		return UnmarshalEventLine([]byte(line))
	}
	if err := ev.Validate(); err != nil {
		return dataset.DownloadEvent{}, err
	}
	return ev, nil
}

func parseEventFast(line string) (dataset.DownloadEvent, bool) {
	var ev dataset.DownloadEvent
	i, ok := literal(line, 0, `{"type":"event","file":`)
	if !ok {
		return ev, false
	}
	var file, machine, process string
	if file, i, ok = scanPlainString(line, i); !ok {
		return ev, false
	}
	if i, ok = literal(line, i, `,"machine":`); !ok {
		return ev, false
	}
	if machine, i, ok = scanPlainString(line, i); !ok {
		return ev, false
	}
	if i, ok = literal(line, i, `,"process":`); !ok {
		return ev, false
	}
	if process, i, ok = scanPlainString(line, i); !ok {
		return ev, false
	}
	if i, ok = literal(line, i, `,"url":`); !ok {
		return ev, false
	}
	if ev.URL, i, ok = scanPlainString(line, i); !ok {
		return ev, false
	}
	if j, isDomain := literal(line, i, `,"domain":`); isDomain {
		if ev.Domain, i, ok = scanPlainString(line, j); !ok {
			return ev, false
		}
	}
	if i, ok = literal(line, i, `,"time":`); !ok {
		return ev, false
	}
	var stamp string
	if stamp, i, ok = scanPlainString(line, i); !ok {
		return ev, false
	}
	// time.Parse takes the allocation-free parseRFC3339 fast path for
	// this layout, but is laxer than time.Time's strict JSON decoding
	// (it falls back to a lenient general parser), so only stamps that
	// re-format to the identical bytes are accepted here; anything else
	// goes to the reference decoder, which defines the semantics.
	t, err := time.Parse(time.RFC3339Nano, stamp)
	if err != nil {
		return ev, false
	}
	var buf [40]byte
	if string(t.AppendFormat(buf[:0], time.RFC3339Nano)) != stamp {
		return ev, false
	}
	ev.Time = t
	if i, ok = literal(line, i, `,"executed":`); !ok {
		return ev, false
	}
	switch {
	case len(line)-i >= 5 && line[i:i+5] == "true}":
		ev.Executed, i = true, i+5
	case len(line)-i >= 6 && line[i:i+6] == "false}":
		ev.Executed, i = false, i+6
	default:
		return ev, false
	}
	if i != len(line) {
		return ev, false
	}
	ev.File = dataset.FileHash(file)
	ev.Machine = dataset.MachineID(machine)
	ev.Process = dataset.FileHash(process)
	return ev, true
}
