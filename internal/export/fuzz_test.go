package export

import (
	"strings"
	"testing"
)

// FuzzReadStore asserts the dataset parser never panics on malformed
// input and that accepted streams yield a usable store.
func FuzzReadStore(f *testing.F) {
	f.Add(`{"type":"header","version":1}`)
	f.Add("{\"type\":\"header\",\"version\":1}\n{\"type\":\"meta\",\"hash\":\"f1\"}")
	f.Add("{\"type\":\"header\",\"version\":1}\n{\"type\":\"event\",\"file\":\"f\",\"machine\":\"m\",\"process\":\"p\",\"url\":\"u\",\"time\":\"2014-01-02T00:00:00Z\",\"executed\":true}")
	f.Add("{\"type\":\"header\",\"version\":1}\n{\"type\":\"truth\",\"hash\":\"f\",\"label\":3}")
	f.Add("{\"type\":\"header\",\"version\":1}\n{\"type\":\"url\",\"domain\":\"d.com\",\"verdict\":1,\"rank\":5}")
	f.Add("")
	f.Add("{nope")
	f.Add(`{"type":"wat"}`)
	f.Fuzz(func(t *testing.T, raw string) {
		store, oracle, err := ReadStoreWithOracle(strings.NewReader(raw))
		if err != nil {
			return
		}
		if store == nil || oracle == nil {
			t.Fatal("nil store/oracle without error")
		}
		// The store must be internally consistent: every event validates.
		for _, e := range store.Events() {
			if verr := e.Validate(); verr != nil {
				t.Fatalf("accepted stream contains invalid event: %v", verr)
			}
		}
		store.Freeze()
	})
}
