package export

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/synth"
)

// FuzzReadStore asserts the dataset parser never panics on malformed
// input and that accepted streams yield a usable store.
func FuzzReadStore(f *testing.F) {
	f.Add(`{"type":"header","version":1}`)
	f.Add("{\"type\":\"header\",\"version\":1}\n{\"type\":\"meta\",\"hash\":\"f1\"}")
	f.Add("{\"type\":\"header\",\"version\":1}\n{\"type\":\"event\",\"file\":\"f\",\"machine\":\"m\",\"process\":\"p\",\"url\":\"u\",\"time\":\"2014-01-02T00:00:00Z\",\"executed\":true}")
	f.Add("{\"type\":\"header\",\"version\":1}\n{\"type\":\"truth\",\"hash\":\"f\",\"label\":3}")
	f.Add("{\"type\":\"header\",\"version\":1}\n{\"type\":\"url\",\"domain\":\"d.com\",\"verdict\":1,\"rank\":5}")
	f.Add("")
	f.Add("{nope")
	f.Add(`{"type":"wat"}`)
	f.Fuzz(func(t *testing.T, raw string) {
		store, oracle, err := ReadStoreWithOracle(strings.NewReader(raw))
		if err != nil {
			return
		}
		if store == nil || oracle == nil {
			t.Fatal("nil store/oracle without error")
		}
		// The store must be internally consistent: every event validates.
		for _, e := range store.Events() {
			if verr := e.Validate(); verr != nil {
				t.Fatalf("accepted stream contains invalid event: %v", verr)
			}
		}
		store.Freeze()
	})
}

// FuzzUnmarshalEventLine hammers the single-event codec the serving
// layer's /classify endpoint and the write-ahead journal both parse on
// every request: it must never panic, and every line it accepts must
// round-trip to canonical bytes (marshal(unmarshal(line)) is a fixed
// point), because journal recovery and retransmit dedup compare
// re-marshaled records byte-for-byte.
func FuzzUnmarshalEventLine(f *testing.F) {
	// Seed with real generated traffic: the exact bytes a loadgen replay
	// or a journaled accept record carries.
	cfg := synth.DefaultConfig(7, 0.001)
	cfg.Months = 1
	res, err := synth.Generate(cfg)
	if err != nil {
		f.Fatal(err)
	}
	events := res.Store.Events()
	if len(events) == 0 {
		f.Fatal("synth generated no events")
	}
	for i := 0; i < len(events) && i < 32; i++ {
		line, err := MarshalEventLine(&events[i])
		if err != nil {
			f.Fatal(err)
		}
		f.Add(line)
	}
	// And with the malformed shapes recovery actually sees: torn JSON,
	// wrong discriminators, missing fields, absurd values.
	for _, s := range []string{
		"", "{", "null", "42", `"event"`, "[]",
		`{"type":"event"}`,
		`{"type":"meta","hash":"f1"}`,
		`{"type":"event","file":"f","machine":"m","process":"p","url":"u","time":"2014-01-02T00:00:00Z","executed":true}`,
		`{"type":"event","file":"f","machine":"m","process":"p","url":"u","time":"not-a-time"}`,
		`{"type":"event","file":"","machine":"","process":"","url":"","time":"0001-01-01T00:00:00Z"}`,
		`{"type":"event","file":"f","machine":"m","process":"p","url":"u","domain":"d.com","time":"2014-01-02T00:00:00Z","executed":true,"extra":1}`,
	} {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, line []byte) {
		ev, err := UnmarshalEventLine(line)
		if err != nil {
			return
		}
		// Accepted events must satisfy the store invariants outright...
		if verr := ev.Validate(); verr != nil {
			t.Fatalf("accepted event fails validation: %v", verr)
		}
		// ...and re-serialize to a canonical fixed point.
		m1, err := MarshalEventLine(&ev)
		if err != nil {
			t.Fatalf("accepted event does not re-marshal: %v", err)
		}
		ev2, err := UnmarshalEventLine(m1)
		if err != nil {
			t.Fatalf("canonical bytes rejected: %v", err)
		}
		m2, err := MarshalEventLine(&ev2)
		if err != nil {
			t.Fatalf("round-tripped event does not re-marshal: %v", err)
		}
		if !bytes.Equal(m1, m2) {
			t.Fatalf("canonical form unstable:\n  %s\n  %s", m1, m2)
		}
	})
}
