// Package export serializes datasets to a line-oriented JSON format and
// loads them back, so generated corpora can be stored, diffed and fed to
// external analysis tooling — and so real telemetry shaped like the
// paper's 5-tuples can be imported and run through the same pipeline.
//
// The stream is self-describing: each line is a JSON object with a
// "type" discriminator ("meta", "event", "truth", "url"), in any order,
// except that a single "header" line must come first.
package export

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/dataset"
	"repro/internal/reputation"
)

// FormatVersion identifies the stream layout.
const FormatVersion = 1

type header struct {
	Type    string `json:"type"`
	Version int    `json:"version"`
}

type metaLine struct {
	Type     string `json:"type"`
	Hash     string `json:"hash"`
	Size     int64  `json:"size,omitempty"`
	Path     string `json:"path,omitempty"`
	Signer   string `json:"signer,omitempty"`
	CA       string `json:"ca,omitempty"`
	Packer   string `json:"packer,omitempty"`
	Category int    `json:"category,omitempty"`
	Browser  int    `json:"browser,omitempty"`
}

type eventLine struct {
	Type     string    `json:"type"`
	File     string    `json:"file"`
	Machine  string    `json:"machine"`
	Process  string    `json:"process"`
	URL      string    `json:"url"`
	Domain   string    `json:"domain,omitempty"`
	Time     time.Time `json:"time"`
	Executed bool      `json:"executed"`
}

type truthLine struct {
	Type   string `json:"type"`
	Hash   string `json:"hash"`
	Label  int    `json:"label"`
	Class  string `json:"class"` // redundant human-readable label
	TypeID int    `json:"malwareType,omitempty"`
	Family string `json:"family,omitempty"`
}

type urlLine struct {
	Type    string `json:"type"`
	Domain  string `json:"domain"`
	Verdict int    `json:"verdict,omitempty"`
	// Rank is the domain's Alexa rank (0 = unranked), carried so an
	// imported dataset can rebuild the rank oracle the feature extractor
	// and Figure 3/6 analyses need.
	Rank int `json:"rank,omitempty"`
}

// MarshalEventLine renders a single DownloadEvent as one "event" record
// line (no trailing newline). This is the same bytes the full stream
// uses for its event records, so a dataset file produced by gendata and
// the body of a live request to the serving layer's /classify endpoint
// share one wire format.
func MarshalEventLine(e *dataset.DownloadEvent) ([]byte, error) {
	if e == nil {
		return nil, fmt.Errorf("export: nil event")
	}
	if err := e.Validate(); err != nil {
		return nil, err
	}
	return json.Marshal(eventLine{
		Type: "event", File: string(e.File), Machine: string(e.Machine),
		Process: string(e.Process), URL: e.URL, Domain: e.Domain,
		Time: e.Time, Executed: e.Executed,
	})
}

// UnmarshalEventLine parses one "event" record line back into a
// DownloadEvent, validating the record type and the event's structural
// invariants.
func UnmarshalEventLine(line []byte) (dataset.DownloadEvent, error) {
	var e eventLine
	if err := json.Unmarshal(line, &e); err != nil {
		return dataset.DownloadEvent{}, fmt.Errorf("export: event line: %w", err)
	}
	if e.Type != "event" {
		return dataset.DownloadEvent{}, fmt.Errorf("export: expected event record, got %q", e.Type)
	}
	ev := dataset.DownloadEvent{
		File: dataset.FileHash(e.File), Machine: dataset.MachineID(e.Machine),
		Process: dataset.FileHash(e.Process), URL: e.URL, Domain: e.Domain,
		Time: e.Time, Executed: e.Executed,
	}
	if err := ev.Validate(); err != nil {
		return dataset.DownloadEvent{}, err
	}
	return ev, nil
}

// WriteStore serializes the store (events, metadata, ground truth, URL
// verdicts) to w without rank information; use WriteStoreWithOracle to
// carry Alexa ranks as well.
func WriteStore(w io.Writer, store *dataset.Store) error {
	return WriteStoreWithOracle(w, store, nil)
}

// WriteStoreWithOracle serializes the store plus, when oracle is
// non-nil, the Alexa rank of every download domain.
func WriteStoreWithOracle(w io.Writer, store *dataset.Store, oracle *reputation.Oracle) error {
	if store == nil {
		return fmt.Errorf("export: nil store")
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(header{Type: "header", Version: FormatVersion}); err != nil {
		return err
	}
	// Sort files and (below) domains so identical stores serialize to
	// identical bytes — which is what lets fault-tolerance tests compare
	// a recovered run against a fault-free baseline with a byte diff.
	files := store.Files()
	sort.Slice(files, func(i, j int) bool { return files[i] < files[j] })
	for _, h := range files {
		m := store.File(h)
		if m == nil {
			continue
		}
		line := metaLine{
			Type: "meta", Hash: string(m.Hash), Size: m.Size, Path: m.Path,
			Signer: m.Signer, CA: m.CA, Packer: m.Packer,
			Category: int(m.Category), Browser: int(m.Browser),
		}
		if err := enc.Encode(line); err != nil {
			return err
		}
		gt := store.Truth(h)
		if gt.Label != dataset.LabelUnknown {
			if err := enc.Encode(truthLine{
				Type: "truth", Hash: string(h), Label: int(gt.Label),
				Class: gt.Label.String(), TypeID: int(gt.Type), Family: gt.Family,
			}); err != nil {
				return err
			}
		}
	}
	domains := map[string]struct{}{}
	for _, e := range store.Events() {
		if err := enc.Encode(eventLine{
			Type: "event", File: string(e.File), Machine: string(e.Machine),
			Process: string(e.Process), URL: e.URL, Domain: e.Domain,
			Time: e.Time, Executed: e.Executed,
		}); err != nil {
			return err
		}
		if e.Domain != "" {
			domains[e.Domain] = struct{}{}
		}
	}
	sorted := make([]string, 0, len(domains))
	for d := range domains {
		sorted = append(sorted, d)
	}
	sort.Strings(sorted)
	for _, d := range sorted {
		line := urlLine{Type: "url", Domain: d, Verdict: int(store.URLVerdict(d))}
		if oracle != nil {
			line.Rank = oracle.AlexaRank(d)
		}
		if line.Verdict == int(dataset.URLUnknown) && line.Rank == 0 {
			continue
		}
		if err := enc.Encode(line); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadStore parses a stream produced by WriteStore (or hand-authored in
// the same format) into a fresh, unfrozen store, discarding any rank
// information.
func ReadStore(r io.Reader) (*dataset.Store, error) {
	store, _, err := ReadStoreWithOracle(r)
	return store, err
}

// ReadStoreWithOracle parses a stream and additionally rebuilds a
// reputation oracle holding the Alexa ranks carried by "url" records
// (the list-based reputation sources are not serialized and come back
// empty).
func ReadStoreWithOracle(r io.Reader) (*dataset.Store, *reputation.Oracle, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<22)
	store := dataset.NewStore()
	ranks := make(map[string]int)
	lineNo := 0
	sawHeader := false
	for sc.Scan() {
		lineNo++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var probe struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(raw, &probe); err != nil {
			return nil, nil, fmt.Errorf("export: line %d: %w", lineNo, err)
		}
		if !sawHeader {
			if probe.Type != "header" {
				return nil, nil, fmt.Errorf("export: line %d: expected header, got %q", lineNo, probe.Type)
			}
			var h header
			if err := json.Unmarshal(raw, &h); err != nil {
				return nil, nil, fmt.Errorf("export: line %d: %w", lineNo, err)
			}
			if h.Version != FormatVersion {
				return nil, nil, fmt.Errorf("export: unsupported format version %d", h.Version)
			}
			sawHeader = true
			continue
		}
		switch probe.Type {
		case "meta":
			var m metaLine
			if err := json.Unmarshal(raw, &m); err != nil {
				return nil, nil, fmt.Errorf("export: line %d: %w", lineNo, err)
			}
			if err := store.PutFile(&dataset.FileMeta{
				Hash: dataset.FileHash(m.Hash), Size: m.Size, Path: m.Path,
				Signer: m.Signer, CA: m.CA, Packer: m.Packer,
				Category: dataset.ProcessCategory(m.Category),
				Browser:  dataset.Browser(m.Browser),
			}); err != nil {
				return nil, nil, fmt.Errorf("export: line %d: %w", lineNo, err)
			}
		case "event":
			var e eventLine
			if err := json.Unmarshal(raw, &e); err != nil {
				return nil, nil, fmt.Errorf("export: line %d: %w", lineNo, err)
			}
			if err := store.AddEvent(dataset.DownloadEvent{
				File: dataset.FileHash(e.File), Machine: dataset.MachineID(e.Machine),
				Process: dataset.FileHash(e.Process), URL: e.URL, Domain: e.Domain,
				Time: e.Time, Executed: e.Executed,
			}); err != nil {
				return nil, nil, fmt.Errorf("export: line %d: %w", lineNo, err)
			}
		case "truth":
			var t truthLine
			if err := json.Unmarshal(raw, &t); err != nil {
				return nil, nil, fmt.Errorf("export: line %d: %w", lineNo, err)
			}
			if err := store.SetTruth(dataset.FileHash(t.Hash), dataset.GroundTruth{
				Label:  dataset.Label(t.Label),
				Type:   dataset.MalwareType(t.TypeID),
				Family: t.Family,
			}); err != nil {
				return nil, nil, fmt.Errorf("export: line %d: %w", lineNo, err)
			}
		case "url":
			var u urlLine
			if err := json.Unmarshal(raw, &u); err != nil {
				return nil, nil, fmt.Errorf("export: line %d: %w", lineNo, err)
			}
			if u.Verdict != int(dataset.URLUnknown) {
				if err := store.SetURLVerdict(u.Domain, dataset.URLVerdict(u.Verdict)); err != nil {
					return nil, nil, fmt.Errorf("export: line %d: %w", lineNo, err)
				}
			}
			if u.Rank > 0 {
				ranks[u.Domain] = u.Rank
			}
		default:
			return nil, nil, fmt.Errorf("export: line %d: unknown record type %q", lineNo, probe.Type)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	if !sawHeader {
		return nil, nil, fmt.Errorf("export: empty stream")
	}
	alexa, err := reputation.NewAlexaList(ranks)
	if err != nil {
		return nil, nil, err
	}
	return store, reputation.NewOracle(alexa, nil, nil, nil, nil, nil), nil
}
