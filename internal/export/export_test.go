package export

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/reputation"
	"repro/internal/synth"
)

func buildSample(t *testing.T) *dataset.Store {
	t.Helper()
	store := dataset.NewStore()
	if err := store.PutFile(&dataset.FileMeta{
		Hash: "f1", Size: 1234, Path: "C:/x.exe", Signer: "ACME", CA: "ca1",
		Packer: "UPX",
	}); err != nil {
		t.Fatal(err)
	}
	if err := store.PutFile(&dataset.FileMeta{
		Hash: "p1", Category: dataset.CategoryBrowser, Browser: dataset.BrowserChrome,
	}); err != nil {
		t.Fatal(err)
	}
	if err := store.AddEvent(dataset.DownloadEvent{
		File: "f1", Machine: "m1", Process: "p1",
		URL: "http://d.com/x.exe", Domain: "d.com",
		Time: time.Date(2014, time.March, 3, 4, 5, 6, 0, time.UTC), Executed: true,
	}); err != nil {
		t.Fatal(err)
	}
	if err := store.SetTruth("f1", dataset.GroundTruth{
		Label: dataset.LabelMalicious, Type: dataset.TypeBanker, Family: "zbot",
	}); err != nil {
		t.Fatal(err)
	}
	if err := store.SetURLVerdict("d.com", dataset.URLMalicious); err != nil {
		t.Fatal(err)
	}
	return store
}

func TestRoundTrip(t *testing.T) {
	src := buildSample(t)
	var buf bytes.Buffer
	if err := WriteStore(&buf, src); err != nil {
		t.Fatal(err)
	}
	got, err := ReadStore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumEvents() != 1 {
		t.Fatalf("events = %d", got.NumEvents())
	}
	e := got.Events()[0]
	if e.File != "f1" || e.Machine != "m1" || e.Domain != "d.com" || !e.Executed {
		t.Errorf("event = %+v", e)
	}
	if !e.Time.Equal(time.Date(2014, time.March, 3, 4, 5, 6, 0, time.UTC)) {
		t.Errorf("time = %v", e.Time)
	}
	m := got.File("f1")
	if m == nil || m.Signer != "ACME" || m.Packer != "UPX" || m.Size != 1234 {
		t.Errorf("meta = %+v", m)
	}
	p := got.File("p1")
	if p == nil || p.Category != dataset.CategoryBrowser || p.Browser != dataset.BrowserChrome {
		t.Errorf("process meta = %+v", p)
	}
	gt := got.Truth("f1")
	if gt.Label != dataset.LabelMalicious || gt.Type != dataset.TypeBanker || gt.Family != "zbot" {
		t.Errorf("truth = %+v", gt)
	}
	if got.URLVerdict("d.com") != dataset.URLMalicious {
		t.Error("url verdict lost")
	}
}

func TestWriteStoreNil(t *testing.T) {
	if err := WriteStore(&bytes.Buffer{}, nil); err == nil {
		t.Error("nil store accepted")
	}
}

func TestReadStoreErrors(t *testing.T) {
	cases := map[string]string{
		"empty":          "",
		"no header":      `{"type":"event"}`,
		"bad json":       "{not json",
		"bad version":    `{"type":"header","version":99}`,
		"unknown record": "{\"type\":\"header\",\"version\":1}\n{\"type\":\"wat\"}",
		"invalid event":  "{\"type\":\"header\",\"version\":1}\n{\"type\":\"event\",\"file\":\"\"}",
	}
	for name, in := range cases {
		if _, err := ReadStore(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestRoundTripGenerated(t *testing.T) {
	res, err := synth.Generate(synth.DefaultConfig(5, 0.002))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteStore(&buf, res.Store); err != nil {
		t.Fatal(err)
	}
	got, err := ReadStore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumEvents() != res.Store.NumEvents() {
		t.Errorf("events %d != %d", got.NumEvents(), res.Store.NumEvents())
	}
	if len(got.Files()) != len(res.Store.Files()) {
		t.Errorf("files %d != %d", len(got.Files()), len(res.Store.Files()))
	}
	// Spot-check one event end to end after both stores are frozen.
	res.Store.Freeze()
	got.Freeze()
	a, b := res.Store.Events(), got.Events()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs after round trip", i)
		}
	}
}

// failingWriter errors after n bytes, exercising the write error paths.
type failingWriter struct {
	n       int
	written int
}

func (f *failingWriter) Write(p []byte) (int, error) {
	f.written += len(p)
	if f.written > f.n {
		return 0, errWriteFail
	}
	return len(p), nil
}

var errWriteFail = errors.New("synthetic write failure")

func TestWriteStoreWriterFailures(t *testing.T) {
	src := buildSample(t)
	// Fail at several truncation points so each encode site sees an
	// error at least once.
	for _, limit := range []int{0, 10, 40, 200, 400} {
		w := &failingWriter{n: limit}
		if err := WriteStore(w, src); err == nil {
			t.Errorf("limit %d: write failure not propagated", limit)
		}
	}
}

func TestWriteStoreWithOracleRanks(t *testing.T) {
	src := buildSample(t)
	alexa, err := reputation.NewAlexaList(map[string]int{"d.com": 77})
	if err != nil {
		t.Fatal(err)
	}
	oracle := reputation.NewOracle(alexa, nil, nil, nil, nil, nil)
	var buf bytes.Buffer
	if err := WriteStoreWithOracle(&buf, src, oracle); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"rank":77`) {
		t.Error("rank not serialized")
	}
	_, got, err := ReadStoreWithOracle(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.AlexaRank("d.com") != 77 {
		t.Errorf("rank after round trip = %d", got.AlexaRank("d.com"))
	}
}

func TestReadStoreBadRecords(t *testing.T) {
	header := `{"type":"header","version":1}` + "\n"
	cases := map[string]string{
		"meta missing hash": header + `{"type":"meta"}`,
		"truth empty hash":  header + `{"type":"truth","hash":"","label":1}`,
		"url empty domain":  header + `{"type":"url","domain":"","verdict":1}`,
		"malformed meta":    header + `{"type":"meta","size":"x"}`,
		"malformed event":   header + `{"type":"event","time":"nope"}`,
		"malformed truth":   header + `{"type":"truth","label":"x"}`,
		"malformed url":     header + `{"type":"url","verdict":"x"}`,
	}
	for name, in := range cases {
		if _, err := ReadStore(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestEventLineCodec covers the standalone event-line codec the serving
// layer's /classify endpoint ingests: round-trip fidelity, and — since
// a dataset file and a live request body must be the same bytes — the
// marshaled line must equal the event record WriteStore emits.
func TestEventLineCodec(t *testing.T) {
	ev := dataset.DownloadEvent{
		File: "f1", Machine: "m1", Process: "p1",
		URL: "http://d.com/x.exe", Domain: "d.com",
		Time: time.Date(2014, time.March, 3, 4, 5, 6, 0, time.UTC), Executed: true,
	}
	line, err := MarshalEventLine(&ev)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalEventLine(line)
	if err != nil {
		t.Fatal(err)
	}
	if back != ev {
		t.Fatalf("round trip changed the event: %+v vs %+v", back, ev)
	}

	// The store stream's event record and the standalone line are the
	// same wire format, byte for byte.
	store := buildSample(t)
	var buf bytes.Buffer
	if err := WriteStore(&buf, store); err != nil {
		t.Fatal(err)
	}
	var storeLine string
	for _, l := range strings.Split(buf.String(), "\n") {
		if strings.Contains(l, `"type":"event"`) {
			storeLine = l
			break
		}
	}
	if storeLine != string(line) {
		t.Fatalf("wire formats diverge:\n store: %s\n line:  %s", storeLine, line)
	}
}

// TestEventLineCodecErrors: invalid inputs fail loudly.
func TestEventLineCodecErrors(t *testing.T) {
	if _, err := MarshalEventLine(nil); err == nil {
		t.Fatal("nil event marshaled")
	}
	if _, err := MarshalEventLine(&dataset.DownloadEvent{File: "f"}); err == nil {
		t.Fatal("structurally invalid event marshaled")
	}
	if _, err := UnmarshalEventLine([]byte(`{"type":"meta","hash":"x"}`)); err == nil {
		t.Fatal("non-event record accepted")
	}
	if _, err := UnmarshalEventLine([]byte(`{`)); err == nil {
		t.Fatal("malformed JSON accepted")
	}
	if _, err := UnmarshalEventLine([]byte(`{"type":"event","file":"f"}`)); err == nil {
		t.Fatal("event missing required fields accepted")
	}
}
