package export

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"repro/internal/dataset"
)

// The fast line codec's contract is purely differential: AppendEventLine
// must produce MarshalEventLine's bytes and ParseEventLine must agree
// with UnmarshalEventLine — on every input, including the ones the fast
// path punts on.

func fuzzEventFrom(file, machine, process, url, domain string, sec int64, nsec int64, offMin int, executed bool) dataset.DownloadEvent {
	loc := time.UTC
	if offMin != 0 {
		loc = time.FixedZone("fz", offMin*60)
	}
	return dataset.DownloadEvent{
		File:    dataset.FileHash(file),
		Machine: dataset.MachineID(machine),
		Process: dataset.FileHash(process),
		URL:     url, Domain: domain,
		Time:     time.Unix(sec%4102444800, nsec%1e9).In(loc),
		Executed: executed,
	}
}

// FuzzEventLineCodec holds both fast functions equal to the
// encoding/json reference on arbitrary events.
func FuzzEventLineCodec(f *testing.F) {
	f.Add("aa01", "m-1", "bb02", "http://x.example/a", "x.example", int64(1609459200), int64(0), 0, true)
	f.Add("h\x80sh", "m\n1", "p\"q", "http://x/<>&", "дом.example", int64(1), int64(123456789), 330, false)
	f.Add("", "", "", "", "", int64(0), int64(0), 0, false)
	f.Add("a\u2028b", "m", "p", "u", "", int64(-62135596800), int64(1), -721, true)
	f.Fuzz(func(t *testing.T, file, machine, process, url, domain string, sec, nsec int64, offMin int, executed bool) {
		ev := fuzzEventFrom(file, machine, process, url, domain, sec, nsec, offMin%1440, executed)

		want, wantErr := MarshalEventLine(&ev)
		got, gotErr := AppendEventLine(nil, &ev)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("error mismatch: marshal=%v append=%v", wantErr, gotErr)
		}
		if wantErr != nil {
			return
		}
		if !bytes.Equal(want, got) {
			t.Fatalf("bytes differ:\n json: %q\n fast: %q", want, got)
		}
		// Appending must respect existing prefixes.
		pre, err := AppendEventLine([]byte("xx"), &ev)
		if err != nil || !bytes.Equal(pre, append([]byte("xx"), want...)) {
			t.Fatalf("prefixed append differs: %q (err %v)", pre, err)
		}

		back, backErr := ParseEventLine(string(want))
		refBack, refErr := UnmarshalEventLine(want)
		if (backErr == nil) != (refErr == nil) {
			t.Fatalf("parse error mismatch: fast=%v ref=%v", backErr, refErr)
		}
		if backErr == nil && !back.Time.Equal(refBack.Time) {
			t.Fatalf("times differ: fast=%v ref=%v", back.Time, refBack.Time)
		}
		if backErr == nil {
			back.Time, refBack.Time = time.Time{}, time.Time{}
			if back != refBack {
				t.Fatalf("events differ:\n fast: %+v\n ref:  %+v", back, refBack)
			}
		}
	})
}

// FuzzParseEventLineRaw feeds arbitrary bytes: whenever the fast parser
// and the reference both accept, they must agree; the fast parser may
// never accept something the reference rejects.
func FuzzParseEventLineRaw(f *testing.F) {
	seed, _ := MarshalEventLine(&dataset.DownloadEvent{
		File: "aa", Machine: "m", Process: "bb", URL: "u",
		Domain: "d.example", Time: time.Unix(1609459200, 500).UTC(), Executed: true,
	})
	f.Add(string(seed))
	f.Add(`{"type":"event","file":"a","machine":"m","process":"p","url":"u","time":"2021-01-01T00:00:00Z","executed":false}`)
	f.Add(`{"type":"event","file":"a","machine":"m","process":"p","url":"u","time":"2021-1-1T0:0:0Z","executed":false}`)
	f.Add(`{"executed":true,"type":"event"}`)
	f.Fuzz(func(t *testing.T, line string) {
		got, gotErr := ParseEventLine(line)
		want, wantErr := UnmarshalEventLine([]byte(line))
		if (gotErr == nil) != (wantErr == nil) {
			t.Fatalf("acceptance mismatch on %q: fast=%v ref=%v", line, gotErr, wantErr)
		}
		if gotErr != nil {
			return
		}
		if !got.Time.Equal(want.Time) {
			t.Fatalf("times differ on %q: fast=%v ref=%v", line, got.Time, want.Time)
		}
		got.Time, want.Time = time.Time{}, time.Time{}
		if got != want {
			t.Fatalf("events differ on %q:\n fast: %+v\n ref:  %+v", line, got, want)
		}
	})
}

// TestAppendJSONStringMatchesEncodingJSON pins the escaping table
// against json.Marshal for the full tricky-byte spectrum.
// FuzzJSONStringEncoders holds both hand-rolled string encoders equal
// to encoding/json on arbitrary bytes.
func FuzzJSONStringEncoders(f *testing.F) {
	f.Add([]byte("plain"))
	f.Add([]byte("q\"q\\\n\x01\x80é <&>"))
	f.Fuzz(func(t *testing.T, data []byte) {
		want, err := json.Marshal(string(data))
		if err != nil {
			t.Skip()
		}
		if got := AppendJSONString(nil, string(data)); !bytes.Equal(got, want) {
			t.Fatalf("AppendJSONString(%q) = %q, want %q", data, got, want)
		}
		if got := AppendJSONBytes(nil, data); !bytes.Equal(got, want) {
			t.Fatalf("AppendJSONBytes(%q) = %q, want %q", data, got, want)
		}
	})
}

func TestAppendJSONStringMatchesEncodingJSON(t *testing.T) {
	cases := []string{
		"", "plain", `q"q`, `b\b`, "nl\n", "cr\r", "tab\t", "bs\b", "ff\f",
		"ctl\x01\x1f", "html<>&", "utf8 héllo дом 漢", "bad\x80utf8", "\xff\xfe",
		"sep\u2028and\u2029", "mix<\n\x02é\x80\u2029>",
	}
	for _, s := range cases {
		want, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		if got := AppendJSONString(nil, s); !bytes.Equal(got, want) {
			t.Errorf("AppendJSONString(%q) = %q, want %q", s, got, want)
		}
		if got := AppendJSONBytes(nil, []byte(s)); !bytes.Equal(got, want) {
			t.Errorf("AppendJSONBytes(%q) = %q, want %q", s, got, want)
		}
	}
}
