// Package synth generates the synthetic in-the-wild download telemetry
// that substitutes for the paper's proprietary Trend Micro dataset. It
// builds a generative world — signers, certification authorities,
// packers, download domains with Alexa ranks, malware families,
// machines, and downloading processes — and then simulates seven months
// of download events (January–August 2014) whose distributions are
// calibrated to the statistics the paper reports: monthly volumes and
// label mixes (Table I), long-tail file prevalence (Figure 2), per-type
// signing rates (Table VI), per-process-category download mixes
// (Tables X–XII), domain hosting mixes (Tables III–V, XIII) and
// infection-transition dynamics (Figure 5).
package synth

import (
	"fmt"
	"time"

	"repro/internal/dataset"
)

// Config controls dataset generation. The zero value is not valid; use
// DefaultConfig and modify.
type Config struct {
	// Seed drives all randomness; identical configs generate identical
	// datasets.
	Seed int64
	// Scale multiplies the paper's volumes (events, machines, files).
	// 1.0 reproduces the full 3M-event corpus; the default 0.01 yields
	// ~30k events, which preserves every distributional shape.
	Scale float64
	// Sigma is the collection server's prevalence reporting cap
	// (Section II-A); the paper's deployment used 20.
	Sigma int
	// Start is the first day of the observation window.
	Start time.Time
	// Months is the number of observed months (the paper spans 7).
	Months int
	// NoiseNonExecuted is the fraction of extra raw agent events whose
	// file is never executed (suppressed by the agent rules).
	NoiseNonExecuted float64
	// NoiseWhitelistedURL is the fraction of extra raw events downloading
	// from agent-whitelisted vendor domains (suppressed).
	NoiseWhitelistedURL float64
	// KeepRawTrace retains the chronologically sorted pre-collection
	// event stream in Result.RawTrace, so fault-tolerance harnesses can
	// replay it through an alternative (e.g. faulty) transport.
	KeepRawTrace bool
	// Tuning overrides the generative world's behavioural constants;
	// zero values keep the calibrated defaults.
	Tuning Tuning
}

// Tuning exposes the generator's behavioural constants for ablation
// studies and sensitivity analysis. Zero values select the defaults the
// paper calibration uses.
type Tuning struct {
	// LatentMaliciousShare is the fraction of unknown files whose latent
	// nature is malicious (default 0.55).
	LatentMaliciousShare float64
	// RiskyShare is the fraction of machines with risky download
	// behaviour (default 0.25).
	RiskyShare float64
	// ReuseProbability is the chance an event re-downloads a pending
	// file instead of minting a new one (default 0.62).
	ReuseProbability float64
	// CoInstallScale multiplies the bundle co-install probabilities
	// (default 1; 0.0001 effectively disables them — use DisableCoInstall
	// for exactly zero).
	CoInstallScale float64
	// DisableCoInstall turns bundle co-installs off entirely.
	DisableCoInstall bool
	// FollowupScale multiplies the malicious-process follow-up download
	// rates (default 1).
	FollowupScale float64
}

// latentMaliciousShareOrDefault resolves the tuning override.
func (t Tuning) latentMaliciousShareOrDefault() float64 {
	if t.LatentMaliciousShare > 0 {
		return t.LatentMaliciousShare
	}
	return latentMaliciousShare
}

func (t Tuning) riskyShareOrDefault() float64 {
	if t.RiskyShare > 0 {
		return t.RiskyShare
	}
	return riskyShare
}

func (t Tuning) reuseProbabilityOrDefault() float64 {
	if t.ReuseProbability > 0 {
		return t.ReuseProbability
	}
	return reuseProbability
}

func (t Tuning) coInstallScaleOrDefault() float64 {
	if t.DisableCoInstall {
		return 0
	}
	if t.CoInstallScale > 0 {
		return t.CoInstallScale
	}
	return 1
}

func (t Tuning) followupScaleOrDefault() float64 {
	if t.FollowupScale > 0 {
		return t.FollowupScale
	}
	return 1
}

// DefaultConfig returns the standard configuration at the given scale.
func DefaultConfig(seed int64, scale float64) Config {
	return Config{
		Seed:                seed,
		Scale:               scale,
		Sigma:               20,
		Start:               time.Date(2014, time.January, 1, 0, 0, 0, 0, time.UTC),
		Months:              7,
		NoiseNonExecuted:    0.04,
		NoiseWhitelistedURL: 0.03,
	}
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	switch {
	case c.Scale <= 0 || c.Scale > 1.5:
		return fmt.Errorf("synth: scale %v out of (0, 1.5]", c.Scale)
	case c.Sigma < 1:
		return fmt.Errorf("synth: sigma %d must be >= 1", c.Sigma)
	case c.Start.IsZero():
		return fmt.Errorf("synth: start time is zero")
	case c.Months < 1 || c.Months > 12:
		return fmt.Errorf("synth: months %d out of [1, 12]", c.Months)
	case c.NoiseNonExecuted < 0 || c.NoiseNonExecuted > 0.5:
		return fmt.Errorf("synth: non-executed noise %v out of [0, 0.5]", c.NoiseNonExecuted)
	case c.NoiseWhitelistedURL < 0 || c.NoiseWhitelistedURL > 0.5:
		return fmt.Errorf("synth: whitelisted-URL noise %v out of [0, 0.5]", c.NoiseWhitelistedURL)
	}
	return nil
}

// monthVolume is one row of the paper's Table I.
type monthVolume struct {
	Machines int
	Events   int
}

// paperMonths reproduces Table I's monthly machine and event counts
// (January through July 2014; the trailing days spill into August as in
// the paper's "seven months ... January 2014 to August 2014").
var paperMonths = []monthVolume{
	{Machines: 292_516, Events: 578_510},
	{Machines: 246_481, Events: 470_291},
	{Machines: 248_568, Events: 493_487},
	{Machines: 215_693, Events: 427_110},
	{Machines: 180_947, Events: 351_271},
	{Machines: 176_463, Events: 351_509},
	{Machines: 157_457, Events: 323_159},
}

// paperTotalMachines is the distinct machine population of the study.
const paperTotalMachines = 1_139_183

// monthlyMalDrift scales the malicious share per observation month,
// following Table I's drift in malicious file percentages (7.9% in
// January rising to 14.0% in June, normalized around the 9.9% overall).
var monthlyMalDrift = []float64{0.80, 0.90, 0.97, 1.27, 1.26, 1.41, 1.27}

// classPlan is the planned ground-truth outcome for a generated file.
type classPlan int

const (
	planUnknown classPlan = iota
	planBenign
	planLikelyBenign
	planMalicious
	planLikelyMalicious
)

// categoryMix is the file-class mix of downloads initiated by one
// process population, derived from Tables X-XII file counts.
type categoryMix struct {
	Unknown   float64
	Benign    float64
	Malicious float64
	// TypeWeights is the behaviour-type mix of the malicious share,
	// ordered as typeWeightOrder.
	TypeWeights []float64
}

// typeWeightOrder fixes the type order used by all TypeWeights vectors.
var typeWeightOrder = []dataset.MalwareType{
	dataset.TypeDropper, dataset.TypePUP, dataset.TypeTrojan,
	dataset.TypeAdware, dataset.TypeFakeAV, dataset.TypeRansomware,
	dataset.TypeBanker, dataset.TypeBot, dataset.TypeWorm,
	dataset.TypeSpyware, dataset.TypeUndefined,
}

// Mixes for benign process categories (Table X) and for the per-browser
// split (Table XI). Type weights follow typeWeightOrder:
// dropper, pup, trojan, adware, fakeav, ransomware, banker, bot, worm,
// spyware, undefined.
var (
	mixBrowser = categoryMix{
		Unknown: 0.888, Benign: 0.022, Malicious: 0.090,
		TypeWeights: []float64{28.05, 18.55, 10.48, 7.36, 0.35, 0.27, 0.23, 0.22, 0.05, 0.03, 34.43},
	}
	mixWindows = categoryMix{
		Unknown: 0.801, Benign: 0.050, Malicious: 0.149,
		TypeWeights: []float64{25.42, 17.75, 11.75, 5.80, 0.11, 0.37, 1.23, 0.73, 0.08, 0.06, 36.70},
	}
	mixJava = categoryMix{
		Unknown: 0.307, Benign: 0.034, Malicious: 0.659,
		TypeWeights: []float64{12.30, 1.02, 45.29, 0, 0, 4.30, 6.97, 15.78, 0.82, 0, 12.54},
	}
	mixAcrobat = categoryMix{
		Unknown: 0.275, Benign: 0.0, Malicious: 0.725,
		TypeWeights: []float64{23.71, 0, 39.51, 0, 1.44, 3.74, 15.80, 8.19, 0.29, 0.43, 6.89},
	}
	mixOtherBenign = categoryMix{
		Unknown: 0.764, Benign: 0.063, Malicious: 0.173,
		TypeWeights: []float64{17.22, 22.57, 11.34, 8.38, 5.03, 0.44, 1.20, 0.79, 0.30, 0.02, 32.71},
	}
	// mixUnknownProc drives downloads by processes with no ground truth;
	// these fill out the 74% of process hashes that stay unknown.
	mixUnknownProc = categoryMix{
		Unknown: 0.85, Benign: 0.02, Malicious: 0.13,
		TypeWeights: []float64{25, 18, 11, 7, 0.4, 0.3, 0.3, 0.3, 0.1, 0.05, 37},
	}
)

// browserClassMix tunes per-browser benign/malicious shares so infection
// rates reproduce Table XI's ordering (Chrome highest, IE lowest).
var browserClassMix = map[dataset.Browser]struct{ Benign, Malicious float64 }{
	dataset.BrowserFirefox: {Benign: 0.0557, Malicious: 0.161},
	dataset.BrowserChrome:  {Benign: 0.0319, Malicious: 0.134},
	dataset.BrowserOpera:   {Benign: 0.0780, Malicious: 0.229},
	dataset.BrowserSafari:  {Benign: 0.0375, Malicious: 0.135},
	dataset.BrowserIE:      {Benign: 0.0221, Malicious: 0.077},
}

// browserEventWeights apportions browser download events across products
// (proportional to Table XI file counts).
var browserEventWeights = map[dataset.Browser]float64{
	dataset.BrowserFirefox: 133_091,
	dataset.BrowserChrome:  551_643,
	dataset.BrowserOpera:   6_850,
	dataset.BrowserSafari:  3_118,
	dataset.BrowserIE:      623_776,
}

// Mixes for malicious process types (Table XII rows): what a process of
// each behaviour type downloads.
var malProcMixes = map[dataset.MalwareType]categoryMix{
	dataset.TypeTrojan: {
		Unknown: 0.230, Benign: 0.013, Malicious: 0.757,
		TypeWeights: []float64{10.94, 8.25, 51.90, 11.80, 0.12, 0.34, 4.25, 0.89, 0.10, 0, 11.42},
	},
	dataset.TypeDropper: {
		Unknown: 0.324, Benign: 0.055, Malicious: 0.620,
		TypeWeights: []float64{39.10, 10.26, 16.78, 8.46, 0.20, 0.47, 7.59, 1.34, 0.30, 0.07, 15.44},
	},
	dataset.TypeRansomware: {
		Unknown: 0.045, Benign: 0.0, Malicious: 0.955,
		TypeWeights: []float64{3.40, 0, 9.52, 0, 0, 80.95, 1.36, 0, 0, 0, 4.76},
	},
	dataset.TypeBot: {
		Unknown: 0.170, Benign: 0.004, Malicious: 0.826,
		TypeWeights: []float64{4.57, 2.54, 15.99, 0.25, 0.25, 1.27, 4.31, 64.72, 0.51, 0, 5.58},
	},
	dataset.TypeWorm: {
		Unknown: 0.055, Benign: 0.0, Malicious: 0.945,
		TypeWeights: []float64{4.35, 1.45, 4.35, 0, 0, 0, 8.70, 1.45, 72.46, 0, 7.25},
	},
	dataset.TypeSpyware: {
		Unknown: 0.222, Benign: 0.111, Malicious: 0.667,
		TypeWeights: []float64{0, 0, 16.67, 0, 0, 0, 0, 0, 0, 66.67, 16.67},
	},
	dataset.TypeBanker: {
		Unknown: 0.081, Benign: 0.009, Malicious: 0.910,
		TypeWeights: []float64{4.00, 0, 14.48, 0.19, 0.38, 0.19, 76.00, 0.19, 0.57, 0, 4.00},
	},
	dataset.TypeFakeAV: {
		Unknown: 0.019, Benign: 0.0, Malicious: 0.981,
		TypeWeights: []float64{7.55, 0, 22.64, 0, 56.60, 0, 9.43, 0, 0, 0, 3.77},
	},
	dataset.TypeAdware: {
		Unknown: 0.322, Benign: 0.011, Malicious: 0.667,
		TypeWeights: []float64{2.91, 9.97, 6.65, 66.24, 0, 0, 0.13, 0.03, 0, 0, 14.07},
	},
	dataset.TypePUP: {
		Unknown: 0.283, Benign: 0.008, Malicious: 0.709,
		TypeWeights: []float64{4.57, 22.91, 6.30, 58.64, 0.01, 0.02, 0.01, 0.01, 0, 0, 7.54},
	},
	dataset.TypeUndefined: {
		Unknown: 0.420, Benign: 0.033, Malicious: 0.547,
		TypeWeights: []float64{3.77, 5.53, 3.36, 6.52, 0.01, 0.04, 0.36, 0.22, 0.06, 0.04, 80.09},
	},
}

// signingRates gives per-class/type signing probabilities (Table VI):
// the probability a file downloaded via a browser is signed, and the
// probability for files arriving via other processes. The browser column
// comes straight from the table; the other column back-solves the
// overall rate assuming roughly 60-70% of downloads are browser-borne.
type signingRate struct {
	Browser float64
	Other   float64
}

var signingRates = map[dataset.MalwareType]signingRate{
	dataset.TypeTrojan:     {Browser: 0.72, Other: 0.55},
	dataset.TypeDropper:    {Browser: 0.92, Other: 0.71},
	dataset.TypeRansomware: {Browser: 0.687, Other: 0.14},
	dataset.TypeBot:        {Browser: 0.022, Other: 0.013},
	dataset.TypeWorm:       {Browser: 0.123, Other: 0.028},
	dataset.TypeSpyware:    {Browser: 0.25, Other: 0.175},
	dataset.TypeBanker:     {Browser: 0.018, Other: 0.011},
	dataset.TypeFakeAV:     {Browser: 0.045, Other: 0.014},
	dataset.TypeAdware:     {Browser: 0.918, Other: 0.86},
	dataset.TypePUP:        {Browser: 0.796, Other: 0.68},
	dataset.TypeUndefined:  {Browser: 0.713, Other: 0.51},
}

var (
	signingRateBenign  = signingRate{Browser: 0.321, Other: 0.275}
	signingRateUnknown = signingRate{Browser: 0.421, Other: 0.29}
)

// packedRates per class (Section IV-C: benign 54%, malicious 58%).
const (
	packedRateBenign    = 0.54
	packedRateMalicious = 0.58
	packedRateUnknown   = 0.55
)
