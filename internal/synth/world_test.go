package synth

import (
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/etld"
	"repro/internal/stats"
)

func testWorld(t *testing.T) *World {
	t.Helper()
	w, err := NewWorld(smallConfig(77))
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestSignerForMaliciousStaysInPools(t *testing.T) {
	w := testWorld(t)
	inPool := func(s signerInfo, pool []signerInfo) bool {
		for _, p := range pool {
			if p.Name == s.Name {
				return true
			}
		}
		return false
	}
	rng := stats.NewRNG(1)
	for i := 0; i < 300; i++ {
		si := w.signerForMalicious(dataset.TypeDropper, rng)
		if si.Name == "" || si.CA == "" {
			t.Fatal("malicious signer missing name or CA")
		}
		if !inPool(si, w.malSigners) && !inPool(si, w.commonSigners) {
			t.Fatalf("dropper signer %q outside malicious/common pools", si.Name)
		}
	}
	for i := 0; i < 300; i++ {
		si := w.signerForBenign(rng)
		if !inPool(si, w.benignSigners) && !inPool(si, w.commonSigners) {
			t.Fatalf("benign signer %q outside benign/common pools", si.Name)
		}
	}
}

func TestSignerSubsetsDifferByType(t *testing.T) {
	w := testWorld(t)
	rng := stats.NewRNG(2)
	distinct := func(typ dataset.MalwareType) int {
		seen := map[string]struct{}{}
		for i := 0; i < 500; i++ {
			seen[w.signerForMalicious(typ, rng).Name] = struct{}{}
		}
		return len(seen)
	}
	// PUP/adware rosters must be much larger than banker/bot rosters
	// (Table VII shape).
	if distinct(dataset.TypePUP) <= distinct(dataset.TypeBanker) {
		t.Errorf("pup signer roster (%d) should exceed banker roster (%d)",
			distinct(dataset.TypePUP), distinct(dataset.TypeBanker))
	}
}

func TestPackerForPools(t *testing.T) {
	w := testWorld(t)
	rng := stats.NewRNG(3)
	inList := func(p string, list []string) bool {
		for _, x := range list {
			if x == p {
				return true
			}
		}
		return false
	}
	for i := 0; i < 200; i++ {
		p := w.packerFor(true, rng)
		if !inList(p, w.packersMal) && !inList(p, w.packersCommon) {
			t.Fatalf("malicious packer %q outside pools", p)
		}
		p = w.packerFor(false, rng)
		if !inList(p, w.packersBenign) && !inList(p, w.packersCommon) {
			t.Fatalf("benign packer %q outside pools", p)
		}
	}
}

func TestFamilyForRespectsType(t *testing.T) {
	w := testWorld(t)
	rng := stats.NewRNG(4)
	for i := 0; i < 100; i++ {
		fam := w.familyFor(dataset.TypeBanker, rng)
		found := false
		for _, f := range w.families[dataset.TypeBanker] {
			if f == fam {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("banker family %q not in banker roster", fam)
		}
	}
	if got := w.familyFor(dataset.TypeUndefined, rng); got != "" {
		t.Errorf("undefined type family = %q, want empty", got)
	}
}

func TestStableIndexDeterministic(t *testing.T) {
	for i := 0; i < 50; i++ {
		if stableIndex("hello", 100) != stableIndex("hello", 100) {
			t.Fatal("stableIndex nondeterministic")
		}
	}
	if got := stableIndex("x", 1); got != 0 {
		t.Errorf("stableIndex mod 1 = %d", got)
	}
	if got := stableIndex("x", 0); got != 0 {
		t.Errorf("stableIndex mod 0 = %d", got)
	}
}

func TestDomainCatalogShape(t *testing.T) {
	w := testWorld(t)
	c := w.domains
	for _, kind := range []domainKind{
		kindHosting, kindVendor, kindAdwareDist, kindStreaming,
		kindFakeAV, kindC2, kindGeneric, kindAgentWL,
	} {
		pool := c.byKind[kind]
		if len(pool) == 0 {
			t.Errorf("kind %d has no domains", kind)
			continue
		}
		for _, d := range pool {
			if d.Name == "" {
				t.Fatalf("kind %d has unnamed domain", kind)
			}
			// Every generated domain must be a valid e2LD holder.
			if _, err := etld.FromURL("http://" + d.Name + "/x"); err != nil {
				t.Fatalf("domain %q not parseable: %v", d.Name, err)
			}
		}
	}
	// Hosting domains are all ranked and popular.
	for _, d := range c.byKind[kindHosting] {
		if d.Rank == 0 || d.Rank > 8_000 {
			t.Errorf("hosting domain %q rank %d outside popular band", d.Name, d.Rank)
		}
	}
	// FakeAV/C2 feeds populate the blacklist and Safe Browsing feeds.
	bl := strings.Join(c.urlBL, ",")
	if !strings.Contains(bl, "stopadware2014") {
		t.Error("fakeav seed domain missing from blacklist")
	}
	if len(c.gsb) == 0 || len(c.agentWL) == 0 {
		t.Error("reputation feeds empty")
	}
}

func TestDomainPickHonorsKindMix(t *testing.T) {
	w := testWorld(t)
	counts := map[domainKind]int{}
	for i := 0; i < 500; i++ {
		d := w.domains.pick(malDomainKindsByType[dataset.TypeFakeAV])
		counts[d.Kind]++
	}
	if counts[kindFakeAV] < 300 {
		t.Errorf("fakeav mix picked fakeav domains only %d/500 times", counts[kindFakeAV])
	}
	if counts[kindVendor] > 0 {
		t.Error("fakeav mix picked vendor domains")
	}
}

func TestProcessCatalogShape(t *testing.T) {
	w := testWorld(t)
	c := w.processes
	for _, br := range dataset.AllBrowsers {
		if len(c.browsers[br]) == 0 {
			t.Errorf("browser %v has no versions", br)
		}
		for _, p := range c.browsers[br] {
			if p.Category != dataset.CategoryBrowser || p.Browser != br {
				t.Errorf("browser process misclassified: %+v", p)
			}
			if p.Signer == "" {
				t.Error("browser process unsigned")
			}
		}
	}
	for _, p := range c.windows {
		if p.Signer != "Microsoft Windows" {
			t.Errorf("windows process signer = %q", p.Signer)
		}
	}
	if len(c.unknownProc) == 0 || len(c.otherBenign) == 0 {
		t.Error("process pools empty")
	}
	// knownBenign excludes the unknown pool.
	for _, p := range c.knownBenign() {
		if strings.HasPrefix(string(p.Hash), "proc-unk-") {
			t.Errorf("unknown process %s in knownBenign", p.Hash)
		}
	}
}

func TestVersionForStable(t *testing.T) {
	w := testWorld(t)
	pool := w.processes.windows
	m := dataset.MachineID("machine-x")
	first := versionFor(m, "windows", pool)
	for i := 0; i < 20; i++ {
		if versionFor(m, "windows", pool) != first {
			t.Fatal("versionFor not stable per machine")
		}
	}
	// Different machines spread across versions.
	seen := map[dataset.FileHash]struct{}{}
	for i := 0; i < 200; i++ {
		mi := dataset.MachineID(strings.Repeat("m", i%20+1))
		seen[versionFor(mi, "windows", pool).Hash] = struct{}{}
	}
	if len(seen) < 2 {
		t.Error("versionFor maps all machines to one version")
	}
}

func TestCoInstallSchedulingBounded(t *testing.T) {
	// Co-installs and follow-ups must never emit events past the window
	// end; covered indirectly by TestGenerateEventsWellFormed, asserted
	// here against a generator directly for the co-install path.
	res, err := Generate(smallConfig(13))
	if err != nil {
		t.Fatal(err)
	}
	end := res.Config.Start.AddDate(0, res.Config.Months, 0)
	for _, e := range res.Store.Events() {
		if !e.Time.Before(end) {
			t.Fatalf("event at %v outside window", e.Time)
		}
	}
}
