package synth

import (
	"fmt"
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/stats"
)

// processCatalog holds the downloading-process populations: per-browser
// version pools, Windows system processes, Java and Acrobat Reader
// instances, other known-benign applications, and the large pool of
// processes with no ground truth.
type processCatalog struct {
	browsers    map[dataset.Browser][]*dataset.FileMeta
	windows     []*dataset.FileMeta
	java        []*dataset.FileMeta
	acrobat     []*dataset.FileMeta
	otherBenign []*dataset.FileMeta
	unknownProc []*dataset.FileMeta

	browserPicker *stats.Categorical
	browserOrder  []dataset.Browser
}

// browserMeta describes a browser product's executable and signer.
var browserMeta = map[dataset.Browser]struct {
	Exe    string
	Signer string
	// PaperVersions is the per-product process-hash count from Table XI.
	PaperVersions int
}{
	dataset.BrowserFirefox: {Exe: "firefox.exe", Signer: "Mozilla Corporation", PaperVersions: 378},
	dataset.BrowserChrome:  {Exe: "chrome.exe", Signer: "Google Inc", PaperVersions: 528},
	dataset.BrowserOpera:   {Exe: "opera.exe", Signer: "Opera Software ASA", PaperVersions: 91},
	dataset.BrowserSafari:  {Exe: "safari.exe", Signer: "Apple Inc.", PaperVersions: 17},
	dataset.BrowserIE:      {Exe: "iexplore.exe", Signer: "Microsoft Corporation", PaperVersions: 307},
}

var windowsExeNames = []string{
	"svchost.exe", "rundll32.exe", "explorer.exe", "wuauclt.exe",
	"mshta.exe", "wscript.exe", "cscript.exe", "regsvr32.exe",
	"dllhost.exe", "taskhost.exe", "winlogon.exe", "services.exe",
	"msiexec.exe", "spoolsv.exe", "lsass.exe", "conhost.exe",
}

var otherBenignExeNames = []string{
	"utorrent.exe", "bittorrent.exe", "dropbox.exe", "skype.exe",
	"steam.exe", "spotify.exe", "vlc.exe", "winamp.exe", "foobar.exe",
	"teamviewer.exe", "curseclient.exe", "origin.exe", "gog.exe",
	"emule.exe", "filezilla.exe",
}

func newProcessCatalog(rng *rand.Rand, scale float64, w *World) (*processCatalog, error) {
	c := &processCatalog{browsers: make(map[dataset.Browser][]*dataset.FileMeta)}
	scaled := func(paper, min int) int {
		n := int(float64(paper) * scale)
		if n < min {
			n = min
		}
		return n
	}
	mkProc := func(id, exe, signer, ca string, cat dataset.ProcessCategory, br dataset.Browser, packer string) *dataset.FileMeta {
		return &dataset.FileMeta{
			Hash:     dataset.FileHash("proc-" + id),
			Size:     stats.LogNormalInt(rng, 14.5, 1.0, 50_000, 200_000_000),
			Path:     "C:/Program Files/" + exe,
			Signer:   signer,
			CA:       ca,
			Packer:   packer,
			Category: cat,
			Browser:  br,
		}
	}
	// Browser version pools (Table XI process counts).
	for _, br := range dataset.AllBrowsers {
		meta := browserMeta[br]
		n := scaled(meta.PaperVersions, 3)
		for i := 0; i < n; i++ {
			id := fmt.Sprintf("%s-%04d", br.String(), i)
			c.browsers[br] = append(c.browsers[br],
				mkProc(id, meta.Exe, meta.Signer, benignCAs[stableIndex(meta.Signer, len(benignCAs))], dataset.CategoryBrowser, br, ""))
		}
	}
	// Windows system processes (Table X: 587 versions). Their signer is
	// "Microsoft Windows", which the paper's learned rules reference.
	for i, n := 0, scaled(587, 6); i < n; i++ {
		exe := windowsExeNames[i%len(windowsExeNames)]
		c.windows = append(c.windows,
			mkProc(fmt.Sprintf("win-%04d", i), exe, "Microsoft Windows", benignCAs[0], dataset.CategoryWindows, dataset.BrowserNone, ""))
	}
	for i, n := 0, scaled(173, 3); i < n; i++ {
		exe := []string{"java.exe", "javaw.exe", "javaws.exe"}[i%3]
		c.java = append(c.java,
			mkProc(fmt.Sprintf("java-%04d", i), exe, "Oracle America", benignCAs[1], dataset.CategoryJava, dataset.BrowserNone, ""))
	}
	for i, n := 0, scaled(9, 2); i < n; i++ {
		c.acrobat = append(c.acrobat,
			mkProc(fmt.Sprintf("acro-%02d", i), "acrord32.exe", "Adobe Systems Incorporated", benignCAs[1], dataset.CategoryAcrobat, dataset.BrowserNone, ""))
	}
	// Other known-benign applications (Table X: 8,714 versions).
	for i, n := 0, scaled(8_714, 12); i < n; i++ {
		exe := otherBenignExeNames[i%len(otherBenignExeNames)]
		signer := ""
		ca := ""
		if stats.Bernoulli(rng, 0.7) {
			si := w.signerForBenign(rng)
			signer, ca = si.Name, si.CA
		}
		packer := ""
		if stats.Bernoulli(rng, 0.3) {
			packer = w.packerFor(false, rng)
		}
		c.otherBenign = append(c.otherBenign,
			mkProc(fmt.Sprintf("other-%05d", i), exe, signer, ca, dataset.CategoryOther, dataset.BrowserNone, packer))
	}
	// Unknown processes: ~74% of the 141,229 process hashes have no
	// ground truth.
	for i, n := 0, scaled(104_000, 25); i < n; i++ {
		exe := fmt.Sprintf("app%04d.exe", i)
		signer := ""
		ca := ""
		if stats.Bernoulli(rng, 0.35) {
			si := w.commonSigners[stableIndex(exe, len(w.commonSigners))]
			signer, ca = si.Name, si.CA
		}
		packer := ""
		if stats.Bernoulli(rng, 0.5) {
			packer = w.packerFor(stats.Bernoulli(rng, 0.5), rng)
		}
		c.unknownProc = append(c.unknownProc,
			mkProc(fmt.Sprintf("unk-%05d", i), exe, signer, ca, dataset.CategoryOther, dataset.BrowserNone, packer))
	}
	// Browser product picker (event-volume weights from Table XI).
	weights := make([]float64, 0, len(dataset.AllBrowsers))
	for _, br := range dataset.AllBrowsers {
		weights = append(weights, browserEventWeights[br])
		c.browserOrder = append(c.browserOrder, br)
	}
	picker, err := stats.NewCategorical(rng, weights)
	if err != nil {
		return nil, err
	}
	c.browserPicker = picker
	return c, nil
}

// all returns every benign process plus the unknown pool, for metadata
// registration and whitelisting.
func (c *processCatalog) all() []*dataset.FileMeta {
	var out []*dataset.FileMeta
	for _, br := range dataset.AllBrowsers {
		out = append(out, c.browsers[br]...)
	}
	out = append(out, c.windows...)
	out = append(out, c.java...)
	out = append(out, c.acrobat...)
	out = append(out, c.otherBenign...)
	out = append(out, c.unknownProc...)
	return out
}

// knownBenign returns the processes whose hashes go onto the file
// whitelist (the "known benign processes" of Section V-A).
func (c *processCatalog) knownBenign() []*dataset.FileMeta {
	var out []*dataset.FileMeta
	for _, br := range dataset.AllBrowsers {
		out = append(out, c.browsers[br]...)
	}
	out = append(out, c.windows...)
	out = append(out, c.java...)
	out = append(out, c.acrobat...)
	out = append(out, c.otherBenign...)
	return out
}

// pickBrowser selects a browser product for an event.
func (c *processCatalog) pickBrowser() dataset.Browser {
	return c.browserOrder[c.browserPicker.Draw()]
}

// versionFor returns the stable process version a machine uses for the
// given pool: real machines run one installed copy, so the same machine
// always reports the same process hash for a product.
func versionFor(machine dataset.MachineID, poolTag string, pool []*dataset.FileMeta) *dataset.FileMeta {
	return pool[stableIndex(string(machine)+"|"+poolTag, len(pool))]
}
