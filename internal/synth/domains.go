package synth

import (
	"fmt"
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/reputation"
	"repro/internal/stats"
)

// domainKind classifies download domains by their hosting behaviour.
type domainKind int

const (
	// kindHosting: large file-hosting services serving benign, malicious
	// and unknown files alike (softonic.com, mediafire.com, ...), the
	// mixed-reputation phenomenon of Section IV-B.
	kindHosting domainKind = iota + 1
	// kindVendor: legitimate software vendor/download sites.
	kindVendor
	// kindAdwareDist: adware/PUP distribution portals, popular and
	// well-ranked yet serving mostly grayware and unknowns.
	kindAdwareDist
	// kindStreaming: free live-streaming sites spreading adware
	// (Section IV-B's media-watch-app.com et al.).
	kindStreaming
	// kindFakeAV: social-engineering fake-antivirus domains.
	kindFakeAV
	// kindC2: low-profile malware distribution endpoints used by bots,
	// bankers and worms.
	kindC2
	// kindGeneric: long tail of miscellaneous sites.
	kindGeneric
	// kindAgentWL: major-vendor domains whitelisted at the agent; their
	// downloads never reach the collection server.
	kindAgentWL
)

// domainInfo is one download domain (an e2LD) with its Alexa rank
// (0 = unranked).
type domainInfo struct {
	Name string
	Rank int
	Kind domainKind
}

// Paper-named seed domains per kind.
var domainSeeds = map[domainKind][]string{
	kindHosting: {
		"softonic.com", "mediafire.com", "cloudfront.net", "amazonaws.com",
		"soft32.com", "4shared.com", "uptodown.com", "baixaki.com.br",
		"softonic.com.br", "rackcdn.com", "cdn77.net", "nzs.com.br",
		"files-info.com", "sharesend.com", "ge.tt", "softonic.fr",
		"softonic.jp",
	},
	kindVendor: {
		"driverupdate.net", "arcadefrontier.com", "ziputil.net",
		"updatestar.com", "gamehouse.com", "coolrom.com",
	},
	kindAdwareDist: {
		"inbox.com", "humipapp.com", "bestdownload-manager.com",
		"freepdf-converter.com", "free-fileopener.com",
		"zilliontoolkitusa.info", "downloadaixeechahgho.com",
		"d0wnpzivrubajjui.com", "vitkvitk.com", "downloadnuchaik.com",
	},
	kindStreaming: {
		"media-watch-app.com", "trustmediaviewer.com", "vidply.net",
		"media-view.net", "media-buzz.org", "mediaply.net",
		"pinchfist.info", "dl24x7.net", "zrich-media-view.com",
		"media-viewer.com",
	},
	kindFakeAV: {
		"5k-stopadware2014.in", "sncpwindefender2014.in",
		"webantiviruspro-fr.pw", "12e-stopadware2014.in",
		"zeroantivirusprojectx.nl", "wmicrodefender27.nl",
		"qwindowsdefender.nl", "alphavirusprotectz.pw",
	},
	kindC2: {
		"wipmsc.ru", "f-best.biz", "gulfup.com", "hinet.net", "naver.net",
	},
	kindAgentWL: {
		"microsoft.com", "windowsupdate.com", "adobe.com", "google.com",
		"apple.com", "mozilla.org",
	},
}

// domainPlan sizes and ranks each kind. Counts are paper-scale (the full
// corpus has 96,862 distinct domains) and get multiplied by Scale.
var domainPlans = map[domainKind]struct {
	PaperCount       int
	MinCount         int
	MinRank, MaxRank int // 0,0 = unranked
	RankedShare      float64
	Pattern          string
}{
	kindHosting:    {PaperCount: 900, MinCount: 12, MinRank: 80, MaxRank: 8_000, RankedShare: 1.0, Pattern: "filehost%03d.com"},
	kindVendor:     {PaperCount: 22_000, MinCount: 30, MinRank: 500, MaxRank: 60_000, RankedShare: 0.95, Pattern: "swvendor%05d.com"},
	kindAdwareDist: {PaperCount: 9_000, MinCount: 20, MinRank: 2_000, MaxRank: 90_000, RankedShare: 0.85, Pattern: "get-freeapp%04d.com"},
	kindStreaming:  {PaperCount: 4_000, MinCount: 14, MinRank: 8_000, MaxRank: 300_000, RankedShare: 0.7, Pattern: "stream-view%04d.net"},
	kindFakeAV:     {PaperCount: 2_500, MinCount: 12, MinRank: 400_000, MaxRank: 990_000, RankedShare: 0.15, Pattern: "win-defender-pro%04d.in"},
	kindC2:         {PaperCount: 18_000, MinCount: 20, MinRank: 500_000, MaxRank: 990_000, RankedShare: 0.12, Pattern: "upd%05d.ru"},
	kindGeneric:    {PaperCount: 41_000, MinCount: 40, MinRank: 20_000, MaxRank: 950_000, RankedShare: 0.4, Pattern: "site%05d.net"},
	kindAgentWL:    {PaperCount: 6, MinCount: 6, MinRank: 1, MaxRank: 60, RankedShare: 1.0, Pattern: "vendorwl%02d.com"},
}

// domainCatalog holds all generated domains plus the reputation oracle
// views over them.
type domainCatalog struct {
	byKind map[domainKind][]*domainInfo
	rng    *rand.Rand

	alexa   map[string]int
	urlWL   []string
	urlBL   []string
	gsb     []string
	agentWL []string
}

func newDomainCatalog(rng *rand.Rand, scale float64) (*domainCatalog, error) {
	c := &domainCatalog{
		byKind: make(map[domainKind][]*domainInfo),
		rng:    rng,
		alexa:  make(map[string]int),
	}
	// Deterministic build order: map iteration would randomize the RNG
	// draw sequence and break dataset reproducibility.
	kinds := []domainKind{
		kindHosting, kindVendor, kindAdwareDist, kindStreaming,
		kindFakeAV, kindC2, kindGeneric, kindAgentWL,
	}
	for _, kind := range kinds {
		plan := domainPlans[kind]
		n := int(float64(plan.PaperCount) * scale)
		if n < plan.MinCount {
			n = plan.MinCount
		}
		seeds := domainSeeds[kind]
		for i := 0; i < n; i++ {
			var name string
			if i < len(seeds) {
				name = seeds[i]
			} else {
				name = fmt.Sprintf(plan.Pattern, i)
			}
			d := &domainInfo{Name: name, Kind: kind}
			if stats.Bernoulli(rng, plan.RankedShare) {
				span := plan.MaxRank - plan.MinRank
				if span <= 0 {
					span = 1
				}
				// Skew ranks toward the low (popular) end of the band.
				u := rng.Float64()
				d.Rank = plan.MinRank + int(u*u*float64(span))
			}
			c.byKind[kind] = append(c.byKind[kind], d)
			if d.Rank > 0 {
				c.alexa[d.Name] = d.Rank
			}
		}
	}
	c.buildReputationFeeds()
	return c, nil
}

// buildReputationFeeds derives the URL white/blacklists, the Safe
// Browsing feed and the agent whitelist from the catalog.
func (c *domainCatalog) buildReputationFeeds() {
	for kind, domains := range c.byKind {
		for _, d := range domains {
			switch kind {
			case kindHosting:
				// Most (not all) big hosting services are curated.
				if stableIndex(d.Name, 100) < 70 {
					c.urlWL = append(c.urlWL, d.Name)
				}
			case kindVendor:
				// The curated whitelist covers only part of the vendor
				// long tail, keeping the benign-URL share near Table I's
				// 29.8%.
				if stableIndex(d.Name, 100) < 40 {
					c.urlWL = append(c.urlWL, d.Name)
				}
			case kindFakeAV, kindC2:
				c.gsb = append(c.gsb, d.Name)
				c.urlBL = append(c.urlBL, d.Name)
			case kindAdwareDist:
				// A slice of the adware portals is blacklisted.
				if stableIndex(d.Name, 100) < 45 {
					c.gsb = append(c.gsb, d.Name)
					c.urlBL = append(c.urlBL, d.Name)
				}
			case kindAgentWL:
				c.agentWL = append(c.agentWL, d.Name)
			}
		}
	}
}

// oracle builds the reputation oracle over the catalog plus the given
// file whitelist.
func (c *domainCatalog) oracle(fileWL *reputation.FileList) (*reputation.Oracle, error) {
	alexa, err := reputation.NewAlexaList(c.alexa)
	if err != nil {
		return nil, err
	}
	wl, err := reputation.NewDomainList(c.urlWL)
	if err != nil {
		return nil, err
	}
	bl, err := reputation.NewDomainList(c.urlBL)
	if err != nil {
		return nil, err
	}
	gsb, err := reputation.NewDomainList(c.gsb)
	if err != nil {
		return nil, err
	}
	agentWL, err := reputation.NewDomainList(c.agentWL)
	if err != nil {
		return nil, err
	}
	return reputation.NewOracle(alexa, wl, bl, gsb, fileWL, agentWL), nil
}

// kindWeights maps a file population to the domain kinds serving it.
type kindWeight struct {
	kind domainKind
	w    float64
}

var benignDomainKinds = []kindWeight{
	{kindHosting, 0.45}, {kindVendor, 0.50}, {kindGeneric, 0.05},
}

var unknownBenignDomainKinds = []kindWeight{
	{kindVendor, 0.45}, {kindHosting, 0.30}, {kindGeneric, 0.25},
}

var unknownMalDomainKinds = []kindWeight{
	{kindAdwareDist, 0.40}, {kindHosting, 0.25}, {kindStreaming, 0.15},
	{kindGeneric, 0.15}, {kindC2, 0.05},
}

var malDomainKindsByType = map[dataset.MalwareType][]kindWeight{
	dataset.TypeDropper:    {{kindHosting, 0.55}, {kindAdwareDist, 0.30}, {kindGeneric, 0.15}},
	dataset.TypePUP:        {{kindAdwareDist, 0.50}, {kindHosting, 0.30}, {kindGeneric, 0.20}},
	dataset.TypeAdware:     {{kindStreaming, 0.45}, {kindAdwareDist, 0.35}, {kindHosting, 0.20}},
	dataset.TypeTrojan:     {{kindHosting, 0.35}, {kindAdwareDist, 0.25}, {kindGeneric, 0.25}, {kindC2, 0.15}},
	dataset.TypeBanker:     {{kindC2, 0.75}, {kindGeneric, 0.25}},
	dataset.TypeBot:        {{kindC2, 0.80}, {kindGeneric, 0.20}},
	dataset.TypeFakeAV:     {{kindFakeAV, 0.85}, {kindGeneric, 0.15}},
	dataset.TypeRansomware: {{kindC2, 0.55}, {kindGeneric, 0.30}, {kindHosting, 0.15}},
	dataset.TypeWorm:       {{kindC2, 0.70}, {kindGeneric, 0.30}},
	dataset.TypeSpyware:    {{kindVendor, 0.40}, {kindGeneric, 0.40}, {kindC2, 0.20}},
	dataset.TypeUndefined:  {{kindHosting, 0.30}, {kindAdwareDist, 0.30}, {kindGeneric, 0.25}, {kindC2, 0.15}},
}

// pick selects a domain for the given kind-weight mix, zipf-weighted
// within the kind so a handful of domains dominate each population.
func (c *domainCatalog) pick(mix []kindWeight) *domainInfo {
	weights := make([]float64, len(mix))
	for i, kw := range mix {
		weights[i] = kw.w
	}
	idx, err := stats.WeightedChoice(c.rng, weights)
	if err != nil {
		idx = 0
	}
	pool := c.byKind[mix[idx].kind]
	return zipfPick(pool, c.rng)
}

// pickAgentWhitelisted returns a domain suppressed by the agent rules.
func (c *domainCatalog) pickAgentWhitelisted() *domainInfo {
	return zipfPick(c.byKind[kindAgentWL], c.rng)
}

// domainsForClass returns the kind-weight mix for a file population.
func domainsForClass(plan classPlan, typ dataset.MalwareType, latentMal bool) []kindWeight {
	switch plan {
	case planBenign, planLikelyBenign:
		return benignDomainKinds
	case planMalicious, planLikelyMalicious:
		return malDomainKindsByType[typ]
	default:
		if latentMal {
			return unknownMalDomainKinds
		}
		return unknownBenignDomainKinds
	}
}
