package synth

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/avsim"
	"repro/internal/dataset"
	"repro/internal/labeling"
	"repro/internal/stats"
)

func smallConfig(seed int64) Config {
	cfg := DefaultConfig(seed, 0.002)
	return cfg
}

// generateLabeled is a test helper running the full generate+label
// pipeline.
func generateLabeled(t *testing.T, seed int64) (*Result, *dataset.Store) {
	t.Helper()
	res, err := Generate(smallConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	lab, err := labeling.New(avsim.NewDefaultService(), res.Oracle, nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := lab.LabelStore(res.Store, res.Samples); err != nil {
		t.Fatal(err)
	}
	res.Store.Freeze()
	return res, res.Store
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig(1, 0.01)
	if err := good.Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	cases := []func(*Config){
		func(c *Config) { c.Scale = 0 },
		func(c *Config) { c.Scale = 2 },
		func(c *Config) { c.Sigma = 0 },
		func(c *Config) { c.Start = time.Time{} },
		func(c *Config) { c.Months = 0 },
		func(c *Config) { c.Months = 13 },
		func(c *Config) { c.NoiseNonExecuted = -1 },
		func(c *Config) { c.NoiseWhitelistedURL = 0.9 },
	}
	for i, mut := range cases {
		cfg := DefaultConfig(1, 0.01)
		mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(smallConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(smallConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	ea, eb := a.Store.Events(), b.Store.Events()
	if len(ea) != len(eb) {
		t.Fatalf("event counts differ: %d vs %d", len(ea), len(eb))
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, ea[i], eb[i])
		}
	}
}

func TestGenerateDifferentSeedsDiffer(t *testing.T) {
	a, err := Generate(smallConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(smallConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	ea, eb := a.Store.Events(), b.Store.Events()
	if len(ea) == len(eb) {
		same := true
		for i := range ea {
			if ea[i] != eb[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical traces")
		}
	}
}

func TestGenerateEventsWellFormed(t *testing.T) {
	res, err := Generate(smallConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	end := res.Config.Start.AddDate(0, res.Config.Months, 0)
	for _, e := range res.Store.Events() {
		if err := e.Validate(); err != nil {
			t.Fatalf("stored event invalid: %v", err)
		}
		if !e.Executed {
			t.Fatal("non-executed event survived the collection server")
		}
		if e.Time.Before(res.Config.Start) || !e.Time.Before(end) {
			t.Fatalf("event time %v outside window", e.Time)
		}
		if res.Store.File(e.File) == nil {
			t.Fatalf("event file %s has no registered metadata", e.File)
		}
		if res.Store.File(e.Process) == nil {
			t.Fatalf("event process %s has no registered metadata", e.Process)
		}
	}
}

func TestGenerateAgentRulesApplied(t *testing.T) {
	res, err := Generate(smallConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	s := res.AgentStats
	if s.DroppedNotExecuted == 0 {
		t.Error("no non-executed events suppressed; noise generation broken")
	}
	if s.DroppedWhitelistedURL == 0 {
		t.Error("no whitelisted-URL events suppressed")
	}
	if s.Reported != res.Store.NumEvents() {
		t.Errorf("reported %d != stored %d", s.Reported, res.Store.NumEvents())
	}
}

func TestGeneratePrevalenceCapRespected(t *testing.T) {
	res, err := Generate(smallConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	res.Store.Freeze()
	for _, f := range res.Store.DownloadedFiles() {
		if p := res.Store.Prevalence(f); p > res.Config.Sigma {
			t.Fatalf("file %s has observed prevalence %d > sigma %d", f, p, res.Config.Sigma)
		}
	}
}

func TestGenerateLabelMixMatchesPaperShape(t *testing.T) {
	// Use a slightly larger trace for stable proportions.
	res, err := Generate(DefaultConfig(42, 0.005))
	if err != nil {
		t.Fatal(err)
	}
	lab, err := labeling.New(avsim.NewDefaultService(), res.Oracle, nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := lab.LabelStore(res.Store, res.Samples); err != nil {
		t.Fatal(err)
	}
	res.Store.Freeze()
	files := res.Store.DownloadedFiles()
	counts := map[dataset.Label]int{}
	prev1 := 0
	for _, f := range files {
		counts[res.Store.Label(f)]++
		if res.Store.Prevalence(f) == 1 {
			prev1++
		}
	}
	n := float64(len(files))
	if got := float64(counts[dataset.LabelUnknown]) / n; got < 0.72 || got > 0.90 {
		t.Errorf("unknown share = %.3f, want ~0.83", got)
	}
	if got := float64(counts[dataset.LabelMalicious]) / n; got < 0.06 || got > 0.16 {
		t.Errorf("malicious share = %.3f, want ~0.10", got)
	}
	if got := float64(counts[dataset.LabelBenign]) / n; got < 0.01 || got > 0.06 {
		t.Errorf("benign share = %.3f, want ~0.023", got)
	}
	if got := float64(prev1) / n; got < 0.80 || got > 0.95 {
		t.Errorf("prevalence-1 share = %.3f, want ~0.90", got)
	}
}

func TestGenerateMajorityOfMachinesTouchUnknown(t *testing.T) {
	_, store := generateLabeled(t, 6)
	unk := map[dataset.MachineID]bool{}
	for _, e := range store.Events() {
		if store.Label(e.File) == dataset.LabelUnknown {
			unk[e.Machine] = true
		}
	}
	share := float64(len(unk)) / float64(len(store.Machines()))
	if share < 0.5 {
		t.Errorf("machines touching unknown files = %.2f, want the majority", share)
	}
}

func TestWorldCatalogs(t *testing.T) {
	w, err := NewWorld(smallConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	if len(w.benignSigners) == 0 || len(w.malSigners) == 0 || len(w.commonSigners) == 0 {
		t.Error("signer pools empty")
	}
	total := len(w.packersCommon) + len(w.packersMal) + len(w.packersBenign)
	if total != 69 {
		t.Errorf("packer roster = %d, want 69 (paper)", total)
	}
	if len(w.packersCommon) != 35 {
		t.Errorf("common packers = %d, want 35 (paper)", len(w.packersCommon))
	}
	famTotal := 0
	for _, fams := range w.families {
		famTotal += len(fams)
	}
	if famTotal < 300 {
		t.Errorf("family roster = %d, want ~363", famTotal)
	}
}

func TestWorldSignerPoolsDisjointish(t *testing.T) {
	w, err := NewWorld(smallConfig(9))
	if err != nil {
		t.Fatal(err)
	}
	benign := map[string]bool{}
	for _, s := range w.benignSigners {
		benign[s.Name] = true
	}
	for _, s := range w.malSigners {
		if benign[s.Name] {
			t.Errorf("signer %q in both exclusive pools", s.Name)
		}
	}
}

func TestFactoryClassProfiles(t *testing.T) {
	w, err := NewWorld(smallConfig(10))
	if err != nil {
		t.Fatal(err)
	}
	f, err := newFileFactory(w, stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Date(2014, time.February, 1, 0, 0, 0, 0, time.UTC)

	unk := f.newFile(planUnknown, dataset.TypeUndefined, true, t0)
	if unk.sample.InCorpus {
		t.Error("unknown file must be out of corpus")
	}
	ben := f.newFile(planBenign, dataset.TypeUndefined, true, t0)
	if !ben.sample.InCorpus || ben.sample.TrueMalicious {
		t.Error("benign sample profile wrong")
	}
	if !ben.sample.FirstScan.Before(t0) {
		t.Error("benign file should have scan history predating the download")
	}
	mal := f.newFile(planMalicious, dataset.TypeDropper, true, t0)
	if !mal.sample.TrueMalicious || mal.sample.TrustedBlind {
		t.Error("malicious sample profile wrong")
	}
	lm := f.newFile(planLikelyMalicious, dataset.TypeTrojan, false, t0)
	if !lm.sample.TrustedBlind {
		t.Error("likely-malicious sample must be trusted-blind")
	}
	lb := f.newFile(planLikelyBenign, dataset.TypeUndefined, false, t0)
	spread := lb.sample.LastScan.Sub(lb.sample.FirstScan)
	rescanAt := t0.Add(labeling.DefaultRescanDelay)
	if lb.sample.FirstScan.After(rescanAt) {
		t.Error("likely-benign first scan after rescan time")
	}
	if spread <= 0 {
		t.Error("likely-benign scan spread non-positive")
	}
}

func TestFactorySigningRatesByType(t *testing.T) {
	w, err := NewWorld(smallConfig(11))
	if err != nil {
		t.Fatal(err)
	}
	f, err := newFileFactory(w, stats.NewRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Date(2014, time.March, 1, 0, 0, 0, 0, time.UTC)
	signedCount := func(typ dataset.MalwareType, n int) int {
		c := 0
		for i := 0; i < n; i++ {
			rec := f.newFile(planMalicious, typ, true, t0)
			if rec.meta.Signed() {
				c++
			}
		}
		return c
	}
	droppers := signedCount(dataset.TypeDropper, 300)
	bots := signedCount(dataset.TypeBot, 300)
	if droppers <= bots {
		t.Errorf("droppers signed %d/300 vs bots %d/300; droppers should sign far more (Table VI)", droppers, bots)
	}
	if float64(droppers)/300 < 0.8 {
		t.Errorf("dropper browser signing rate = %d/300, want ~0.92", droppers)
	}
	if float64(bots)/300 > 0.1 {
		t.Errorf("bot signing rate = %d/300, want ~0.02", bots)
	}
}

func TestFollowupDelayShapes(t *testing.T) {
	rng := stats.NewRNG(3)
	day := 24 * time.Hour
	sameDay := func(typ dataset.MalwareType, n int) float64 {
		c := 0
		for i := 0; i < n; i++ {
			if followupDelay(typ, rng) < day {
				c++
			}
		}
		return float64(c) / float64(n)
	}
	dropper := sameDay(dataset.TypeDropper, 2000)
	adware := sameDay(dataset.TypeAdware, 2000)
	if dropper <= adware {
		t.Errorf("dropper same-day share %.2f should exceed adware %.2f (Figure 5)", dropper, adware)
	}
	if dropper < 0.5 {
		t.Errorf("dropper same-day share = %.2f, want >= 0.5", dropper)
	}
}

func TestScaledMonthlyVolumes(t *testing.T) {
	_, store := generateLabeled(t, 12)
	months := store.Months()
	if len(months) < 7 {
		t.Errorf("dataset spans %d months, want >= 7", len(months))
	}
}

func TestTuningDefaults(t *testing.T) {
	var tn Tuning
	if got := tn.latentMaliciousShareOrDefault(); got != latentMaliciousShare {
		t.Errorf("latent default = %v", got)
	}
	if got := tn.riskyShareOrDefault(); got != riskyShare {
		t.Errorf("risky default = %v", got)
	}
	if got := tn.reuseProbabilityOrDefault(); got != reuseProbability {
		t.Errorf("reuse default = %v", got)
	}
	if got := tn.coInstallScaleOrDefault(); got != 1 {
		t.Errorf("coinstall default = %v", got)
	}
	if got := tn.followupScaleOrDefault(); got != 1 {
		t.Errorf("followup default = %v", got)
	}
	tn = Tuning{
		LatentMaliciousShare: 0.2, RiskyShare: 0.5, ReuseProbability: 0.9,
		CoInstallScale: 2, FollowupScale: 0.5,
	}
	if tn.latentMaliciousShareOrDefault() != 0.2 || tn.riskyShareOrDefault() != 0.5 ||
		tn.reuseProbabilityOrDefault() != 0.9 || tn.coInstallScaleOrDefault() != 2 ||
		tn.followupScaleOrDefault() != 0.5 {
		t.Error("tuning overrides not applied")
	}
	tn = Tuning{DisableCoInstall: true, CoInstallScale: 5}
	if tn.coInstallScaleOrDefault() != 0 {
		t.Error("DisableCoInstall should win")
	}
}

func TestTuningDisableCoInstallChangesTrace(t *testing.T) {
	base := smallConfig(55)
	off := base
	off.Tuning.DisableCoInstall = true
	a, err := Generate(base)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(off)
	if err != nil {
		t.Fatal(err)
	}
	if a.Store.NumEvents() <= b.Store.NumEvents() {
		t.Errorf("disabling co-installs should shrink the trace: %d vs %d",
			a.Store.NumEvents(), b.Store.NumEvents())
	}
}

func TestDrawClassAcrobatMostlyMalicious(t *testing.T) {
	cfg := smallConfig(91)
	w, err := NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g, err := newGenerator(cfg, w, stats.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	g.monthDrift = 1
	ms := g.mixes[dataset.CategoryAcrobat]
	malish, total := 0, 2000
	// A risky machine downloading via Acrobat: the clamp must keep the
	// probabilities valid and malicious must dominate.
	risky := dataset.MachineID("")
	for i := 0; i < 1000; i++ {
		m := dataset.MachineID(fmt.Sprintf("m%d", i))
		if g.risky(m) {
			risky = m
			break
		}
	}
	if risky == "" {
		t.Fatal("no risky machine found")
	}
	for i := 0; i < total; i++ {
		plan, typ := g.drawClass(ms, risky, dataset.BrowserNone, 1.0)
		if plan == planMalicious || plan == planLikelyMalicious {
			malish++
			if typ == dataset.TypeAdware {
				t.Fatal("acrobat mix produced adware (weight 0)")
			}
		}
	}
	if share := float64(malish) / float64(total); share < 0.7 {
		t.Errorf("risky acrobat malicious share = %.2f, want clamped-high", share)
	}
}

func TestDrawFileReuseProducesPrevalence(t *testing.T) {
	cfg := smallConfig(92)
	w, err := NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g, err := newGenerator(cfg, w, stats.NewRNG(6))
	if err != nil {
		t.Fatal(err)
	}
	t0 := cfg.Start
	seen := map[dataset.FileHash]int{}
	for i := 0; i < 3000; i++ {
		rec := g.drawFile(planBenign, dataset.TypeUndefined, true, t0)
		seen[rec.meta.Hash]++
	}
	reused := 0
	for _, n := range seen {
		if n > 1 {
			reused++
		}
	}
	if reused == 0 {
		t.Error("reuse pool never re-issued a file; prevalence > 1 impossible")
	}
	if len(seen) < 1000 {
		t.Errorf("only %d distinct files over 3000 draws; reuse too aggressive", len(seen))
	}
}

func TestFollowupsRespectDepthCap(t *testing.T) {
	cfg := smallConfig(93)
	w, err := NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g, err := newGenerator(cfg, w, stats.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	g.monthDrift = 1
	rec := g.factory.newFile(planMalicious, dataset.TypeDropper, false, cfg.Start)
	g.records = append(g.records, rec)
	before := len(g.raw)
	// Depth at the cap: no events may be emitted.
	g.scheduleFollowups("m-x", rec, cfg.Start, 2)
	if len(g.raw) != before {
		t.Errorf("depth-capped followups emitted %d events", len(g.raw)-before)
	}
}
