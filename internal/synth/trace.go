package synth

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/agent"
	"repro/internal/avsim"
	"repro/internal/dataset"
	"repro/internal/labeling"
	"repro/internal/reputation"
	"repro/internal/stats"
)

// Result is a generated dataset plus everything the labeling and
// analysis pipelines need to consume it.
type Result struct {
	// Store holds the post-collection-server events and the metadata of
	// every file and process. It is not yet frozen, so the labeling
	// pipeline can still write ground truth into it.
	Store *dataset.Store
	// Samples holds the scan-service profile of every generated file.
	Samples labeling.Samples
	// Oracle bundles the reputation sources over the generated world.
	Oracle *reputation.Oracle
	// World is the generative world, exposed for inspection.
	World *World
	// AgentStats reports how many raw events each collection rule
	// suppressed.
	AgentStats agent.Stats
	// RawTrace is the chronologically sorted pre-collection event stream,
	// retained only when Config.KeepRawTrace is set. It is exactly the
	// stream the software agents observed, so replaying it through any
	// transport that preserves order and delivers exactly once must
	// reproduce Store's events.
	RawTrace []dataset.DownloadEvent
	// Config echoes the generating configuration.
	Config Config
}

// followupLambda is the expected number of downloads a freshly executed
// malicious file performs, per behaviour type. Droppers download the
// most (they exist to fetch second stages).
var followupLambda = map[dataset.MalwareType]float64{
	dataset.TypeDropper:    0.38,
	dataset.TypeAdware:     0.22,
	dataset.TypePUP:        0.22,
	dataset.TypeTrojan:     0.15,
	dataset.TypeBanker:     0.12,
	dataset.TypeBot:        0.14,
	dataset.TypeFakeAV:     0.12,
	dataset.TypeRansomware: 0.10,
	dataset.TypeWorm:       0.12,
	dataset.TypeSpyware:    0.08,
	dataset.TypeUndefined:  0.08,
}

// baseMalDamp compensates the malicious volume that follow-up and
// co-install downloads add on top of the base per-category mixes,
// keeping the dataset-wide malicious share at Table I's 9.9%.
const baseMalDamp = 0.64

// coInstallProb is the probability that a malicious download is part of
// a bundle that drops a second, different piece of malware on the same
// machine almost immediately. This is the mechanism behind Figure 5's
// ">40% of adware/PUP machines download other malware on day 0": the
// grayware ecosystem monetizes installs by bundling.
var coInstallProb = map[dataset.MalwareType]float64{
	dataset.TypeAdware:  0.30,
	dataset.TypePUP:     0.30,
	dataset.TypeDropper: 0.15,
	dataset.TypeTrojan:  0.10,
}

// coInstallTypeWeights skews co-installed payloads toward the
// non-grayware types ("other malware" in Figure 5's terms), in
// typeWeightOrder.
var coInstallTypeWeights = []float64{25, 0, 45, 0, 4, 4, 8, 5, 2, 1, 6}

// followupDelay draws the time between executing a malicious file and
// its next download, shaping Figure 5's CDFs: droppers fetch second
// stages almost immediately; adware/PUP monetization unfolds over days.
func followupDelay(typ dataset.MalwareType, rng *rand.Rand) time.Duration {
	var sameDayP, meanDays, capDays float64
	switch typ {
	case dataset.TypeDropper:
		sameDayP, meanDays, capDays = 0.60, 2, 45
	case dataset.TypeAdware, dataset.TypePUP:
		sameDayP, meanDays, capDays = 0.42, 12, 90
	default:
		sameDayP, meanDays, capDays = 0.30, 8, 60
	}
	if stats.Bernoulli(rng, sameDayP) {
		return time.Duration(rng.Float64() * 10 * float64(time.Hour))
	}
	days := stats.Exponential(rng, meanDays, capDays)
	return time.Duration(days * 24 * float64(time.Hour))
}

// poolKey identifies a file-reuse pool.
type poolKey struct {
	plan classPlan
	typ  dataset.MalwareType
}

// mixSampler couples a categoryMix with its prepared type sampler.
type mixSampler struct {
	mix   categoryMix
	types *stats.Categorical
}

// generator holds the trace-generation state.
type generator struct {
	cfg     Config
	w       *World
	rng     *rand.Rand
	factory *fileFactory

	// monthDrift is the malicious-share multiplier of the month being
	// generated (Table I drift).
	monthDrift float64

	machines []dataset.MachineID
	end      time.Time

	catSampler *stats.Categorical
	catOrder   []dataset.ProcessCategory
	unknownCat int // index in catOrder representing unknown processes

	mixes    map[dataset.ProcessCategory]*mixSampler
	malMixes map[dataset.MalwareType]*mixSampler

	pending map[poolKey][]*fileRecord
	raw     []dataset.DownloadEvent
	records []*fileRecord
}

// reuseProbability is the chance an event consumes a pending re-download
// of an existing file instead of minting a new one.
const reuseProbability = 0.62

// riskyShare is the fraction of machines with risky download behaviour.
const riskyShare = 0.25

func newGenerator(cfg Config, w *World, rng *rand.Rand) (*generator, error) {
	factory, err := newFileFactory(w, stats.Fork(rng))
	if err != nil {
		return nil, err
	}
	g := &generator{
		cfg:     cfg,
		w:       w,
		rng:     rng,
		factory: factory,
		end:     cfg.Start.AddDate(0, cfg.Months, 0),
		mixes:   make(map[dataset.ProcessCategory]*mixSampler),
		pending: make(map[poolKey][]*fileRecord),
	}
	// Machine pool sized so that monthly re-draws reproduce the paper's
	// ratio of per-month to total distinct machines.
	poolSize := int(2.2 * float64(paperTotalMachines) * cfg.Scale)
	if poolSize < 400 {
		poolSize = 400
	}
	g.machines = make([]dataset.MachineID, poolSize)
	for i := range g.machines {
		g.machines[i] = dataset.MachineID(fmt.Sprintf("machine-%08d", i))
	}
	// Process-category event shares (derived from Tables X-XII file
	// volumes); the last slot is the unknown-process population.
	g.catOrder = []dataset.ProcessCategory{
		dataset.CategoryBrowser, dataset.CategoryWindows, dataset.CategoryJava,
		dataset.CategoryAcrobat, dataset.CategoryOther, dataset.CategoryOther,
	}
	g.unknownCat = 5
	catWeights := []float64{0.660, 0.245, 0.0006, 0.0007, 0.048, 0.046}
	cs, err := stats.NewCategorical(rng, catWeights)
	if err != nil {
		return nil, err
	}
	g.catSampler = cs

	mkMix := func(m categoryMix) (*mixSampler, error) {
		types, err := stats.NewCategorical(rng, m.TypeWeights)
		if err != nil {
			return nil, err
		}
		return &mixSampler{mix: m, types: types}, nil
	}
	for cat, m := range map[dataset.ProcessCategory]categoryMix{
		dataset.CategoryBrowser: mixBrowser,
		dataset.CategoryWindows: mixWindows,
		dataset.CategoryJava:    mixJava,
		dataset.CategoryAcrobat: mixAcrobat,
		dataset.CategoryOther:   mixOtherBenign,
	} {
		ms, err := mkMix(m)
		if err != nil {
			return nil, err
		}
		g.mixes[cat] = ms
	}
	unknownMix, err := mkMix(mixUnknownProc)
	if err != nil {
		return nil, err
	}
	g.mixes[dataset.ProcessCategory(-1)] = unknownMix // sentinel for unknown procs
	g.malMixes = make(map[dataset.MalwareType]*mixSampler, len(malProcMixes))
	for typ, m := range malProcMixes {
		ms, err := mkMix(m)
		if err != nil {
			return nil, err
		}
		g.malMixes[typ] = ms
	}
	return g, nil
}

func (g *generator) risky(m dataset.MachineID) bool {
	return stableIndex(string(m)+"|risk", 100) < int(g.cfg.Tuning.riskyShareOrDefault()*100)
}

// drawClass converts a category mix into a concrete class plan and type,
// applying the per-browser overrides and the machine risk tilt.
func (g *generator) drawClass(ms *mixSampler, machine dataset.MachineID, br dataset.Browser, malDamp float64) (classPlan, dataset.MalwareType) {
	b, m := ms.mix.Benign, ms.mix.Malicious
	if br != dataset.BrowserNone {
		if override, ok := browserClassMix[br]; ok {
			b, m = override.Benign, override.Malicious
		}
	}
	riskFactor := 0.55
	if g.risky(machine) {
		riskFactor = 2.35
	}
	drift := g.monthDrift
	if drift == 0 {
		drift = 1
	}
	m *= riskFactor * malDamp * drift
	// Table I: strict benign 2.3% of files vs 2.5% likely benign;
	// strict malicious 9.9% vs 2.3% likely malicious. The mixes encode
	// the strict shares, so inflate and split.
	pBenignish := b * (1 + 2.5/2.3)
	pMalish := m * (1 + 2.3/9.9)
	if total := pBenignish + pMalish; total > 0.98 {
		pBenignish *= 0.98 / total
		pMalish *= 0.98 / total
	}
	u := g.rng.Float64()
	switch {
	case u < pMalish:
		typ := typeWeightOrder[ms.types.Draw()]
		if stats.Bernoulli(g.rng, 2.3/12.2) {
			return planLikelyMalicious, typ
		}
		return planMalicious, typ
	case u < pMalish+pBenignish:
		if stats.Bernoulli(g.rng, 2.5/4.8) {
			return planLikelyBenign, dataset.TypeUndefined
		}
		return planBenign, dataset.TypeUndefined
	default:
		return planUnknown, dataset.TypeUndefined
	}
}

// drawFile returns the file for one download event: either a pending
// re-download of an existing file of the same population, or a new file.
func (g *generator) drawFile(plan classPlan, typ dataset.MalwareType, viaBrowser bool, t time.Time) *fileRecord {
	key := poolKey{plan: plan, typ: typ}
	pool := g.pending[key]
	if len(pool) > 0 && stats.Bernoulli(g.rng, g.cfg.Tuning.reuseProbabilityOrDefault()) {
		i := g.rng.Intn(len(pool))
		rec := pool[i]
		rec.budget--
		if rec.budget <= 0 {
			pool[i] = pool[len(pool)-1]
			g.pending[key] = pool[:len(pool)-1]
		}
		return rec
	}
	rec := g.factory.newFile(plan, typ, viaBrowser, t)
	g.records = append(g.records, rec)
	if rec.budget > 0 {
		g.pending[key] = append(g.pending[key], rec)
	}
	return rec
}

// emit appends one raw event.
func (g *generator) emit(file *fileRecord, machine dataset.MachineID, proc dataset.FileHash, t time.Time, executed bool) {
	g.raw = append(g.raw, dataset.DownloadEvent{
		File:     file.meta.Hash,
		Machine:  machine,
		Process:  proc,
		URL:      file.url,
		Domain:   file.domain.Name,
		Time:     t,
		Executed: executed,
	})
}

// maliciousish reports whether a record should behave like malware on
// the endpoint (schedule follow-up downloads).
func maliciousish(rec *fileRecord) bool {
	return rec.plan == planMalicious || rec.plan == planLikelyMalicious || rec.latentMal
}

// scheduleFollowups simulates the downloads performed by a just-executed
// malicious file (Tables XII, Figure 5). Depth is capped to keep
// cascades bounded.
func (g *generator) scheduleFollowups(machine dataset.MachineID, rec *fileRecord, t time.Time, depth int) {
	if depth >= 2 {
		return
	}
	lambda := followupLambda[rec.typ] * g.cfg.Tuning.followupScaleOrDefault()
	if rec.plan == planUnknown {
		lambda *= 0.5 // latent malware still downloads, unobserved by GT
	}
	k := stats.Poisson(g.rng, lambda)
	for i := 0; i < k; i++ {
		ft := t.Add(followupDelay(rec.typ, g.rng))
		if !ft.Before(g.end) {
			continue
		}
		ms := g.malMixes[rec.typ]
		plan, typ := g.drawClass(ms, machine, dataset.BrowserNone, 1.0)
		frec := g.drawFile(plan, typ, false, ft)
		g.emit(frec, machine, rec.meta.Hash, ft, true)
		if maliciousish(frec) {
			g.scheduleFollowups(machine, frec, ft, depth+1)
		}
	}
}

// scheduleCoInstall emits the bundled second payload of a malicious
// download: usually within hours, of a non-grayware type, through the
// same downloading process. Latent-malicious anchors co-install latent
// unknowns so the ground-truth shares stay balanced.
func (g *generator) scheduleCoInstall(machine dataset.MachineID, rec *fileRecord, proc dataset.FileHash, t time.Time, viaBrowser bool) {
	if !stats.Bernoulli(g.rng, coInstallProb[rec.typ]*g.cfg.Tuning.coInstallScaleOrDefault()) {
		return
	}
	var delay time.Duration
	if stats.Bernoulli(g.rng, 0.6) {
		delay = time.Duration(g.rng.Float64() * 8 * float64(time.Hour))
	} else {
		delay = time.Duration(stats.Exponential(g.rng, 3, 30) * 24 * float64(time.Hour))
	}
	ct := t.Add(delay)
	if !ct.Before(g.end) {
		return
	}
	idx, err := stats.WeightedChoice(g.rng, coInstallTypeWeights)
	if err != nil {
		return
	}
	typ := typeWeightOrder[idx]
	plan := planMalicious
	if rec.plan == planUnknown {
		plan = planUnknown
	} else if stats.Bernoulli(g.rng, 2.3/12.2) {
		plan = planLikelyMalicious
	}
	crec := g.drawFile(plan, typ, viaBrowser, ct)
	if plan == planUnknown && !crec.latentMal {
		// drawFile rolled a latent-benign unknown; force the latent
		// nature to match the co-install intent.
		crec.latentMal = true
		crec.typ = typ
	}
	g.emit(crec, machine, proc, ct, true)
	if maliciousish(crec) {
		g.scheduleFollowups(machine, crec, ct, 1)
	}
}

// emitBase generates one base download event (plus optional agent-rule
// noise) at time t on the given machine.
func (g *generator) emitBase(machine dataset.MachineID, t time.Time) {
	catIdx := g.catSampler.Draw()
	cat := g.catOrder[catIdx]
	isUnknownProc := catIdx == g.unknownCat

	var proc *dataset.FileMeta
	var ms *mixSampler
	browser := dataset.BrowserNone
	procs := g.w.processes
	switch {
	case isUnknownProc:
		proc = versionFor(machine, "unknownproc", procs.unknownProc)
		ms = g.mixes[dataset.ProcessCategory(-1)]
	case cat == dataset.CategoryBrowser:
		browser = procs.pickBrowser()
		proc = versionFor(machine, "browser|"+browser.String(), procs.browsers[browser])
		ms = g.mixes[cat]
	case cat == dataset.CategoryWindows:
		proc = versionFor(machine, "windows", procs.windows)
		ms = g.mixes[cat]
	case cat == dataset.CategoryJava:
		proc = versionFor(machine, "java", procs.java)
		ms = g.mixes[cat]
	case cat == dataset.CategoryAcrobat:
		proc = versionFor(machine, "acrobat", procs.acrobat)
		ms = g.mixes[cat]
	default:
		proc = versionFor(machine, "otherbenign", procs.otherBenign)
		ms = g.mixes[dataset.CategoryOther]
	}

	plan, typ := g.drawClass(ms, machine, browser, baseMalDamp)
	rec := g.drawFile(plan, typ, browser != dataset.BrowserNone, t)
	g.emit(rec, machine, proc.Hash, t, true)
	if maliciousish(rec) {
		g.scheduleFollowups(machine, rec, t, 0)
		g.scheduleCoInstall(machine, rec, proc.Hash, t, browser != dataset.BrowserNone)
	}

	// Agent-rule noise: raw events the pipeline must suppress.
	if stats.Bernoulli(g.rng, g.cfg.NoiseNonExecuted) {
		nrec := g.drawFile(planUnknown, dataset.TypeUndefined, browser != dataset.BrowserNone, t)
		g.emit(nrec, machine, proc.Hash, t.Add(time.Minute), false)
	}
	if stats.Bernoulli(g.rng, g.cfg.NoiseWhitelistedURL) {
		wrec := g.drawFile(planBenign, dataset.TypeUndefined, true, t)
		// Rewrite the URL onto an agent-whitelisted vendor domain.
		wl := g.w.domains.pickAgentWhitelisted()
		clone := *wrec
		clone.domain = wl
		clone.url = fmt.Sprintf("http://%s/update/pkg_%s.exe", wl.Name, wrec.meta.Hash)
		g.emit(&clone, machine, proc.Hash, t.Add(2*time.Minute), true)
	}
}

// run generates the full raw trace.
func (g *generator) run() {
	monthStart := g.cfg.Start
	for mi := 0; mi < g.cfg.Months; mi++ {
		vol := paperMonths[mi%len(paperMonths)]
		g.monthDrift = monthlyMalDrift[mi%len(monthlyMalDrift)]
		nEvents := int(float64(vol.Events) * g.cfg.Scale)
		if nEvents < 240 {
			nEvents = 240
		}
		nActive := int(float64(vol.Machines) * g.cfg.Scale)
		if nActive < 120 {
			nActive = 120
		}
		if nActive > len(g.machines) {
			nActive = len(g.machines)
		}
		active := stats.Sample(g.rng, g.machines, nActive)
		nextMonth := monthStart.AddDate(0, 1, 0)
		span := nextMonth.Sub(monthStart)
		for i := 0; i < nEvents; i++ {
			t := monthStart.Add(time.Duration(g.rng.Float64() * float64(span)))
			machine := active[g.rng.Intn(len(active))]
			g.emitBase(machine, t)
		}
		monthStart = nextMonth
	}
}

// Generate builds the world, simulates the observation window, pushes
// the raw trace through the SA/CS collection pipeline, and returns the
// resulting dataset.
func Generate(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	w, err := NewWorld(cfg)
	if err != nil {
		return nil, err
	}
	g, err := newGenerator(cfg, w, stats.Fork(w.rng))
	if err != nil {
		return nil, err
	}
	g.run()
	// The collection server observes reports in chronological order.
	sort.SliceStable(g.raw, func(i, j int) bool { return g.raw[i].Time.Before(g.raw[j].Time) })

	store := dataset.NewStore()
	// Register metadata for processes and files.
	for _, p := range w.processes.all() {
		if err := store.PutFile(p); err != nil {
			return nil, err
		}
	}
	samples := make(labeling.Samples, len(g.records))
	for _, rec := range g.records {
		if err := store.PutFile(rec.meta); err != nil {
			return nil, err
		}
		samples[rec.meta.Hash] = rec.sample
	}

	agentWL, err := reputation.NewDomainList(w.domains.agentWL)
	if err != nil {
		return nil, err
	}
	cs, err := agent.NewCollectionServer(store, cfg.Sigma, agentWL)
	if err != nil {
		return nil, err
	}
	// Every event flows through its machine's software agent, as in the
	// deployment: the agent checks the event belongs to its machine and
	// forwards it to the collection server.
	agents := make(map[dataset.MachineID]*agent.SoftwareAgent)
	for _, e := range g.raw {
		sa, ok := agents[e.Machine]
		if !ok {
			sa, err = agent.NewSoftwareAgent(e.Machine, cs)
			if err != nil {
				return nil, err
			}
			agents[e.Machine] = sa
		}
		if err := sa.Observe(e); err != nil {
			return nil, fmt.Errorf("synth: observe event: %w", err)
		}
	}

	// Commercial file whitelist: known-benign processes plus the
	// whitelisted share of benign files. A slice of the "other benign"
	// application pool is not whitelisted and instead carries a scan
	// history, which makes some of them benign via clean scans and some
	// merely likely benign (Table I's 6.6% likely-benign processes).
	wlHashes := append([]dataset.FileHash(nil), g.factory.whitelist...)
	day := 24 * time.Hour
	for _, p := range w.processes.knownBenign() {
		if p.Category == dataset.CategoryOther {
			switch bucket := stableIndex(string(p.Hash)+"|wl", 100); {
			case bucket < 55:
				wlHashes = append(wlHashes, p.Hash)
			case bucket < 78:
				samples[p.Hash] = &avsim.Sample{
					Hash:      p.Hash,
					InCorpus:  true,
					FirstScan: cfg.Start.Add(-300 * day),
					LastScan:  cfg.Start.AddDate(3, 0, 0),
				}
			default:
				// First scanned only days before any rescan: spread
				// stays under the 14-day likely-benign threshold.
				first := cfg.Start.AddDate(2, 0, 0)
				samples[p.Hash] = &avsim.Sample{
					Hash:      p.Hash,
					InCorpus:  true,
					FirstScan: first,
					LastScan:  first.Add(500 * day),
				}
			}
			continue
		}
		wlHashes = append(wlHashes, p.Hash)
	}
	fileWL, err := reputation.NewFileList(wlHashes)
	if err != nil {
		return nil, err
	}
	oracle, err := w.domains.oracle(fileWL)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Store:      store,
		Samples:    samples,
		Oracle:     oracle,
		World:      w,
		AgentStats: cs.Stats(),
		Config:     cfg,
	}
	if cfg.KeepRawTrace {
		res.RawTrace = g.raw
	}
	return res, nil
}
