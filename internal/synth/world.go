package synth

import (
	"fmt"
	"hash/fnv"
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/stats"
)

// signerInfo is one code-signing identity: a subject name bound to the
// certification authority that issued its certificate.
type signerInfo struct {
	Name string
	CA   string
}

// World is the generative model behind the synthetic telemetry: the
// catalogs of signers, CAs, packers, families, domains and processes
// from which files and events are drawn.
type World struct {
	cfg Config
	rng *rand.Rand

	benignSigners []signerInfo // sign only benign software
	malSigners    []signerInfo // sign only malicious software
	commonSigners []signerInfo // sign both (PUP-ish publishers, abused certs)

	packersCommon []string
	packersMal    []string
	packersBenign []string

	families map[dataset.MalwareType][]string

	domains   *domainCatalog
	processes *processCatalog
}

// certification authorities. Real CAs issue to everyone, so the benign
// and abused pools overlap heavily and differ only in mixture weights
// (duplicated entries weight the deterministic per-signer choice); the
// signer identity, not the CA, is the discriminative feature, as in the
// paper where the file-signer feature dominates the learned rules.
var (
	benignCAs = []string{
		"verisign class 3 code signing 2010 ca",
		"verisign class 3 code signing 2010 ca",
		"digicert assured id code signing ca-1",
		"digicert assured id code signing ca-1",
		"symantec class 3 sha256 code signing ca",
		"globalsign codesigning ca - g2",
		"comodo code signing ca 2",
		"thawte code signing ca - g2",
		"certum code signing ca sha2",
		"go daddy secure certificate authority - g2",
	}
	abusedCAs = []string{
		"thawte code signing ca - g2",
		"thawte code signing ca - g2",
		"wosign code signing ca",
		"certum code signing ca sha2",
		"certum code signing ca sha2",
		"comodo code signing ca 2",
		"comodo code signing ca 2",
		"go daddy secure certificate authority - g2",
		"verisign class 3 code signing 2010 ca",
		"digicert assured id code signing ca-1",
	}
)

// Named signers from the paper's Tables VIII and IX keep the generated
// world recognizably aligned with the measurements.
var paperBenignSigners = []string{
	"TeamViewer", "Blizzard Entertainment", "Lespeed Technology Ltd.",
	"Hamrick Software", "Dell Inc.", "Google Inc", "NVIDIA Corporation",
	"Softland S.R.L.", "Adobe Systems Incorporated", "Recovery Toolbox",
	"Lenovo Information Products (Shenzhen) Co.", "MetaQuotes Software Corp.",
	"Rare Ideas", "Mozilla Corporation", "Opera Software ASA",
}

var paperMalSigners = []string{
	"Somoto Ltd.", "ISBRInstaller", "Somoto Israel", "Apps Installer SL",
	"SecureInstall", "Firseria", "Amonetize ltd.", "JumpyApps",
	"ClientConnect LTD", "Media Ingea SL", "RAPIDDOWN", "Sevas-S LLC",
	"Trusted Software Aps", "Tuto4PC.com", "SITE ON SPOT Ltd.",
	"WEBPIC DESENVOLVIMENTO DE SOFTWARE LTDA", "JDI BACKUP LIMITED",
	"Wallinson", "Webcellence Ltd.", "Shanghai Gaoxin Computer System Co.",
	"mail.ru games", "R-DATA Sp. z o.o.", "Mipko OOO",
}

var paperCommonSigners = []string{
	"Softonic International", "Binstall", "UpdateStar GmbH", "AppWork GmbH",
	"WorldSetup", "BoomeranGO Inc.", "Perion Network Ltd.", "Refog Inc.",
	"AVG Technologies", "BitTorrent", "Open Source Developer", "TLAPIA",
	"JumpyApps Media", "The Nielsen Company", "Video Technology",
}

// Packers (Section IV-C): 69 total, about half used by both populations;
// Molebox, NSPack and Themida appear exclusively on malicious files.
var (
	paperCommonPackers = []string{
		"INNO", "UPX", "AutoIt", "NSIS", "ASPack", "PECompact", "MPRESS",
		"Armadillo", "ASProtect", "ExeStealth", "FSG", "MEW", "Petite",
		"UPack", "WinRAR-SFX", "7z-SFX", "InstallShield", "WiseInstaller",
		"PKLITE", "Shrinker",
	}
	paperMalPackers = []string{
		"Molebox", "NSPack", "Themida", "VMProtect", "Obsidium",
		"Enigma", "ExeCryptor", "PELock", "tElock", "Yoda's Crypter",
	}
	paperBenignPackers = []string{"MSI-Wrapper", "Squirrel", "InnoExtended"}
)

// Family seeds per behaviour type. zbot stays exclusive to bankers
// because the AVType interpretation map hard-binds the Zbot family to the
// banker behaviour, as in the paper's example.
var familySeeds = map[dataset.MalwareType][]string{
	dataset.TypeDropper:    {"somoto", "outbrowse", "downloadadmin", "softpulse", "loadmoney", "dlhelper"},
	dataset.TypePUP:        {"firseria", "installcore", "amonetize", "opencandy", "conduit", "sprotector"},
	dataset.TypeAdware:     {"zango", "eorezo", "browsefox", "multiplug", "gator", "adposhel"},
	dataset.TypeTrojan:     {"vundo", "simda", "ramnit", "badur", "llac", "scar"},
	dataset.TypeBanker:     {"zbot", "banload", "bancos", "spyeye", "cridex"},
	dataset.TypeBot:        {"gamarue", "andromeda", "sality", "virut", "dorkbot"},
	dataset.TypeFakeAV:     {"fakerean", "winwebsec", "securityshield", "fakesysdef"},
	dataset.TypeRansomware: {"cryptolocker", "cryptowall", "urausy", "reveton"},
	dataset.TypeWorm:       {"allaple", "vobfus", "mydoom", "palevo"},
	dataset.TypeSpyware:    {"refog", "mipko", "ardamax", "spyrix"},
	dataset.TypeUndefined:  nil,
}

// NewWorld builds a world for the given configuration.
func NewWorld(cfg Config) (*World, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	w := &World{
		cfg:      cfg,
		rng:      stats.NewRNG(cfg.Seed),
		families: make(map[dataset.MalwareType][]string),
	}
	w.buildSigners()
	w.buildPackers()
	w.buildFamilies()
	var err error
	if w.domains, err = newDomainCatalog(stats.Fork(w.rng), cfg.Scale); err != nil {
		return nil, fmt.Errorf("synth: build domains: %w", err)
	}
	if w.processes, err = newProcessCatalog(stats.Fork(w.rng), cfg.Scale, w); err != nil {
		return nil, fmt.Errorf("synth: build processes: %w", err)
	}
	return w, nil
}

// scaledCount scales a paper-sized count down, with a floor.
func (w *World) scaledCount(paperCount, min int) int {
	n := int(float64(paperCount) * w.cfg.Scale)
	if n < min {
		n = min
	}
	return n
}

func (w *World) buildSigners() {
	mkSigners := func(seed []string, generatedPrefix string, total int, cas []string) []signerInfo {
		out := make([]signerInfo, 0, total)
		for _, name := range seed {
			out = append(out, signerInfo{Name: name, CA: cas[stableIndex(name, len(cas))]})
		}
		for i := len(out); i < total; i++ {
			name := fmt.Sprintf("%s %03d Ltd.", generatedPrefix, i)
			out = append(out, signerInfo{Name: name, CA: cas[stableIndex(name, len(cas))]})
		}
		return out
	}
	// Table VII: 1,870 signers total, 513 in common with benign.
	w.benignSigners = mkSigners(paperBenignSigners, "Veritas Software", w.scaledCount(2600, 40), benignCAs)
	w.malSigners = mkSigners(paperMalSigners, "Fastinstall Media", w.scaledCount(1360, 30), abusedCAs)
	w.commonSigners = mkSigners(paperCommonSigners, "Bundleware Partners", w.scaledCount(510, 16), abusedCAs)
}

func (w *World) buildPackers() {
	w.packersCommon = append([]string(nil), paperCommonPackers...)
	w.packersMal = append([]string(nil), paperMalPackers...)
	w.packersBenign = append([]string(nil), paperBenignPackers...)
	// Fill the roster to 69 unique packers: 35 common per the paper.
	for i := len(w.packersCommon); i < 35; i++ {
		w.packersCommon = append(w.packersCommon, fmt.Sprintf("GenPack%02d", i))
	}
	for i := len(w.packersMal); i < 22; i++ {
		w.packersMal = append(w.packersMal, fmt.Sprintf("CryptShell%02d", i))
	}
	for i := len(w.packersBenign); i < 12; i++ {
		w.packersBenign = append(w.packersBenign, fmt.Sprintf("SetupKit%02d", i))
	}
}

func (w *World) buildFamilies() {
	// The paper observes 363 families; spread generated families across
	// types proportionally to their Table II shares.
	extraPerType := map[dataset.MalwareType]int{
		dataset.TypeDropper: 70, dataset.TypePUP: 60, dataset.TypeAdware: 55,
		dataset.TypeTrojan: 80, dataset.TypeBanker: 12, dataset.TypeBot: 12,
		dataset.TypeFakeAV: 10, dataset.TypeRansomware: 8, dataset.TypeWorm: 8,
		dataset.TypeSpyware: 6,
	}
	for typ, seeds := range familySeeds {
		fams := append([]string(nil), seeds...)
		for i := 0; i < extraPerType[typ]; i++ {
			fams = append(fams, fmt.Sprintf("%sfam%02d", typ.String()[:3], i))
		}
		w.families[typ] = fams
	}
}

// familyFor draws a family for a malicious file of the given type; zipf
// weighted so Figure 1's top-25 concentration appears.
func (w *World) familyFor(typ dataset.MalwareType, rng *rand.Rand) string {
	fams := w.families[typ]
	if len(fams) == 0 {
		return ""
	}
	z, err := stats.NewZipf(rng, 1.5, uint64(len(fams)))
	if err != nil {
		return fams[0]
	}
	return fams[int(z.Draw())-1]
}

// signerForMalicious draws a signer for a malicious (or latent-malicious)
// file of the given type: common-with-benign publishers for the
// grayware-adjacent types, exclusive malware signers otherwise.
func (w *World) signerForMalicious(typ dataset.MalwareType, rng *rand.Rand) signerInfo {
	commonShare := map[dataset.MalwareType]float64{
		dataset.TypeDropper: 0.30, dataset.TypePUP: 0.35, dataset.TypeAdware: 0.30,
		dataset.TypeTrojan: 0.20, dataset.TypeUndefined: 0.33,
		dataset.TypeSpyware: 0.40, dataset.TypeRansomware: 0.25,
	}[typ]
	pool := w.malSigners
	if stats.Bernoulli(rng, commonShare) {
		pool = w.commonSigners
	}
	// Restrict each type to a deterministic subset of the pool so
	// per-type signer counts differ (Table VII) while still overlapping
	// across types.
	subsetPct := map[dataset.MalwareType]int{
		dataset.TypeTrojan: 35, dataset.TypeDropper: 20, dataset.TypeRansomware: 3,
		dataset.TypeBanker: 2, dataset.TypeBot: 3, dataset.TypeWorm: 2,
		dataset.TypeSpyware: 2, dataset.TypeFakeAV: 3, dataset.TypeAdware: 40,
		dataset.TypePUP: 50, dataset.TypeUndefined: 70,
	}[typ]
	if subsetPct == 0 {
		subsetPct = 10
	}
	var subset []signerInfo
	for _, s := range pool {
		if stableIndex(s.Name+typ.String(), 100) < subsetPct {
			subset = append(subset, s)
		}
	}
	if len(subset) == 0 {
		// Tiny pools can leave a rare type with an empty subset; fall
		// back to a small fixed slice so rare types keep small rosters.
		n := 3
		if n > len(pool) {
			n = len(pool)
		}
		subset = pool[:n]
	}
	return zipfPick(subset, rng)
}

// signerForBenign draws a signer for a benign (or latent-benign) file.
func (w *World) signerForBenign(rng *rand.Rand) signerInfo {
	if stats.Bernoulli(rng, 0.10) {
		return zipfPick(w.commonSigners, rng)
	}
	return zipfPick(w.benignSigners, rng)
}

// packerFor draws a packer name for a file that is packed.
func (w *World) packerFor(malicious bool, rng *rand.Rand) string {
	if malicious {
		if stats.Bernoulli(rng, 0.12) {
			return zipfPick(w.packersMal, rng)
		}
		return zipfPick(w.packersCommon, rng)
	}
	if stats.Bernoulli(rng, 0.12) {
		return zipfPick(w.packersBenign, rng)
	}
	return zipfPick(w.packersCommon, rng)
}

// zipfPick selects an element with rank-weighted (1.5-exponent zipf)
// probability, so every pool has heavy hitters.
func zipfPick[T any](pool []T, rng *rand.Rand) T {
	if len(pool) == 1 {
		return pool[0]
	}
	z, err := stats.NewZipf(rng, 1.5, uint64(len(pool)))
	if err != nil {
		return pool[0]
	}
	return pool[int(z.Draw())-1]
}

// stableIndex hashes s onto [0, n).
func stableIndex(s string, n int) int {
	if n <= 0 {
		return 0
	}
	h := fnv.New32a()
	_, _ = h.Write([]byte(s))
	return int(h.Sum32() % uint32(n))
}
