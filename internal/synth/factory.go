package synth

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/avsim"
	"repro/internal/dataset"
	"repro/internal/stats"
)

// fileRecord is a generated file: its observable metadata, its scan
// service profile, and the generator-side plan that produced it.
type fileRecord struct {
	meta   *dataset.FileMeta
	sample *avsim.Sample
	plan   classPlan
	// typ is the planned behaviour type for (likely-)malicious files and
	// the latent type for latent-malicious unknown files.
	typ dataset.MalwareType
	// latentMal marks unknown files whose true (never-labeled) nature is
	// malicious; it drives their feature generation and follow-up
	// behaviour.
	latentMal bool
	// budget is the number of additional downloads planned for the file
	// (planned prevalence minus one).
	budget int
	domain *domainInfo
	url    string
}

// prevalencePlan parameterizes per-class planned-prevalence power laws.
// Known benign files reach the highest prevalences, unknown files sit in
// the extreme long tail (Figure 2).
var prevalencePlans = map[classPlan]struct {
	Alpha float64
	Max   int
}{
	planBenign:          {Alpha: 2.2, Max: 400},
	planLikelyBenign:    {Alpha: 2.6, Max: 120},
	planMalicious:       {Alpha: 2.8, Max: 150},
	planLikelyMalicious: {Alpha: 3.0, Max: 80},
	planUnknown:         {Alpha: 3.6, Max: 40},
}

// overallTypeWeights is Table II's behaviour-type breakdown, in
// typeWeightOrder, used for latent unknown types.
var overallTypeWeights = []float64{22.7, 16.8, 11.3, 15.4, 0.5, 0.3, 0.9, 0.6, 0.1, 0.04, 31.3}

// latentMaliciousShare is the fraction of unknown files whose latent
// nature is malicious; the paper's rule classifier labels most matched
// unknowns malicious.
const latentMaliciousShare = 0.55

// benignSketchyShare is the fraction of genuinely benign files whose
// features look malicious (bundleware signed by grayware publishers,
// served from download portals); this is the whitelist-noise population
// behind the paper's observation that 33% of "benign" test samples came
// from malware processes or malicious URLs.
const benignSketchyShare = 0.008

// benignWhitelistShare is the fraction of benign files present on the
// commercial whitelist (the rest are labeled benign via clean scans).
const benignWhitelistShare = 0.45

// fileFactory creates fileRecords.
type fileFactory struct {
	w       *World
	rng     *rand.Rand
	counter int

	prevSamplers map[classPlan]*stats.PowerLawInt
	latentTypes  *stats.Categorical
	whitelist    []dataset.FileHash
}

func newFileFactory(w *World, rng *rand.Rand) (*fileFactory, error) {
	f := &fileFactory{
		w:            w,
		rng:          rng,
		prevSamplers: make(map[classPlan]*stats.PowerLawInt),
	}
	for plan, p := range prevalencePlans {
		max := p.Max
		// Scale the tail down with the dataset so a single popular file
		// cannot consume a disproportionate share of a small trace.
		if scaled := int(float64(p.Max) * w.cfg.Scale * 8); scaled < max {
			max = scaled
		}
		if max < 25 {
			max = 25
		}
		sampler, err := stats.NewPowerLawInt(rng, p.Alpha, max)
		if err != nil {
			return nil, fmt.Errorf("synth: prevalence sampler: %w", err)
		}
		f.prevSamplers[plan] = sampler
	}
	lt, err := stats.NewCategorical(rng, overallTypeWeights)
	if err != nil {
		return nil, fmt.Errorf("synth: latent type sampler: %w", err)
	}
	f.latentTypes = lt
	return f, nil
}

var fileNameStems = []string{
	"setup", "installer", "update", "player", "codec", "download",
	"flashplayer", "converter", "toolbar", "game", "crack", "keygen",
	"viewer", "manager", "optimizer", "driver", "plugin", "reader",
}

// newFile creates a file of the planned class. typ is required for
// (likely-)malicious plans and ignored otherwise; viaBrowser biases the
// signing rate (Table VI's "From Browsers" column); firstSeen anchors
// the scan-history timeline.
func (f *fileFactory) newFile(plan classPlan, typ dataset.MalwareType, viaBrowser bool, firstSeen time.Time) *fileRecord {
	f.counter++
	hash := dataset.FileHash(fmt.Sprintf("file-%08d", f.counter))
	rec := &fileRecord{plan: plan, typ: typ}

	latentMal := false
	if plan == planUnknown {
		latentMal = stats.Bernoulli(f.rng, f.w.cfg.Tuning.latentMaliciousShareOrDefault())
		rec.latentMal = latentMal
		if latentMal {
			rec.typ = typeWeightOrder[f.latentTypes.Draw()]
		}
	}
	sketchyBenign := (plan == planBenign || plan == planLikelyBenign) &&
		stats.Bernoulli(f.rng, benignSketchyShare)

	meta := &dataset.FileMeta{
		Hash: hash,
		Size: stats.LogNormalInt(f.rng, 13.3, 1.6, 8_192, 900_000_000),
		Path: fmt.Sprintf("C:/Users/user/Downloads/%s_%d.exe",
			fileNameStems[f.rng.Intn(len(fileNameStems))], f.counter),
	}

	// Signing.
	rate := f.signingRate(plan, rec.typ, latentMal, viaBrowser)
	if stats.Bernoulli(f.rng, rate) {
		var si signerInfo
		switch {
		case plan == planMalicious || plan == planLikelyMalicious:
			si = f.w.signerForMalicious(rec.typ, f.rng)
		case latentMal:
			si = f.w.signerForMalicious(rec.typ, f.rng)
		case sketchyBenign:
			si = zipfPick(f.w.commonSigners, f.rng)
		default:
			si = f.w.signerForBenign(f.rng)
		}
		meta.Signer, meta.CA = si.Name, si.CA
	}

	// Packing.
	packRate, maliciousPacking := packedRateUnknown, latentMal
	switch plan {
	case planBenign, planLikelyBenign:
		packRate, maliciousPacking = packedRateBenign, false
	case planMalicious, planLikelyMalicious:
		packRate, maliciousPacking = packedRateMalicious, true
	}
	if stats.Bernoulli(f.rng, packRate) {
		meta.Packer = f.w.packerFor(maliciousPacking, f.rng)
	}
	rec.meta = meta

	// Home domain and URL.
	kinds := domainsForClass(plan, rec.typ, latentMal)
	if sketchyBenign {
		kinds = unknownMalDomainKinds
	}
	rec.domain = f.w.domains.pick(kinds)
	rec.url = fmt.Sprintf("http://%s/dl/%s_%d.exe", rec.domain.Name,
		fileNameStems[stableIndex(string(hash), len(fileNameStems))], f.counter)

	// Scan-service profile.
	rec.sample = f.buildSample(hash, plan, rec.typ, firstSeen)
	if plan == planBenign && stats.Bernoulli(f.rng, benignWhitelistShare) {
		f.whitelist = append(f.whitelist, hash)
	}

	// Planned prevalence.
	rec.budget = f.prevSamplers[plan].Draw() - 1
	return rec
}

// buildSample constructs the avsim profile that realizes the planned
// ground-truth outcome.
func (f *fileFactory) buildSample(hash dataset.FileHash, plan classPlan, typ dataset.MalwareType, firstSeen time.Time) *avsim.Sample {
	day := 24 * time.Hour
	switch plan {
	case planBenign:
		return &avsim.Sample{
			Hash:      hash,
			InCorpus:  true,
			FirstScan: firstSeen.Add(-time.Duration(30+f.rng.Intn(370)) * day),
			LastScan:  firstSeen.Add(2*365*day + 60*day),
		}
	case planLikelyBenign:
		// First submitted only days before the two-year rescan, so the
		// scan spread stays under 14 days.
		first := firstSeen.Add(2*365*day - time.Duration(1+f.rng.Intn(10))*day)
		return &avsim.Sample{
			Hash:      hash,
			InCorpus:  true,
			FirstScan: first,
			LastScan:  first.Add(400 * day),
		}
	case planMalicious:
		return &avsim.Sample{
			Hash:          hash,
			InCorpus:      true,
			FirstScan:     firstSeen.Add(time.Duration(f.rng.Intn(45)) * day),
			LastScan:      firstSeen.Add(2 * 365 * day),
			TrueMalicious: true,
			Type:          typ,
			Family:        f.familyIfVisible(typ),
			FamilyVisible: true,
			Difficulty:    f.rng.Float64() * 0.45,
		}
	case planLikelyMalicious:
		return &avsim.Sample{
			Hash:          hash,
			InCorpus:      true,
			FirstScan:     firstSeen.Add(time.Duration(f.rng.Intn(60)) * day),
			LastScan:      firstSeen.Add(2 * 365 * day),
			TrueMalicious: true,
			TrustedBlind:  true,
			Type:          typ,
			Difficulty:    f.rng.Float64() * 0.3,
		}
	default: // planUnknown: never submitted anywhere.
		return &avsim.Sample{Hash: hash}
	}
}

// familyIfVisible returns a family for the sample or "" — AVclass
// derives no family for 58% of the paper's malicious samples, which we
// model as families invisible in the labels.
func (f *fileFactory) familyIfVisible(typ dataset.MalwareType) string {
	if typ == dataset.TypeUndefined {
		return ""
	}
	if !stats.Bernoulli(f.rng, 0.48) {
		return ""
	}
	return f.w.familyFor(typ, f.rng)
}

// signingRate returns the probability the new file carries a signature.
func (f *fileFactory) signingRate(plan classPlan, typ dataset.MalwareType, latentMal, viaBrowser bool) float64 {
	pick := func(r signingRate) float64 {
		if viaBrowser {
			return r.Browser
		}
		return r.Other
	}
	switch plan {
	case planBenign, planLikelyBenign:
		return pick(signingRateBenign)
	case planMalicious, planLikelyMalicious:
		return pick(signingRates[typ])
	default:
		if latentMal {
			// Latent malware signs like its type, damped toward the
			// unknown-population average (Table VI: unknown 38.4%).
			return 0.60 * pick(signingRates[typ])
		}
		return pick(signingRateUnknown)
	}
}
