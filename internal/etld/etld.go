// Package etld extracts effective second-level domains (e2LDs) from
// hostnames and URLs, mirroring the domain grouping the paper applies to
// download URLs ("effective second-level domains (e2LDs)").
//
// A full public-suffix list is unnecessary for the synthetic corpus; the
// package embeds the multi-label suffixes that actually occur in the
// paper's tables (e.g. com.br, co.uk, co.vu) plus the common generic and
// country-code TLDs, and falls back to the rightmost two labels
// otherwise, which matches the e2LD definition for single-label suffixes.
package etld

import (
	"fmt"
	"net/url"
	"strings"
)

// multiLabelSuffixes lists public suffixes that span two labels. Keys are
// the suffix without a leading dot.
var multiLabelSuffixes = map[string]bool{
	"com.br": true, "net.br": true, "org.br": true, "gov.br": true,
	"co.uk": true, "org.uk": true, "ac.uk": true, "gov.uk": true, "me.uk": true,
	"co.jp": true, "ne.jp": true, "or.jp": true, "ac.jp": true, "go.jp": true,
	"co.kr": true, "or.kr": true, "re.kr": true,
	"com.cn": true, "net.cn": true, "org.cn": true, "gov.cn": true,
	"com.au": true, "net.au": true, "org.au": true,
	"co.in": true, "net.in": true, "org.in": true, "gen.in": true,
	"com.mx": true, "com.ar": true, "com.tr": true, "com.tw": true,
	"co.za": true, "co.nz": true, "co.il": true, "co.th": true,
	"com.sg": true, "com.my": true, "com.hk": true, "com.ph": true,
	"com.vn": true, "com.ua": true, "com.pl": true, "com.ru": true,
	"co.vu": true, "com.vu": true,
	"co.id": true, "web.id": true,
}

// Domain returns the effective second-level domain of host. The host may
// include a port, which is stripped. It returns an error for empty hosts,
// IP addresses, and single-label hosts (which have no registrable e2LD).
func Domain(host string) (string, error) {
	h := strings.ToLower(strings.TrimSuffix(strings.TrimSpace(host), "."))
	if i := strings.LastIndexByte(h, ':'); i >= 0 && !strings.Contains(h, "]") {
		// Strip a port unless this is a bracketed IPv6 literal.
		if _, err := parsePort(h[i+1:]); err == nil {
			h = h[:i]
		}
	}
	if h == "" {
		return "", fmt.Errorf("etld: empty host")
	}
	if isIPLike(h) {
		return "", fmt.Errorf("etld: host %q is an IP address", host)
	}
	labels := strings.Split(h, ".")
	if len(labels) < 2 {
		return "", fmt.Errorf("etld: host %q has no registrable domain", host)
	}
	for _, l := range labels {
		if l == "" {
			return "", fmt.Errorf("etld: host %q has an empty label", host)
		}
	}
	// Check for a two-label public suffix; the e2LD then spans three
	// labels (example.com.br).
	if len(labels) >= 3 {
		suffix := labels[len(labels)-2] + "." + labels[len(labels)-1]
		if multiLabelSuffixes[suffix] {
			return strings.Join(labels[len(labels)-3:], "."), nil
		}
	}
	if len(labels) == 2 && multiLabelSuffixes[h] {
		return "", fmt.Errorf("etld: host %q is a bare public suffix", host)
	}
	return strings.Join(labels[len(labels)-2:], "."), nil
}

// FromURL extracts the e2LD of the host component of rawURL. A scheme is
// optional; bare hosts are accepted.
func FromURL(rawURL string) (string, error) {
	s := strings.TrimSpace(rawURL)
	if s == "" {
		return "", fmt.Errorf("etld: empty url")
	}
	if !strings.Contains(s, "://") {
		s = "http://" + s
	}
	u, err := url.Parse(s)
	if err != nil {
		return "", fmt.Errorf("etld: parse url %q: %w", rawURL, err)
	}
	if u.Host == "" {
		return "", fmt.Errorf("etld: url %q has no host", rawURL)
	}
	return Domain(u.Host)
}

func parsePort(s string) (int, error) {
	if s == "" {
		return 0, fmt.Errorf("empty port")
	}
	n := 0
	for _, c := range s {
		if c < '0' || c > '9' {
			return 0, fmt.Errorf("non-numeric port")
		}
		n = n*10 + int(c-'0')
		if n > 65535 {
			return 0, fmt.Errorf("port out of range")
		}
	}
	return n, nil
}

func isIPLike(h string) bool {
	if strings.HasPrefix(h, "[") || strings.Contains(h, ":") {
		return true // IPv6 literal
	}
	dots := 0
	digitsOnly := true
	for _, c := range h {
		switch {
		case c == '.':
			dots++
		case c < '0' || c > '9':
			digitsOnly = false
		}
	}
	return digitsOnly && dots == 3
}
