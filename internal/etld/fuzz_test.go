package etld

import (
	"strings"
	"testing"
)

// FuzzFromURL asserts the parser never panics and that any returned
// e2LD is a non-empty suffix of some label sequence with at least one
// dot.
func FuzzFromURL(f *testing.F) {
	for _, seed := range []string{
		"http://dl.softonic.com/file.exe",
		"softonic.com.br",
		"http://192.0.2.1/x",
		"https://[::1]:8080/y",
		"http://a..b.com",
		"ftp://x.co.uk:21/z",
		"http://", "", "://", "com", "co.vu",
		"http://example.com:99999/",
		strings.Repeat("a.", 100) + "com",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, raw string) {
		d, err := FromURL(raw)
		if err != nil {
			return
		}
		if d == "" {
			t.Fatalf("FromURL(%q) returned empty domain without error", raw)
		}
		if !strings.Contains(d, ".") {
			t.Fatalf("FromURL(%q) = %q lacks a dot", raw, d)
		}
		if strings.HasPrefix(d, ".") || strings.HasSuffix(d, ".") {
			t.Fatalf("FromURL(%q) = %q has dangling dot", raw, d)
		}
		// Idempotence: the e2LD of an e2LD is itself.
		d2, err := Domain(d)
		if err != nil || d2 != d {
			t.Fatalf("Domain(%q) = (%q, %v), want idempotent", d, d2, err)
		}
	})
}
