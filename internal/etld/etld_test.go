package etld

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestDomain(t *testing.T) {
	tests := []struct {
		host string
		want string
	}{
		{"softonic.com", "softonic.com"},
		{"www.softonic.com", "softonic.com"},
		{"dl.cdn.softonic.com", "softonic.com"},
		{"nzs.com.br", "nzs.com.br"},
		{"files.nzs.com.br", "nzs.com.br"},
		{"softonic.com.br", "softonic.com.br"},
		{"example.co.uk", "example.co.uk"},
		{"a.b.example.co.uk", "example.co.uk"},
		{"ge.tt", "ge.tt"},
		{"x.co.vu", "x.co.vu"},
		{"wipmsc.ru", "wipmsc.ru"},
		{"5k-stopadware2014.in", "5k-stopadware2014.in"},
		{"SOFTONIC.COM", "softonic.com"},
		{"softonic.com.", "softonic.com"},
		{"softonic.com:8080", "softonic.com"},
	}
	for _, tt := range tests {
		got, err := Domain(tt.host)
		if err != nil {
			t.Errorf("Domain(%q) error: %v", tt.host, err)
			continue
		}
		if got != tt.want {
			t.Errorf("Domain(%q) = %q, want %q", tt.host, got, tt.want)
		}
	}
}

func TestDomainErrors(t *testing.T) {
	for _, host := range []string{
		"", "localhost", "192.168.1.1", "com", "com.br",
		"::1", "[fe80::1]:80", "a..b.com",
	} {
		if got, err := Domain(host); err == nil {
			t.Errorf("Domain(%q) = %q, want error", host, got)
		}
	}
}

func TestFromURL(t *testing.T) {
	tests := []struct {
		url  string
		want string
	}{
		{"http://dl.softonic.com/path/file.exe", "softonic.com"},
		{"https://cdn.mediafire.com/x?y=1", "mediafire.com"},
		{"inbox.com/download/setup.exe", "inbox.com"},
		{"http://files.nzs.com.br:8080/a.exe", "nzs.com.br"},
	}
	for _, tt := range tests {
		got, err := FromURL(tt.url)
		if err != nil {
			t.Errorf("FromURL(%q) error: %v", tt.url, err)
			continue
		}
		if got != tt.want {
			t.Errorf("FromURL(%q) = %q, want %q", tt.url, got, tt.want)
		}
	}
}

func TestFromURLErrors(t *testing.T) {
	for _, u := range []string{"", "http://", "http://192.0.2.7/x.exe"} {
		if got, err := FromURL(u); err == nil {
			t.Errorf("FromURL(%q) = %q, want error", u, got)
		}
	}
}

// Property: the e2LD is always a suffix of the input host and contains at
// least one dot.
func TestDomainSuffixProperty(t *testing.T) {
	f := func(sub, name uint16) bool {
		host := hostFrom(sub, name)
		d, err := Domain(host)
		if err != nil {
			return true // malformed synthesized host; fine
		}
		return strings.HasSuffix(host, d) && strings.Contains(d, ".")
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Domain is idempotent — extracting the e2LD of an e2LD returns
// the same value.
func TestDomainIdempotentProperty(t *testing.T) {
	f := func(sub, name uint16) bool {
		host := hostFrom(sub, name)
		d, err := Domain(host)
		if err != nil {
			return true
		}
		d2, err := Domain(d)
		if err != nil {
			return false
		}
		return d == d2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func hostFrom(sub, name uint16) string {
	subs := []string{"", "www.", "dl.cdn.", "a.b.c."}
	names := []string{"example.com", "nzs.com.br", "site.co.uk", "ge.tt", "files.net"}
	return subs[int(sub)%len(subs)] + names[int(name)%len(names)]
}
