package serve

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/classify"
	"repro/internal/dataset"
	"repro/internal/features"
)

// Errors the admission path returns; the HTTP layer maps them to 429,
// 503 and (when a journal is attached) the journal-and-defer path.
var (
	// ErrOverloaded means the bounded ingest queue is full; callers
	// should back off and retry (the Client does, with jitter).
	ErrOverloaded = errors.New("serve: ingest queue full")
	// ErrDraining means the engine is shutting down and no longer
	// admits work.
	ErrDraining = errors.New("serve: engine draining")
	// ErrDeadlineExceeded means the batch's deadline expired before
	// every event could be classified; expired work was shed (counted in
	// Metrics.ShedExpired) instead of occupying workers.
	ErrDeadlineExceeded = errors.New("serve: deadline exceeded before classification")
)

// EngineConfig sizes the worker pool. The zero value selects defaults.
type EngineConfig struct {
	// Shards is the number of worker goroutines, each owning one queue
	// shard; events route to shards by file hash, so all in-flight
	// events of one file classify on the same worker. Default 4.
	Shards int
	// QueueSize bounds the total number of admitted-but-unfinished
	// events across all shards; admission beyond it fails with
	// ErrOverloaded (backpressure). Default 1024.
	QueueSize int
}

func (c EngineConfig) shardsOrDefault() int {
	if c.Shards > 0 {
		return c.Shards
	}
	return 4
}

func (c EngineConfig) queueOrDefault() int {
	if c.QueueSize > 0 {
		return c.QueueSize
	}
	return 1024
}

// VerdictRecord is the wire form of one served verdict, emitted as one
// line-JSON record per ingested event, in input order. Generation pins
// the verdict to exactly one rule-set generation, so every response is
// attributable even across hot reloads.
type VerdictRecord struct {
	Type       string `json:"type"` // always "verdict"
	File       string `json:"file"`
	Verdict    string `json:"verdict"`
	Generation uint64 `json:"gen"`
	Rules      []int  `json:"rules,omitempty"`
	Error      string `json:"error,omitempty"`
}

// Key renders the generation-independent part of the record — the part
// that must match offline classification byte-for-byte regardless of
// how many hot reloads happened mid-stream. The rendering is pinned to
// fmt.Sprintf("%s %s %v", File, Verdict, Rules) by TestVerdictKey.
func (v VerdictRecord) Key() string {
	b := make([]byte, 0, len(v.File)+len(v.Verdict)+4+4*len(v.Rules))
	b = append(b, v.File...)
	b = append(b, ' ')
	b = append(b, v.Verdict...)
	b = append(b, ' ', '[')
	for i, r := range v.Rules {
		if i > 0 {
			b = append(b, ' ')
		}
		b = strconv.AppendInt(b, int64(r), 10)
	}
	b = append(b, ']')
	return string(b)
}

// ruleGen is one immutable rule-set generation. The engine swaps whole
// generations atomically; workers load the pointer once per sub-batch,
// so an event classifies under exactly one generation.
type ruleGen struct {
	clf *classify.Classifier
	gen uint64
}

// shardBatch is one shard's slice of an admitted batch: the indexes of
// the events routed to this shard, sharing the batch's event and result
// arrays. One frame per (batch, shard) replaces one heap-allocated job
// and one channel send per event; frames recycle through framePool.
type shardBatch struct {
	events   []dataset.DownloadEvent
	results  []VerdictRecord
	idx      []int32
	ctx      context.Context
	enqueued time.Time
	done     *sync.WaitGroup
	shed     *atomic.Int64
}

var framePool = sync.Pool{New: func() any { return new(shardBatch) }}

// memoKey identifies a verdict-determining input: the feature vector is
// a pure function of (file, process, domain) against the immutable
// store and oracle, so two events agreeing on these three fields get
// identical verdicts under the same rule generation. File alone decides
// the shard (FNV affinity), so every event of one file — and therefore
// every memo reader/writer of one key — runs on one worker.
type memoKey struct {
	file    dataset.FileHash
	process dataset.FileHash
	domain  string
}

// memoVal caches the classification outcome for a key under one rule
// generation. rules is shared across hits — verdict attributions are
// immutable once produced.
type memoVal struct {
	verdict classify.Verdict
	rules   []int
}

// memoMaxEntries caps each worker's memo; past it the map resets
// wholesale (repeat downloads re-warm it in one miss each).
const memoMaxEntries = 1 << 16

// workerState is the per-worker (hence single-goroutine) memo: repeat
// downloads of a file skip extraction and matching entirely. gen pins
// the entries to one rule-set generation; a hot reload naturally
// invalidates everything on the next sub-batch.
type workerState struct {
	memo map[memoKey]memoVal
	gen  uint64
}

// Engine is the classification core: bounded sharded queues feeding a
// worker pool that extracts features and classifies against the current
// rule-set generation.
type Engine struct {
	ex        *features.Extractor
	metrics   *Metrics
	shards    []chan *shardBatch
	capacity  int64
	inflight  atomic.Int64
	closed    atomic.Bool
	closeOnce sync.Once
	wg        sync.WaitGroup

	// drainMu/drainCond signal Close when inflight reaches zero, so the
	// drain is a condition wait instead of a sleep poll.
	drainMu   sync.Mutex
	drainCond *sync.Cond

	swapMu sync.Mutex
	rules  atomic.Pointer[ruleGen]

	// tap, when set, observes every fully classified batch off the
	// response path (one atomic load per batch when unset).
	tap atomic.Pointer[BatchTap]

	// degraded holds the reason the last rule update was refused (nil =
	// healthy); the old generation keeps serving throughout.
	degraded atomic.Pointer[string]
}

// NewEngine builds and starts an engine serving clf (generation 1).
// The extractor provides the file/process metadata and Alexa-rank
// context that Table XV features need.
func NewEngine(ex *features.Extractor, clf *classify.Classifier, cfg EngineConfig, m *Metrics) (*Engine, error) {
	if ex == nil {
		return nil, fmt.Errorf("serve: nil extractor")
	}
	if clf == nil {
		return nil, fmt.Errorf("serve: nil classifier")
	}
	if m == nil {
		m = &Metrics{}
	}
	e := &Engine{
		ex:       ex,
		metrics:  m,
		capacity: int64(cfg.queueOrDefault()),
	}
	e.drainCond = sync.NewCond(&e.drainMu)
	e.rules.Store(&ruleGen{clf: clf, gen: 1})
	m.Generation.Store(1)
	n := cfg.shardsOrDefault()
	e.shards = make([]chan *shardBatch, n)
	for i := range e.shards {
		// Each shard can hold the whole admitted window, so a reserved
		// frame's enqueue never blocks and drain cannot deadlock.
		e.shards[i] = make(chan *shardBatch, cfg.queueOrDefault())
		e.wg.Add(1)
		go e.worker(e.shards[i])
	}
	return e, nil
}

// Metrics returns the engine's metrics sink.
func (e *Engine) Metrics() *Metrics { return e.metrics }

// Generation returns the current rule-set generation.
func (e *Engine) Generation() uint64 { return e.rules.Load().gen }

// RuleCount returns the number of rules in the current generation.
func (e *Engine) RuleCount() int { return len(e.rules.Load().clf.Rules) }

// QueueDepth returns the number of admitted-but-unfinished events.
func (e *Engine) QueueDepth() int { return int(e.inflight.Load()) }

// Capacity returns the admission window size; QueueDepth/Capacity is
// the load fraction the graduated admission ladder keys on.
func (e *Engine) Capacity() int { return int(e.capacity) }

// MarkDegraded records that the serving rule set could not be updated
// (e.g. a reload failed validation): the engine keeps serving the last
// good generation and /healthz reports degraded instead of flapping.
// A subsequent successful Swap clears it.
func (e *Engine) MarkDegraded(reason string) {
	e.degraded.Store(&reason)
	e.metrics.ReloadFailures.Add(1)
}

// DegradedReason returns the most recent degradation reason, or ""
// when the engine is healthy.
func (e *Engine) DegradedReason() string {
	if r := e.degraded.Load(); r != nil {
		return *r
	}
	return ""
}

// Swap atomically replaces the served rule set and returns the new
// generation. In-flight events finish under the generation they loaded;
// events admitted after Swap returns classify under the new one. The
// bumped generation also invalidates every worker's verdict memo.
func (e *Engine) Swap(clf *classify.Classifier) (uint64, error) {
	if clf == nil {
		return 0, fmt.Errorf("serve: swap: nil classifier")
	}
	e.swapMu.Lock()
	defer e.swapMu.Unlock()
	next := &ruleGen{clf: clf, gen: e.rules.Load().gen + 1}
	e.rules.Store(next)
	e.degraded.Store(nil)
	e.metrics.Reloads.Add(1)
	e.metrics.Generation.Store(next.gen)
	return next.gen, nil
}

// BatchTap observes a fully classified batch after its verdicts are
// complete and before ClassifyBatch returns them. The slices belong to
// the caller of ClassifyBatch: a tap must copy anything it keeps and
// must not block — shadow evaluation hangs work off a bounded queue and
// drops on overflow rather than stalling the serving path.
type BatchTap func(events []dataset.DownloadEvent, verdicts []VerdictRecord)

// SetBatchTap installs (or, with nil, removes) the engine's batch tap.
// The tap sees only batches in which every event was classified —
// shed or partially shed batches are not observable ground truth.
func (e *Engine) SetBatchTap(t BatchTap) {
	if t == nil {
		e.tap.Store(nil)
		return
	}
	e.tap.Store(&t)
}

// shardOf routes a file hash to a shard: FNV-1a over the digest's tail.
// Any deterministic map preserves the per-file affinity the verdict
// memo relies on; hashing only the last 16 bytes (64 bits of entropy in
// a hex digest) keeps the dependent-multiply chain off the per-event
// hot path without losing distribution.
func shardOf(h dataset.FileHash, n int) int {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	s := string(h)
	if len(s) > 16 {
		s = s[len(s)-16:]
	}
	x := uint32(offset32)
	for i := 0; i < len(s); i++ {
		x ^= uint32(s[i])
		x *= prime32
	}
	return int(x % uint32(n))
}

// ClassifyBatch admits a batch of events, classifies each on its shard,
// and returns one VerdictRecord per event in input order. The whole
// batch is admitted or rejected atomically: on ErrOverloaded nothing
// was enqueued and the caller should shed, defer or retry.
//
// ctx's deadline propagates into the shard queues: a batch whose
// deadline is already past is shed at admission, and events still
// queued when it expires are shed by the workers (ErrDeadlineExceeded,
// partial results) rather than classified into the void.
func (e *Engine) ClassifyBatch(ctx context.Context, events []dataset.DownloadEvent) ([]VerdictRecord, error) {
	if len(events) == 0 {
		return nil, nil
	}
	n := int64(len(events))
	if ctx == nil {
		ctx = context.Background()
	}
	if ctx.Err() != nil {
		// Dead on arrival: shed the whole batch without touching queues.
		e.metrics.ShedExpired.Add(uint64(n))
		return nil, ErrDeadlineExceeded
	}
	// Reserve capacity before touching the queues so overflow is an
	// all-or-nothing admission decision.
	for {
		cur := e.inflight.Load()
		if cur+n > e.capacity {
			return nil, ErrOverloaded
		}
		if e.inflight.CompareAndSwap(cur, cur+n) {
			break
		}
	}
	if e.closed.Load() {
		e.decInflight(n)
		return nil, ErrDraining
	}
	e.metrics.EventsIn.Add(uint64(n))
	results := make([]VerdictRecord, len(events))
	var done sync.WaitGroup
	var shed atomic.Int64
	done.Add(len(events))
	now := time.Now()
	ns := len(e.shards)
	// Group the batch by shard: one pooled frame and one channel send
	// per shard touched, instead of one allocation and send per event.
	frames := make([]*shardBatch, ns)
	for i := range events {
		s := shardOf(events[i].File, ns)
		f := frames[s]
		if f == nil {
			f = framePool.Get().(*shardBatch)
			f.events, f.results = events, results
			f.ctx, f.enqueued = ctx, now
			f.done, f.shed = &done, &shed
			frames[s] = f
		}
		f.idx = append(f.idx, int32(i))
	}
	for s, f := range frames {
		if f != nil {
			e.shards[s] <- f
		}
	}
	done.Wait()
	if shed.Load() > 0 {
		return results, ErrDeadlineExceeded
	}
	if t := e.tap.Load(); t != nil {
		(*t)(events, results)
	}
	return results, nil
}

// worker drains one shard until Close. The memo state is owned by this
// goroutine alone — shard affinity is what makes it race-free.
func (e *Engine) worker(ch chan *shardBatch) {
	defer e.wg.Done()
	ws := &workerState{memo: make(map[memoKey]memoVal)}
	for f := range ch {
		e.processFrame(f, ws)
	}
}

// frameTally accumulates one frame's metric deltas so the shared
// counters are touched once per sub-batch instead of once per event.
type frameTally struct {
	shed          int
	extractErrors int
	memoHits      int
	verdicts      [4]int
}

// processFrame classifies one shard's slice of a batch under exactly
// one rule-set generation. Expired work is shed: if the admitting
// request's deadline passed while the frame sat in the queue, the
// worker spends no extraction or classification effort on it. Stage
// latency is sampled — the first memo-missing event of each frame is
// timed individually — so the histograms keep per-event semantics
// without three clock reads per event.
func (e *Engine) processFrame(f *shardBatch, ws *workerState) {
	var tally frameTally
	var extractDur, classifyDur time.Duration
	timed := false
	queueWait := time.Since(f.enqueued)

	if f.ctx != nil && f.ctx.Err() != nil {
		errStr := "shed: " + f.ctx.Err().Error()
		for _, i := range f.idx {
			f.results[i] = VerdictRecord{
				Type: "verdict", File: string(f.events[i].File), Error: errStr,
			}
		}
		tally.shed = len(f.idx)
	} else {
		rg := e.rules.Load()
		if ws.gen != rg.gen {
			// Hot reload: a new generation invalidates every memo entry.
			ws.memo = make(map[memoKey]memoVal)
			ws.gen = rg.gen
		}
		for _, i := range f.idx {
			ev := &f.events[i]
			rec := &f.results[i]
			rec.Type = "verdict"
			rec.File = string(ev.File)
			rec.Generation = rg.gen
			key := memoKey{file: ev.File, process: ev.Process, domain: ev.Domain}
			if mv, ok := ws.memo[key]; ok {
				tally.memoHits++
				tally.verdicts[mv.verdict]++
				rec.Verdict = mv.verdict.String()
				rec.Rules = mv.rules
				continue
			}
			var (
				vec features.Vector
				err error
				v   classify.Verdict
				mr  []int
			)
			if !timed {
				timed = true
				t0 := time.Now()
				vec, err = e.ex.Vector(ev)
				t1 := time.Now()
				extractDur = t1.Sub(t0)
				if err == nil {
					inst := features.Instance{Vector: vec, File: ev.File}
					v, mr = rg.clf.ClassifyOne(&inst)
					classifyDur = time.Since(t1)
				}
			} else {
				vec, err = e.ex.Vector(ev)
				if err == nil {
					inst := features.Instance{Vector: vec, File: ev.File}
					v, mr = rg.clf.ClassifyOne(&inst)
				}
			}
			if err != nil {
				tally.extractErrors++
				rec.Verdict = classify.VerdictNone.String()
				rec.Error = err.Error()
				continue
			}
			tally.verdicts[v]++
			rec.Verdict = v.String()
			rec.Rules = mr
			if len(ws.memo) >= memoMaxEntries {
				ws.memo = make(map[memoKey]memoVal)
			}
			ws.memo[key] = memoVal{verdict: v, rules: mr}
		}
	}

	// Fold the frame's tallies into the shared metrics before signaling
	// completion, so counters read after ClassifyBatch returns are
	// exact.
	m := e.metrics
	m.QueueWait.Observe(queueWait)
	if timed {
		m.Extract.Observe(extractDur)
		if classifyDur > 0 || tally.extractErrors == 0 {
			m.Classify.Observe(classifyDur)
		}
	}
	if tally.extractErrors > 0 {
		m.ExtractErrors.Add(uint64(tally.extractErrors))
	}
	if tally.memoHits > 0 {
		m.MemoHits.Add(uint64(tally.memoHits))
	}
	for v, c := range tally.verdicts {
		if c > 0 {
			m.verdicts[v].Add(uint64(c))
		}
	}
	n := len(f.idx)
	if tally.shed > 0 {
		m.ShedExpired.Add(uint64(tally.shed))
		f.shed.Add(int64(tally.shed))
	}
	done := f.done
	// Scrub and recycle the frame before signaling: after done.Add the
	// batch (and its arrays) may be long gone.
	f.events, f.results, f.ctx, f.done, f.shed = nil, nil, nil, nil, nil
	f.idx = f.idx[:0]
	framePool.Put(f)
	done.Add(-n)
	e.decInflight(int64(n))
}

// decInflight releases n admission slots and wakes a draining Close
// when the last one goes.
func (e *Engine) decInflight(n int64) {
	if e.inflight.Add(-n) == 0 && e.closed.Load() {
		e.drainMu.Lock()
		e.drainCond.Broadcast()
		e.drainMu.Unlock()
	}
}

// Close drains the engine: admission stops immediately, every admitted
// event still gets its verdict, and Close returns once the workers have
// exited. The drain waits on a condition variable signaled by the last
// in-flight decrement — no sleep polling. Idempotent; concurrent and
// repeat callers block until the first drain completes.
func (e *Engine) Close() {
	e.closed.Store(true)
	e.closeOnce.Do(func() {
		// Wait for in-flight work (admitted batches hold inflight > 0
		// until their last event is processed, and admission re-checks
		// closed after reserving, so no new sends can start once this
		// hits zero).
		e.drainMu.Lock()
		for e.inflight.Load() > 0 {
			e.drainCond.Wait()
		}
		e.drainMu.Unlock()
		for _, ch := range e.shards {
			close(ch)
		}
		e.wg.Wait()
	})
}
