package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/classify"
	"repro/internal/dataset"
	"repro/internal/features"
)

// Errors the admission path returns; the HTTP layer maps them to 429,
// 503 and (when a journal is attached) the journal-and-defer path.
var (
	// ErrOverloaded means the bounded ingest queue is full; callers
	// should back off and retry (the Client does, with jitter).
	ErrOverloaded = errors.New("serve: ingest queue full")
	// ErrDraining means the engine is shutting down and no longer
	// admits work.
	ErrDraining = errors.New("serve: engine draining")
	// ErrDeadlineExceeded means the batch's deadline expired before
	// every event could be classified; expired work was shed (counted in
	// Metrics.ShedExpired) instead of occupying workers.
	ErrDeadlineExceeded = errors.New("serve: deadline exceeded before classification")
)

// EngineConfig sizes the worker pool. The zero value selects defaults.
type EngineConfig struct {
	// Shards is the number of worker goroutines, each owning one queue
	// shard; events route to shards by file hash, so all in-flight
	// events of one file classify on the same worker. Default 4.
	Shards int
	// QueueSize bounds the total number of admitted-but-unfinished
	// events across all shards; admission beyond it fails with
	// ErrOverloaded (backpressure). Default 1024.
	QueueSize int
}

func (c EngineConfig) shardsOrDefault() int {
	if c.Shards > 0 {
		return c.Shards
	}
	return 4
}

func (c EngineConfig) queueOrDefault() int {
	if c.QueueSize > 0 {
		return c.QueueSize
	}
	return 1024
}

// VerdictRecord is the wire form of one served verdict, emitted as one
// line-JSON record per ingested event, in input order. Generation pins
// the verdict to exactly one rule-set generation, so every response is
// attributable even across hot reloads.
type VerdictRecord struct {
	Type       string `json:"type"` // always "verdict"
	File       string `json:"file"`
	Verdict    string `json:"verdict"`
	Generation uint64 `json:"gen"`
	Rules      []int  `json:"rules,omitempty"`
	Error      string `json:"error,omitempty"`
}

// Key renders the generation-independent part of the record — the part
// that must match offline classification byte-for-byte regardless of
// how many hot reloads happened mid-stream.
func (v VerdictRecord) Key() string {
	return fmt.Sprintf("%s %s %v", v.File, v.Verdict, v.Rules)
}

// ruleGen is one immutable rule-set generation. The engine swaps whole
// generations atomically; workers load the pointer once per event, so
// an event classifies under exactly one generation.
type ruleGen struct {
	clf *classify.Classifier
	gen uint64
}

// job carries one event through a shard queue to its response slot.
// ctx is the admitting request's context: a worker that dequeues a job
// whose deadline already expired sheds it (cheap constant-time check)
// instead of spending extraction/classification work on a response
// nobody is waiting for, and flags the batch via shed.
type job struct {
	ev       dataset.DownloadEvent
	ctx      context.Context
	enqueued time.Time
	out      *VerdictRecord
	done     *sync.WaitGroup
	shed     *atomic.Int64
}

// Engine is the classification core: bounded sharded queues feeding a
// worker pool that extracts features and classifies against the current
// rule-set generation.
type Engine struct {
	ex       *features.Extractor
	metrics  *Metrics
	shards   []chan *job
	capacity int64
	inflight atomic.Int64
	closed   atomic.Bool
	wg       sync.WaitGroup

	swapMu sync.Mutex
	rules  atomic.Pointer[ruleGen]

	// degraded holds the reason the last rule update was refused (nil =
	// healthy); the old generation keeps serving throughout.
	degraded atomic.Pointer[string]
}

// NewEngine builds and starts an engine serving clf (generation 1).
// The extractor provides the file/process metadata and Alexa-rank
// context that Table XV features need.
func NewEngine(ex *features.Extractor, clf *classify.Classifier, cfg EngineConfig, m *Metrics) (*Engine, error) {
	if ex == nil {
		return nil, fmt.Errorf("serve: nil extractor")
	}
	if clf == nil {
		return nil, fmt.Errorf("serve: nil classifier")
	}
	if m == nil {
		m = &Metrics{}
	}
	e := &Engine{
		ex:       ex,
		metrics:  m,
		capacity: int64(cfg.queueOrDefault()),
	}
	e.rules.Store(&ruleGen{clf: clf, gen: 1})
	m.Generation.Store(1)
	n := cfg.shardsOrDefault()
	e.shards = make([]chan *job, n)
	for i := range e.shards {
		// Each shard can hold the whole admitted window, so a reserved
		// job's enqueue never blocks and drain cannot deadlock.
		e.shards[i] = make(chan *job, cfg.queueOrDefault())
		e.wg.Add(1)
		go e.worker(e.shards[i])
	}
	return e, nil
}

// Metrics returns the engine's metrics sink.
func (e *Engine) Metrics() *Metrics { return e.metrics }

// Generation returns the current rule-set generation.
func (e *Engine) Generation() uint64 { return e.rules.Load().gen }

// RuleCount returns the number of rules in the current generation.
func (e *Engine) RuleCount() int { return len(e.rules.Load().clf.Rules) }

// QueueDepth returns the number of admitted-but-unfinished events.
func (e *Engine) QueueDepth() int { return int(e.inflight.Load()) }

// Capacity returns the admission window size; QueueDepth/Capacity is
// the load fraction the graduated admission ladder keys on.
func (e *Engine) Capacity() int { return int(e.capacity) }

// MarkDegraded records that the serving rule set could not be updated
// (e.g. a reload failed validation): the engine keeps serving the last
// good generation and /healthz reports degraded instead of flapping.
// A subsequent successful Swap clears it.
func (e *Engine) MarkDegraded(reason string) {
	e.degraded.Store(&reason)
	e.metrics.ReloadFailures.Add(1)
}

// DegradedReason returns the most recent degradation reason, or ""
// when the engine is healthy.
func (e *Engine) DegradedReason() string {
	if r := e.degraded.Load(); r != nil {
		return *r
	}
	return ""
}

// Swap atomically replaces the served rule set and returns the new
// generation. In-flight events finish under the generation they loaded;
// events admitted after Swap returns classify under the new one.
func (e *Engine) Swap(clf *classify.Classifier) (uint64, error) {
	if clf == nil {
		return 0, fmt.Errorf("serve: swap: nil classifier")
	}
	e.swapMu.Lock()
	defer e.swapMu.Unlock()
	next := &ruleGen{clf: clf, gen: e.rules.Load().gen + 1}
	e.rules.Store(next)
	e.degraded.Store(nil)
	e.metrics.Reloads.Add(1)
	e.metrics.Generation.Store(next.gen)
	return next.gen, nil
}

// shardOf routes a file hash to a shard (FNV-1a).
func shardOf(h dataset.FileHash, n int) int {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	x := uint32(offset32)
	for i := 0; i < len(h); i++ {
		x ^= uint32(h[i])
		x *= prime32
	}
	return int(x % uint32(n))
}

// ClassifyBatch admits a batch of events, classifies each on its shard,
// and returns one VerdictRecord per event in input order. The whole
// batch is admitted or rejected atomically: on ErrOverloaded nothing
// was enqueued and the caller should shed, defer or retry.
//
// ctx's deadline propagates into the shard queues: a batch whose
// deadline is already past is shed at admission, and events still
// queued when it expires are shed by the workers (ErrDeadlineExceeded,
// partial results) rather than classified into the void.
func (e *Engine) ClassifyBatch(ctx context.Context, events []dataset.DownloadEvent) ([]VerdictRecord, error) {
	if len(events) == 0 {
		return nil, nil
	}
	n := int64(len(events))
	if ctx == nil {
		ctx = context.Background()
	}
	if ctx.Err() != nil {
		// Dead on arrival: shed the whole batch without touching queues.
		e.metrics.ShedExpired.Add(uint64(n))
		return nil, ErrDeadlineExceeded
	}
	// Reserve capacity before touching the queues so overflow is an
	// all-or-nothing admission decision.
	for {
		cur := e.inflight.Load()
		if cur+n > e.capacity {
			return nil, ErrOverloaded
		}
		if e.inflight.CompareAndSwap(cur, cur+n) {
			break
		}
	}
	if e.closed.Load() {
		e.inflight.Add(-n)
		return nil, ErrDraining
	}
	e.metrics.EventsIn.Add(uint64(n))
	results := make([]VerdictRecord, len(events))
	var done sync.WaitGroup
	var shed atomic.Int64
	done.Add(len(events))
	now := time.Now()
	for i := range events {
		e.shards[shardOf(events[i].File, len(e.shards))] <- &job{
			ev: events[i], ctx: ctx, enqueued: now, out: &results[i],
			done: &done, shed: &shed,
		}
	}
	done.Wait()
	if shed.Load() > 0 {
		return results, ErrDeadlineExceeded
	}
	return results, nil
}

// worker drains one shard until Close.
func (e *Engine) worker(ch chan *job) {
	defer e.wg.Done()
	for j := range ch {
		e.process(j)
	}
}

// process classifies one event under exactly one rule-set generation.
// Expired work is shed: if the admitting request's deadline passed
// while the job sat in the queue, the worker spends no extraction or
// classification effort on it and just counts it.
func (e *Engine) process(j *job) {
	e.metrics.QueueWait.Observe(time.Since(j.enqueued))
	if j.ctx != nil && j.ctx.Err() != nil {
		*j.out = VerdictRecord{
			Type: "verdict", File: string(j.ev.File),
			Error: "shed: " + j.ctx.Err().Error(),
		}
		e.metrics.ShedExpired.Add(1)
		if j.shed != nil {
			j.shed.Add(1)
		}
		j.done.Done()
		e.inflight.Add(-1)
		return
	}
	rg := e.rules.Load()
	rec := VerdictRecord{Type: "verdict", File: string(j.ev.File), Generation: rg.gen}
	t0 := time.Now()
	vec, err := e.ex.Vector(&j.ev)
	e.metrics.Extract.Observe(time.Since(t0))
	if err != nil {
		e.metrics.ExtractErrors.Add(1)
		rec.Verdict = classify.VerdictNone.String()
		rec.Error = err.Error()
	} else {
		inst := features.Instance{Vector: vec, File: j.ev.File}
		t1 := time.Now()
		v, matched := rg.clf.ClassifyFile([]features.Instance{inst})
		e.metrics.Classify.Observe(time.Since(t1))
		e.metrics.CountVerdict(v)
		rec.Verdict = v.String()
		rec.Rules = matched
	}
	*j.out = rec
	j.done.Done()
	e.inflight.Add(-1)
}

// Close drains the engine: admission stops immediately, every admitted
// event still gets its verdict, and Close returns once the workers have
// exited. Safe to call once.
func (e *Engine) Close() {
	e.closed.Store(true)
	// Wait for in-flight work (admitted batches hold inflight > 0 until
	// their last event is processed, and admission re-checks closed
	// after reserving, so no new sends can start once this hits zero).
	for e.inflight.Load() > 0 {
		time.Sleep(100 * time.Microsecond)
	}
	for _, ch := range e.shards {
		close(ch)
	}
	e.wg.Wait()
}
