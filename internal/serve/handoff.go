package serve

import (
	"bytes"
	"fmt"
	"sort"

	"repro/internal/dataset"
	"repro/internal/export"
	"repro/internal/journal"
)

// Ledger handoff: the export/import plane that lets dedup state follow
// key ownership across cluster membership changes. A replica leaving
// the ring (or returning from a crash with history for ranges it no
// longer owns) exports its ledger as chunks of journal-framed records;
// the new owner imports them into its own journal, after which a
// retransmit of any migrated request ID is answered byte-identically
// from the importer's ledger instead of being silently re-classified —
// the exactly-once contract survives churn instead of quietly
// downgrading to at-least-once.
//
// The wire unit is the journal's own record format: each entry is a
// frame (journal.AppendFrame) of kind recResult (`id\n` + the exact
// response body served) or recAccept (`id\n` + the batch's event
// lines). Reusing the WAL encoding means (1) chunks inherit per-record
// CRC-32C corruption detection, (2) the importer can journal received
// entries verbatim, and (3) recovery after a crash mid-import replays
// them through the exact code path that replays native records.

// DefaultHandoffChunkBytes bounds one handoff chunk's payload when the
// caller passes no explicit budget: large enough to amortize per-chunk
// HTTP and fsync overhead, small enough that a retransmitted chunk
// (idempotent, but re-sent in full) stays cheap.
const DefaultHandoffChunkBytes = 256 << 10

// HandoffChunk is one slab of exported ledger state: Data holds
// journal-framed records (kind recResult / recAccept), self-delimiting
// and CRC-checked, so chunks can be concatenated, split and
// retransmitted freely. Seq orders chunks within one export; Entries
// counts the records inside.
type HandoffChunk struct {
	Seq     int
	Entries int
	Data    []byte
}

// HandoffImportStats reports what one ImportChunk call did.
type HandoffImportStats struct {
	// Imported counts completed results journaled and added.
	Imported int
	// Pending counts accept-only entries journaled and added; the
	// importer's recovery/defer machinery classifies them.
	Pending int
	// Duplicates counts entries skipped because this ledger already
	// holds them — the idempotency path a retransmitted chunk takes.
	Duplicates int
}

// ExportRange snapshots the ledger entries whose request ID the
// predicate claims are migrating and renders them as CRC-framed chunks:
// every completed (request-ID, response-body) pair first, then every
// pending accepted-but-unresulted batch, both in sorted-ID order so an
// export is deterministic for a given ledger state. The capture is
// atomic: both maps are walked under the ledger lock (bodies and event
// slices are immutable once stored, so retaining references pins a
// consistent view), which is what makes exporting safe against a
// concurrent Compact — an entry present when ExportRange is called
// cannot vanish from the export because a compaction snapshot or
// eviction ran mid-iteration. migrating must be fast (it runs under the
// ledger lock) and must not call back into the ledger. maxChunkBytes <=
// 0 selects DefaultHandoffChunkBytes. An empty range exports zero
// chunks, not an error.
func (l *Ledger) ExportRange(migrating func(id string) bool, maxChunkBytes int) ([]HandoffChunk, error) {
	if migrating == nil {
		return nil, fmt.Errorf("serve: handoff export: nil predicate")
	}
	if maxChunkBytes <= 0 {
		maxChunkBytes = DefaultHandoffChunkBytes
	}
	l.mu.Lock()
	doneIDs := make([]string, 0, len(l.results))
	for id := range l.results {
		if migrating(id) {
			doneIDs = append(doneIDs, id)
		}
	}
	sort.Strings(doneIDs)
	bodies := make([][]byte, len(doneIDs))
	for i, id := range doneIDs {
		bodies[i] = l.results[id]
	}
	pendIDs := make([]string, 0, len(l.pending))
	for id := range l.pending {
		if migrating(id) {
			pendIDs = append(pendIDs, id)
		}
	}
	sort.Strings(pendIDs)
	pendEvents := make([][]dataset.DownloadEvent, len(pendIDs))
	for i, id := range pendIDs {
		pendEvents[i] = l.pending[id]
	}
	l.mu.Unlock()

	// Encode outside the lock: serving traffic keeps flowing while the
	// chunks render.
	var chunks []HandoffChunk
	cur := HandoffChunk{}
	flush := func() {
		if cur.Entries > 0 {
			cur.Seq = len(chunks)
			chunks = append(chunks, cur)
			cur = HandoffChunk{}
		}
	}
	add := func(kind byte, payload []byte) {
		if cur.Entries > 0 && len(cur.Data)+len(payload) > maxChunkBytes {
			flush()
		}
		cur.Data = journal.AppendFrame(cur.Data, kind, payload)
		cur.Entries++
	}
	var payload []byte
	for i, id := range doneIDs {
		payload = append(payload[:0], id...)
		payload = append(payload, '\n')
		payload = append(payload, bodies[i]...)
		add(recResult, payload)
	}
	for i, id := range pendIDs {
		payload = append(payload[:0], id...)
		payload = append(payload, '\n')
		for j := range pendEvents[i] {
			line, err := export.MarshalEventLine(&pendEvents[i][j])
			if err != nil {
				return nil, fmt.Errorf("serve: handoff export %s: %w", id, err)
			}
			payload = append(payload, line...)
			payload = append(payload, '\n')
		}
		add(recAccept, payload)
	}
	flush()
	return chunks, nil
}

// ImportChunk installs one exported chunk into this ledger. Every entry
// is journaled BEFORE the call returns — the chunk is fsynced as a
// group, so an importer that acknowledges a chunk can never lose it to
// a crash (the ack is the transfer of authority; after it the source
// may forget the range). The import is idempotent: entries whose ID
// this ledger already holds are skipped, so duplicated or reordered
// chunk retransmissions — and a full chunk replay after a kill -9
// mid-import — converge to the same state. First-wins matches the
// ledger's Result semantics; since exported bodies are byte-exact
// copies, either copy answers retransmits identically. Imported
// results pass through the same MaxResults retention bound as
// locally-served ones, so handoff cannot balloon the dedup window.
func (l *Ledger) ImportChunk(data []byte) (HandoffImportStats, error) {
	var st HandoffImportStats
	recs, tail := journal.DecodeFrames(data)
	if tail != 0 {
		return st, fmt.Errorf("serve: handoff import: %d trailing bytes fail CRC framing", tail)
	}
	for _, r := range recs {
		switch r.Kind {
		case recResult:
			idx := bytes.IndexByte(r.Data, '\n')
			if idx <= 0 {
				return st, fmt.Errorf("serve: handoff import: result without id line")
			}
			id := string(r.Data[:idx])
			body := r.Data[idx+1:]
			l.mu.Lock()
			_, done := l.results[id]
			l.mu.Unlock()
			if done {
				st.Duplicates++
				continue
			}
			// Journal before the in-memory install (and before any ack can
			// escape the caller): a crash after the append replays the
			// record on recovery; a crash before it leaves nothing — never
			// an acknowledged entry whose only copy was in memory.
			if err := l.j.AppendAsyncFunc(id, recResult, func(dst []byte) []byte {
				return append(dst, r.Data...)
			}); err != nil {
				return st, fmt.Errorf("serve: handoff import %s: %w", id, err)
			}
			l.mu.Lock()
			if _, raced := l.results[id]; raced {
				st.Duplicates++
			} else {
				l.storeResultLocked(id, body)
				delete(l.pending, id)
				st.Imported++
			}
			l.mu.Unlock()
		case recAccept:
			id, lines, err := splitPayload(r.Data)
			if err != nil {
				return st, fmt.Errorf("serve: handoff import: %w", err)
			}
			events, err := parseEventLines(lines)
			if err != nil {
				return st, fmt.Errorf("serve: handoff import %s: %w", id, err)
			}
			l.mu.Lock()
			_, done := l.results[id]
			_, pending := l.pending[id]
			l.mu.Unlock()
			if done || pending {
				st.Duplicates++
				continue
			}
			if err := l.j.AppendAsyncFunc(id, recAccept, func(dst []byte) []byte {
				return append(dst, r.Data...)
			}); err != nil {
				return st, fmt.Errorf("serve: handoff import %s: %w", id, err)
			}
			l.mu.Lock()
			if _, raced := l.pending[id]; raced {
				st.Duplicates++
			} else if _, raced := l.results[id]; raced {
				st.Duplicates++
			} else {
				l.pending[id] = events
				st.Pending++
			}
			l.mu.Unlock()
		default:
			return st, fmt.Errorf("serve: handoff import: unknown record kind %d", r.Kind)
		}
	}
	// One group fsync (per journal shard) acks the whole chunk: cheaper
	// than per-entry durability, still strictly before the caller's
	// acknowledgment.
	if err := l.j.Sync(); err != nil {
		return st, fmt.Errorf("serve: handoff import: %w", err)
	}
	return st, nil
}

// ImportPendingIDs returns the pending IDs installed by imports or
// accepts — an alias of PendingIDs kept for symmetry at call sites that
// replay imported pending batches through the engine.
func (l *Ledger) ImportPendingIDs() []string { return l.PendingIDs() }
