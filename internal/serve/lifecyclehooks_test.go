package serve

import (
	"context"
	"io"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/classify"
	"repro/internal/dataset"
	"repro/internal/journal"
)

// TestBatchTapObservesBatches covers the lifecycle's shadow-feed tap:
// every fully classified batch is observed exactly once, with the same
// verdicts the caller got, and removing the tap stops the feed.
func TestBatchTapObservesBatches(t *testing.T) {
	f := sharedFixture(t)
	engine := newTestEngine(t, f, EngineConfig{Shards: 2, QueueSize: 256})

	var mu sync.Mutex
	var batches int
	var seen []VerdictRecord
	engine.SetBatchTap(func(events []dataset.DownloadEvent, verdicts []VerdictRecord) {
		mu.Lock()
		defer mu.Unlock()
		batches++
		if len(events) != len(verdicts) {
			t.Errorf("tap saw %d events but %d verdicts", len(events), len(verdicts))
		}
		seen = append(seen, verdicts...)
	})

	batch := f.replay[:40]
	verdicts, err := engine.ClassifyBatch(context.Background(), batch)
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	if batches != 1 {
		t.Fatalf("tap observed %d batches, want 1", batches)
	}
	if len(seen) != len(verdicts) {
		t.Fatalf("tap saw %d verdicts, want %d", len(seen), len(verdicts))
	}
	for i := range seen {
		if seen[i].Key() != verdicts[i].Key() {
			t.Fatalf("verdict %d: tap saw %q, caller got %q", i, seen[i].Key(), verdicts[i].Key())
		}
	}
	mu.Unlock()

	engine.SetBatchTap(nil)
	if _, err := engine.ClassifyBatch(context.Background(), batch); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if batches != 1 {
		t.Fatalf("tap fired after removal: %d batches", batches)
	}
}

// TestBatchTapSkipsShedBatches: a batch dead on arrival never reaches
// the tap — shed work is not observable ground truth.
func TestBatchTapSkipsShedBatches(t *testing.T) {
	f := sharedFixture(t)
	engine := newTestEngine(t, f, EngineConfig{Shards: 2, QueueSize: 256})
	var mu sync.Mutex
	fired := false
	engine.SetBatchTap(func([]dataset.DownloadEvent, []VerdictRecord) {
		mu.Lock()
		fired = true
		mu.Unlock()
	})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := engine.ClassifyBatch(ctx, f.replay[:10]); err == nil {
		t.Fatal("expired batch classified")
	}
	mu.Lock()
	defer mu.Unlock()
	if fired {
		t.Fatal("tap observed a shed batch")
	}
}

// TestMetricsAppender: registered appenders extend /metrics after the
// engine's own exposition block.
func TestMetricsAppender(t *testing.T) {
	f := sharedFixture(t)
	engine := newTestEngine(t, f, EngineConfig{})
	srv, err := NewServer(engine, classify.Reject, WithMetricsAppender(func(w io.Writer) {
		io.WriteString(w, "longtail_lifecycle_test 42\n")
	}))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	body, err := (&Client{BaseURL: ts.URL}).Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(body, "longtail_events_total") {
		t.Fatalf("engine exposition block missing:\n%s", body)
	}
	if !strings.Contains(body, "longtail_lifecycle_test 42") {
		t.Fatalf("appender output missing:\n%s", body)
	}
	if strings.Index(body, "longtail_lifecycle_test") < strings.Index(body, "longtail_events_total") {
		t.Fatal("appender output precedes the engine block")
	}
}

// TestLedgerCompletedIDs: the harvester's drain point returns completed
// request IDs sorted, and each resolves through LookupVerdicts.
func TestLedgerCompletedIDs(t *testing.T) {
	f := sharedFixture(t)
	l, _, err := OpenLedger(LedgerOptions{Journal: journal.Options{Dir: t.TempDir()}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })

	engine := newTestEngine(t, f, EngineConfig{})
	want := []string{"req-a", "req-c", "req-b"}
	for i, id := range want {
		events := f.replay[i*5 : i*5+5]
		if err := l.Accept(id, events); err != nil {
			t.Fatal(err)
		}
		verdicts, err := engine.ClassifyBatch(context.Background(), events)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := l.Result(id, verdicts); err != nil {
			t.Fatal(err)
		}
	}
	// One accepted-but-unresolved batch must not appear.
	if err := l.Accept("req-pending", f.replay[20:25]); err != nil {
		t.Fatal(err)
	}

	got := l.CompletedIDs()
	sort.Strings(want)
	if len(got) != len(want) {
		t.Fatalf("CompletedIDs = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("CompletedIDs = %v, want %v", got, want)
		}
	}
	for _, id := range got {
		if _, ok := l.LookupVerdicts(id); !ok {
			t.Fatalf("completed id %s has no verdicts", id)
		}
	}
}
