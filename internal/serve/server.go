package serve

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/classify"
	"repro/internal/dataset"
	"repro/internal/export"
)

// Server is the HTTP surface of the verdict-serving subsystem.
//
//	POST /classify      line-JSON "event" records in, line-JSON
//	                    "verdict" records out (input order); 429 under
//	                    backpressure, 503 while draining.
//	POST /admin/reload  rulemine-format JSON rule set in; hot-swaps the
//	                    served rules and reports the new generation.
//	GET  /healthz       liveness + current generation and queue depth.
//	GET  /metrics       Prometheus-style text exposition.
type Server struct {
	engine *Engine
	// policy applies to rule sets loaded through /admin/reload.
	policy classify.ConflictPolicy
}

// NewServer wraps an engine; reloaded rule sets use the given conflict
// policy (the paper's choice is classify.Reject).
func NewServer(engine *Engine, policy classify.ConflictPolicy) (*Server, error) {
	if engine == nil {
		return nil, fmt.Errorf("serve: nil engine")
	}
	return &Server{engine: engine, policy: policy}, nil
}

// Handler returns the route mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/classify", s.handleClassify)
	mux.HandleFunc("/admin/reload", s.handleReload)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	return mux
}

// maxEventLine bounds one request line (matches export.ReadStore's
// scanner budget).
const maxEventLine = 1 << 22

func (s *Server) handleClassify(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	m := s.engine.Metrics()
	var events []dataset.DownloadEvent
	sc := bufio.NewScanner(r.Body)
	sc.Buffer(make([]byte, 0, 1<<16), maxEventLine)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		ev, err := export.UnmarshalEventLine(line)
		if err != nil {
			m.BadRequests.Add(1)
			http.Error(w, fmt.Sprintf("line %d: %v", lineNo, err), http.StatusBadRequest)
			return
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		m.BadRequests.Add(1)
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	verdicts, err := s.engine.ClassifyBatch(events)
	switch {
	case errors.Is(err, ErrOverloaded):
		m.RequestsRejected.Add(1)
		w.Header().Set("Retry-After", "1")
		http.Error(w, err.Error(), http.StatusTooManyRequests)
		return
	case errors.Is(err, ErrDraining):
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	case err != nil:
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	m.RequestsAccepted.Add(1)
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range verdicts {
		if err := enc.Encode(&verdicts[i]); err != nil {
			return
		}
	}
	bw.Flush()
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	clf, err := LoadRules(r.Body, s.policy)
	if err != nil {
		s.engine.Metrics().BadRequests.Add(1)
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	gen, err := s.engine.Swap(clf)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	json.NewEncoder(w).Encode(map[string]any{
		"generation": gen,
		"rules":      len(clf.Rules),
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	json.NewEncoder(w).Encode(map[string]any{
		"status":     "ok",
		"generation": s.engine.Generation(),
		"queueDepth": s.engine.QueueDepth(),
		"rules":      s.engine.RuleCount(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.engine.Metrics().WriteTo(w, s.engine.QueueDepth())
}
