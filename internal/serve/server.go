package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/classify"
	"repro/internal/dataset"
	"repro/internal/export"
	"repro/internal/retry"
)

// RequestIDHeader carries the client's stable per-batch request ID;
// with a ledger attached it is the dedup key that makes retransmitted
// batches exactly-once. TimeoutHeader carries an optional per-request
// deadline in milliseconds, propagated into the shard queues.
const (
	RequestIDHeader = "X-Request-Id"
	TimeoutHeader   = "X-Timeout-Ms"
)

// Server is the HTTP surface of the verdict-serving subsystem.
//
//	POST /classify      line-JSON "event" records in, line-JSON
//	                    "verdict" records out (input order). Admission
//	                    is a graduated ladder: full service while the
//	                    queue is healthy; journal-and-defer (202 +
//	                    durable accept, background classification) as
//	                    depth rises past the high-water mark or on
//	                    overflow; 429 only once the defer queue is full
//	                    too. Retransmits of a completed request ID are
//	                    answered from the verdict ledger.
//	GET  /result        ?id=<request id>: verdicts of a deferred batch
//	                    (200), 204 while still pending, 404 if unknown.
//	POST /admin/reload  rulemine-format JSON rule set in; hot-swaps the
//	                    served rules. A set that fails validation leaves
//	                    the old generation serving (degraded mode).
//	GET  /healthz       liveness + generation, queue depth, journal
//	                    state; "degraded" after a refused reload.
//	GET  /metrics       Prometheus-style text exposition.
type Server struct {
	engine *Engine
	// policy applies to rule sets loaded through /admin/reload.
	policy classify.ConflictPolicy
	// ledger is the durable exactly-once request ledger; nil runs the
	// server stateless (the pre-journal behavior).
	ledger *Ledger
	// deferHighWater is the queue-load fraction beyond which new
	// journaled batches are deferred instead of classified inline.
	deferHighWater float64

	deferCh   chan string
	deferCtx  context.Context
	deferStop context.CancelFunc
	deferDone chan struct{}

	// metricsAppenders extend GET /metrics with additional exposition
	// blocks (e.g. the lifecycle's per-rule efficacy counters).
	metricsAppenders []func(io.Writer)
}

// ServerOption customizes NewServer.
type ServerOption func(*Server)

// WithLedger attaches the durable verdict ledger, enabling request-ID
// dedup, the journal-and-defer admission rung and GET /result.
func WithLedger(l *Ledger) ServerOption {
	return func(s *Server) { s.ledger = l }
}

// WithDeferHighWater sets the queue-load fraction (0..1] above which
// identified batches are journaled and deferred. 0 defers every
// identified batch (useful in tests); default 0.75.
func WithDeferHighWater(f float64) ServerOption {
	return func(s *Server) { s.deferHighWater = f }
}

// WithMetricsAppender registers a function that appends extra
// Prometheus-style exposition lines to GET /metrics after the engine's
// own block. Appenders run in registration order on the request path,
// so they must be fast and internally synchronized.
func WithMetricsAppender(f func(io.Writer)) ServerOption {
	return func(s *Server) {
		if f != nil {
			s.metricsAppenders = append(s.metricsAppenders, f)
		}
	}
}

// NewServer wraps an engine; reloaded rule sets use the given conflict
// policy (the paper's choice is classify.Reject).
func NewServer(engine *Engine, policy classify.ConflictPolicy, opts ...ServerOption) (*Server, error) {
	if engine == nil {
		return nil, fmt.Errorf("serve: nil engine")
	}
	s := &Server{engine: engine, policy: policy, deferHighWater: 0.75}
	for _, opt := range opts {
		opt(s)
	}
	if s.ledger != nil {
		s.deferCh = make(chan string, 256)
		s.deferCtx, s.deferStop = context.WithCancel(context.Background())
		s.deferDone = make(chan struct{})
		go s.deferLoop()
	}
	return s, nil
}

// Close stops the background deferred-batch worker. Idempotent; safe to
// call on a stateless server. Pending journal entries stay on disk for
// the next process's recovery — that is the point.
func (s *Server) Close() {
	if s.deferStop == nil {
		return
	}
	s.deferStop()
	<-s.deferDone
}

// Handler returns the route mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/classify", s.handleClassify)
	mux.HandleFunc("/result", s.handleResult)
	mux.HandleFunc("/admin/reload", s.handleReload)
	mux.HandleFunc("/admin/handoff/export", s.handleHandoffExport)
	mux.HandleFunc("/admin/handoff/import", s.handleHandoffImport)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	return mux
}

// maxEventLine bounds one request line (matches export.ReadStore's
// scanner budget).
const maxEventLine = 1 << 22

// copyBufPool holds scratch buffers for draining request bodies.
var copyBufPool = sync.Pool{New: func() any {
	b := make([]byte, 32<<10)
	return &b
}}

// readBody drains the request body into a single string. Content-Length
// (which our own client always sends) pre-sizes the builder, so the
// whole body lands in one allocation instead of io.ReadAll's doubling
// churn, and strings.Builder's String() hands back its buffer without
// the second copy a []byte→string conversion would pay.
func readBody(r *http.Request) (string, error) {
	var sb strings.Builder
	if n := r.ContentLength; n > 0 {
		sb.Grow(int(n))
	}
	bp := copyBufPool.Get().(*[]byte)
	_, err := io.CopyBuffer(&sb, r.Body, *bp)
	copyBufPool.Put(bp)
	if err != nil {
		return "", err
	}
	return sb.String(), nil
}

// readEvents parses the line-JSON request body. The whole body is read
// once into a single string; canonical event lines decode by slicing
// substrings out of it (export.ParseEventLine), so the per-event parse
// cost is allocation-free. With keepBody it also returns the normalized
// wire form (non-empty lines, '\n'-terminated) so a journaling server
// can log the batch verbatim instead of re-marshaling it; a body that
// is already normalized — every batch our client sends — is returned
// as-is, with no copy.
func readEvents(r *http.Request, keepBody bool) ([]dataset.DownloadEvent, string, error) {
	raw, err := readBody(r)
	if err != nil {
		return nil, "", err
	}
	s := raw
	events := make([]dataset.DownloadEvent, 0, strings.Count(s, "\n")+1)
	// The raw body is its own normalized form until the scan finds a
	// blank line, a '\r', or a missing final newline; body stays nil
	// (no copy) until that first deviation.
	normalized := true
	var body []byte
	lineNo := 0
	for len(s) > 0 {
		lineStart := len(raw) - len(s)
		line := s
		hadNL := false
		if nl := strings.IndexByte(s, '\n'); nl >= 0 {
			line, s = s[:nl], s[nl+1:]
			hadNL = true
		} else {
			s = ""
		}
		// Match the old bufio.ScanLines framing: trailing '\r' stripped,
		// empty lines skipped (but counted), oversized lines refused.
		lineNo++
		trimmed := strings.TrimSuffix(line, "\r")
		if keepBody && normalized && (!hadNL || len(trimmed) != len(line) || len(trimmed) == 0) {
			normalized = false
			body = append(make([]byte, 0, len(raw)+1), raw[:lineStart]...)
		}
		line = trimmed
		if len(line) == 0 {
			continue
		}
		if len(line) > maxEventLine {
			return nil, "", bufio.ErrTooLong
		}
		ev, err := export.ParseEventLine(line)
		if err != nil {
			return nil, "", fmt.Errorf("line %d: %w", lineNo, err)
		}
		events = append(events, ev)
		if keepBody && !normalized {
			body = append(body, line...)
			body = append(body, '\n')
		}
	}
	if !keepBody {
		return events, "", nil
	}
	if normalized {
		return events, raw, nil
	}
	return events, string(body), nil
}

// readBinaryEvents decodes a binary-format /classify body. With
// keepBody it also renders the batch's canonical line-JSON form — what
// the ledger journals — so the journal, its snapshots, handoff chunks
// and recovery speak exactly one format no matter what the wire spoke,
// and a client may switch formats between a transmit and its
// retransmit without splitting the dedup state.
func readBinaryEvents(r *http.Request, keepBody bool) ([]dataset.DownloadEvent, string, error) {
	raw, err := readBody(r)
	if err != nil {
		return nil, "", err
	}
	events, err := decodeBinaryEvents(raw)
	if err != nil {
		return nil, "", err
	}
	if !keepBody {
		return events, "", nil
	}
	body := make([]byte, 0, len(raw)*2)
	for i := range events {
		body, err = export.AppendEventLine(body, &events[i])
		if err != nil {
			return nil, "", err
		}
		body = append(body, '\n')
	}
	return events, string(body), nil
}

// binaryRequest reports whether the /classify request negotiated the
// binary wire format via its Content-Type.
func binaryRequest(r *http.Request) bool {
	ct := r.Header.Get("Content-Type")
	return ct == ContentTypeBinaryEvents || strings.HasPrefix(ct, ContentTypeBinaryEvents+";")
}

// wantsBinaryVerdicts reports whether the client asked GET /result for
// binary-format verdicts via its Accept header.
func wantsBinaryVerdicts(r *http.Request) bool {
	a := r.Header.Get("Accept")
	return a == ContentTypeBinaryVerdicts || strings.HasPrefix(a, ContentTypeBinaryVerdicts+";")
}

// writeVerdicts streams verdict records as line JSON, rendered by the
// same append encoder the ledger journals (one buffer, one Write).
func writeVerdicts(w http.ResponseWriter, verdicts []VerdictRecord) {
	buf := make([]byte, 0, verdictBodySize(verdicts))
	w.Write(appendVerdictBody(buf, verdicts))
}

// writeBinaryVerdicts streams verdict records in the binary format.
func writeBinaryVerdicts(w http.ResponseWriter, verdicts []VerdictRecord) {
	w.Header().Set("Content-Type", ContentTypeBinaryVerdicts)
	w.Write(appendBinaryVerdicts(make([]byte, 0, 16+verdictBodySize(verdicts)), verdicts))
}

// writeLedgerBody serves a response body the ledger already journaled —
// a first response after Result, a dedup replay, a GET /result hit. The
// stored body is canonical line-JSON; a binary-negotiated request gets
// it re-encoded through the deterministic binary codec, so retransmit
// replies stay byte-identical within each format. The journal-before-
// response invariant is upheld by the caller's contract (the body comes
// out of the ledger), not by call order in this helper.
func (s *Server) writeLedgerBody(w http.ResponseWriter, respBody []byte, binary bool) {
	if !binary {
		w.Write(respBody)
		return
	}
	verdicts, err := parseVerdictBody(respBody)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeBinaryVerdicts(w, verdicts)
}

// writeDeferred acknowledges a journaled-and-deferred batch: the events
// are durable, classification happens in the background, and the client
// fetches the verdicts from GET /result.
func (s *Server) writeDeferred(w http.ResponseWriter, id string) {
	w.WriteHeader(http.StatusAccepted)
	json.NewEncoder(w).Encode(map[string]any{"deferred": true, "id": id})
}

// requestContext derives the classification context, honoring the
// client's deadline header so expired work can be shed in-queue.
func requestContext(r *http.Request) (context.Context, context.CancelFunc) {
	if ms, err := strconv.Atoi(r.Header.Get(TimeoutHeader)); err == nil && ms > 0 {
		return context.WithTimeout(r.Context(), time.Duration(ms)*time.Millisecond)
	}
	return r.Context(), func() {}
}

func (s *Server) handleClassify(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	m := s.engine.Metrics()
	id := r.Header.Get(RequestIDHeader)
	journaled := s.ledger != nil && id != ""
	binary := binaryRequest(r)

	if journaled {
		// Exactly-once: a retransmit of a completed batch replays the
		// journaled response verbatim (re-encoded binary when this
		// retransmit negotiated it); one still in flight (or deferred)
		// is re-acknowledged and nudged toward the background worker.
		if respBody, ok := s.ledger.Lookup(id); ok {
			m.DedupHits.Add(1)
			m.RequestsAccepted.Add(1)
			s.writeLedgerBody(w, respBody, binary)
			return
		}
		if s.ledger.IsPending(id) {
			s.enqueueDeferred(id)
			s.writeDeferred(w, id)
			return
		}
	}

	var events []dataset.DownloadEvent
	var body string
	var err error
	if binary {
		events, body, err = readBinaryEvents(r, journaled)
	} else {
		events, body, err = readEvents(r, journaled)
	}
	if err != nil {
		m.BadRequests.Add(1)
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}

	// Admission ladder, rung 2: past the high-water mark, journal the
	// batch durably and classify it in the background instead of making
	// the client wait in a saturated queue.
	if journaled && s.engine.QueueDepth() >= int(s.deferHighWater*float64(s.engine.Capacity())) {
		if s.tryDefer(w, id, events, body, m) {
			return
		}
	}

	ctx, cancel := requestContext(r)
	defer cancel()

	var acceptErr chan error
	if journaled {
		// Durable accept overlaps with classification: the fsync hides
		// behind the extract/classify work and the response is held
		// until both finish.
		acceptErr = make(chan error, 1)
		events, body := events, body
		go func() { acceptErr <- s.ledger.AcceptWire(id, events, body) }()
	}
	verdicts, err := s.engine.ClassifyBatch(ctx, events)
	if acceptErr != nil {
		if aerr := <-acceptErr; aerr != nil {
			http.Error(w, aerr.Error(), http.StatusInternalServerError)
			return
		}
	}
	switch {
	case errors.Is(err, ErrOverloaded):
		// Rung 2 again (the queue filled between the check and the
		// reservation), then rung 3: shed with 429.
		if journaled && s.tryDefer(w, id, events, body, m) {
			return
		}
		m.RequestsRejected.Add(1)
		w.Header().Set("Retry-After", "1")
		http.Error(w, err.Error(), http.StatusTooManyRequests)
		return
	case errors.Is(err, ErrDeadlineExceeded):
		// The client's deadline expired in-queue; the work was shed. A
		// journaled batch is already durable, so finish it in the
		// background and let the client pick the verdicts up later.
		if journaled {
			s.enqueueDeferred(id)
			m.RequestsDeferred.Add(1)
			s.writeDeferred(w, id)
			return
		}
		w.Header().Set("Retry-After", "1")
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	case errors.Is(err, ErrDraining):
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	case err != nil:
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if journaled {
		// Result returns the canonical response body for the ID (the
		// winner's bytes if a retransmit raced this request), which is
		// what goes on the wire — dedup replies are byte-identical.
		respBody, err := s.ledger.Result(id, verdicts)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		m.RequestsAccepted.Add(1)
		s.writeLedgerBody(w, respBody, binary)
		return
	}
	m.RequestsAccepted.Add(1)
	if binary {
		writeBinaryVerdicts(w, verdicts)
		return
	}
	writeVerdicts(w, verdicts)
}

// tryDefer journals the batch durably and hands it to the background
// worker, acknowledging with 202. Returns false when the defer queue is
// saturated (the caller falls through to 429) or the journal write
// failed (500 written here).
func (s *Server) tryDefer(w http.ResponseWriter, id string, events []dataset.DownloadEvent, body string, m *Metrics) bool {
	if err := s.ledger.AcceptWire(id, events, body); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return true
	}
	if !s.enqueueDeferred(id) {
		// Defer queue full: top of the ladder. The accept record stays
		// journaled; the client's retry will be re-acknowledged as
		// pending and re-enqueued once there is room.
		return false
	}
	m.RequestsDeferred.Add(1)
	s.writeDeferred(w, id)
	return true
}

// enqueueDeferred hands id to the background worker (idempotent: the
// worker skips IDs that already have results).
func (s *Server) enqueueDeferred(id string) bool {
	if s.deferCh == nil {
		return false
	}
	select {
	case s.deferCh <- id:
		return true
	default:
		return false
	}
}

// deferLoop classifies journaled-and-deferred batches in the
// background, retrying around transient overload with jittered
// backoff. On Close it exits immediately; unfinished batches remain
// journaled as pending and are replayed by recovery on the next boot —
// the same path a crash takes.
func (s *Server) deferLoop() {
	defer close(s.deferDone)
	for {
		select {
		case <-s.deferCtx.Done():
			return
		case id := <-s.deferCh:
			if _, done := s.ledger.Lookup(id); done {
				continue
			}
			events := s.ledger.PendingEvents(id)
			if events == nil {
				continue
			}
			var verdicts []VerdictRecord
			err := retry.Do(s.deferCtx, retry.Policy{
				MaxAttempts:    -1,
				InitialBackoff: time.Millisecond,
				MaxBackoff:     50 * time.Millisecond,
			}, func(ctx context.Context) error {
				var cerr error
				verdicts, cerr = s.engine.ClassifyBatch(ctx, events)
				if errors.Is(cerr, ErrDraining) {
					return retry.Permanent(cerr)
				}
				return cerr
			})
			if err != nil {
				continue // draining or closed: stays pending for recovery
			}
			s.ledger.Result(id, verdicts)
		}
	}
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	if s.ledger == nil {
		http.Error(w, "no journal attached", http.StatusNotFound)
		return
	}
	id := r.URL.Query().Get("id")
	if id == "" {
		http.Error(w, "missing id", http.StatusBadRequest)
		return
	}
	if respBody, ok := s.ledger.Lookup(id); ok {
		s.writeLedgerBody(w, respBody, wantsBinaryVerdicts(r))
		return
	}
	if s.ledger.IsPending(id) {
		s.enqueueDeferred(id)
		w.WriteHeader(http.StatusNoContent)
		return
	}
	http.Error(w, "unknown request id", http.StatusNotFound)
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	clf, err := LoadRules(r.Body, s.policy)
	if err != nil {
		// Supervised degraded mode: the old generation keeps serving;
		// health reports the refused update instead of flapping.
		s.engine.MarkDegraded(err.Error())
		s.engine.Metrics().BadRequests.Add(1)
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	gen, err := s.engine.Swap(clf)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	json.NewEncoder(w).Encode(map[string]any{
		"generation": gen,
		"rules":      len(clf.Rules),
	})
}

// handleHandoffExport streams this replica's full ledger as
// concatenated CRC-framed handoff records. The policy decision of
// *which* IDs are migrating lives with the caller (the cluster router
// knows the ring; this process does not), so the HTTP surface exports
// everything and the importer filters by ownership. Exporting is
// read-only: the source stays authoritative for every ID until an
// importer has durably acked it.
func (s *Server) handleHandoffExport(w http.ResponseWriter, r *http.Request) {
	if s.ledger == nil {
		http.Error(w, "no journal attached", http.StatusNotFound)
		return
	}
	chunks, err := s.ledger.ExportRange(func(string) bool { return true }, DefaultHandoffChunkBytes)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	for _, c := range chunks {
		if _, err := w.Write(c.Data); err != nil {
			return
		}
	}
}

// handleHandoffImport installs one chunk of handoff records shipped in
// the request body. The 200 response IS the authority transfer: it is
// written only after ImportChunk has journaled and fsynced every entry,
// so a source that sees the ack may forget the range knowing a crash on
// this end cannot lose it. Errors (framing, journal I/O) leave the
// source authoritative — it simply retries or keeps the range pinned.
func (s *Server) handleHandoffImport(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	if s.ledger == nil {
		http.Error(w, "no journal attached", http.StatusNotFound)
		return
	}
	data, err := io.ReadAll(r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	st, err := s.ledger.ImportChunk(data)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	json.NewEncoder(w).Encode(map[string]any{
		"imported":   st.Imported,
		"pending":    st.Pending,
		"duplicates": st.Duplicates,
	})
	// Imported pending batches still need verdicts; the deferred worker
	// classifies them exactly like recovered-from-journal accepts.
	for _, id := range s.ledger.PendingIDs() {
		s.enqueueDeferred(id)
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	resp := map[string]any{
		"generation": s.engine.Generation(),
		"queueDepth": s.engine.QueueDepth(),
		"rules":      s.engine.RuleCount(),
	}
	if reason := s.engine.DegradedReason(); reason != "" {
		status = "degraded"
		resp["degradedReason"] = reason
	}
	if s.ledger != nil {
		pending, completed := s.ledger.Counts()
		resp["journalPending"] = pending
		resp["journalCompleted"] = completed
	}
	resp["status"] = status
	json.NewEncoder(w).Encode(resp)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	var jm *JournalMetrics
	if s.ledger != nil {
		snap := s.ledger.JournalMetrics()
		jm = &snap
	}
	s.engine.Metrics().WriteTo(w, s.engine.QueueDepth(), s.engine.DegradedReason() != "", jm)
	for _, f := range s.metricsAppenders {
		f(w)
	}
}
