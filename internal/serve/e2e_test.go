package serve

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/classify"
	"repro/internal/faults"
	"repro/internal/retry"
)

// TestEndToEndReplay is the acceptance loop in-process: replay a full
// synthetic month through the HTTP surface the way cmd/loadgen does,
// hot-reload the rule set mid-replay, and require (a) every streamed
// verdict byte-identical to offline classification, (b) verdicts served
// under both generations, and (c) every key /metrics counter non-zero.
func TestEndToEndReplay(t *testing.T) {
	f := sharedFixture(t)
	engine := newTestEngine(t, f, EngineConfig{Shards: 4, QueueSize: 1024})
	srv, err := NewServer(engine, classify.Reject)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	ctx := context.Background()
	client := &Client{BaseURL: ts.URL}

	var rules bytes.Buffer
	if err := ExportRules(&rules, f.clf); err != nil {
		t.Fatal(err)
	}

	const batch = 64
	nBatches := (len(f.replay) + batch - 1) / batch
	reloadBatch := nBatches / 2
	gens := map[uint64]int{}
	for b := 0; b < nBatches; b++ {
		if b == reloadBatch {
			gen, err := client.Reload(ctx, rules.Bytes())
			if err != nil {
				t.Fatalf("mid-replay reload: %v", err)
			}
			if gen != 2 {
				t.Fatalf("mid-replay reload generation = %d, want 2", gen)
			}
		}
		lo, hi := b*batch, (b+1)*batch
		if hi > len(f.replay) {
			hi = len(f.replay)
		}
		verdicts, err := client.Classify(ctx, f.replay[lo:hi])
		if err != nil {
			t.Fatalf("batch %d: %v", b, err)
		}
		for i, v := range verdicts {
			gens[v.Generation]++
			if got, want := v.Key(), offlineKey(t, f, f.clf, &f.replay[lo+i]); got != want {
				t.Fatalf("event %d (generation %d): streamed %q, offline %q", lo+i, v.Generation, got, want)
			}
		}
	}
	if len(gens) != 2 || gens[1] == 0 || gens[2] == 0 {
		t.Fatalf("expected verdicts under generations 1 and 2, got %v", gens)
	}

	metrics, err := client.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, counter := range []string{
		"longtail_requests_total{result=\"accepted\"}",
		"longtail_events_total",
		"longtail_reloads_total",
		"longtail_reload_generation",
		"longtail_stage_latency_seconds_count{stage=\"queue\"}",
		"longtail_stage_latency_seconds_count{stage=\"extract\"}",
		"longtail_stage_latency_seconds_count{stage=\"classify\"}",
	} {
		if !metricNonZero(metrics, counter) {
			t.Fatalf("metrics counter %q is zero or missing:\n%s", counter, metrics)
		}
	}
}

// metricNonZero reports whether the exposition line starting with
// prefix carries a non-zero value.
func metricNonZero(metrics, prefix string) bool {
	for _, line := range strings.Split(metrics, "\n") {
		if strings.HasPrefix(line, prefix) {
			fields := strings.Fields(line)
			return len(fields) == 2 && fields[1] != "0"
		}
	}
	return false
}

// flakyTransport decorates an http.RoundTripper with deterministic
// seed-driven faults from internal/faults — the PR 1 machinery applied
// to the serving uplink. Each logical request is one fault key whose
// consecutive-failure streak the injector bounds, so recovery within
// the retry budget is guaranteed by construction.
type flakyTransport struct {
	inj      *faults.Injector
	next     http.RoundTripper
	injected atomic.Uint64

	mu      sync.Mutex
	reqID   int
	attempt int
}

func (ft *flakyTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	ft.mu.Lock()
	key := fmt.Sprintf("uplink-%d", ft.reqID)
	ft.attempt++
	fail := ft.attempt <= ft.inj.FailuresBefore(key)
	if !fail {
		ft.reqID++
		ft.attempt = 0
	}
	ft.mu.Unlock()
	if fail {
		ft.injected.Add(1)
		return nil, fmt.Errorf("injected uplink failure (%s)", key)
	}
	return ft.next.RoundTrip(req)
}

// TestClientRetriesFaultyUplink wires a faults.Injector into the
// client's transport and verifies the retry/backoff uplink absorbs the
// injected failures with verdicts unchanged.
func TestClientRetriesFaultyUplink(t *testing.T) {
	f := sharedFixture(t)
	engine := newTestEngine(t, f, EngineConfig{Shards: 2, QueueSize: 256})
	srv, err := NewServer(engine, classify.Reject)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	inj, err := faults.NewInjector(faults.Config{Seed: 11, ErrorRate: 0.3, MaxConsecutiveFailures: 2})
	if err != nil {
		t.Fatal(err)
	}
	ft := &flakyTransport{inj: inj, next: http.DefaultTransport}
	client := &Client{
		BaseURL:    ts.URL,
		HTTPClient: &http.Client{Transport: ft},
		Retry: retry.Policy{
			MaxAttempts: 5,
			Sleep:       func(ctx context.Context, d time.Duration) error { return nil },
		},
	}
	ctx := context.Background()
	for b := 0; b < 8; b++ {
		verdicts, err := client.Classify(ctx, f.replay[b*16:(b+1)*16])
		if err != nil {
			t.Fatalf("batch %d under faults: %v", b, err)
		}
		for i, v := range verdicts {
			if got, want := v.Key(), offlineKey(t, f, f.clf, &f.replay[b*16+i]); got != want {
				t.Fatalf("event %d under faults: streamed %q, offline %q", b*16+i, got, want)
			}
		}
	}
	if ft.injected.Load() == 0 {
		t.Fatal("fault injector never fired; the test is vacuous")
	}
}
