package serve

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/classify"
	"repro/internal/journal"
)

// TestShutdownInFlightClassify: requests racing a shutdown either
// complete with a full, correct verdict set or fail cleanly with
// draining — never a partial response. This is the SIGTERM path:
// longtaild stops the HTTP listener, then closes the server and
// engine while late requests are still in flight.
func TestShutdownInFlightClassify(t *testing.T) {
	f := sharedFixture(t)
	engine, err := NewEngine(f.ex, f.clf, EngineConfig{Shards: 2, QueueSize: 256}, &Metrics{})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(engine, classify.Reject)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())

	const clients = 4
	var wg sync.WaitGroup
	var completed, drained atomic.Int64
	errCh := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := &Client{BaseURL: ts.URL}
			for b := 0; b < 50; b++ {
				verdicts, err := client.Classify(context.Background(), f.replay[:8])
				if err != nil {
					if strings.Contains(err.Error(), "draining") ||
						strings.Contains(err.Error(), "Service Unavailable") {
						drained.Add(1)
						return
					}
					errCh <- err
					return
				}
				if len(verdicts) != 8 {
					errCh <- &partialError{got: len(verdicts)}
					return
				}
				completed.Add(1)
			}
		}()
	}
	time.Sleep(5 * time.Millisecond) // let requests get in flight
	srv.Close()
	engine.Close()
	wg.Wait()
	ts.Close()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if completed.Load() == 0 {
		t.Fatal("no request completed before shutdown; the race is vacuous")
	}
}

type partialError struct{ got int }

func (e *partialError) Error() string { return "partial verdict batch" }

// TestDrainWithNonEmptyJournal: batches journaled-and-deferred but not
// yet classified when the server closes survive on disk as pending and
// are replayed — byte-identically — by the next boot's recovery. This
// is the drain contract: Close never waits on or discards journaled
// work; the journal IS the handoff.
func TestDrainWithNonEmptyJournal(t *testing.T) {
	f := sharedFixture(t)
	dir := t.TempDir()
	l, _, err := OpenLedger(LedgerOptions{Journal: journal.Options{Dir: dir}})
	if err != nil {
		t.Fatal(err)
	}
	engine := newTestEngine(t, f, EngineConfig{})
	// Defer every identified batch, and stop the background worker
	// before any request arrives: these are the requests that land
	// mid-drain, after the worker stopped but before the listener did.
	srv, err := NewServer(engine, classify.Reject, WithLedger(l), WithDeferHighWater(0))
	if err != nil {
		t.Fatal(err)
	}
	srv.Close()

	events := f.replay[:6]
	body, err := marshalEvents(events)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, "/classify", bytes.NewReader(body))
	req.Header.Set(RequestIDHeader, "drain-1")
	rr := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rr, req)
	if rr.Code != http.StatusAccepted {
		t.Fatalf("mid-drain classify = %d %s, want 202", rr.Code, rr.Body.String())
	}
	pending, _ := l.Counts()
	if pending != 1 {
		t.Fatalf("journal holds %d pending batches at drain, want 1", pending)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Next boot: recovery resolves the batch without the client.
	l2, rec, err := OpenLedger(LedgerOptions{Journal: journal.Options{Dir: dir}})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	n, err := RecoverLedger(engine, l2, rec)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("recovery replayed %d batches, want 1", n)
	}
	verdicts, ok := l2.LookupVerdicts("drain-1")
	if !ok || len(verdicts) != len(events) {
		t.Fatalf("drained batch not recovered: %v %v", verdicts, ok)
	}
	for i := range events {
		if want := offlineKey(t, f, f.clf, &events[i]); verdicts[i].Key() != want {
			t.Fatalf("recovered verdict %d = %q, offline %q", i, verdicts[i].Key(), want)
		}
	}
}

// TestDoubleClose: Server, Ledger and the engine-facing Close paths
// are all idempotent; a supervisor that Closes twice (signal + defer)
// must not hang or panic.
func TestDoubleCloseServer(t *testing.T) {
	f := sharedFixture(t)
	l, _, err := OpenLedger(LedgerOptions{Journal: journal.Options{Dir: t.TempDir()}})
	if err != nil {
		t.Fatal(err)
	}
	engine := newTestEngine(t, f, EngineConfig{})
	srv, err := NewServer(engine, classify.Reject, WithLedger(l))
	if err != nil {
		t.Fatal(err)
	}
	srv.Close()
	srv.Close()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("second ledger Close = %v", err)
	}
	// A stateless server's Close is a no-op, twice.
	srv2, err := NewServer(engine, classify.Reject)
	if err != nil {
		t.Fatal(err)
	}
	srv2.Close()
	srv2.Close()
}

// TestDeadlineShedAtAdmission: a batch whose deadline already expired
// is shed wholesale at admission — no queue traffic, counted.
func TestDeadlineShedAtAdmission(t *testing.T) {
	f := sharedFixture(t)
	engine := newTestEngine(t, f, EngineConfig{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	before := engine.Metrics().ShedExpired.Load()
	if _, err := engine.ClassifyBatch(ctx, f.replay[:5]); !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("expired-at-admission batch returned %v, want ErrDeadlineExceeded", err)
	}
	if got := engine.Metrics().ShedExpired.Load() - before; got != 5 {
		t.Fatalf("ShedExpired rose by %d, want 5", got)
	}
	if engine.QueueDepth() != 0 {
		t.Fatalf("shed batch left queue depth %d", engine.QueueDepth())
	}
}

// TestDeadlineShedInQueue: a worker that dequeues a frame after its
// request's deadline passed sheds every event in it without extraction
// work.
func TestDeadlineShedInQueue(t *testing.T) {
	f := sharedFixture(t)
	engine := newTestEngine(t, f, EngineConfig{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	events := f.replay[:2]
	results := make([]VerdictRecord, len(events))
	var done sync.WaitGroup
	var shed atomic.Int64
	done.Add(len(events))
	engine.inflight.Add(int64(len(events)))
	before := engine.Metrics().ExtractErrors.Load()
	frame := framePool.Get().(*shardBatch)
	frame.events, frame.results = events, results
	frame.ctx, frame.enqueued = ctx, time.Now()
	frame.done, frame.shed = &done, &shed
	frame.idx = append(frame.idx, 0, 1)
	engine.processFrame(frame, &workerState{memo: make(map[memoKey]memoVal)})
	done.Wait()
	if shed.Load() != 2 {
		t.Fatalf("shed %d of 2 expired events", shed.Load())
	}
	for i := range results {
		if !strings.HasPrefix(results[i].Error, "shed:") {
			t.Fatalf("shed verdict %d error = %q", i, results[i].Error)
		}
		if results[i].Verdict != "" || results[i].Rules != nil {
			t.Fatalf("shed event %d was classified anyway: %+v", i, results[i])
		}
	}
	if engine.Metrics().ExtractErrors.Load() != before {
		t.Fatal("shed frame reached the extractor")
	}
}

// TestDeadlineShedOverHTTP: an expired client deadline surfaces as 503
// on a stateless server and journal-and-defer (202) on a ledger-backed
// one — the work is never silently dropped once accepted.
func TestDeadlineShedOverHTTP(t *testing.T) {
	f := sharedFixture(t)
	engine := newTestEngine(t, f, EngineConfig{})
	srv, err := NewServer(engine, classify.Reject)
	if err != nil {
		t.Fatal(err)
	}
	body, err := marshalEvents(f.replay[:3])
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest(http.MethodPost, "/classify", bytes.NewReader(body)).WithContext(ctx)
	rr := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rr, req)
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("expired stateless classify = %d, want 503", rr.Code)
	}

	l, _, err := OpenLedger(LedgerOptions{Journal: journal.Options{Dir: t.TempDir()}})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	jsrv, err := NewServer(engine, classify.Reject, WithLedger(l))
	if err != nil {
		t.Fatal(err)
	}
	defer jsrv.Close()
	req = httptest.NewRequest(http.MethodPost, "/classify", bytes.NewReader(body)).WithContext(ctx)
	req.Header.Set(RequestIDHeader, "late-1")
	rr = httptest.NewRecorder()
	jsrv.Handler().ServeHTTP(rr, req)
	if rr.Code != http.StatusAccepted {
		t.Fatalf("expired journaled classify = %d, want 202", rr.Code)
	}
}

// TestDegradedModeOnFailedReload: a rule set that fails validation is
// refused, the old generation keeps serving, /healthz flips to
// degraded, and a subsequent good reload clears it.
func TestDegradedModeOnFailedReload(t *testing.T) {
	f := sharedFixture(t)
	engine := newTestEngine(t, f, EngineConfig{})
	srv, err := NewServer(engine, classify.Reject)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	ctx := context.Background()
	client := &Client{BaseURL: ts.URL}

	gen := engine.Generation()
	if _, err := client.Reload(ctx, []byte(`{"rules": [{"verdict": "nonsense"}]}`)); err == nil {
		t.Fatal("invalid rule set accepted")
	}
	if engine.Generation() != gen {
		t.Fatal("failed reload advanced the generation")
	}
	health, err := client.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if health["status"] != "degraded" || health["degradedReason"] == "" {
		t.Fatalf("healthz after failed reload = %+v", health)
	}
	// The old generation still serves correct verdicts while degraded.
	verdicts, err := client.Classify(ctx, f.replay[:4])
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range verdicts {
		if want := offlineKey(t, f, f.clf, &f.replay[i]); v.Key() != want {
			t.Fatalf("degraded verdict %d = %q, want %q", i, v.Key(), want)
		}
	}
	metrics, err := client.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(metrics, "longtail_degraded 1") ||
		!strings.Contains(metrics, "longtail_reload_failures_total 1") {
		t.Fatalf("metrics missing degraded markers:\n%s", metrics)
	}

	var rules bytes.Buffer
	if err := ExportRules(&rules, f.clf); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Reload(ctx, rules.Bytes()); err != nil {
		t.Fatal(err)
	}
	health, err = client.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if health["status"] != "ok" {
		t.Fatalf("healthz after recovery reload = %+v", health)
	}
}

// TestRetransmitDedup: the same request ID posted twice classifies
// once; the second response comes from the ledger, byte-identical.
func TestRetransmitDedup(t *testing.T) {
	f := sharedFixture(t)
	engine := newTestEngine(t, f, EngineConfig{})
	l, _, err := OpenLedger(LedgerOptions{Journal: journal.Options{Dir: t.TempDir()}})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	srv, err := NewServer(engine, classify.Reject, WithLedger(l))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	ctx := context.Background()
	client := &Client{BaseURL: ts.URL}

	first, err := client.ClassifyWithID(ctx, "dup-1", f.replay[:6])
	if err != nil {
		t.Fatal(err)
	}
	eventsBefore := engine.Metrics().EventsIn.Load()
	second, err := client.ClassifyWithID(ctx, "dup-1", f.replay[:6])
	if err != nil {
		t.Fatal(err)
	}
	if engine.Metrics().EventsIn.Load() != eventsBefore {
		t.Fatal("retransmit re-classified instead of hitting the ledger")
	}
	if engine.Metrics().DedupHits.Load() == 0 {
		t.Fatal("dedup hit not counted")
	}
	if len(first) != len(second) {
		t.Fatalf("retransmit returned %d verdicts, original %d", len(second), len(first))
	}
	for i := range first {
		if first[i].Key() != second[i].Key() {
			t.Fatalf("verdict %d differs across retransmit: %q vs %q", i, first[i].Key(), second[i].Key())
		}
	}
}
