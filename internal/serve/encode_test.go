package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/dataset"
	"repro/internal/export"
)

// The verdict-line fast codec's contract mirrors export's: the append
// encoder must produce json.Marshal's bytes, and the fast parser must
// never accept a line with a different meaning than encoding/json gives
// it.

func fuzzVerdictFrom(typ, file, verdict, errStr string, gen uint64, rules []byte) VerdictRecord {
	v := VerdictRecord{Type: typ, File: file, Verdict: verdict, Generation: gen, Error: errStr}
	for _, b := range rules {
		v.Rules = append(v.Rules, int(int8(b)))
	}
	return v
}

// FuzzVerdictLineCodec: encode differentially, then re-parse the
// canonical bytes and compare against json.Unmarshal.
func FuzzVerdictLineCodec(f *testing.F) {
	f.Add("verdict", "aa01", "malicious", "", uint64(3), []byte{1, 2, 200})
	f.Add("verdict", "f", "none", "no metadata for file", uint64(1), []byte{})
	f.Add("", "", "", "", uint64(0), []byte{0})
	f.Add("verdict", "esc\"ape", "ben\nign", "дом<>&", ^uint64(0), []byte{255, 127})
	f.Fuzz(func(t *testing.T, typ, file, verdict, errStr string, gen uint64, rules []byte) {
		v := fuzzVerdictFrom(typ, file, verdict, errStr, gen, rules)
		want, err := json.Marshal(&v)
		if err != nil {
			t.Fatal(err)
		}
		got := appendVerdictLine(nil, &v)
		if !bytes.Equal(want, got) {
			t.Fatalf("bytes differ:\n json: %q\n fast: %q", want, got)
		}

		back, ok := parseVerdictLine(string(want))
		var ref VerdictRecord
		if err := json.Unmarshal(want, &ref); err != nil {
			t.Fatal(err)
		}
		if ok && !reflect.DeepEqual(back, ref) {
			t.Fatalf("fast parse differs:\n fast: %+v\n json: %+v", back, ref)
		}

		// The body renderer is just lines + '\n'.
		body := appendVerdictBody(nil, []VerdictRecord{v, v})
		wantBody := append(append(append([]byte{}, want...), '\n'), append(want, '\n')...)
		if !bytes.Equal(body, wantBody) {
			t.Fatalf("body differs:\n fast: %q\n want: %q", body, wantBody)
		}
	})
}

// FuzzParseVerdictLineRaw: on arbitrary bytes the fast parser may punt
// (ok=false) but must never disagree with encoding/json when it
// accepts.
func FuzzParseVerdictLineRaw(f *testing.F) {
	f.Add(`{"type":"verdict","file":"aa","verdict":"benign","gen":2,"rules":[0,3],"error":"x"}`)
	f.Add(`{"type":"verdict","file":"aa","verdict":"benign","gen":2}`)
	f.Add(`{"gen":1,"type":"verdict"}`)
	f.Add(`{"type":"verdict","file":"a","verdict":"none","gen":18446744073709551615}`)
	f.Add(`{"type":"verdict","file":"a","verdict":"none","gen":1,"rules":[-4]}`)
	f.Fuzz(func(t *testing.T, line string) {
		got, ok := parseVerdictLine(line)
		if !ok {
			return
		}
		var want VerdictRecord
		if err := json.Unmarshal([]byte(line), &want); err != nil {
			t.Fatalf("fast parser accepted %q but json rejects it: %v", line, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("parse differs on %q:\n fast: %+v\n json: %+v", line, got, want)
		}
	})
}

// TestVerdictKey pins Key()'s hand-rolled rendering to the fmt.Sprintf
// form the offline-equivalence tests were written against.
func TestVerdictKey(t *testing.T) {
	cases := []VerdictRecord{
		{File: "aa01", Verdict: "malicious", Rules: []int{0, 3, 17}},
		{File: "f", Verdict: "none", Rules: nil},
		{File: "f", Verdict: "benign", Rules: []int{}},
		{File: "", Verdict: "", Rules: []int{-2, 1000000}},
		{File: "x y", Verdict: "rejected", Rules: []int{5}},
	}
	for _, v := range cases {
		want := fmt.Sprintf("%s %s %v", v.File, v.Verdict, v.Rules)
		if got := v.Key(); got != want {
			t.Errorf("Key() = %q, want %q", got, want)
		}
	}
}

// TestSnapshotEncodingMatchesJSON holds the hand-rolled compaction
// snapshot encoder byte-identical to the json.Marshal of the
// ledgerSnapshot shape it replaced — the recovery decoder stays
// encoding/json, so equivalence here is what keeps old and new
// snapshots mutually readable.
func TestSnapshotEncodingMatchesJSON(t *testing.T) {
	f := sharedFixture(t)
	cases := []struct {
		name    string
		results map[string][]byte
		pending map[string][]dataset.DownloadEvent
	}{
		{"empty", map[string][]byte{}, map[string][]dataset.DownloadEvent{}},
		{"mixed", map[string][]byte{
			"b-02": []byte("{\"type\":\"verdict\"}\n{\"v\":2}\n"),
			"a-01": []byte("line with \"quotes\" and <html> & bytes\n"),
			"c-03": {0xff, 0x80, '\n', 0x01},
		}, map[string][]dataset.DownloadEvent{
			"p-02": f.replay[0:2],
			"p-01": f.replay[2:3],
		}},
	}
	for _, tc := range cases {
		snap := ledgerSnapshot{
			Results: make(map[string]string, len(tc.results)),
			Pending: make(map[string][]string, len(tc.pending)),
		}
		for id, v := range tc.results {
			snap.Results[id] = string(v)
		}
		for id, events := range tc.pending {
			lines := make([]string, len(events))
			for i := range events {
				line, err := export.MarshalEventLine(&events[i])
				if err != nil {
					t.Fatal(err)
				}
				lines[i] = string(line)
			}
			snap.Pending[id] = lines
		}
		want, err := json.Marshal(snap)
		if err != nil {
			t.Fatal(err)
		}
		got, err := appendSnapshot(tc.results, tc.pending)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s: appendSnapshot = %q, want %q", tc.name, got, want)
		}
	}
}
