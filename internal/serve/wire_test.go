package serve

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"
	"unicode/utf8"

	"repro/internal/dataset"
	"repro/internal/export"
	"repro/internal/journal"
)

// TestBinaryEventsMatchJSONCodec: a batch encoded binary and decoded
// back renders to exactly the canonical line-JSON the reference codec
// produces for the originals — the two wire formats carry the same
// records.
func TestBinaryEventsMatchJSONCodec(t *testing.T) {
	f := sharedFixture(t)
	events := append([]dataset.DownloadEvent(nil), f.replay[:32]...)
	// Edge shapes the synthetic corpus doesn't exercise: fractional
	// seconds, a non-UTC zone, no domain, executed set.
	events = append(events,
		dataset.DownloadEvent{
			File: "f-frac", Machine: "m1", Process: "p1", URL: "http://x/y",
			Domain: "x.example", Executed: true,
			Time: time.Unix(1700000000, 123456789).In(time.FixedZone("", 5*3600+30*60)),
		},
		dataset.DownloadEvent{
			File: "f-min", Machine: "m2", Process: "p2", URL: "http://z/",
			Time: time.Unix(1700000001, 0).In(time.FixedZone("", -7*3600)),
		},
	)
	enc := appendBinaryEvents(nil, events)
	dec, err := decodeBinaryEvents(string(enc))
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != len(events) {
		t.Fatalf("decoded %d events, want %d", len(dec), len(events))
	}
	for i := range events {
		want, err := export.AppendEventLine(nil, &events[i])
		if err != nil {
			t.Fatal(err)
		}
		got, err := export.AppendEventLine(nil, &dec[i])
		if err != nil {
			t.Fatalf("event %d: decoded event fails the JSON codec: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("event %d renders differently after the binary round trip:\n got %s\nwant %s", i, got, want)
		}
	}
	// Re-encoding the decoded batch is byte-identical: the encoder is
	// canonical, so retransmits don't depend on who rendered the bytes.
	if again := appendBinaryEvents(nil, dec); !bytes.Equal(again, enc) {
		t.Fatal("binary re-encode of the decoded batch diverged")
	}
}

// TestBinaryVerdictsMatchJSONCodec: verdict batches agree between the
// binary codec and the line-JSON reference, across every optional
// field combination.
func TestBinaryVerdictsMatchJSONCodec(t *testing.T) {
	verdicts := []VerdictRecord{
		{Type: "verdict", File: "aa11", Verdict: "benign", Generation: 1},
		{Type: "verdict", File: "bb22", Verdict: "malicious", Generation: 7, Rules: []int{3, 1, 2}},
		{Type: "verdict", File: "cc33", Verdict: "rejected", Generation: 2, Rules: []int{-1}},
		{Type: "verdict", File: "dd44", Verdict: "none", Generation: 9, Error: "no metadata for file"},
		{Type: "verdict", File: "", Verdict: "weird-value", Generation: 0, Rules: []int{0}, Error: "x"},
	}
	enc := appendBinaryVerdicts(nil, verdicts)
	dec, err := decodeBinaryVerdicts(string(enc))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dec, verdicts) {
		t.Fatalf("binary round trip changed the records:\n got %+v\nwant %+v", dec, verdicts)
	}
	// The JSON reference parses its own rendering to the same records
	// the binary codec carries.
	ref, err := parseVerdictBody(appendVerdictBody(nil, verdicts))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref, dec) {
		t.Fatalf("JSON path decodes %+v, binary path %+v", ref, dec)
	}
}

// postClassify posts body to ts with the given content type and request
// ID, returning status, response content type and body.
func postClassify(t *testing.T, ts *httptest.Server, body []byte, contentType, id string) (int, string, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/classify", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	if id != "" {
		req.Header.Set(RequestIDHeader, id)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header.Get("Content-Type"), data
}

// TestBinaryClassifyNegotiation: a binary Content-Type on /classify
// selects the binary verdict response; the verdicts are identical to
// the JSON path's for the same events; retransmits are byte-identical
// even when the client switches formats between transmit and
// retransmit, because the ledger stores one canonical body.
func TestBinaryClassifyNegotiation(t *testing.T) {
	f := sharedFixture(t)
	dir := t.TempDir()
	l, _, err := OpenLedger(LedgerOptions{Journal: journal.Options{Dir: dir}, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	engine := newTestEngine(t, f, EngineConfig{})
	srv, err := NewServer(engine, 0, WithLedger(l))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	events := f.replay[:8]
	jsonBody, err := marshalEvents(events)
	if err != nil {
		t.Fatal(err)
	}
	binBody := appendBinaryEvents(nil, events)

	// Same events, both formats, no ID: verdicts must agree.
	code, ctype, jsonResp := postClassify(t, ts, jsonBody, "", "")
	if code != http.StatusOK {
		t.Fatalf("JSON classify = %d %s", code, jsonResp)
	}
	if ctype == ContentTypeBinaryVerdicts {
		t.Fatal("JSON request got a binary response")
	}
	code, ctype, binResp := postClassify(t, ts, binBody, ContentTypeBinaryEvents, "")
	if code != http.StatusOK {
		t.Fatalf("binary classify = %d %s", code, binResp)
	}
	if ctype != ContentTypeBinaryVerdicts {
		t.Fatalf("binary response Content-Type = %q, want %q", ctype, ContentTypeBinaryVerdicts)
	}
	jsonV, err := parseVerdicts(jsonResp)
	if err != nil {
		t.Fatal(err)
	}
	binV, err := decodeBinaryVerdicts(string(binResp))
	if err != nil {
		t.Fatal(err)
	}
	if len(jsonV) != len(binV) {
		t.Fatalf("JSON path served %d verdicts, binary %d", len(jsonV), len(binV))
	}
	for i := range jsonV {
		if jsonV[i].Key() != binV[i].Key() {
			t.Fatalf("verdict %d: JSON %q, binary %q", i, jsonV[i].Key(), binV[i].Key())
		}
	}

	// Binary transmit, then retransmits in both formats: the binary
	// retransmit is byte-identical to the first binary response, and the
	// JSON retransmit re-renders the same stored body.
	code, _, first := postClassify(t, ts, binBody, ContentTypeBinaryEvents, "neg-1")
	if code != http.StatusOK {
		t.Fatalf("identified binary classify = %d %s", code, first)
	}
	code, ctype, again := postClassify(t, ts, binBody, ContentTypeBinaryEvents, "neg-1")
	if code != http.StatusOK || ctype != ContentTypeBinaryVerdicts {
		t.Fatalf("binary retransmit = %d, Content-Type %q", code, ctype)
	}
	if !bytes.Equal(again, first) {
		t.Fatal("binary retransmit is not byte-identical to the first response")
	}
	code, _, asJSON := postClassify(t, ts, jsonBody, "", "neg-1")
	if code != http.StatusOK {
		t.Fatalf("JSON retransmit = %d %s", code, asJSON)
	}
	fromStored, err := parseVerdicts(asJSON)
	if err != nil {
		t.Fatal(err)
	}
	firstV, err := decodeBinaryVerdicts(string(first))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fromStored, firstV) {
		t.Fatal("format-switched retransmit served different verdicts")
	}
	if hits := engine.Metrics().DedupHits.Load(); hits != 2 {
		t.Fatalf("DedupHits = %d, want 2 (both retransmits answered from the ledger)", hits)
	}

	// A malformed binary body is a 400, not an accepted batch.
	code, _, _ = postClassify(t, ts, binBody[:len(binBody)-3], ContentTypeBinaryEvents, "")
	if code != http.StatusBadRequest {
		t.Fatalf("truncated binary body = %d, want 400", code)
	}
}

// TestLedgerDedupAcrossShardCountChange: the exactly-once guarantee
// survives a -journal-shards change between restarts — results written
// under one shard count dedup retransmits after reopening under
// another, in both directions (flat→sharded and wider).
func TestLedgerDedupAcrossShardCountChange(t *testing.T) {
	f := sharedFixture(t)
	engine := newTestEngine(t, f, EngineConfig{})
	events := f.replay[:5]
	verdicts, err := engine.ClassifyBatch(context.Background(), events)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()

	// Generation 1: flat single-WAL layout.
	l1, _, err := OpenLedger(LedgerOptions{Journal: journal.Options{Dir: dir}, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := l1.Accept("cross-1", events); err != nil {
		t.Fatal(err)
	}
	if _, err := l1.Result("cross-1", verdicts); err != nil {
		t.Fatal(err)
	}
	if err := l1.Close(); err != nil {
		t.Fatal(err)
	}

	// Generation 2: reopened striped over 3 shards. The flat history
	// must recover and keep deduplicating.
	l2, rec, err := OpenLedger(LedgerOptions{Journal: journal.Options{Dir: dir}, Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Results != 1 {
		t.Fatalf("recovered %d results after shard-count change, want 1", rec.Results)
	}
	got, ok := l2.LookupVerdicts("cross-1")
	if !ok || len(got) != len(verdicts) {
		t.Fatalf("result lost across shard-count change: %v %v", got, ok)
	}
	for i := range got {
		if got[i].Key() != verdicts[i].Key() {
			t.Fatalf("verdict %d = %q across shard-count change, want %q", i, got[i].Key(), verdicts[i].Key())
		}
	}
	if err := l2.Accept("cross-1", events); err != nil {
		t.Fatal(err)
	}
	if l2.IsPending("cross-1") {
		t.Fatal("retransmit of a completed batch re-entered pending after shard-count change")
	}
	// New work lands sharded; widen again and everything must survive.
	if err := l2.Accept("cross-2", events); err != nil {
		t.Fatal(err)
	}
	if _, err := l2.Result("cross-2", verdicts); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	l3, rec3, err := OpenLedger(LedgerOptions{Journal: journal.Options{Dir: dir}, Shards: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer l3.Close()
	if rec3.Results != 2 {
		t.Fatalf("recovered %d results after widening again, want 2", rec3.Results)
	}
	for _, id := range []string{"cross-1", "cross-2"} {
		if _, ok := l3.LookupVerdicts(id); !ok {
			t.Fatalf("result %q lost after widening to 5 shards", id)
		}
		if err := l3.Accept(id, events); err != nil {
			t.Fatal(err)
		}
		if l3.IsPending(id) {
			t.Fatalf("retransmit of %q re-entered pending at 5 shards", id)
		}
	}
}

// FuzzBinaryEvents holds the binary event codec equal to the line-JSON
// reference under arbitrary field values, and makes the decoder total
// over arbitrary bytes.
func FuzzBinaryEvents(f *testing.F) {
	f.Add(true, int64(1700000000), uint32(123456789), int32(330), "aa", "m1", "p1", "http://x/", "x.com")
	f.Add(false, int64(0), uint32(0), int32(0), "f", "m", "p", "u", "")
	f.Add(false, int64(-62135596800), uint32(1), int32(-1439), "f", "m", "p", "u", "d")
	f.Fuzz(func(t *testing.T, executed bool, sec int64, nanos uint32, zoffMin int32, file, machine, process, url, domain string) {
		loc := time.UTC
		if zoffMin != 0 && zoffMin > -24*60 && zoffMin < 24*60 {
			loc = time.FixedZone("", int(zoffMin)*60)
		}
		ev := dataset.DownloadEvent{
			File:     dataset.FileHash(file),
			Machine:  dataset.MachineID(machine),
			Process:  dataset.FileHash(process),
			URL:      url,
			Domain:   domain,
			Executed: executed,
			Time:     time.Unix(sec, int64(nanos%1e9)).In(loc),
		}
		enc := appendBinaryEvents(nil, []dataset.DownloadEvent{ev})
		dec, err := decodeBinaryEvents(string(enc))
		if err != nil {
			// The decoder applies the JSON path's strictness: anything it
			// refuses, the reference must refuse too (invalid event or
			// non-RFC 3339 time).
			if ev.Validate() == nil {
				if _, jerr := export.MarshalEventLine(&ev); jerr == nil {
					t.Fatalf("binary decoder rejected an event the JSON codec accepts: %v", err)
				}
			}
			return
		}
		if len(dec) != 1 {
			t.Fatalf("decoded %d events, want 1", len(dec))
		}
		// Canonical re-encode is byte-identical.
		if again := appendBinaryEvents(nil, dec); !bytes.Equal(again, enc) {
			t.Fatal("binary re-encode diverged")
		}
		// Differential against the JSON reference, where the strings are
		// JSON-representable (invalid UTF-8 does not round-trip through
		// encoding/json by design).
		if utf8.ValidString(file) && utf8.ValidString(machine) && utf8.ValidString(process) &&
			utf8.ValidString(url) && utf8.ValidString(domain) {
			want, err := export.AppendEventLine(nil, &ev)
			if err != nil {
				t.Fatalf("binary decoder accepted an event the JSON codec refuses: %v", err)
			}
			got, err := export.AppendEventLine(nil, &dec[0])
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("binary round trip changed the canonical rendering:\n got %s\nwant %s", got, want)
			}
			parsed, err := export.ParseEventLine(string(want))
			if err != nil {
				t.Fatal(err)
			}
			if rerendered := appendBinaryEvents(nil, []dataset.DownloadEvent{parsed}); !bytes.Equal(rerendered, enc) {
				t.Fatal("JSON-parsed event re-encodes to different binary bytes")
			}
		}
	})
}

// FuzzBinaryEventsDecode feeds arbitrary bytes to the binary event
// decoder: it must never panic, and anything it accepts must re-render
// through the canonical JSON codec and re-encode to a binary body it
// accepts again, identically — the same no-silent-loss property the
// journal fuzz enforces.
func FuzzBinaryEventsDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("lte1"))
	ev := dataset.DownloadEvent{File: "f", Machine: "m", Process: "p", URL: "u", Time: time.Unix(1700000000, 0).UTC()}
	valid := appendBinaryEvents(nil, []dataset.DownloadEvent{ev, ev})
	f.Add(valid)
	f.Add(valid[:len(valid)-2])
	flipped := append([]byte(nil), valid...)
	flipped[9] ^= 0xff
	f.Add(flipped)
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			t.Skip("bounded corpus: oversized input")
		}
		dec, err := decodeBinaryEvents(string(data))
		if err != nil {
			return
		}
		for i := range dec {
			if _, err := export.AppendEventLine(nil, &dec[i]); err != nil {
				t.Fatalf("accepted event %d fails the JSON codec: %v", i, err)
			}
		}
		enc := appendBinaryEvents(nil, dec)
		dec2, err := decodeBinaryEvents(string(enc))
		if err != nil {
			t.Fatalf("re-encoded accepted batch refused: %v", err)
		}
		if enc2 := appendBinaryEvents(nil, dec2); !bytes.Equal(enc2, enc) {
			t.Fatal("re-encode is not a fixed point")
		}
	})
}

// FuzzBinaryVerdicts holds the binary verdict codec equal to the
// line-JSON reference (appendVerdictBody/parseVerdictBody — the bytes
// the ledger journals) under arbitrary field values.
func FuzzBinaryVerdicts(f *testing.F) {
	f.Add("verdict", "aa11", "malicious", uint64(3), int64(7), "", true)
	f.Add("verdict", "", "none", uint64(0), int64(-1), "extract failed", false)
	f.Fuzz(func(t *testing.T, typ, file, verdict string, gen uint64, rule int64, errMsg string, hasRule bool) {
		v := VerdictRecord{Type: typ, File: file, Verdict: canonicalVerdict(verdict), Generation: gen, Error: errMsg}
		if hasRule {
			v.Rules = []int{int(rule)}
		}
		verdicts := []VerdictRecord{v}
		enc := appendBinaryVerdicts(nil, verdicts)
		dec, err := decodeBinaryVerdicts(string(enc))
		if err != nil {
			t.Fatalf("canonical encoding refused: %v", err)
		}
		if len(dec) != 1 || dec[0].Key() != v.Key() || dec[0].Error != v.Error || dec[0].Type != v.Type {
			t.Fatalf("binary round trip changed the record: got %+v, want %+v", dec[0], v)
		}
		if !reflect.DeepEqual(dec[0].Rules, v.Rules) {
			t.Fatalf("rules changed: got %v, want %v", dec[0].Rules, v.Rules)
		}
		if again := appendBinaryVerdicts(nil, dec); !bytes.Equal(again, enc) {
			t.Fatal("binary re-encode diverged")
		}
		// Differential against the journaled JSON body, where the strings
		// are JSON-representable. int64 rules beyond the fast parser's
		// range fall back to encoding/json; both must agree regardless.
		if utf8.ValidString(typ) && utf8.ValidString(file) && utf8.ValidString(verdict) && utf8.ValidString(errMsg) &&
			int64(int(rule)) == rule {
			ref, err := parseVerdictBody(appendVerdictBody(nil, verdicts))
			if err != nil {
				t.Fatalf("JSON reference refused the record: %v", err)
			}
			if !reflect.DeepEqual(ref, dec) {
				t.Fatalf("JSON path decodes %+v, binary path %+v", ref, dec)
			}
		}
	})
}

// FuzzBinaryVerdictsDecode makes the binary verdict decoder total over
// arbitrary bytes, with accepted inputs re-encoding to a fixed point.
func FuzzBinaryVerdictsDecode(f *testing.F) {
	f.Add([]byte{})
	valid := appendBinaryVerdicts(nil, []VerdictRecord{
		{Type: "verdict", File: "aa", Verdict: "benign", Generation: 1, Rules: []int{2}},
		{Type: "verdict", File: "bb", Verdict: "none", Generation: 1, Error: "x"},
	})
	f.Add(valid)
	f.Add(valid[:len(valid)-1])
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			t.Skip("bounded corpus: oversized input")
		}
		dec, err := decodeBinaryVerdicts(string(data))
		if err != nil {
			return
		}
		enc := appendBinaryVerdicts(nil, dec)
		dec2, err := decodeBinaryVerdicts(string(enc))
		if err != nil {
			t.Fatalf("re-encoded accepted batch refused: %v", err)
		}
		if !reflect.DeepEqual(dec2, dec) {
			t.Fatal("re-encode is not a fixed point")
		}
	})
}
