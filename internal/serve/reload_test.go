package serve

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/classify"
)

// TestConcurrentClassifyAndReload hammers the engine with concurrent
// classification while another goroutine hot-swaps the rule set, under
// the race detector. The contract: no response is dropped, every
// response carries exactly one known rule-set generation, and — since
// every generation serves the same rules — verdicts never change across
// swaps.
func TestConcurrentClassifyAndReload(t *testing.T) {
	f := sharedFixture(t)
	engine := newTestEngine(t, f, EngineConfig{Shards: 4, QueueSize: 512})

	const (
		streamers = 4
		batches   = 25
		batchSize = 16
		reloads   = 10
	)
	offline := make([]string, len(f.replay))
	for i := range f.replay {
		offline[i] = offlineKey(t, f, f.clf, &f.replay[i])
	}

	var maxGen atomic.Uint64
	maxGen.Store(1)
	var wg sync.WaitGroup
	errCh := make(chan error, streamers+1)

	// Reloader: serial swaps of an identical rule set.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < reloads; i++ {
			gen, err := engine.Swap(f.clf)
			if err != nil {
				errCh <- err
				return
			}
			maxGen.Store(gen)
		}
	}()

	type response struct {
		idx int
		rec VerdictRecord
	}
	responses := make(chan response, streamers*batches*batchSize)
	for s := 0; s < streamers; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				lo := ((s*batches + b) * batchSize) % (len(f.replay) - batchSize)
				verdicts, err := engine.ClassifyBatch(context.Background(), f.replay[lo:lo+batchSize])
				if err != nil {
					errCh <- err
					return
				}
				for i, v := range verdicts {
					responses <- response{idx: lo + i, rec: v}
				}
			}
		}(s)
	}
	wg.Wait()
	close(responses)
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	total := 0
	gensSeen := map[uint64]int{}
	for r := range responses {
		total++
		if r.rec.Verdict == "" {
			t.Fatalf("dropped response for event %d", r.idx)
		}
		if r.rec.Generation < 1 || r.rec.Generation > maxGen.Load() {
			t.Fatalf("response carries unknown generation %d (max %d)", r.rec.Generation, maxGen.Load())
		}
		gensSeen[r.rec.Generation]++
		if got := r.rec.Key(); got != offline[r.idx] {
			t.Fatalf("event %d under generation %d: streamed %q, offline %q",
				r.idx, r.rec.Generation, got, offline[r.idx])
		}
	}
	if want := streamers * batches * batchSize; total != want {
		t.Fatalf("got %d responses, want %d (dropped %d)", total, want, want-total)
	}
	if engine.Generation() != uint64(1+reloads) {
		t.Fatalf("final generation = %d, want %d", engine.Generation(), 1+reloads)
	}
	if m := engine.Metrics(); m.Reloads.Load() != reloads {
		t.Fatalf("Reloads = %d, want %d", m.Reloads.Load(), reloads)
	}
}

// TestConcurrentReloadOverHTTP runs the same contention through the
// HTTP surface: streaming clients racing /admin/reload posts.
func TestConcurrentReloadOverHTTP(t *testing.T) {
	f := sharedFixture(t)
	engine := newTestEngine(t, f, EngineConfig{Shards: 2, QueueSize: 512})
	srv, err := NewServer(engine, classify.Reject)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	ctx := context.Background()

	var rules bytes.Buffer
	if err := ExportRules(&rules, f.clf); err != nil {
		t.Fatal(err)
	}
	rulesJSON := rules.Bytes()

	offline := make([]string, 32)
	for i := range offline {
		offline[i] = offlineKey(t, f, f.clf, &f.replay[i])
	}
	var wg sync.WaitGroup
	errCh := make(chan error, 3)
	wg.Add(1)
	go func() {
		defer wg.Done()
		client := &Client{BaseURL: ts.URL}
		for i := 0; i < 5; i++ {
			if _, err := client.Reload(ctx, rulesJSON); err != nil {
				errCh <- err
				return
			}
		}
	}()
	for s := 0; s < 2; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := &Client{BaseURL: ts.URL}
			for b := 0; b < 10; b++ {
				verdicts, err := client.Classify(ctx, f.replay[:32])
				if err != nil {
					errCh <- err
					return
				}
				for i, v := range verdicts {
					if v.Key() != offline[i] {
						errCh <- fmt.Errorf("event %d: streamed %q, offline %q", i, v.Key(), offline[i])
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if got := engine.Generation(); got != 6 {
		t.Fatalf("final generation = %d, want 6", got)
	}
}
