package serve

import (
	"strconv"
	"unicode/utf8"

	"repro/internal/export"
)

// This file is the verdict-record counterpart of export's fast line
// codec: appendVerdictLine produces exactly json.Marshal's bytes for a
// VerdictRecord, and parseVerdictLine inverts canonical lines by
// slicing substrings instead of copying fields. Both the HTTP response
// writer and the ledger's journaled response bodies go through
// appendVerdictLine, so dedup replays stay byte-identical to first
// responses by construction; encode_test.go holds the fast pair equal
// to the encoding/json reference differentially.

// appendVerdictLine appends v as one JSON object (no trailing newline),
// byte-identical to json.Marshal(&v): field order type, file, verdict,
// gen, then rules and error only when non-empty.
func appendVerdictLine(dst []byte, v *VerdictRecord) []byte {
	dst = append(dst, `{"type":`...)
	dst = export.AppendJSONString(dst, v.Type)
	dst = append(dst, `,"file":`...)
	dst = export.AppendJSONString(dst, v.File)
	dst = append(dst, `,"verdict":`...)
	dst = export.AppendJSONString(dst, v.Verdict)
	dst = append(dst, `,"gen":`...)
	dst = strconv.AppendUint(dst, v.Generation, 10)
	if len(v.Rules) > 0 {
		dst = append(dst, `,"rules":[`...)
		for i, r := range v.Rules {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = strconv.AppendInt(dst, int64(r), 10)
		}
		dst = append(dst, ']')
	}
	if v.Error != "" {
		dst = append(dst, `,"error":`...)
		dst = export.AppendJSONString(dst, v.Error)
	}
	return append(dst, '}')
}

// appendVerdictBody renders the full line-JSON response body for a
// verdict slice — the one wire form shared by direct responses and the
// ledger's journaled bodies.
func appendVerdictBody(dst []byte, verdicts []VerdictRecord) []byte {
	for i := range verdicts {
		dst = appendVerdictLine(dst, &verdicts[i])
		dst = append(dst, '\n')
	}
	return dst
}

// verdictBodySize estimates the rendered size of a verdict body for
// buffer pre-sizing (generous; exactness doesn't matter).
func verdictBodySize(verdicts []VerdictRecord) int {
	n := 0
	for i := range verdicts {
		n += 64 + len(verdicts[i].File) + len(verdicts[i].Error) + 8*len(verdicts[i].Rules)
	}
	return n
}

// canonicalVerdict maps a verdict string to its canonical constant so
// parsed records don't retain the response body through tiny substrings.
func canonicalVerdict(s string) string {
	switch s {
	case "none":
		return "none"
	case "benign":
		return "benign"
	case "malicious":
		return "malicious"
	case "rejected":
		return "rejected"
	default:
		return s
	}
}

// scanPlain scans an unescaped printable-ASCII JSON string literal
// opening at s[i]; ok=false sends the caller to the reference decoder.
func scanPlain(s string, i int) (val string, next int, ok bool) {
	if i >= len(s) || s[i] != '"' {
		return "", i, false
	}
	i++
	start := i
	for i < len(s) {
		b := s[i]
		if b == '"' {
			return s[start:i], i + 1, true
		}
		if b == '\\' || b < 0x20 || b >= utf8.RuneSelf {
			return "", i, false
		}
		i++
	}
	return "", i, false
}

func verdictLit(s string, i int, lit string) (int, bool) {
	if len(s)-i < len(lit) || s[i:i+len(lit)] != lit {
		return i, false
	}
	return i + len(lit), true
}

// scanUint scans a decimal uint64 at s[i], rejecting the leading zeros
// JSON forbids (and the canonical encoder never emits).
func scanUint(s string, i int) (uint64, int, bool) {
	start := i
	var n uint64
	for i < len(s) && s[i] >= '0' && s[i] <= '9' {
		d := uint64(s[i] - '0')
		if n > (^uint64(0)-d)/10 {
			return 0, i, false
		}
		n = n*10 + d
		i++
	}
	if i == start || (s[start] == '0' && i-start > 1) {
		return 0, i, false
	}
	return n, i, true
}

// parseVerdictLine parses one canonical verdict line (the exact shape
// appendVerdictLine emits). ok=false means the line deviates — the
// caller falls back to encoding/json, which defines the semantics.
func parseVerdictLine(line string) (VerdictRecord, bool) {
	var v VerdictRecord
	i, ok := verdictLit(line, 0, `{"type":`)
	if !ok {
		return v, false
	}
	if v.Type, i, ok = scanPlain(line, i); !ok {
		return v, false
	}
	if i, ok = verdictLit(line, i, `,"file":`); !ok {
		return v, false
	}
	if v.File, i, ok = scanPlain(line, i); !ok {
		return v, false
	}
	if i, ok = verdictLit(line, i, `,"verdict":`); !ok {
		return v, false
	}
	var verdict string
	if verdict, i, ok = scanPlain(line, i); !ok {
		return v, false
	}
	v.Verdict = canonicalVerdict(verdict)
	if i, ok = verdictLit(line, i, `,"gen":`); !ok {
		return v, false
	}
	if v.Generation, i, ok = scanUint(line, i); !ok {
		return v, false
	}
	if j, hasRules := verdictLit(line, i, `,"rules":[`); hasRules {
		i = j
		for {
			neg := false
			if i < len(line) && line[i] == '-' {
				neg = true
				i++
			}
			var u uint64
			if u, i, ok = scanUint(line, i); !ok || u > 1<<31 {
				return v, false
			}
			r := int(u)
			if neg {
				r = -r
			}
			v.Rules = append(v.Rules, r)
			if i < len(line) && line[i] == ',' {
				i++
				continue
			}
			break
		}
		if i >= len(line) || line[i] != ']' {
			return v, false
		}
		i++
	}
	if j, hasErr := verdictLit(line, i, `,"error":`); hasErr {
		if v.Error, i, ok = scanPlain(line, j); !ok {
			return v, false
		}
	}
	if i, ok = verdictLit(line, i, "}"); !ok || i != len(line) {
		return v, false
	}
	return v, true
}
