package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"repro/internal/dataset"
	"repro/internal/export"
	"repro/internal/retry"
)

// Client is the request side of the serving wire protocol, used by
// cmd/loadgen and the throughput benchmark. The uplink retries with
// exponential backoff and full jitter: transport errors, 5xx and 429
// (backpressure) are retryable; 4xx are permanent. HTTPClient's
// Transport is the decoration point for internal/faults injectors —
// wrap it with a faulty RoundTripper and the retry machinery absorbs
// the injected failures exactly as the PR 1 uplink does.
type Client struct {
	// BaseURL is the daemon's root, e.g. "http://127.0.0.1:8787".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient when nil.
	HTTPClient *http.Client
	// Retry is the uplink retry policy; the zero value selects the
	// package defaults (5 attempts, 50ms initial backoff).
	Retry retry.Policy
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// post sends body and returns the response body, retrying per policy.
func (c *Client) post(ctx context.Context, path string, body []byte) ([]byte, error) {
	var out []byte
	err := retry.Do(ctx, c.Retry, func(ctx context.Context) error {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+path, bytes.NewReader(body))
		if err != nil {
			return retry.Permanent(err)
		}
		resp, err := c.httpClient().Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			return err
		}
		switch {
		case resp.StatusCode == http.StatusOK:
			out = data
			return nil
		case resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode >= 500:
			// Backpressure or server-side trouble: retry after backoff.
			return fmt.Errorf("serve: %s: %s", path, resp.Status)
		default:
			return retry.Permanent(fmt.Errorf("serve: %s: %s: %s", path, resp.Status, bytes.TrimSpace(data)))
		}
	})
	return out, err
}

// Classify streams a batch of events to /classify and parses the
// verdict records, which arrive in input order.
func (c *Client) Classify(ctx context.Context, events []dataset.DownloadEvent) ([]VerdictRecord, error) {
	var body bytes.Buffer
	for i := range events {
		line, err := export.MarshalEventLine(&events[i])
		if err != nil {
			return nil, err
		}
		body.Write(line)
		body.WriteByte('\n')
	}
	data, err := c.post(ctx, "/classify", body.Bytes())
	if err != nil {
		return nil, err
	}
	var verdicts []VerdictRecord
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 1<<16), maxEventLine)
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var v VerdictRecord
		if err := json.Unmarshal(sc.Bytes(), &v); err != nil {
			return nil, fmt.Errorf("serve: verdict line: %w", err)
		}
		verdicts = append(verdicts, v)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(verdicts) != len(events) {
		return nil, fmt.Errorf("serve: sent %d events, got %d verdicts", len(events), len(verdicts))
	}
	return verdicts, nil
}

// Reload posts a rulemine-format JSON rule set to /admin/reload and
// returns the new rule-set generation.
func (c *Client) Reload(ctx context.Context, rulesJSON []byte) (uint64, error) {
	data, err := c.post(ctx, "/admin/reload", rulesJSON)
	if err != nil {
		return 0, err
	}
	var resp struct {
		Generation uint64 `json:"generation"`
		Rules      int    `json:"rules"`
	}
	if err := json.Unmarshal(data, &resp); err != nil {
		return 0, fmt.Errorf("serve: reload response: %w", err)
	}
	return resp.Generation, nil
}

// Health fetches /healthz.
func (c *Client) Health(ctx context.Context) (map[string]any, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/healthz", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return out, nil
}

// Metrics fetches the raw /metrics exposition text.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	return string(data), err
}
